// Datacenter: a miniature Figure 10 experiment.
//
// TCP sources behind a star topology send web-search-distributed flows
// through one bottleneck scheduled by STFQ over a PIFO block. Two
// scheduler builds compete: a BMW-Tree with room for 254 concurrent
// flows, and a small scheduler with room for 16 — the scaled-down
// version of the paper's 4094-vs-512 comparison. Under overload the
// small scheduler runs out of flow slots and drops packets of new
// flows; TCP pays in retransmissions and timeouts, and the flow
// completion times show it.
//
//	go run ./examples/datacenter        (about half a minute)
package main

import (
	"fmt"
	"time"

	bmw "repro"
)

func run(name string, kind bmw.NetConfig) bmw.NetResult {
	t0 := time.Now()
	res := bmw.RunFCTExperiment(kind)
	fmt.Printf("%s: %d flows in %v — loss %.4f, %d retransmits, %d timeouts\n",
		name, res.Completed, time.Since(t0).Round(time.Millisecond),
		res.LossRate, res.Retransmits, res.Timeouts)
	return res
}

func main() {
	base := bmw.DefaultNetConfig()
	base.NumHosts = 32
	base.LinkBps = 1e9
	base.BMWLevels = 7 // capacity 254
	base.StoreLimit = 0
	base.TCP.MaxRTONs = 10e9
	base.NumFlows = 400
	base.Load = 1.1
	base.Seed = 7

	cfgBMW := base
	cfgBMW.Scheduler = bmw.SchedBMW
	cfgBMW.SchedCap = 254

	cfgPIFO := base
	cfgPIFO.Scheduler = bmw.SchedPIFO
	cfgPIFO.SchedCap = 16

	fmt.Println("32 hosts -> 1 switch -> 1 server, 1 Gbps / 3 ms links, STFQ ranks, web-search flows, load 1.1")
	rb := run("BMW-254", cfgBMW)
	rp := run("PIFO-16", cfgPIFO)

	fmt.Println()
	fmt.Print(bmw.FCTTable("BMW-254", bmw.FCTBins(rb)))
	fmt.Println()
	fmt.Print(bmw.FCTTable("PIFO-16", bmw.FCTBins(rp)))
	fmt.Println()
	bn, pn := rb.FCT.OverallMeanNorm(), rp.FCT.OverallMeanNorm()
	fmt.Printf("overall mean normalised FCT: BMW %.2f vs PIFO %.2f -> the larger scheduler cuts it by %.0f%%\n",
		bn, pn, 100*(1-bn/pn))
}
