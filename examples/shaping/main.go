// Shaping: non-work-conserving scheduling two ways.
//
// First, the PIFO way (the paper's Section 2.1: Token Bucket as a rank
// function): ranks are departure times, and the PIFO block's gated
// dequeue holds the head until its time arrives. Second, the PIEO way
// (Section 7.1): eligibility times are first-class, and extraction
// returns the smallest-ranked *eligible* element.
//
//	go run ./examples/shaping
package main

import (
	"fmt"
	"log"

	bmw "repro"
)

func main() {
	// --- Token bucket over a PIFO block -------------------------------
	// Flow 1 shaped to 1 MB/s with no burst; three back-to-back 10 kB
	// packets must leave 10 ms apart.
	tb := bmw.NewTokenBucket(1_000_000, 0)
	block := bmw.NewPIFOBlock(bmw.NewBMWTree(2, 6), tb)
	for i := 0; i < 3; i++ {
		if err := block.Enqueue(bmw.Packet{Flow: 1, Bytes: 10_000, Arrival: 0}, i); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("token-bucket ranks over a PIFO block (1 MB/s, 10 kB packets):")
	for now := uint64(0); now <= 25e6; now += 5e6 { // step 5 ms
		for {
			p, payload, err := block.DequeueEligible(now)
			if err != nil {
				break
			}
			fmt.Printf("  t=%2d ms: packet %v of flow %d released\n", now/1e6, payload, p.Flow)
		}
	}

	// --- PIEO ----------------------------------------------------------
	l := bmw.NewPIEO(16)
	// Two tenants: tenant 10's packets are high priority (low rank) but
	// shaped to depart at 10 ms spacing; tenant 20 is best-effort,
	// always eligible.
	for i := uint64(0); i < 3; i++ {
		if err := l.Push(bmw.PIEOEntry{Rank: i, Eligible: i * 10, Meta: 10}); err != nil {
			log.Fatal(err)
		}
		if err := l.Push(bmw.PIEOEntry{Rank: 100 + i, Eligible: 0, Meta: 20}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nPIEO (smallest eligible first), tenant 10 shaped, tenant 20 best-effort:")
	for now := uint64(0); l.Len() > 0; now += 5 {
		for {
			e, ok := l.ExtractEligible(now)
			if !ok {
				break
			}
			fmt.Printf("  t=%2d: rank %3d from tenant %d\n", now, e.Rank, e.Meta)
		}
	}
	fmt.Println("\nnote how best-effort packets fill the gaps the shaper leaves idle —")
	fmt.Println("the \"smallest eligible packet first\" generalisation of PIFO")
}
