// Hierarchy: HPFQ over a tree of PIFOs (the scheduling-tree model).
//
// A root PIFO divides the link between two tenants 1:3; each tenant
// fair-queues its own flows. Every node is backed by a BMW-Tree — the
// paper's "logical PIFOs" (Figure 1) realised with its own data
// structure.
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"

	bmw "repro"
)

func main() {
	rootPolicy := bmw.NewSTFQ(1)
	root := bmw.NewSchedulerTree(bmw.NewBMWTree(2, 8), rootPolicy)

	tenantA := root.AddNode(0, bmw.NewBMWTree(2, 8), bmw.NewSTFQ(1))
	tenantB := root.AddNode(0, bmw.NewBMWTree(2, 8), bmw.NewSTFQ(1))
	rootPolicy.SetWeight(uint32(tenantA), 1)
	rootPolicy.SetWeight(uint32(tenantB), 3)

	// Tenant A runs two flows, tenant B runs one; all stay backlogged
	// for the whole measurement (B needs the deeper backlog to sustain
	// its 3x share — a drained class falls back to work conservation).
	for i := 0; i < 40; i++ {
		must(root.Enqueue(tenantA, bmw.Packet{Flow: 1, Bytes: 1000}, nil))
		must(root.Enqueue(tenantA, bmw.Packet{Flow: 2, Bytes: 1000}, nil))
		must(root.Enqueue(tenantB, bmw.Packet{Flow: 3, Bytes: 1000}, nil))
		must(root.Enqueue(tenantB, bmw.Packet{Flow: 3, Bytes: 1000}, nil))
	}

	counts := map[uint32]int{}
	const served = 80
	for i := 0; i < served; i++ {
		p, _, err := root.Dequeue()
		if err != nil {
			log.Fatal(err)
		}
		counts[p.Flow]++
	}

	fmt.Println("hierarchical fair queueing, tenant weights 1:3, 80 packets served:")
	fmt.Printf("  tenant A / flow 1: %2d packets (expect ~10 = 12.5%%)\n", counts[1])
	fmt.Printf("  tenant A / flow 2: %2d packets (expect ~10 = 12.5%%)\n", counts[2])
	fmt.Printf("  tenant B / flow 3: %2d packets (expect ~60 = 75%%)\n", counts[3])
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
