// Hwpipeline: the two hardware designs, cycle by cycle.
//
// Drives the register-based (R-BMW) and RPU-driven (RPU-BMW) pipelines
// with their densest legal schedules, shows the issue-availability
// handshakes (pop-pop illegal on R-BMW; mandatory idle after pop on
// RPU-BMW), measures cycles per push-pop pair, and converts them to
// packet rates with the calibrated synthesis models — reproducing the
// paper's headline 192 Mpps (R-BMW 11-2) and 200 Mpps (RPU-BMW 8-4 at
// 600 MHz in 28 nm).
//
//	go run ./examples/hwpipeline
package main

import (
	"fmt"
	"log"
	"math/rand"

	bmw "repro"
)

func pairsRate(s bmw.CycleSim, pairs int) float64 {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 64; i++ {
		if _, err := s.Tick(bmw.PushOp(rng.Uint64()%65536, 0)); err != nil {
			log.Fatal(err)
		}
	}
	start := s.Cycle()
	for done := 0; done < pairs; {
		switch {
		case s.PushAvailable() && !s.AlmostFull():
			s.Tick(bmw.PushOp(rng.Uint64()%65536, 0))
			if s.PopAvailable() && s.Len() > 0 {
				s.Tick(bmw.PopOp())
				done++
			}
		default:
			s.Tick(bmw.NopOp())
		}
	}
	return float64(s.Cycle()-start) / float64(pairs)
}

func main() {
	// --- The handshakes -------------------------------------------------
	r := bmw.NewRBMWSim(2, 11)
	r.Tick(bmw.PushOp(5, 0))
	r.Tick(bmw.PushOp(9, 0))
	r.Tick(bmw.PopOp())
	if _, err := r.Tick(bmw.PopOp()); err != nil {
		fmt.Println("R-BMW:  pop-pop rejected:", err)
	}

	u := bmw.NewRPUBMWSim(4, 8)
	u.Tick(bmw.PushOp(5, 0))
	u.Tick(bmw.PushOp(9, 0))
	u.Tick(bmw.PopOp())
	if _, err := u.Tick(bmw.PushOp(1, 0)); err != nil {
		fmt.Println("RPU-BMW: pop-push rejected:", err)
	}
	u.Tick(bmw.NopOp()) // the mandatory idle cycle
	if _, err := u.Tick(bmw.PushOp(1, 0)); err == nil {
		fmt.Println("RPU-BMW: push accepted after the idle cycle")
	}

	// --- Cycle costs and packet rates -----------------------------------
	fmt.Println()
	rb := pairsRate(bmw.NewRBMWSim(2, 11), 5000)
	ru := pairsRate(bmw.NewRPUBMWSim(4, 8), 5000)
	fRB := bmw.SynthRBMW(2, 11)
	aRU := bmw.ASICRPUBMW(4, 8)
	fmt.Printf("R-BMW   11-2 (%5d flows): %.3f cycles/pair at %.2f MHz -> %.1f Mpps\n",
		fRB.Capacity, rb, fRB.FmaxMHz, fRB.FmaxMHz/rb)
	fmt.Printf("RPU-BMW  8-4 (%5d flows): %.3f cycles/pair at 600 MHz   -> %.1f Mpps, %.0f Gbps at 512 B\n",
		aRU.Capacity, ru, 600/ru, aRU.GbpsAt(512))

	// --- SRAM operation hiding ------------------------------------------
	sim := bmw.NewRPUBMWSim(2, 6)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		if sim.PushAvailable() && !sim.AlmostFull() {
			sim.Tick(bmw.PushOp(rng.Uint64()%65536, 0))
		} else if sim.PopAvailable() && sim.Len() > 0 {
			sim.Tick(bmw.PopOp())
		} else {
			sim.Tick(bmw.NopOp())
		}
	}
	reads, writes, collisions := sim.RAMStats()
	fmt.Printf("\nRPU-BMW SRAM traffic: %d reads, %d writes, %d read-during-write collisions\n",
		reads, writes, collisions)
	fmt.Println("(each collision is an operation hidden behind a pending write-back — Section 5.2.3)")
}
