// Quickstart: the BMW-Tree as a priority queue.
//
// A BMW-Tree of order M with L levels holds M(M^L-1)/(M-1) elements;
// push inserts by rank, pop returns the smallest rank. This is the
// PIFO flow-scheduler contract of the paper in its purest form.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	bmw "repro"
)

func main() {
	// The 3-level, 2-way tree of the paper's Figure 2 (capacity 14).
	tree := bmw.NewBMWTree(2, 3)
	fmt.Printf("BMW-Tree: order %d, %d levels, capacity %d\n",
		tree.Order(), tree.Levels(), tree.Cap())

	// Replay the worked example: push eight values...
	for _, v := range []uint64{10, 17, 57, 21, 32, 43, 74, 33} {
		if err := tree.Push(bmw.Element{Value: v, Meta: v}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after 8 pushes: %d stored, sub-tree counters %v\n",
		tree.Len(), tree.SubtreeCounts())

	// ...then push 28 and pop, as in Figure 2(b)/(c).
	if err := tree.Push(bmw.Element{Value: 28, Meta: 28}); err != nil {
		log.Fatal(err)
	}
	e, err := tree.Pop()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pop -> %d (the minimum)\n", e.Value)

	// Drain the rest: a PIFO dequeues in non-decreasing rank order.
	fmt.Print("drain -> ")
	for tree.Len() > 0 {
		e, _ := tree.Pop()
		fmt.Printf("%d ", e.Value)
	}
	fmt.Println()

	// The same contract at the paper's large scales:
	big := bmw.NewBMWTree(4, 8)
	fmt.Printf("an 8-level 4-way tree supports %d flows (the paper's 87k configuration)\n", big.Cap())
}
