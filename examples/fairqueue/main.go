// Fairqueue: Start-Time Fair Queueing over a PIFO block.
//
// Three flows with weights 1, 2 and 4 share a link. STFQ computes each
// packet's virtual start tag; the PIFO block (rank store + BMW-Tree
// flow scheduler) dequeues by tag. The dequeue byte shares converge to
// the 1:2:4 weights — the programmability the PIFO model buys: change
// the rank function and the scheduler becomes WFQ, SRPT, FCFS...
//
//	go run ./examples/fairqueue
package main

import (
	"fmt"
	"log"

	bmw "repro"
)

func main() {
	stfq := bmw.NewSTFQ(1)
	stfq.SetWeight(1, 1)
	stfq.SetWeight(2, 2)
	stfq.SetWeight(3, 4)

	block := bmw.NewPIFOBlock(bmw.NewBMWTree(2, 6), stfq)

	// All three flows are continuously backlogged with 1500-byte
	// packets; enqueue a burst per flow.
	const perFlow = 32
	for i := 0; i < perFlow; i++ {
		for flow := uint32(1); flow <= 3; flow++ {
			if err := block.Enqueue(bmw.Packet{Flow: flow, Bytes: 1500}, nil); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Serve the first 28 packets and tally bytes per flow.
	bytes := map[uint32]int{}
	var order []uint32
	for i := 0; i < 28; i++ {
		p, _, err := block.Dequeue()
		if err != nil {
			log.Fatal(err)
		}
		bytes[p.Flow] += int(p.Bytes)
		order = append(order, p.Flow)
	}

	fmt.Println("dequeue order (flow ids):", order)
	total := bytes[1] + bytes[2] + bytes[3]
	for flow := uint32(1); flow <= 3; flow++ {
		fmt.Printf("flow %d (weight %d): %5d bytes = %4.1f%% of the link\n",
			flow, 1<<(flow-1), bytes[flow], 100*float64(bytes[flow])/float64(total))
	}
	fmt.Println("expected shares: 14.3% / 28.6% / 57.1% (1:2:4)")
}
