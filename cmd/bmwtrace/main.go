// Command bmwtrace records and replays priority-queue operation
// traces. A trace is a JSON-lines file of push/pop operations; replay
// drives any scheduler in the module with it and reports dequeue-order
// accuracy against an exact reference — a practical way to compare the
// accurate BMW-Tree with the approximate schedulers on custom
// workloads.
//
// Usage:
//
//	bmwtrace -record -ops 50000 -pattern bursty -out trace.jsonl
//	bmwtrace -replay trace.jsonl -queue bmwtree
//	bmwtrace -replay trace.jsonl -queue sppifo
//
// Queues: bmwtree, pifo, pheap, pipeheap, sppifo, aifo, calendarq,
// gearbox.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	bmw "repro"
	"repro/internal/refpq"
)

// op is one trace record.
type op struct {
	Kind  string `json:"op"` // "push" | "pop"
	Value uint64 `json:"value,omitempty"`
	Meta  uint64 `json:"meta,omitempty"`
}

func main() {
	record := flag.Bool("record", false, "generate a trace")
	replay := flag.String("replay", "", "trace file to replay")
	out := flag.String("out", "trace.jsonl", "output file for -record")
	ops := flag.Int("ops", 50000, "operations to record")
	pattern := flag.String("pattern", "bursty", "workload: bursty | uniform | monotone")
	queue := flag.String("queue", "bmwtree", "scheduler for -replay")
	seed := flag.Int64("seed", 1, "record seed")
	metricsOut := flag.String("metrics-out", "", "write replay metrics snapshot JSON to this file")
	flag.Parse()

	switch {
	case *record:
		if err := doRecord(*out, *ops, *pattern, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *replay != "":
		if err := doReplay(*replay, *queue, *metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// doRecord writes a trace whose pushes follow the chosen rank pattern
// and whose pops keep the queue between empty and ~512 elements. The
// trace is fully determined by (n, pattern, seed): no wall-clock
// seeding, so re-recording with the same flags reproduces it exactly.
func doRecord(path string, n int, pattern string, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	mono := uint64(0)
	next := func() uint64 {
		switch pattern {
		case "bursty":
			return uint64(rng.Intn(4))*1000 + uint64(rng.Intn(100))
		case "monotone":
			mono += uint64(rng.Intn(8))
			return mono + uint64(rng.Intn(16))
		default: // uniform
			return uint64(rng.Intn(65536))
		}
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	defer w.Flush()
	enc := json.NewEncoder(w)

	inFlight := 0
	for i := 0; i < n; i++ {
		if inFlight == 0 || (rng.Intn(2) == 0 && inFlight < 512) {
			if err := enc.Encode(op{Kind: "push", Value: next(), Meta: uint64(i)}); err != nil {
				return err
			}
			inFlight++
		} else {
			if err := enc.Encode(op{Kind: "pop"}); err != nil {
				return err
			}
			inFlight--
		}
	}
	fmt.Printf("recorded %d ops (%s pattern) to %s\n", n, pattern, path)
	return nil
}

func newQueue(name string) (bmw.PriorityQueue, error) {
	switch name {
	case "bmwtree":
		return bmw.NewBMWTree(2, 12), nil
	case "pifo":
		return bmw.NewPIFO(8190), nil
	case "pheap":
		return bmw.NewPHeap(13), nil
	case "pipeheap":
		return bmw.NewPipelinedHeap(8191), nil
	case "sppifo":
		return bmw.NewSPPIFO(8, 8190), nil
	case "aifo":
		return bmw.NewAIFO(8190, 128, 0.1), nil
	case "calendarq":
		return bmw.NewCalendarQueue(64, 64, 8190), nil
	case "gearbox":
		return bmw.NewGearbox(3, 16, 16, 8190), nil
	default:
		return nil, fmt.Errorf("unknown queue %q", name)
	}
}

// doReplay drives the scheduler with the trace and scores accuracy.
// With metricsOut, the queue is wrapped in interface-level probes and
// the final snapshot (push/pop/rejection counts, occupancy highwater,
// accuracy gauges) is dumped as JSON.
func doReplay(path, queueName, metricsOut string) error {
	q, err := newQueue(queueName)
	if err != nil {
		return err
	}
	var reg *bmw.MetricsRegistry
	if metricsOut != "" {
		reg = bmw.NewMetricsRegistry()
		q = bmw.NewInstrumentedQueue(reg, queueName, q)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	ref := refpq.New() // exact reference mirror of the queue's contents
	var pushes, pops, nonMin, drops uint64
	var meter bmw.InversionMeter
	t0 := time.Now()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var o op
		if err := json.Unmarshal(sc.Bytes(), &o); err != nil {
			return fmt.Errorf("bad trace line: %w", err)
		}
		switch o.Kind {
		case "push":
			if err := q.Push(bmw.Element{Value: o.Value, Meta: o.Meta}); err != nil {
				drops++
				continue
			}
			ref.Push(refpq.Entry{Value: o.Value, Meta: o.Meta})
			pushes++
		case "pop":
			if ref.Len() == 0 {
				continue
			}
			min := ref.MinValue()
			e, err := q.Pop()
			if err != nil {
				continue
			}
			pops++
			meter.Observe(e.Value)
			if e.Value > min {
				nonMin++
			}
			if !ref.RemoveExact(refpq.Entry{Value: e.Value, Meta: e.Meta}) {
				return fmt.Errorf("scheduler popped an element it was never given: %+v", e)
			}
		default:
			return fmt.Errorf("bad trace op %q", o.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	elapsed := time.Since(t0)
	fmt.Printf("queue %s: %d pushes, %d pops, %d drops in %v (%.1f Mops/s)\n",
		queueName, pushes, pops, drops, elapsed.Round(time.Millisecond),
		float64(pushes+pops)/elapsed.Seconds()/1e6)
	fmt.Printf("accuracy: %d non-minimal pops (%.2f%%), inversion rate %.2f%%, mean displacement %.1f\n",
		nonMin, pct(nonMin, pops), 100*meter.Rate(), meter.MeanMagnitude())
	if nonMin == 0 {
		fmt.Println("exact PIFO behaviour: every pop returned the current minimum")
	}
	if metricsOut != "" {
		reg.Gauge(queueName + "_non_minimal_pop_pct").Set(pct(nonMin, pops))
		reg.Gauge(queueName + "_inversion_rate_pct").Set(100 * meter.Rate())
		reg.Gauge(queueName + "_mean_displacement").Set(meter.MeanMagnitude())
		b, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(metricsOut, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("replay metrics written to %s\n", metricsOut)
	}
	return nil
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
