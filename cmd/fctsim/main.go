// Command fctsim runs the packet-level flow-completion-time experiment
// of the paper's Section 6.4 (Figure 10): a star topology of TCP
// sources sharing one bottleneck scheduled by a PIFO block with STFQ
// ranks.
//
// Usage:
//
//	fctsim -sched bmw  -cap 4094 -flows 2000 -load 1.1
//	fctsim -sched pifo -cap 512  -flows 2000 -load 1.1
//	fctsim -sched bmw -hosts 32 -bps 1e9 -cap 254 -bmwlevels 7
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	bmw "repro"
)

// flushMetrics writes the registry snapshot to path; it serves both the
// normal exit and the signal path, where it captures the mid-run state.
func flushMetrics(reg *bmw.MetricsRegistry, path string) error {
	b, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func main() {
	schedName := flag.String("sched", "bmw", "bmw | pifo | unlimited")
	capacity := flag.Int("cap", 4094, "flow scheduler capacity")
	bmwOrder := flag.Int("bmworder", 2, "BMW tree order")
	bmwLevels := flag.Int("bmwlevels", 11, "BMW tree levels")
	hosts := flag.Int("hosts", 128, "source hosts")
	bps := flag.Float64("bps", 10e9, "link bandwidth, bits/s")
	propMs := flag.Float64("prop", 3, "per-link propagation delay, ms")
	flows := flag.Int("flows", 2000, "number of flows")
	load := flag.Float64("load", 1.1, "offered bottleneck load")
	store := flag.Int("store", 0, "rank store packet limit (0 = unlimited)")
	rank := flag.String("rank", "stfq", "rank function: stfq | srpt | fcfs")
	workload := flag.String("workload", "websearch", "flow sizes: websearch | datamining")
	ecn := flag.Int("ecn", 0, "ECN marking threshold in packets (0 = off)")
	dctcp := flag.Bool("dctcp", false, "enable DCTCP reaction to ECN marks")
	seed := flag.Int64("seed", 42, "workload seed")
	httpAddr := flag.String("http", "", "serve /metrics, /metrics.json and /debug/pprof on this address during the run")
	metricsOut := flag.String("metrics-out", "", "write the final metrics snapshot JSON to this file")
	flag.Parse()

	cfg := bmw.DefaultNetConfig()
	cfg.NumHosts = *hosts
	cfg.LinkBps = uint64(*bps)
	cfg.PropDelayNs = uint64(*propMs * 1e6)
	cfg.SchedCap = *capacity
	cfg.BMWOrder = *bmwOrder
	cfg.BMWLevels = *bmwLevels
	cfg.NumFlows = *flows
	cfg.Load = *load
	cfg.StoreLimit = *store
	cfg.Seed = *seed
	cfg.TCP.MaxRTONs = 10e9
	switch *schedName {
	case "bmw":
		cfg.Scheduler = bmw.SchedBMW
	case "pifo":
		cfg.Scheduler = bmw.SchedPIFO
	case "unlimited":
		cfg.Scheduler = bmw.SchedUnlimited
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *schedName)
		os.Exit(2)
	}
	switch *rank {
	case "stfq":
		cfg.Rank = bmw.RankSTFQ
	case "srpt":
		cfg.Rank = bmw.RankSRPT
	case "fcfs":
		cfg.Rank = bmw.RankFCFS
	default:
		fmt.Fprintf(os.Stderr, "unknown rank function %q\n", *rank)
		os.Exit(2)
	}
	switch *workload {
	case "websearch":
		cfg.Workload = bmw.WorkloadWebSearch
	case "datamining":
		cfg.Workload = bmw.WorkloadDataMining
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	cfg.ECNThresholdPkts = *ecn
	cfg.TCP.DCTCP = *dctcp

	fmt.Printf("scheduler %s (capacity %d flows), %d hosts, %.0f Gbps, %.1f ms links, %d flows at load %.2f\n",
		*schedName, *capacity, *hosts, *bps/1e9, *propMs, *flows, *load)

	// The netsim probes are owned atomics updated from the event loop,
	// so the HTTP endpoint can scrape them while Run is in progress.
	sim := bmw.NewNetSim(cfg)
	var reg *bmw.MetricsRegistry
	if *httpAddr != "" || *metricsOut != "" {
		reg = bmw.NewMetricsRegistry()
		sim.Instrument(reg, "fctsim")
	}
	var srv *http.Server
	if *httpAddr != "" {
		fmt.Printf("metrics endpoint on http://%s/metrics\n", *httpAddr)
		srv = bmw.NewMetricsServer(*httpAddr, reg)
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "metrics endpoint:", err)
			}
		}()
	}
	shutdownServer := func() {
		if srv == nil {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "metrics endpoint shutdown:", err)
		}
		cancel()
	}

	// The event loop has no preemption point, so an interrupt cannot
	// stop it mid-run; instead the signal path flushes the mid-run
	// metrics snapshot, drains the HTTP endpoint and exits cleanly.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	t0 := time.Now()
	type runResult = bmw.NetResult
	done := make(chan runResult, 1)
	go func() { done <- sim.Run() }()

	var res runResult
	select {
	case res = <-done:
		signal.Stop(sigc)
	case sig := <-sigc:
		fmt.Printf("fctsim: received %v after %v; flushing and shutting down\n",
			sig, time.Since(t0).Round(time.Millisecond))
		if *metricsOut != "" && reg != nil {
			if err := flushMetrics(reg, *metricsOut); err != nil {
				fmt.Fprintln(os.Stderr, "metrics snapshot:", err)
			} else {
				fmt.Printf("mid-run metrics snapshot written to %s\n", *metricsOut)
			}
		}
		shutdownServer()
		os.Exit(130)
	}
	fmt.Printf("simulated %.2f s in %v (%d events)\n\n",
		float64(res.SimEndNs)/1e9, time.Since(t0).Round(time.Millisecond), res.Events)

	fmt.Print(bmw.FCTTable(*schedName, bmw.FCTBins(res)))
	fmt.Println()
	fmt.Printf("flows completed: %d/%d, overall mean normalised FCT: %.3f\n",
		res.Completed, res.Generated, res.FCT.OverallMeanNorm())
	fmt.Printf("bottleneck loss: %.4f (scheduler-full drops %d, buffer drops %d)\n",
		res.LossRate, res.BlockStats.DropsScheduler, res.BlockStats.DropsStore)
	fmt.Printf("TCP retransmits: %d, timeouts: %d\n", res.Retransmits, res.Timeouts)

	if *metricsOut != "" {
		if err := flushMetrics(reg, *metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "metrics snapshot:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
	}
	shutdownServer()
}
