package main

import (
	"math/rand"
	"path/filepath"
	"testing"
)

// TestKillTrialsRecoverBitIdentically is the in-tree smoke version of
// the harness: a handful of kill points per queue kind must all recover
// with bit-identical drains.
func TestKillTrialsRecoverBitIdentically(t *testing.T) {
	for _, kind := range []string{"core", "pifo", "rbmw", "rpubmw"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			root := t.TempDir()
			cfg := config{kind: kind, m: 4, l: 3, pifoCap: 64, ops: 500, ckptEvery: 32, batch: 4}
			total, err := calibrate(filepath.Join(root, "cal"), cfg, 11)
			if err != nil {
				t.Fatal(err)
			}
			krng := rand.New(rand.NewSource(99))
			for trial := 0; trial < 6; trial++ {
				tcfg := cfg
				tcfg.nonAtomic = trial%2 == 1
				budget := 1 + krng.Int63n(total)
				dir := filepath.Join(root, "kill", string(rune('a'+trial)))
				diag, err := killTrial(dir, tcfg, 11, budget, krng.Int63())
				if err != nil {
					t.Fatalf("trial %d (budget %d): %v", trial, budget, err)
				}
				if diag != "" {
					t.Fatalf("trial %d (budget %d) diverged: %s", trial, budget, diag)
				}
			}
		})
	}
}

// TestKillTrialBudgetSweep pins the tiniest budgets, which crash inside
// the very first WAL record or the directory bootstrap.
func TestKillTrialBudgetSweep(t *testing.T) {
	cfg := config{kind: "core", m: 2, l: 2, ops: 120, ckptEvery: 16, batch: 2}
	for budget := int64(1); budget <= 40; budget += 13 {
		dir := filepath.Join(t.TempDir(), "d")
		diag, err := killTrial(dir, cfg, 3, budget, budget*7+1)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if diag != "" {
			t.Fatalf("budget %d diverged: %s", budget, diag)
		}
	}
}
