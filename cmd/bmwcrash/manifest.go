package main

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/persist"
)

// manifestTrials is the kill-point family for the engine checkpoint
// manifest itself: each trial simulates a crash inside the ENGINE.json
// write — a torn prefix, a rotted byte, or a crash between the tmp
// write and the rename — and requires the restore path to refuse the
// damaged manifest with a typed *persist.ManifestError naming the bad
// field. A decode panic, an untyped error, or a silent restore from a
// half-written manifest is a divergence. The tmp-left-behind case must
// restore cleanly: the rename never happened, so the previous sealed
// manifest is still the published one.
func manifestTrials(root string, kills int, seed int64) (int, error) {
	dir := filepath.Join(root, "ckpt")
	cfg := engine.Config{
		Shards: 2, Kind: engine.KindCore,
		Order: 2, Levels: 6, Cap: 126,
		RingSize: 256, BatchSize: 16,
		Routing: engine.RouteRank, RankBits: 16,
	}
	e, err := engine.New(cfg)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 120; i++ {
		_ = e.Push(core.Element{Value: uint64(rng.Intn(1 << 16)), Meta: uint64(i)})
	}
	e.Close()
	if err := e.Checkpoint(dir); err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	manPath := filepath.Join(dir, engine.EngineManifestName)
	pristine, err := os.ReadFile(manPath)
	if err != nil {
		return 0, err
	}
	if len(pristine) < 4 {
		return 0, fmt.Errorf("implausibly small manifest (%d bytes)", len(pristine))
	}

	failed := 0
	for trial := 0; trial < kills; trial++ {
		var mode string
		tmp := manPath + ".tmp"
		switch trial % 3 {
		case 0:
			// Killed mid-write: a torn prefix. The bound excludes the
			// final "}\n" so the prefix can never be complete JSON.
			cut := 1 + rng.Intn(len(pristine)-2)
			mode = fmt.Sprintf("torn at %d/%d", cut, len(pristine))
			err = os.WriteFile(manPath, pristine[:cut], 0o644)
		case 1:
			b := append([]byte(nil), pristine...)
			off := rng.Intn(len(b))
			b[off] ^= 0xff
			mode = fmt.Sprintf("rotted byte %d", off)
			err = os.WriteFile(manPath, b, 0o644)
		default:
			// Killed between the tmp write and the rename: the published
			// manifest is untouched, the half-written tmp is litter.
			cut := 1 + rng.Intn(len(pristine)-2)
			mode = fmt.Sprintf("tmp left at %d/%d", cut, len(pristine))
			err = os.WriteFile(tmp, pristine[:cut], 0o644)
		}
		if err != nil {
			return failed, err
		}

		if diag := manifestRestoreCheck(dir, cfg, trial%3 == 2); diag != "" {
			failed++
			fmt.Printf("manifest trial %d (%s) DIVERGED: %s\n", trial, mode, diag)
		}

		if err := os.WriteFile(manPath, pristine, 0o644); err != nil {
			return failed, err
		}
		os.Remove(tmp)
	}
	return failed, nil
}

// manifestRestoreCheck attempts a restore from dir and classifies the
// outcome. wantClean is the tmp-left-behind case; every other damage
// mode must be refused with a typed, field-naming manifest error.
func manifestRestoreCheck(dir string, cfg engine.Config, wantClean bool) (diag string) {
	defer func() {
		if r := recover(); r != nil {
			diag = fmt.Sprintf("restore panicked: %v", r)
		}
	}()
	cfg.RestoreDir = dir
	r, err := engine.New(cfg)
	if err == nil {
		r.Close()
		if wantClean {
			return ""
		}
		return "damaged manifest restored without complaint"
	}
	if wantClean {
		return fmt.Sprintf("intact manifest refused: %v", err)
	}
	var me *persist.ManifestError
	if !errors.As(err, &me) {
		return fmt.Sprintf("untyped refusal: %v", err)
	}
	if me.Field == "" {
		return fmt.Sprintf("manifest error names no field: %v", me)
	}
	return ""
}
