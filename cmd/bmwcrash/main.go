// bmwcrash is the kill-point crash-recovery harness for the persistence
// subsystem: it runs a seeded workload against each exact queue while a
// WAL and periodic checkpoints stream to a simulated crash disk, kills
// the "process" at a random persisted-byte offset — including mid-WAL-
// record and mid-snapshot — recovers from the torn directory, and
// differentially drains the recovered queue against an uninterrupted
// golden replay of the durable log. Any difference in pop order, any
// invariant-checker failure after recovery, or any durable record that
// was never issued is a reported divergence.
//
// Examples:
//
//	bmwcrash -kills 100
//	bmwcrash -queue rpubmw -kills 25 -ops 3000 -seed 7
//	bmwcrash -queue rbmw -kills 200 -ckpt 32 -batch 8
//
// The run is reproducible from the printed command line: the seed
// drives the workload, the kill-point budgets and the torn-suffix
// lengths.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bmwcrash: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		queue   = flag.String("queue", "all", "queue under test: core | pifo | rbmw | rpubmw | all")
		kills   = flag.Int("kills", 100, "kill trials per queue kind")
		ops     = flag.Int("ops", 1500, "workload steps per run")
		seed    = flag.Int64("seed", 1, "seed for the workload, kill points and torn suffixes")
		m       = flag.Int("m", 4, "tree order")
		l       = flag.Int("l", 3, "tree levels")
		pifoCap = flag.Int("cap", 64, "PIFO capacity")
		ckpt    = flag.Int("ckpt", 64, "recorded ops between checkpoints")
		batch   = flag.Int("batch", 4, "WAL group-commit threshold")
		scratch = flag.String("dir", "", "scratch directory (default: a fresh temp dir)")
		keep    = flag.Bool("keep", false, "keep trial directories instead of removing them")
	)
	flag.Parse()
	if *kills < 1 || *ops < 1 {
		fatalf("-kills and -ops must be positive")
	}

	var kinds []string
	switch *queue {
	case "all":
		kinds = []string{"core", "pifo", "rbmw", "rpubmw"}
	case "core", "pifo", "rbmw", "rpubmw":
		kinds = []string{*queue}
	default:
		fatalf("unknown -queue %q (want core, pifo, rbmw, rpubmw or all)", *queue)
	}

	root := *scratch
	if root == "" {
		var err error
		root, err = os.MkdirTemp("", "bmwcrash-")
		if err != nil {
			fatalf("scratch dir: %v", err)
		}
		if !*keep {
			defer os.RemoveAll(root)
		}
	}

	fmt.Printf("bmwcrash -queue %s -kills %d -ops %d -seed %d -m %d -l %d -cap %d -ckpt %d -batch %d\n",
		strings.Join(kinds, ","), *kills, *ops, *seed, *m, *l, *pifoCap, *ckpt, *batch)
	fmt.Printf("scratch: %s\n", root)

	divergences := 0
	for _, kind := range kinds {
		pm := &persistMetrics{}
		cfg := config{
			kind: kind, m: *m, l: *l, pifoCap: *pifoCap,
			ops: *ops, ckptEvery: *ckpt, batch: *batch, metrics: pm,
		}
		calDir := filepath.Join(root, kind+"-calibrate")
		totalBytes, err := calibrate(calDir, cfg, *seed)
		if err != nil {
			fatalf("%s: calibration: %v", kind, err)
		}
		if totalBytes < 1 {
			fatalf("%s: calibration wrote no bytes", kind)
		}
		if !*keep {
			os.RemoveAll(calDir)
		}

		// The kill budgets and torn-suffix seeds draw from their own
		// stream so -kills does not perturb the workload schedule.
		krng := rand.New(rand.NewSource(*seed ^ 0x9e3779b9))
		failed := 0
		for trial := 0; trial < *kills; trial++ {
			budget := 1 + krng.Int63n(totalBytes)
			tearSeed := krng.Int63()
			tcfg := cfg
			tcfg.nonAtomic = trial%2 == 1 // exercise torn .snap files too
			dir := filepath.Join(root, fmt.Sprintf("%s-kill-%04d", kind, trial))
			diag, err := killTrial(dir, tcfg, *seed, budget, tearSeed)
			if err != nil {
				fatalf("%s trial %d (budget %d): %v", kind, trial, budget, err)
			}
			if diag != "" {
				failed++
				divergences++
				fmt.Printf("%s trial %d DIVERGED (budget %d bytes, nonatomic=%v): %s\n",
					kind, trial, budget, tcfg.nonAtomic, diag)
				fmt.Printf("  evidence kept in %s\n", dir)
				continue
			}
			if !*keep {
				os.RemoveAll(dir)
			}
		}
		fmt.Printf("%-6s %4d kills over %7d persisted bytes: %d divergence(s); recoveries=%d replayed-ops=%d torn-tails=%d snapshots-skipped=%d\n",
			kind, *kills, totalBytes, failed, pm.recoveries, pm.replayed, pm.tornTails, pm.skipped)
	}

	// Kill-points inside the engine checkpoint-manifest write: torn or
	// rotted ENGINE.json must be refused typed, never decode-panicked.
	mfails, err := manifestTrials(filepath.Join(root, "manifest"), *kills, *seed)
	if err != nil {
		fatalf("manifest trials: %v", err)
	}
	divergences += mfails
	fmt.Printf("manifest %4d kill-point trials: %d refusal failure(s)\n", *kills, mfails)

	if divergences > 0 {
		fatalf("%d divergence(s) across %d kill trials per kind", divergences, *kills)
	}
	fmt.Println("all kill trials recovered bit-identically")
}
