package main

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/persist"
	"repro/internal/pifo"
	"repro/internal/rbmw"
	"repro/internal/rpubmw"
)

// config describes one crash-trial family: the queue under test and the
// knobs shared by its calibration run and every kill trial.
type config struct {
	kind      string // core | pifo | rbmw | rpubmw
	m, l      int    // tree shape (ignored by pifo)
	pifoCap   int
	ops       int // workload steps per run
	ckptEvery int // recorded ops between checkpoints
	batch     int // WAL group-commit threshold
	nonAtomic bool
	metrics   *persistMetrics // optional per-kind counter rollup
}

// persistMetrics accumulates recovery counters across a kind's trials.
type persistMetrics struct {
	recoveries, replayed, tornTails, skipped uint64
}

// queueDriver adapts one exact-queue implementation to the uniform
// trial protocol: step the seeded workload, fence the pipeline, drain.
type queueDriver struct {
	q         persist.Checkpointable
	issued    []persist.Op // ops successfully handed to the WAL
	step      func(rng *rand.Rand, i int) (persist.Op, bool, error)
	quiescent func() bool
	settle    func() error
	drain     func() []core.Element
}

const settleBound = 100000

func newDriver(cfg config) (*queueDriver, error) {
	switch cfg.kind {
	case "core":
		t := core.New(cfg.m, cfg.l)
		d := &queueDriver{q: t}
		d.step = func(rng *rand.Rand, i int) (persist.Op, bool, error) {
			if t.Len() > 0 && (rng.Intn(3) == 0 || t.AlmostFull()) {
				e, err := t.Pop()
				if err != nil {
					return persist.Op{}, false, err
				}
				p, q := t.OpStats()
				return persist.Op{Kind: hw.Pop, Cycle: p + q, Value: e.Value, Meta: e.Meta}, true, nil
			}
			e := core.Element{Value: uint64(rng.Intn(1000)), Meta: uint64(i)}
			if err := t.Push(e); err != nil {
				return persist.Op{}, false, err
			}
			p, q := t.OpStats()
			return persist.Op{Kind: hw.Push, Cycle: p + q, Value: e.Value, Meta: e.Meta}, true, nil
		}
		d.quiescent = func() bool { return true }
		d.settle = func() error { return nil }
		d.drain = func() []core.Element {
			var out []core.Element
			for t.Len() > 0 {
				e, err := t.Pop()
				if err != nil {
					break
				}
				out = append(out, e)
			}
			return out
		}
		return d, nil
	case "pifo":
		p := pifo.New(cfg.pifoCap)
		d := &queueDriver{q: p}
		d.step = func(rng *rand.Rand, i int) (persist.Op, bool, error) {
			if p.Len() > 0 && (rng.Intn(3) == 0 || p.AlmostFull()) {
				e, err := p.Pop()
				if err != nil {
					return persist.Op{}, false, err
				}
				ps, qs := p.Stats()
				return persist.Op{Kind: hw.Pop, Cycle: ps + qs, Value: e.Value, Meta: e.Meta}, true, nil
			}
			e := core.Element{Value: uint64(rng.Intn(1000)), Meta: uint64(i)}
			if err := p.Push(e); err != nil {
				return persist.Op{}, false, err
			}
			ps, qs := p.Stats()
			return persist.Op{Kind: hw.Push, Cycle: ps + qs, Value: e.Value, Meta: e.Meta}, true, nil
		}
		d.quiescent = func() bool { return true }
		d.settle = func() error { return nil }
		d.drain = func() []core.Element {
			var out []core.Element
			for p.Len() > 0 {
				e, err := p.Pop()
				if err != nil {
					break
				}
				out = append(out, e)
			}
			return out
		}
		return d, nil
	case "rbmw":
		s := rbmw.New(cfg.m, cfg.l)
		return cycleDriver(s, s.Quiescent, s.Drain), nil
	case "rpubmw":
		s := rpubmw.New(cfg.m, cfg.l)
		return cycleDriver(s, s.Quiescent, s.Drain), nil
	default:
		return nil, fmt.Errorf("unknown queue kind %q", cfg.kind)
	}
}

// cycleSim is the per-cycle surface the two hardware designs share.
type cycleSim interface {
	persist.Checkpointable
	Tick(hw.Op) (*core.Element, error)
	Cycle() uint64
	Len() int
	AlmostFull() bool
	PushAvailable() bool
	PopAvailable() bool
}

func cycleDriver(s cycleSim, quiescent func() bool, drain func() []core.Element) *queueDriver {
	d := &queueDriver{q: s}
	d.step = func(rng *rand.Rand, i int) (persist.Op, bool, error) {
		switch {
		case s.PopAvailable() && s.Len() > 0 && rng.Intn(3) == 0:
			e, err := s.Tick(hw.PopOp())
			if err != nil {
				return persist.Op{}, false, err
			}
			if e == nil {
				return persist.Op{}, false, nil
			}
			return persist.Op{Kind: hw.Pop, Cycle: s.Cycle(), Value: e.Value, Meta: e.Meta}, true, nil
		case s.PushAvailable() && !s.AlmostFull() && rng.Intn(2) == 0:
			op := hw.PushOp(uint64(rng.Intn(1000)), uint64(i))
			if _, err := s.Tick(op); err != nil {
				return persist.Op{}, false, err
			}
			return persist.Op{Kind: hw.Push, Cycle: s.Cycle(), Value: op.Value, Meta: op.Meta}, true, nil
		default:
			_, err := s.Tick(hw.NopOp())
			return persist.Op{}, false, err
		}
	}
	d.quiescent = quiescent
	d.settle = func() error {
		for i := 0; !quiescent(); i++ {
			if i > settleBound {
				return fmt.Errorf("pipeline did not quiesce within %d cycles", settleBound)
			}
			if _, err := s.Tick(hw.NopOp()); err != nil {
				return err
			}
		}
		return nil
	}
	d.drain = drain
	return d
}

func options(cfg config, fs persist.FS) persist.Options {
	return persist.Options{
		WAL:                persist.WALOptions{BatchOps: cfg.batch, Sync: persist.SyncBatch},
		NonAtomicSnapshots: cfg.nonAtomic,
		FS:                 fs,
	}
}

// runWorkload drives the seeded schedule, logging every accepted op and
// checkpointing on cadence. It returns the manager's first error —
// persist.ErrKilled is the expected abort in a kill trial.
func runWorkload(d *queueDriver, m *persist.Manager, rng *rand.Rand, cfg config) error {
	sinceCkpt := 0
	for i := 0; i < cfg.ops; i++ {
		op, ok, err := d.step(rng, i)
		if err != nil {
			return fmt.Errorf("workload step %d: %w", i, err)
		}
		if ok {
			if err := m.Record(op); err != nil {
				return err
			}
			d.issued = append(d.issued, op)
			sinceCkpt++
		}
		// The register pipeline snapshots mid-flight waves, so it may
		// checkpoint any cycle; the others only in quiescent windows.
		if sinceCkpt >= cfg.ckptEvery && (d.quiescent() || cfg.kind == "rbmw") {
			if err := m.Checkpoint(); err != nil {
				return err
			}
			sinceCkpt = 0
		}
	}
	return nil
}

// calibrate runs one uninterrupted workload against an unlimited crash
// disk and reports the total bytes the persistence layer wrote — the
// sample space for kill-point budgets.
func calibrate(dir string, cfg config, seed int64) (int64, error) {
	disk := persist.NewCrashDisk(1<<62, seed)
	d, err := newDriver(cfg)
	if err != nil {
		return 0, err
	}
	m, rep, err := persist.Open(dir, d.q, options(cfg, disk))
	if err != nil {
		return 0, err
	}
	if rep.WALRecords != 0 || rep.SnapshotSeq != 0 {
		return 0, fmt.Errorf("calibration dir %s is not fresh", dir)
	}
	if err := runWorkload(d, m, rand.New(rand.NewSource(seed)), cfg); err != nil {
		return 0, err
	}
	if err := m.Close(); err != nil {
		return 0, err
	}
	return disk.BytesWritten(), nil
}

// killTrial crashes one run after budget persisted bytes, recovers from
// the torn directory, and differentially validates the recovered queue.
// A non-empty string describes a divergence; error reports harness
// failures unrelated to the property under test.
func killTrial(dir string, cfg config, seed, budget, tearSeed int64) (string, error) {
	disk := persist.NewCrashDisk(budget, tearSeed)
	d, err := newDriver(cfg)
	if err != nil {
		return "", err
	}
	m, _, err := persist.Open(dir, d.q, options(cfg, disk))
	if err == nil {
		err = runWorkload(d, m, rand.New(rand.NewSource(seed)), cfg)
	}
	if err != nil && !errors.Is(err, persist.ErrKilled) {
		return "", fmt.Errorf("workload failed before the crash point: %w", err)
	}
	// The process "dies" here: the manager is abandoned un-closed, and
	// the crash disk has already torn every unsynced file suffix.

	rec, err := newDriver(cfg)
	if err != nil {
		return "", err
	}
	m2, rep, err := persist.Open(dir, rec.q, options(cfg, persist.OSFS{}))
	if err != nil {
		return fmt.Sprintf("recovery failed: %v", err), nil
	}
	if err := m2.Close(); err != nil {
		return fmt.Sprintf("post-recovery close failed: %v", err), nil
	}
	if cfg.metrics != nil {
		cfg.metrics.recoveries++
		cfg.metrics.replayed += uint64(rep.ReplayedOps)
		cfg.metrics.skipped += uint64(rep.SnapshotsSkipped)
		if rep.TornTail {
			cfg.metrics.tornTails++
		}
	}

	// 1. The durable op log must be a prefix of what the crashed run
	// actually issued: no invented, reordered or corrupted records.
	if len(rep.Ops) > len(d.issued) {
		return fmt.Sprintf("recovered %d ops but only %d were issued", len(rep.Ops), len(d.issued)), nil
	}
	for i, op := range rep.Ops {
		if op != d.issued[i] {
			return fmt.Sprintf("durable op %d diverged: %+v vs issued %+v", i, op, d.issued[i]), nil
		}
	}

	// 2. Golden replay: the durable log must drive an uninterrupted
	// reference queue without a pop audit failure.
	want, gerr := goldenDrain(cfg, rep.Ops)
	if gerr != "" {
		return gerr, nil
	}

	// 3. The recovered queue settles and passes its invariant checker.
	if err := rec.settle(); err != nil {
		return fmt.Sprintf("recovered queue did not settle: %v", err), nil
	}
	if err := rec.q.VerifyRecovered(); err != nil {
		return fmt.Sprintf("recovered queue failed verification: %v", err), nil
	}

	// 4. Differential drain: bit-identical pop order.
	got := rec.drain()
	if len(got) != len(want) {
		return fmt.Sprintf("drain lengths diverged: recovered %d vs golden %d", len(got), len(want)), nil
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Sprintf("drain pop %d diverged: recovered %+v vs golden %+v", i, got[i], want[i]), nil
		}
	}
	return "", nil
}

// goldenDrain replays the durable log into an uninterrupted reference
// queue and drains it. The software tree is the golden model for every
// tree-ordered queue; the PIFO is its own reference because its FIFO
// tie order legitimately differs from the tree's.
func goldenDrain(cfg config, ops []persist.Op) ([]core.Element, string) {
	if cfg.kind == "pifo" {
		p := pifo.New(cfg.pifoCap)
		for i, op := range ops {
			if err := p.Replay(op); err != nil {
				return nil, fmt.Sprintf("golden replay op %d: %v", i, err)
			}
		}
		var out []core.Element
		for p.Len() > 0 {
			e, err := p.Pop()
			if err != nil {
				return nil, fmt.Sprintf("golden drain: %v", err)
			}
			out = append(out, e)
		}
		return out, ""
	}
	t := core.New(cfg.m, cfg.l)
	for i, op := range ops {
		if err := t.Replay(op); err != nil {
			return nil, fmt.Sprintf("golden replay op %d: %v", i, err)
		}
	}
	var out []core.Element
	for t.Len() > 0 {
		e, err := t.Pop()
		if err != nil {
			return nil, fmt.Sprintf("golden drain: %v", err)
		}
		out = append(out, e)
	}
	return out, ""
}
