// bmwload is the load generator for bmwd: it drives the wire protocol
// with concurrent pipelined connections and reports throughput (Mops)
// and batch latency quantiles in the bmwperf/v1 JSON schema, so engine
// serving numbers land in the same regression machinery as the
// in-process queue benchmarks.
//
// Two pacing modes:
//
//	closed  each in-flight pipeline slot issues its next batch the
//	        moment the previous one completes — measures capacity.
//	open    batches are issued on a fixed schedule at -rate ops/sec
//	        regardless of completions — measures latency under a
//	        target load, including coordinated-omission-free queueing
//	        delay (latency is measured from the scheduled issue time).
//
// Connections are resilient: each one retries idempotently-keyed
// batches across reconnects with capped backoff, honours -req-timeout
// per attempt, and fails over to -standby addresses when the primary
// dies or answers StatusNotPrimary. Retry/timeout/reconnect/failover
// tallies land in the summary and the JSON report, and the run exits
// non-zero if any acknowledged op's fate is indeterminate (a retry
// missed the server's dedup replay window).
//
// Examples:
//
//	bmwload -addr 127.0.0.1:9970 -conns 2 -pipeline 4 -duration 5s
//	bmwload -inproc -shards 4 -duration 5s -out BENCH_load.json
//	bmwload -addr 127.0.0.1:9970 -mode open -rate 500000 -duration 10s
//	bmwload -addr 127.0.0.1:9970 -standby 127.0.0.1:9980 -duration 30s
//	bmwload -cluster 127.0.0.1:9970,127.0.0.1:9972 -duration 10s
//
// With -cluster, bmwload fetches the cluster map from the seed
// addresses and drives every node through the routing client: pushes
// go to their owner under the map (StatusNotOwner redirects refresh
// it), pops run the cross-node strict merge, and the summary and JSON
// report gain per-node op counts plus redirect and map-refresh
// tallies.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/wire"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bmwload: "+format+"\n", args...)
	os.Exit(1)
}

// metric mirrors the bmwperf/v1 metric shape.
type metric struct {
	Value     float64 `json:"value"`
	Unit      string  `json:"unit"`
	Direction string  `json:"direction"`
}

// report mirrors the bmwperf/v1 document so BENCH_load.json slots into
// the same comparator as the other experiments.
type report struct {
	Schema     string            `json:"schema"`
	Experiment string            `json:"experiment"`
	Quick      bool              `json:"quick"`
	GoVersion  string            `json:"go_version"`
	GoMaxProcs int               `json:"gomaxprocs"`
	NumCPU     int               `json:"num_cpu"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	Commit     string            `json:"commit"`
	Metrics    map[string]metric `json:"metrics"`
}

// counters aggregates worker-side tallies with atomics.
type counters struct {
	ops          atomic.Uint64 // operations completed (any status)
	pushOK       atomic.Uint64
	popOK        atomic.Uint64
	empty        atomic.Uint64
	backpressure atomic.Uint64
	overloaded   atomic.Uint64
	full         atomic.Uint64
	invalid      atomic.Uint64
	protoErrs    atomic.Uint64
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9970", "bmwd address to load")
		inproc   = flag.Bool("inproc", false, "start an in-process engine+server on a loopback port instead of dialing -addr")
		shards   = flag.Int("shards", 4, "shard count for -inproc")
		queue    = flag.String("queue", "core", "queue kind for -inproc: core, pifo, rbmw, rpubmw")
		conns    = flag.Int("conns", 2, "client connections")
		pipeline = flag.Int("pipeline", 4, "in-flight batches per connection")
		batch    = flag.Int("batch", 64, "operations per batch")
		mix      = flag.Float64("mix", 0.5, "push fraction of the op mix (rest are pops)")
		duration = flag.Duration("duration", 5*time.Second, "measurement length")
		mode     = flag.String("mode", "closed", "pacing: closed (capacity) or open (fixed -rate)")
		rate     = flag.Float64("rate", 1e6, "target ops/sec for -mode open, across all workers")
		seed     = flag.Int64("seed", 1, "workload seed")
		out      = flag.String("out", "", "write bmwperf/v1 JSON report here (default stdout summary only)")
		metrics  = flag.String("metrics-addr", "", "bmwd obs HTTP address (host:port) to scrape for per-stage latency quantiles and the server trace")
		traceOut = flag.String("trace-out", "", "write the server's Chrome trace JSON here after the run (needs -metrics-addr with bmwd -trace-sample, or -inproc)")
		sample   = flag.Int("trace-sample", 64, "inproc server: export 1 of every N request spans to the trace")
		seeds    = flag.String("cluster", "", "comma-separated cluster seed addresses: fetch the cluster map and route ops across the nodes instead of dialing -addr")
		standby  = flag.String("standby", "", "comma-separated standby addresses to fail over to")
		reqTO    = flag.Duration("req-timeout", 5*time.Second, "per-attempt request deadline")
		retryMax = flag.Int("retry-max", 8, "attempts per request before giving up (0 = unlimited)")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version("bmwload"))
		return
	}
	if *mix < 0 || *mix > 1 {
		fatalf("-mix %v out of [0,1]", *mix)
	}
	if *mode != "closed" && *mode != "open" {
		fatalf("unknown -mode %q (want closed or open)", *mode)
	}

	target := *addr
	var (
		stopInproc func()
		src        *stageSource
	)
	if *inproc {
		target, src, stopInproc = startInproc(*shards, *queue, *sample)
		defer stopInproc()
	}
	if *metrics != "" {
		src = remoteSource(*metrics)
	}
	if *traceOut != "" && src == nil {
		fatalf("-trace-out needs -metrics-addr (a bmwd run with -http and -trace-sample) or -inproc")
	}

	var (
		clients []*wire.ResilientClient
		cl      *cluster.Client
	)
	if *seeds != "" {
		if *inproc {
			fatalf("-cluster and -inproc are mutually exclusive")
		}
		c, err := cluster.NewClient(cluster.Options{
			Seeds:          strings.Split(*seeds, ","),
			RequestTimeout: *reqTO,
			MaxAttempts:    *retryMax,
		})
		if err != nil {
			fatalf("cluster client: %v", err)
		}
		defer c.Close()
		cl = c
		// Probe through the merge once so a dead cluster fails fast.
		if _, err := cl.PopMin(); err != nil {
			fatalf("probe cluster %s: %v", *seeds, err)
		}
		m := cl.Map()
		fmt.Printf("bmwload: cluster map version %d, %d node(s), %s routing, %d worker(s), %s %s\n",
			m.Version, len(m.Nodes), m.Mode, *conns**pipeline, *mode, *duration)
	} else {
		addrs := []string{target}
		if *standby != "" {
			addrs = append(addrs, strings.Split(*standby, ",")...)
		}
		clients = make([]*wire.ResilientClient, *conns)
		for i := range clients {
			c, err := wire.NewResilientClient(wire.ResilientOptions{
				Addrs:          addrs,
				RequestTimeout: *reqTO,
				MaxAttempts:    *retryMax,
				Conn: wire.ClientOptions{
					ReadTimeout:  *reqTO,
					WriteTimeout: *reqTO,
				},
			})
			if err != nil {
				fatalf("client: %v", err)
			}
			defer c.Close()
			clients[i] = c
		}
		// Probe the primary once so a bad address fails fast and loudly.
		if _, err := clients[0].Do([]wire.Op{{Kind: wire.OpPop}}); err != nil {
			fatalf("probe %s: %v", strings.Join(addrs, ","), err)
		}
		fmt.Printf("bmwload: %d resilient conn(s) x %d pipeline to %s, %s %s\n",
			*conns, *pipeline, strings.Join(addrs, ","), *mode, *duration)
	}

	var (
		cnt  counters
		hist = obs.NewQuantileHistogram() // batch latency, microseconds
		wg   sync.WaitGroup
	)
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	workers := *conns * *pipeline
	perWorkerInterval := time.Duration(0)
	if *mode == "open" {
		if *rate <= 0 {
			fatalf("-mode open needs -rate > 0")
		}
		// Each worker issues batches of -batch ops; the fleet together
		// must hit -rate ops/sec, so each worker's period is
		// workers*batch/rate seconds.
		perWorkerInterval = time.Duration(float64(workers) * float64(*batch) / *rate * float64(time.Second))
	}

	var startSnap obs.Snapshot
	if src != nil {
		var err error
		if startSnap, err = src.snap(); err != nil {
			fatalf("scrape %s: %v", src.name, err)
		}
	}

	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var d doer = cl
			if cl == nil {
				d = clients[w%len(clients)]
			}
			runWorker(ctx, d, workerCfg{
				batch:    *batch,
				mix:      *mix,
				rng:      rand.New(rand.NewSource(*seed + int64(w))),
				interval: perWorkerInterval,
				offset:   time.Duration(w) * perWorkerInterval / time.Duration(workers),
			}, &cnt, hist)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if n := cnt.protoErrs.Load(); n > 0 {
		fatalf("%d protocol error(s) during run", n)
	}
	if n := cnt.invalid.Load(); n > 0 {
		fatalf("%d operation(s) rejected as invalid", n)
	}

	snap := hist.Snapshot()
	mops := float64(cnt.ops.Load()) / elapsed.Seconds() / 1e6
	fmt.Printf("bmwload: %.3f Mops (%d ops in %v)\n", mops, cnt.ops.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("bmwload: batch latency us p50=%d p99=%d p999=%d max=%d\n",
		snap.P50, snap.P99, snap.P999, snap.Max)
	fmt.Printf("bmwload: push_ok=%d pop_ok=%d empty=%d backpressure=%d overloaded=%d full=%d\n",
		cnt.pushOK.Load(), cnt.popOK.Load(), cnt.empty.Load(), cnt.backpressure.Load(),
		cnt.overloaded.Load(), cnt.full.Load())

	var rs wire.ResilientStats
	clusterMetrics := map[string]metric{}
	if cl != nil {
		cs := cl.Stats()
		nodeLine := ""
		for id, ns := range cs.PerNode {
			rs.Retries += ns.Resilient.Retries
			rs.Timeouts += ns.Resilient.Timeouts
			rs.Reconnects += ns.Resilient.Reconnects
			rs.Failovers += ns.Resilient.Failovers
			rs.DedupMisses += ns.Resilient.DedupMisses
			nodeLine += fmt.Sprintf(" node%d=%d", id, ns.Ops)
			clusterMetrics[fmt.Sprintf("load_cluster_node%d_ops", id)] = metric{float64(ns.Ops), "count", "higher"}
		}
		fmt.Printf("bmwload: cluster redirects=%d map_refreshes=%d map_version=%d per-node ops:%s\n",
			cs.Redirects, cs.MapRefreshes, cs.MapVersion, nodeLine)
		clusterMetrics["load_cluster_redirects"] = metric{float64(cs.Redirects), "count", "lower"}
		clusterMetrics["load_cluster_map_refreshes"] = metric{float64(cs.MapRefreshes), "count", "lower"}
		clusterMetrics["load_cluster_map_version"] = metric{float64(cs.MapVersion), "count", "higher"}
	}
	for _, c := range clients {
		s := c.Stats()
		rs.Retries += s.Retries
		rs.Timeouts += s.Timeouts
		rs.Reconnects += s.Reconnects
		rs.Failovers += s.Failovers
		rs.DedupMisses += s.DedupMisses
	}
	fmt.Printf("bmwload: retries=%d timeouts=%d reconnects=%d failovers=%d dedup_miss=%d\n",
		rs.Retries, rs.Timeouts, rs.Reconnects, rs.Failovers, rs.DedupMisses)

	// Per-stage server-side latency decomposition: the run window's
	// delta between the start and end scrapes of the tracer's stage
	// quantile histograms.
	stageMetrics := map[string]metric{}
	if src != nil {
		endSnap, err := src.snap()
		if err != nil {
			fatalf("scrape %s: %v", src.name, err)
		}
		fmt.Printf("bmwload: server stage latency us (p50/p99):")
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			name := obs.StageMetricName(tracePrefix, st)
			w := endSnap.Quantile(name).Sub(startSnap.Quantile(name))
			label := st.String()
			if st == obs.StageIssue {
				label = "total"
			}
			fmt.Printf(" %s=%.1f/%.1f", label, float64(w.P50)/1e3, float64(w.P99)/1e3)
			stageMetrics["load_stage_"+label+"_p50_us"] = metric{float64(w.P50) / 1e3, "us", "lower"}
			stageMetrics["load_stage_"+label+"_p99_us"] = metric{float64(w.P99) / 1e3, "us", "lower"}
		}
		fmt.Println()
	}
	if *traceOut != "" {
		b, err := src.trace()
		if err != nil {
			fatalf("fetch trace: %v", err)
		}
		tr, err := obs.ParseTrace(b)
		if err != nil {
			fatalf("parse trace: %v", err)
		}
		if err := obs.ValidateTrace(tr); err != nil {
			fatalf("server trace failed validation: %v", err)
		}
		if err := os.WriteFile(*traceOut, b, 0o644); err != nil {
			fatalf("write %s: %v", *traceOut, err)
		}
		fmt.Printf("bmwload: wrote %s (%d trace events)\n", *traceOut, len(tr.TraceEvents))
	}

	if *out != "" {
		r := report{
			Schema:     "bmwperf/v1",
			Experiment: "load",
			GoVersion:  runtime.Version(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			Commit:     buildinfo.Commit(),
			Metrics: map[string]metric{
				"load_mops":       {mops, "Mops", "higher"},
				"load_p50_us":     {float64(snap.P50), "us", "lower"},
				"load_p99_us":     {float64(snap.P99), "us", "lower"},
				"load_p999_us":    {float64(snap.P999), "us", "lower"},
				"load_retries":    {float64(rs.Retries), "count", "lower"},
				"load_timeouts":   {float64(rs.Timeouts), "count", "lower"},
				"load_reconnects": {float64(rs.Reconnects), "count", "lower"},
				"load_failovers":  {float64(rs.Failovers), "count", "lower"},
				"load_dedup_miss": {float64(rs.DedupMisses), "count", "lower"},
			},
		}
		for k, m := range stageMetrics {
			r.Metrics[k] = m
		}
		for k, m := range clusterMetrics {
			r.Metrics[k] = m
		}
		b, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			fatalf("marshal report: %v", err)
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		fmt.Printf("bmwload: wrote %s\n", *out)
	}

	// A dedup miss means a retried request fell out of the server's
	// replay window: the op may have been applied without its ack ever
	// reaching us, so an acknowledged-op fate is indeterminate. Report
	// it as loss and fail the run (the JSON above still lands so the
	// evidence survives).
	if rs.DedupMisses > 0 {
		fatalf("%d request(s) with indeterminate outcome (dedup window miss) — possible acked-op loss", rs.DedupMisses)
	}
}

// doer is the worker-facing batch interface: one bmwd connection
// (ResilientClient) or the whole cluster behind the routing client.
type doer interface {
	Do(ops []wire.Op) ([]wire.Result, error)
}

// workerCfg parameterises one load goroutine.
type workerCfg struct {
	batch    int
	mix      float64
	rng      *rand.Rand
	interval time.Duration // 0 = closed loop
	offset   time.Duration // open-loop phase stagger
}

// runWorker issues batches until ctx expires. In open-loop mode the
// latency clock starts at the *scheduled* issue time, so a slow server
// accrues queueing delay instead of silently omitting it.
func runWorker(ctx context.Context, c doer, cfg workerCfg, cnt *counters, hist *obs.QuantileHistogram) {
	ops := make([]wire.Op, cfg.batch)
	next := time.Now().Add(cfg.offset)
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		for i := range ops {
			if cfg.rng.Float64() < cfg.mix {
				ops[i] = wire.Op{Kind: wire.OpPush, Value: cfg.rng.Uint64() >> 34, Meta: cfg.rng.Uint64()}
			} else {
				ops[i] = wire.Op{Kind: wire.OpPop}
			}
		}
		issued := time.Now()
		if cfg.interval > 0 {
			if d := time.Until(next); d > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(d):
				}
			}
			issued = next
			next = next.Add(cfg.interval)
		}
		res, err := c.Do(ops)
		if err != nil {
			if ctx.Err() == nil {
				cnt.protoErrs.Add(1)
			}
			return
		}
		hist.Observe(uint64(time.Since(issued).Microseconds()))
		cnt.ops.Add(uint64(len(res)))
		for i, r := range res {
			switch r.Status {
			case wire.StatusOK:
				if ops[i].Kind == wire.OpPush {
					cnt.pushOK.Add(1)
				} else {
					cnt.popOK.Add(1)
				}
			case wire.StatusEmpty:
				cnt.empty.Add(1)
			case wire.StatusBackpressure:
				cnt.backpressure.Add(1)
			case wire.StatusOverloaded:
				cnt.overloaded.Add(1)
			case wire.StatusFull:
				cnt.full.Add(1)
			default:
				cnt.invalid.Add(1)
			}
		}
	}
}

// tracePrefix is the metric-name prefix bmwd (and the inproc server)
// register the request tracer under.
const tracePrefix = "bmwd_trace"

// stageSource is where the run's server-side observability comes from:
// a scrape of a live bmwd's obs endpoint, or the inproc server's own
// registry and recorder.
type stageSource struct {
	name  string
	snap  func() (obs.Snapshot, error)
	trace func() ([]byte, error)
}

// remoteSource scrapes a bmwd -http endpoint.
func remoteSource(addr string) *stageSource {
	client := &http.Client{Timeout: 10 * time.Second}
	get := func(path string) ([]byte, error) {
		resp, err := client.Get("http://" + addr + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: %s", path, resp.Status)
		}
		return io.ReadAll(resp.Body)
	}
	return &stageSource{
		name: addr,
		snap: func() (obs.Snapshot, error) {
			var s obs.Snapshot
			b, err := get("/metrics.json")
			if err != nil {
				return s, err
			}
			return s, json.Unmarshal(b, &s)
		},
		trace: func() ([]byte, error) { return get("/trace.json") },
	}
}

// startInproc boots a traced engine + wire server on a loopback port
// and returns its address, its observability source, and a stop func,
// letting bmwload double as a self-contained end-to-end smoke test.
func startInproc(shards int, queue string, sample int) (string, *stageSource, func()) {
	kind, err := engine.ParseKind(queue)
	if err != nil {
		fatalf("%v", err)
	}
	eng, err := engine.New(engine.Config{Shards: shards, Kind: kind, Order: 2, Levels: 11})
	if err != nil {
		fatalf("inproc engine: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("inproc listen: %v", err)
	}
	reg := obs.NewRegistry()
	rec := obs.NewTraceRecorder()
	tracer := obs.NewTracer(obs.TracerOptions{
		Registry:    reg,
		Prefix:      tracePrefix,
		Recorder:    rec,
		SampleEvery: sample,
	})
	srv := wire.NewServerConfig(eng, wire.ServerConfig{Tracer: tracer})
	go srv.Serve(ln)
	src := &stageSource{
		name: "inproc",
		snap: func() (obs.Snapshot, error) { return reg.Snapshot(), nil },
		trace: func() ([]byte, error) {
			var buf bytes.Buffer
			_, err := rec.WriteTo(&buf)
			return buf.Bytes(), err
		},
	}
	return ln.Addr().String(), src, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		eng.Close()
	}
}
