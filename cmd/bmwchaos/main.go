// bmwchaos is the fault-tolerance acceptance harness: it boots an
// in-process primary/standby pair of bmwd-equivalent nodes, routes a
// client through a flaky TCP proxy, injects connection faults (resets,
// stalls, partial writes, byte corruption the wire CRC must catch) and
// primary kill-and-promote cycles, and checks every acknowledged
// operation against a golden reference queue: zero acknowledged-op
// loss, zero duplicated applies, promotion at the replicated tip, and
// bounded failover time.
//
// The workload is sequential single-op batches, so the sharded engine
// is sequentially consistent with the reference heap: an acked push is
// visible to the next pop, and every acked pop must return exactly the
// reference PopMin value. Any divergence — lost ack, double apply,
// corruption slipping through — breaks the lockstep and fails the run.
//
// It exits 0 only if every check passes, and always writes a
// bmwchaos/v1 JSON evidence file into -evidence.
//
// Examples:
//
//	bmwchaos                          # 25 faults, 5 kill/promote cycles
//	bmwchaos -faults 50 -kills 10 -evidence /tmp/chaos
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/refpq"
	"repro/internal/replic"
	"repro/internal/wire"
)

// Fault kinds the proxy can arm. One armed fault is consumed by the
// next matching traffic chunk.
const (
	faultNone    int32 = iota
	faultReset         // swallow the chunk, reset both sides
	faultStall         // hold the chunk for stallDur, then deliver
	faultPartial       // deliver half the chunk, then reset
	faultCorrupt       // flip one byte mid-chunk (CRC must catch it)
)

var faultNames = map[int32]string{
	faultReset: "reset", faultStall: "stall",
	faultPartial: "partial_write", faultCorrupt: "corrupt",
}

// chaosProxy relays TCP to a switchable upstream and applies the armed
// fault to the next chunk. Corruption alternates direction (responses
// vs requests) per injection so both sides' CRC checking is exercised.
type chaosProxy struct {
	ln         net.Listener
	upstream   atomic.Value // string
	armed      atomic.Int32
	corruptUp  atomic.Bool
	consumed   atomic.Uint64
	stallDur   time.Duration
	totalConns atomic.Uint64
}

func startProxy(upstream string, stallDur time.Duration) (*chaosProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &chaosProxy{ln: ln, stallDur: stallDur}
	p.upstream.Store(upstream)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			p.totalConns.Add(1)
			up, err := net.Dial("tcp", p.upstream.Load().(string))
			if err != nil {
				c.Close()
				continue
			}
			go p.relay(c, up, true)  // client → server
			go p.relay(up, c, false) // server → client
		}
	}()
	return p, nil
}

// relay copies src → dst, consuming an armed fault when this direction
// matches it: corruption targets the armed direction; reset, stall,
// and partial writes target the response path.
func (p *chaosProxy) relay(src, dst net.Conn, toServer bool) {
	defer src.Close()
	defer dst.Close()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if f := p.armed.Load(); f != faultNone && p.applies(f, toServer) && p.armed.CompareAndSwap(f, faultNone) {
				p.consumed.Add(1)
				switch f {
				case faultReset:
					return
				case faultStall:
					time.Sleep(p.stallDur)
				case faultPartial:
					if n >= 2 {
						dst.Write(buf[:n/2])
					}
					return
				case faultCorrupt:
					buf[n/2] ^= 0x45
				}
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

func (p *chaosProxy) applies(f int32, toServer bool) bool {
	if f == faultCorrupt {
		return toServer == p.corruptUp.Load()
	}
	return !toServer // reset/stall/partial hit the response path
}

// arm readies one fault for the next matching chunk.
func (p *chaosProxy) arm(f int32, corruptUpstream bool) {
	p.corruptUp.Store(corruptUpstream)
	p.armed.Store(f)
}

// node is one in-process bmwd equivalent: engine + wire server +
// replication node on a loopback port, with the full incident
// infrastructure attached — every kill and overload episode must leave
// a valid bundle behind, exactly as a production bmwd would.
type node struct {
	eng  *engine.Engine
	srv  *wire.Server
	rn   *replic.Node
	fr   *obs.FlightRecorder
	inc  *obs.IncidentCapturer
	addr string
	dead bool
}

// nodeSeq numbers chaos nodes so each gets its own incident directory.
var nodeSeq atomic.Uint64

func startChaosNode(geom engine.Config, primaryAddr, incRoot string, logf func(string, ...any)) (*node, error) {
	eng, err := engine.New(geom)
	if err != nil {
		return nil, err
	}
	fr := obs.NewFlightRecorder(4096)
	reg := obs.NewRegistry()
	eng.Instrument(reg, "chaos_engine")
	srv := wire.NewServerConfig(eng, wire.ServerConfig{
		WriteTimeout: 10 * time.Second,
		MaxInflight:  1024,
	})
	n := &node{eng: eng, srv: srv, fr: fr}
	// Rate limiting is effectively off (1ms): the harness injects
	// episodes back to back and asserts a bundle per episode.
	inc, err := obs.NewIncidentCapturer(obs.IncidentOptions{
		Dir:         filepath.Join(incRoot, fmt.Sprintf("node-%d", nodeSeq.Add(1))),
		MaxBundles:  64,
		MinInterval: time.Millisecond,
		Flight:      fr,
		Registry:    reg,
	})
	if err != nil {
		eng.Close()
		return nil, err
	}
	n.inc = inc
	eng.SetHooks(engine.Hooks{
		Flight: fr,
		OnOverloadTrip: func(shard, occ int) {
			inc.CaptureAsync("overload", fmt.Sprintf("shard %d tripped at occupancy %d", shard, occ))
		},
		OnPanic: func(shard int, r any) {
			_, _ = inc.Capture("panic", fmt.Sprintf("shard %d: %v", shard, r))
		},
	})
	n.rn = replic.Attach(eng, srv, replic.Config{
		Engine:      geom,
		PrimaryAddr: primaryAddr,
		Sync:        true,
		SyncTimeout: 10 * time.Second,
		DialRetry:   5 * time.Millisecond,
		Logf:        logf,
		Flight:      fr,
		OnIncident: func(trigger, reason string) {
			inc.CaptureAsync(trigger, reason)
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Close()
		return nil, err
	}
	go srv.Serve(ln)
	n.addr = ln.Addr().String()
	return n, nil
}

// kill tears the node down abruptly: a 50ms grace, then connections
// are force-closed — the crash a failover must survive.
func (n *node) kill() {
	if n.dead {
		return
	}
	n.dead = true
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_ = n.srv.Shutdown(ctx)
	n.rn.Close()
	n.eng.Close()
}

// evidence is the bmwchaos/v1 result document.
type evidence struct {
	Schema           string           `json:"schema"`
	Result           string           `json:"result"`
	Errors           []string         `json:"errors,omitempty"`
	Faults           map[string]int   `json:"faults"`
	KillCycles       int              `json:"kill_cycles"`
	OverloadEpisodes int              `json:"overload_episodes"`
	FailoverMs       []float64        `json:"failover_ms"`
	AckedPushes      uint64           `json:"acked_pushes"`
	AckedPops        uint64           `json:"acked_pops"`
	FinalDrain       int              `json:"final_drain"`
	ClientStats      map[string]int64 `json:"client_stats"`
	ProxyConns       uint64           `json:"proxy_conns"`
	DurationMs       float64          `json:"duration_ms"`
	PromotedAtTip    []uint64         `json:"promoted_at_tip"`
	IncidentBundles  int              `json:"incident_bundles"`
	BundlesByTrigger map[string]int   `json:"incident_bundles_by_trigger,omitempty"`
}

// harness owns the run's moving parts and the golden lockstep state.
type harness struct {
	geom    engine.Config
	rng     *rand.Rand
	proxy   *chaosProxy
	rc      *wire.ResilientClient
	golden  *refpq.Queue
	prim    *node
	standby *node
	ev      *evidence
	incRoot string
	verbose bool
	pushes  uint64
	pops    uint64
}

func (h *harness) logf(format string, args ...any) {
	if h.verbose {
		fmt.Fprintf(os.Stderr, "bmwchaos: "+format+"\n", args...)
	}
}

// oneOp issues one op through the proxy and applies its acked outcome
// to the golden queue, failing on any divergence.
func (h *harness) oneOp() error {
	push := h.golden.Len() == 0 || h.rng.Float64() < 0.55
	var op wire.Op
	if push {
		v := h.rng.Uint64() >> 34 // 30-bit rank, matching default RankBits
		op = wire.Op{Kind: wire.OpPush, Value: v, Meta: h.pushes}
	} else {
		op = wire.Op{Kind: wire.OpPop}
	}
	res, err := h.rc.Do([]wire.Op{op})
	if err != nil {
		return fmt.Errorf("op failed permanently: %w", err)
	}
	r := res[0]
	switch {
	case push && r.Status == wire.StatusOK:
		h.golden.Push(refpq.Entry{Value: op.Value, Meta: op.Meta})
		h.pushes++
	case push: // Full/Backpressure/Overloaded: acked as not-applied
		if r.Status != wire.StatusFull && r.Status != wire.StatusBackpressure && r.Status != wire.StatusOverloaded {
			return fmt.Errorf("push acked with status %v", r.Status)
		}
	case r.Status == wire.StatusOK:
		if h.golden.Len() == 0 {
			return fmt.Errorf("pop returned value %d from an empty reference queue — duplicated apply", r.Value)
		}
		want := h.golden.PopMin()
		if r.Value != want.Value {
			return fmt.Errorf("pop returned value %d, reference says %d — acked-op divergence", r.Value, want.Value)
		}
		h.pops++
	case r.Status == wire.StatusEmpty:
		if h.golden.Len() != 0 {
			return fmt.Errorf("pop says empty, reference holds %d — acked-op loss", h.golden.Len())
		}
	default:
		return fmt.Errorf("pop acked with status %v", r.Status)
	}
	return nil
}

// faultPhase injects nFaults connection faults, cycling kinds, with
// lockstep-verified traffic around each.
func (h *harness) faultPhase(nFaults int) error {
	kinds := []int32{faultReset, faultStall, faultPartial, faultCorrupt}
	for i := 0; i < nFaults; i++ {
		kind := kinds[i%len(kinds)]
		h.proxy.arm(kind, kind == faultCorrupt && i%8 >= 4)
		before := h.proxy.consumed.Load()
		deadline := time.Now().Add(30 * time.Second)
		for h.proxy.consumed.Load() == before {
			if time.Now().After(deadline) {
				return fmt.Errorf("fault %d (%s) never consumed", i, faultNames[kind])
			}
			if err := h.oneOp(); err != nil {
				return fmt.Errorf("during fault %d (%s): %w", i, faultNames[kind], err)
			}
		}
		h.ev.Faults[faultNames[kind]]++
		// A few verified ops after the fault to prove recovery.
		for j := 0; j < 5; j++ {
			if err := h.oneOp(); err != nil {
				return fmt.Errorf("recovering from fault %d (%s): %w", i, faultNames[kind], err)
			}
		}
		h.logf("fault %d/%d (%s) injected and survived", i+1, nFaults, faultNames[kind])
	}
	return nil
}

// bundleCount returns how many incident bundles exist under the
// harness's incident root.
func (h *harness) bundleCount() int {
	n := 0
	nodes, _ := os.ReadDir(h.incRoot)
	for _, d := range nodes {
		if !d.IsDir() {
			continue
		}
		bs, _ := obs.ListIncidentBundles(filepath.Join(h.incRoot, d.Name()))
		n += len(bs)
	}
	return n
}

// overloadEpisode induces one deterministic overload trip on the live
// primary: tighten the watermarks so the next drain trips (1ns drain
// budget), drive verified traffic until the trip's incident bundle
// lands, then restore benign admission control and prove the shed
// clears. Ack-checked ops flow throughout — StatusOverloaded is an
// acked not-applied outcome, so the golden lockstep holds.
func (h *harness) overloadEpisode(ep int) error {
	before := h.bundleCount()
	h.prim.eng.SetOverload(engine.Overload{
		HighFrac:         0.99,
		DrainLatencyHigh: time.Nanosecond,
		Cooloff:          50 * time.Millisecond,
	})
	deadline := time.Now().Add(30 * time.Second)
	for h.bundleCount() == before {
		if time.Now().After(deadline) {
			return fmt.Errorf("overload episode %d: no incident bundle within 30s", ep)
		}
		if err := h.oneOp(); err != nil {
			return fmt.Errorf("overload episode %d: %w", ep, err)
		}
	}
	// Restore benign config; the tripped latch clears via the 50ms
	// push-path cooloff and traffic must flow cleanly again.
	h.prim.eng.SetOverload(engine.Overload{})
	time.Sleep(60 * time.Millisecond)
	for j := 0; j < 10; j++ {
		if err := h.oneOp(); err != nil {
			return fmt.Errorf("overload episode %d recovery: %w", ep, err)
		}
	}
	h.ev.OverloadEpisodes++
	h.logf("overload episode %d: bundle captured, latch cleared", ep)
	return nil
}

// waitReplicated blocks until the standby has acknowledged the
// primary's full log.
func (h *harness) waitReplicated() error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		if tip := h.prim.rn.LogSeq(); h.prim.rn.AckSeq() == tip && h.standby.rn.Ready() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("standby never caught up: ack %d, tip %d", h.prim.rn.AckSeq(), h.prim.rn.LogSeq())
		}
		time.Sleep(time.Millisecond)
	}
}

// killCycle kills the primary, promotes the standby, measures
// kill-to-first-success, and brings up a fresh standby.
func (h *harness) killCycle(cycle int, budget time.Duration) error {
	// Some traffic, then make sure the standby holds everything acked.
	for i := 0; i < 50; i++ {
		if err := h.oneOp(); err != nil {
			return fmt.Errorf("cycle %d pre-kill: %w", cycle, err)
		}
	}
	if err := h.waitReplicated(); err != nil {
		return err
	}
	tip := h.prim.rn.LogSeq()

	h.logf("cycle %d: killing primary %s at log tip %d", cycle, h.prim.addr, tip)
	// The kill bundle: captured synchronously on the victim before
	// teardown, the way a production bmwd's SIGQUIT/shutdown hook
	// would freeze its state.
	if _, err := h.prim.inc.Capture("kill", fmt.Sprintf("cycle %d: primary killed at log tip %d", cycle, tip)); err != nil {
		return fmt.Errorf("cycle %d: kill bundle: %w", cycle, err)
	}
	h.prim.kill()
	t0 := time.Now()
	h.standby.rn.Promote()
	if got := h.standby.rn.LogSeq(); got != tip {
		return fmt.Errorf("cycle %d: promoted at log seq %d, want replicated tip %d", cycle, got, tip)
	}
	h.ev.PromotedAtTip = append(h.ev.PromotedAtTip, tip)
	h.proxy.upstream.Store(h.standby.addr)
	h.prim = h.standby

	// First post-kill op: the client must reconnect through the proxy
	// to the promoted standby within the failover budget.
	if err := h.oneOp(); err != nil {
		return fmt.Errorf("cycle %d post-promotion: %w", cycle, err)
	}
	failover := time.Since(t0)
	h.ev.FailoverMs = append(h.ev.FailoverMs, float64(failover.Microseconds())/1000)
	if failover > budget {
		return fmt.Errorf("cycle %d: failover took %v, budget %v", cycle, failover, budget)
	}
	h.logf("cycle %d: failover in %v", cycle, failover)

	fresh, err := startChaosNode(h.geom, h.prim.addr, h.incRoot, nil)
	if err != nil {
		return fmt.Errorf("cycle %d: fresh standby: %w", cycle, err)
	}
	h.standby = fresh
	if err := h.waitReplicated(); err != nil {
		return fmt.Errorf("cycle %d: fresh standby catch-up: %w", cycle, err)
	}
	h.ev.KillCycles++
	return nil
}

// finalDrain pops everything and checks the full sequence against the
// reference queue.
func (h *harness) finalDrain() error {
	n := 0
	for {
		res, err := h.rc.Do([]wire.Op{{Kind: wire.OpPop}})
		if err != nil {
			return fmt.Errorf("final drain: %w", err)
		}
		if res[0].Status == wire.StatusEmpty {
			break
		}
		if res[0].Status != wire.StatusOK {
			return fmt.Errorf("final drain status %v", res[0].Status)
		}
		if h.golden.Len() == 0 {
			return fmt.Errorf("final drain returned value %d beyond the reference — duplicated apply", res[0].Value)
		}
		if want := h.golden.PopMin(); res[0].Value != want.Value {
			return fmt.Errorf("final drain value %d, reference says %d", res[0].Value, want.Value)
		}
		n++
	}
	if h.golden.Len() != 0 {
		return fmt.Errorf("engine empty but reference holds %d elements — acked-op loss", h.golden.Len())
	}
	h.ev.FinalDrain = n
	return nil
}

func main() {
	var (
		faults    = flag.Int("faults", 25, "connection faults to inject")
		overloads = flag.Int("overloads", 3, "induced overload episodes (each must yield an incident bundle)")
		kills     = flag.Int("kills", 5, "primary kill-and-promote cycles")
		shards    = flag.Int("shards", 2, "engine shards per node")
		queue     = flag.String("queue", "core", "queue kind: core, pifo, rbmw, rpubmw")
		levels    = flag.Int("l", 10, "tree levels (capacity)")
		stall     = flag.Duration("stall", 250*time.Millisecond, "stall fault hold time")
		budget    = flag.Duration("failover-budget", 5*time.Second, "max allowed kill-to-first-success time")
		seed      = flag.Int64("seed", 1, "workload and fault seed")
		evDir     = flag.String("evidence", "chaos-evidence", "directory for the bmwchaos/v1 JSON evidence file")
		verbose   = flag.Bool("v", false, "log each fault and cycle")
		validate  = flag.String("validate-bundles", "", "validate every incident bundle under this directory and exit (no chaos run)")
	)
	flag.Parse()

	if *validate != "" {
		n, err := validateBundleDir(*validate)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("bmwchaos: %d incident bundle(s) under %s valid\n", n, *validate)
		return
	}

	kind, err := engine.ParseKind(*queue)
	if err != nil {
		fatalf("%v", err)
	}
	geom := engine.Config{Shards: *shards, Kind: kind, Order: 2, Levels: *levels, Routing: engine.RouteRank}

	ev := &evidence{Schema: "bmwchaos/v1", Faults: map[string]int{}}
	incRoot := filepath.Join(*evDir, "incidents")
	if err := os.MkdirAll(incRoot, 0o755); err != nil {
		fatalf("incident dir: %v", err)
	}
	start := time.Now()
	runErr := run(geom, *faults, *overloads, *kills, *stall, *budget, *seed, *verbose, incRoot, ev)
	ev.DurationMs = float64(time.Since(start).Microseconds()) / 1000
	if err := auditBundles(incRoot, *kills, *overloads, ev); err != nil && runErr == nil {
		runErr = err
	} else if err != nil {
		ev.Errors = append(ev.Errors, err.Error())
	}
	if runErr != nil {
		ev.Result = "fail"
		ev.Errors = append(ev.Errors, runErr.Error())
	} else {
		ev.Result = "pass"
	}

	if err := os.MkdirAll(*evDir, 0o755); err != nil {
		fatalf("evidence dir: %v", err)
	}
	path := filepath.Join(*evDir, "bmwchaos.json")
	b, _ := json.MarshalIndent(ev, "", "  ")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fatalf("write evidence: %v", err)
	}
	fmt.Printf("bmwchaos: %s — %d fault(s), %d kill cycle(s), %d overload episode(s), %d acked pushes, %d acked pops, %d incident bundle(s), evidence in %s\n",
		ev.Result, sumFaults(ev), ev.KillCycles, ev.OverloadEpisodes,
		ev.AckedPushes, ev.AckedPops, ev.IncidentBundles, path)
	if runErr != nil {
		fatalf("%v", runErr)
	}
}

// validateBundleDir checks every incident bundle directly under dir
// (the standalone `-validate-bundles` mode CI points at a daemon's
// -incident-dir), requiring at least one valid bundle.
func validateBundleDir(dir string) (int, error) {
	bundles, err := obs.ListIncidentBundles(dir)
	if err != nil {
		return 0, err
	}
	if len(bundles) == 0 {
		return 0, fmt.Errorf("no incident bundles under %s", dir)
	}
	for _, b := range bundles {
		if err := obs.ValidateIncidentBundle(b); err != nil {
			return 0, err
		}
	}
	return len(bundles), nil
}

// auditBundles is the post-run incident acceptance check: every bundle
// under incRoot must validate (manifest checksums, required artifacts,
// parseable non-empty flight record), and the trigger tally must show
// at least one bundle per kill and per overload episode.
func auditBundles(incRoot string, kills, overloads int, ev *evidence) error {
	ev.BundlesByTrigger = map[string]int{}
	nodes, err := os.ReadDir(incRoot)
	if err != nil {
		return fmt.Errorf("incident audit: %w", err)
	}
	for _, d := range nodes {
		if !d.IsDir() {
			continue
		}
		nodeDir := filepath.Join(incRoot, d.Name())
		bundles, err := obs.ListIncidentBundles(nodeDir)
		if err != nil {
			return fmt.Errorf("incident audit: list %s: %w", nodeDir, err)
		}
		for _, dir := range bundles { // ListIncidentBundles returns full paths
			if err := obs.ValidateIncidentBundle(dir); err != nil {
				return fmt.Errorf("incident audit: invalid bundle %s: %w", dir, err)
			}
			raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
			if err != nil {
				return fmt.Errorf("incident audit: %w", err)
			}
			man, err := obs.ParseIncidentManifest(raw)
			if err != nil {
				return fmt.Errorf("incident audit: manifest %s: %w", dir, err)
			}
			ev.IncidentBundles++
			ev.BundlesByTrigger[man.Trigger]++
		}
	}
	if got := ev.BundlesByTrigger["kill"]; got < kills {
		return fmt.Errorf("incident audit: %d kill bundle(s) for %d kill cycle(s)", got, kills)
	}
	if got := ev.BundlesByTrigger["overload"]; got < overloads {
		return fmt.Errorf("incident audit: %d overload bundle(s) for %d overload episode(s)", got, overloads)
	}
	return nil
}

func sumFaults(ev *evidence) int {
	n := 0
	for _, c := range ev.Faults {
		n += c
	}
	return n
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bmwchaos: "+format+"\n", args...)
	os.Exit(1)
}

func run(geom engine.Config, faults, overloads, kills int, stall, budget time.Duration, seed int64, verbose bool, incRoot string, ev *evidence) error {
	h := &harness{
		geom:    geom,
		rng:     rand.New(rand.NewSource(seed)),
		golden:  refpq.New(),
		ev:      ev,
		incRoot: incRoot,
		verbose: verbose,
	}
	logf := func(format string, args ...any) {
		if verbose {
			fmt.Fprintf(os.Stderr, "bmwchaos: "+format+"\n", args...)
		}
	}

	prim, err := startChaosNode(geom, "", incRoot, logf)
	if err != nil {
		return err
	}
	h.prim = prim
	defer func() { h.prim.kill() }()
	standby, err := startChaosNode(geom, prim.addr, incRoot, logf)
	if err != nil {
		return err
	}
	h.standby = standby
	defer func() { h.standby.kill() }()

	proxy, err := startProxy(prim.addr, stall)
	if err != nil {
		return err
	}
	h.proxy = proxy
	defer proxy.ln.Close()

	rc, err := wire.NewResilientClient(wire.ResilientOptions{
		Addrs:          []string{proxy.ln.Addr().String()},
		RequestTimeout: 2 * time.Second,
		BaseDelay:      2 * time.Millisecond,
		MaxDelay:       100 * time.Millisecond,
		Conn: wire.ClientOptions{
			ReadTimeout:  2 * time.Second,
			WriteTimeout: 2 * time.Second,
		},
	})
	if err != nil {
		return err
	}
	h.rc = rc
	defer rc.Close()
	defer func() {
		s := rc.Stats()
		ev.ClientStats = map[string]int64{
			"retries": int64(s.Retries), "timeouts": int64(s.Timeouts),
			"reconnects": int64(s.Reconnects), "failovers": int64(s.Failovers),
			"dedup_misses": int64(s.DedupMisses),
		}
		ev.ProxyConns = h.proxy.totalConns.Load()
		ev.AckedPushes = h.pushes
		ev.AckedPops = h.pops
	}()

	if err := h.waitReplicated(); err != nil {
		return err
	}
	// Warm-up traffic in lockstep before any fault.
	for i := 0; i < 100; i++ {
		if err := h.oneOp(); err != nil {
			return fmt.Errorf("warm-up: %w", err)
		}
	}

	if err := h.faultPhase(faults); err != nil {
		return err
	}
	for ep := 1; ep <= overloads; ep++ {
		if err := h.overloadEpisode(ep); err != nil {
			return err
		}
	}
	for c := 1; c <= kills; c++ {
		if err := h.killCycle(c, budget); err != nil {
			return err
		}
	}
	if err := h.waitReplicated(); err != nil {
		return err
	}
	if err := h.finalDrain(); err != nil {
		return err
	}
	if s := rc.Stats(); s.DedupMisses > 0 {
		return fmt.Errorf("%d dedup misses — indeterminate acked-op outcomes", s.DedupMisses)
	}
	return nil
}
