package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestThroughputProof is the acceptance-criteria check: the counted
// cycle metrics must confirm R-BMW's sustained 1 push/cycle and
// RPU-BMW's mandatory idle-after-pop, and the report must round-trip
// through JSON.
func TestThroughputProof(t *testing.T) {
	r := newReport("throughput", 1)
	throughputProof(r)

	for _, claim := range []string{
		"rbmw_sustains_1_push_per_cycle",
		"rbmw_push_pop_pair_is_2_cycles",
		"rbmw_zero_stall_cycles_in_proof",
		"rpubmw_sustains_1_push_per_cycle",
		"rpubmw_push_pop_pair_is_3_cycles",
		"rpubmw_mandatory_idle_after_every_pop",
		"rpubmw_operation_hiding_exercised",
		"pifo_push_pop_pair_is_1_cycle",
	} {
		ok, present := r.Claims[claim]
		if !present {
			t.Errorf("claim %q missing from report", claim)
		} else if !ok {
			t.Errorf("claim %q failed", claim)
		}
	}
	if v := r.Metrics["rbmw_fill_pushes_per_cycle"]; v != 1 {
		t.Errorf("rbmw fill rate = %g pushes/cycle, want 1", v)
	}
	if v := r.Metrics["rpubmw_pair_cycles_per_pair"]; v != 3 {
		t.Errorf("rpubmw pair rate = %g cycles/pair, want 3", v)
	}
	snap, ok := r.Snapshots["rpubmw"]
	if !ok {
		t.Fatal("rpubmw snapshot missing")
	}
	if snap.Counter("rpubmw_mandatory_idle_total") != snap.Counter("rpubmw_pops_total") {
		t.Error("mandatory idle count does not equal pop count")
	}

	path := filepath.Join(t.TempDir(), "BENCH_throughput.json")
	if err := r.write(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back.Experiment != "throughput" || !back.Claims["rbmw_sustains_1_push_per_cycle"] {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
