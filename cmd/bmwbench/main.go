// Command bmwbench regenerates every table and figure of the paper's
// evaluation (Section 6) and prints them alongside the paper's
// reported values.
//
// Usage:
//
//	bmwbench -exp all                 # everything except fig10
//	bmwbench -exp fig8                # one experiment
//	bmwbench -exp fig10 -quick        # scaled-down packet simulation
//	bmwbench -exp fig10               # full 128-host, 10 Gbps run
//
// Experiments: table1, fig8, table2, fig9, table3, table4, throughput,
// ablation, fig10, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	bmw "repro"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|fig8|table2|fig9|table3|table4|throughput|ablation|fig10|all")
	quick := flag.Bool("quick", false, "use the scaled-down configuration for fig10")
	seed := flag.Int64("seed", 42, "workload seed for fig10")
	metricsOut := flag.String("metrics-out", "", "write a machine-readable BENCH_<exp>.json report to this path")
	flag.Parse()

	if *metricsOut != "" {
		rep = newReport(*exp, *seed)
	}

	run := func(name string, fn func()) {
		if *exp == name || *exp == "all" {
			fn()
			rep.ran(name)
			fmt.Println()
		}
	}
	run("table1", table1)
	run("fig8", fig8)
	run("table2", table2)
	run("fig9", fig9)
	run("table3", table3)
	run("table4", table4)
	run("throughput", throughput)
	run("ablation", ablation)
	run("accuracy", accuracy)
	if *exp == "fig10" {
		fig10(*quick, *seed)
		rep.ran("fig10")
	} else if *exp == "all" {
		fmt.Println("figure 10 (packet-level FCT) is long-running; invoke with -exp fig10 [-quick]")
	}
	switch *exp {
	case "table1", "fig8", "table2", "fig9", "table3", "table4", "throughput", "ablation", "accuracy", "fig10", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if rep != nil {
		if err := rep.write(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "metrics-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics report written to %s\n", *metricsOut)
	}
}

func header(s string) { fmt.Printf("=== %s ===\n", s) }

// table1 measures the data-structure comparison of Table 1.
func table1() {
	header("Table 1: BMW-Tree vs heap variants")
	tr := bmw.NewBMWTree(2, 9)
	ph := bmw.NewPHeap(10)
	pl := bmw.NewPipelinedHeap(1023)
	n := 2 * tr.Cap() / 5
	for i := 0; i < n; i++ {
		v := uint64((i * 2654435761) % 65536)
		tr.Push(bmw.Element{Value: v})
		ph.Push(bmw.Element{Value: v})
		pl.Push(bmw.Element{Value: v})
	}
	left, right := ph.SideCounts()
	fmt.Printf("occupied depth at 40%% fill: BMW-Tree %d (insertion-balanced), pHeap %d (left %d vs right %d elements)\n",
		tr.Depth(), ph.MaxDepthUsed(), left, right)
	for i := 0; i < n/2; i++ {
		pl.Pop()
	}
	up, down := pl.PathStats()
	fmt.Printf("pipelined-heap data movement over %d pops: %d bottom-to-top flights (1/pop), %d downward moves\n", n/2, up, down)
	fmt.Printf("BMW-Tree pops move data between adjacent levels only: 0 bottom-to-top flights\n")
	fmt.Printf("paper: BMW insertion-balanced/pipeline-friendly/autonomous; pHeap unbalanced; Pipelined Heap pop not pipeline-friendly\n")
}

// fig8 sweeps R-BMW and PIFO on the FPGA model (Figure 8).
func fig8() {
	header("Figure 8: R-BMW vs PIFO on XCU200")
	fmt.Println("(a) maximum frequency; (b) LUT/elem; (c) FF/elem")
	fmt.Printf("%-8s %8s %10s %10s %10s %10s\n", "design", "levels", "capacity", "Fmax MHz", "LUT/elem", "FF/elem")
	for _, m := range []int{2, 4, 8} {
		max := bmw.MaxFPGALevels("R-BMW", m)
		for l := 3; l <= max; l++ {
			r := bmw.SynthRBMW(m, l)
			fmt.Printf("R-BMW-%d  %8d %10d %10.2f %10.2f %10.2f\n",
				m, l, r.Capacity, r.FmaxMHz, r.LUT/float64(r.Capacity), r.FF/float64(r.Capacity))
		}
	}
	for _, n := range []int{62, 254, 1022, 2046, 4094} {
		p := bmw.SynthPIFO(n)
		fmt.Printf("PIFO     %8s %10d %10.2f %10.2f %10.2f\n",
			"-", p.Capacity, p.FmaxMHz, p.LUT/float64(p.Capacity), p.FF/float64(p.Capacity))
	}
	fmt.Println("paper anchors: 11-2 R-BMW 384.61 MHz / 25.51% LUT; PIFO 4096 at 40 MHz; PIFO consumes the most LUTs")
}

// table2 prints the largest RPU-BMW configurations (Table 2).
func table2() {
	header("Table 2: performance and resources of RPU-BMW on FPGA")
	fmt.Printf("%2s %3s %8s %9s %8s %10s %7s %12s\n", "M", "L", "Cap", "Fmax", "LUT(%)", "LUTRAM(%)", "FF(%)", "Gbps@512B")
	for _, p := range []struct{ m, l int }{{2, 15}, {4, 8}, {8, 5}} {
		r := bmw.SynthRPUBMW(p.m, p.l)
		fmt.Printf("%2d %3d %8d %9.2f %8.2f %10.2f %7.2f %12.1f\n",
			r.M, r.L, r.Capacity, r.FmaxMHz, r.LUTPct, r.LUTRAMPct, r.FFPct, r.GbpsAt(512))
	}
	fmt.Println("paper: 2-15 65534@82.64MHz 11.43/20.13/0.14; 4-8 87380@93.45 15.03/26.81/0.13; 8-5 37448@125 7.36/11.52/0.15")
}

// fig9 sweeps RPU-BMW across orders and levels (Figure 9).
func fig9() {
	header("Figure 9: RPU-BMW across orders on XCU200")
	fmt.Printf("%-10s %6s %10s %10s %8s %10s %8s\n", "design", "levels", "capacity", "Fmax MHz", "LUT(%)", "LUTRAM(%)", "FF(%)")
	for _, m := range []int{2, 4, 8} {
		max := bmw.MaxFPGALevels("RPU-BMW", m)
		for l := 3; l <= max; l++ {
			r := bmw.SynthRPUBMW(m, l)
			fmt.Printf("RPU-BMW-%d %6d %10d %10.2f %8.2f %10.2f %8.3f\n",
				m, l, r.Capacity, r.FmaxMHz, r.LUTPct, r.LUTRAMPct, r.FFPct)
		}
	}
	fmt.Println("shapes: Fmax decreases linearly with levels; LUT/LUTRAM proportional to elements; FF linear in levels")
}

// table3 compares R-BMW and RPU-BMW at equal capacity (Table 3).
func table3() {
	header("Table 3: R-BMW vs RPU-BMW at the largest R-BMW scales")
	fmt.Printf("%2s %3s %9s | %9s %8s %7s | %9s %8s %10s %7s\n",
		"M", "L", "Capacity", "R Fmax", "R LUT%", "R FF%", "RPU Fmax", "RPU LUT%", "RPU LUTRAM%", "RPU FF%")
	for _, p := range []struct{ m, l int }{{2, 11}, {4, 6}, {8, 4}} {
		rb := bmw.SynthRBMW(p.m, p.l)
		rp := bmw.SynthRPUBMW(p.m, p.l)
		fmt.Printf("%2d %3d %9d | %9.2f %8.2f %7.2f | %9.2f %8.2f %10.2f %7.2f\n",
			p.m, p.l, rb.Capacity, rb.FmaxMHz, rb.LUTPct, rb.FFPct,
			rp.FmaxMHz, rp.LUTPct, rp.LUTRAMPct, rp.FFPct)
	}
	fmt.Println("paper: RPU-BMW costs far fewer resources; faster for M=4 and M=8 thanks to affluent resources")
}

// table4 prints the 28 nm ASIC results (Table 4).
func table4() {
	header("Table 4: RPU-BMW and PIFO in GF 28 nm")
	for _, p := range []struct{ m, l int }{{4, 8}, {8, 5}} {
		fmt.Println(bmw.ASICRPUBMW(p.m, p.l))
	}
	fmt.Println(bmw.ASICPIFO(1024))
	r := bmw.ASICRPUBMW(4, 8)
	fmt.Printf("headline: %d flows at %.0f Mpps = %.0f Gbps at 512 B packets, %.3f mm^2, %.2f MB off-chip\n",
		r.Capacity, r.Mpps, r.GbpsAt(512), r.AreaMM2, r.OffChipMB)
	fmt.Println("paper: 1.043 mm^2 (0.522%), 0.57 MB, 5.79 mW; 5-8: 0.127 mm^2, 0.25 MB, 3.10 mW; PIFO 1k: 0.404 mm^2")
}

// throughput verifies the cycle costs and converts them to packet
// rates (experiment E9).
func throughput() {
	header("Throughput headlines (cycle-accurate)")
	pairs := 5000
	rb := cyclesPerPair(bmw.NewRBMWSim(2, 11), pairs)
	rp := cyclesPerPair(bmw.NewRPUBMWSim(4, 8), pairs)
	pf := cyclesPerPair(bmw.NewPIFOSim(4096), pairs)
	fRB := bmw.SynthRBMW(2, 11).FmaxMHz
	fPF := bmw.SynthPIFO(4096).FmaxMHz
	fmt.Printf("R-BMW   11-2: %.3f cycles per push-pop pair x %.2f MHz  = %6.1f Mpps (paper: 192)\n", rb, fRB, fRB/rb)
	fmt.Printf("RPU-BMW  8-4: %.3f cycles per push-pop pair x 600 MHz    = %6.1f Mpps (paper: 200, >800 Gbps at 512 B)\n", rp, 600/rp)
	fmt.Printf("PIFO    4096: %.3f cycles per push-pop pair x %.2f MHz   = %6.1f Mpps (paper: 40)\n", pf, fPF, fPF/pf)
	fmt.Printf("speedup R-BMW/PIFO: %.1fx (paper: 4.8x)\n", (fRB/rb)/(fPF/pf))
	rep.metric("rbmw_cycles_per_pair", rb)
	rep.metric("rpubmw_cycles_per_pair", rp)
	rep.metric("pifo_cycles_per_pair", pf)
	rep.metric("rbmw_mpps", fRB/rb)
	rep.metric("pifo_mpps", fPF/pf)
	if rep != nil {
		throughputProof(rep)
	}
}

func cyclesPerPair(s bmw.CycleSim, pairs int) float64 {
	for i := 0; i < 64 && !s.AlmostFull(); i++ {
		s.Tick(bmw.PushOp(uint64(i%997), 0))
	}
	start := s.Cycle()
	done := 0
	// The original PIFO enqueues and dequeues concurrently in one cycle.
	if dual, ok := s.(interface {
		TickPushPop(bmw.Op) (*bmw.Element, error)
	}); ok {
		for ; done < pairs; done++ {
			if _, err := dual.TickPushPop(bmw.PushOp(uint64(done%997), 0)); err != nil {
				panic(err)
			}
		}
		return float64(s.Cycle()-start) / float64(pairs)
	}
	wantPush := true
	for done < pairs {
		switch {
		case wantPush && s.PushAvailable() && !s.AlmostFull():
			s.Tick(bmw.PushOp(uint64(done%997), 0))
			wantPush = false
		case !wantPush && s.PopAvailable() && s.Len() > 0:
			s.Tick(bmw.PopOp())
			done++
			wantPush = true
		default:
			s.Tick(bmw.NopOp())
		}
	}
	return float64(s.Cycle()-start) / float64(pairs)
}

// ablation prints the design-choice ablations (experiment E10).
func ablation() {
	header("Ablations")
	s1 := bmw.NewRBMWSim(2, 8)
	s2 := bmw.NewRBMWSim(2, 8)
	s2.Sustained = false
	rbOpt, rbPlain := cyclesPerPair(s1, 2000), cyclesPerPair(s2, 2000)
	fmt.Printf("R-BMW   sustained transfer (4.2.2): %.3f cycles/pair; plain sequential (4.2.1): %.3f cycles/pair\n",
		rbOpt, rbPlain)
	u1 := bmw.NewRPUBMWSim(4, 6)
	u2 := bmw.NewRPUBMWSim(4, 6)
	u2.Plain = true
	rpOpt, rpPlain := cyclesPerPair(u1, 2000), cyclesPerPair(u2, 2000)
	fmt.Printf("RPU-BMW comb+hiding (5.2.2-5.2.3): %.3f cycles/pair; plain sequential (5.2.1): %.3f cycles/pair\n",
		rpOpt, rpPlain)
	rep.metric("ablation_rbmw_sustained_cycles_per_pair", rbOpt)
	rep.metric("ablation_rbmw_plain_cycles_per_pair", rbPlain)
	rep.metric("ablation_rpubmw_optimised_cycles_per_pair", rpOpt)
	rep.metric("ablation_rpubmw_plain_cycles_per_pair", rpPlain)
	tr := bmw.NewBMWTree(2, 9)
	ph := bmw.NewPHeap(10)
	for i := 0; i < 2*tr.Cap()/5; i++ {
		v := uint64((i * 40503) % 65536)
		tr.Push(bmw.Element{Value: v})
		ph.Push(bmw.Element{Value: v})
	}
	fmt.Printf("insertion policy at 40%% fill: balanced depth %d vs left-first depth %d\n", tr.Depth(), ph.MaxDepthUsed())
}

// accuracy runs the dequeue-order accuracy comparison against the
// approximate schedulers of Section 7.2 (extension experiment E11).
func accuracy() {
	header("Accuracy: accurate PIFO vs approximations (Section 7.2)")
	fmt.Printf("%-10s %10s %14s %10s %10s\n", "scheduler", "pops", "non-minimal", "rate", "drops")
	for _, r := range bmw.AccuracyExperiment(1, 60000) {
		fmt.Printf("%-10s %10d %14d %9.2f%% %10d\n", r.Name, r.Pops, r.NonMinimal, 100*r.Rate(), r.Dropped)
	}
	fmt.Println("accurate = every pop returns the current minimum rank; the paper's motivation for BMW-Tree")
}

// fig10 runs the packet-level FCT experiment (Figure 10).
func fig10(quick bool, seed int64) {
	header("Figure 10: average normalised FCT (STFQ on the bottleneck)")
	base := bmw.DefaultNetConfig()
	base.Seed = seed
	base.StoreLimit = 0
	base.TCP.MaxRTONs = 10e9
	if quick {
		base.NumHosts = 32
		base.LinkBps = 1e9
		base.BMWLevels = 7
		base.NumFlows = 800
		base.Load = 0.98
		fmt.Println("scaled configuration: 32 hosts, 1 Gbps, capacities 254 (BMW 7-2) vs 32 (PIFO), load 0.98")
	} else {
		base.NumFlows = 6000
		base.Load = 1.3
		fmt.Println("paper-scale: 128 hosts, 10 Gbps, 3 ms links, capacities 4094 (BMW 11-2) vs 512 (PIFO), sustained overload")
	}

	cfgB := base
	cfgB.Scheduler = bmw.SchedBMW
	if quick {
		cfgB.SchedCap = 254
	} else {
		cfgB.SchedCap = 4094
	}
	cfgP := base
	cfgP.Scheduler = bmw.SchedPIFO
	if quick {
		cfgP.SchedCap = 32
	} else {
		cfgP.SchedCap = 512
	}

	t0 := time.Now()
	rb := bmw.RunFCTExperiment(cfgB)
	rp := bmw.RunFCTExperiment(cfgP)
	fmt.Printf("simulated %d flows twice in %v (%d + %d events)\n\n",
		rb.Generated, time.Since(t0).Round(time.Millisecond), rb.Events, rp.Events)

	fmt.Print(bmw.FCTTable("RPU-BMW", bmw.FCTBins(rb)))
	fmt.Println()
	fmt.Print(bmw.FCTTable("PIFO", bmw.FCTBins(rp)))
	fmt.Println()
	bn, pn := rb.FCT.OverallMeanNorm(), rp.FCT.OverallMeanNorm()
	fmt.Printf("overall mean normalised FCT: RPU-BMW %.2f, PIFO %.2f -> %.0f%% reduction\n", bn, pn, 100*(1-bn/pn))
	fmt.Printf("bottleneck loss rate: RPU-BMW %.4f, PIFO %.4f (scheduler-full drops: %d vs %d)\n",
		rb.LossRate, rp.LossRate, rb.BlockStats.DropsScheduler, rp.BlockStats.DropsScheduler)
	fmt.Printf("retransmits/timeouts: RPU-BMW %d/%d, PIFO %d/%d\n", rb.Retransmits, rb.Timeouts, rp.Retransmits, rp.Timeouts)
	fmt.Println("paper: PIFO loses 0.5-4% of packets; RPU-BMW reduces normalised FCT 6-20% for medium and large flows")
}
