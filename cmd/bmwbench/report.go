package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	bmw "repro"
)

// report is the machine-readable result written by -metrics-out
// (BENCH_<exp>.json): flat headline numbers, full metric snapshots of
// the instrumented runs, and the paper's rate claims re-derived from
// counted cycles.
type report struct {
	Experiment string   `json:"experiment"`
	GoVersion  string   `json:"go_version"`
	Seed       int64    `json:"seed"`
	Ran        []string `json:"ran"`
	// Metrics are scalar results (cycles per pair, Mpps, ...).
	Metrics map[string]float64 `json:"metrics"`
	// Claims are paper statements checked against counted cycles.
	Claims map[string]bool `json:"claims,omitempty"`
	// Snapshots are the full obs registries of instrumented runs.
	Snapshots map[string]bmw.MetricsSnapshot `json:"snapshots,omitempty"`
}

// rep is the active report; nil when -metrics-out is not given.
// Experiments record into it when present.
var rep *report

func newReport(exp string, seed int64) *report {
	return &report{
		Experiment: exp,
		GoVersion:  runtime.Version(),
		Seed:       seed,
		Metrics:    map[string]float64{},
		Claims:     map[string]bool{},
		Snapshots:  map[string]bmw.MetricsSnapshot{},
	}
}

func (r *report) ran(name string) {
	if r != nil {
		r.Ran = append(r.Ran, name)
	}
}

func (r *report) metric(name string, v float64) {
	if r != nil {
		r.Metrics[name] = v
	}
}

func (r *report) claim(name string, ok bool) {
	if r != nil {
		r.Claims[name] = ok
	}
}

func (r *report) write(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// throughputProof re-derives the paper's sustained-rate claims from
// counted cycles on instrumented simulators and records the evidence
// (claims plus full metric snapshots) into the report. It runs the
// three regimes the paper headlines:
//
//   - R-BMW sustains 1 push per cycle and a push-pop pair in 2 cycles
//     (Section 4.2.2);
//   - RPU-BMW takes a mandatory idle cycle after every pop, making a
//     push-pop pair 3 cycles (Section 5.2.3);
//   - PIFO enqueues and dequeues concurrently in 1 cycle (baseline).
func throughputProof(r *report) {
	const fill, pairs = 2000, 1000

	// R-BMW: consecutive pushes, then alternating pop/push pairs.
	rbReg := bmw.NewMetricsRegistry()
	rb := bmw.NewRBMWSim(2, 11)
	rb.Instrument(rbReg, "rbmw")
	c0 := rb.Cycle()
	for i := 0; i < fill; i++ {
		if _, err := rb.Tick(bmw.PushOp(uint64(i%997), 0)); err != nil {
			panic(err)
		}
	}
	pushCycles := rb.Cycle() - c0
	c0 = rb.Cycle()
	for i := 0; i < pairs; i++ {
		if _, err := rb.Tick(bmw.PopOp()); err != nil {
			panic(err)
		}
		if _, err := rb.Tick(bmw.PushOp(uint64(i%997), 0)); err != nil {
			panic(err)
		}
	}
	pairCycles := rb.Cycle() - c0
	r.metric("rbmw_fill_pushes_per_cycle", float64(fill)/float64(pushCycles))
	r.metric("rbmw_pair_cycles_per_pair", float64(pairCycles)/float64(pairs))
	r.claim("rbmw_sustains_1_push_per_cycle", pushCycles == fill)
	r.claim("rbmw_push_pop_pair_is_2_cycles", pairCycles == 2*pairs)
	rbSnap := rbReg.Snapshot()
	r.claim("rbmw_zero_stall_cycles_in_proof",
		rbSnap.Counter("rbmw_cycles_stall_total") == 0 &&
			rbSnap.Counter("rbmw_rejected_issues_total") == 0)
	r.Snapshots["rbmw"] = rbSnap

	// RPU-BMW: consecutive pushes, then pop / mandatory idle / push.
	rpReg := bmw.NewMetricsRegistry()
	rp := bmw.NewRPUBMWSim(4, 8)
	rp.Instrument(rpReg, "rpubmw")
	c0 = rp.Cycle()
	for i := 0; i < fill; i++ {
		if _, err := rp.Tick(bmw.PushOp(uint64(i%997), 0)); err != nil {
			panic(err)
		}
	}
	pushCycles = rp.Cycle() - c0
	c0 = rp.Cycle()
	for i := 0; i < pairs; i++ {
		if _, err := rp.Tick(bmw.PopOp()); err != nil {
			panic(err)
		}
		if _, err := rp.Tick(bmw.NopOp()); err != nil {
			panic(err)
		}
		if _, err := rp.Tick(bmw.PushOp(uint64(i%997), 0)); err != nil {
			panic(err)
		}
	}
	pairCycles = rp.Cycle() - c0
	r.metric("rpubmw_fill_pushes_per_cycle", float64(fill)/float64(pushCycles))
	r.metric("rpubmw_pair_cycles_per_pair", float64(pairCycles)/float64(pairs))
	r.claim("rpubmw_sustains_1_push_per_cycle", pushCycles == fill)
	r.claim("rpubmw_push_pop_pair_is_3_cycles", pairCycles == 3*pairs)
	rpSnap := rpReg.Snapshot()
	r.claim("rpubmw_mandatory_idle_after_every_pop",
		rpSnap.Counter("rpubmw_mandatory_idle_total") == rpSnap.Counter("rpubmw_pops_total"))
	r.claim("rpubmw_operation_hiding_exercised",
		rpSnap.Counter("rpubmw_sram_write_first_hits_total") > 0)
	r.Snapshots["rpubmw"] = rpSnap

	// PIFO baseline: concurrent enqueue+dequeue, 1 cycle per pair.
	pfReg := bmw.NewMetricsRegistry()
	pf := bmw.NewPIFOSim(4096)
	pf.Instrument(pfReg, "pifo")
	for i := 0; i < 64; i++ {
		pf.Tick(bmw.PushOp(uint64(i%997), 0))
	}
	c0 = pf.Cycle()
	for i := 0; i < pairs; i++ {
		if _, err := pf.TickPushPop(bmw.PushOp(uint64(i%997), 0)); err != nil {
			panic(err)
		}
	}
	pairCycles = pf.Cycle() - c0
	r.metric("pifo_pair_cycles_per_pair", float64(pairCycles)/float64(pairs))
	r.claim("pifo_push_pop_pair_is_1_cycle", pairCycles == uint64(pairs))
	r.Snapshots["pifo"] = pfReg.Snapshot()

	for name, ok := range r.Claims {
		if !ok {
			fmt.Printf("CLAIM FAILED: %s\n", name)
		}
	}
}
