// bmwcluster is the multi-node acceptance harness: it boots an
// in-process cluster of bmwd-equivalent nodes — each a primary with a
// sync-replicating hot standby — sharing a versioned cluster map,
// drives mixed traffic through the routing client in golden lockstep
// against a reference queue, kills a primary mid-stream (promotion
// must bump the map epoch and spread by gossip while the client
// converges on its own), rebalances the rank bands with a new map
// version (pushes must re-route via StatusNotOwner redirects), and
// finally drains the whole cluster through the cross-node strict
// merge, checking global pop order, zero acknowledged-op loss and
// zero duplicate applies.
//
// The workload is sequential single-op traffic, so the cluster is
// sequentially consistent with the reference heap: an acked push is
// visible to the next pop, and every acked pop must return exactly
// the reference PopMin value. Any divergence — an op lost across the
// failover, applied twice, or popped out of global order — breaks the
// lockstep and fails the run.
//
// It exits 0 only if every check passes, and always writes a
// bmwcluster/v1 JSON evidence file into -evidence.
//
// Examples:
//
//	bmwcluster                       # 3 nodes, 2000 ops, kill + rebalance
//	bmwcluster -nodes 4 -ops 5000 -evidence /tmp/cluster
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/refpq"
	"repro/internal/replic"
	"repro/internal/wire"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bmwcluster: "+format+"\n", args...)
	os.Exit(1)
}

// member is one in-process bmwd equivalent joined to the cluster:
// engine + wire server + replication node + cluster state + gossiper
// on a loopback port.
type member struct {
	id   uint32
	eng  *engine.Engine
	srv  *wire.Server
	rn   *replic.Node
	st   *cluster.State
	gsp  *cluster.Gossiper
	addr string
	dead bool
}

// startMember boots one member on a pre-bound listener (the listeners
// exist before the map so the map can name their addresses). follow
// is empty for a group's primary, the primary's address for its
// standby. Both carry the full cluster state: the standby must hold a
// live map so promotion can mint its successor.
func startMember(geom engine.Config, m *cluster.Map, id uint32, follow string, ln net.Listener, logf func(string, ...any)) (*member, error) {
	eng, err := engine.New(geom)
	if err != nil {
		return nil, err
	}
	srv := wire.NewServerConfig(eng, wire.ServerConfig{
		WriteTimeout: 10 * time.Second,
		MaxInflight:  1024,
	})
	st, err := cluster.NewState(m, id)
	if err != nil {
		eng.Close()
		return nil, err
	}
	srv.SetOwnerGate(func(op wire.Op) (bool, uint64) {
		return st.Owns(op.Value, op.Meta)
	})
	srv.SetClusterHandlers(st.EncodedIfNewer, st.OfferEncoded)
	gsp := cluster.NewGossiper(cluster.GossiperConfig{
		State:     st,
		SelfAddrs: []string{ln.Addr().String()},
		Interval:  100 * time.Millisecond,
		Timeout:   time.Second,
		Logf:      logf,
	})
	rn := replic.Attach(eng, srv, replic.Config{
		Engine:      geom,
		PrimaryAddr: follow,
		Sync:        true,
		SyncTimeout: 10 * time.Second,
		DialRetry:   5 * time.Millisecond,
		Logf:        logf,
		OnPromote: func() {
			nm := st.PromoteSelf()
			if logf != nil {
				logf("node %d: promotion minted map version %d", id, nm.Version)
			}
			gsp.Kick()
		},
	})
	go srv.Serve(ln)
	go gsp.Run()
	return &member{
		id: id, eng: eng, srv: srv, rn: rn, st: st, gsp: gsp,
		addr: ln.Addr().String(),
	}, nil
}

// kill tears the member down abruptly: a 50ms grace, then connections
// are force-closed — the crash a failover must survive.
func (mb *member) kill() {
	if mb.dead {
		return
	}
	mb.dead = true
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_ = mb.srv.Shutdown(ctx)
	mb.gsp.Stop()
	mb.rn.Close()
	mb.eng.Close()
}

// group is one replica group: the serving head plus its standby.
type group struct {
	prim    *member
	standby *member
}

// evidence is the bmwcluster/v1 result document.
type evidence struct {
	Schema          string            `json:"schema"`
	Result          string            `json:"result"`
	Errors          []string          `json:"errors,omitempty"`
	Nodes           int               `json:"nodes"`
	Mode            string            `json:"mode"`
	Ops             int               `json:"ops"`
	AckedPushes     uint64            `json:"acked_pushes"`
	AckedPops       uint64            `json:"acked_pops"`
	KillCycles      int               `json:"kill_cycles"`
	FailoverMs      []float64         `json:"failover_ms"`
	PromotedVersion uint64            `json:"promoted_map_version"`
	GossipSpreadMs  []float64         `json:"gossip_spread_ms"`
	RebalanceVer    uint64            `json:"rebalance_map_version"`
	Redirects       uint64            `json:"redirects"`
	MapRefreshes    uint64            `json:"map_refreshes"`
	ClientMapVer    uint64            `json:"client_map_version"`
	FinalDrain      int               `json:"final_drain"`
	PerNodeOps      map[string]uint64 `json:"per_node_ops"`
	DurationMs      float64           `json:"duration_ms"`
}

// harness owns the cluster's moving parts and the golden lockstep
// state.
type harness struct {
	geom    engine.Config
	rng     *rand.Rand
	cl      *cluster.Client
	golden  *refpq.Queue
	groups  []*group
	ev      *evidence
	verbose bool
	pushes  uint64
	pops    uint64
}

func (h *harness) logf(format string, args ...any) {
	if h.verbose {
		fmt.Fprintf(os.Stderr, "bmwcluster: "+format+"\n", args...)
	}
}

// oneOp issues one op through the routing client and applies its
// acked outcome to the golden queue, failing on any divergence.
func (h *harness) oneOp() error {
	push := h.golden.Len() == 0 || h.rng.Float64() < 0.55
	if push {
		v := h.rng.Uint64() >> 34 // 30-bit rank, matching the map's RankBits
		meta := h.pushes
		r, err := h.cl.Push(v, meta)
		if err != nil {
			return fmt.Errorf("push failed permanently: %w", err)
		}
		switch r.Status {
		case wire.StatusOK:
			h.golden.Push(refpq.Entry{Value: v, Meta: meta})
			h.pushes++
		case wire.StatusFull, wire.StatusBackpressure, wire.StatusOverloaded:
			// Acked as not-applied.
		default:
			return fmt.Errorf("push acked with status %v", r.Status)
		}
		return nil
	}
	r, err := h.cl.PopMin()
	if err != nil {
		return fmt.Errorf("pop failed permanently: %w", err)
	}
	switch {
	case r.Status == wire.StatusOK:
		if h.golden.Len() == 0 {
			return fmt.Errorf("pop returned value %d from an empty reference queue — duplicated apply", r.Value)
		}
		want := h.golden.PopMin()
		if r.Value != want.Value {
			return fmt.Errorf("pop returned value %d, reference says %d — global order broken", r.Value, want.Value)
		}
		h.pops++
	case r.Status == wire.StatusEmpty:
		if h.golden.Len() != 0 {
			return fmt.Errorf("pop says empty, reference holds %d — acked-op loss", h.golden.Len())
		}
	default:
		return fmt.Errorf("pop acked with status %v", r.Status)
	}
	return nil
}

// waitReplicated blocks until g's standby has acknowledged the
// primary's full log.
func (h *harness) waitReplicated(g *group) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		if tip := g.prim.rn.LogSeq(); g.prim.rn.AckSeq() == tip && g.standby.rn.Ready() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("node %d standby never caught up: ack %d, tip %d",
				g.prim.id, g.prim.rn.AckSeq(), g.prim.rn.LogSeq())
		}
		time.Sleep(time.Millisecond)
	}
}

// waitMapSpread blocks until every live member's state holds a map at
// or past version, and returns how long the spread took.
func (h *harness) waitMapSpread(version uint64) (time.Duration, error) {
	t0 := time.Now()
	deadline := t0.Add(15 * time.Second)
	for {
		behind := 0
		for _, g := range h.groups {
			for _, mb := range []*member{g.prim, g.standby} {
				if mb != nil && !mb.dead && mb.st.Version() < version {
					behind++
				}
			}
		}
		if behind == 0 {
			return time.Since(t0), nil
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("map version %d never spread: %d member(s) still behind", version, behind)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// killCycle kills one group's primary mid-stream: the standby
// promotes (minting map version+1 with its epoch bumped), gossip
// spreads the successor map, and the client converges with zero
// acked-op loss — all verified by the lockstep staying intact.
func (h *harness) killCycle(g *group) error {
	for i := 0; i < 50; i++ {
		if err := h.oneOp(); err != nil {
			return fmt.Errorf("pre-kill: %w", err)
		}
	}
	if err := h.waitReplicated(g); err != nil {
		return err
	}
	wantVer := g.standby.st.Version() + 1

	h.logf("killing node %d primary %s", g.prim.id, g.prim.addr)
	g.prim.kill()
	t0 := time.Now()
	g.standby.rn.Promote()
	g.prim = g.standby
	g.standby = nil

	// The client is not told: its per-node connection must fail over to
	// the standby on its own, and the first post-kill op lands once
	// promotion finishes serving.
	if err := h.oneOp(); err != nil {
		return fmt.Errorf("post-promotion: %w", err)
	}
	failover := time.Since(t0)
	h.ev.FailoverMs = append(h.ev.FailoverMs, float64(failover.Microseconds())/1000)
	h.ev.KillCycles++

	if got := g.prim.st.Version(); got != wantVer {
		return fmt.Errorf("promotion minted map version %d, want %d", got, wantVer)
	}
	h.ev.PromotedVersion = wantVer
	spread, err := h.waitMapSpread(wantVer)
	if err != nil {
		return err
	}
	h.ev.GossipSpreadMs = append(h.ev.GossipSpreadMs, float64(spread.Microseconds())/1000)
	h.logf("failover in %v, map version %d spread in %v", failover, wantVer, spread)

	for i := 0; i < 50; i++ {
		if err := h.oneOp(); err != nil {
			return fmt.Errorf("post-failover traffic: %w", err)
		}
	}
	return nil
}

// rebalance mints a successor map with every interior band boundary
// shifted and offers it to one node; gossip spreads it, and continued
// pushes must re-route via StatusNotOwner redirects (elements already
// queued under the old bands stay put — the strict merge drains them
// from wherever they sit).
func (h *harness) rebalance() error {
	cur, err := cluster.FetchMap(h.groups[0].prim.addr, 0, 2*time.Second)
	if err != nil {
		return fmt.Errorf("rebalance: fetch map: %w", err)
	}
	if cur == nil {
		return fmt.Errorf("rebalance: node served no map")
	}
	next := cur.Clone()
	next.Version++
	span := uint64(1) << next.RankBits
	if next.Mode == cluster.ModeHash {
		span = 0 // wraps: full 64-bit space
	}
	for i := 1; i < len(next.Nodes); i++ {
		// Shift each interior boundary up by 1/(4n) of the space,
		// clamped below the next boundary.
		shift := (span - 1) / uint64(4*len(next.Nodes))
		moved := next.Nodes[i].Start + shift
		if i+1 < len(next.Nodes) && moved >= next.Nodes[i+1].Start {
			moved = next.Nodes[i+1].Start - 1
		}
		next.Nodes[i].Start = moved
	}
	if err := next.Validate(); err != nil {
		return fmt.Errorf("rebalance: bad successor map: %w", err)
	}
	if _, err := cluster.OfferMap(h.groups[0].prim.addr, next, 2*time.Second); err != nil {
		return fmt.Errorf("rebalance: offer: %w", err)
	}
	spread, err := h.waitMapSpread(next.Version)
	if err != nil {
		return err
	}
	h.ev.RebalanceVer = next.Version
	h.ev.GossipSpreadMs = append(h.ev.GossipSpreadMs, float64(spread.Microseconds())/1000)
	h.logf("rebalance map version %d spread in %v", next.Version, spread)

	// Traffic across the moved boundaries: the client still routes by
	// the old map until a refused push teaches it otherwise.
	before := h.cl.Stats().Redirects
	for i := 0; i < 200; i++ {
		if err := h.oneOp(); err != nil {
			return fmt.Errorf("post-rebalance traffic: %w", err)
		}
	}
	after := h.cl.Stats()
	if after.Redirects == before {
		return fmt.Errorf("rebalance moved every boundary but the client saw no StatusNotOwner redirect")
	}
	if after.MapVersion < next.Version {
		return fmt.Errorf("client holds map version %d after redirects, want >= %d", after.MapVersion, next.Version)
	}
	return nil
}

// finalDrain pops the whole cluster through the strict merge and
// checks the full global sequence against the reference queue.
func (h *harness) finalDrain() error {
	n := 0
	for {
		r, err := h.cl.PopMin()
		if err != nil {
			return fmt.Errorf("final drain: %w", err)
		}
		if r.Status == wire.StatusEmpty {
			break
		}
		if r.Status != wire.StatusOK {
			return fmt.Errorf("final drain status %v", r.Status)
		}
		if h.golden.Len() == 0 {
			return fmt.Errorf("final drain returned value %d beyond the reference — duplicated apply", r.Value)
		}
		if want := h.golden.PopMin(); r.Value != want.Value {
			return fmt.Errorf("final drain value %d, reference says %d — global order broken", r.Value, want.Value)
		}
		n++
	}
	if h.golden.Len() != 0 {
		return fmt.Errorf("cluster empty but reference holds %d elements — acked-op loss", h.golden.Len())
	}
	h.ev.FinalDrain = n
	return nil
}

func main() {
	var (
		nodes   = flag.Int("nodes", 3, "replica groups in the cluster (each a primary + hot standby)")
		ops     = flag.Int("ops", 2000, "mixed lockstep ops in the main traffic phase")
		shards  = flag.Int("shards", 2, "engine shards per node")
		queue   = flag.String("queue", "core", "queue kind: core, pifo, rbmw, rpubmw")
		levels  = flag.Int("l", 10, "tree levels (capacity)")
		mode    = flag.String("mode", "rank", "cluster routing mode: rank or hash")
		kill    = flag.Bool("kill", true, "kill a primary mid-stream and require promotion + epoch bump")
		rebal   = flag.Bool("rebalance", true, "shift the band boundaries mid-stream and require client re-routing")
		seed    = flag.Int64("seed", 1, "workload seed")
		evDir   = flag.String("evidence", "cluster-evidence", "directory for the bmwcluster/v1 JSON evidence file")
		verbose = flag.Bool("v", false, "log phases and failovers")
	)
	flag.Parse()

	kind, err := engine.ParseKind(*queue)
	if err != nil {
		fatalf("%v", err)
	}
	clMode, err := cluster.ParseMode(*mode)
	if err != nil {
		fatalf("%v", err)
	}
	geom := engine.Config{Shards: *shards, Kind: kind, Order: 2, Levels: *levels, Routing: engine.RouteHash}

	ev := &evidence{Schema: "bmwcluster/v1", Nodes: *nodes, Mode: clMode.String(), Ops: *ops}
	start := time.Now()
	runErr := run(geom, clMode, *nodes, *ops, *kill, *rebal, *seed, *verbose, ev)
	ev.DurationMs = float64(time.Since(start).Microseconds()) / 1000
	if runErr != nil {
		ev.Result = "fail"
		ev.Errors = append(ev.Errors, runErr.Error())
	} else {
		ev.Result = "pass"
	}

	if err := os.MkdirAll(*evDir, 0o755); err != nil {
		fatalf("evidence dir: %v", err)
	}
	path := filepath.Join(*evDir, "bmwcluster.json")
	b, _ := json.MarshalIndent(ev, "", "  ")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fatalf("write evidence: %v", err)
	}
	fmt.Printf("bmwcluster: %s — %d node(s), %d acked pushes, %d acked pops, %d kill cycle(s), %d redirect(s), %d drained, evidence in %s\n",
		ev.Result, ev.Nodes, ev.AckedPushes, ev.AckedPops, ev.KillCycles, ev.Redirects, ev.FinalDrain, path)
	if runErr != nil {
		fatalf("%v", runErr)
	}
}

func run(geom engine.Config, clMode cluster.Mode, nodes, ops int, kill, rebal bool, seed int64, verbose bool, ev *evidence) error {
	h := &harness{
		geom:    geom,
		rng:     rand.New(rand.NewSource(seed)),
		golden:  refpq.New(),
		ev:      ev,
		verbose: verbose,
	}
	logf := func(format string, args ...any) {
		if verbose {
			fmt.Fprintf(os.Stderr, "bmwcluster: "+format+"\n", args...)
		}
	}

	// Listeners first: the map names real addresses, so every port is
	// bound before the map that advertises it exists.
	const rankBits = 30
	type pair struct{ prim, standby net.Listener }
	lns := make([]pair, nodes)
	for i := range lns {
		for _, which := range []*net.Listener{&lns[i].prim, &lns[i].standby} {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			*which = ln
			defer ln.Close()
		}
	}
	m := &cluster.Map{Version: 1, Mode: clMode}
	span := uint64(1) << rankBits
	if clMode == cluster.ModeRank {
		m.RankBits = rankBits
	} else {
		span = 0 // full 64-bit hash space; /nodes below uses wraparound width
	}
	width := (span - 1) / uint64(nodes)
	for i := 0; i < nodes; i++ {
		m.Nodes = append(m.Nodes, cluster.Node{
			ID:    uint32(i + 1),
			Epoch: 1,
			Start: uint64(i) * width,
			Addrs: []string{lns[i].prim.Addr().String(), lns[i].standby.Addr().String()},
		})
	}
	if err := m.Validate(); err != nil {
		return fmt.Errorf("bootstrap map: %w", err)
	}

	for i := 0; i < nodes; i++ {
		prim, err := startMember(geom, m, uint32(i+1), "", lns[i].prim, logf)
		if err != nil {
			return err
		}
		g := &group{prim: prim}
		h.groups = append(h.groups, g)
		defer func() { g.prim.kill() }()
		standby, err := startMember(geom, m, uint32(i+1), prim.addr, lns[i].standby, logf)
		if err != nil {
			return err
		}
		g.standby = standby
		defer func() {
			if g.standby != nil {
				g.standby.kill()
			}
		}()
	}
	for _, g := range h.groups {
		if err := h.waitReplicated(g); err != nil {
			return err
		}
	}

	cl, err := cluster.NewClient(cluster.Options{
		Map:            m,
		RequestTimeout: 2 * time.Second,
		BaseDelay:      2 * time.Millisecond,
		MaxDelay:       100 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	h.cl = cl
	defer cl.Close()
	defer func() {
		s := cl.Stats()
		ev.Redirects = s.Redirects
		ev.MapRefreshes = s.MapRefreshes
		ev.ClientMapVer = s.MapVersion
		ev.AckedPushes = h.pushes
		ev.AckedPops = h.pops
		ev.PerNodeOps = map[string]uint64{}
		for id, ns := range s.PerNode {
			ev.PerNodeOps[fmt.Sprintf("node%d", id)] = ns.Ops
		}
	}()

	// Main mixed-traffic phase in golden lockstep.
	for i := 0; i < ops; i++ {
		if err := h.oneOp(); err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
	}

	if kill {
		// Kill the middle group: its band has neighbours on both sides,
		// so post-failover routing and merging cross it.
		if err := h.killCycle(h.groups[len(h.groups)/2]); err != nil {
			return err
		}
	}
	if rebal {
		if err := h.rebalance(); err != nil {
			return err
		}
	}
	for _, g := range h.groups {
		if g.standby != nil {
			if err := h.waitReplicated(g); err != nil {
				return err
			}
		}
	}
	return h.finalDrain()
}
