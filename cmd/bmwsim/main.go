// Command bmwsim drives the cycle-accurate hardware simulators and
// reports issue rates, cycle costs, and (for the BMW designs) a
// verification of the pop stream against the golden software tree.
//
// Usage:
//
//	bmwsim -design rbmw   -m 2 -l 11 -ops 100000 -workload mixed
//	bmwsim -design rpubmw -m 4 -l 8  -ops 100000 -workload pushpop
//	bmwsim -design pifo   -cap 4096  -ops 100000
//
// Workloads: pushpop (densest legal alternation), fill (fill then
// drain), mixed (randomised legal schedule).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	bmw "repro"
)

func main() {
	design := flag.String("design", "rbmw", "rbmw | rpubmw | pifo")
	m := flag.Int("m", 2, "tree order (BMW designs)")
	l := flag.Int("l", 11, "tree levels (BMW designs)")
	capacity := flag.Int("cap", 4096, "capacity (pifo)")
	ops := flag.Int("ops", 100000, "operations to issue")
	workload := flag.String("workload", "mixed", "pushpop | fill | mixed")
	seed := flag.Int64("seed", 1, "workload seed")
	plain := flag.Bool("plain", false, "disable sustained transfer (rbmw ablation)")
	metricsOut := flag.String("metrics-out", "", "write the run's metrics snapshot JSON to this file")
	traceOut := flag.String("trace", "", "write a Perfetto/Chrome cycle trace JSON to this file (rbmw, rpubmw)")
	flag.Parse()

	var sim bmw.CycleSim
	switch *design {
	case "rbmw":
		s := bmw.NewRBMWSim(*m, *l)
		s.Sustained = !*plain
		sim = s
	case "rpubmw":
		sim = bmw.NewRPUBMWSim(*m, *l)
	case "pifo":
		sim = bmw.NewPIFOSim(*capacity)
	default:
		fmt.Fprintf(os.Stderr, "unknown design %q\n", *design)
		os.Exit(2)
	}
	fmt.Printf("%s: capacity %d elements\n", *design, sim.Cap())

	// The BMW designs carry native pipeline probes; PIFO exposes only
	// interface-level counters and has no per-level trace to record.
	var reg *bmw.MetricsRegistry
	if *metricsOut != "" {
		reg = bmw.NewMetricsRegistry()
		if in, ok := sim.(interface {
			Instrument(*bmw.MetricsRegistry, string)
		}); ok {
			in.Instrument(reg, *design)
		} else {
			fmt.Fprintf(os.Stderr, "design %q has no metric probes\n", *design)
			os.Exit(2)
		}
	}
	var tr *bmw.TraceRecorder
	if *traceOut != "" {
		if tt, ok := sim.(interface {
			TraceTo(*bmw.TraceRecorder, int64)
		}); ok {
			tr = bmw.NewTraceRecorder()
			tt.TraceTo(tr, 1)
		} else {
			fmt.Fprintf(os.Stderr, "design %q records no cycle trace (rbmw and rpubmw do)\n", *design)
			os.Exit(2)
		}
	}

	golden := bmw.NewBMWTree(2, 24) // oversized reference multiset
	rng := rand.New(rand.NewSource(*seed))
	pushes, pops, rejected := 0, 0, 0
	verify := func(got *bmw.Element) {
		want, err := golden.Pop()
		if err != nil {
			fmt.Fprintln(os.Stderr, "verification underflow:", err)
			os.Exit(1)
		}
		if got == nil || got.Value != want.Value {
			fmt.Fprintf(os.Stderr, "VERIFICATION FAILED: sim popped %v, reference %v\n", got, want)
			os.Exit(1)
		}
	}

	issue := func(op bmw.Op) {
		got, err := sim.Tick(op)
		if err != nil {
			rejected++
			return
		}
		switch op.Kind {
		case bmw.OpPush:
			golden.Push(bmw.Element{Value: op.Value, Meta: op.Meta})
			pushes++
		case bmw.OpPop:
			verify(got)
			pops++
		}
	}

	for i := 0; i < *ops; i++ {
		switch *workload {
		case "pushpop":
			if sim.PushAvailable() && !sim.AlmostFull() {
				issue(bmw.PushOp(uint64(rng.Intn(65536)), uint64(i)))
			} else if sim.PopAvailable() && sim.Len() > 0 {
				issue(bmw.PopOp())
			} else {
				sim.Tick(bmw.NopOp())
			}
			if sim.PopAvailable() && sim.Len() > 0 {
				i++
				issue(bmw.PopOp())
			}
		case "fill":
			if !sim.AlmostFull() && sim.PushAvailable() {
				issue(bmw.PushOp(uint64(rng.Intn(65536)), uint64(i)))
			} else if sim.Len() > 0 && sim.PopAvailable() {
				issue(bmw.PopOp())
			} else {
				sim.Tick(bmw.NopOp())
			}
		case "mixed":
			switch {
			case !sim.PushAvailable() && !sim.PopAvailable():
				sim.Tick(bmw.NopOp())
			case sim.Len() == 0 || (rng.Intn(2) == 0 && !sim.AlmostFull() && sim.PushAvailable()):
				issue(bmw.PushOp(uint64(rng.Intn(65536)), uint64(i)))
			case sim.PopAvailable():
				issue(bmw.PopOp())
			default:
				sim.Tick(bmw.NopOp())
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
			os.Exit(2)
		}
	}

	cycles := sim.Cycle()
	fmt.Printf("cycles: %d, pushes: %d, pops: %d, rejected issues: %d\n", cycles, pushes, pops, rejected)
	fmt.Printf("ops/cycle: %.3f (stored at end: %d)\n", float64(pushes+pops)/float64(cycles), sim.Len())
	fmt.Println("pop stream verified against the golden software BMW-Tree")

	if *metricsOut != "" {
		b, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
		if err == nil {
			err = os.WriteFile(*metricsOut, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics snapshot:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
	}
	if tr != nil {
		f, err := os.Create(*traceOut)
		if err == nil {
			_, err = tr.WriteTo(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cycle trace:", err)
			os.Exit(1)
		}
		fmt.Printf("cycle trace written to %s (%d events", *traceOut, tr.Len())
		if d := tr.Dropped(); d > 0 {
			fmt.Printf(", %d dropped at the recorder cap", d)
		}
		fmt.Println(") — open in https://ui.perfetto.dev")
	}
}
