package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// snapPair builds prev/cur snapshots from a live registry by observing
// between two Snapshot calls — exercising the same Sub/delta paths a
// real poll sees, without hand-rolling bucket layouts.
func snapPair(t *testing.T, load func(reg *obs.Registry) func()) (obs.Snapshot, obs.Snapshot) {
	t.Helper()
	reg := obs.NewRegistry()
	more := load(reg)
	prev := reg.Snapshot()
	more()
	return prev, reg.Snapshot()
}

func TestBuildModelWindowedRates(t *testing.T) {
	prev, cur := snapPair(t, func(reg *obs.Registry) func() {
		reg.GaugeFunc(enginePrefix+"_shards", func() float64 { return 2 })
		reg.GaugeFunc(enginePrefix+"_len", func() float64 { return 7 })
		pushes0 := reg.Counter(enginePrefix + "_shard0_pushes_total")
		drain0 := reg.Histogram(enginePrefix+"_shard0_drain_batch", []uint64{1, 8, 64})
		stageQ := reg.QuantileHistogram(obs.StageMetricName(tracePrefix, obs.StageApply))
		pushes0.Add(100)
		drain0.Observe(64)
		stageQ.Observe(5_000) // pre-window observation, must not leak in
		return func() {
			pushes0.Add(200)
			drain0.Observe(8)
			drain0.Observe(8)
			for i := 0; i < 10; i++ {
				stageQ.Observe(20_000) // 20µs
			}
		}
	})

	m := buildModel("x:1", prev, cur, 2*time.Second, map[string]any{"ok": true})
	if len(m.Shards) != 2 {
		t.Fatalf("got %d shards, want 2", len(m.Shards))
	}
	if got := m.Shards[0].PushRate; got != 100 {
		t.Errorf("shard0 push rate = %v, want 100 (200 pushes / 2s)", got)
	}
	if got := m.Shards[0].DrainMean; got != 8 {
		t.Errorf("shard0 drain mean = %v, want 8 (window only)", got)
	}
	if m.Len != 7 {
		t.Errorf("len = %v, want 7", m.Len)
	}

	// Only the instrumented stage shows up, with window-only quantiles.
	if len(m.Stages) != 1 {
		t.Fatalf("got %d stage rows, want 1: %+v", len(m.Stages), m.Stages)
	}
	st := m.Stages[0]
	if st.Label != "apply" {
		t.Errorf("stage label = %q, want apply", st.Label)
	}
	if st.Rate != 5 {
		t.Errorf("stage rate = %v, want 5 (10 spans / 2s)", st.Rate)
	}
	if st.P50 < 15 || st.P50 > 35 {
		t.Errorf("stage p50 = %vµs, want ~20µs (pre-window 5µs must not leak)", st.P50)
	}
	if !m.Repl.Present {
		// No repl gauges registered.
	} else {
		t.Error("repl row present without repl gauges")
	}
}

func TestBuildModelReplication(t *testing.T) {
	prev, cur := snapPair(t, func(reg *obs.Registry) func() {
		reg.GaugeFunc(replPrefix+"_role", func() float64 { return 0 })
		reg.GaugeFunc(replPrefix+"_lag", func() float64 { return 3 })
		acks := reg.Counter(replPrefix + "_acks_total")
		ackQ := reg.QuantileHistogram(replPrefix + "_ack_latency_ns")
		return func() {
			acks.Add(50)
			ackQ.Observe(1_000_000) // 1ms
		}
	})
	m := buildModel("x:1", prev, cur, time.Second, nil)
	if !m.Repl.Present {
		t.Fatal("repl row missing despite repl gauges")
	}
	if m.Repl.Lag != 3 {
		t.Errorf("lag = %v, want 3", m.Repl.Lag)
	}
	if m.Repl.AcksRate != 50 {
		t.Errorf("acks/s = %v, want 50", m.Repl.AcksRate)
	}
	if m.Repl.AckP99 < 500 || m.Repl.AckP99 > 2000 {
		t.Errorf("ack p99 = %vµs, want ~1000µs", m.Repl.AckP99)
	}
}

func TestRenderFrame(t *testing.T) {
	m := model{
		Addr:   "127.0.0.1:9971",
		Window: time.Second,
		Len:    42,
		Probe:  map[string]any{"ok": true, "role": "primary", "repl_lag": float64(0), "extra": "x"},
		Stages: []stageRow{{Label: "total", Rate: 1.5e6, P50: 10.5, P99: 99.9}},
		Shards: []shardRow{{ID: 0, Occupancy: 10, Capacity: 4096, PushRate: 2500, Overloaded: true}},
		Repl:   replRow{Present: true, Lag: 2, AckP99: 7.5},
	}
	var sb strings.Builder
	render(&sb, m)
	out := sb.String()
	for _, want := range []string{
		"127.0.0.1:9971",
		"role=primary", "repl_lag=0", "extra=x",
		"STAGE", "total", "1.50M",
		"SHARD", "2.5k", "YES",
		"repl: lag=2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
}

func TestRenderUnreachableProbe(t *testing.T) {
	var sb strings.Builder
	render(&sb, model{Addr: "a:1", Probe: nil})
	if !strings.Contains(sb.String(), "probe: unreachable") {
		t.Errorf("nil probe not flagged:\n%s", sb.String())
	}
}

func TestFmtRate(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{{0, "0.0"}, {12.34, "12.3"}, {4_560, "4.6k"}, {7_890_000, "7.89M"}} {
		if got := fmtRate(tc.v); got != tc.want {
			t.Errorf("fmtRate(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestBuildModelRuntimeRow(t *testing.T) {
	prev, cur := snapPair(t, func(reg *obs.Registry) func() {
		reg.GaugeFunc(runtimePrefix+"_goroutines", func() float64 { return 12 })
		reg.GaugeFunc(runtimePrefix+"_heap_live_bytes", func() float64 { return 3 << 20 })
		gc := reg.QuantileHistogram(runtimePrefix + "_gc_pause_ns")
		gc.Observe(1_000_000) // pre-window pause, must not leak in
		return func() {
			gc.Observe(50_000) // 50µs in-window
		}
	})
	m := buildModel("x:1", prev, cur, time.Second, nil)
	if !m.Runtime.Present {
		t.Fatal("runtime row missing despite runtime gauges")
	}
	if m.Runtime.Goroutines != 12 {
		t.Errorf("goroutines = %v", m.Runtime.Goroutines)
	}
	if m.Runtime.HeapLive != 3<<20 {
		t.Errorf("heap live = %v", m.Runtime.HeapLive)
	}
	if m.Runtime.GCPauseP99 < 25 || m.Runtime.GCPauseP99 > 100 {
		t.Errorf("gc pause p99 = %vµs, want ~50µs window-only", m.Runtime.GCPauseP99)
	}

	// A daemon without the runtime collector yields no row.
	prev2, cur2 := snapPair(t, func(reg *obs.Registry) func() { return func() {} })
	if buildModel("x:1", prev2, cur2, time.Second, nil).Runtime.Present {
		t.Error("runtime row present without runtime gauges")
	}
}

func TestRenderSLOBannerAndLines(t *testing.T) {
	m := model{
		Addr:   "a:1",
		Window: time.Second,
		SLO: &obs.SLOStatus{
			ShortWindowMS: 10_000,
			LongWindowMS:  60_000,
			Worst:         "page",
			Objectives: []obs.ObjectiveStatus{
				{Name: "p99", State: "page", Value: 25e6, Bound: 10e6},
				{Name: "availability", State: "ok", Value: 0, Bound: 0.001},
			},
		},
		Runtime: runtimeRow{Present: true, Goroutines: 9, HeapLive: 2 << 30, GCPauseP99: 120.5, SchedP99: 3.2},
	}
	var sb strings.Builder
	render(&sb, m)
	out := sb.String()
	for _, want := range []string{
		"!! SLO PAGE:", "p99=page",
		"slo: p99=page availability=ok (windows 10s/60s)",
		"runtime: goroutines=9 heap_live=2.00GiB gc_pause_p99=120.5µs sched_p99=3.2µs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	// The banner names only violating objectives.
	if strings.Contains(out, "availability=ok(") {
		t.Errorf("banner lists healthy objectives:\n%s", out)
	}

	// All-ok status: the slo line renders, the banner does not.
	m.SLO.Worst = "ok"
	m.SLO.Objectives[0].State = "ok"
	sb.Reset()
	render(&sb, m)
	out = sb.String()
	if strings.Contains(out, "!! SLO") {
		t.Errorf("banner shown while worst=ok:\n%s", out)
	}
	if !strings.Contains(out, "slo: p99=ok") {
		t.Errorf("slo line missing when healthy:\n%s", out)
	}

	// No SLO engine at all: neither banner nor line.
	m.SLO = nil
	sb.Reset()
	render(&sb, m)
	if strings.Contains(sb.String(), "slo:") {
		t.Errorf("slo line shown without /slo.json:\n%s", sb.String())
	}
}

func TestBuildModelIntegrityRow(t *testing.T) {
	prev, cur := snapPair(t, func(reg *obs.Registry) func() {
		reg.GaugeFunc(persistPrefix+"_scrub_progress", func() float64 { return 0.5 })
		reg.GaugeFunc(persistPrefix+"_shard0_wal_poisoned", func() float64 { return 1 })
		chains := reg.Counter(persistPrefix + "_scrub_chain_points_total")
		bytes := reg.Counter(persistPrefix + "_scrub_bytes_total")
		reg.Counter(persistPrefix + "_scrub_corruptions_total").Add(3)
		reg.Counter(replPrefix + "_repair_dirs_total").Add(2)
		chains.Add(100) // pre-window, must not count toward the rate
		return func() {
			chains.Add(40)
			bytes.Add(2 << 20)
		}
	})
	m := buildModel("x:1", prev, cur, 2*time.Second, nil)
	if !m.Integrity.Present {
		t.Fatal("integrity row missing despite scrub gauges")
	}
	if m.Integrity.Progress != 0.5 {
		t.Errorf("progress = %v, want 0.5", m.Integrity.Progress)
	}
	if m.Integrity.ChainRate != 20 {
		t.Errorf("chain verifies/s = %v, want 20 (40 / 2s)", m.Integrity.ChainRate)
	}
	if m.Integrity.Corruptions != 3 {
		t.Errorf("corruptions = %v, want 3", m.Integrity.Corruptions)
	}
	if m.Integrity.RepairedDirs != 2 {
		t.Errorf("repaired dirs = %v, want 2", m.Integrity.RepairedDirs)
	}
	if !m.Integrity.Poisoned {
		t.Error("poisoned WAL gauge not reflected")
	}

	// A daemon without the scrubber yields no row.
	prev2, cur2 := snapPair(t, func(reg *obs.Registry) func() { return func() {} })
	if buildModel("x:1", prev2, cur2, time.Second, nil).Integrity.Present {
		t.Error("integrity row present without scrub gauges")
	}
}

func TestRenderIntegrityRow(t *testing.T) {
	m := model{
		Addr: "a:1", Window: time.Second,
		Integrity: integrityRow{
			Present: true, Progress: 0.25, Passes: 7,
			ChainRate: 1500, BytesRate: 3 << 20,
			Corruptions: 2, RepairedDirs: 1, Poisoned: true,
		},
	}
	var sb strings.Builder
	render(&sb, m)
	out := sb.String()
	for _, want := range []string{
		"integrity: scrub=25% passes=7 chain_verify/s=1.5k scrubbed/s=3.0MiB",
		"corruptions=2 repaired_dirs=1 wal=POISONED",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}

	m.Integrity.Present = false
	sb.Reset()
	render(&sb, m)
	if strings.Contains(sb.String(), "integrity:") {
		t.Errorf("integrity row shown without scrub instruments:\n%s", sb.String())
	}
}

func TestFmtBytes(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{{512, "512B"}, {4 << 10, "4.0KiB"}, {3 << 20, "3.0MiB"}, {5 << 30, "5.00GiB"}} {
		if got := fmtBytes(tc.v); got != tc.want {
			t.Errorf("fmtBytes(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
