// bmwtop is a live terminal dashboard for a running bmwd: it polls the
// daemon's observability endpoint (/metrics.json and /readyz) and
// renders windowed request-stage latencies, per-shard throughput, and
// replication lag — top(1) for the serving stack.
//
// All rates and quantiles are computed over the poll window by
// differencing consecutive registry snapshots, so the display shows
// what happened in the last -interval, not lifetime averages.
//
// Examples:
//
//	bmwtop -addr 127.0.0.1:9971              # refresh every second
//	bmwtop -addr 127.0.0.1:9971 -interval 5s
//	bmwtop -addr 127.0.0.1:9971 -once        # one frame, no ANSI, pipeable
//	bmwtop -cluster 127.0.0.1:9970           # per-node fleet view via the cluster map
//
// With -cluster, bmwtop fetches the cluster map over the wire protocol
// from the given bmwd, then scrapes every node's advertised obs
// address and renders one row per node: role, owned band, the map
// version it serves under, windowed request rate, queue length,
// replication lag and readiness.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/obs"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bmwtop: "+format+"\n", args...)
	os.Exit(1)
}

// fetchSnapshot pulls the daemon's full registry snapshot.
func fetchSnapshot(c *http.Client, base string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	resp, err := c.Get(base + "/metrics.json")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("GET /metrics.json: %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}

// fetchSLO pulls /slo.json. A daemon without -slo (or an older one
// without the endpoint) yields nil — the dashboard simply omits the
// SLO line.
func fetchSLO(c *http.Client, base string) *obs.SLOStatus {
	resp, err := c.Get(base + "/slo.json")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var st obs.SLOStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil
	}
	if len(st.Objectives) == 0 {
		return nil
	}
	return &st
}

// fetchProbe pulls the /readyz JSON body. Both 200 and 503 carry the
// detail map (an unready follower is exactly when the detail matters),
// so only transport and decode failures return nil.
func fetchProbe(c *http.Client, base string) map[string]any {
	resp, err := c.Get(base + "/readyz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil
	}
	return body
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9971", "bmwd observability HTTP address (its -http flag)")
		clSeed   = flag.String("cluster", "", "bmwd wire address to fetch the cluster map from; renders a per-node fleet view instead of one daemon")
		interval = flag.Duration("interval", time.Second, "poll and refresh interval")
		once     = flag.Bool("once", false, "render a single frame (one interval window) and exit")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version("bmwtop"))
		return
	}
	if *clSeed != "" {
		runCluster(*clSeed, *interval, *once)
		return
	}

	base := "http://" + *addr
	client := &http.Client{Timeout: 10 * time.Second}

	prev, err := fetchSnapshot(client, base)
	if err != nil {
		fatalf("cannot reach %s: %v", *addr, err)
	}
	prevAt := time.Now()

	for {
		time.Sleep(*interval)
		cur, err := fetchSnapshot(client, base)
		now := time.Now()
		if err != nil {
			if *once {
				fatalf("scrape: %v", err)
			}
			fmt.Fprintf(os.Stderr, "bmwtop: scrape: %v\n", err)
			continue
		}
		m := buildModel(*addr, prev, cur, now.Sub(prevAt), fetchProbe(client, base))
		m.SLO = fetchSLO(client, base)
		if !*once {
			fmt.Print("\x1b[H\x1b[2J") // home + clear: repaint in place
		}
		render(os.Stdout, m)
		if *once {
			return
		}
		prev, prevAt = cur, now
	}
}
