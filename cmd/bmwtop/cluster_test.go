package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// testClusterMap is a two-node rank map: node 1 reachable with a full
// metric set, node 5 advertising no obs address.
func testClusterMap() *cluster.Map {
	return &cluster.Map{
		Version:  4,
		Mode:     cluster.ModeRank,
		RankBits: 20,
		Nodes: []cluster.Node{
			{ID: 1, Epoch: 1, Start: 0, Addrs: []string{"127.0.0.1:1"}, Obs: "127.0.0.1:91"},
			{ID: 5, Epoch: 2, Start: 1 << 19, Addrs: []string{"127.0.0.1:2"}},
		},
	}
}

func TestBuildClusterModel(t *testing.T) {
	prev, cur := snapPair(t, func(reg *obs.Registry) func() {
		reg.GaugeFunc(enginePrefix+"_shards", func() float64 { return 2 })
		reg.GaugeFunc(enginePrefix+"_len", func() float64 { return 12 })
		reg.GaugeFunc(replPrefix+"_lag", func() float64 { return 3 })
		reg.GaugeFunc(clusterPrefix+"_map_version", func() float64 { return 4 })
		p0 := reg.Counter(enginePrefix + "_shard0_pushes_total")
		o1 := reg.Counter(enginePrefix + "_shard1_pops_total")
		return func() {
			p0.Add(120)
			o1.Add(80)
		}
	})
	m := testClusterMap()
	cm := buildClusterModel("seed:1", m,
		map[uint32]obs.Snapshot{1: prev},
		map[uint32]obs.Snapshot{1: cur},
		map[uint32]map[string]any{1: {"role": "primary", "ok": true}},
		2*time.Second)

	if cm.MapVersion != 4 || cm.Mode != "rank" || len(cm.Rows) != 2 {
		t.Fatalf("model header: %+v", cm)
	}
	r := cm.Rows[0]
	if r.ID != 1 || r.Unreachable {
		t.Fatalf("row 0: %+v", r)
	}
	if r.Band != "0..524287" {
		t.Errorf("band = %q", r.Band)
	}
	if r.Role != "primary" || !r.Ready || r.MapVer != 4 {
		t.Errorf("probe fields: %+v", r)
	}
	if r.ReqRate != 100 { // (120 pushes + 80 pops) / 2s
		t.Errorf("req rate = %v, want 100", r.ReqRate)
	}
	if r.Len != 12 || r.ReplLag != 3 {
		t.Errorf("len/lag: %+v", r)
	}
	// The node with no obs address renders as unreachable, not omitted:
	// a fleet view that silently drops nodes hides exactly the outages
	// it exists to show.
	if !cm.Rows[1].Unreachable || cm.Rows[1].ID != 5 {
		t.Fatalf("row 1: %+v", cm.Rows[1])
	}
}

func TestBuildClusterModelScrapeFailure(t *testing.T) {
	// A node that advertises obs but did not answer this window (absent
	// from cur) is marked unreachable.
	m := testClusterMap()
	cm := buildClusterModel("seed:1", m, nil, nil, nil, time.Second)
	if len(cm.Rows) != 2 || !cm.Rows[0].Unreachable || !cm.Rows[1].Unreachable {
		t.Fatalf("rows: %+v", cm.Rows)
	}
}

func TestRenderCluster(t *testing.T) {
	cm := clusterModel{
		Seed:       "127.0.0.1:9970",
		Window:     time.Second,
		MapVersion: 4,
		Mode:       "rank",
		Rows: []clusterNodeRow{
			{ID: 1, Band: "0..524287", Obs: "127.0.0.1:91", Role: "primary", Ready: true, MapVer: 4, ReqRate: 12345, Len: 12, ReplLag: 3},
			{ID: 5, Band: "524288..1048575", Obs: "127.0.0.1:92", Unreachable: true},
			{ID: 9, Band: "-", Unreachable: true}, // no obs advertised at all
		},
	}
	var b strings.Builder
	renderCluster(&b, cm)
	out := b.String()

	for _, want := range []string{
		"map v4 (rank)",
		"NODE", "BAND", "ROLE", "MAPV", "READY", "REQ/S", "LAG",
		"primary", "0..524287", "yes",
		"down", // advertised obs, scrape failed
		"none", // no obs advertised
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "\n") < 5 {
		t.Fatalf("render too short:\n%s", out)
	}
}
