package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// clusterPrefix is the metric-name prefix bmwd registers its cluster
// gauges under.
const clusterPrefix = "bmwd_cluster"

// clusterNodeRow is one cluster node's line in the fleet view, derived
// from that node's own /metrics.json and /readyz (scraped at the obs
// address the cluster map advertises for it).
type clusterNodeRow struct {
	ID          uint32
	Band        string
	Obs         string // obs HTTP address from the map; "" = not advertised
	Unreachable bool   // obs scrape failed this window
	Role        string
	Ready       bool
	MapVer      float64 // the map version the node itself reports serving under
	ReqRate     float64 // pushes+pops per second across its shards, windowed
	Len         float64
	ReplLag     float64
}

// clusterModel is one frame of the fleet view.
type clusterModel struct {
	Seed       string
	Window     time.Duration
	MapVersion uint64
	Mode       string
	Rows       []clusterNodeRow
}

// bandString renders a node's owned slice of the key space compactly.
func bandString(m *cluster.Map, id uint32) string {
	s, e, ok := m.Band(id)
	if !ok {
		return "-"
	}
	if m.Mode == cluster.ModeRank {
		return fmt.Sprintf("%d..%d", s, e)
	}
	return fmt.Sprintf("%#x..%#x", s, e)
}

// nodeReqRate sums the windowed push+pop rate across the node's shards.
func nodeReqRate(prev, cur obs.Snapshot, dt time.Duration) float64 {
	total := 0.0
	nShards := int(cur.Gauge(enginePrefix + "_shards"))
	for i := 0; i < nShards; i++ {
		p := fmt.Sprintf("%s_shard%d", enginePrefix, i)
		total += rate(cur.Counter(p+"_pushes_total"), prev.Counter(p+"_pushes_total"), dt)
		total += rate(cur.Counter(p+"_pops_total"), prev.Counter(p+"_pops_total"), dt)
	}
	return total
}

// buildClusterModel derives one fleet frame: the map (fetched over the
// wire protocol from a seed) names the nodes; each row comes from that
// node's own obs endpoint. prev/cur snapshots and probes are keyed by
// node id; a node missing from cur was unreachable this window.
func buildClusterModel(seed string, m *cluster.Map, prev, cur map[uint32]obs.Snapshot, probes map[uint32]map[string]any, dt time.Duration) clusterModel {
	cm := clusterModel{
		Seed:       seed,
		Window:     dt,
		MapVersion: m.Version,
		Mode:       m.Mode.String(),
	}
	for _, n := range m.Nodes {
		row := clusterNodeRow{ID: n.ID, Band: bandString(m, n.ID), Obs: n.Obs}
		c, ok := cur[n.ID]
		if n.Obs == "" || !ok {
			row.Unreachable = true
			cm.Rows = append(cm.Rows, row)
			continue
		}
		row.MapVer = c.Gauge(clusterPrefix + "_map_version")
		row.ReqRate = nodeReqRate(prev[n.ID], c, dt)
		row.Len = c.Gauge(enginePrefix + "_len")
		row.ReplLag = c.Gauge(replPrefix + "_lag")
		if p := probes[n.ID]; p != nil {
			if role, ok := p["role"].(string); ok {
				row.Role = role
			}
			if ready, ok := p["ok"].(bool); ok {
				row.Ready = ready
			}
		}
		cm.Rows = append(cm.Rows, row)
	}
	return cm
}

// renderCluster writes one fleet frame as plain text.
func renderCluster(w io.Writer, m clusterModel) {
	fmt.Fprintf(w, "bmwtop — cluster via %s    map v%d (%s)    window %.1fs\n",
		m.Seed, m.MapVersion, m.Mode, m.Window.Seconds())
	fmt.Fprintf(w, "\n%-5s %-22s %-9s %6s %7s %10s %9s %9s %6s\n",
		"NODE", "BAND", "ROLE", "MAPV", "READY", "REQ/S", "LEN", "LAG", "OBS")
	for _, r := range m.Rows {
		if r.Unreachable {
			obsNote := "none"
			if r.Obs != "" {
				obsNote = "down"
			}
			fmt.Fprintf(w, "%-5d %-22s %-9s %6s %7s %10s %9s %9s %6s\n",
				r.ID, r.Band, "?", "?", "?", "-", "-", "-", obsNote)
			continue
		}
		ready := "no"
		if r.Ready {
			ready = "yes"
		}
		role := r.Role
		if role == "" {
			role = "?"
		}
		fmt.Fprintf(w, "%-5d %-22s %-9s %6.0f %7s %10s %9.0f %9.0f %6s\n",
			r.ID, r.Band, role, r.MapVer, ready, fmtRate(r.ReqRate), r.Len, r.ReplLag, "up")
	}
}

// runCluster is the -cluster main loop: refetch the map each frame (a
// promotion or rebalance shows up as the version changing between
// frames), scrape every node's obs endpoint, and render the fleet.
func runCluster(seed string, interval time.Duration, once bool) {
	client := &http.Client{Timeout: 10 * time.Second}
	scrape := func(m *cluster.Map) (map[uint32]obs.Snapshot, map[uint32]map[string]any) {
		snaps := map[uint32]obs.Snapshot{}
		probes := map[uint32]map[string]any{}
		for _, n := range m.Nodes {
			if n.Obs == "" {
				continue
			}
			base := "http://" + n.Obs
			s, err := fetchSnapshot(client, base)
			if err != nil {
				continue
			}
			snaps[n.ID] = s
			probes[n.ID] = fetchProbe(client, base)
		}
		return snaps, probes
	}

	m, err := cluster.FetchMap(seed, 0, 5*time.Second)
	if err != nil {
		fatalf("cannot fetch cluster map from %s: %v", seed, err)
	}
	if m == nil {
		fatalf("%s serves no cluster map (bmwd without -cluster-map?)", seed)
	}
	prev, _ := scrape(m)
	prevAt := time.Now()

	for {
		time.Sleep(interval)
		if nm, err := cluster.FetchMap(seed, 0, 5*time.Second); err == nil && nm != nil {
			m = nm
		}
		cur, probes := scrape(m)
		now := time.Now()
		cm := buildClusterModel(seed, m, prev, cur, probes, now.Sub(prevAt))
		if !once {
			fmt.Print("\x1b[H\x1b[2J")
		}
		renderCluster(os.Stdout, cm)
		if once {
			return
		}
		prev, prevAt = cur, now
	}
}
