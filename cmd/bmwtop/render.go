package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// Metric-name prefixes bmwd registers its instruments under. bmwtop is
// a thin view over that contract; pointing it at a daemon with custom
// prefixes just yields empty tables, never an error.
const (
	enginePrefix  = "bmwd_engine"
	replPrefix    = "bmwd_repl"
	tracePrefix   = "bmwd_trace"
	runtimePrefix = "bmwd_runtime"
	persistPrefix = "bmwd_persist"
)

// stageRow is one request-lifecycle stage's windowed latency line.
type stageRow struct {
	Label string
	Rate  float64 // spans observed per second in the window
	P50   float64 // µs
	P99   float64 // µs
}

// shardRow is one engine shard's windowed throughput line.
type shardRow struct {
	ID         int
	Occupancy  float64
	Capacity   float64
	PushRate   float64 // ops/s
	PopRate    float64 // ops/s
	ShedRate   float64 // sheds/s
	DrainMean  float64 // requests per drain, window mean
	Overloaded bool
}

// replRow summarises the replication gauges and windowed ack latency.
type replRow struct {
	Present      bool
	Lag          float64
	LogSeq       float64
	AckSeq       float64
	HeartbeatAge float64 // seconds
	AckP50       float64 // µs
	AckP99       float64 // µs
	RecordsRate  float64 // applied records/s (follower)
	AcksRate     float64 // acks/s (primary)
}

// runtimeRow is the Go runtime telemetry line (from bmwd's
// runtime/metrics poller; absent on older daemons).
type runtimeRow struct {
	Present    bool
	Goroutines float64
	HeapLive   float64 // bytes
	GCPauseP99 float64 // µs, windowed
	SchedP99   float64 // µs, windowed
}

// integrityRow summarises the background scrubber and anti-entropy
// repair instruments (absent on daemons running without -persist or
// with -scrub-interval 0).
type integrityRow struct {
	Present      bool
	Progress     float64 // fraction of the current scrub pass
	Passes       uint64  // completed full passes
	ChainRate    float64 // WAL chain-points verified/s
	BytesRate    float64 // bytes scrubbed/s
	Corruptions  uint64  // findings detected, lifetime
	RepairedDirs uint64  // directories repaired via anti-entropy, lifetime
	Poisoned     bool    // any shard WAL sticky-poisoned
}

// model is one frame of derived dashboard state: everything render
// needs, precomputed so rendering is pure formatting.
type model struct {
	Addr      string
	Window    time.Duration
	Probe     map[string]any // /readyz body; nil when the probe fetch failed
	SLO       *obs.SLOStatus // /slo.json; nil when the daemon runs without -slo
	Len       float64
	Stages    []stageRow
	Shards    []shardRow
	Repl      replRow
	Runtime   runtimeRow
	Integrity integrityRow
}

// rate converts a counter delta over the window into a per-second rate.
func rate(cur, prev uint64, dt time.Duration) float64 {
	if dt <= 0 || cur < prev {
		return 0
	}
	return float64(cur-prev) / dt.Seconds()
}

// histMean returns the windowed mean of a plain histogram, falling
// back to the lifetime mean when the window is empty or the counter
// went backwards (daemon restart).
func histMean(cur, prev obs.HistogramSnapshot, _ time.Duration) float64 {
	if cur.Count < prev.Count || cur.Sum < prev.Sum {
		return cur.Mean()
	}
	dc := cur.Count - prev.Count
	if dc == 0 {
		return 0
	}
	return float64(cur.Sum-prev.Sum) / float64(dc)
}

// buildModel derives one dashboard frame from two registry snapshots
// taken dt apart. prev may be the zero Snapshot for the first frame —
// rates then read as lifetime averages since process start.
func buildModel(addr string, prev, cur obs.Snapshot, dt time.Duration, probe map[string]any) model {
	m := model{Addr: addr, Window: dt, Probe: probe, Len: cur.Gauge(enginePrefix + "_len")}

	for st := obs.Stage(0); st < obs.NumStages; st++ {
		name := obs.StageMetricName(tracePrefix, st)
		if _, ok := cur.Quantiles[name]; !ok {
			continue // tracing off on this daemon
		}
		w := cur.Quantile(name).Sub(prev.Quantile(name))
		label := st.String()
		if st == obs.StageIssue {
			label = "total"
		}
		m.Stages = append(m.Stages, stageRow{
			Label: label,
			Rate:  rate(w.Count, 0, dt),
			P50:   float64(w.P50) / 1e3,
			P99:   float64(w.P99) / 1e3,
		})
	}

	nShards := int(cur.Gauge(enginePrefix + "_shards"))
	for i := 0; i < nShards; i++ {
		p := fmt.Sprintf("%s_shard%d", enginePrefix, i)
		m.Shards = append(m.Shards, shardRow{
			ID:         i,
			Occupancy:  cur.Gauge(p + "_occupancy"),
			Capacity:   cur.Gauge(p + "_capacity"),
			PushRate:   rate(cur.Counter(p+"_pushes_total"), prev.Counter(p+"_pushes_total"), dt),
			PopRate:    rate(cur.Counter(p+"_pops_total"), prev.Counter(p+"_pops_total"), dt),
			ShedRate:   rate(cur.Counter(p+"_overload_shed_total"), prev.Counter(p+"_overload_shed_total"), dt),
			DrainMean:  histMean(cur.Histograms[p+"_drain_batch"], prev.Histograms[p+"_drain_batch"], dt),
			Overloaded: cur.Gauge(p+"_overloaded") != 0,
		})
	}

	if _, ok := cur.Gauges[runtimePrefix+"_goroutines"]; ok {
		gc := cur.Quantile(runtimePrefix + "_gc_pause_ns").Sub(prev.Quantile(runtimePrefix + "_gc_pause_ns"))
		sched := cur.Quantile(runtimePrefix + "_sched_latency_ns").Sub(prev.Quantile(runtimePrefix + "_sched_latency_ns"))
		m.Runtime = runtimeRow{
			Present:    true,
			Goroutines: cur.Gauge(runtimePrefix + "_goroutines"),
			HeapLive:   cur.Gauge(runtimePrefix + "_heap_live_bytes"),
			GCPauseP99: float64(gc.P99) / 1e3,
			SchedP99:   float64(sched.P99) / 1e3,
		}
	}

	if _, ok := cur.Gauges[persistPrefix+"_scrub_progress"]; ok {
		poisoned := false
		for name, v := range cur.Gauges {
			if v != 0 && strings.HasPrefix(name, persistPrefix) && strings.HasSuffix(name, "_wal_poisoned") {
				poisoned = true
			}
		}
		m.Integrity = integrityRow{
			Present:      true,
			Progress:     cur.Gauge(persistPrefix + "_scrub_progress"),
			Passes:       cur.Counter(persistPrefix + "_scrub_passes_total"),
			ChainRate:    rate(cur.Counter(persistPrefix+"_scrub_chain_points_total"), prev.Counter(persistPrefix+"_scrub_chain_points_total"), dt),
			BytesRate:    rate(cur.Counter(persistPrefix+"_scrub_bytes_total"), prev.Counter(persistPrefix+"_scrub_bytes_total"), dt),
			Corruptions:  cur.Counter(persistPrefix + "_scrub_corruptions_total"),
			RepairedDirs: cur.Counter(replPrefix + "_repair_dirs_total"),
			Poisoned:     poisoned,
		}
	}

	if _, ok := cur.Gauges[replPrefix+"_role"]; ok {
		ack := cur.Quantile(replPrefix + "_ack_latency_ns").Sub(prev.Quantile(replPrefix + "_ack_latency_ns"))
		m.Repl = replRow{
			Present:      true,
			Lag:          cur.Gauge(replPrefix + "_lag"),
			LogSeq:       cur.Gauge(replPrefix + "_log_seq"),
			AckSeq:       cur.Gauge(replPrefix + "_ack_seq"),
			HeartbeatAge: cur.Gauge(replPrefix + "_heartbeat_age_seconds"),
			AckP50:       float64(ack.P50) / 1e3,
			AckP99:       float64(ack.P99) / 1e3,
			RecordsRate:  rate(cur.Counter(replPrefix+"_records_applied_total"), prev.Counter(replPrefix+"_records_applied_total"), dt),
			AcksRate:     rate(cur.Counter(replPrefix+"_acks_total"), prev.Counter(replPrefix+"_acks_total"), dt),
		}
	}
	return m
}

// fmtRate renders a per-second rate compactly: 12.3, 45.6k, 7.89M.
func fmtRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// probeKeys is the display order for the /readyz detail line; any keys
// beyond these are appended sorted so nothing is silently dropped.
var probeKeys = []string{"ok", "role", "serving", "degraded", "caught_up", "repl_lag", "overloaded_shards"}

// render writes one frame as plain text. Screen clearing is the
// caller's concern so the same renderer serves -once and file output.
func render(w io.Writer, m model) {
	fmt.Fprintf(w, "bmwtop — %s    window %.1fs    queue len %.0f\n",
		m.Addr, m.Window.Seconds(), m.Len)

	if m.SLO != nil && m.SLO.Worst != "ok" {
		// Alert banner: the burn-rate state an operator must not miss.
		fmt.Fprintf(w, "!! SLO %s:", strings.ToUpper(m.SLO.Worst))
		for _, o := range m.SLO.Objectives {
			if o.State != "ok" {
				fmt.Fprintf(w, " %s=%s(%.3g>%.3g)", o.Name, o.State, o.Value, o.Bound)
			}
		}
		fmt.Fprintln(w)
	}

	if m.Probe == nil {
		fmt.Fprintf(w, "probe: unreachable\n")
	} else {
		fmt.Fprintf(w, "probe:")
		seen := map[string]bool{}
		emit := func(k string) {
			if v, ok := m.Probe[k]; ok && !seen[k] {
				fmt.Fprintf(w, " %s=%v", k, v)
				seen[k] = true
			}
		}
		for _, k := range probeKeys {
			emit(k)
		}
		rest := make([]string, 0, len(m.Probe))
		for k := range m.Probe {
			if !seen[k] {
				rest = append(rest, k)
			}
		}
		sort.Strings(rest)
		for _, k := range rest {
			emit(k)
		}
		fmt.Fprintln(w)
	}

	if len(m.Stages) > 0 {
		fmt.Fprintf(w, "\n%-10s %10s %12s %12s\n", "STAGE", "REQ/S", "P50(µs)", "P99(µs)")
		for _, s := range m.Stages {
			fmt.Fprintf(w, "%-10s %10s %12.1f %12.1f\n", s.Label, fmtRate(s.Rate), s.P50, s.P99)
		}
	}

	if len(m.Shards) > 0 {
		fmt.Fprintf(w, "\n%-6s %14s %10s %10s %8s %8s %5s\n",
			"SHARD", "OCC/CAP", "PUSH/S", "POP/S", "SHED/S", "DRAIN", "OVLD")
		for _, s := range m.Shards {
			ovld := "-"
			if s.Overloaded {
				ovld = "YES"
			}
			fmt.Fprintf(w, "%-6d %6.0f/%-7.0f %10s %10s %8s %8.1f %5s\n",
				s.ID, s.Occupancy, s.Capacity,
				fmtRate(s.PushRate), fmtRate(s.PopRate), fmtRate(s.ShedRate),
				s.DrainMean, ovld)
		}
	}

	if m.Repl.Present {
		fmt.Fprintf(w, "\nrepl: lag=%.0f log_seq=%.0f ack_seq=%.0f heartbeat_age=%.1fs"+
			" ack_p50=%.1fµs ack_p99=%.1fµs records/s=%s acks/s=%s\n",
			m.Repl.Lag, m.Repl.LogSeq, m.Repl.AckSeq, m.Repl.HeartbeatAge,
			m.Repl.AckP50, m.Repl.AckP99,
			fmtRate(m.Repl.RecordsRate), fmtRate(m.Repl.AcksRate))
	}

	if m.Integrity.Present {
		poisoned := "-"
		if m.Integrity.Poisoned {
			poisoned = "POISONED"
		}
		fmt.Fprintf(w, "\nintegrity: scrub=%.0f%% passes=%d chain_verify/s=%s scrubbed/s=%s"+
			" corruptions=%d repaired_dirs=%d wal=%s\n",
			m.Integrity.Progress*100, m.Integrity.Passes,
			fmtRate(m.Integrity.ChainRate), fmtBytes(m.Integrity.BytesRate),
			m.Integrity.Corruptions, m.Integrity.RepairedDirs, poisoned)
	}

	if m.SLO != nil {
		fmt.Fprintf(w, "\nslo:")
		for _, o := range m.SLO.Objectives {
			fmt.Fprintf(w, " %s=%s", o.Name, o.State)
		}
		fmt.Fprintf(w, " (windows %ds/%ds)\n",
			m.SLO.ShortWindowMS/1000, m.SLO.LongWindowMS/1000)
	}

	if m.Runtime.Present {
		fmt.Fprintf(w, "runtime: goroutines=%.0f heap_live=%s gc_pause_p99=%.1fµs sched_p99=%.1fµs\n",
			m.Runtime.Goroutines, fmtBytes(m.Runtime.HeapLive),
			m.Runtime.GCPauseP99, m.Runtime.SchedP99)
	}
}

// fmtBytes renders a byte count compactly: 512B, 3.2MiB, 1.5GiB.
func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}
