package main

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	bmw "repro"
)

// engineConfigs is the shards × batch-size sweep the engine suite
// measures: batch=1 exposes the raw per-op ring cost (one lock+signal
// and one shard wakeup per operation), batch=64 the amortized cost the
// serving path actually pays. The shard axis shows how the MPSC fan-out
// scales; on a single-CPU runner it measures coordination overhead, on
// multi-core it measures parallel speedup.
var engineConfigs = []struct {
	shards, batch int
}{
	{1, 1},
	{1, 64},
	{4, 1},
	{4, 64},
	{4, 256},
}

// engineWorkers is the number of concurrent submitters: two, so the
// MPSC ring always sees real producer contention even in quick mode.
const engineWorkers = 2

// engineTraceSample, when positive (-trace-sample), runs the engine
// suite with request-lifecycle tracing installed: one in N batches is
// carried through the full span lifecycle (Begin, the engine's
// enqueue/dequeue/apply stamps, Finish into the stage histograms),
// mirroring the cost profile of bmwd's sampling knob. The measured
// Mops then carry the tracer's amortized overhead and the baseline
// comparison becomes the tracing-cost regression gate. The untraced
// batches still pay the nil-span branch at every stamp site — the
// always-on cost of the instrumentation points themselves.
var engineTraceSample int

// engineFlightRec, when true (-flightrec), runs the engine suite with
// the black-box flight recorder attached: engine hooks record
// overload/backpressure edges, and one in 64 batches (or the
// -trace-sample period when set) is carried through the span lifecycle
// whose Finish performs flight admission. Comparing the measured Mops
// against the untraced committed baseline gates the black box's
// overhead — the acceptance bound is 3%.
var engineFlightRec bool

// engineIntegrity, when true (-integrity), runs the engine suite with
// the deployment-shaped durable-integrity load alongside the measured
// workload: a background lane records a hash-chained WAL through a
// persist manager with periodic Merkle-sealed checkpoints, while an
// io-throttled scrubber (bmwd's default 8 MiB/s) continuously
// re-verifies the directory. Comparing the measured Mops against the
// committed baseline gates scrub+chain overhead — the acceptance bound
// is 3%.
var engineIntegrity bool

// engineMops measures aggregate push+pop throughput of a sharded
// engine at 50% fill: engineWorkers goroutines split ops between them,
// each submitting alternating push/pop batches of the given size.
func engineMops(shards, batch, ops int, seed int64) float64 {
	eng, err := bmw.NewEngine(bmw.EngineConfig{
		Shards: shards,
		Kind:   bmw.EngineCore,
		Order:  2,
		Levels: 11,
	})
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	// Prefill to half capacity so pops never run dry and pushes never
	// hit the almost-full reject.
	rng := rand.New(rand.NewSource(seed))
	fill := make([]bmw.EngineOp, 0, 256)
	for filled := 0; filled < eng.Cap()/2; filled += len(fill) {
		fill = fill[:0]
		for i := 0; i < 256 && filled+i < eng.Cap()/2; i++ {
			fill = append(fill, bmw.EnginePushOp(bmw.Element{
				Value: uint64(rng.Intn(1 << 16)), Meta: rng.Uint64(),
			}))
		}
		for _, r := range eng.Submit(fill) {
			if r.Err != nil {
				panic(r.Err)
			}
		}
	}

	if engineIntegrity {
		stop, err := startIntegrityLoad(seed)
		if err != nil {
			panic(err)
		}
		defer stop()
	}

	var fr *bmw.FlightRecorder
	if engineFlightRec {
		fr = bmw.NewFlightRecorder(8192)
		eng.SetHooks(bmw.EngineHooks{Flight: fr})
	}
	sampleN := engineTraceSample
	if sampleN <= 0 && fr != nil {
		sampleN = 64
	}
	var tracer *bmw.RequestTracer
	if sampleN > 0 {
		tracer = bmw.NewRequestTracer(bmw.RequestTracerOptions{
			Registry:    bmw.NewMetricsRegistry(),
			Prefix:      "perf_trace",
			SampleEvery: sampleN,
			Flight:      fr,
		})
	}

	perWorker := ops / engineWorkers
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < engineWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed + int64(w)))
			b := make([]bmw.EngineOp, batch)
			res := make([]bmw.EngineResult, batch)
			nbatch := 0
			for done := 0; done < perWorker; done += len(b) {
				nbatch++
				for i := range b {
					// Alternate on the global op index, not the batch
					// offset, so batch=1 still issues pushes and pops in
					// equal measure instead of pushing until full.
					if (done+i)%2 == 0 {
						b[i] = bmw.EnginePushOp(bmw.Element{
							Value: uint64(wrng.Intn(1 << 16)), Meta: wrng.Uint64(),
						})
					} else {
						b[i] = bmw.EnginePopOp()
					}
				}
				if tracer != nil && nbatch%sampleN == 0 {
					// Mirror the server's span lifecycle: the wire stages
					// the bench has no server for are stamped zero-width
					// around the engine stages SubmitTraced fills in,
					// sharing one clock read per side like the server does.
					now := bmw.RequestSpanNow()
					sp := tracer.Begin(int64(w), now)
					sp.StampAt(bmw.StageDecode, now)
					eng.SubmitTraced(b, res, sp)
					now = bmw.RequestSpanNow()
					sp.StampAt(bmw.StageCommit, now)
					sp.StampAt(bmw.StageAck, now)
					sp.StampAt(bmw.StageWrite, now)
					tracer.Finish(sp)
				} else {
					eng.SubmitInto(b, res)
				}
			}
		}(w)
	}
	wg.Wait()
	el := time.Since(start)
	return float64(perWorker*engineWorkers) / el.Seconds() / 1e6
}

// startIntegrityLoad spins up the background integrity lane the
// -integrity gate measures against: one goroutine alternating between
// chained-WAL record bursts (group commit, periodic checkpoints — the
// write-side hash-chain and Merkle cost) and throttled scrub steps
// (the read-side verification cost), against its own scratch
// directory. The returned stop function halts the lane and removes the
// scratch state.
func startIntegrityLoad(seed int64) (func(), error) {
	dir, err := os.MkdirTemp("", "bmwperf-integrity-")
	if err != nil {
		return nil, err
	}
	tree := bmw.NewBMWTree(2, 11)
	m, _, err := bmw.OpenPersist(dir, tree, bmw.PersistOptions{
		WAL: bmw.PersistWALOptions{BatchOps: 64, Sync: bmw.SyncBatch},
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	scr := bmw.NewPersistScrubber(bmw.PersistScrubConfig{
		Dirs:      []string{dir},
		RateBytes: 8 << 20, // bmwd's default -scrub-rate
	})

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer os.RemoveAll(dir)
		defer m.Close()
		rng := rand.New(rand.NewSource(seed ^ 0x5bd1e995))
		// Pace the lane like a daemon's persistence load, not a
		// saturating producer: one 32-op group commit per 50ms tick
		// (~640 chained records/s), a full scrub pass every 8th tick
		// (the Step's own sleep enforces the 8 MiB/s io cap), and a
		// Merkle-sealed checkpoint every 128 ticks.
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		bursts := 0
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			for i := 0; i < 32; i++ {
				var op bmw.PersistOp
				if tree.Len() > 0 && (rng.Intn(3) == 0 || tree.AlmostFull()) {
					e, err := tree.Pop()
					if err != nil {
						return
					}
					p, q := tree.OpStats()
					op = bmw.PersistOp{Kind: bmw.OpPop, Cycle: p + q, Value: e.Value, Meta: e.Meta}
				} else {
					e := bmw.Element{Value: uint64(rng.Intn(1 << 16)), Meta: rng.Uint64()}
					if err := tree.Push(e); err != nil {
						return
					}
					p, q := tree.OpStats()
					op = bmw.PersistOp{Kind: bmw.OpPush, Cycle: p + q, Value: e.Value, Meta: e.Meta}
				}
				if err := m.Record(op); err != nil {
					return
				}
			}
			if bursts++; bursts%128 == 0 {
				if err := m.Checkpoint(); err != nil {
					return
				}
			}
			if bursts%8 == 0 {
				scr.Step() // sleeps dir-bytes/8MiB inside: the io throttle
			}
		}
	}()
	return func() { close(done); wg.Wait() }, nil
}

// engineSuite produces the BENCH_engine metric set: the shards ×
// batch-size throughput sweep over the concurrent scheduling engine.
func engineSuite(quick bool, seed int64) map[string]Metric {
	ops := 1_000_000
	if quick {
		ops = 200_000
	}
	m := map[string]Metric{}
	for _, c := range engineConfigs {
		name := fmt.Sprintf("engine_s%d_b%d_mops", c.shards, c.batch)
		cfg := c
		m[name] = Metric{bestOf(wallReps, func() float64 {
			return engineMops(cfg.shards, cfg.batch, ops, seed)
		}), "Mops/s", higherIsBetter}
	}
	return m
}
