package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	bmw "repro"
)

// engineConfigs is the shards × batch-size sweep the engine suite
// measures: batch=1 exposes the raw per-op ring cost (one lock+signal
// and one shard wakeup per operation), batch=64 the amortized cost the
// serving path actually pays. The shard axis shows how the MPSC fan-out
// scales; on a single-CPU runner it measures coordination overhead, on
// multi-core it measures parallel speedup.
var engineConfigs = []struct {
	shards, batch int
}{
	{1, 1},
	{1, 64},
	{4, 1},
	{4, 64},
	{4, 256},
}

// engineWorkers is the number of concurrent submitters: two, so the
// MPSC ring always sees real producer contention even in quick mode.
const engineWorkers = 2

// engineTraceSample, when positive (-trace-sample), runs the engine
// suite with request-lifecycle tracing installed: one in N batches is
// carried through the full span lifecycle (Begin, the engine's
// enqueue/dequeue/apply stamps, Finish into the stage histograms),
// mirroring the cost profile of bmwd's sampling knob. The measured
// Mops then carry the tracer's amortized overhead and the baseline
// comparison becomes the tracing-cost regression gate. The untraced
// batches still pay the nil-span branch at every stamp site — the
// always-on cost of the instrumentation points themselves.
var engineTraceSample int

// engineFlightRec, when true (-flightrec), runs the engine suite with
// the black-box flight recorder attached: engine hooks record
// overload/backpressure edges, and one in 64 batches (or the
// -trace-sample period when set) is carried through the span lifecycle
// whose Finish performs flight admission. Comparing the measured Mops
// against the untraced committed baseline gates the black box's
// overhead — the acceptance bound is 3%.
var engineFlightRec bool

// engineMops measures aggregate push+pop throughput of a sharded
// engine at 50% fill: engineWorkers goroutines split ops between them,
// each submitting alternating push/pop batches of the given size.
func engineMops(shards, batch, ops int, seed int64) float64 {
	eng, err := bmw.NewEngine(bmw.EngineConfig{
		Shards: shards,
		Kind:   bmw.EngineCore,
		Order:  2,
		Levels: 11,
	})
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	// Prefill to half capacity so pops never run dry and pushes never
	// hit the almost-full reject.
	rng := rand.New(rand.NewSource(seed))
	fill := make([]bmw.EngineOp, 0, 256)
	for filled := 0; filled < eng.Cap()/2; filled += len(fill) {
		fill = fill[:0]
		for i := 0; i < 256 && filled+i < eng.Cap()/2; i++ {
			fill = append(fill, bmw.EnginePushOp(bmw.Element{
				Value: uint64(rng.Intn(1 << 16)), Meta: rng.Uint64(),
			}))
		}
		for _, r := range eng.Submit(fill) {
			if r.Err != nil {
				panic(r.Err)
			}
		}
	}

	var fr *bmw.FlightRecorder
	if engineFlightRec {
		fr = bmw.NewFlightRecorder(8192)
		eng.SetHooks(bmw.EngineHooks{Flight: fr})
	}
	sampleN := engineTraceSample
	if sampleN <= 0 && fr != nil {
		sampleN = 64
	}
	var tracer *bmw.RequestTracer
	if sampleN > 0 {
		tracer = bmw.NewRequestTracer(bmw.RequestTracerOptions{
			Registry:    bmw.NewMetricsRegistry(),
			Prefix:      "perf_trace",
			SampleEvery: sampleN,
			Flight:      fr,
		})
	}

	perWorker := ops / engineWorkers
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < engineWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed + int64(w)))
			b := make([]bmw.EngineOp, batch)
			res := make([]bmw.EngineResult, batch)
			nbatch := 0
			for done := 0; done < perWorker; done += len(b) {
				nbatch++
				for i := range b {
					// Alternate on the global op index, not the batch
					// offset, so batch=1 still issues pushes and pops in
					// equal measure instead of pushing until full.
					if (done+i)%2 == 0 {
						b[i] = bmw.EnginePushOp(bmw.Element{
							Value: uint64(wrng.Intn(1 << 16)), Meta: wrng.Uint64(),
						})
					} else {
						b[i] = bmw.EnginePopOp()
					}
				}
				if tracer != nil && nbatch%sampleN == 0 {
					// Mirror the server's span lifecycle: the wire stages
					// the bench has no server for are stamped zero-width
					// around the engine stages SubmitTraced fills in,
					// sharing one clock read per side like the server does.
					now := bmw.RequestSpanNow()
					sp := tracer.Begin(int64(w), now)
					sp.StampAt(bmw.StageDecode, now)
					eng.SubmitTraced(b, res, sp)
					now = bmw.RequestSpanNow()
					sp.StampAt(bmw.StageCommit, now)
					sp.StampAt(bmw.StageAck, now)
					sp.StampAt(bmw.StageWrite, now)
					tracer.Finish(sp)
				} else {
					eng.SubmitInto(b, res)
				}
			}
		}(w)
	}
	wg.Wait()
	el := time.Since(start)
	return float64(perWorker*engineWorkers) / el.Seconds() / 1e6
}

// engineSuite produces the BENCH_engine metric set: the shards ×
// batch-size throughput sweep over the concurrent scheduling engine.
func engineSuite(quick bool, seed int64) map[string]Metric {
	ops := 1_000_000
	if quick {
		ops = 200_000
	}
	m := map[string]Metric{}
	for _, c := range engineConfigs {
		name := fmt.Sprintf("engine_s%d_b%d_mops", c.shards, c.batch)
		cfg := c
		m[name] = Metric{bestOf(wallReps, func() float64 {
			return engineMops(cfg.shards, cfg.batch, ops, seed)
		}), "Mops/s", higherIsBetter}
	}
	return m
}
