package main

import (
	"fmt"
	"math/rand"
	"time"

	bmw "repro"
)

// Suite sizes. Quick mode is CI-sized; full mode is the local
// baseline-refresh setting.
type sizes struct {
	throughputOps int // ops per software-queue timing loop
	simTicks      int // ticks per cycle-sim timing loop
	pairOps       int // pairs for the deterministic cycles-per-pair probe
	sojournOps    int // operations per sojourn workload
	netFlows      int // flows per netsim run
}

func suiteSizes(quick bool) sizes {
	if quick {
		return sizes{throughputOps: 200_000, simTicks: 200_000, pairOps: 2000, sojournOps: 60_000, netFlows: 200}
	}
	return sizes{throughputOps: 2_000_000, simTicks: 1_000_000, pairOps: 2000, sojournOps: 400_000, netFlows: 600}
}

// wallReps is the repetition count for wall-clock measurements.
// bestOf keeps the fastest of wallReps runs: the minimum-interference
// sample is a far more stable estimator than one run or the mean when
// the machine carries background load. Deterministic metrics (counted
// cycles, sojourn quantiles) are exact and never repeated.
const wallReps = 3

func bestOf(reps int, f func() float64) float64 {
	best := 0.0
	for i := 0; i < reps; i++ {
		if v := f(); v > best {
			best = v
		}
	}
	return best
}

// pusher is the slice of the queue contract both timing loops need.
type pusher interface {
	Push(bmw.Element) error
	Pop() (bmw.Element, error)
	Len() int
	Cap() int
}

// queueMops times a half-full alternating push/pop loop and returns
// wall-clock millions of operations per second.
func queueMops(q pusher, ops int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	for q.Len() < q.Cap()/2 {
		q.Push(bmw.Element{Value: uint64(rng.Intn(1 << 16))})
	}
	start := time.Now()
	for i := 0; i < ops; i += 2 {
		q.Push(bmw.Element{Value: uint64(rng.Intn(1 << 16))})
		q.Pop()
	}
	el := time.Since(start)
	return float64(ops) / el.Seconds() / 1e6
}

// simTickRate times the cycle simulator itself (simulated cycles per
// wall second, in millions) under a mixed legal schedule.
func simTickRate(s bmw.CycleSim, ticks int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	start := time.Now()
	for i := 0; i < ticks; i++ {
		switch {
		case s.PushAvailable() && !s.AlmostFull() && (s.Len() == 0 || rng.Intn(2) == 0):
			s.Tick(bmw.PushOp(uint64(rng.Intn(1<<16)), 0))
		case s.PopAvailable() && s.Len() > 0:
			s.Tick(bmw.PopOp())
		default:
			s.Tick(bmw.NopOp())
		}
	}
	el := time.Since(start)
	return float64(ticks) / el.Seconds() / 1e6
}

// cyclesPerPair measures the densest legal push-pop schedule in
// simulated cycles per pair — the deterministic counterpart of the
// paper's 2-cycle R-BMW / 3-cycle RPU-BMW sustained rates.
func cyclesPerPair(s bmw.CycleSim, pairs int) float64 {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 64 && !s.AlmostFull(); i++ {
		s.Tick(bmw.PushOp(uint64(rng.Intn(1<<16)), 0))
	}
	start := s.Cycle()
	if dual, ok := s.(interface {
		TickPushPop(bmw.Op) (*bmw.Element, error)
	}); ok {
		for done := 0; done < pairs; done++ {
			if _, err := dual.TickPushPop(bmw.PushOp(uint64(rng.Intn(1<<16)), 0)); err != nil {
				panic(err)
			}
		}
		return float64(s.Cycle()-start) / float64(pairs)
	}
	done, wantPush := 0, true
	for done < pairs {
		switch {
		case wantPush && s.PushAvailable() && !s.AlmostFull():
			s.Tick(bmw.PushOp(uint64(rng.Intn(1<<16)), 0))
			wantPush = false
		case !wantPush && s.PopAvailable() && s.Len() > 0:
			s.Tick(bmw.PopOp())
			done++
			wantPush = true
		default:
			s.Tick(bmw.NopOp())
		}
	}
	return float64(s.Cycle()-start) / float64(pairs)
}

// throughputSuite produces the BENCH_throughput metric set.
func throughputSuite(quick bool, seed int64) map[string]Metric {
	sz := suiteSizes(quick)
	m := map[string]Metric{}
	m["core_mops"] = Metric{bestOf(wallReps, func() float64 {
		return queueMops(bmw.NewBMWTree(2, 11), sz.throughputOps, seed)
	}), "Mops/s", higherIsBetter}
	m["pifo_mops"] = Metric{bestOf(wallReps, func() float64 {
		return queueMops(bmw.NewPIFO(4094), sz.throughputOps, seed)
	}), "Mops/s", higherIsBetter}
	m["rbmw_sim_mticks"] = Metric{bestOf(wallReps, func() float64 {
		return simTickRate(bmw.NewRBMWSim(2, 11), sz.simTicks, seed)
	}), "Mticks/s", higherIsBetter}
	m["rpubmw_sim_mticks"] = Metric{bestOf(wallReps, func() float64 {
		return simTickRate(bmw.NewRPUBMWSim(4, 8), sz.simTicks, seed)
	}), "Mticks/s", higherIsBetter}
	// Deterministic cycle efficiency: any drift here is a functional
	// pipeline change, not measurement noise.
	m["rbmw_cycles_per_pair"] = Metric{cyclesPerPair(bmw.NewRBMWSim(2, 11), sz.pairOps), "cycles", lowerIsBetter}
	m["rpubmw_cycles_per_pair"] = Metric{cyclesPerPair(bmw.NewRPUBMWSim(4, 8), sz.pairOps), "cycles", lowerIsBetter}
	m["pifo_cycles_per_pair"] = Metric{cyclesPerPair(bmw.NewPIFOSim(4094), sz.pairOps), "cycles", lowerIsBetter}
	return m
}

// sojournQueue is any exact queue exposing a sojourn distribution.
// Software queues additionally satisfy pusher; cycle simulators
// satisfy bmw.CycleSim — sojournWorkload picks the matching drive.
type sojournQueue interface {
	Instrument(*bmw.MetricsRegistry, string)
	SojournSnapshot() bmw.QuantileSnapshot
	Len() int
	Cap() int
}

// sojournWorkload drives a bursty push/pop pattern (fixed seed, so
// the resulting distribution is reproducible) and returns the sojourn
// snapshot. Cycle simulators go through their Tick interface to keep
// availability rules honoured.
func sojournWorkload(q sojournQueue, ops int, seed int64) bmw.QuantileSnapshot {
	q.Instrument(bmw.NewMetricsRegistry(), "perf")
	rng := rand.New(rand.NewSource(seed))
	sim, isSim := q.(bmw.CycleSim)
	var sw pusher
	if !isSim {
		sw = q.(pusher)
	}
	done := 0
	for done < ops {
		pushBurst := 1 + rng.Intn(64)
		popBurst := 1 + rng.Intn(48)
		for i := 0; i < pushBurst && done < ops; i++ {
			if isSim {
				if !sim.PushAvailable() || sim.AlmostFull() {
					sim.Tick(bmw.NopOp())
					continue
				}
				sim.Tick(bmw.PushOp(uint64(rng.Intn(1<<16)), 0))
			} else {
				if q.Len() >= q.Cap() {
					break
				}
				sw.Push(bmw.Element{Value: uint64(rng.Intn(1 << 16))})
			}
			done++
		}
		for i := 0; i < popBurst && done < ops; i++ {
			if isSim {
				if !sim.PopAvailable() || sim.Len() == 0 {
					sim.Tick(bmw.NopOp())
					continue
				}
				sim.Tick(bmw.PopOp())
			} else {
				if q.Len() == 0 {
					break
				}
				sw.Pop()
			}
			done++
		}
	}
	return q.SojournSnapshot()
}

// sojournMetrics flattens a snapshot into the metric map.
func sojournMetrics(m map[string]Metric, name, unit string, s bmw.QuantileSnapshot) {
	m[name+"_sojourn_p50_"+unit] = Metric{float64(s.P50), unit, lowerIsBetter}
	m[name+"_sojourn_p99_"+unit] = Metric{float64(s.P99), unit, lowerIsBetter}
	m[name+"_sojourn_p999_"+unit] = Metric{float64(s.P999), unit, lowerIsBetter}
}

// scaledNetConfig is the test-sized Figure 10 topology the latency
// suite runs: small enough for CI, deterministic in the seed.
func scaledNetConfig(kind bmw.SchedulerKind, flows int, seed int64) bmw.NetConfig {
	cfg := bmw.DefaultNetConfig()
	cfg.NumHosts = 32
	cfg.LinkBps = 1e9
	cfg.Scheduler = kind
	cfg.SchedCap = 254
	cfg.BMWOrder = 2
	cfg.BMWLevels = 7
	cfg.StoreLimit = 0
	cfg.TCP.MaxRTONs = 10e9
	cfg.NumFlows = flows
	cfg.Load = 0.9
	cfg.Seed = seed
	return cfg
}

// latencySuite produces the BENCH_latency metric set: sojourn
// quantiles in cycles for the four exact queues, netsim FCT slowdown
// percentiles, per-packet bottleneck sojourn in ns, and the
// approximate queues' rank-inversion rates.
func latencySuite(quick bool, seed int64) map[string]Metric {
	sz := suiteSizes(quick)
	m := map[string]Metric{}
	sojournMetrics(m, "core", "cycles", sojournWorkload(bmw.NewBMWTree(2, 11), sz.sojournOps, seed))
	sojournMetrics(m, "pifo", "cycles", sojournWorkload(bmw.NewPIFOSim(4094), sz.sojournOps, seed))
	sojournMetrics(m, "rbmw", "cycles", sojournWorkload(bmw.NewRBMWSim(2, 11), sz.sojournOps, seed))
	sojournMetrics(m, "rpubmw", "cycles", sojournWorkload(bmw.NewRPUBMWSim(4, 8), sz.sojournOps, seed))

	res := bmw.RunFCTExperiment(scaledNetConfig(bmw.SchedBMW, sz.netFlows, seed))
	qs := res.FCT.NormQuantiles(0.5, 0.99, 0.999)
	m["fct_norm_p50"] = Metric{qs[0], "slowdown", lowerIsBetter}
	m["fct_norm_p99"] = Metric{qs[1], "slowdown", lowerIsBetter}
	m["fct_norm_p999"] = Metric{qs[2], "slowdown", lowerIsBetter}
	sojournMetrics(m, "netsim_pkt", "ns", res.PktSojournNs)

	// Scheduling fidelity of the approximate queues under the default
	// STFQ ranks. The calendar-based queues invert at bucket
	// granularity; SP-PIFO's adaptation tracks STFQ's near-monotone
	// virtual time and sits at zero here — the comparator treats a
	// move off zero as a regression.
	for _, tc := range []struct {
		name string
		kind bmw.SchedulerKind
	}{
		{"sppifo", bmw.SchedSPPIFO},
		{"gearbox", bmw.SchedGearbox},
		{"calendarq", bmw.SchedCalendarQ},
	} {
		r := bmw.RunFCTExperiment(scaledNetConfig(tc.kind, sz.netFlows, seed))
		m[tc.name+"_inversion_rate"] = Metric{r.RankInversionRate, "fraction", lowerIsBetter}
	}
	return m
}

// runSuite dispatches one experiment by name.
func runSuite(exp string, quick bool, seed int64) (map[string]Metric, error) {
	switch exp {
	case "throughput":
		return throughputSuite(quick, seed), nil
	case "latency":
		return latencySuite(quick, seed), nil
	case "engine":
		return engineSuite(quick, seed), nil
	case "allocs":
		return allocsSuite(seed), nil
	}
	return nil, fmt.Errorf("unknown experiment %q", exp)
}
