// Command bmwperf is the continuous perf-regression harness: it runs a
// standardized suite (throughput, push-pop pair cycle efficiency,
// sojourn latency quantiles, netsim FCT percentiles) across the queue
// implementations, writes canonical BENCH_<exp>.json reports with run
// metadata, and compares them against committed baselines with a noise
// threshold, exiting non-zero on regression.
//
// Typical uses:
//
//	go run ./cmd/bmwperf -quick                      # measure + gate against repo baselines
//	go run ./cmd/bmwperf -quick -update              # refresh the committed baselines
//	go run ./cmd/bmwperf -quick -out-dir report -warn-only   # CI smoke
//	go run ./cmd/bmwperf -quick -inject-slowdown 2   # self-test: must exit 1
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/buildinfo"
)

func main() {
	exp := flag.String("exp", "all", "experiment: throughput|latency|engine|allocs|all")
	quick := flag.Bool("quick", false, "CI-sized suites (fewer ops/flows)")
	outDir := flag.String("out-dir", ".", "directory for the new BENCH_<exp>.json reports")
	baselineDir := flag.String("baseline-dir", "", "directory holding baseline BENCH_<exp>.json (default: out-dir)")
	update := flag.Bool("update", false, "write new baselines without comparing")
	threshold := flag.Float64("threshold", 0.10, "relative noise band before a change counts as a regression")
	warnOnly := flag.Bool("warn-only", false, "report regressions but exit zero (CI smoke mode)")
	seed := flag.Int64("seed", 42, "workload seed")
	slowdown := flag.Float64("inject-slowdown", 1, "degrade all measured metrics by this factor (self-test of the regression gate)")
	traceSample := flag.Int("trace-sample", 0, "engine suite: trace one in N batches through the request-span lifecycle, gating the tracer's overhead against the untraced baseline (0 = untraced)")
	flightRec := flag.Bool("flightrec", false, "engine suite: attach a flight recorder (engine hooks + span admission on 1-in-64 batches), gating the black box's overhead against the baseline")
	integrity := flag.Bool("integrity", false, "engine suite: run the deployment-shaped integrity load alongside the workload (chained-WAL recording with checkpoints plus an io-throttled scrubber), gating scrub+chain overhead against the baseline")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the suites to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile after the suites to this file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version("bmwperf"))
		return
	}

	var exps []string
	switch *exp {
	case "all":
		exps = []string{"throughput", "latency", "engine", "allocs"}
	case "throughput", "latency", "engine", "allocs":
		exps = []string{*exp}
	default:
		fmt.Fprintf(os.Stderr, "bmwperf: unknown -exp %q\n", *exp)
		os.Exit(2)
	}
	if *baselineDir == "" {
		*baselineDir = *outDir
	}
	engineTraceSample = *traceSample
	engineFlightRec = *flightRec
	engineIntegrity = *integrity
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	failed := false
	for _, e := range exps {
		metrics, err := runSuite(e, *quick, *seed)
		if err != nil {
			fatal(err)
		}
		applySlowdown(metrics, *slowdown)
		rep := newReport(e, *quick, metrics)

		// Load the baseline before writing: with the default layout the
		// new report overwrites it in place.
		basePath := benchPath(*baselineDir, e)
		base, baseErr := readReport(basePath)

		outPath := benchPath(*outDir, e)
		if err := writeReport(outPath, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("bmwperf: %s -> %s (%d metrics, commit %.12s)\n",
			e, outPath, len(metrics), rep.Commit)

		switch {
		case *update:
			fmt.Printf("bmwperf: %s: baseline updated, comparison skipped\n", e)
		case baseErr != nil:
			fmt.Printf("bmwperf: %s: no usable baseline at %s (%v); nothing to compare\n", e, basePath, baseErr)
		default:
			deltas := compareReports(base, rep, *threshold)
			printDeltas(os.Stdout, deltas)
			if regs := regressions(deltas); len(regs) > 0 {
				names := make([]string, len(regs))
				for i, d := range regs {
					names[i] = d.Name
				}
				fmt.Printf("bmwperf: %s: %d regression(s) beyond %.0f%%: %s\n",
					e, len(regs), 100**threshold, strings.Join(names, ", "))
				failed = true
			} else {
				fmt.Printf("bmwperf: %s: no regressions beyond %.0f%%\n", e, 100**threshold)
			}
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	if failed && !*warnOnly {
		os.Exit(1)
	}
	if failed {
		fmt.Println("bmwperf: regressions found but -warn-only set; exiting zero")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bmwperf:", err)
	os.Exit(1)
}
