package main

import (
	"fmt"
	"io"
)

// Delta is one metric's baseline-to-current comparison.
type Delta struct {
	Name      string
	Old, New  float64
	Unit      string
	Direction string
	// Change is the signed relative change (new-old)/old.
	Change float64
	// Regressed: the change moved against Direction by more than the
	// noise threshold.
	Regressed bool
}

// compareReports walks the union of both metric sets; metrics present
// on only one side are reported with Regressed=false (a vanished
// metric is a schema change, not a perf regression — the schema check
// lives in CI). threshold is the relative noise band, e.g. 0.10.
func compareReports(base, cur Report, threshold float64) []Delta {
	deltas := make([]Delta, 0, len(cur.Metrics))
	for _, name := range sortedNames(cur.Metrics) {
		nm := cur.Metrics[name]
		om, ok := base.Metrics[name]
		if !ok {
			continue
		}
		d := Delta{Name: name, Old: om.Value, New: nm.Value, Unit: nm.Unit, Direction: nm.Direction}
		switch {
		case om.Value == 0 && nm.Value == 0:
			// no change
		case om.Value == 0:
			// A metric appearing from zero: regression only if lower is
			// better (e.g. inversions going 0 -> nonzero).
			d.Change = 1
			d.Regressed = nm.Direction == lowerIsBetter
		default:
			d.Change = (nm.Value - om.Value) / om.Value
			switch nm.Direction {
			case higherIsBetter:
				d.Regressed = d.Change < -threshold
			case lowerIsBetter:
				d.Regressed = d.Change > threshold
			}
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// regressions filters the deltas that tripped the threshold.
func regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// printDeltas renders the comparison table.
func printDeltas(w io.Writer, deltas []Delta) {
	for _, d := range deltas {
		mark := "  "
		if d.Regressed {
			mark = "!!"
		}
		fmt.Fprintf(w, "  %s %-40s %14.4f -> %14.4f  %+7.2f%%  (%s, %s is better)\n",
			mark, d.Name, d.Old, d.New, 100*d.Change, d.Unit, d.Direction)
	}
}

// applySlowdown degrades every metric by the given factor (>1): lower-
// is-better values are multiplied, higher-is-better divided. It exists
// to prove the regression gate fires (-inject-slowdown).
func applySlowdown(metrics map[string]Metric, factor float64) {
	if factor == 1 {
		return
	}
	for name, m := range metrics {
		if m.Direction == higherIsBetter {
			m.Value /= factor
		} else {
			m.Value *= factor
		}
		metrics[name] = m
	}
}
