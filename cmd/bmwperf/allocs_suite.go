package main

import (
	"math/rand"
	"testing"

	bmw "repro"
	"repro/internal/wire"
)

// allocsSuite produces the BENCH_allocs metric set: steady-state
// allocations per operation on the serving hot path, measured with
// testing.AllocsPerRun. Unlike the Mops suites these are not
// noise-banded wall-clock numbers — on a warmed-up path they are exact
// small integers, so the comparator's relative threshold effectively
// gates any new allocation (a 0 → nonzero move on a lower-is-better
// metric is always flagged).
//
// Covered paths:
//
//	engine_submit_batch64   one Submit round trip of 64 ops through a
//	                        prefilled sharded engine (ring, drain,
//	                        queue apply, completion signal)
//	wire_encode_batch64     AppendOps+AppendFrame of 64 ops into a
//	                        reused buffer
//	wire_decode_batch64     DecodeFrame+ParseOps of the same frame
//	                        (ParseOps allocates the []Op — the one
//	                        budgeted allocation)
//	span_lifecycle          tracer Begin → stage stamps → Finish with
//	                        quantile aggregation (pooled: zero)
func allocsSuite(seed int64) map[string]Metric {
	m := map[string]Metric{}

	const batch = 64
	rng := rand.New(rand.NewSource(seed))

	// Engine path: alternate push/pop batches against a half-full
	// engine so neither rejects; the engine and result slices live
	// outside the measured closure.
	eng, err := bmw.NewEngine(bmw.EngineConfig{
		Shards: 2, Kind: bmw.EngineCore, Order: 2, Levels: 11,
	})
	if err != nil {
		panic(err)
	}
	defer eng.Close()
	fill := make([]bmw.EngineOp, batch)
	for filled := 0; filled < eng.Cap()/2; filled += len(fill) {
		for i := range fill {
			fill[i] = bmw.EnginePushOp(bmw.Element{
				Value: uint64(rng.Intn(1 << 16)), Meta: rng.Uint64(),
			})
		}
		for _, r := range eng.Submit(fill) {
			if r.Err != nil {
				panic(r.Err)
			}
		}
	}
	ops := make([]bmw.EngineOp, batch)
	res := make([]bmw.EngineResult, batch)
	n := 0
	m["engine_submit_batch64_allocs"] = Metric{testing.AllocsPerRun(200, func() {
		n++
		for i := range ops {
			if (n+i)%2 == 0 {
				ops[i] = bmw.EnginePushOp(bmw.Element{
					Value: uint64(n%(1<<16) + i), Meta: uint64(n),
				})
			} else {
				ops[i] = bmw.EnginePopOp()
			}
		}
		eng.SubmitInto(ops, res)
	}), "allocs/batch", lowerIsBetter}

	// Wire codec: encode into a reused buffer, decode the whole frame
	// back. ParseOps allocates exactly one []Op per call by design.
	wops := make([]wire.Op, batch)
	for i := range wops {
		if i%2 == 0 {
			wops[i] = wire.Op{Kind: wire.OpPush, Value: uint64(i), Meta: uint64(i)}
		} else {
			wops[i] = wire.Op{Kind: wire.OpPop}
		}
	}
	opsBuf := make([]byte, 0, 4096)
	frameBuf := make([]byte, 0, 4096)
	m["wire_encode_batch64_allocs"] = Metric{testing.AllocsPerRun(1000, func() {
		opsBuf = wire.AppendOps(opsBuf[:0], wops)
		frameBuf = wire.AppendFrame(frameBuf[:0], wire.TBatch, 1, opsBuf)
	}), "allocs/batch", lowerIsBetter}

	payload := wire.AppendOps(nil, wops)
	frame := wire.AppendFrame(nil, wire.TBatch, 1, payload)
	m["wire_decode_batch64_allocs"] = Metric{testing.AllocsPerRun(1000, func() {
		f, _, err := wire.DecodeFrame(frame)
		if err != nil {
			panic(err)
		}
		if _, err := wire.ParseOps(f.Payload); err != nil {
			panic(err)
		}
	}), "allocs/batch", lowerIsBetter}

	// Span lifecycle: pooled spans and lock-free histogram observes —
	// the per-sampled-request tracing cost. Expected zero.
	tracer := bmw.NewRequestTracer(bmw.RequestTracerOptions{
		Registry: bmw.NewMetricsRegistry(),
		Prefix:   "perf_trace",
	})
	m["span_lifecycle_allocs"] = Metric{testing.AllocsPerRun(1000, func() {
		now := bmw.RequestSpanNow()
		sp := tracer.Begin(0, now)
		sp.StampAt(bmw.StageDecode, now)
		sp.StampAt(bmw.StageEnqueue, now)
		sp.StampAt(bmw.StageDequeue, now)
		sp.StampAt(bmw.StageApply, now)
		now = bmw.RequestSpanNow()
		sp.StampAt(bmw.StageCommit, now)
		sp.StampAt(bmw.StageAck, now)
		sp.StampAt(bmw.StageWrite, now)
		tracer.Finish(sp)
	}), "allocs/span", lowerIsBetter}

	return m
}
