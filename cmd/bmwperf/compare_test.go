package main

import "testing"

func report(metrics map[string]Metric) Report {
	return Report{Schema: schemaID, Experiment: "test", Metrics: metrics}
}

func TestCompareDirections(t *testing.T) {
	base := report(map[string]Metric{
		"mops":    {100, "Mops/s", higherIsBetter},
		"latency": {100, "cycles", lowerIsBetter},
	})
	for _, tc := range []struct {
		name          string
		mops, latency float64
		wantRegressed []string
	}{
		{"improvement", 150, 50, nil},
		{"within noise", 95, 105, nil},
		{"throughput drop", 80, 100, []string{"mops"}},
		{"latency rise", 100, 120, []string{"latency"}},
		{"both", 80, 120, []string{"latency", "mops"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cur := report(map[string]Metric{
				"mops":    {tc.mops, "Mops/s", higherIsBetter},
				"latency": {tc.latency, "cycles", lowerIsBetter},
			})
			regs := regressions(compareReports(base, cur, 0.10))
			var names []string
			for _, d := range regs {
				names = append(names, d.Name)
			}
			if len(names) != len(tc.wantRegressed) {
				t.Fatalf("regressions %v, want %v", names, tc.wantRegressed)
			}
			for i := range names {
				if names[i] != tc.wantRegressed[i] {
					t.Fatalf("regressions %v, want %v", names, tc.wantRegressed)
				}
			}
		})
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := report(map[string]Metric{
		"inversions": {0, "fraction", lowerIsBetter},
		"gone_quiet": {0, "Mops/s", higherIsBetter},
	})
	cur := report(map[string]Metric{
		"inversions": {0.01, "fraction", lowerIsBetter},
		"gone_quiet": {5, "Mops/s", higherIsBetter},
	})
	regs := regressions(compareReports(base, cur, 0.10))
	if len(regs) != 1 || regs[0].Name != "inversions" {
		t.Fatalf("want only the inversions metric regressed from zero, got %v", regs)
	}
	// Zero to zero is no change.
	same := regressions(compareReports(base, base, 0.10))
	if len(same) != 0 {
		t.Fatalf("zero baseline vs itself regressed: %v", same)
	}
}

func TestCompareIgnoresDisjointMetrics(t *testing.T) {
	base := report(map[string]Metric{"old_only": {1, "x", lowerIsBetter}})
	cur := report(map[string]Metric{"new_only": {99, "x", lowerIsBetter}})
	if ds := compareReports(base, cur, 0.10); len(ds) != 0 {
		t.Fatalf("disjoint metric sets produced deltas: %v", ds)
	}
}

func TestApplySlowdownTripsGate(t *testing.T) {
	base := report(map[string]Metric{
		"mops":    {100, "Mops/s", higherIsBetter},
		"latency": {100, "cycles", lowerIsBetter},
	})
	cur := report(map[string]Metric{
		"mops":    {100, "Mops/s", higherIsBetter},
		"latency": {100, "cycles", lowerIsBetter},
	})
	applySlowdown(cur.Metrics, 1.5)
	regs := regressions(compareReports(base, cur, 0.10))
	if len(regs) != 2 {
		t.Fatalf("injected slowdown should regress both metrics, got %v", regs)
	}
}
