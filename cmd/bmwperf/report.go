package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"repro/internal/buildinfo"
)

// schemaID identifies the BENCH_<exp>.json layout this harness writes.
// Distinct from bmwbench's claims report so the two can coexist.
const schemaID = "bmwperf/v1"

// Directions for Metric.Direction.
const (
	higherIsBetter = "higher"
	lowerIsBetter  = "lower"
)

// Metric is one measured quantity.
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// Direction states which way is an improvement: "higher" or
	// "lower". The comparator flags moves the wrong way past the
	// noise threshold.
	Direction string `json:"direction"`
}

// Report is the canonical BENCH_<exp>.json document.
type Report struct {
	Schema     string `json:"schema"`
	Experiment string `json:"experiment"`
	Quick      bool   `json:"quick"`
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	Commit     string `json:"commit"`

	Metrics map[string]Metric `json:"metrics"`
}

// newReport fills the run metadata around a metric set.
func newReport(exp string, quick bool, metrics map[string]Metric) Report {
	return Report{
		Schema:     schemaID,
		Experiment: exp,
		Quick:      quick,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Commit:     buildinfo.Commit(),
		Metrics:    metrics,
	}
}

// benchPath returns dir/BENCH_<exp>.json.
func benchPath(dir, exp string) string {
	return filepath.Join(dir, "BENCH_"+exp+".json")
}

// writeReport writes the report as indented JSON.
func writeReport(path string, r Report) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// readReport loads and schema-checks a baseline.
func readReport(path string) (Report, error) {
	var r Report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != schemaID {
		return r, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, schemaID)
	}
	return r, nil
}

// sortedNames returns the metric names in stable order for printing.
func sortedNames(m map[string]Metric) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
