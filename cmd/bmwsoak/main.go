// bmwsoak is the differential chaos-soak harness for the fault
// subsystem (the robustness counterpart of bmwsim): it runs a long
// randomized push/pop workload through a protected hardware pipeline
// while a seeded fault plan flips stored bits, and cross-checks every
// pop against the golden software tree.
//
// Every injected fault must be accounted for: corrected transparently
// by SECDED, detected (ECC, register parity, structural hazard or the
// online invariant checker) and repaired by drain-and-rebuild recovery,
// or — only in the unprotected ablation — escaped as a silent pop-order
// divergence, which the harness reports with a first-divergence trace.
//
// Examples:
//
//	bmwsoak -design rpubmw -cycles 1000000 -faults 1000 -ecc secded
//	bmwsoak -design rpubmw -cycles 1000000 -faults 1000 -ecc off -checkevery 64
//	bmwsoak -design rbmw -faults 200 -ecc parity -checkevery 32
//
// The run is reproducible from the printed command line: the seed
// drives the workload, the fault plan's random draws and the placement
// of the scheduled strikes.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"math/rand"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/rbmw"
	"repro/internal/rpubmw"
	"repro/internal/trafficgen"
)

// soakSim is the protected-pipeline surface the harness drives: the
// CycleSim contract plus the fault-tolerance hooks both hardware
// designs implement.
type soakSim interface {
	Tick(hw.Op) (*core.Element, error)
	Cycle() uint64
	Len() int
	Cap() int
	AlmostFull() bool
	PushAvailable() bool
	PopAvailable() bool
	Quiescent() bool
	Faulted() bool
	Verify() error
	Detected() uint64
	Recoveries() uint64
	CheckRuns() uint64
	Recover() ([]core.Element, int)
	AttachFaults(hw.FaultStepper)
}

// divergence records the first silent pop-order mismatch: an escaped
// fault the protection layer never saw.
type divergence struct {
	cycle      uint64
	got, want  string
	injections []faultinject.Injection
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bmwsoak: "+format+"\n", args...)
	os.Exit(1)
}

func fmtElem(e *core.Element) string {
	if e == nil {
		return "<none>"
	}
	return fmt.Sprintf("{value %d meta %d}", e.Value, e.Meta)
}

func main() {
	var (
		design     = flag.String("design", "rpubmw", "hardware design to soak: rbmw | rpubmw")
		m          = flag.Int("m", 4, "tree order (M-way nodes)")
		l          = flag.Int("l", 4, "tree levels")
		cycles     = flag.Uint64("cycles", 1_000_000, "clock cycles to run before the final drain")
		faults     = flag.Int("faults", 1000, "scheduled random single-bit flips spread over the run")
		rate       = flag.Float64("rate", 0, "per-cycle probability of an extra rate-driven flip")
		maxRandom  = flag.Int("maxrandom", 0, "cap on rate-driven flips (0 = unlimited)")
		stuck      = flag.Int("stuck", 0, "random stuck-at bits pinned from cycle 1")
		eccFlag    = flag.String("ecc", "secded", "memory protection: off | parity | secded")
		scrub      = flag.Int("scrub", 4, "background scrub cadence in ticks per word (0 disables; SECDED only)")
		checkEvery = flag.Uint64("checkevery", 0, "online tree-invariant check period in cycles (0 disables)")
		workload   = flag.String("workload", "websearch", "rank distribution: websearch | datamining")
		seed       = flag.Int64("seed", 1, "seed for the workload, the fault plan and fault placement")
		httpAddr   = flag.String("http", "", "serve /metrics, /metrics.json and /debug/pprof on this address during the run")
		metricsOut = flag.String("metrics-out", "", "write the final metrics snapshot JSON to this file")
		persistDir = flag.String("persist", "", "stream the workload to a WAL and checkpoint in quiescent windows under this directory, then validate a crash recovery before the final drain")
	)
	flag.Parse()
	if *cycles == 0 {
		fatalf("-cycles must be positive")
	}
	if *m < 2 || *l < 1 {
		fatalf("invalid tree shape -m %d -l %d (want m >= 2, l >= 1)", *m, *l)
	}

	var mode faultinject.ECCMode
	switch *eccFlag {
	case "off":
		mode = faultinject.EccOff
	case "parity":
		mode = faultinject.EccParity
	case "secded":
		mode = faultinject.EccSECDED
	default:
		fatalf("unknown -ecc mode %q (want off, parity or secded)", *eccFlag)
	}

	var dist trafficgen.Distribution
	switch *workload {
	case "websearch":
		dist = trafficgen.WebSearchDist
	case "datamining":
		dist = trafficgen.DataMiningDist
	default:
		fatalf("unknown -workload %q (want websearch or datamining)", *workload)
	}

	// The full repro line comes first so any reported divergence can be
	// replayed from the log alone.
	fmt.Printf("bmwsoak -design %s -m %d -l %d -cycles %d -faults %d -rate %g -maxrandom %d -stuck %d -ecc %s -scrub %d -checkevery %d -workload %s -seed %d\n",
		*design, *m, *l, *cycles, *faults, *rate, *maxRandom, *stuck, mode, *scrub, *checkEvery, dist, *seed)

	// newSim builds a simulator with the configured shape and
	// protection; the persist check uses it again to construct the
	// fresh machine the checkpoint restores into.
	newSim := func() (soakSim, []hw.FaultTarget, func() faultinject.ECCStats) {
		switch *design {
		case "rbmw":
			// The register design has no SRAM to code: off disables the
			// per-slot parity column, any other mode enables it.
			s := rbmw.New(*m, *l)
			s.Protect(mode != faultinject.EccOff)
			s.CheckEvery = *checkEvery
			return s, []hw.FaultTarget{s}, func() faultinject.ECCStats { return faultinject.ECCStats{} }
		case "rpubmw":
			s := rpubmw.New(*m, *l)
			s.Protect(mode, *scrub)
			s.CheckEvery = *checkEvery
			return s, s.FaultTargets(), s.ECCTotals
		}
		fatalf("unknown -design %q (want rbmw or rpubmw)", *design)
		return nil, nil, nil
	}
	sim, targets, eccTotals := newSim()

	plan := faultinject.NewPlan(faultinject.Config{Seed: *seed, Rate: *rate, MaxRandom: *maxRandom})
	for _, t := range targets {
		plan.Register(t)
	}
	sim.AttachFaults(plan)
	// Strike placement draws from its own stream so changing -faults
	// does not perturb the workload.
	place := rand.New(rand.NewSource(*seed ^ 0x6a09e667))
	for i := 0; i < *faults; i++ {
		plan.ScheduleRandomFlip(1 + uint64(place.Int63n(int64(*cycles))))
	}
	if *stuck > 0 {
		plan.AddRandomStuck(*stuck, 1)
	}

	// Observability: probes are owned atomics written only by this
	// goroutine, so the HTTP endpoint can scrape mid-run without racing
	// the plan or the simulator. A nil registry disables every probe.
	var reg *obs.Registry
	if *httpAddr != "" || *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	sm := newSoakMetrics(reg)
	var srv *http.Server
	if *httpAddr != "" {
		fmt.Printf("metrics endpoint on http://%s/metrics\n", *httpAddr)
		srv = obs.NewServer(*httpAddr, reg)
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "bmwsoak: metrics endpoint:", err)
			}
		}()
	}

	// Crash-safe persistence: attach a WAL and checkpoint stream so the
	// soak doubles as a chaos test of concurrent checkpointing — a bit
	// flip during a snapshot must be caught by ECC, parity or the
	// snapshot checksum, never silently persisted.
	var pmgr *persist.Manager
	if *persistDir != "" {
		q, ok := sim.(persist.Checkpointable)
		if !ok {
			fatalf("-persist: design %q does not implement checkpointing", *design)
		}
		var err error
		pmgr, err = persist.Attach(*persistDir, q, persist.Options{
			WAL:     persist.WALOptions{BatchOps: 16, Sync: persist.SyncBatch},
			Metrics: reg,
		})
		if err != nil {
			fatalf("-persist: %v", err)
		}
		fmt.Printf("persist: WAL and checkpoints under %s\n", *persistDir)
	}
	recordOp := func(op persist.Op) {
		if pmgr == nil {
			return
		}
		if err := pmgr.Record(op); err != nil {
			fatalf("persist: record: %v", err)
		}
	}

	// A graceful stop breaks the soak loop, runs the persist check and
	// drain phases, flushes metrics and shuts the endpoint down; a
	// second signal falls back to the default handler and aborts.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	interrupted := false

	golden := core.New(*m, *l)
	sampler := trafficgen.NewSampler(*seed, dist)
	wrng := rand.New(rand.NewSource(*seed + 1))

	var (
		pushes, pops, nops uint64
		seq                uint64
		escaped            uint64
		recoverEvents      uint64
		totalDropped       int
		firstDiv           *divergence
		detectedBy         = map[string]uint64{}
	)

	// classify attributes one latched detection to the unit that raised
	// it (register parity, an SRAM's ECC, or the online checker).
	classify := func(err error) {
		var ce *hw.CorruptionError
		if errors.As(err, &ce) {
			detectedBy[ce.Unit]++
		}
	}

	// rebuild drains the (possibly corrupt) pipeline through Recover and
	// resynchronises the golden tree from the survivor list; replaying
	// the identical list in the identical order reproduces the exact
	// slot layout, so subsequent pop order stays comparable.
	rebuild := func() {
		survivors, dropped := sim.Recover()
		totalDropped += dropped
		recoverEvents++
		sm.recoverEvents.Inc()
		sm.droppedSlots.Add(uint64(dropped))
		golden.Reset()
		for _, e := range survivors {
			if err := golden.Push(e); err != nil {
				fatalf("golden rebuild overflow at cycle %d: %v", sim.Cycle(), err)
			}
		}
		// A rebuild drops slots the WAL thinks are still queued, so the
		// log no longer replays to the live state: supersede it with a
		// fresh checkpoint. A refusal (e.g. pipeline busy) is fine —
		// the pre-drain checkpoint supersedes everything regardless.
		if pmgr != nil {
			_ = pmgr.Checkpoint()
		}
	}

	// checkPop reconciles one pop against the golden model; a mismatch
	// with no detection is an escaped fault.
	checkPop := func(got *core.Element) {
		want, gerr := golden.Pop()
		if gerr != nil && got == nil {
			return // both empty: consistent
		}
		if gerr == nil && got != nil && got.Value == want.Value && got.Meta == want.Meta {
			return
		}
		escaped++
		sm.escaped.Inc()
		if firstDiv == nil {
			tr := plan.Trace()
			if len(tr) > 5 {
				tr = tr[len(tr)-5:]
			}
			wantStr := "<none>"
			if gerr == nil {
				wantStr = fmtElem(&want)
			}
			firstDiv = &divergence{
				cycle:      sim.Cycle(),
				got:        fmtElem(got),
				want:       wantStr,
				injections: append([]faultinject.Injection(nil), tr...),
			}
		}
		rebuild()
	}

	// Soak phase: a randomized legal schedule for the configured number
	// of cycles, with occasional idle bursts (traffic gaps) long enough
	// to drain the pipeline — the windows in which the online checker
	// finds it quiescent. Ticks refused by a latched fault do not
	// consume a cycle; recovery clears the latch and the loop resumes.
	gapLen := 2**l + 4
	idle := 0
	const samplePeriod = 1024 // gauge refresh cadence for live scraping
	const ckptPeriod = 20000  // cycles between quiescent-window checkpoints
	lastCkpt := uint64(0)
	for sim.Cycle() < *cycles {
		select {
		case sig := <-sigc:
			fmt.Printf("bmwsoak: received %v at cycle %d; stopping gracefully (second signal aborts)\n", sig, sim.Cycle())
			signal.Stop(sigc)
			interrupted = true
		default:
		}
		if interrupted {
			break
		}
		if reg != nil && sim.Cycle()%samplePeriod == 0 {
			sm.sample(sim, plan, eccTotals)
		}
		if pmgr != nil && sim.Cycle()-lastCkpt >= ckptPeriod && sim.Quiescent() && !sim.Faulted() {
			if err := pmgr.Checkpoint(); err != nil {
				fatalf("persist: checkpoint at cycle %d: %v", sim.Cycle(), err)
			}
			lastCkpt = sim.Cycle()
		}
		if idle == 0 && wrng.Intn(97) == 0 {
			idle = gapLen
		}
		wantPop := golden.Len() > 0 && (golden.AlmostFull() || wrng.Intn(3) == 0)
		var op hw.Op
		switch {
		case idle > 0:
			idle--
			op = hw.NopOp()
		case wantPop && sim.PopAvailable():
			op = hw.PopOp()
		case !wantPop && !golden.AlmostFull() && sim.PushAvailable():
			seq++
			op = hw.PushOp(sampler.Sample(), seq)
		default:
			op = hw.NopOp()
		}
		got, err := sim.Tick(op)
		if err != nil {
			if !errors.Is(err, hw.ErrCorrupt) {
				fatalf("cycle %d: %v", sim.Cycle(), err)
			}
			// The in-flight operation (if any) is stranded inside the
			// pipeline and harvested by Recover; the golden tree is
			// rebuilt from the same survivors, so neither side applies
			// this cycle's op.
			classify(err)
			rebuild()
			continue
		}
		switch op.Kind {
		case hw.Push:
			pushes++
			sm.pushes.Inc()
			recordOp(persist.Op{Kind: hw.Push, Cycle: sim.Cycle(), Value: op.Value, Meta: op.Meta})
			if err := golden.Push(core.Element{Value: op.Value, Meta: op.Meta}); err != nil {
				fatalf("golden push at cycle %d: %v", sim.Cycle(), err)
			}
		case hw.Pop:
			pops++
			sm.pops.Inc()
			if got != nil {
				recordOp(persist.Op{Kind: hw.Pop, Cycle: sim.Cycle(), Value: got.Value, Meta: got.Meta})
			}
			checkPop(got)
		default:
			nops++
			sm.nops.Inc()
		}
	}

	// Persist validation phase: checkpoint the live pipeline, recover
	// the on-disk state into a fresh machine, and prove it drains
	// bit-identically to the golden model before the main drain
	// consumes the original.
	if pmgr != nil {
		for i := 0; !sim.Quiescent(); i++ {
			if i > 100000 {
				fatalf("persist: pipeline did not quiesce for the final checkpoint")
			}
			if _, err := sim.Tick(hw.NopOp()); err != nil {
				if !errors.Is(err, hw.ErrCorrupt) {
					fatalf("persist: fence nop: %v", err)
				}
				classify(err)
				rebuild()
			}
		}
		if err := pmgr.Checkpoint(); err != nil {
			fatalf("persist: final checkpoint: %v", err)
		}
		if err := pmgr.Close(); err != nil {
			fatalf("persist: close: %v", err)
		}
		fresh, _, _ := newSim()
		m2, rep, err := persist.Open(*persistDir, fresh.(persist.Checkpointable), persist.Options{})
		if err != nil {
			fatalf("persist: recovery: %v", err)
		}
		if err := m2.Close(); err != nil {
			fatalf("persist: recovery close: %v", err)
		}
		for i := 0; !fresh.Quiescent(); i++ {
			if i > 100000 {
				fatalf("persist: recovered pipeline did not quiesce")
			}
			if _, err := fresh.Tick(hw.NopOp()); err != nil {
				fatalf("persist: recovered fence nop: %v", err)
			}
		}
		if mode != faultinject.EccOff {
			if err := fresh.Verify(); err != nil {
				fatalf("persist: recovered pipeline failed verification: %v", err)
			}
		}
		if mode == faultinject.EccOff && escaped > 0 {
			// The unprotected ablation has already diverged from the
			// golden model; a drain comparison proves nothing.
			fmt.Printf("persist: recovered snapshot seq %d (%d replayed ops); drain check skipped after %d escaped fault(s)\n",
				rep.SnapshotSeq, rep.ReplayedOps, escaped)
		} else {
			gc := golden.Clone()
			recovered := 0
			for drained := 0; gc.Len() > 0 || fresh.Len() > 0; drained++ {
				if drained > sim.Cap()*8+1024 {
					fatalf("persist: recovered drain did not converge (recovered %d, golden %d left)",
						fresh.Len(), gc.Len())
				}
				if !fresh.PopAvailable() {
					if _, err := fresh.Tick(hw.NopOp()); err != nil {
						fatalf("persist: recovered drain nop: %v", err)
					}
					continue
				}
				got, err := fresh.Tick(hw.PopOp())
				if err != nil {
					fatalf("persist: recovered drain pop: %v", err)
				}
				if got == nil {
					continue
				}
				want, gerr := gc.Pop()
				if gerr != nil || *got != want {
					fatalf("persist: recovered drain diverged at element %d: recovered %s, golden %s",
						recovered, fmtElem(got), fmtElem(&want))
				}
				recovered++
			}
			fmt.Printf("persist: recovered snapshot seq %d (%d replayed ops) drains bit-identically (%d elements)\n",
				rep.SnapshotSeq, rep.ReplayedOps, recovered)
		}
	}

	// Drain phase: empty both trees in lockstep so every element the
	// pipeline still holds is reconciled. Bounded to catch a pipeline
	// that corruption has wedged into never emptying.
	maxDrain := uint64(sim.Cap())*8 + 1024
	for drained := uint64(0); golden.Len() > 0 || sim.Len() > 0; drained++ {
		if drained > maxDrain {
			fatalf("drain did not converge after %d cycles (sim %d, golden %d left)",
				maxDrain, sim.Len(), golden.Len())
		}
		if !sim.PopAvailable() {
			if _, err := sim.Tick(hw.NopOp()); err != nil {
				if !errors.Is(err, hw.ErrCorrupt) {
					fatalf("drain nop: %v", err)
				}
				classify(err)
				rebuild()
			}
			continue
		}
		got, err := sim.Tick(hw.PopOp())
		if err != nil {
			if !errors.Is(err, hw.ErrCorrupt) {
				fatalf("drain pop: %v", err)
			}
			classify(err)
			rebuild()
			continue
		}
		pops++
		sm.pops.Inc()
		checkPop(got)
	}

	if reg != nil {
		sm.sample(sim, plan, eccTotals)
	}
	verifyErr := sim.Verify()

	fmt.Printf("workload: %d cycles, %d pushes, %d pops, %d nops (%s ranks)\n",
		sim.Cycle(), pushes, pops, nops, dist)
	fmt.Printf("faults:   injected=%d (scheduled=%d rate=%d stuck-applied=%d) pending=%d\n",
		plan.Injected(), plan.Injected()-plan.RateInjected()-plan.StuckApplied(),
		plan.RateInjected(), plan.StuckApplied(), plan.PendingScheduled())
	st := eccTotals()
	fmt.Printf("ecc:      corrected-reads=%d detected-reads=%d scrubs=%d scrub-corrected=%d scrub-detected=%d\n",
		st.CorrectedReads, st.DetectedReads, st.Scrubs, st.ScrubCorrected, st.ScrubDetected)
	fmt.Printf("recovery: detected=%d recoveries=%d dropped-slots=%d check-runs=%d\n",
		sim.Detected(), recoverEvents, totalDropped, sim.CheckRuns())
	if len(detectedBy) > 0 {
		units := make([]string, 0, len(detectedBy))
		for u := range detectedBy {
			units = append(units, u)
		}
		sort.Strings(units)
		fmt.Printf("detected by:")
		for _, u := range units {
			fmt.Printf(" %s=%d", u, detectedBy[u])
		}
		fmt.Println()
	}
	fmt.Printf("escaped:  %d silent divergence(s)\n", escaped)
	if firstDiv != nil {
		fmt.Printf("first divergence at cycle %d: sim popped %s, golden expected %s\n",
			firstDiv.cycle, firstDiv.got, firstDiv.want)
		for _, inj := range firstDiv.injections {
			fmt.Printf("  recent injection — %s\n", inj)
		}
	}
	if verifyErr != nil {
		fmt.Printf("final verify: %v\n", verifyErr)
	} else {
		fmt.Printf("final verify: clean\n")
	}

	if *metricsOut != "" {
		b, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
		if err == nil {
			err = os.WriteFile(*metricsOut, append(b, '\n'), 0o644)
		}
		if err != nil {
			fatalf("metrics snapshot: %v", err)
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
	}
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "bmwsoak: metrics endpoint shutdown:", err)
		}
		cancel()
	}
	if interrupted {
		fmt.Println("bmwsoak: interrupted run finished graceful shutdown")
	}

	if mode != faultinject.EccOff && escaped > 0 {
		fatalf("%d fault(s) escaped a protected (%s) pipeline", escaped, mode)
	}
}
