package main

import (
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// soakMetrics publishes the soak loop's progress for the -http
// endpoint and the -metrics-out dump. Every instrument is an owned
// atomic: the soak loop is the only writer (counters inline, gauges
// via sample at a fixed cadence), the HTTP handler only reads, so a
// live run can be scraped without racing the fault plan or the
// simulator. Built over a nil registry, every probe is a no-op.
type soakMetrics struct {
	cycles    *obs.Gauge
	occupancy *obs.Gauge

	pushes, pops, nops *obs.Counter
	escaped            *obs.Counter
	recoverEvents      *obs.Counter
	droppedSlots       *obs.Counter

	injected, rateInjected   *obs.Gauge
	stuckApplied, pendingSch *obs.Gauge
	detected, recoveries     *obs.Gauge
	checkRuns                *obs.Gauge

	eccCorrected, eccDetected          *obs.Gauge
	eccScrubs, eccScrubCorr, eccScrubD *obs.Gauge
}

func newSoakMetrics(reg *obs.Registry) *soakMetrics {
	return &soakMetrics{
		cycles:        reg.Gauge("soak_cycles"),
		occupancy:     reg.Gauge("soak_occupancy"),
		pushes:        reg.Counter("soak_pushes_total"),
		pops:          reg.Counter("soak_pops_total"),
		nops:          reg.Counter("soak_nops_total"),
		escaped:       reg.Counter("soak_escaped_divergences_total"),
		recoverEvents: reg.Counter("soak_recovery_events_total"),
		droppedSlots:  reg.Counter("soak_dropped_slots_total"),
		injected:      reg.Gauge("soak_faults_injected"),
		rateInjected:  reg.Gauge("soak_faults_rate_injected"),
		stuckApplied:  reg.Gauge("soak_faults_stuck_applied"),
		pendingSch:    reg.Gauge("soak_faults_pending_scheduled"),
		detected:      reg.Gauge("soak_fault_detected"),
		recoveries:    reg.Gauge("soak_fault_recoveries"),
		checkRuns:     reg.Gauge("soak_fault_check_runs"),
		eccCorrected:  reg.Gauge("soak_ecc_corrected_reads"),
		eccDetected:   reg.Gauge("soak_ecc_detected_reads"),
		eccScrubs:     reg.Gauge("soak_ecc_scrubs"),
		eccScrubCorr:  reg.Gauge("soak_ecc_scrub_corrected"),
		eccScrubD:     reg.Gauge("soak_ecc_scrub_detected"),
	}
}

// sample snapshots the fault plan, the simulator's recovery layer and
// the ECC totals into gauges. Called from the soak loop only.
func (sm *soakMetrics) sample(sim soakSim, plan *faultinject.Plan, ecc func() faultinject.ECCStats) {
	sm.cycles.Set(float64(sim.Cycle()))
	sm.occupancy.Set(float64(sim.Len()))
	sm.injected.Set(float64(plan.Injected()))
	sm.rateInjected.Set(float64(plan.RateInjected()))
	sm.stuckApplied.Set(float64(plan.StuckApplied()))
	sm.pendingSch.Set(float64(plan.PendingScheduled()))
	sm.detected.Set(float64(sim.Detected()))
	sm.recoveries.Set(float64(sim.Recoveries()))
	sm.checkRuns.Set(float64(sim.CheckRuns()))
	st := ecc()
	sm.eccCorrected.Set(float64(st.CorrectedReads))
	sm.eccDetected.Set(float64(st.DetectedReads))
	sm.eccScrubs.Set(float64(st.Scrubs))
	sm.eccScrubCorr.Set(float64(st.ScrubCorrected))
	sm.eccScrubD.Set(float64(st.ScrubDetected))
}
