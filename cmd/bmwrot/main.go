// bmwrot is the bit-rot acceptance harness for the durable-state
// integrity subsystem: it builds a primary/follower pair of
// WAL-bearing checkpoint fan-outs from one deterministic workload,
// injects targeted corruptions — WAL record bodies, record headers,
// chain-point seals, snapshot chunks, manifest fields, whole-file
// truncations, cross-shard file swaps — into one node at a time, and
// demands three things of every trial:
//
//  1. detection: the integrity walk (engine-root binding plus
//     persist.VerifyDir per shard) localises the damage, with the
//     expected corruption class — zero undetected escapes;
//  2. repair: anti-entropy repair over real TReplFetch/TReplChunk wire
//     frames against the peer brings every file back bit-identical to
//     the pristine state;
//  3. equivalence: the repaired checkpoint restores and drains exactly
//     the golden sequence a refpq reference mirror predicts.
//
// It exits 0 only if every trial passes, and always writes a bmwrot/v1
// JSON evidence file into -evidence.
//
// Examples:
//
//	bmwrot                       # 25 corruptions over a 2-shard pair
//	bmwrot -corruptions 50 -seed 7 -evidence /tmp/rot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/refpq"
	"repro/internal/replic"
	"repro/internal/wire"
)

// Harness geometry. Small chain and chunk intervals keep every
// corruption class reachable in a modest workload: multiple seals in
// the WAL, multiple chunks in the snapshot.
const (
	chainEvery = 16
	chunkSize  = 512
	treeOrder  = 2
	treeLevels = 6
)

// Corruption classes the injector cycles through.
const (
	classWALBody    = "wal-body"
	classWALHeader  = "wal-header"
	classWALChain   = "wal-chain"
	classSnapChunk  = "snap-chunk"
	classManifest   = "manifest-field"
	classTruncation = "truncation"
	classSwap       = "swap"
)

var classes = []string{
	classWALBody, classWALHeader, classWALChain, classSnapChunk,
	classManifest, classTruncation, classSwap,
}

type trialEvidence struct {
	ID         int      `json:"id"`
	Node       string   `json:"node"`
	Class      string   `json:"class"`
	Target     string   `json:"target"`
	Expected   []string `json:"expected_classes"`
	DetectedAs []string `json:"detected_as"`
	Detected   bool     `json:"detected"`
	Classified bool     `json:"classified"`
	Repaired   bool     `json:"repaired"`
	Identical  bool     `json:"bit_identical"`
	DrainOK    bool     `json:"drain_ok"`
	OpsFetched int      `json:"ops_fetched"`
	Chunks     int      `json:"chunks_fetched"`
	Manifests  int      `json:"manifests_fetched"`
	Err        string   `json:"error,omitempty"`
}

type evidence struct {
	Schema      string          `json:"schema"`
	Seed        int64           `json:"seed"`
	Shards      int             `json:"shards"`
	Ops         int             `json:"ops_per_shard"`
	Corruptions int             `json:"corruptions"`
	ByClass     map[string]int  `json:"by_class"`
	Escapes     int             `json:"undetected_escapes"`
	Failures    int             `json:"failures"`
	Trials      []trialEvidence `json:"trials"`
	Pass        bool            `json:"pass"`
}

func main() {
	var (
		corruptions = flag.Int("corruptions", 25, "corruption trials to run")
		shards      = flag.Int("shards", 2, "shards per node (min 2, for swap trials)")
		ops         = flag.Int("ops", 400, "workload records per shard")
		seed        = flag.Int64("seed", 1, "workload and injection seed")
		evDir       = flag.String("evidence", "rot-evidence", "evidence output directory")
		verbose     = flag.Bool("v", false, "log each trial")
	)
	flag.Parse()
	if *shards < 2 {
		fmt.Fprintln(os.Stderr, "bmwrot: -shards must be at least 2")
		os.Exit(2)
	}
	if err := run(*corruptions, *shards, *ops, *seed, *evDir, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "bmwrot:", err)
		os.Exit(1)
	}
}

func run(corruptions, shards, ops int, seed int64, evDir string, verbose bool) error {
	base, err := os.MkdirTemp("", "bmwrot-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)

	// One deterministic workload builds three identical fan-outs: the
	// pair under test plus a pristine reference for bit-identity checks.
	nodes := map[string]string{
		"primary":  filepath.Join(base, "primary"),
		"follower": filepath.Join(base, "follower"),
	}
	pristine := filepath.Join(base, "pristine")
	golden, err := buildNode(pristine, shards, ops, seed)
	if err != nil {
		return fmt.Errorf("build pristine: %w", err)
	}
	for name, dir := range nodes {
		if _, err := buildNode(dir, shards, ops, seed); err != nil {
			return fmt.Errorf("build %s: %w", name, err)
		}
	}

	// Each node serves anti-entropy fetches over real wire frames.
	addrs := map[string]string{}
	for name, dir := range nodes {
		eng, err := engine.New(engine.Config{Shards: 1, Order: 2, Levels: 4})
		if err != nil {
			return err
		}
		defer eng.Close()
		srv := wire.NewServer(eng)
		fs := &replic.FetchServer{Dir: dir}
		srv.SetFetchHandler(fs.Handle)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer ln.Close()
		go srv.Serve(ln)
		addrs[name] = ln.Addr().String()
	}

	ev := evidence{
		Schema: "bmwrot/v1", Seed: seed, Shards: shards, Ops: ops,
		Corruptions: corruptions, ByClass: map[string]int{},
	}
	rng := rand.New(rand.NewSource(seed * 7919))
	names := []string{"primary", "follower"}
	for i := 0; i < corruptions; i++ {
		victim := names[i%2]
		peer := names[(i+1)%2]
		class := classes[i%len(classes)]
		tr := runTrial(i, class, nodes[victim], addrs[peer], pristine, shards, golden, rng)
		tr.Node = victim
		ev.ByClass[class]++
		if !tr.Detected {
			ev.Escapes++
		}
		if !tr.Detected || !tr.Classified || !tr.Repaired || !tr.Identical || !tr.DrainOK {
			ev.Failures++
		}
		ev.Trials = append(ev.Trials, tr)
		if verbose || tr.Err != "" {
			fmt.Printf("trial %2d %-8s %-12s %-40s detected=%v classified=%v repaired=%v identical=%v drain=%v %s\n",
				i, victim, class, tr.Target, tr.Detected, tr.Classified, tr.Repaired, tr.Identical, tr.DrainOK, tr.Err)
		}
	}
	ev.Pass = ev.Escapes == 0 && ev.Failures == 0

	if err := os.MkdirAll(evDir, 0o755); err != nil {
		return err
	}
	b, _ := json.MarshalIndent(ev, "", "  ")
	if err := os.WriteFile(filepath.Join(evDir, "bmwrot.json"), append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("bmwrot: %d corruptions, %d classes, %d escapes, %d failures → %s\n",
		corruptions, len(ev.ByClass), ev.Escapes, ev.Failures, filepath.Join(evDir, "bmwrot.json"))
	if !ev.Pass {
		return fmt.Errorf("%d escapes, %d failures", ev.Escapes, ev.Failures)
	}
	return nil
}

// buildNode writes a checkpoint fan-out: per shard, a seeded core-tree
// workload recorded through persist.Manager with a mid-stream
// checkpoint (nonzero sealed WAL prefix) and a recorded tail, then
// ENGINE.json sealing the shard manifests. It returns the golden drain
// (per shard, in pop order), audited against a refpq mirror.
func buildNode(dir string, shards, ops int, seed int64) ([][]refpq.Entry, error) {
	man := engine.CheckpointManifest{
		Schema: engine.EngineManifestSchema,
		Shards: shards,
		Kind:   "core",
	}
	golden := make([][]refpq.Entry, shards)
	for s := 0; s < shards; s++ {
		tr := core.New(treeOrder, treeLevels)
		ref := refpq.New()
		m, err := persist.Attach(engine.ShardDir(dir, s), tr, persist.Options{
			ChunkSize: chunkSize,
			WAL:       persist.WALOptions{ChainEvery: chainEvery},
		})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + int64(s)*1000))
		for i := 0; i < ops; i++ {
			var op persist.Op
			if tr.Len() > 0 && (rng.Intn(3) == 0 || tr.AlmostFull()) {
				e, err := tr.Pop()
				if err != nil {
					return nil, err
				}
				if e.Value != ref.MinValue() {
					return nil, fmt.Errorf("shard %d workload pop %d diverges from reference", s, i)
				}
				ref.RemoveExact(refpq.Entry{Value: e.Value, Meta: e.Meta})
				p, q := tr.OpStats()
				op = persist.Op{Kind: hw.Pop, Cycle: p + q, Value: e.Value, Meta: e.Meta}
			} else {
				e := core.Element{Value: uint64(rng.Intn(1000)), Meta: uint64(i)}
				if err := tr.Push(e); err != nil {
					return nil, err
				}
				ref.Push(refpq.Entry{Value: e.Value, Meta: e.Meta})
				p, q := tr.OpStats()
				op = persist.Op{Kind: hw.Push, Cycle: p + q, Value: e.Value, Meta: e.Meta}
			}
			if err := m.Record(op); err != nil {
				return nil, err
			}
			if i == ops*2/3 {
				if err := m.Checkpoint(); err != nil {
					return nil, err
				}
			}
		}
		sm := m.Manifest()
		if sm == nil {
			return nil, fmt.Errorf("shard %d missing manifest", s)
		}
		man.ShardChecksums = append(man.ShardChecksums, sm.Checksum)
		if err := m.Close(); err != nil {
			return nil, err
		}
		// The golden drain: pop the surviving elements out of the tree,
		// auditing each against the reference mirror.
		for tr.Len() > 0 {
			e, err := tr.Pop()
			if err != nil {
				return nil, err
			}
			if e.Value != ref.MinValue() {
				return nil, fmt.Errorf("shard %d golden drain diverges from reference", s)
			}
			ref.RemoveExact(refpq.Entry{Value: e.Value, Meta: e.Meta})
			golden[s] = append(golden[s], refpq.Entry{Value: e.Value, Meta: e.Meta})
		}
		if ref.Len() != 0 {
			return nil, fmt.Errorf("shard %d reference retains %d elements after drain", s, ref.Len())
		}
	}
	man.Root = engine.EngineRoot(man.ShardChecksums)
	sum, err := engine.EngineManifestChecksum(man)
	if err != nil {
		return nil, err
	}
	man.Checksum = sum
	return golden, engine.WriteEngineManifest(dir, man)
}

// injection describes one corruption: which file, what mutation, and
// which detection classes are acceptable.
type injection struct {
	target   string
	expected []string
	apply    func() error
}

// inject plans and applies one corruption of the given class against
// the victim dir. Variants within a class rotate on the trial id so
// repeated runs cover every variant; offsets rotate on the rng.
func inject(id int, class, dir string, shards int, rng *rand.Rand) (injection, error) {
	variant := id / len(classes)
	shard := rng.Intn(shards)
	sdir := engine.ShardDir(dir, shard)
	wal := filepath.Join(sdir, persist.WALName)
	manPath := filepath.Join(sdir, persist.ManifestName)
	man, err := persist.LoadManifest(nil, sdir)
	if err != nil {
		return injection{}, fmt.Errorf("victim shard %d manifest unreadable before injection: %w", shard, err)
	}
	snap := filepath.Join(sdir, persist.SnapFileName(man.SnapshotSeq))

	flip := func(path string, off int) func() error {
		return func() error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			if off < 0 || off >= len(b) {
				off = len(b) / 2
			}
			b[off] ^= 0xff
			return os.WriteFile(path, b, 0o644)
		}
	}
	truncate := func(path string, frac float64) func() error {
		return func() error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, b[:int(float64(len(b))*frac)], 0o644)
		}
	}

	switch class {
	case classWALBody:
		// A record body inside the sealed prefix: payload bytes start
		// after the 8-byte frame header.
		lsn := 1 + rng.Intn(chainEvery-1)
		off := (lsn-1)*int(persist.RecordLen) + 8 + rng.Intn(int(persist.RecordLen)-8)
		return injection{
			target:   fmt.Sprintf("%s @%d (LSN %d body)", relTarget(dir, wal), off, lsn),
			expected: []string{persist.ClassWALRecord, persist.ClassWALChainPoint},
			apply:    flip(wal, off),
		}, nil
	case classWALHeader:
		lsn := 1 + rng.Intn(chainEvery-1)
		off := (lsn-1)*int(persist.RecordLen) + rng.Intn(8)
		return injection{
			target:   fmt.Sprintf("%s @%d (LSN %d header)", relTarget(dir, wal), off, lsn),
			expected: []string{persist.ClassWALRecord, persist.ClassWALChainPoint},
			apply:    flip(wal, off),
		}, nil
	case classWALChain:
		// The first chain-point frame sits right after chainEvery
		// records.
		off := chainEvery*int(persist.RecordLen) + rng.Intn(int(persist.ChainRecordLen))
		return injection{
			target:   fmt.Sprintf("%s @%d (chain-point)", relTarget(dir, wal), off),
			expected: []string{persist.ClassWALRecord, persist.ClassWALChainPoint},
			apply:    flip(wal, off),
		}, nil
	case classSnapChunk:
		return injection{
			target:   fmt.Sprintf("%s (chunk)", relTarget(dir, snap)),
			expected: []string{persist.ClassSnapshotChunk},
			apply:    flip(snap, rng.Intn(int(man.SnapshotBytes))),
		}, nil
	case classManifest:
		if variant%2 == 0 {
			return injection{
				target:   relTarget(dir, manPath),
				expected: []string{persist.ClassManifest},
				apply:    flip(manPath, -1),
			}, nil
		}
		ep := filepath.Join(dir, engine.EngineManifestName)
		return injection{
			target:   relTarget(dir, ep),
			expected: []string{persist.ClassManifest},
			apply:    flip(ep, -1),
		}, nil
	case classTruncation:
		switch variant % 3 {
		case 0:
			return injection{
				target:   fmt.Sprintf("%s (truncated)", relTarget(dir, wal)),
				expected: []string{persist.ClassWALTruncated, persist.ClassWALRecord},
				apply:    truncate(wal, 0.3),
			}, nil
		case 1:
			return injection{
				target:   fmt.Sprintf("%s (truncated)", relTarget(dir, snap)),
				expected: []string{persist.ClassSnapshotChunk},
				apply:    truncate(snap, 0.5),
			}, nil
		default:
			ep := filepath.Join(dir, engine.EngineManifestName)
			return injection{
				target:   fmt.Sprintf("%s (truncated)", relTarget(dir, ep)),
				expected: []string{persist.ClassManifest},
				apply:    truncate(ep, 0.5),
			}, nil
		}
	case classSwap:
		other := (shard + 1) % shards
		odir := engine.ShardDir(dir, other)
		if variant%2 == 0 {
			a, b := manPath, filepath.Join(odir, persist.ManifestName)
			return injection{
				target:   fmt.Sprintf("swap %s <-> %s", relTarget(dir, a), relTarget(dir, b)),
				expected: []string{persist.ClassManifest},
				apply:    swapFiles(a, b),
			}, nil
		}
		oman, err := persist.LoadManifest(nil, odir)
		if err != nil {
			return injection{}, err
		}
		a := snap
		b := filepath.Join(odir, persist.SnapFileName(oman.SnapshotSeq))
		return injection{
			target:   fmt.Sprintf("swap %s <-> %s", relTarget(dir, a), relTarget(dir, b)),
			expected: []string{persist.ClassSnapshotChunk},
			apply:    swapFiles(a, b),
		}, nil
	}
	return injection{}, fmt.Errorf("unknown class %q", class)
}

func relTarget(dir, path string) string {
	rel, err := filepath.Rel(dir, path)
	if err != nil {
		return path
	}
	return rel
}

func swapFiles(a, b string) func() error {
	return func() error {
		ab, err := os.ReadFile(a)
		if err != nil {
			return err
		}
		bb, err := os.ReadFile(b)
		if err != nil {
			return err
		}
		if err := os.WriteFile(a, bb, 0o644); err != nil {
			return err
		}
		return os.WriteFile(b, ab, 0o644)
	}
}

// detect runs the full integrity walk the serving stack uses: engine
// manifest validity, engine-root-to-shard-manifest binding, then
// persist.VerifyDir per shard. It returns every finding class.
func detect(dir string, shards int) []string {
	var found []string
	em, err := engine.LoadEngineManifest(dir)
	if err != nil {
		found = append(found, persist.ClassManifest)
	}
	for s := 0; s < shards; s++ {
		sdir := engine.ShardDir(dir, s)
		if em != nil && len(em.ShardChecksums) == em.Shards {
			if sm, err := persist.LoadManifest(nil, sdir); err == nil && sm.Checksum != em.ShardChecksums[s] {
				found = append(found, persist.ClassManifest)
			}
		}
		for _, f := range persist.VerifyDir(nil, sdir).Findings {
			found = append(found, f.Class)
		}
	}
	return found
}

// runTrial injects one corruption, demands detection with an expected
// class, repairs from the peer over the wire, and checks bit-identity
// plus golden-drain equivalence.
func runTrial(id int, class, victimDir, peerAddr, pristine string, shards int, golden [][]refpq.Entry, rng *rand.Rand) trialEvidence {
	tr := trialEvidence{ID: id, Class: class}
	inj, err := inject(id, class, victimDir, shards, rng)
	if err != nil {
		tr.Err = "inject: " + err.Error()
		return tr
	}
	tr.Target = inj.target
	tr.Expected = inj.expected
	if err := inj.apply(); err != nil {
		tr.Err = "apply: " + err.Error()
		return tr
	}

	tr.DetectedAs = detect(victimDir, shards)
	tr.Detected = len(tr.DetectedAs) > 0
	for _, got := range tr.DetectedAs {
		for _, want := range inj.expected {
			if got == want {
				tr.Classified = true
			}
		}
	}
	if !tr.Detected {
		tr.Err = "corruption escaped detection"
		return tr
	}

	f, err := replic.DialFetcher(peerAddr, 5*time.Second)
	if err != nil {
		tr.Err = "dial peer: " + err.Error()
		return tr
	}
	defer f.Close()
	rep, err := replic.RepairCheckpoint(victimDir, f, replic.RepairConfig{
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		tr.Err = "repair: " + err.Error()
		return tr
	}
	tr.Repaired = rep.Clean && len(detect(victimDir, shards)) == 0
	tr.OpsFetched = rep.OpsFetched
	tr.Chunks = rep.ChunksFetched
	tr.Manifests = rep.ManifestsFetched

	identical, err := treesIdentical(victimDir, pristine)
	if err != nil {
		tr.Err = "compare: " + err.Error()
		return tr
	}
	tr.Identical = identical

	drainOK, err := drainMatchesGolden(victimDir, shards, golden)
	if err != nil {
		tr.Err = "drain: " + err.Error()
		return tr
	}
	tr.DrainOK = drainOK
	if !tr.Classified {
		tr.Err = fmt.Sprintf("detected as %v, expected one of %v", tr.DetectedAs, inj.expected)
	}
	return tr
}

// treesIdentical compares every regular file under two directory trees.
func treesIdentical(a, b string) (bool, error) {
	ok := true
	err := filepath.Walk(b, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, _ := filepath.Rel(b, path)
		want, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		got, err := os.ReadFile(filepath.Join(a, rel))
		if err != nil || string(got) != string(want) {
			ok = false
		}
		return nil
	})
	return ok, err
}

// drainMatchesGolden restores every shard from the repaired fan-out and
// drains it against the golden sequence.
func drainMatchesGolden(dir string, shards int, golden [][]refpq.Entry) (bool, error) {
	for s := 0; s < shards; s++ {
		tr := core.New(treeOrder, treeLevels)
		m, _, err := persist.Open(engine.ShardDir(dir, s), tr, persist.Options{})
		if err != nil {
			return false, fmt.Errorf("shard %d restore: %w", s, err)
		}
		if err := m.Close(); err != nil {
			return false, err
		}
		popped := 0
		for tr.Len() > 0 {
			e, err := tr.Pop()
			if err != nil {
				return false, err
			}
			if popped >= len(golden[s]) || golden[s][popped] != (refpq.Entry{Value: e.Value, Meta: e.Meta}) {
				return false, nil
			}
			popped++
		}
		if popped != len(golden[s]) {
			return false, nil
		}
	}
	return true, nil
}
