// bmwd serves a sharded BMW-Tree scheduling engine over the wire
// protocol: a fleet of shard goroutines, each exclusively owning one
// queue (core golden model, pifo shift register, or a cycle-accurate
// rbmw/rpubmw simulator), fronted by a length-prefixed binary protocol
// on TCP.
//
// Lifecycle: on SIGINT/SIGTERM the daemon stops accepting, drains
// in-flight connections, closes the engine, and — when -persist is set
// — checkpoints every shard through the persist subsystem so the next
// start with the same -persist dir restores the full queue contents.
//
// Examples:
//
//	bmwd -listen :9970 -shards 4 -queue core -route rank
//	bmwd -listen :9970 -shards 4 -queue rbmw -m 4 -l 6 -http :9971
//	bmwd -listen :9970 -persist /var/lib/bmwd   # checkpoint on shutdown
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/wire"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bmwd: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:9970", "wire protocol listen address")
		shards   = flag.Int("shards", 4, "number of engine shards (each owns one queue)")
		queue    = flag.String("queue", "core", "queue kind per shard: core, pifo, rbmw, rpubmw")
		order    = flag.Int("m", 2, "tree order m (rbmw/rpubmw/core)")
		levels   = flag.Int("l", 11, "tree levels (rbmw/rpubmw/core)")
		capacity = flag.Int("cap", 0, "per-shard capacity override (0 = derive from m,l)")
		ringSize = flag.Int("ring", 1024, "per-shard request ring size")
		batch    = flag.Int("batch", 64, "per-shard max drain batch")
		route    = flag.String("route", "hash", "push routing: hash (by Meta) or rank (by Value range)")
		rankBits = flag.Int("rankbits", 30, "rank width in bits for -route rank partitioning")
		httpAddr = flag.String("http", "", "observability HTTP address (/metrics, /metrics.json, pprof); empty = off")
		persist  = flag.String("persist", "", "checkpoint directory: restore on start, checkpoint on shutdown")
		drainFor = flag.Duration("drain", 10*time.Second, "graceful shutdown budget before connections are cut")
	)
	flag.Parse()

	var routing engine.Routing
	switch *route {
	case "hash":
		routing = engine.RouteHash
	case "rank":
		routing = engine.RouteRank
	default:
		fatalf("unknown -route %q (want hash or rank)", *route)
	}
	kind, err := engine.ParseKind(*queue)
	if err != nil {
		fatalf("%v", err)
	}

	cfg := engine.Config{
		Shards:     *shards,
		Kind:       kind,
		Order:      *order,
		Levels:     *levels,
		Cap:        *capacity,
		RingSize:   *ringSize,
		BatchSize:  *batch,
		Routing:    routing,
		RankBits:   *rankBits,
		RestoreDir: *persist,
	}
	eng, err := engine.New(cfg)
	if err != nil {
		fatalf("engine: %v", err)
	}

	reg := obs.NewRegistry()
	eng.Instrument(reg, "bmwd_engine")
	var obsSrv *http.Server
	if *httpAddr != "" {
		obsSrv = obs.NewServer(*httpAddr, reg)
		go func() {
			if err := obsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "bmwd: obs server: %v\n", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatalf("listen: %v", err)
	}
	srv := wire.NewServer(eng)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Printf("bmwd: serving %d %s shard(s) on %s (route=%s)\n",
		eng.Shards(), kind, ln.Addr(), *route)

	select {
	case sig := <-sigc:
		fmt.Printf("bmwd: %v: draining\n", sig)
	case err := <-serveErr:
		if err != nil && !errors.Is(err, net.ErrClosed) {
			fatalf("serve: %v", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "bmwd: shutdown: %v\n", err)
	}
	if obsSrv != nil {
		_ = obsSrv.Shutdown(ctx)
	}
	eng.Close()
	if *persist != "" {
		if err := eng.Checkpoint(*persist); err != nil {
			fatalf("checkpoint: %v", err)
		}
		fmt.Printf("bmwd: checkpointed %d element(s) to %s\n", eng.Len(), *persist)
	}
	fmt.Println("bmwd: bye")
}
