// bmwd serves a sharded BMW-Tree scheduling engine over the wire
// protocol: a fleet of shard goroutines, each exclusively owning one
// queue (core golden model, pifo shift register, or a cycle-accurate
// rbmw/rpubmw simulator), fronted by a length-prefixed binary protocol
// on TCP.
//
// Replication: with -follow the daemon starts as a hot standby — it
// refuses queue traffic (clients get StatusNotPrimary and fail over),
// streams the primary's replication log, and applies it to its own
// engine. SIGUSR1 (or a wire TAdmin promote frame) promotes it: it
// stops streaming at its contiguously-applied frontier and starts
// serving. A primary run with -repl-sync holds each dedup-enrolled
// response until the follower acknowledges the batch, which is what
// makes a kill lose zero acknowledged ops.
//
// Lifecycle: on SIGINT/SIGTERM the daemon stops accepting, drains
// in-flight connections, closes the engine, and — when -persist is set
// — checkpoints every shard through the persist subsystem so the next
// start with the same -persist dir restores the full queue contents.
//
// Examples:
//
//	bmwd -listen :9970 -shards 4 -queue core -route rank
//	bmwd -listen :9970 -shards 4 -queue rbmw -m 4 -l 6 -http :9971
//	bmwd -listen :9970 -persist /var/lib/bmwd   # checkpoint on shutdown
//	bmwd -listen :9970 -repl-sync               # primary, sync replication
//	bmwd -listen :9980 -follow 127.0.0.1:9970   # hot standby of :9970
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/replic"
	"repro/internal/wire"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bmwd: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:9970", "wire protocol listen address")
		shards     = flag.Int("shards", 4, "number of engine shards (each owns one queue)")
		queue      = flag.String("queue", "core", "queue kind per shard: core, pifo, rbmw, rpubmw")
		order      = flag.Int("m", 2, "tree order m (rbmw/rpubmw/core)")
		levels     = flag.Int("l", 11, "tree levels (rbmw/rpubmw/core)")
		capacity   = flag.Int("cap", 0, "per-shard capacity override (0 = derive from m,l)")
		ringSize   = flag.Int("ring", 1024, "per-shard request ring size")
		batch      = flag.Int("batch", 64, "per-shard max drain batch")
		route      = flag.String("route", "hash", "push routing: hash (by Meta) or rank (by Value range)")
		rankBits   = flag.Int("rankbits", 30, "rank width in bits for -route rank partitioning")
		httpAddr   = flag.String("http", "", "observability HTTP address (/metrics, /healthz, /readyz, /trace.json, pprof); empty = off")
		sample     = flag.Int("trace-sample", 0, "export 1 of every N request spans to the Chrome trace at /trace.json (0 = aggregate-only tracing)")
		logLevel   = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
		persistDir = flag.String("persist", "", "checkpoint directory: restore on start, checkpoint on shutdown")
		drainFor   = flag.Duration("drain", 10*time.Second, "graceful shutdown budget before connections are cut")

		scrubEvery = flag.Duration("scrub-interval", time.Minute, "background integrity-scrub pass interval over the -persist checkpoint (0 = off)")
		scrubRate  = flag.Int64("scrub-rate", 8<<20, "scrub io throttle in bytes/second (0 = unthrottled)")
		repairFrom = flag.String("repair-from", "", "peer wire address to anti-entropy repair the -persist checkpoint from when the scrubber finds rot (empty = detect only)")

		clusterMap  = flag.String("cluster-map", "", "cluster map JSON file; joins this node to a multi-node cluster")
		clusterNode = flag.Uint("cluster-node", 0, "this node's id in the -cluster-map")
		gossipEvery = flag.Duration("gossip-every", 2*time.Second, "cluster map gossip sweep interval")

		follow   = flag.String("follow", "", "start as a hot standby streaming from this primary address")
		replSync = flag.Bool("repl-sync", false, "primary: hold dedup-enrolled responses until the follower acks (zero acked-op loss)")
		syncWait = flag.Duration("repl-sync-timeout", 2*time.Second, "sync-replication ack budget before degrading")

		idleTO    = flag.Duration("conn-idle-timeout", 5*time.Minute, "reap client connections idle this long (0 = never)")
		writeTO   = flag.Duration("conn-write-timeout", 30*time.Second, "per-response write budget (0 = none)")
		inflight  = flag.Int("conn-max-inflight", 1024, "per-connection queued-response cap before shedding with StatusOverloaded (0 = off)")
		ovHigh    = flag.Float64("overload-high", 0.85, "ring-occupancy fraction that trips shard overload shedding (0 = off)")
		ovLow     = flag.Float64("overload-low", 0, "occupancy fraction that clears overload (0 = half of -overload-high)")
		ovLatency = flag.Duration("overload-drain-latency", 20*time.Millisecond, "drain-batch latency that trips shard overload (0 = occupancy only)")
		ovCooloff = flag.Duration("overload-cooloff", 0, "how long a tripped shard sheds without a drain before the latch expires (0 = default 250ms)")

		flightSize  = flag.Int("flight", 8192, "flight-recorder ring size in events (0 = off)")
		incidentDir = flag.String("incident-dir", "", "write incident bundles here on panic/SIGQUIT/overload/repl-degrade/SLO-page (empty = off)")
		incidentCap = flag.Int("incident-keep", 16, "retained incident bundles before the oldest is pruned")
		incidentGap = flag.Duration("incident-min-interval", 30*time.Second, "rate limit between non-forced incident captures")
		sloSpec     = flag.String("slo", "", "comma-separated SLOs, e.g. p99<10ms,availability>0.999,lag<5000 (empty = off)")
		sloShort    = flag.Duration("slo-short-window", 10*time.Second, "SLO burn-rate short window (violating raises warn)")
		sloLong     = flag.Duration("slo-long-window", time.Minute, "SLO burn-rate long window (short+long violating raises page)")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version("bmwd"))
		return
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fatalf("bad -log-level %q: %v", *logLevel, err)
	}
	// The flight recorder is the black box: every error log line,
	// overload/backpressure edge, replication transition, WAL stall, SLO
	// transition and sampled/slow/errored span lands in its ring.
	flight := obs.NewFlightRecorder(*flightSize)
	logger := obs.NewEventLoggerFlight(os.Stderr, level, 5*time.Second, flight)

	var routing engine.Routing
	switch *route {
	case "hash":
		routing = engine.RouteHash
	case "rank":
		routing = engine.RouteRank
	default:
		fatalf("unknown -route %q (want hash or rank)", *route)
	}
	kind, err := engine.ParseKind(*queue)
	if err != nil {
		fatalf("%v", err)
	}

	cfg := engine.Config{
		Shards:     *shards,
		Kind:       kind,
		Order:      *order,
		Levels:     *levels,
		Cap:        *capacity,
		RingSize:   *ringSize,
		BatchSize:  *batch,
		Routing:    routing,
		RankBits:   *rankBits,
		RestoreDir: *persistDir,
		Overload: engine.Overload{
			HighFrac:         *ovHigh,
			LowFrac:          *ovLow,
			DrainLatencyHigh: *ovLatency,
			Cooloff:          *ovCooloff,
		},
	}
	eng, err := engine.New(cfg)
	if err != nil {
		fatalf("engine: %v", err)
	}

	reg := obs.NewRegistry()
	eng.Instrument(reg, "bmwd_engine")
	flight.Instrument(reg, "bmwd_flight")

	// Request tracing: stage quantiles aggregate whenever the obs
	// endpoint is up or an SLO judges them; sampled Chrome-trace export
	// needs -trace-sample.
	var rec *obs.TraceRecorder
	if *sample > 0 {
		rec = obs.NewTraceRecorder()
	}
	var tracer *obs.Tracer
	if *httpAddr != "" || rec != nil || *sloSpec != "" || flight != nil {
		tracer = obs.NewTracer(obs.TracerOptions{
			Registry:    reg,
			Prefix:      "bmwd_trace",
			Recorder:    rec,
			SampleEvery: *sample,
			Flight:      flight,
		})
	}

	// inc is declared before the SLO engine and replication node so
	// their trigger closures can capture it; it is built once both
	// exist.
	var inc *obs.IncidentCapturer

	srv := wire.NewServerConfig(eng, wire.ServerConfig{
		IdleTimeout:  *idleTO,
		WriteTimeout: *writeTO,
		MaxInflight:  *inflight,
		Tracer:       tracer,
	})
	// A persisting daemon answers anti-entropy fetch frames over its
	// own checkpoint directory, so a rotted peer pointed here with
	// -repair-from can heal itself from this node's sealed state.
	if *persistDir != "" {
		fetch := &replic.FetchServer{Dir: *persistDir}
		srv.SetFetchHandler(fetch.Handle)
	}
	// Cluster membership: the node enforces push ownership under the
	// live map, serves the map to clients and peers, and gossips
	// changes. Promotion (below) mints the successor map so routing
	// follows the failover.
	var (
		clState *cluster.State
		gsp     *cluster.Gossiper
	)
	if *clusterMap != "" {
		m, err := cluster.LoadFile(*clusterMap)
		if err != nil {
			fatalf("cluster: %v", err)
		}
		clState, err = cluster.NewState(m, uint32(*clusterNode))
		if err != nil {
			fatalf("cluster: %v", err)
		}
	}
	node := replic.Attach(eng, srv, replic.Config{
		Engine:      cfg,
		PrimaryAddr: *follow,
		Sync:        *replSync,
		SyncTimeout: *syncWait,
		Logger:      logger,
		Flight:      flight,
		OnIncident: func(trigger, reason string) {
			inc.CaptureAsync(trigger, reason)
		},
		OnPromote: func() {
			if clState == nil {
				return
			}
			m := clState.PromoteSelf()
			logger.Info("cluster: promotion minted map",
				"version", m.Version, "node", clState.Self())
			if gsp != nil {
				gsp.Kick()
			}
		},
	})
	node.Instrument(reg, "bmwd_repl")

	if clState != nil {
		notOwner := reg.Counter("bmwd_cluster_not_owner_total")
		reg.Help("bmwd_cluster_not_owner_total", "pushes refused with StatusNotOwner under the live cluster map")
		srv.SetOwnerGate(func(op wire.Op) (bool, uint64) {
			owned, ver := clState.Owns(op.Value, op.Meta)
			if !owned {
				notOwner.Add(1)
			}
			return owned, ver
		})
		srv.SetClusterHandlers(clState.EncodedIfNewer, clState.OfferEncoded)
		reg.GaugeFunc("bmwd_cluster_node_id", func() float64 { return float64(clState.Self()) })
		reg.GaugeFunc("bmwd_cluster_map_version", func() float64 { return float64(clState.Version()) })
		reg.GaugeFunc("bmwd_cluster_adopts", func() float64 { return float64(clState.Adopts()) })
		reg.GaugeFunc("bmwd_cluster_epoch", func() float64 {
			if n := clState.Current().ByID(clState.Self()); n != nil {
				return float64(n.Epoch)
			}
			return 0
		})
		reg.GaugeFunc("bmwd_cluster_band_start", func() float64 {
			s, _, _ := clState.Current().Band(clState.Self())
			return float64(s)
		})
		reg.GaugeFunc("bmwd_cluster_band_end", func() float64 {
			_, e, _ := clState.Current().Band(clState.Self())
			return float64(e)
		})
		gsp = cluster.NewGossiper(cluster.GossiperConfig{
			State:     clState,
			SelfAddrs: []string{*listen},
			Interval:  *gossipEvery,
			Logf: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...))
			},
		})
		go gsp.Run()
	}

	// persistBad latches when the background scrubber (or an attempted
	// repair that could not converge) finds the durable state corrupt; a
	// sticky-poisoned WAL shows up on the <prefix>_wal_poisoned gauges
	// the checkpoint-time persist managers register. Either takes
	// /readyz to 503: a node whose durable state cannot be trusted must
	// not be the one traffic fails over to.
	var persistBad atomic.Bool
	walPoisoned := func() bool {
		for name, v := range reg.Snapshot().Gauges {
			if v != 0 && strings.HasSuffix(name, "_wal_poisoned") {
				return true
			}
		}
		return false
	}
	ready := func() bool {
		return node.Ready() && !persistBad.Load() && !walPoisoned()
	}

	detail := func() map[string]any {
		st := node.Status()
		d := map[string]any{
			"role":              node.Role(),
			"serving":           st.Serving,
			"degraded":          st.Degraded,
			"caught_up":         node.Ready(),
			"repl_lag":          node.Lag(),
			"overloaded_shards": eng.OverloadedShards(),
			"persist_ok":        !persistBad.Load() && !walPoisoned(),
		}
		if clState != nil {
			s, e, _ := clState.Current().Band(clState.Self())
			d["cluster_node"] = clState.Self()
			d["cluster_map_version"] = clState.Version()
			d["cluster_band"] = []uint64{s, e}
		}
		return d
	}

	var sloEng *obs.SLOEngine
	if *sloSpec != "" {
		names := obs.SLONames{LagGauge: "bmwd_repl_lag"}
		if tracer != nil {
			names.LatencyMetric = obs.StageMetricName("bmwd_trace", obs.StageIssue)
		}
		for i := 0; i < eng.Shards(); i++ {
			p := fmt.Sprintf("bmwd_engine_shard%d", i)
			names.BadCounters = append(names.BadCounters,
				p+"_overload_shed_total", p+"_backpressure_total")
			names.TotalCounters = append(names.TotalCounters,
				p+"_pushes_total", p+"_pops_total",
				p+"_overload_shed_total", p+"_backpressure_total")
		}
		objectives, err := obs.ParseSLOSpec(*sloSpec, names)
		if err != nil {
			fatalf("%v", err)
		}
		sloEng = obs.NewSLOEngine(obs.SLOOptions{
			Source:      reg,
			Registry:    reg,
			Prefix:      "bmwd_slo",
			ShortWindow: *sloShort,
			LongWindow:  *sloLong,
			Objectives:  objectives,
			Flight:      flight,
			OnChange: func(o obs.Objective, from, to obs.SLOState, value float64) {
				logger.Warn("SLO state change", "objective", o.Name,
					"from", from.String(), "to", to.String(), "value", value)
				if to == obs.SLOPage {
					inc.CaptureAsync("slo_page",
						fmt.Sprintf("%s=%.0f bound %.0f", o.Name, value, o.Bound))
				}
			},
		})
	}

	inc, err = obs.NewIncidentCapturer(obs.IncidentOptions{
		Dir:         *incidentDir,
		MaxBundles:  *incidentCap,
		MinInterval: *incidentGap,
		Flight:      flight,
		Registry:    reg,
		Trace:       rec,
		SLO:         sloEng,
		Detail:      detail,
		Logger:      logger,
	})
	if err != nil {
		fatalf("%v", err)
	}
	inc.Instrument(reg, "bmwd_incident")
	defer inc.PanicCapture()

	eng.SetHooks(engine.Hooks{
		Flight:        flight,
		Metrics:       reg,
		MetricsPrefix: "bmwd_persist",
		OnOverloadTrip: func(shard, occ int) {
			inc.CaptureAsync("overload", fmt.Sprintf("shard %d tripped at occupancy %d", shard, occ))
		},
		OnPanic: func(shard int, r any) {
			// Synchronous: the shard goroutine is about to re-panic and
			// kill the process — this bundle is the last chance.
			_, _ = inc.Capture("panic", fmt.Sprintf("shard %d: %v", shard, r))
		},
	})

	runtimeC := obs.NewRuntimeCollector(reg, "bmwd_runtime")
	runtimeC.SetFlight(flight, 10*time.Millisecond)
	stopRuntime := runtimeC.Start(5 * time.Second)
	sloEng.Start(time.Second)

	// Background integrity scrub over the checkpoint fan-out: one
	// io-throttled pass per -scrub-interval, verifying every shard's
	// manifest, WAL hash chain and snapshot Merkle root plus the
	// engine-manifest binding. First detection latches persistBad
	// (readyz → 503) and captures an incident; with -repair-from set,
	// each dirty pass also attempts anti-entropy repair from the peer
	// and clears the latch once the fan-out re-verifies clean.
	scrubDone := make(chan struct{})
	if *persistDir != "" && *scrubEvery > 0 {
		dirs := make([]string, eng.Shards())
		for i := range dirs {
			dirs[i] = engine.ShardDir(*persistDir, i)
		}
		scr := persist.NewScrubber(persist.ScrubConfig{
			Dirs:      dirs,
			RateBytes: *scrubRate,
			Metrics:   reg,
			Prefix:    "bmwd_persist",
			Flight:    flight,
			OnCorruption: func(dir string, findings []persist.Finding) {
				logger.Error("scrub: durable state corrupt",
					"dir", dir, "findings", len(findings), "first", findings[0].String())
				inc.CaptureAsync("integrity", dir+": "+findings[0].String())
			},
		})
		go func() {
			t := time.NewTicker(*scrubEvery)
			defer t.Stop()
			for {
				select {
				case <-scrubDone:
					return
				case <-t.C:
				}
				dirty := false
				for range dirs {
					select {
					case <-scrubDone:
						return
					default:
					}
					if r := scr.Step(); r != nil && !r.Clean() {
						dirty = true
					}
				}
				if err := verifyEngineBinding(*persistDir); err != nil {
					dirty = true
					if !persistBad.Swap(true) {
						logger.Error("scrub: engine manifest binding broken", "err", err)
						inc.CaptureAsync("integrity", err.Error())
					}
				}
				if !dirty {
					continue
				}
				persistBad.Store(true)
				if *repairFrom == "" {
					continue
				}
				f, err := replic.DialFetcher(*repairFrom, 5*time.Second)
				if err != nil {
					logger.Error("scrub: repair peer unreachable", "peer", *repairFrom, "err", err)
					continue
				}
				rep, err := replic.RepairCheckpoint(*persistDir, f, replic.RepairConfig{
					Metrics: reg, Prefix: "bmwd_repl", Flight: flight,
				})
				f.Close()
				if err != nil || !rep.Clean {
					logger.Error("scrub: anti-entropy repair did not converge",
						"peer", *repairFrom, "err", err)
					continue
				}
				persistBad.Store(false)
				logger.Warn("scrub: anti-entropy repair converged, durable state restored",
					"peer", *repairFrom, "ops_fetched", rep.OpsFetched,
					"chunks_fetched", rep.ChunksFetched, "manifests_fetched", rep.ManifestsFetched)
			}
		}()
	}

	var obsSrv *http.Server
	if *httpAddr != "" {
		obsSrv = obs.NewServerOpts(*httpAddr, reg, obs.HandlerOptions{
			Healthy: func() bool { return true },
			Ready:   ready,
			Detail:  detail,
			Trace:   rec,
			SLO:     sloEng,
			Flight:  flight,
		})
		go func() {
			if err := obsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("obs server failed", "err", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatalf("listen: %v", err)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	promc := make(chan os.Signal, 1)
	signal.Notify(promc, syscall.SIGUSR1)
	go func() {
		for range promc {
			logger.Info("SIGUSR1: promoting")
			node.Promote()
		}
	}()
	// SIGQUIT is the operator's "freeze the black box now" trigger: a
	// forced incident capture (bypasses rate limiting), then keep
	// serving.
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	go func() {
		for range quitc {
			if inc == nil {
				logger.Warn("SIGQUIT received but -incident-dir is not set")
				continue
			}
			_, _ = inc.Capture("sigquit", "operator-requested capture")
		}
	}()

	// Readiness-flip watcher: record every edge in the flight ring and
	// capture a bundle when a node that was serving traffic stops being
	// ready — the moment an operator will want the black box for.
	watchDone := make(chan struct{})
	go func() {
		t := time.NewTicker(250 * time.Millisecond)
		defer t.Stop()
		last := ready()
		for {
			select {
			case <-watchDone:
				return
			case <-t.C:
				now := ready()
				if now == last {
					continue
				}
				was := last
				last = now
				b := uint64(0)
				if now {
					b = 1
				}
				flight.Record(obs.FlightReady, 0, b, 0, 0)
				if was && !now {
					inc.CaptureAsync("readyz_flip", "node stopped reporting ready")
				}
			}
		}
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	logger.Info("serving",
		"role", node.Role(), "shards", eng.Shards(), "queue", kind.String(),
		"addr", ln.Addr().String(), "route", *route, "trace_sample", *sample)
	if *follow != "" {
		logger.Info("following primary; promote with SIGUSR1 or an admin frame",
			"primary", *follow)
	}

	select {
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String())
	case err := <-serveErr:
		if err != nil && !errors.Is(err, net.ErrClosed) {
			fatalf("serve: %v", err)
		}
	}

	close(watchDone)
	close(scrubDone)
	if gsp != nil {
		gsp.Stop()
	}
	sloEng.Stop()
	stopRuntime()

	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("shutdown", "err", err)
	}
	node.Close()
	if obsSrv != nil {
		_ = obsSrv.Shutdown(ctx)
	}
	eng.Close()
	if *persistDir != "" {
		if err := eng.Checkpoint(*persistDir); err != nil {
			fatalf("checkpoint: %v", err)
		}
		logger.Info("checkpointed", "elements", eng.Len(), "dir", *persistDir)
	}
	logger.Info("bye")
}

// verifyEngineBinding checks the checkpoint's ENGINE.json and, when it
// carries the integrity seal, that every shard's MANIFEST.json still
// matches the sealed checksum. A directory without a checkpoint (or a
// legacy unsealed one) is fine.
func verifyEngineBinding(dir string) error {
	m, err := engine.LoadEngineManifest(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(m.ShardChecksums) != m.Shards {
		return nil
	}
	for i := 0; i < m.Shards; i++ {
		sm, err := persist.LoadManifest(nil, engine.ShardDir(dir, i))
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if sm.Checksum != m.ShardChecksums[i] {
			return fmt.Errorf("shard %d manifest checksum %.12s not sealed by %s",
				i, sm.Checksum, engine.EngineManifestName)
		}
	}
	return nil
}
