package bmw

import (
	"io"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/obs"
)

// Observability facade: the internal/obs subsystem re-exported for
// commands and external users. See DESIGN.md ("Observability") for
// the metric naming scheme and trace track layout.

// MetricsRegistry names and collects counters, gauges and histograms;
// a nil registry disables every probe registered against it.
type MetricsRegistry = obs.Registry

// MetricsSnapshot is a registry's full state at one instant, JSON-
// serializable (the -metrics-out format).
type MetricsSnapshot = obs.Snapshot

// TraceRecorder accumulates Chrome Trace Event / Perfetto JSON cycle
// traces; a nil recorder disables tracing.
type TraceRecorder = obs.TraceRecorder

// CycleTrace is a parsed Chrome Trace Event file.
type CycleTrace = obs.Trace

// QuantileHistogram is an HDR-style log-bucketed latency histogram
// with p50/p90/p99/p99.9 estimation; the sojourn probes of the queue
// simulators and netsim feed one each.
type QuantileHistogram = obs.QuantileHistogram

// QuantileSnapshot is a QuantileHistogram's state at one instant,
// including the estimated quantiles.
type QuantileSnapshot = obs.QuantileSnapshot

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewQuantileHistogram returns an unregistered quantile histogram (use
// MetricsRegistry.QuantileHistogram to register one by name).
func NewQuantileHistogram() *QuantileHistogram { return obs.NewQuantileHistogram() }

// NewTraceRecorder returns an empty cycle-trace recorder.
func NewTraceRecorder() *TraceRecorder { return obs.NewTraceRecorder() }

// MetricsHandler serves a registry over HTTP: /metrics (Prometheus
// text), /metrics.json (snapshot JSON), /debug/vars (expvar) and
// /debug/pprof/ (profiles).
func MetricsHandler(r *MetricsRegistry) http.Handler { return obs.Handler(r) }

// ServeMetrics starts the metrics endpoint on addr in a goroutine;
// server errors arrive on the returned channel.
func ServeMetrics(addr string, r *MetricsRegistry) <-chan error { return obs.Serve(addr, r) }

// NewMetricsServer builds the metrics endpoint without starting it, so
// commands can drain it gracefully via http.Server.Shutdown.
func NewMetricsServer(addr string, r *MetricsRegistry) *http.Server { return obs.NewServer(addr, r) }

// ParseCycleTrace decodes Chrome Trace Event JSON (the WriteTo
// output of a TraceRecorder).
func ParseCycleTrace(b []byte) (CycleTrace, error) { return obs.ParseTrace(b) }

// ValidateCycleTrace checks a parsed trace for structural conformance
// with the Chrome Trace Event schema.
func ValidateCycleTrace(tr CycleTrace) error { return obs.ValidateTrace(tr) }

// Request-lifecycle tracing: every request served by a WireServer with
// a tracer installed gets an eight-stage span (issue → decode →
// enqueue → dequeue → apply → commit → ack → write). Every span feeds
// per-stage latency quantile histograms; one in SampleEvery spans is
// additionally exported to a TraceRecorder as a Chrome-trace slice
// track per connection. See DESIGN.md section 5e.

// RequestTracer allocates, samples and aggregates request spans. A nil
// tracer disables tracing entirely (one branch per frame).
type RequestTracer = obs.Tracer

// RequestTracerOptions configures a RequestTracer: the registry and
// metric-name prefix for the per-stage histograms, an optional
// recorder plus sampling period for Chrome-trace export.
type RequestTracerOptions = obs.TracerOptions

// RequestSpan is one request's stage-timestamp record; stamped
// lock-free from server, shard, and writer goroutines.
type RequestSpan = obs.Span

// TraceStage identifies one request lifecycle stage.
type TraceStage = obs.Stage

// The request lifecycle stages, in pipeline order.
const (
	StageIssue     = obs.StageIssue
	StageDecode    = obs.StageDecode
	StageEnqueue   = obs.StageEnqueue
	StageDequeue   = obs.StageDequeue
	StageApply     = obs.StageApply
	StageCommit    = obs.StageCommit
	StageAck       = obs.StageAck
	StageWrite     = obs.StageWrite
	NumTraceStages = obs.NumStages
)

// NewRequestTracer builds a tracer, or nil (tracing disabled) when
// opts provide neither a registry nor a recorder.
func NewRequestTracer(opts RequestTracerOptions) *RequestTracer { return obs.NewTracer(opts) }

// RequestSpanNow is the span clock: monotonic nanoseconds since
// process start, comparable across goroutines. Pass it to
// RequestTracer.Begin as the issue timestamp.
func RequestSpanNow() int64 { return obs.SpanNow() }

// StageMetricName is the registry name of one stage's latency
// histogram under a tracer prefix (StageIssue maps to the whole-span
// "<prefix>_stage_total_ns").
func StageMetricName(prefix string, st TraceStage) string { return obs.StageMetricName(prefix, st) }

// NewEventLogger builds the structured logger the daemons use: JSON
// records to w at the given level, with repeated identical messages
// suppressed within the window (errors always pass) so a flapping
// follower cannot flood the log.
func NewEventLogger(w io.Writer, level slog.Level, window time.Duration) *slog.Logger {
	return obs.NewEventLogger(w, level, window)
}

// Incident infrastructure: the black-box flight recorder, runtime
// telemetry poller, SLO burn-rate engine and incident-bundle capturer.
// See DESIGN.md section 5f.

// FlightRecorder is a fixed-size lock-free ring of structured events —
// the always-on black box a crash or incident capture freezes. A nil
// recorder disables every probe that feeds it.
type FlightRecorder = obs.FlightRecorder

// FlightDump is a consistent snapshot of a FlightRecorder's window.
type FlightDump = obs.FlightDump

// FlightEvent is one recorded flight event.
type FlightEvent = obs.FlightEvent

// NewFlightRecorder builds a flight recorder holding (about) size
// events; size <= 0 returns nil, the disabled recorder.
func NewFlightRecorder(size int) *FlightRecorder { return obs.NewFlightRecorder(size) }

// ParseFlightDump decodes and schema-checks a FlightDump JSON document.
func ParseFlightDump(b []byte) (FlightDump, error) { return obs.ParseFlightDump(b) }

// RuntimeCollector polls runtime/metrics (GC pauses, heap, goroutines,
// scheduling latency) into a registry. Nil-disabled.
type RuntimeCollector = obs.RuntimeCollector

// NewRuntimeCollector builds a runtime collector registering its
// gauges and quantile histograms under prefix; nil registry → nil.
func NewRuntimeCollector(reg *MetricsRegistry, prefix string) *RuntimeCollector {
	return obs.NewRuntimeCollector(reg, prefix)
}

// SLOEngine evaluates declarative objectives with multi-window
// burn-rate states (ok/warn/page). Nil-disabled.
type SLOEngine = obs.SLOEngine

// SLOObjective is one declarative service-level objective.
type SLOObjective = obs.Objective

// SLOOptions parameterise NewSLOEngine.
type SLOOptions = obs.SLOOptions

// SLONames maps a daemon's metric vocabulary into ParseSLOSpec.
type SLONames = obs.SLONames

// NewSLOEngine builds an SLO engine (nil without a source registry or
// objectives).
func NewSLOEngine(opts SLOOptions) *SLOEngine { return obs.NewSLOEngine(opts) }

// ParseSLOSpec parses a comma-separated objective spec such as
// "p99<10ms,availability>0.999,lag<5000".
func ParseSLOSpec(spec string, names SLONames) ([]SLOObjective, error) {
	return obs.ParseSLOSpec(spec, names)
}

// IncidentCapturer writes versioned, self-checksummed incident
// bundles. Nil-disabled.
type IncidentCapturer = obs.IncidentCapturer

// IncidentOptions parameterise NewIncidentCapturer.
type IncidentOptions = obs.IncidentOptions

// IncidentManifest is a bundle's manifest.json document.
type IncidentManifest = obs.IncidentManifest

// NewIncidentCapturer builds a capturer writing bundles under
// opts.Dir (empty Dir → nil, the disabled capturer).
func NewIncidentCapturer(opts IncidentOptions) (*IncidentCapturer, error) {
	return obs.NewIncidentCapturer(opts)
}

// ListIncidentBundles returns the bundle directories under dir,
// oldest first.
func ListIncidentBundles(dir string) ([]string, error) { return obs.ListIncidentBundles(dir) }

// ParseIncidentManifest decodes and structurally validates a bundle
// manifest, including its self-checksum.
func ParseIncidentManifest(b []byte) (IncidentManifest, error) {
	return obs.ParseIncidentManifest(b)
}

// ValidateIncidentBundle checks one bundle directory end to end:
// manifest schema and checksums, required captures present, flight
// record parseable.
func ValidateIncidentBundle(dir string) error { return obs.ValidateIncidentBundle(dir) }

// InstrumentedQueue wraps any PriorityQueue with operation counters
// and an occupancy probe, for implementations that lack native
// instrumentation. The wrapper observes only at the interface: counts
// of successful and rejected operations plus occupancy/capacity from
// Len/Cap.
type InstrumentedQueue struct {
	q        PriorityQueue
	pushes   *obs.Counter
	pops     *obs.Counter
	rejected *obs.Counter
	high     *obs.Gauge
}

// NewInstrumentedQueue registers interface-level probes for q in reg
// under the metric-name prefix and returns the wrapped queue.
func NewInstrumentedQueue(reg *MetricsRegistry, prefix string, q PriorityQueue) *InstrumentedQueue {
	iq := &InstrumentedQueue{
		q:        q,
		pushes:   reg.Counter(prefix + "_pushes_total"),
		pops:     reg.Counter(prefix + "_pops_total"),
		rejected: reg.Counter(prefix + "_rejected_ops_total"),
		high:     reg.Gauge(prefix + "_occupancy_highwater"),
	}
	reg.GaugeFunc(prefix+"_occupancy", func() float64 { return float64(q.Len()) })
	reg.GaugeFunc(prefix+"_capacity", func() float64 { return float64(q.Cap()) })
	return iq
}

// Push forwards to the wrapped queue, counting the outcome.
func (iq *InstrumentedQueue) Push(e Element) error {
	if err := iq.q.Push(e); err != nil {
		iq.rejected.Inc()
		return err
	}
	iq.pushes.Inc()
	iq.high.Max(float64(iq.q.Len()))
	return nil
}

// Pop forwards to the wrapped queue, counting the outcome.
func (iq *InstrumentedQueue) Pop() (Element, error) {
	e, err := iq.q.Pop()
	if err != nil {
		iq.rejected.Inc()
		return e, err
	}
	iq.pops.Inc()
	return e, nil
}

// Peek, Len and Cap forward unchanged.
func (iq *InstrumentedQueue) Peek() (Element, error) { return iq.q.Peek() }
func (iq *InstrumentedQueue) Len() int               { return iq.q.Len() }
func (iq *InstrumentedQueue) Cap() int               { return iq.q.Cap() }

// Unwrap returns the underlying queue.
func (iq *InstrumentedQueue) Unwrap() PriorityQueue { return iq.q }
