// Package bmw is a Go reproduction of "BMW Tree: Large-scale,
// High-throughput and Modular PIFO Implementation using Balanced
// Multi-Way Sorting Tree" (Yao et al., ACM SIGCOMM 2023).
//
// The package exposes four layers:
//
//   - Priority queues implementing the PIFO flow-scheduler contract:
//     the BMW-Tree itself (NewBMWTree) and the paper's baselines — the
//     original shift-register PIFO (NewPIFO), pHeap (NewPHeap) and the
//     Pipelined Heap (NewPipelinedHeap).
//   - Cycle-accurate simulations of the two hardware designs:
//     register-based R-BMW (NewRBMWSim) and RPU-driven RPU-BMW
//     (NewRPUBMWSim), plus the single-cycle PIFO baseline
//     (NewPIFOSim). They follow the papers' issue rules exactly
//     (Sections 4-5) and are proven equivalent to the software tree.
//   - Scheduling algorithms for rank computation (STFQ, WFQ, SRPT,
//     FCFS, strict priority, token-bucket shaping) and the PIFO block
//     of Figure 1 (NewPIFOBlock) combining a rank store with any flow
//     scheduler.
//   - Evaluation models and experiments: the calibrated FPGA and ASIC
//     synthesis models (SynthRBMW, SynthRPUBMW, SynthPIFO, ASICRPUBMW,
//     ASICPIFO) and the packet-level FCT experiment of Figure 10
//     (RunFCTExperiment).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package bmw

import (
	"math/rand"

	"repro/internal/aifo"
	"repro/internal/asic"
	"repro/internal/calendarq"
	"repro/internal/core"
	"repro/internal/drr"
	"repro/internal/faultinject"
	"repro/internal/fpga"
	"repro/internal/gearbox"
	"repro/internal/hsched"
	"repro/internal/hw"
	"repro/internal/netsim"
	"repro/internal/pheap"
	"repro/internal/pieo"
	"repro/internal/pifo"
	"repro/internal/pifoblock"
	"repro/internal/pipeheap"
	"repro/internal/rbmw"
	"repro/internal/refpq"
	"repro/internal/rpubmw"
	"repro/internal/sched"
	"repro/internal/simdpq"
	"repro/internal/sppifo"
	"repro/internal/stats"
	"repro/internal/tm"
	"repro/internal/trafficgen"
)

// Element is one priority-queue entry: Value is the rank (smaller
// dequeues first), Meta is opaque packet metadata.
type Element = core.Element

// Errors returned by the priority queues.
var (
	ErrFull  = core.ErrFull
	ErrEmpty = core.ErrEmpty
)

// PriorityQueue is the flow-scheduler contract of Section 2.3 of the
// paper: push by rank, pop the minimum.
type PriorityQueue interface {
	Push(Element) error
	Pop() (Element, error)
	Peek() (Element, error)
	Len() int
	Cap() int
}

// TreeCapacity returns the number of elements an order-m, l-level
// BMW-Tree supports: m(m^l-1)/(m-1).
func TreeCapacity(m, l int) int { return core.Capacity(m, l) }

// NewBMWTree returns the software BMW-Tree of Section 3: an order-m
// (M-way), l-level balanced multi-way sorting tree.
func NewBMWTree(m, l int) *core.Tree { return core.New(m, l) }

// NewPIFO returns the original shift-register PIFO flow scheduler
// (Sivaraman et al., SIGCOMM 2016), the paper's baseline.
func NewPIFO(capacity int) *pifo.PIFO { return pifo.New(capacity) }

// NewPHeap returns a pHeap (Bhagwan & Lin, INFOCOM 2000) of the given
// depth; capacity 2^depth - 1.
func NewPHeap(depth int) *pheap.Heap { return pheap.New(depth) }

// NewPipelinedHeap returns a Pipelined Heap (Ioannou & Katevenis) with
// the given capacity.
func NewPipelinedHeap(capacity int) *pipeheap.Heap { return pipeheap.New(capacity) }

// NewSPPIFO returns an SP-PIFO (Alcoz et al., NSDI 2020): n
// strict-priority FIFOs with adaptive bounds approximating a PIFO in
// dequeue order (Section 7.2 of the paper).
func NewSPPIFO(queues, capacity int) *sppifo.Queue { return sppifo.New(queues, capacity) }

// NewAIFO returns an AIFO (Yu et al., SIGCOMM 2021): a single FIFO
// with quantile-based admission approximating a PIFO in dropped
// packets (Section 7.2).
func NewAIFO(capacity, window int, burst float64) *aifo.Queue {
	return aifo.New(capacity, window, burst)
}

// NewCalendarQueue returns a rotating calendar queue (the AFQ/PCQ
// approximation family of Section 7.2): buckets of the given rank
// width, bounded intra-bucket inversions, squashing past the horizon.
func NewCalendarQueue(buckets int, width uint64, capacity int) *calendarq.Queue {
	return calendarq.New(buckets, width, capacity)
}

// NewGearbox returns a hierarchical calendar queue in the style of
// Gearbox (Gao et al., NSDI 2022, the paper's reference [26]):
// geometrically coarser gears extend the rank horizon far beyond a
// flat calendar at the same bucket budget.
func NewGearbox(gears, buckets int, width uint64, capacity int) *gearbox.Queue {
	return gearbox.New(gears, buckets, width, capacity)
}

// NewSIMDPQ returns the systolic-array priority queue of Benacer et
// al. (Section 7.2): exact, one operation per cycle, but register-
// bound in scale. It implements CycleSim.
func NewSIMDPQ(capacity int) *simdpq.Sim { return simdpq.New(capacity) }

// PIEOEntry is one element of a PIEO list: rank plus eligibility time.
type PIEOEntry = pieo.Entry

// NewPIEO returns a PIEO list (Shrivastav, SIGCOMM 2019 — Section
// 7.1): extract the smallest-ranked *eligible* element, expressing
// non-work-conserving schedules natively.
func NewPIEO(capacity int) *pieo.List { return pieo.New(capacity) }

// SchedulerTree is a hierarchy of PIFOs (the scheduling-tree model;
// the "logical PIFOs" of Figure 1), enabling HPFQ-style policies.
type SchedulerTree = hsched.Tree

// NewSchedulerTree builds a scheduling tree whose root orders its
// children with the given PIFO and rank policy; add classes and leaves
// with AddNode.
func NewSchedulerTree(pq PriorityQueue, r Ranker) *SchedulerTree {
	return hsched.New(pq, r)
}

// NewDRR returns a Deficit Round Robin scheduler (Shreedhar &
// Varghese) — the conventional non-programmable fair scheduler the
// paper's introduction contrasts with PIFO.
func NewDRR(quantumBytes uint64, capacity int) *drr.Scheduler {
	return drr.New(quantumBytes, capacity)
}

// TrafficManager is a multi-port traffic manager of per-port PIFO
// blocks over a shared packet buffer.
type TrafficManager = tm.TM

// TMConfig parameterises NewTrafficManager.
type TMConfig struct {
	Ports       int
	BufferBytes uint64 // shared buffer budget (0 = unlimited)
	PortBytes   uint64 // per-port cap (0 = unlimited)

	// NewScheduler and NewRanker build each port's flow scheduler and
	// rank policy.
	NewScheduler func(port int) PriorityQueue
	NewRanker    func(port int) Ranker
}

// NewTrafficManager builds the multi-port traffic manager the paper's
// conclusion positions BMW-Tree for.
func NewTrafficManager(cfg TMConfig) *TrafficManager {
	return tm.New(tm.Config{
		Ports:        cfg.Ports,
		BufferBytes:  cfg.BufferBytes,
		PortBytes:    cfg.PortBytes,
		NewScheduler: func(p int) pifoblock.FlowScheduler { return cfg.NewScheduler(p) },
		NewRanker:    func(p int) sched.Ranker { return cfg.NewRanker(p) },
	})
}

// InversionMeter measures dequeue-order accuracy (see
// AccuracyExperiment).
type InversionMeter = stats.InversionMeter

// AccuracyResult reports one scheduler's dequeue-order accuracy under
// AccuracyExperiment: the fraction of pops returning a rank above the
// queue's true minimum at that moment ("accurate" PIFO behaviour means
// zero), plus drops for admission-based schemes.
type AccuracyResult struct {
	Name       string
	Pops       uint64
	NonMinimal uint64
	Dropped    uint64
}

// Rate returns the non-minimal pop fraction.
func (r AccuracyResult) Rate() float64 {
	if r.Pops == 0 {
		return 0
	}
	return float64(r.NonMinimal) / float64(r.Pops)
}

// AccuracyExperiment drives identical bursty rank workloads through an
// accurate BMW-Tree and the three approximate schedulers of Section
// 7.2 and reports how often each pops a non-minimal element. It
// substantiates the paper's case for an accurate PIFO: approximations
// reorder (SP-PIFO, calendar queue) or drop (AIFO) packets that an
// accurate scheduler handles exactly.
func AccuracyExperiment(seed int64, ops int) []AccuracyResult {
	rng := rand.New(rand.NewSource(seed))
	type contender struct {
		name string
		q    PriorityQueue
	}
	contenders := []contender{
		{"BMW-Tree", core.New(2, 12)},
		{"SP-PIFO", sppifo.New(8, 1<<12)},
		{"AIFO", aifo.New(1<<12, 128, 0.1)},
		{"CalendarQ", calendarq.New(64, 64, 1<<12)},
		{"Gearbox", gearbox.New(3, 16, 16, 1<<12)},
	}
	results := make([]AccuracyResult, len(contenders))
	refs := make([]*refpq.Queue, len(contenders))
	for i, c := range contenders {
		results[i].Name = c.name
		refs[i] = refpq.New()
	}
	inFlight := make([]int, len(contenders))
	for step := 0; step < ops; step++ {
		push := rng.Intn(2) == 0
		base := uint64(rng.Intn(4)) * 1000
		r := base + uint64(rng.Intn(100))
		for i, c := range contenders {
			if (push && inFlight[i] < 512) || inFlight[i] == 0 {
				if err := c.q.Push(Element{Value: r, Meta: uint64(step)}); err != nil {
					results[i].Dropped++ // AIFO admission or capacity
					continue
				}
				refs[i].Push(refpq.Entry{Value: r, Meta: uint64(step)})
				inFlight[i]++
			} else {
				min := refs[i].MinValue()
				e, err := c.q.Pop()
				if err != nil {
					continue
				}
				results[i].Pops++
				if e.Value > min {
					results[i].NonMinimal++
				}
				if !refs[i].RemoveExact(refpq.Entry{Value: e.Value, Meta: e.Meta}) {
					panic("bmw: accuracy reference desync for " + c.name)
				}
				inFlight[i]--
			}
		}
	}
	return results
}

// Op is one clock cycle's external signal for the cycle-accurate
// simulators; build with PushOp, PopOp and NopOp.
type Op = hw.Op

// OpKind identifies an Op's type.
type OpKind = hw.OpKind

// Operation kinds.
const (
	OpNop  = hw.Nop
	OpPush = hw.Push
	OpPop  = hw.Pop
)

// Operation constructors for the cycle simulators.
var (
	PushOp = hw.PushOp
	PopOp  = hw.PopOp
	NopOp  = hw.NopOp
)

// CycleSim is the common interface of the cycle-accurate hardware
// simulations. Tick advances one clock with the given signal and
// returns the popped element for a pop. PushAvailable/PopAvailable are
// the issue handshake of Sections 4.2.2 and 5.2.3.
type CycleSim interface {
	Tick(Op) (*Element, error)
	Cycle() uint64
	Len() int
	Cap() int
	AlmostFull() bool
	PushAvailable() bool
	PopAvailable() bool
}

// NewRBMWSim returns the cycle-accurate register-based BMW-Tree of
// Section 4: push every cycle, pop every 2 cycles, push-pop in 2
// cycles.
func NewRBMWSim(m, l int) *rbmw.Sim { return rbmw.New(m, l) }

// NewRPUBMWSim returns the cycle-accurate RPU-driven BMW-Tree of
// Section 5: nodes in write-first dual-port SRAMs, one RPU per level;
// push every cycle, pop every 2 cycles with a mandatory idle cycle
// after each pop, push-pop in 3 cycles.
func NewRPUBMWSim(m, l int) *rpubmw.Sim { return rpubmw.New(m, l) }

// PIFOSim adapts the shift-register PIFO to the CycleSim interface
// (every operation is single-cycle and always available).
type PIFOSim struct{ *pifo.PIFO }

// PushAvailable is always true for PIFO.
func (PIFOSim) PushAvailable() bool { return true }

// PopAvailable is always true for PIFO.
func (PIFOSim) PopAvailable() bool { return true }

// NewPIFOSim returns the single-cycle PIFO baseline as a CycleSim.
func NewPIFOSim(capacity int) PIFOSim { return PIFOSim{pifo.New(capacity)} }

// ErrCorrupt is the sentinel wrapped by every corruption error a
// protected hardware simulator detects; test with errors.Is.
var ErrCorrupt = hw.ErrCorrupt

// CorruptionError describes one detected storage corruption: the unit
// (register file or SRAM macro), word, chunk and cycle, plus the
// underlying invariant violation when the online checker found it.
type CorruptionError = hw.CorruptionError

// FaultTarget is bit-addressable storage a fault plan can corrupt; the
// protected simulators expose their register files and SRAMs as
// targets.
type FaultTarget = hw.FaultTarget

// Fault-injection plumbing (see internal/faultinject): a FaultPlan is a
// seeded deterministic schedule of bit flips and stuck-at faults over
// registered targets.
type (
	// FaultConfig parameterises NewFaultPlan.
	FaultConfig = faultinject.Config
	// FaultPlan is the seeded injector.
	FaultPlan = faultinject.Plan
	// FaultInjection is one logged corruption.
	FaultInjection = faultinject.Injection
	// ECCMode selects the SRAM protection coding.
	ECCMode = faultinject.ECCMode
	// ECCStats aggregates correction/detection/scrub activity.
	ECCStats = faultinject.ECCStats
)

// SRAM protection modes for NewProtectedRPUBMWSim.
const (
	EccOff    = faultinject.EccOff
	EccParity = faultinject.EccParity
	EccSECDED = faultinject.EccSECDED
)

// NewFaultPlan builds a seeded deterministic fault plan. Register the
// simulator's fault targets on it, attach it with the simulator's
// AttachFaults, and it fires between clock edges.
func NewFaultPlan(cfg FaultConfig) *FaultPlan { return faultinject.NewPlan(cfg) }

// NewProtectedRBMWSim returns an R-BMW simulator with per-slot register
// parity and, when checkEvery > 0, the online tree-invariant checker.
// Detected corruptions latch a sticky error (errors.Is ErrCorrupt);
// Recover drains the survivors and rebuilds a clean tree.
func NewProtectedRBMWSim(m, l int, checkEvery uint64) *rbmw.Sim {
	s := rbmw.New(m, l)
	s.Protect(true)
	s.CheckEvery = checkEvery
	return s
}

// NewProtectedRPUBMWSim returns an RPU-BMW simulator whose level SRAMs
// are ECC-protected in the given mode (with a background scrubber every
// scrubEvery ticks when SECDED) and whose root latches carry parity;
// checkEvery > 0 additionally enables the online invariant checker.
func NewProtectedRPUBMWSim(m, l int, mode ECCMode, scrubEvery int, checkEvery uint64) *rpubmw.Sim {
	s := rpubmw.New(m, l)
	s.Protect(mode, scrubEvery)
	s.CheckEvery = checkEvery
	return s
}

// Packet is the per-packet metadata seen by rank functions.
type Packet = sched.Packet

// Ranker computes packet ranks (the programmable half of the PIFO
// model).
type Ranker = sched.Ranker

// Rank-function constructors and types (Section 2 of the paper).
type (
	// STFQ is Start-Time Fair Queueing (used in the Figure 10
	// experiment).
	STFQ = sched.STFQ
	// WFQ is finish-tag weighted fair queueing.
	WFQ = sched.WFQ
	// FCFS ranks by arrival time.
	FCFS = sched.FCFS
	// SRPT ranks by remaining flow size.
	SRPT = sched.SRPT
	// StrictPriority ranks by class.
	StrictPriority = sched.StrictPriority
	// TokenBucket ranks by eligible departure time (shaping).
	TokenBucket = sched.TokenBucket
)

// NewSTFQ returns an STFQ ranker with the given default weight.
func NewSTFQ(defaultWeight uint32) *STFQ { return sched.NewSTFQ(defaultWeight) }

// NewWFQ returns a WFQ ranker with the given default weight.
func NewWFQ(defaultWeight uint32) *WFQ { return sched.NewWFQ(defaultWeight) }

// NewTokenBucket returns a per-flow token-bucket shaper.
func NewTokenBucket(rateBytesPerSec, burstBytes uint64) *TokenBucket {
	return sched.NewTokenBucket(rateBytesPerSec, burstBytes)
}

// PIFOBlock is the architecture of Figure 1: a rank store in front of
// a flow scheduler.
type PIFOBlock = pifoblock.Block

// Block-level errors.
var (
	ErrSchedulerFull = pifoblock.ErrSchedulerFull
	ErrStoreFull     = pifoblock.ErrStoreFull
	ErrNotEligible   = pifoblock.ErrNotEligible
)

// NewPIFOBlock builds a PIFO block over any PriorityQueue and ranker.
func NewPIFOBlock(fs PriorityQueue, r Ranker) *PIFOBlock {
	return pifoblock.New(fs, r)
}

// FPGAReport is a synthesis-style summary from the calibrated XCU200
// model (Figures 8-9, Tables 2-3).
type FPGAReport = fpga.Report

// XCU200 is the paper's FPGA device (Alveo U200).
var XCU200 = fpga.XCU200

// SynthRBMW models an order-m, l-level R-BMW on the XCU200.
func SynthRBMW(m, l int) FPGAReport { return fpga.RBMW(fpga.XCU200, m, l) }

// SynthRPUBMW models an order-m, l-level RPU-BMW on the XCU200.
func SynthRPUBMW(m, l int) FPGAReport { return fpga.RPUBMW(fpga.XCU200, m, l) }

// SynthPIFO models the original PIFO with the given capacity on the
// XCU200.
func SynthPIFO(capacity int) FPGAReport { return fpga.PIFO(fpga.XCU200, capacity) }

// MaxFPGALevels returns the deepest feasible tree for a design
// ("R-BMW" or "RPU-BMW") and order on the XCU200.
func MaxFPGALevels(design string, m int) int { return fpga.MaxLevels(fpga.XCU200, design, m) }

// ASICReport is a GF28 synthesis summary (Table 4).
type ASICReport = asic.Report

// ASICRPUBMW models an order-m, l-level RPU-BMW in the GF28 process.
func ASICRPUBMW(m, l int) ASICReport { return asic.RPUBMW(m, l) }

// ASICPIFO models the original PIFO in the GF28 process.
func ASICPIFO(capacity int) ASICReport { return asic.PIFO(capacity) }

// FCT experiment plumbing (Figure 10).
type (
	// NetConfig parameterises the packet-level simulation.
	NetConfig = netsim.Config
	// NetResult is a finished run's report.
	NetResult = netsim.Result
	// FCTBin is one flow-size bucket of the Figure 10 series.
	FCTBin = stats.Bin
	// SchedulerKind selects the bottleneck flow scheduler.
	SchedulerKind = netsim.SchedulerKind
	// RankAlgo selects the rank function programmed into the block.
	RankAlgo = netsim.RankAlgo
)

// Scheduler selectors for NetConfig. The approximate kinds (SP-PIFO,
// Gearbox, calendar queue) admit rank inversions, which the run's
// NetResult reports alongside per-packet sojourn quantiles.
const (
	SchedBMW       = netsim.SchedBMW
	SchedPIFO      = netsim.SchedPIFO
	SchedUnlimited = netsim.SchedUnlimited
	SchedSPPIFO    = netsim.SchedSPPIFO
	SchedGearbox   = netsim.SchedGearbox
	SchedCalendarQ = netsim.SchedCalendarQ
)

// Rank-function selectors for NetConfig: the scheduler is programmed
// by swapping the rank computation (Section 2.2).
const (
	RankSTFQ = netsim.RankSTFQ
	RankSRPT = netsim.RankSRPT
	RankFCFS = netsim.RankFCFS
)

// Workload selectors for NetConfig.
const (
	WorkloadWebSearch  = trafficgen.WebSearchDist
	WorkloadDataMining = trafficgen.DataMiningDist
)

// DefaultNetConfig returns the paper's Figure 10 topology: 128 source
// hosts, 10 Gbps links, 3 ms propagation, STFQ, BMW scheduler with
// capacity 4094.
func DefaultNetConfig() NetConfig { return netsim.DefaultConfig() }

// RunFCTExperiment executes one packet-level simulation run.
func RunFCTExperiment(cfg NetConfig) NetResult { return netsim.New(cfg).Run() }

// NewNetSim returns a configured packet-level simulation without
// running it, so callers can Instrument it (live bottleneck-queue
// probes, safe to scrape over HTTP while Run is in progress) before
// calling Run.
func NewNetSim(cfg NetConfig) *netsim.Sim { return netsim.New(cfg) }

// FCTBins buckets a run's flow records with the default Figure 10
// flow-size edges.
func FCTBins(r NetResult) []FCTBin { return r.FCT.Binned(stats.DefaultBins()) }

// FCTTable renders one Figure 10 series as text.
func FCTTable(name string, bins []FCTBin) string { return stats.Table(name, bins) }

// WebSearchMeanBytes returns the mean of the embedded web-search
// flow-size distribution.
func WebSearchMeanBytes() float64 { return trafficgen.MeanBytes() }
