package bmw_test

import (
	"errors"
	"math/rand"
	"testing"

	bmw "repro"
)

// TestPriorityQueueBoundaries pins the ErrFull/ErrEmpty contract at the
// exact capacity boundaries for every PriorityQueue implementation: a
// queue accepts exactly Cap() elements, refuses the next push with
// ErrFull, yields exactly Cap() sorted elements back, refuses the next
// pop (and peek) with ErrEmpty, and keeps working after both refusals.
func TestPriorityQueueBoundaries(t *testing.T) {
	queues := map[string]bmw.PriorityQueue{
		"bmwtree":  bmw.NewBMWTree(2, 4),
		"pifo":     bmw.NewPIFO(30),
		"pheap":    bmw.NewPHeap(4),
		"pipeheap": bmw.NewPipelinedHeap(30),
	}
	for name, q := range queues {
		t.Run(name, func(t *testing.T) {
			n := q.Cap()
			if n <= 0 {
				t.Fatalf("Cap = %d", n)
			}

			// Empty boundary before any push.
			if _, err := q.Pop(); !errors.Is(err, bmw.ErrEmpty) {
				t.Fatalf("pop on empty = %v, want ErrEmpty", err)
			}
			if _, err := q.Peek(); !errors.Is(err, bmw.ErrEmpty) {
				t.Fatalf("peek on empty = %v, want ErrEmpty", err)
			}

			// Exactly Cap() pushes succeed; descending values stress the
			// placement paths of every design.
			for i := 0; i < n; i++ {
				e := bmw.Element{Value: uint64(n - i), Meta: uint64(i)}
				if err := q.Push(e); err != nil {
					t.Fatalf("push %d/%d: %v", i+1, n, err)
				}
			}
			if q.Len() != n {
				t.Fatalf("Len = %d, want %d", q.Len(), n)
			}

			// Full boundary: one more push must refuse without damage.
			if err := q.Push(bmw.Element{Value: 0, Meta: 999}); !errors.Is(err, bmw.ErrFull) {
				t.Fatalf("push at capacity = %v, want ErrFull", err)
			}
			if q.Len() != n {
				t.Fatalf("Len after refused push = %d, want %d", q.Len(), n)
			}

			// Exactly Cap() sorted pops come back.
			prev := uint64(0)
			for i := 0; i < n; i++ {
				e, err := q.Pop()
				if err != nil {
					t.Fatalf("pop %d/%d: %v", i+1, n, err)
				}
				if e.Value < prev {
					t.Fatalf("pop %d: value %d after %d (unsorted)", i, e.Value, prev)
				}
				prev = e.Value
			}

			// Empty boundary again, then the queue must still work.
			if _, err := q.Pop(); !errors.Is(err, bmw.ErrEmpty) {
				t.Fatalf("pop after drain = %v, want ErrEmpty", err)
			}
			if err := q.Push(bmw.Element{Value: 7, Meta: 1}); err != nil {
				t.Fatalf("push after boundary refusals: %v", err)
			}
			if e, err := q.Pop(); err != nil || e.Value != 7 {
				t.Fatalf("pop after boundary refusals = %v, %v", e, err)
			}
		})
	}
}

// TestProtectedSimFacade exercises the fault-tolerance surface through
// the public package: a seeded plan flipping a register bit must
// surface a typed ErrCorrupt from the protected simulator, and Recover
// must return the pipeline to service.
func TestProtectedSimFacade(t *testing.T) {
	s := bmw.NewProtectedRBMWSim(2, 3, 0)
	plan := bmw.NewFaultPlan(bmw.FaultConfig{Seed: 5})
	plan.Register(s)
	s.AttachFaults(plan)
	plan.ScheduleFlip(3, s.TargetName(), 0, 17)

	for i := 0; i < 3; i++ {
		if _, err := s.Tick(bmw.PushOp(uint64(10-i), uint64(i))); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	// Popping reads node 0's registers through the parity check, which
	// must trip over the flipped value bit.
	var tickErr error
	for i := 0; i < 10 && tickErr == nil; i++ {
		if s.PopAvailable() {
			_, tickErr = s.Tick(bmw.PopOp())
		} else {
			_, tickErr = s.Tick(bmw.NopOp())
		}
	}
	if !errors.Is(tickErr, bmw.ErrCorrupt) {
		t.Fatalf("flip went undetected: %v", tickErr)
	}
	var ce *bmw.CorruptionError
	if !errors.As(tickErr, &ce) || ce.Unit != s.TargetName() {
		t.Fatalf("error = %v, want CorruptionError in %s", tickErr, s.TargetName())
	}
	if plan.Injected() != 1 {
		t.Fatalf("Injected = %d, want 1", plan.Injected())
	}

	survivors, _ := s.Recover()
	if len(survivors) == 0 {
		t.Fatal("recovery harvested nothing")
	}
	if _, err := s.Tick(bmw.NopOp()); err != nil {
		t.Fatalf("tick after recovery: %v", err)
	}
}

// TestMetricsSnapshotInvariants drives every PriorityQueue through a
// randomized workload behind the interface-level probes and checks the
// accounting identities any correct queue-plus-instrumentation pair
// must satisfy at all times: pushes - pops == occupancy, occupancy
// never exceeds capacity, and the high-water mark sits between the
// current occupancy and the capacity.
func TestMetricsSnapshotInvariants(t *testing.T) {
	queues := map[string]bmw.PriorityQueue{
		"bmwtree":  bmw.NewBMWTree(2, 4),
		"pifo":     bmw.NewPIFO(30),
		"pheap":    bmw.NewPHeap(4),
		"pipeheap": bmw.NewPipelinedHeap(30),
	}
	for name, inner := range queues {
		t.Run(name, func(t *testing.T) {
			reg := bmw.NewMetricsRegistry()
			q := bmw.NewInstrumentedQueue(reg, name, inner)
			rng := rand.New(rand.NewSource(7))

			check := func(step int) {
				snap := reg.Snapshot()
				pushes := snap.Counter(name + "_pushes_total")
				pops := snap.Counter(name + "_pops_total")
				occ := snap.Gauge(name + "_occupancy")
				capacity := snap.Gauge(name + "_capacity")
				high := snap.Gauge(name + "_occupancy_highwater")
				if float64(pushes-pops) != occ {
					t.Fatalf("step %d: pushes(%d) - pops(%d) != occupancy(%g)", step, pushes, pops, occ)
				}
				if occ > capacity {
					t.Fatalf("step %d: occupancy %g exceeds capacity %g", step, occ, capacity)
				}
				if high < occ || high > capacity {
					t.Fatalf("step %d: highwater %g outside [occupancy %g, capacity %g]", step, high, occ, capacity)
				}
			}

			// Randomized workload biased toward pushes so the queue
			// sweeps through full (rejections must not count as pushes)
			// and empty (ditto for pops) along the way.
			for i := 0; i < 2000; i++ {
				if rng.Intn(3) != 0 {
					q.Push(bmw.Element{Value: uint64(rng.Intn(512)), Meta: uint64(i)})
				} else {
					q.Pop()
				}
				if i%97 == 0 {
					check(i)
				}
			}
			for q.Len() > 0 {
				if _, err := q.Pop(); err != nil {
					t.Fatalf("drain: %v", err)
				}
			}
			check(-1)
			snap := reg.Snapshot()
			if snap.Gauge(name+"_occupancy") != 0 {
				t.Fatalf("occupancy after drain = %g, want 0", snap.Gauge(name+"_occupancy"))
			}
			if snap.Counter(name+"_pushes_total") != snap.Counter(name+"_pops_total") {
				t.Fatalf("drained queue has pushes %d != pops %d",
					snap.Counter(name+"_pushes_total"), snap.Counter(name+"_pops_total"))
			}
			if snap.Counter(name+"_rejected_ops_total") == 0 {
				t.Fatalf("workload never hit a boundary; rejected_ops_total = 0")
			}
		})
	}
}

// TestMetricsSnapshotInvariants_Sojourn extends the snapshot-invariant
// contract to the sojourn probes of the four exact queues: every pop
// contributes exactly one sojourn observation, and no element can have
// waited longer than the clock that timestamps it has run — real
// cycles for the cycle simulators, the logical push+pop tick count for
// the untimed models (core, pifo).
func TestMetricsSnapshotInvariants_Sojourn(t *testing.T) {
	type sojournProbe interface {
		Instrument(*bmw.MetricsRegistry, string)
		SojournSnapshot() bmw.QuantileSnapshot
	}
	type sojournCase struct {
		q sojournProbe
		// run drives ~ops operations and returns the clock bound the
		// max sojourn must respect.
		run func(rng *rand.Rand, ops int) uint64
	}

	softRun := func(push func(bmw.Element) error, pop func() (bmw.Element, error)) func(*rand.Rand, int) uint64 {
		return func(rng *rand.Rand, ops int) uint64 {
			var pushes, pops uint64
			for i := 0; i < ops; i++ {
				if rng.Intn(3) != 0 {
					if push(bmw.Element{Value: uint64(rng.Intn(512))}) == nil {
						pushes++
					}
				} else if _, err := pop(); err == nil {
					pops++
				}
			}
			return pushes + pops
		}
	}
	simRun := func(s bmw.CycleSim) func(*rand.Rand, int) uint64 {
		return func(rng *rand.Rand, ops int) uint64 {
			for i := 0; i < ops; i++ {
				switch {
				case s.PushAvailable() && !s.AlmostFull() && rng.Intn(3) != 0:
					s.Tick(bmw.PushOp(uint64(rng.Intn(512)), 0))
				case s.PopAvailable() && s.Len() > 0:
					s.Tick(bmw.PopOp())
				default:
					s.Tick(bmw.NopOp())
				}
			}
			return s.Cycle()
		}
	}

	tree := bmw.NewBMWTree(2, 4)
	pf := bmw.NewPIFO(30)
	rb := bmw.NewRBMWSim(2, 4)
	rp := bmw.NewRPUBMWSim(2, 4)
	cases := map[string]sojournCase{
		"bmwtree": {tree, softRun(tree.Push, tree.Pop)},
		"pifo":    {pf, softRun(pf.Push, pf.Pop)},
		"rbmw":    {rb, simRun(rb)},
		"rpubmw":  {rp, simRun(rp)},
	}

	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			reg := bmw.NewMetricsRegistry()
			tc.q.Instrument(reg, name)
			clock := tc.run(rand.New(rand.NewSource(11)), 4000)

			snap := reg.Snapshot()
			pops := snap.Counter(name + "_pops_total")
			if pops == 0 {
				t.Fatal("workload performed no pops")
			}
			soj := snap.Quantile(name + "_sojourn_cycles")
			if soj.Count != pops {
				t.Fatalf("sojourn observations %d != pops %d", soj.Count, pops)
			}
			if direct := tc.q.SojournSnapshot(); direct.Count != soj.Count {
				t.Fatalf("SojournSnapshot count %d != registry snapshot count %d", direct.Count, soj.Count)
			}
			if soj.Max > clock {
				t.Fatalf("max sojourn %d exceeds elapsed clock %d", soj.Max, clock)
			}
			if soj.Min > soj.Max || soj.P50 > soj.P999 {
				t.Fatalf("snapshot not ordered: min=%d max=%d p50=%d p999=%d", soj.Min, soj.Max, soj.P50, soj.P999)
			}
		})
	}
}

// TestRestoredQueueSojournContract extends the sojourn contract across a
// checkpoint/restore cycle: after bmw.Restore into an instrumented
// fresh queue, every pop still contributes exactly one sojourn
// observation, and no recovered element reports a sojourn longer than
// the restored clock — recovered elements carry their persisted born
// tags (or are re-tagged at the recovery clock), never garbage.
func TestRestoredQueueSojournContract(t *testing.T) {
	const name = "restored"

	// base reads the pops counter a restore has just re-established:
	// the counter callbacks read the queue's restored totals, so the
	// pre-crash pops reappear immediately, before any new observation.
	base := func(reg *bmw.MetricsRegistry) uint64 {
		return reg.Snapshot().Counter(name + "_pops_total")
	}
	// checkSojourn asserts the accounting identities: the counter grew
	// by exactly the drained pops, the sojourn histogram (which only
	// observes live pops) recorded exactly one sample per drained pop,
	// and no recovered element claims to have waited longer than the
	// restored clock has run.
	checkSojourn := func(t *testing.T, reg *bmw.MetricsRegistry, restored, pops, clock uint64) {
		t.Helper()
		if pops == 0 {
			t.Fatal("restored queue drained no elements; test is vacuous")
		}
		snap := reg.Snapshot()
		if got := snap.Counter(name + "_pops_total"); got != restored+pops {
			t.Fatalf("pops_total = %d, want restored %d + drained %d", got, restored, pops)
		}
		soj := snap.Quantile(name + "_sojourn_cycles")
		if soj.Count != pops {
			t.Fatalf("sojourn observations %d != successful pops %d", soj.Count, pops)
		}
		if soj.Max > clock {
			t.Fatalf("max sojourn %d exceeds restored clock %d", soj.Max, clock)
		}
	}

	t.Run("bmwtree", func(t *testing.T) {
		dir := t.TempDir()
		a := bmw.NewBMWTree(2, 4)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 400; i++ {
			if rng.Intn(3) != 0 {
				a.Push(bmw.Element{Value: uint64(rng.Intn(512)), Meta: uint64(i)})
			} else {
				a.Pop()
			}
		}
		if err := bmw.Checkpoint(dir, a); err != nil {
			t.Fatal(err)
		}

		b := bmw.NewBMWTree(2, 4)
		reg := bmw.NewMetricsRegistry()
		b.Instrument(reg, name)
		rep, err := bmw.Restore(dir, b)
		if err != nil {
			t.Fatal(err)
		}
		if rep.SnapshotSeq == 0 {
			t.Fatal("restore fell back to genesis replay; no snapshot restored")
		}
		if b.Len() != a.Len() {
			t.Fatalf("restored %d elements, want %d", b.Len(), a.Len())
		}
		restored := base(reg)
		var pops uint64
		for b.Len() > 0 {
			if _, err := b.Pop(); err != nil {
				t.Fatal(err)
			}
			pops++
		}
		p, q := b.OpStats()
		checkSojourn(t, reg, restored, pops, p+q)
	})

	t.Run("pifo", func(t *testing.T) {
		dir := t.TempDir()
		a := bmw.NewPIFO(30)
		rega := bmw.NewMetricsRegistry()
		a.Instrument(rega, name) // instrumented source: born tags persist
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 300; i++ {
			if rng.Intn(3) != 0 {
				a.Push(bmw.Element{Value: uint64(rng.Intn(512)), Meta: uint64(i)})
			} else {
				a.Pop()
			}
		}
		if err := bmw.Checkpoint(dir, a); err != nil {
			t.Fatal(err)
		}

		b := bmw.NewPIFO(30)
		reg := bmw.NewMetricsRegistry()
		b.Instrument(reg, name)
		if _, err := bmw.Restore(dir, b); err != nil {
			t.Fatal(err)
		}
		restored := base(reg)
		var pops uint64
		for b.Len() > 0 {
			if _, err := b.Pop(); err != nil {
				t.Fatal(err)
			}
			pops++
		}
		p, q := b.Stats()
		checkSojourn(t, reg, restored, pops, p+q)
	})

	t.Run("rbmw", func(t *testing.T) {
		dir := t.TempDir()
		a := bmw.NewRBMWSim(2, 4)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 600; i++ {
			switch {
			case a.PushAvailable() && !a.AlmostFull() && rng.Intn(3) != 0:
				a.Tick(bmw.PushOp(uint64(rng.Intn(512)), uint64(i)))
			case a.PopAvailable() && a.Len() > 0:
				a.Tick(bmw.PopOp())
			default:
				a.Tick(bmw.NopOp())
			}
		}
		for !a.Quiescent() {
			a.Tick(bmw.NopOp())
		}
		if err := bmw.Checkpoint(dir, a); err != nil {
			t.Fatal(err)
		}

		b := bmw.NewRBMWSim(2, 4)
		reg := bmw.NewMetricsRegistry()
		b.Instrument(reg, name)
		if _, err := bmw.Restore(dir, b); err != nil {
			t.Fatal(err)
		}
		restored := base(reg)
		pops := uint64(len(b.Drain()))
		checkSojourn(t, reg, restored, pops, b.Cycle())
	})

	t.Run("rpubmw", func(t *testing.T) {
		dir := t.TempDir()
		a := bmw.NewRPUBMWSim(2, 4)
		rng := rand.New(rand.NewSource(6))
		for i := 0; i < 600; i++ {
			switch {
			case a.PushAvailable() && !a.AlmostFull() && rng.Intn(3) != 0:
				a.Tick(bmw.PushOp(uint64(rng.Intn(512)), uint64(i)))
			case a.PopAvailable() && a.Len() > 0 && rng.Intn(4) == 0:
				a.Tick(bmw.PopOp())
			default:
				a.Tick(bmw.NopOp())
			}
		}
		for !a.Quiescent() {
			a.Tick(bmw.NopOp())
		}
		if err := bmw.Checkpoint(dir, a); err != nil {
			t.Fatal(err)
		}

		b := bmw.NewRPUBMWSim(2, 4)
		reg := bmw.NewMetricsRegistry()
		b.Instrument(reg, name)
		if _, err := bmw.Restore(dir, b); err != nil {
			t.Fatal(err)
		}
		restored := base(reg)
		pops := uint64(len(b.Drain()))
		checkSojourn(t, reg, restored, pops, b.Cycle())
	})
}
