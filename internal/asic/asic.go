// Package asic models the GlobalFoundries 28 nm (GF28) synthesis
// results of Section 6.3 of the paper (Table 4). It substitutes for the
// Design Compiler flow with calibrated analytical models.
//
// Memory placement follows the paper exactly: to keep chip pins simple,
// only the two deepest levels (SRAM_{L-1} and SRAM_L) go to off-chip
// memory; SRAM_2..SRAM_{L-2} stay on chip, built from scattered LUT-like
// storage. The root lives in the first RPU's registers.
//
// The off-chip memory requirement is computed exactly from first
// principles: elements in the two deepest levels times the element
// width (16-bit value + 32-bit metadata + 10-bit counter = 58 bits),
// which reproduces the paper's 0.57 MB (8-4) and 0.25 MB (5-8) figures.
//
// Chip area and power use two-term linear models — per-RPU logic
// (proportional to M*L) plus on-chip element storage — fitted to the
// two RPU-BMW rows of Table 4:
//
//	area  = 4.60e-4 mm^2 * M * L + 1.884e-4 mm^2 * onChipElements
//	power = 0.06796 mW   * M * L + 6.626e-4 mW   * onChipElements
//
// which reproduce 1.043 mm^2 / 5.79 mW (8-4) and 0.127 mm^2 / 3.10 mW
// (5-8). PIFO's per-element area is calibrated from its Table 4 row
// (0.404 mm^2 at 1024 entries). The total chip area of 200 mm^2 matches
// the paper's setting for percentage figures.
package asic

import (
	"fmt"

	"repro/internal/core"
)

// Element width in bits: 16-bit rank + 32-bit metadata + 10-bit
// counter (wide enough for the per-level sub-tree sizes the paper's
// configurations need off chip).
const (
	ValueBits   = 16
	MetaBits    = 32
	CounterBits = 10
	ElemBits    = ValueBits + MetaBits + CounterBits
)

// TotalChipAreaMM2 is the reference switch-chip area used for the
// percentage column of Table 4.
const TotalChipAreaMM2 = 200.0

// Calibrated model constants (see package comment).
const (
	rpuAreaPerWayLevel  = 4.60e-4  // mm^2 per (M*L)
	areaPerOnChipElem   = 1.884e-4 // mm^2 per on-chip element
	powerPerWayLevel    = 0.06796  // mW per (M*L)
	powerPerOnChipElem  = 6.626e-4 // mW per on-chip element
	pifoAreaPerElem     = 3.945e-4 // mm^2 per entry (0.404 mm^2 / 1024)
	sramCeilingMHz      = 800.0    // external SRAM speed (Section 6.3)
	rpuBMWTimingMHz     = 600.0    // RPU-BMW closes timing at 600 MHz
	pifoMaxTimingElems  = 1024     // PIFO meets 600 MHz only at small scale
	pushPopCyclesRPUBMW = 3
)

// Report is the ASIC-synthesis-style summary for one design point.
type Report struct {
	Design   string
	M, L     int
	Capacity int

	MeetsTiming600 bool
	AreaMM2        float64
	AreaPct        float64
	OffChipMB      float64
	PowerMW        float64

	// Mpps is the scheduling rate at 600 MHz: a push-pop pair costs 3
	// cycles on RPU-BMW, so 600 MHz yields 200 Mpps (Section 6.3).
	Mpps float64
}

// GbpsAt returns the line rate at the report's scheduling rate with the
// given average packet size in bytes.
func (r Report) GbpsAt(pktBytes int) float64 {
	return r.Mpps * 1e6 * float64(pktBytes) * 8 / 1e9
}

// String formats the report like a Table 4 row.
func (r Report) String() string {
	return fmt.Sprintf("%-8s M=%d L=%d cap=%6d timing@600MHz=%v area=%.3f mm^2 (%.3f%%) off-chip=%.2f MB power=%.2f mW",
		r.Design, r.M, r.L, r.Capacity, r.MeetsTiming600, r.AreaMM2, r.AreaPct, r.OffChipMB, r.PowerMW)
}

// elemsAtLevel returns the number of element slots at 1-based level l of
// an order-m tree (m^l).
func elemsAtLevel(m, l int) int {
	n := 1
	for i := 0; i < l; i++ {
		n *= m
	}
	return n
}

// OnChipElements returns the element slots kept on chip: levels 2
// through L-2 (the root is in registers and the two deepest levels are
// off chip). Trees with L <= 3 keep nothing in on-chip SRAM.
func OnChipElements(m, l int) int {
	total := 0
	for lvl := 2; lvl <= l-2; lvl++ {
		total += elemsAtLevel(m, lvl)
	}
	return total
}

// OffChipElements returns the element slots in the two deepest levels
// (L-1 and L), stored in external SRAM. For L == 1 there is nothing
// below the root.
func OffChipElements(m, l int) int {
	if l < 2 {
		return 0
	}
	total := elemsAtLevel(m, l)
	if l >= 3 {
		total += elemsAtLevel(m, l-1)
	}
	return total
}

// RPUBMW models an order-m, l-level RPU-BMW in the GF28 process.
func RPUBMW(m, l int) Report {
	capacity := core.Capacity(m, l)
	onChip := OnChipElements(m, l)
	offChip := OffChipElements(m, l)
	area := rpuAreaPerWayLevel*float64(m*l) + areaPerOnChipElem*float64(onChip)
	power := powerPerWayLevel*float64(m*l) + powerPerOnChipElem*float64(onChip)
	return Report{
		Design:         "RPU-BMW",
		M:              m,
		L:              l,
		Capacity:       capacity,
		MeetsTiming600: true, // Section 6.3: both configurations close 600 MHz
		AreaMM2:        area,
		AreaPct:        100 * area / TotalChipAreaMM2,
		OffChipMB:      float64(offChip) * ElemBits / 8 / (1 << 20),
		PowerMW:        power,
		Mpps:           rpuBMWTimingMHz / pushPopCyclesRPUBMW,
	}
}

// PIFO models the original PIFO in the GF28 process. Per Table 4 the
// 1024-entry PIFO closes timing at 600 MHz; the shift-register bus
// loading prevents larger capacities from doing so (the FPGA data of
// Section 6.1 shows the frequency collapse with scale).
func PIFO(capacity int) Report {
	area := pifoAreaPerElem * float64(capacity)
	meets := capacity <= pifoMaxTimingElems
	mpps := 0.0
	if meets {
		mpps = rpuBMWTimingMHz // one op per cycle
	}
	return Report{
		Design:         "PIFO",
		M:              1,
		L:              1,
		Capacity:       capacity,
		MeetsTiming600: meets,
		AreaMM2:        area,
		AreaPct:        100 * area / TotalChipAreaMM2,
		OffChipMB:      0,
		PowerMW:        0, // not reported in Table 4
		Mpps:           mpps,
	}
}

// SRAMCeilingMHz returns the external SRAM speed assumed by the paper;
// at 800 MHz the SRAMs never bottleneck a 600 MHz design.
func SRAMCeilingMHz() float64 { return sramCeilingMHz }
