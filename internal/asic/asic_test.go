package asic

import (
	"math"
	"testing"
)

func within(t *testing.T, name string, got, want, tolPct float64) {
	t.Helper()
	if math.Abs(got-want)/want*100 > tolPct {
		t.Errorf("%s = %.4f, want %.4f (±%.1f%%)", name, got, want, tolPct)
	}
}

// TestTable4RPUBMW reproduces the two RPU-BMW rows of Table 4.
func TestTable4RPUBMW(t *testing.T) {
	r := RPUBMW(4, 8)
	if r.Capacity != 87380 {
		t.Fatalf("capacity = %d", r.Capacity)
	}
	if !r.MeetsTiming600 {
		t.Error("8-4 RPU-BMW must close timing at 600 MHz")
	}
	within(t, "area", r.AreaMM2, 1.043, 2)
	within(t, "area%", r.AreaPct, 0.522, 2)
	within(t, "off-chip MB", r.OffChipMB, 0.57, 2)
	within(t, "power mW", r.PowerMW, 5.79, 2)
	within(t, "Mpps", r.Mpps, 200, 1)

	r2 := RPUBMW(8, 5)
	if r2.Capacity != 37448 {
		t.Fatalf("capacity = %d", r2.Capacity)
	}
	within(t, "area", r2.AreaMM2, 0.127, 2)
	within(t, "area%", r2.AreaPct, 0.064, 3)
	within(t, "off-chip MB", r2.OffChipMB, 0.25, 3)
	within(t, "power mW", r2.PowerMW, 3.10, 2)
}

// TestTable4PIFO reproduces the PIFO row and the paper's comparison:
// the 37k-flow 5-8 RPU-BMW is smaller than a 1k PIFO.
func TestTable4PIFO(t *testing.T) {
	p := PIFO(1024)
	within(t, "area", p.AreaMM2, 0.404, 1)
	within(t, "area%", p.AreaPct, 0.202, 1)
	if !p.MeetsTiming600 {
		t.Error("1k PIFO closes timing per Table 4")
	}
	if r := RPUBMW(8, 5); r.AreaMM2 >= p.AreaMM2 {
		t.Errorf("5-8 RPU-BMW (%.3f mm^2) should be smaller than 1k PIFO (%.3f mm^2)",
			r.AreaMM2, p.AreaMM2)
	}
	if big := PIFO(4096); big.MeetsTiming600 {
		t.Error("4k PIFO should not close 600 MHz (bus loading)")
	}
}

// TestHeadline checks the paper's headline claim: RPU-BMW is the first
// accurate PIFO supporting >80k flows at 200 Mpps, which is >800 Gbps
// at 512-byte packets.
func TestHeadline(t *testing.T) {
	r := RPUBMW(4, 8)
	if r.Capacity < 80000 {
		t.Errorf("capacity %d < 80k", r.Capacity)
	}
	if r.Mpps < 200 {
		t.Errorf("rate %.0f Mpps < 200", r.Mpps)
	}
	if g := r.GbpsAt(512); g < 800 {
		t.Errorf("line rate %.0f Gbps < 800", g)
	}
}

func TestMemorySplit(t *testing.T) {
	// 4-order, 8-level: off-chip levels 7 and 8 = 4^7 + 4^8 = 81920.
	if got := OffChipElements(4, 8); got != 81920 {
		t.Errorf("OffChipElements(4,8) = %d, want 81920", got)
	}
	// On-chip levels 2..6 = 16+64+256+1024+4096 = 5456.
	if got := OnChipElements(4, 8); got != 5456 {
		t.Errorf("OnChipElements(4,8) = %d, want 5456", got)
	}
	// Root (level 1, M elements) is in RPU registers: the three regions
	// partition the capacity.
	if got := 4 + OnChipElements(4, 8) + OffChipElements(4, 8); got != 87380 {
		t.Errorf("partition sums to %d, want 87380", got)
	}
	// Degenerate shapes.
	if OffChipElements(2, 1) != 0 {
		t.Error("single-level tree has no off-chip levels")
	}
	if OffChipElements(2, 2) != 4 {
		t.Error("two-level tree stores level 2 (m^2 elements) off chip")
	}
	if OnChipElements(2, 3) != 0 {
		t.Error("three-level tree keeps nothing in on-chip SRAM")
	}
}

func TestSRAMNotBottleneck(t *testing.T) {
	if SRAMCeilingMHz() < 600 {
		t.Error("external SRAM must sustain the 600 MHz core clock")
	}
}
