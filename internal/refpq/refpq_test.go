package refpq

import (
	"math/rand"
	"testing"
)

func TestMinAndRemove(t *testing.T) {
	q := New()
	q.Push(Entry{Value: 5, Meta: 1})
	q.Push(Entry{Value: 3, Meta: 2})
	q.Push(Entry{Value: 7, Meta: 3})
	if q.MinValue() != 3 {
		t.Fatalf("min = %d", q.MinValue())
	}
	if !q.RemoveExact(Entry{Value: 3, Meta: 2}) {
		t.Fatal("remove failed")
	}
	if q.RemoveExact(Entry{Value: 3, Meta: 2}) {
		t.Fatal("double remove succeeded")
	}
	if q.MinValue() != 5 || q.Len() != 2 {
		t.Fatalf("state after remove: min %d len %d", q.MinValue(), q.Len())
	}
}

func TestPopMinSorted(t *testing.T) {
	q := New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		q.Push(Entry{Value: uint64(rng.Intn(100)), Meta: uint64(i)})
	}
	var prev uint64
	for i := 0; q.Len() > 0; i++ {
		e := q.PopMin()
		if i > 0 && e.Value < prev {
			t.Fatal("unsorted")
		}
		prev = e.Value
	}
}

func TestDuplicatesDistinguishedByMeta(t *testing.T) {
	q := New()
	q.Push(Entry{Value: 4, Meta: 1})
	q.Push(Entry{Value: 4, Meta: 2})
	if !q.RemoveExact(Entry{Value: 4, Meta: 2}) {
		t.Fatal("exact duplicate removal failed")
	}
	if q.Len() != 1 || q.PopMin().Meta != 1 {
		t.Fatal("wrong twin removed")
	}
}
