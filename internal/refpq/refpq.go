// Package refpq provides a trivially correct priority-queue reference
// used to validate every hardware and software priority-queue
// implementation in this module. It is a plain binary min-heap over
// (value, meta) pairs with deterministic value ordering; elements with
// equal values are interchangeable, matching the PIFO model, where only
// the rank orders packets.
package refpq

import "container/heap"

// Entry is one reference element.
type Entry struct {
	Value uint64
	Meta  uint64
}

type entryHeap []Entry

func (h entryHeap) Len() int            { return len(h) }
func (h entryHeap) Less(i, j int) bool  { return h[i].Value < h[j].Value }
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) { *h = append(*h, x.(Entry)) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Queue is the reference priority queue.
type Queue struct {
	h entryHeap
}

// New returns an empty reference queue.
func New() *Queue { return &Queue{} }

// Len returns the number of stored elements.
func (q *Queue) Len() int { return len(q.h) }

// Push inserts an entry.
func (q *Queue) Push(e Entry) { heap.Push(&q.h, e) }

// MinValue returns the smallest stored value. It panics on an empty
// queue; callers check Len first.
func (q *Queue) MinValue() uint64 { return q.h[0].Value }

// PopMin removes and returns an entry with the smallest value.
func (q *Queue) PopMin() Entry { return heap.Pop(&q.h).(Entry) }

// RemoveExact removes one entry equal to e (both value and meta) and
// reports whether it was present. It is used to validate pop results that
// may legally return any element tied at the minimum value: the caller
// first checks the popped value equals MinValue, then removes the exact
// (value, meta) pair popped by the implementation under test.
func (q *Queue) RemoveExact(e Entry) bool {
	for i := range q.h {
		if q.h[i] == e {
			heap.Remove(&q.h, i)
			return true
		}
	}
	return false
}
