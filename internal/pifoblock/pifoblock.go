// Package pifoblock assembles the PIFO block of Figure 1 in the paper:
// a rank store buffering the non-head packets of each flow in FIFO
// order, in front of a flow scheduler (any priority queue from this
// module) that holds exactly one element — the head packet — per
// non-empty flow.
//
// Because packets of the same flow leave in FIFO order, only flow heads
// contend (Section 2.2): the number of flows a PIFO block supports
// equals the flow scheduler's element capacity. When a packet of a new
// flow arrives and the flow scheduler is full, the packet is dropped —
// the mechanism behind the original PIFO's 0.5%-4% loss in the paper's
// packet-level evaluation (Section 6.4).
package pifoblock

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
)

// FlowScheduler is the priority-queue contract of Section 2.3: push an
// element by rank, pop the minimum. All queue implementations in this
// module (core.Tree, pifo.PIFO, pheap.Heap, pipeheap.Heap) satisfy it.
type FlowScheduler interface {
	Push(core.Element) error
	Pop() (core.Element, error)
	Peek() (core.Element, error)
	Len() int
	Cap() int
}

// Errors reported by the block.
var (
	// ErrSchedulerFull: a new flow arrived while the flow scheduler was
	// at capacity; its packet is dropped.
	ErrSchedulerFull = errors.New("pifoblock: flow scheduler full, packet dropped")
	// ErrStoreFull: the rank store reached its buffer limit.
	ErrStoreFull = errors.New("pifoblock: rank store full, packet dropped")
	// ErrEmpty: dequeue on an empty block.
	ErrEmpty = errors.New("pifoblock: empty")
	// ErrNotEligible: the head packet's rank is in the future
	// (non-work-conserving dequeue).
	ErrNotEligible = errors.New("pifoblock: head not eligible yet")
)

// entry is one buffered packet: its precomputed rank, ranker metadata,
// and the caller's opaque payload.
type entry struct {
	rank    uint64
	pkt     sched.Packet
	payload any
}

// Stats counts the block's activity.
type Stats struct {
	Enqueued       uint64
	Dequeued       uint64
	DropsScheduler uint64 // new flow, scheduler full
	DropsStore     uint64 // rank store buffer full
}

// Block is a PIFO block: rank store + flow scheduler + rank function.
type Block struct {
	flowSched FlowScheduler
	ranker    sched.Ranker

	// head holds the packet currently represented in the flow
	// scheduler for each active flow; queues holds the flow's non-head
	// packets in FIFO order (the rank store).
	head   map[uint32]entry
	queues map[uint32][]entry

	// StoreLimit bounds the total number of packets in the rank store
	// (0 = unlimited). It models the SRAM buffer of Figure 1.
	StoreLimit int
	storeLen   int

	stats Stats
}

// New creates a PIFO block over the given flow scheduler and ranker.
func New(fs FlowScheduler, r sched.Ranker) *Block {
	return &Block{
		flowSched: fs,
		ranker:    r,
		head:      make(map[uint32]entry),
		queues:    make(map[uint32][]entry),
	}
}

// Len returns the total number of buffered packets (scheduler heads +
// rank store).
func (b *Block) Len() int { return b.flowSched.Len() + b.storeLen }

// ActiveFlows returns the number of flows with a head packet in the
// flow scheduler.
func (b *Block) ActiveFlows() int { return b.flowSched.Len() }

// FlowCapacity returns the maximum number of concurrent flows: the flow
// scheduler's element capacity (Section 2.2).
func (b *Block) FlowCapacity() int { return b.flowSched.Cap() }

// Stats returns a snapshot of the block's counters.
func (b *Block) Stats() Stats { return b.stats }

// Enqueue admits a packet: the rank is computed by the rank function;
// the packet either becomes its flow's head (entering the flow
// scheduler) or waits in the rank store. The two push cases of Figure 1:
// a head packet of a newly non-empty flow bypasses the rank store; a
// non-head packet waits in the store until its flow's head departs.
func (b *Block) Enqueue(p sched.Packet, payload any) error {
	if _, active := b.head[p.Flow]; active {
		if b.StoreLimit > 0 && b.storeLen >= b.StoreLimit {
			b.stats.DropsStore++
			return ErrStoreFull
		}
		rank := b.ranker.Rank(p)
		b.queues[p.Flow] = append(b.queues[p.Flow], entry{rank: rank, pkt: p, payload: payload})
		b.storeLen++
		b.stats.Enqueued++
		return nil
	}
	// New head: needs a slot in the flow scheduler.
	if b.flowSched.Len() >= b.flowSched.Cap() {
		b.stats.DropsScheduler++
		return ErrSchedulerFull
	}
	rank := b.ranker.Rank(p)
	if err := b.flowSched.Push(core.Element{Value: rank, Meta: uint64(p.Flow)}); err != nil {
		// Cap was checked above; a failure here is a broken scheduler.
		panic(fmt.Sprintf("pifoblock: scheduler push failed below capacity: %v", err))
	}
	b.head[p.Flow] = entry{rank: rank, pkt: p, payload: payload}
	b.stats.Enqueued++
	return nil
}

// Dequeue pops the packet with the smallest rank and promotes the
// flow's next packet from the rank store into the flow scheduler (the
// pop case of Figure 1).
func (b *Block) Dequeue() (sched.Packet, any, error) {
	return b.dequeue(0, false)
}

// DequeueEligible pops the minimum-rank packet only if its rank is <=
// now — the non-work-conserving discipline for shaping rank functions
// (ranks are departure times). It returns ErrNotEligible when the head
// must still wait.
func (b *Block) DequeueEligible(now uint64) (sched.Packet, any, error) {
	return b.dequeue(now, true)
}

// PeekRank returns the smallest rank currently schedulable.
func (b *Block) PeekRank() (uint64, error) {
	e, err := b.flowSched.Peek()
	if err != nil {
		return 0, ErrEmpty
	}
	return e.Value, nil
}

func (b *Block) dequeue(now uint64, gated bool) (sched.Packet, any, error) {
	if gated {
		e, err := b.flowSched.Peek()
		if err != nil {
			return sched.Packet{}, nil, ErrEmpty
		}
		if e.Value > now {
			return sched.Packet{}, nil, ErrNotEligible
		}
	}
	e, err := b.flowSched.Pop()
	if err != nil {
		return sched.Packet{}, nil, ErrEmpty
	}
	flow := uint32(e.Meta)
	head, ok := b.head[flow]
	if !ok {
		panic(fmt.Sprintf("pifoblock: scheduler popped unknown flow %d", flow))
	}
	if head.rank != e.Value {
		panic(fmt.Sprintf("pifoblock: rank skew for flow %d: head %d, scheduler %d", flow, head.rank, e.Value))
	}
	b.ranker.OnDequeue(head.pkt, head.rank)

	if q := b.queues[flow]; len(q) > 0 {
		next := q[0]
		switch {
		case len(q) == 1:
			delete(b.queues, flow)
		case cap(q) > 64 && 4*len(q) < cap(q):
			// Compact: a long-lived flow's FIFO slice would otherwise pin
			// its high-water-mark backing array forever.
			b.queues[flow] = append([]entry(nil), q[1:]...)
		default:
			b.queues[flow] = q[1:]
		}
		b.storeLen--
		b.head[flow] = next
		if err := b.flowSched.Push(core.Element{Value: next.rank, Meta: uint64(flow)}); err != nil {
			panic(fmt.Sprintf("pifoblock: head promotion failed: %v", err))
		}
	} else {
		delete(b.head, flow)
	}
	b.stats.Dequeued++
	return head.pkt, head.payload, nil
}
