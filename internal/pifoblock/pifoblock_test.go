package pifoblock

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/pifo"
	"repro/internal/sched"
)

func newBlock(capacity int) *Block {
	return New(core.New(2, levelsFor(capacity)), sched.FCFS{})
}

// levelsFor returns the smallest 2-order tree depth with at least n
// elements.
func levelsFor(n int) int {
	l := 1
	for core.Capacity(2, l) < n {
		l++
	}
	return l
}

func TestHeadOnlyInScheduler(t *testing.T) {
	b := newBlock(16)
	// Three packets of one flow: one head in the scheduler, two stored.
	for i := 0; i < 3; i++ {
		if err := b.Enqueue(sched.Packet{Flow: 1, Arrival: uint64(i)}, i); err != nil {
			t.Fatal(err)
		}
	}
	if b.ActiveFlows() != 1 {
		t.Fatalf("ActiveFlows = %d, want 1 (only the head contends)", b.ActiveFlows())
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	// FIFO within the flow.
	for i := 0; i < 3; i++ {
		_, payload, err := b.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		if payload.(int) != i {
			t.Fatalf("dequeued payload %v, want %d (FIFO within flow)", payload, i)
		}
	}
	if _, _, err := b.Dequeue(); err != ErrEmpty {
		t.Fatalf("dequeue empty = %v", err)
	}
}

// TestFigure1Example replays the worked example of Figure 1: p(A,0)
// pops; the new head of flow A, p(A,2), is promoted from the rank store
// and lands between p(B,1) and p(C,3); a packet of a previously empty
// flow D bypasses the rank store.
func TestFigure1Example(t *testing.T) {
	b := New(pifo.New(16), sched.FCFS{})
	// FCFS ranks = Arrival; use Arrival to encode the figure's ranks.
	mustEnq := func(flow uint32, rank uint64, name string) {
		if err := b.Enqueue(sched.Packet{Flow: flow, Arrival: rank}, name); err != nil {
			t.Fatal(err)
		}
	}
	mustEnq(1, 0, "p(A,0)")
	mustEnq(2, 1, "p(B,1)")
	mustEnq(3, 3, "p(C,3)")
	mustEnq(1, 2, "p(A,2)") // non-head of A: waits in the rank store
	if b.ActiveFlows() != 3 {
		t.Fatalf("ActiveFlows = %d, want 3", b.ActiveFlows())
	}

	_, name, err := b.Dequeue()
	if err != nil || name.(string) != "p(A,0)" {
		t.Fatalf("first pop = %v, %v", name, err)
	}
	// p(A,2) must now be in the scheduler between p(B,1) and p(C,3).
	mustEnq(4, 4, "p(D,4)") // flow D goes empty -> non-empty: bypasses store
	want := []string{"p(B,1)", "p(A,2)", "p(C,3)", "p(D,4)"}
	for _, w := range want {
		_, name, err := b.Dequeue()
		if err != nil || name.(string) != w {
			t.Fatalf("pop = %v, %v; want %s", name, err, w)
		}
	}
}

// TestSchedulerFullDropsNewFlows reproduces the loss mechanism of the
// packet-level evaluation: when more flows are active than the flow
// scheduler supports, packets of new flows are dropped, while packets
// of already-active flows are still buffered.
func TestSchedulerFullDropsNewFlows(t *testing.T) {
	b := newBlock(6) // 2-order, 2-level tree: 6 flows max
	for f := uint32(1); f <= 6; f++ {
		if err := b.Enqueue(sched.Packet{Flow: f, Arrival: uint64(f)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Enqueue(sched.Packet{Flow: 7, Arrival: 100}, nil); err != ErrSchedulerFull {
		t.Fatalf("7th flow = %v, want ErrSchedulerFull", err)
	}
	// An active flow's packet is still accepted into the rank store.
	if err := b.Enqueue(sched.Packet{Flow: 3, Arrival: 200}, nil); err != nil {
		t.Fatalf("active flow packet rejected: %v", err)
	}
	st := b.Stats()
	if st.DropsScheduler != 1 {
		t.Fatalf("DropsScheduler = %d", st.DropsScheduler)
	}
	// Draining one flow frees a slot for flow 7.
	if _, _, err := b.Dequeue(); err != nil {
		t.Fatal(err)
	}
	// Flow 1 had a single packet, so its slot is free now.
	if err := b.Enqueue(sched.Packet{Flow: 7, Arrival: 300}, nil); err != nil {
		t.Fatalf("flow 7 after drain: %v", err)
	}
}

func TestStoreLimit(t *testing.T) {
	b := newBlock(16)
	b.StoreLimit = 2
	for i := 0; i < 4; i++ {
		err := b.Enqueue(sched.Packet{Flow: 1, Arrival: uint64(i)}, i)
		if i < 3 && err != nil { // head + 2 stored
			t.Fatalf("packet %d: %v", i, err)
		}
		if i == 3 && err != ErrStoreFull {
			t.Fatalf("packet 3 = %v, want ErrStoreFull", err)
		}
	}
	if b.Stats().DropsStore != 1 {
		t.Fatalf("DropsStore = %d", b.Stats().DropsStore)
	}
}

// TestSTFQOverPIFOBlock runs STFQ over the block and verifies fair
// interleaving: two backlogged flows with equal weights alternate on
// the wire.
func TestSTFQOverPIFOBlock(t *testing.T) {
	b := New(core.New(2, 4), sched.NewSTFQ(1))
	for i := 0; i < 10; i++ {
		if err := b.Enqueue(sched.Packet{Flow: 1, Bytes: 1000}, nil); err != nil {
			t.Fatal(err)
		}
		if err := b.Enqueue(sched.Packet{Flow: 2, Bytes: 1000}, nil); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[uint32]int{}
	var lastFlow uint32
	alternations := 0
	for i := 0; i < 20; i++ {
		p, _, err := b.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		counts[p.Flow]++
		if i > 0 && p.Flow != lastFlow {
			alternations++
		}
		lastFlow = p.Flow
	}
	if counts[1] != 10 || counts[2] != 10 {
		t.Fatalf("unfair dequeue: %v", counts)
	}
	if alternations < 15 {
		t.Fatalf("flows did not interleave: %d alternations", alternations)
	}
}

// TestNonWorkConservingDequeue drives a token-bucket shaper through the
// block: DequeueEligible releases packets only at their eligible times.
func TestNonWorkConservingDequeue(t *testing.T) {
	tb := sched.NewTokenBucket(1000, 0) // 1000 B/s, no burst
	b := New(core.New(2, 3), tb)
	for i := 0; i < 3; i++ {
		if err := b.Enqueue(sched.Packet{Flow: 1, Bytes: 1000, Arrival: 0}, i); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := b.DequeueEligible(0); err != nil {
		t.Fatalf("first packet should be eligible at 0: %v", err)
	}
	if _, _, err := b.DequeueEligible(5e8); err != ErrNotEligible {
		t.Fatalf("second packet at t=0.5s = %v, want ErrNotEligible", err)
	}
	if _, _, err := b.DequeueEligible(1e9); err != nil {
		t.Fatalf("second packet at t=1s: %v", err)
	}
	r, err := b.PeekRank()
	if err != nil || r != 2e9 {
		t.Fatalf("PeekRank = %d,%v want 2e9", r, err)
	}
}

// TestRandomManyFlows stress-tests promotion bookkeeping across many
// flows and validates global rank order of the dequeue sequence given
// FCFS ranks and per-flow FIFO arrival.
func TestRandomManyFlows(t *testing.T) {
	b := New(core.New(4, 4), sched.FCFS{})
	rng := rand.New(rand.NewSource(77))
	arrival := uint64(0)
	inFlight := 0
	for step := 0; step < 20000; step++ {
		if inFlight == 0 || (rng.Intn(2) == 0 && b.ActiveFlows() < b.FlowCapacity()) {
			arrival++
			f := uint32(rng.Intn(100))
			err := b.Enqueue(sched.Packet{Flow: f, Arrival: arrival}, nil)
			if err == ErrSchedulerFull {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			inFlight++
		} else {
			_, _, err := b.Dequeue()
			if err != nil {
				t.Fatal(err)
			}
			inFlight--
		}
	}
	// Drain and verify per-flow FIFO by arrival.
	lastPerFlow := map[uint32]uint64{}
	for {
		p, _, err := b.Dequeue()
		if err == ErrEmpty {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if last, ok := lastPerFlow[p.Flow]; ok && p.Arrival < last {
			t.Fatalf("flow %d out of FIFO order", p.Flow)
		}
		lastPerFlow[p.Flow] = p.Arrival
	}
}

func TestPeekRankEmpty(t *testing.T) {
	b := newBlock(4)
	if _, err := b.PeekRank(); err != ErrEmpty {
		t.Fatalf("PeekRank empty = %v", err)
	}
	if _, _, err := b.DequeueEligible(0); err != ErrEmpty {
		t.Fatalf("DequeueEligible empty = %v", err)
	}
}
