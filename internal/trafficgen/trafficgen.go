// Package trafficgen generates the workload of the paper's packet-level
// evaluation (Section 6.4): TCP flows whose sizes follow the empirical
// web-search flow-size distribution measured in a production data
// center (Alizadeh et al. — the paper's reference [39]), with flow
// start times forming a Poisson process and each flow initiating on a
// random source host.
//
// Substitution note (see DESIGN.md): the original trace is proprietary;
// we embed the published CDF that the pFabric/DCTCP line of work uses
// to reproduce it and sample by inverse transform with piecewise-linear
// interpolation.
package trafficgen

import (
	"math"
	"math/rand"
)

// cdfPoint is one knot of the empirical distribution.
type cdfPoint struct {
	bytes float64
	cdf   float64
}

// webSearchCDF is the data-center web-search flow-size distribution:
// ~53% of flows are under 100 KB, while the ~3% of flows above 10 MB
// carry most of the bytes (heavy tail).
var webSearchCDF = []cdfPoint{
	{0, 0},
	{10e3, 0.15},
	{20e3, 0.20},
	{30e3, 0.30},
	{50e3, 0.40},
	{80e3, 0.53},
	{200e3, 0.60},
	{1e6, 0.70},
	{2e6, 0.80},
	{5e6, 0.90},
	{10e6, 0.97},
	{30e6, 1.00},
}

// dataMiningCDF is the companion data-mining flow-size distribution
// from the same measurement literature (pFabric): ~80% of flows are
// tiny (under 10 kB) while a <2% tail of multi-hundred-megabyte flows
// carries nearly all bytes — an even heavier tail than web-search.
var dataMiningCDF = []cdfPoint{
	{0, 0},
	{180, 0.10},
	{216, 0.20},
	{560, 0.30},
	{900, 0.40},
	{1100, 0.50},
	{1870, 0.60},
	{3160, 0.70},
	{10e3, 0.80},
	{400e3, 0.90},
	{3.16e6, 0.95},
	{100e6, 0.98},
	{667e6, 1.00},
}

// Distribution selects a flow-size law.
type Distribution int

// The embedded empirical distributions.
const (
	WebSearchDist Distribution = iota
	DataMiningDist
)

func (d Distribution) table() []cdfPoint {
	switch d {
	case WebSearchDist:
		return webSearchCDF
	case DataMiningDist:
		return dataMiningCDF
	default:
		panic("trafficgen: unknown distribution")
	}
}

// String names the distribution.
func (d Distribution) String() string {
	switch d {
	case WebSearchDist:
		return "websearch"
	case DataMiningDist:
		return "datamining"
	default:
		return "unknown"
	}
}

// Sampler draws flow sizes from an embedded empirical distribution by
// inverse transform with piecewise-linear interpolation.
type Sampler struct {
	rng  *rand.Rand
	dist []cdfPoint
}

// NewSampler creates a deterministic sampler for the distribution.
func NewSampler(seed int64, d Distribution) *Sampler {
	return &Sampler{rng: rand.New(rand.NewSource(seed)), dist: d.table()}
}

// WebSearch samples flow sizes from the web-search distribution.
// (Retained name; equivalent to NewSampler(seed, WebSearchDist).)
type WebSearch = Sampler

// NewWebSearch creates a web-search sampler with its own deterministic
// source.
func NewWebSearch(seed int64) *WebSearch { return NewSampler(seed, WebSearchDist) }

// Sample draws one flow size in bytes (at least 1).
func (w *Sampler) Sample() uint64 {
	u := w.rng.Float64()
	for i := 1; i < len(w.dist); i++ {
		lo, hi := w.dist[i-1], w.dist[i]
		if u <= hi.cdf {
			frac := (u - lo.cdf) / (hi.cdf - lo.cdf)
			b := lo.bytes + frac*(hi.bytes-lo.bytes)
			if b < 1 {
				b = 1
			}
			return uint64(b)
		}
	}
	return uint64(w.dist[len(w.dist)-1].bytes)
}

// MeanBytesOf returns a distribution's analytic mean (piecewise-linear
// CDF => sum of segment midpoints weighted by probability mass).
func MeanBytesOf(d Distribution) float64 {
	tab := d.table()
	mean := 0.0
	for i := 1; i < len(tab); i++ {
		lo, hi := tab[i-1], tab[i]
		mean += (hi.cdf - lo.cdf) * (lo.bytes + hi.bytes) / 2
	}
	return mean
}

// MeanBytes returns the web-search distribution's analytic mean.
func MeanBytes() float64 { return MeanBytesOf(WebSearchDist) }

// CDFAt returns the web-search distribution function at x bytes
// (tests).
func CDFAt(x float64) float64 { return CDFAtOf(WebSearchDist, x) }

// CDFAtOf returns d's distribution function at x bytes.
func CDFAtOf(d Distribution, x float64) float64 {
	tab := d.table()
	if x <= 0 {
		return 0
	}
	for i := 1; i < len(tab); i++ {
		lo, hi := tab[i-1], tab[i]
		if x <= hi.bytes {
			return lo.cdf + (hi.cdf-lo.cdf)*(x-lo.bytes)/(hi.bytes-lo.bytes)
		}
	}
	return 1
}

// Poisson generates exponentially distributed inter-arrival gaps for a
// target arrival rate.
type Poisson struct {
	rng    *rand.Rand
	meanNs float64
}

// NewPoisson creates an arrival process with the given rate in flows
// per second.
func NewPoisson(seed int64, flowsPerSec float64) *Poisson {
	if flowsPerSec <= 0 {
		panic("trafficgen: arrival rate must be positive")
	}
	return &Poisson{rng: rand.New(rand.NewSource(seed)), meanNs: 1e9 / flowsPerSec}
}

// NextGapNs draws the nanoseconds until the next flow arrival.
func (p *Poisson) NextGapNs() uint64 {
	g := p.rng.ExpFloat64() * p.meanNs
	if g < 1 {
		g = 1
	}
	if g > math.MaxInt64 {
		g = math.MaxInt64
	}
	return uint64(g)
}

// RateForLoad returns the Poisson flow arrival rate (flows/sec) that
// drives a link of linkBps at the given utilisation with the
// web-search mean flow size: load = rate * meanBytes * 8 / linkBps.
func RateForLoad(load float64, linkBps uint64) float64 {
	return RateForLoadOf(WebSearchDist, load, linkBps)
}

// RateForLoadOf is RateForLoad for an arbitrary distribution.
func RateForLoadOf(d Distribution, load float64, linkBps uint64) float64 {
	if load <= 0 || load >= 1.5 {
		panic("trafficgen: load must be in (0, 1.5)")
	}
	return load * float64(linkBps) / (8 * MeanBytesOf(d))
}

// Flow is one generated flow: its start time, size, and source host.
type Flow struct {
	ID      uint32
	StartNs uint64
	Bytes   uint64
	Source  int
}

// Generate builds a deterministic flow schedule: n flows, Poisson
// arrivals at the rate that loads linkBps to the requested utilisation,
// web-search sizes, uniform-random sources among numSources hosts.
func Generate(seed int64, n int, load float64, linkBps uint64, numSources int) []Flow {
	return GenerateDist(seed, n, load, linkBps, numSources, WebSearchDist)
}

// GenerateDist is Generate with a selectable flow-size distribution.
func GenerateDist(seed int64, n int, load float64, linkBps uint64, numSources int, d Distribution) []Flow {
	sizes := NewSampler(seed, d)
	arr := NewPoisson(seed+1, RateForLoadOf(d, load, linkBps))
	src := rand.New(rand.NewSource(seed + 2))
	flows := make([]Flow, n)
	t := uint64(0)
	for i := range flows {
		t += arr.NextGapNs()
		flows[i] = Flow{
			ID:      uint32(i + 1),
			StartNs: t,
			Bytes:   sizes.Sample(),
			Source:  src.Intn(numSources),
		}
	}
	return flows
}

// GenerateIncast builds the classic data-center incast workload: one
// synchronized response of bytesPer from every one of servers sources,
// all starting at startNs (one flow per source). It is the burst
// pattern that stresses shallow buffers and motivates DCTCP.
func GenerateIncast(servers int, bytesPer uint64, startNs uint64) []Flow {
	if servers < 1 || bytesPer == 0 {
		panic("trafficgen: invalid incast parameters")
	}
	flows := make([]Flow, servers)
	for i := range flows {
		flows[i] = Flow{
			ID:      uint32(i + 1),
			StartNs: startNs,
			Bytes:   bytesPer,
			Source:  i,
		}
	}
	return flows
}
