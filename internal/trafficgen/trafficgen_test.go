package trafficgen

import (
	"math"
	"testing"
)

func TestCDFMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.0; x <= 40e6; x += 1e5 {
		c := CDFAt(x)
		if c < prev {
			t.Fatalf("CDF not monotone at %g", x)
		}
		prev = c
	}
	if CDFAt(0) != 0 || CDFAt(40e6) != 1 {
		t.Fatal("CDF endpoints wrong")
	}
}

// TestWebSearchShape verifies the distribution's defining facts: ~53%
// of flows under 80 KB, a ~3% tail above 10 MB, and the heavy tail
// carrying most bytes.
func TestWebSearchShape(t *testing.T) {
	w := NewWebSearch(42)
	const n = 200000
	var under80k, over10m int
	var total, tailBytes float64
	for i := 0; i < n; i++ {
		s := float64(w.Sample())
		total += s
		if s <= 80e3 {
			under80k++
		}
		if s > 10e6 {
			over10m++
			tailBytes += s
		}
	}
	if frac := float64(under80k) / n; math.Abs(frac-0.53) > 0.02 {
		t.Errorf("fraction under 80KB = %.3f, want ≈0.53", frac)
	}
	if frac := float64(over10m) / n; math.Abs(frac-0.03) > 0.01 {
		t.Errorf("fraction over 10MB = %.3f, want ≈0.03", frac)
	}
	if byteFrac := tailBytes / total; byteFrac < 0.3 {
		t.Errorf("tail byte share = %.3f, want heavy tail (>0.3)", byteFrac)
	}
	// Empirical mean near the analytic mean.
	if mean := total / n; math.Abs(mean-MeanBytes())/MeanBytes() > 0.05 {
		t.Errorf("empirical mean %.0f vs analytic %.0f", mean, MeanBytes())
	}
}

func TestMeanBytes(t *testing.T) {
	m := MeanBytes()
	if m < 1.5e6 || m > 2.0e6 {
		t.Errorf("mean = %.0f, want ≈1.7 MB", m)
	}
}

func TestPoissonMeanGap(t *testing.T) {
	p := NewPoisson(7, 1000) // 1000 flows/s -> mean gap 1e6 ns
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(p.NextGapNs())
	}
	mean := sum / n
	if math.Abs(mean-1e6)/1e6 > 0.02 {
		t.Errorf("mean gap = %.0f ns, want ≈1e6", mean)
	}
}

func TestRateForLoad(t *testing.T) {
	r := RateForLoad(0.8, 10e9)
	// load = rate * mean * 8 / bps
	back := r * MeanBytes() * 8 / 10e9
	if math.Abs(back-0.8) > 1e-9 {
		t.Errorf("round-trip load = %f", back)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(3, 100, 0.8, 10e9, 16)
	b := Generate(3, 100, 0.8, 10e9, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Generate not deterministic")
		}
	}
	var last uint64
	for i, f := range a {
		if f.StartNs <= last && i > 0 {
			t.Fatal("start times not strictly increasing")
		}
		last = f.StartNs
		if f.Source < 0 || f.Source >= 16 {
			t.Fatalf("source out of range: %d", f.Source)
		}
		if f.Bytes == 0 {
			t.Fatal("zero-size flow")
		}
		if f.ID != uint32(i+1) {
			t.Fatal("IDs not sequential")
		}
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero rate": func() { NewPoisson(1, 0) },
		"zero load": func() { RateForLoad(0, 1e9) },
		"huge load": func() { RateForLoad(2, 1e9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestDataMiningShape verifies the data-mining distribution's defining
// facts: ~80% of flows under 10 KB and an extremely heavy byte tail.
func TestDataMiningShape(t *testing.T) {
	s := NewSampler(42, DataMiningDist)
	const n = 200000
	var under10k int
	var total, tail float64
	for i := 0; i < n; i++ {
		v := float64(s.Sample())
		total += v
		if v <= 10e3 {
			under10k++
		}
		if v > 3.16e6 {
			tail += v
		}
	}
	if frac := float64(under10k) / n; math.Abs(frac-0.8) > 0.02 {
		t.Errorf("fraction under 10KB = %.3f, want ≈0.8", frac)
	}
	if byteFrac := tail / total; byteFrac < 0.7 {
		t.Errorf("top-5%% byte share = %.2f, want very heavy tail", byteFrac)
	}
	if mean := total / n; math.Abs(mean-MeanBytesOf(DataMiningDist))/MeanBytesOf(DataMiningDist) > 0.1 {
		t.Errorf("empirical mean %.0f vs analytic %.0f", mean, MeanBytesOf(DataMiningDist))
	}
}

func TestDistributionNames(t *testing.T) {
	if WebSearchDist.String() != "websearch" || DataMiningDist.String() != "datamining" {
		t.Fatal("names wrong")
	}
	if Distribution(9).String() != "unknown" {
		t.Fatal("unknown name wrong")
	}
}

func TestGenerateDistDataMining(t *testing.T) {
	flows := GenerateDist(7, 200, 0.8, 1e9, 8, DataMiningDist)
	if len(flows) != 200 {
		t.Fatal("count")
	}
	small := 0
	for _, f := range flows {
		if f.Bytes <= 10e3 {
			small++
		}
	}
	if small < 120 {
		t.Fatalf("only %d/200 small flows; distribution not applied", small)
	}
}
