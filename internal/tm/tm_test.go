package tm

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pifoblock"
	"repro/internal/sched"
)

func newTM(ports int, buffer, portCap uint64) *TM {
	return New(Config{
		Ports:       ports,
		BufferBytes: buffer,
		PortBytes:   portCap,
		NewScheduler: func(int) pifoblock.FlowScheduler {
			return core.New(2, 6) // 126 flows per port
		},
		NewRanker: func(int) sched.Ranker { return sched.NewSTFQ(1) },
	})
}

func TestPortIsolationOfRankState(t *testing.T) {
	tm := newTM(2, 0, 0)
	// Same flow id on two ports: independent STFQ state, independent
	// queues.
	for i := 0; i < 4; i++ {
		if err := tm.Enqueue(0, sched.Packet{Flow: 1, Bytes: 1000}, "p0"); err != nil {
			t.Fatal(err)
		}
		if err := tm.Enqueue(1, sched.Packet{Flow: 1, Bytes: 1000}, "p1"); err != nil {
			t.Fatal(err)
		}
	}
	if tm.TotalLen() != 8 {
		t.Fatalf("TotalLen = %d", tm.TotalLen())
	}
	for i := 0; i < 4; i++ {
		_, pay, err := tm.Dequeue(0)
		if err != nil || pay.(string) != "p0" {
			t.Fatalf("port 0 dequeue: %v %v", pay, err)
		}
	}
	if _, _, err := tm.Dequeue(0); err == nil {
		t.Fatal("port 0 should be empty")
	}
	if tm.Port(1).Len() != 4 {
		t.Fatal("port 1 disturbed by port 0 service")
	}
}

func TestSharedBufferBudget(t *testing.T) {
	tm := newTM(2, 5000, 0)
	// Port 0 consumes the shared buffer.
	for i := 0; i < 5; i++ {
		if err := tm.Enqueue(0, sched.Packet{Flow: uint32(i), Bytes: 1000}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := tm.Enqueue(1, sched.Packet{Flow: 9, Bytes: 1000}, nil); err != ErrBufferFull {
		t.Fatalf("over-budget enqueue = %v", err)
	}
	if tm.Stats(1).DropsBuffer != 1 {
		t.Fatal("buffer drop not counted")
	}
	// Draining port 0 frees budget for port 1.
	tm.Dequeue(0)
	if err := tm.Enqueue(1, sched.Packet{Flow: 9, Bytes: 1000}, nil); err != nil {
		t.Fatalf("enqueue after drain: %v", err)
	}
	if tm.BufferUsed() != 5000 {
		t.Fatalf("BufferUsed = %d", tm.BufferUsed())
	}
}

func TestPerPortCap(t *testing.T) {
	tm := newTM(2, 0, 2000)
	tm.Enqueue(0, sched.Packet{Flow: 1, Bytes: 1000}, nil)
	tm.Enqueue(0, sched.Packet{Flow: 2, Bytes: 1000}, nil)
	if err := tm.Enqueue(0, sched.Packet{Flow: 3, Bytes: 1000}, nil); err != ErrPortLimit {
		t.Fatalf("per-port cap = %v", err)
	}
	// The other port is unaffected.
	if err := tm.Enqueue(1, sched.Packet{Flow: 1, Bytes: 1000}, nil); err != nil {
		t.Fatal(err)
	}
	if tm.Stats(0).DropsPort != 1 {
		t.Fatal("port drop not counted")
	}
}

func TestSchedulerCapacityDropCounted(t *testing.T) {
	tm := New(Config{
		Ports:        1,
		NewScheduler: func(int) pifoblock.FlowScheduler { return core.New(2, 1) }, // 2 flows
		NewRanker:    func(int) sched.Ranker { return sched.FCFS{} },
	})
	tm.Enqueue(0, sched.Packet{Flow: 1, Arrival: 1, Bytes: 100}, nil)
	tm.Enqueue(0, sched.Packet{Flow: 2, Arrival: 2, Bytes: 100}, nil)
	if err := tm.Enqueue(0, sched.Packet{Flow: 3, Arrival: 3, Bytes: 100}, nil); err != pifoblock.ErrSchedulerFull {
		t.Fatalf("scheduler-full = %v", err)
	}
	if tm.Stats(0).DropsScheduler != 1 {
		t.Fatal("scheduler drop not counted")
	}
	// A dropped packet must not consume buffer.
	if tm.BufferUsed() != 200 {
		t.Fatalf("BufferUsed = %d", tm.BufferUsed())
	}
}

func TestHighWaterMark(t *testing.T) {
	tm := newTM(1, 0, 0)
	for i := 0; i < 3; i++ {
		tm.Enqueue(0, sched.Packet{Flow: uint32(i), Bytes: 1000}, nil)
	}
	tm.Dequeue(0)
	tm.Dequeue(0)
	st := tm.Stats(0)
	if st.BytesHighWater != 3000 || st.BytesQueued != 1000 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInvalidUsePanics(t *testing.T) {
	tm := newTM(1, 0, 0)
	for name, fn := range map[string]func(){
		"bad port enq": func() { tm.Enqueue(5, sched.Packet{}, nil) },
		"bad port deq": func() { tm.Dequeue(-1) },
		"no factories": func() { New(Config{Ports: 1}) },
		"zero ports":   func() { newTM(0, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
