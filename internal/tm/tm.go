// Package tm assembles a multi-port traffic manager around per-port
// PIFO blocks — the component the paper's conclusion positions the
// BMW-Tree for ("an attractive option for the programmable scheduler
// in the next-generation traffic managers"). Each egress port owns a
// PIFO block (rank store + flow scheduler + rank policy); all ports
// share one packet buffer with an optional per-port cap, the standard
// shared-memory switch arrangement.
package tm

import (
	"errors"
	"fmt"

	"repro/internal/pifoblock"
	"repro/internal/sched"
)

// Errors returned by the traffic manager.
var (
	ErrBufferFull = errors.New("tm: shared packet buffer exhausted")
	ErrPortLimit  = errors.New("tm: per-port buffer cap exceeded")
)

// Config parameterises the traffic manager.
type Config struct {
	Ports       int
	BufferBytes uint64 // shared buffer budget (0 = unlimited)
	PortBytes   uint64 // per-port cap within the shared buffer (0 = unlimited)

	// NewScheduler and NewRanker build each port's flow scheduler and
	// rank policy.
	NewScheduler func(port int) pifoblock.FlowScheduler
	NewRanker    func(port int) sched.Ranker
}

// PortStats counts one port's activity.
type PortStats struct {
	Enqueued, Dequeued          uint64
	DropsBuffer, DropsPort      uint64
	DropsScheduler, DropsStore  uint64
	BytesQueued, BytesHighWater uint64
}

// TM is a multi-port traffic manager.
type TM struct {
	cfg    Config
	blocks []*pifoblock.Block
	stats  []PortStats
	used   uint64
}

// New builds the traffic manager.
func New(cfg Config) *TM {
	if cfg.Ports < 1 || cfg.NewScheduler == nil || cfg.NewRanker == nil {
		panic("tm: need ports and factories")
	}
	t := &TM{cfg: cfg, stats: make([]PortStats, cfg.Ports)}
	for p := 0; p < cfg.Ports; p++ {
		t.blocks = append(t.blocks, pifoblock.New(cfg.NewScheduler(p), cfg.NewRanker(p)))
	}
	return t
}

// Ports returns the port count; BufferUsed the queued bytes.
func (t *TM) Ports() int                  { return len(t.blocks) }
func (t *TM) BufferUsed() uint64          { return t.used }
func (t *TM) Port(p int) *pifoblock.Block { return t.blocks[p] }

// Stats returns a port's counters.
func (t *TM) Stats(port int) PortStats { return t.stats[port] }

// Enqueue admits a packet for an egress port, enforcing the shared and
// per-port buffer budgets before the port's PIFO block applies its own
// flow-capacity rules.
func (t *TM) Enqueue(port int, p sched.Packet, payload any) error {
	if port < 0 || port >= len(t.blocks) {
		panic(fmt.Sprintf("tm: invalid port %d", port))
	}
	st := &t.stats[port]
	bytes := uint64(p.Bytes)
	if t.cfg.BufferBytes > 0 && t.used+bytes > t.cfg.BufferBytes {
		st.DropsBuffer++
		return ErrBufferFull
	}
	if t.cfg.PortBytes > 0 && st.BytesQueued+bytes > t.cfg.PortBytes {
		st.DropsPort++
		return ErrPortLimit
	}
	if err := t.blocks[port].Enqueue(p, payload); err != nil {
		switch err {
		case pifoblock.ErrSchedulerFull:
			st.DropsScheduler++
		case pifoblock.ErrStoreFull:
			st.DropsStore++
		}
		return err
	}
	t.used += bytes
	st.BytesQueued += bytes
	if st.BytesQueued > st.BytesHighWater {
		st.BytesHighWater = st.BytesQueued
	}
	st.Enqueued++
	return nil
}

// Dequeue serves an egress port's next packet by rank.
func (t *TM) Dequeue(port int) (sched.Packet, any, error) {
	if port < 0 || port >= len(t.blocks) {
		panic(fmt.Sprintf("tm: invalid port %d", port))
	}
	p, payload, err := t.blocks[port].Dequeue()
	if err != nil {
		return p, payload, err
	}
	st := &t.stats[port]
	t.used -= uint64(p.Bytes)
	st.BytesQueued -= uint64(p.Bytes)
	st.Dequeued++
	return p, payload, nil
}

// TotalLen returns queued packets across all ports.
func (t *TM) TotalLen() int {
	n := 0
	for _, b := range t.blocks {
		n += b.Len()
	}
	return n
}
