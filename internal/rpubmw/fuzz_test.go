package rpubmw

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hw"
)

// FuzzPipelineEquivalence interprets fuzz bytes as a legal issue
// schedule for the RPU pipeline and cross-checks every pop against the
// golden software model. Run with `go test -fuzz=FuzzPipelineEquivalence
// ./internal/rpubmw` to explore; the seed corpus runs in plain tests.
func FuzzPipelineEquivalence(f *testing.F) {
	f.Add([]byte{0x10, 0x90, 0x20, 0xA0, 0x30})
	f.Add([]byte("interleaved operations everywhere"))
	f.Add([]byte{255, 0, 255, 0, 255, 0, 255, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := New(2, 4)
		g := core.New(2, 4)
		for i, b := range data {
			var op hw.Op
			switch {
			case !s.PushAvailable():
				op = hw.NopOp() // mandatory idle after a pop
			case b&0x80 != 0 && g.Len() > 0:
				op = hw.PopOp()
			case !g.AlmostFull():
				op = hw.PushOp(uint64(b&0x7F), uint64(i))
			default:
				op = hw.NopOp()
			}
			got, err := s.Tick(op)
			if err != nil {
				t.Fatalf("tick %d (%v): %v", i, op.Kind, err)
			}
			switch op.Kind {
			case hw.Push:
				if err := g.Push(core.Element{Value: op.Value, Meta: op.Meta}); err != nil {
					t.Fatal(err)
				}
			case hw.Pop:
				want, err := g.Pop()
				if err != nil {
					t.Fatal(err)
				}
				if got == nil || *got != want {
					t.Fatalf("tick %d: sim %v golden %v", i, got, want)
				}
			}
		}
		for g.Len() > 0 {
			if !s.PopAvailable() {
				s.Tick(hw.NopOp())
				continue
			}
			want, _ := g.Pop()
			got, err := s.Tick(hw.PopOp())
			if err != nil {
				t.Fatal(err)
			}
			if *got != want {
				t.Fatalf("drain: sim %v golden %v", got, want)
			}
		}
	})
}

// FuzzRPUBMWVsCore is the protected-pipeline differential target: the
// first byte selects geometry, ECC mode, scrub cadence and the online
// checker, and the rest drives a legal issue schedule cross-checked
// against the golden model. With no faults injected every protection
// combination must be fully transparent. Run with
// `go test -fuzz=FuzzRPUBMWVsCore ./internal/rpubmw`.
func FuzzRPUBMWVsCore(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x90, 0x20, 0xA0, 0x30})
	f.Add([]byte{0x17, 255, 0, 255, 0, 255, 0, 255, 0})
	f.Add([]byte("interleaved operations everywhere"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		cfg := data[0]
		data = data[1:]
		m := 2 + int(cfg&0x03) // order 2..5
		const l = 3
		s := New(m, l)
		switch (cfg >> 2) & 0x03 {
		case 1:
			s.Protect(faultinject.EccParity, 0)
		case 2:
			s.Protect(faultinject.EccSECDED, 0)
		case 3:
			s.Protect(faultinject.EccSECDED, 2)
		}
		if cfg&0x10 != 0 {
			s.CheckEvery = 4
		}
		g := core.New(m, l)
		for i, b := range data {
			var op hw.Op
			switch {
			case !s.PushAvailable():
				op = hw.NopOp() // mandatory idle after a pop
			case b&0x80 != 0 && g.Len() > 0:
				op = hw.PopOp()
			case !g.AlmostFull():
				op = hw.PushOp(uint64(b&0x7F), uint64(i))
			default:
				op = hw.NopOp()
			}
			got, err := s.Tick(op)
			if err != nil {
				t.Fatalf("tick %d (%v): %v", i, op.Kind, err)
			}
			switch op.Kind {
			case hw.Push:
				if err := g.Push(core.Element{Value: op.Value, Meta: op.Meta}); err != nil {
					t.Fatal(err)
				}
			case hw.Pop:
				want, err := g.Pop()
				if err != nil {
					t.Fatal(err)
				}
				if got == nil || *got != want {
					t.Fatalf("tick %d: sim %v golden %v", i, got, want)
				}
			}
		}
		for g.Len() > 0 {
			if !s.PopAvailable() {
				s.Tick(hw.NopOp())
				continue
			}
			want, _ := g.Pop()
			got, err := s.Tick(hw.PopOp())
			if err != nil {
				t.Fatal(err)
			}
			if *got != want {
				t.Fatalf("drain: sim %v golden %v", got, want)
			}
		}
		if s.Detected() != 0 {
			t.Fatalf("clean run detected %d corruptions", s.Detected())
		}
	})
}
