package rpubmw

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
)

// FuzzPipelineEquivalence interprets fuzz bytes as a legal issue
// schedule for the RPU pipeline and cross-checks every pop against the
// golden software model. Run with `go test -fuzz=FuzzPipelineEquivalence
// ./internal/rpubmw` to explore; the seed corpus runs in plain tests.
func FuzzPipelineEquivalence(f *testing.F) {
	f.Add([]byte{0x10, 0x90, 0x20, 0xA0, 0x30})
	f.Add([]byte("interleaved operations everywhere"))
	f.Add([]byte{255, 0, 255, 0, 255, 0, 255, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := New(2, 4)
		g := core.New(2, 4)
		for i, b := range data {
			var op hw.Op
			switch {
			case !s.PushAvailable():
				op = hw.NopOp() // mandatory idle after a pop
			case b&0x80 != 0 && g.Len() > 0:
				op = hw.PopOp()
			case !g.AlmostFull():
				op = hw.PushOp(uint64(b&0x7F), uint64(i))
			default:
				op = hw.NopOp()
			}
			got, err := s.Tick(op)
			if err != nil {
				t.Fatalf("tick %d (%v): %v", i, op.Kind, err)
			}
			switch op.Kind {
			case hw.Push:
				if err := g.Push(core.Element{Value: op.Value, Meta: op.Meta}); err != nil {
					t.Fatal(err)
				}
			case hw.Pop:
				want, err := g.Pop()
				if err != nil {
					t.Fatal(err)
				}
				if got == nil || *got != want {
					t.Fatalf("tick %d: sim %v golden %v", i, got, want)
				}
			}
		}
		for g.Len() > 0 {
			if !s.PopAvailable() {
				s.Tick(hw.NopOp())
				continue
			}
			want, _ := g.Pop()
			got, err := s.Tick(hw.PopOp())
			if err != nil {
				t.Fatal(err)
			}
			if *got != want {
				t.Fatalf("drain: sim %v golden %v", got, want)
			}
		}
	})
}
