package rpubmw

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/treecheck"
)

func TestPushEveryCycle(t *testing.T) {
	s := New(4, 3)
	for i := 0; i < s.Cap(); i++ {
		if _, err := s.Tick(hw.PushOp(uint64(i%11), uint64(i))); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if got := s.Cycle(); got != uint64(s.Cap()) {
		t.Fatalf("pushed %d elements in %d cycles, want one per cycle", s.Cap(), got)
	}
	if !s.AlmostFull() {
		t.Fatal("almost_full not raised")
	}
	if _, err := s.Tick(hw.PushOp(0, 0)); err != core.ErrFull {
		t.Fatalf("push on full = %v", err)
	}
}

// TestIdleCycleAfterPop verifies the handshake of Section 5.2.3: both
// push_available and pop_available drop for exactly one cycle after a
// pop, so pop-push and pop-pop are rejected while push-pop is legal.
func TestIdleCycleAfterPop(t *testing.T) {
	s := New(2, 3)
	for i := 0; i < 10; i++ {
		s.Tick(hw.PushOp(uint64(i), 0))
	}
	if _, err := s.Tick(hw.PopOp()); err != nil {
		t.Fatal(err)
	}
	if s.PushAvailable() || s.PopAvailable() {
		t.Fatal("availability not dropped after pop")
	}
	if _, err := s.Tick(hw.PushOp(1, 0)); err == nil {
		t.Fatal("pop-push accepted")
	}
	if _, err := s.Tick(hw.PopOp()); err == nil {
		t.Fatal("pop-pop accepted")
	}
	s.Tick(hw.NopOp())
	if !s.PushAvailable() || !s.PopAvailable() {
		t.Fatal("availability not restored after null")
	}
	// push-pop (push immediately followed by pop) is legal.
	if _, err := s.Tick(hw.PushOp(5, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(hw.PopOp()); err != nil {
		t.Fatalf("push-pop rejected: %v", err)
	}
}

// TestPushPopThreeCycles verifies the headline RPU-BMW rate: the common
// push-pop sequence costs 3 cycles (push, pop, mandatory idle — Figure
// 7), so n pairs complete in 3n cycles.
func TestPushPopThreeCycles(t *testing.T) {
	s := New(4, 8)
	for i := 0; i < 100; i++ {
		s.Tick(hw.PushOp(uint64(i), 0))
	}
	start := s.Cycle()
	const pairs = 300
	for i := 0; i < pairs; i++ {
		if _, err := s.Tick(hw.PushOp(uint64(i%64), 0)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Tick(hw.PopOp()); err != nil {
			t.Fatal(err)
		}
		s.Tick(hw.NopOp()) // mandatory idle
	}
	if got := s.Cycle() - start; got != 3*pairs {
		t.Fatalf("%d push-pop pairs took %d cycles, want %d", pairs, got, 3*pairs)
	}
}

func TestPopEmptyAndResultTiming(t *testing.T) {
	s := New(2, 3)
	if _, err := s.Tick(hw.PopOp()); err != core.ErrEmpty {
		t.Fatalf("pop on empty = %v", err)
	}
	s.Tick(hw.PushOp(9, 3))
	c := s.Cycle()
	e, err := s.Tick(hw.PopOp())
	if err != nil || e == nil || e.Value != 9 || e.Meta != 3 {
		t.Fatalf("pop = %v, %v", e, err)
	}
	if s.Cycle() != c+1 {
		t.Fatal("pop result not combinational in the issuing cycle")
	}
}

func TestDrainSortedAndInvariants(t *testing.T) {
	s := New(4, 4)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < s.Cap(); i++ {
		if _, err := s.Tick(hw.PushOp(uint64(rng.Intn(500)), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for !s.Quiescent() {
		s.Tick(hw.NopOp())
	}
	if err := treecheck.Check(s); err != nil {
		t.Fatal(err)
	}
	out := s.Drain()
	for i := 1; i < len(out); i++ {
		if out[i].Value < out[i-1].Value {
			t.Fatalf("drain unsorted at %d", i)
		}
	}
}

// legalDriver issues the same random legal schedule to the RPU simulator
// and the golden model and asserts identical pop results.
func legalDriver(t *testing.T, m, l int, ops int, seed int64) {
	t.Helper()
	s := New(m, l)
	g := core.New(m, l)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < ops; i++ {
		var op hw.Op
		switch {
		case !s.PushAvailable():
			op = hw.NopOp() // mandatory idle after pop
		case g.Len() == 0:
			op = hw.PushOp(uint64(rng.Intn(256)), uint64(i))
		case g.AlmostFull():
			if rng.Intn(4) == 0 {
				op = hw.NopOp()
			} else {
				op = hw.PopOp()
			}
		default:
			switch rng.Intn(5) {
			case 0:
				op = hw.NopOp()
			case 1, 2:
				op = hw.PushOp(uint64(rng.Intn(256)), uint64(i))
			default:
				op = hw.PopOp()
			}
		}

		got, err := s.Tick(op)
		if err != nil {
			t.Fatalf("m=%d l=%d op %d (%v): %v", m, l, i, op.Kind, err)
		}
		switch op.Kind {
		case hw.Push:
			if err := g.Push(core.Element{Value: op.Value, Meta: op.Meta}); err != nil {
				t.Fatal(err)
			}
		case hw.Pop:
			want, err := g.Pop()
			if err != nil {
				t.Fatal(err)
			}
			if got == nil || *got != want {
				t.Fatalf("m=%d l=%d op %d: sim popped %v, golden popped %v", m, l, i, got, want)
			}
		}
		if g.Len() != s.Len() {
			t.Fatalf("m=%d l=%d op %d: size mismatch", m, l, i)
		}
	}
	for !s.Quiescent() {
		if _, err := s.Tick(hw.NopOp()); err != nil {
			t.Fatal(err)
		}
	}
	if err := treecheck.Check(s); err != nil {
		t.Fatalf("m=%d l=%d: %v", m, l, err)
	}
	for g.Len() > 0 {
		want, _ := g.Pop()
		for !s.PopAvailable() {
			s.Tick(hw.NopOp())
		}
		got, err := s.Tick(hw.PopOp())
		if err != nil {
			t.Fatal(err)
		}
		if *got != want {
			t.Fatalf("m=%d l=%d final drain: sim %v golden %v", m, l, got, want)
		}
	}
}

// TestEquivalenceWithGoldenModel: for every legal issue schedule the
// RPU+SRAM pipeline pops exactly the golden model's (value, meta) pairs.
func TestEquivalenceWithGoldenModel(t *testing.T) {
	shapes := []struct{ m, l int }{{2, 3}, {2, 7}, {2, 15}, {3, 4}, {4, 4}, {4, 8}, {8, 3}, {8, 5}}
	for i, shape := range shapes {
		ops := 5000
		if core.Capacity(shape.m, shape.l) > 20000 {
			ops = 2000
		}
		legalDriver(t, shape.m, shape.l, ops, int64(i+1))
	}
}

func TestQuickEquivalence(t *testing.T) {
	prop := func(mRaw, lRaw uint8, seed int64) bool {
		m := 2 + int(mRaw)%7
		l := 2 + int(lRaw)%4
		legalDriver(t, m, l, 800, seed)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestOperationHidingCollisions verifies that back-to-back operations
// really do exercise the write-first SRAM path: a saturated push-pop
// workload must produce read-during-write collisions (the operation
// hiding of Section 5.2.3), and the results stay correct.
func TestOperationHidingCollisions(t *testing.T) {
	s := New(2, 5)
	g := core.New(2, 5)
	for i := 0; i < 20; i++ {
		s.Tick(hw.PushOp(uint64(100+i), uint64(i)))
		g.Push(core.Element{Value: uint64(100 + i), Meta: uint64(i)})
	}
	for i := 0; i < 200; i++ {
		s.Tick(hw.PushOp(uint64(i%50), uint64(i)))
		g.Push(core.Element{Value: uint64(i % 50), Meta: uint64(i)})
		got, err := s.Tick(hw.PopOp())
		if err != nil {
			t.Fatal(err)
		}
		want, _ := g.Pop()
		if *got != want {
			t.Fatalf("step %d: %v vs %v", i, *got, want)
		}
		s.Tick(hw.NopOp())
	}
	_, _, collisions := s.RAMStats()
	if collisions == 0 {
		t.Fatal("no read-during-write collisions: operation hiding never exercised")
	}
	t.Logf("operation-hiding collisions: %d", collisions)
}

// TestPopPushHazard demonstrates the structural hazard the idle cycle
// prevents: with Strict disabled, issuing a push in the cycle right
// after a pop makes the push read a stale node (the pop's write-back is
// still pending) and collide on the SRAM write port — the simulation
// detects the double write and panics, evidencing why the paper's
// Section 5.2.3 forbids pop-push sequences.
func TestPopPushHazard(t *testing.T) {
	s := New(2, 4)
	s.Strict = false
	// Build a tree deep enough that a pop's write-back is outstanding.
	for i := 0; i < 14; i++ {
		if _, err := s.Tick(hw.PushOp(uint64(i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("pop-push sequence did not trip the SRAM hazard")
		}
	}()
	if _, err := s.Tick(hw.PopOp()); err != nil {
		t.Fatal(err)
	}
	// Illegal: push in the idle cycle. The pop is still resident in the
	// level-2 RPU; this push races it.
	s.Tick(hw.PushOp(0, 99))
	s.Tick(hw.NopOp())
	s.Tick(hw.NopOp())
	s.Tick(hw.NopOp())
}

// TestSRAMAccessPattern checks the dimensional claim of Section 5.1:
// the design uses L RPUs and L-1 SRAMs, with level i holding M^(i-1)
// nodes.
func TestSRAMAccessPattern(t *testing.T) {
	s := New(4, 6)
	if len(s.rams) != 5 {
		t.Fatalf("L-1 SRAMs: got %d, want 5", len(s.rams))
	}
	words := 4
	for i, r := range s.rams {
		if r.Words() != words {
			t.Fatalf("SRAM_%d has %d words, want %d", i+2, r.Words(), words)
		}
		words *= 4
	}
}

func TestLocate(t *testing.T) {
	s := New(2, 4)
	cases := []struct{ n, level, local int }{
		{0, 1, 0}, {1, 2, 0}, {2, 2, 1}, {3, 3, 0}, {6, 3, 3}, {7, 4, 0}, {14, 4, 7},
	}
	for _, c := range cases {
		lvl, local := s.locate(c.n)
		if lvl != c.level || local != c.local {
			t.Errorf("locate(%d) = (%d,%d), want (%d,%d)", c.n, lvl, local, c.level, c.local)
		}
	}
}

func TestMaxOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("order above MaxOrder did not panic")
		}
	}()
	New(MaxOrder+1, 2)
}

// TestPlainModeLatencies verifies the Section 5.2.1 ablation: without
// combinational logic and operation hiding, a push occupies the RPU
// interface for 3 cycles and a pop for 6, so a push-pop pair costs 9
// cycles instead of the optimised 3 — while the functional behaviour
// stays identical to the golden model.
func TestPlainModeLatencies(t *testing.T) {
	s := New(2, 5)
	s.Plain = true
	g := core.New(2, 5)
	for i := 0; i < 20; i++ {
		for !s.PushAvailable() {
			s.Tick(hw.NopOp())
		}
		if _, err := s.Tick(hw.PushOp(uint64(i*3%17), uint64(i))); err != nil {
			t.Fatal(err)
		}
		g.Push(core.Element{Value: uint64(i * 3 % 17), Meta: uint64(i)})
	}
	// A fresh push blocks the interface for two more cycles.
	if s.PushAvailable() {
		t.Fatal("plain mode: interface free right after a push")
	}
	if _, err := s.Tick(hw.PushOp(1, 1)); err == nil {
		t.Fatal("plain mode accepted a push mid-operation")
	}
	s.Tick(hw.NopOp())
	s.Tick(hw.NopOp())
	if !s.PushAvailable() {
		t.Fatal("plain mode: push latency longer than 3 cycles")
	}

	// Cycle cost of a push-pop pair at the densest legal schedule.
	start := s.Cycle()
	const pairs = 50
	for i := 0; i < pairs; i++ {
		for !s.PushAvailable() {
			s.Tick(hw.NopOp())
		}
		s.Tick(hw.PushOp(uint64(i%13), 100+uint64(i)))
		g.Push(core.Element{Value: uint64(i % 13), Meta: 100 + uint64(i)})
		for !s.PopAvailable() {
			s.Tick(hw.NopOp())
		}
		got, err := s.Tick(hw.PopOp())
		if err != nil {
			t.Fatal(err)
		}
		want, _ := g.Pop()
		if *got != want {
			t.Fatalf("plain mode mismatch: %v vs %v", got, want)
		}
	}
	// push (3) + pop (6) = 9 cycles per pair, minus the fact that the
	// last pop's tail cycles are not awaited: allow the final pair to
	// be in flight.
	perPair := float64(s.Cycle()-start) / pairs
	if perPair < 8.8 || perPair > 9.2 {
		t.Fatalf("plain push-pop pair = %.2f cycles, want ≈9 (3+6)", perPair)
	}
}
