// Snapshot/replay codec: the RPU-BMW pipeline as a persist.Checkpointable.
//
// RPU-BMW keeps most of its state in SRAM macros whose port registers
// (an issued read that has not captured, a held write) have no
// serialisable hardware representation, so snapshots are taken at
// quiescent points only — the checkpointing harnesses insert nop cycles
// until Quiescent() holds, exactly as a real controller would fence the
// pipeline before scanning state out.
//
// Protected SRAMs are persisted as their raw code words (payload chunks
// plus check bytes, uncorrected, via ECCRAM.RawWord) and the root
// parity column is stored verbatim: a latent upset sitting in the array
// at checkpoint time is still sitting there after restore, where ECC,
// parity, or the invariant checker detects it. A checkpoint never
// launders corruption.
//
// Replay nop-aligns each logged operation to its recorded cycle; the
// datapath is a deterministic function of (state, schedule), so the
// replayed machine reproduces the original registers and pop order bit
// for bit.

package rpubmw

import (
	"fmt"

	"repro/internal/faultinject"
	"repro/internal/hw"
	"repro/internal/persist"
)

// rpubmwSnapVersion is the current snapshot codec version.
const rpubmwSnapVersion = 1

// Level-image tags distinguishing how a level's SRAM was persisted.
const (
	levelPlain = 0 // unprotected SDPRAM: decoded nodes
	levelECC   = 1 // ECCRAM: raw code words, check bytes included
)

var _ persist.Checkpointable = (*Sim)(nil)

// SnapshotKind identifies RPU-BMW snapshots.
func (s *Sim) SnapshotKind() string { return "rpubmw" }

// SnapshotVersion returns the codec version EncodeSnapshot writes.
func (s *Sim) SnapshotVersion() uint32 { return rpubmwSnapVersion }

// EncodeSnapshot serialises the complete machine state. The pipeline
// must be quiescent (no lift in flight, no pending SRAM port request):
// the harness fences with nop ticks first.
func (s *Sim) EncodeSnapshot() ([]byte, error) {
	if s.faultErr != nil {
		return nil, fmt.Errorf("rpubmw: cannot snapshot a faulted machine: %w", s.faultErr)
	}
	if len(s.stranded) > 0 {
		return nil, fmt.Errorf("rpubmw: cannot snapshot with %d stranded operations (recover first)", len(s.stranded))
	}
	if !s.Quiescent() {
		return nil, fmt.Errorf("rpubmw: cannot snapshot mid-pipeline: SRAM port state is not serialisable (fence with nop ticks)")
	}
	var e persist.Enc
	e.U32(uint32(s.m))
	e.U32(uint32(s.l))
	e.Bool(s.Strict)
	e.Bool(s.Plain)
	e.Bool(s.protected)
	e.Bool(s.rootParity)
	e.U64(uint64(s.size))
	e.U64(s.cycle)
	e.Bool(s.available)
	e.U32(uint32(s.cooldown))
	e.U64(s.pushes)
	e.U64(s.pops)
	e.U64(s.detected)
	e.U64(s.recoveries)
	e.U64(s.lastCheck)
	e.U64(s.checkRuns)
	for i := 0; i < s.m; i++ {
		sl := &s.root[i]
		e.U64(sl.val)
		e.U64(sl.meta)
		e.U32(sl.count)
		e.U32(sl.born)
	}
	if s.rootParity {
		e.Bytes(s.parity[:s.m])
	}
	e.U32(uint32(len(s.rams)))
	for _, r := range s.rams {
		if er, ok := r.(*faultinject.ECCRAM[node]); ok {
			e.U8(levelECC)
			e.U8(uint8(er.Mode()))
			e.U32(uint32(er.Words()))
			chunks := 3 * s.m
			e.U32(uint32(chunks))
			for a := 0; a < er.Words(); a++ {
				data, check := er.RawWord(a)
				for _, d := range data {
					e.U64(d)
				}
				e.Bytes(check)
			}
			continue
		}
		e.U8(levelPlain)
		e.U32(uint32(r.Words()))
		for a := 0; a < r.Words(); a++ {
			nd := r.Peek(a)
			for i := 0; i < s.m; i++ {
				sl := &nd.slots[i]
				e.U64(sl.val)
				e.U64(sl.meta)
				e.U32(sl.count)
				e.U32(sl.born)
			}
		}
	}
	return e.B, nil
}

// levelImage is one level's decoded SRAM contents, held until the whole
// payload has validated against the receiver.
type levelImage struct {
	ecc   bool
	mode  faultinject.ECCMode
	words int
	plain []node     // levelPlain
	data  [][]uint64 // levelECC: raw payload chunks per word
	check [][]uint8  // levelECC: raw check bytes per word
}

// RestoreSnapshot loads a payload into the receiver, which must have
// the same shape and the same protection configuration (same Protect
// mode) as the machine that wrote it. The payload is fully decoded and
// cross-checked before any receiver state changes.
func (s *Sim) RestoreSnapshot(version uint32, payload []byte) error {
	if version != rpubmwSnapVersion {
		return fmt.Errorf("rpubmw: unsupported snapshot version %d (have %d)", version, rpubmwSnapVersion)
	}
	d := persist.NewDec(payload)
	m, l := int(d.U32()), int(d.U32())
	strict, plain := d.Bool(), d.Bool()
	protected, rootParity := d.Bool(), d.Bool()
	size := int(d.U64())
	cycle := d.U64()
	available := d.Bool()
	cooldown := int(d.U32())
	pushes, pops := d.U64(), d.U64()
	detected, recoveries := d.U64(), d.U64()
	lastCheck, checkRuns := d.U64(), d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if m != s.m || l != s.l {
		return fmt.Errorf("rpubmw: snapshot shape m=%d l=%d does not match machine m=%d l=%d", m, l, s.m, s.l)
	}
	if protected != s.protected || rootParity != s.rootParity {
		return fmt.Errorf("rpubmw: snapshot protection (protected=%v parity=%v) does not match machine (protected=%v parity=%v); construct with matching Protect",
			protected, rootParity, s.protected, s.rootParity)
	}
	if size < 0 || size > s.capacity {
		return fmt.Errorf("rpubmw: snapshot size %d out of range [0,%d]", size, s.capacity)
	}
	var root [MaxOrder]slot
	for i := 0; i < m; i++ {
		root[i] = slot{val: d.U64(), meta: d.U64(), count: d.U32(), born: d.U32()}
	}
	var parity [MaxOrder]uint8
	if rootParity {
		pb := d.Bytes()
		if d.Err() == nil && len(pb) != m {
			return fmt.Errorf("rpubmw: snapshot root parity has %d bits, want %d", len(pb), m)
		}
		copy(parity[:], pb)
	}
	nLevels := d.Len(len(s.rams))
	if d.Err() == nil && nLevels != len(s.rams) {
		return fmt.Errorf("rpubmw: snapshot has %d SRAM levels, machine has %d", nLevels, len(s.rams))
	}
	images := make([]levelImage, nLevels)
	for li := range images {
		img := &images[li]
		switch tag := d.U8(); tag {
		case levelECC:
			img.ecc = true
			img.mode = faultinject.ECCMode(d.U8())
			img.words = int(d.U32())
			chunks := int(d.U32())
			if err := d.Err(); err != nil {
				return err
			}
			if chunks != 3*m {
				return fmt.Errorf("rpubmw: snapshot level %d has %d ECC chunks per word, want %d", li+2, chunks, 3*m)
			}
			er, ok := s.rams[li].(*faultinject.ECCRAM[node])
			if !ok {
				return fmt.Errorf("rpubmw: snapshot level %d is ECC-protected, machine level is not", li+2)
			}
			if er.Mode() != img.mode || er.Words() != img.words {
				return fmt.Errorf("rpubmw: snapshot level %d is %v/%d words, machine is %v/%d",
					li+2, img.mode, img.words, er.Mode(), er.Words())
			}
			img.data = make([][]uint64, img.words)
			img.check = make([][]uint8, img.words)
			for a := 0; a < img.words; a++ {
				data := make([]uint64, chunks)
				for c := range data {
					data[c] = d.U64()
				}
				check := append([]uint8(nil), d.Bytes()...)
				if d.Err() == nil && len(check) != chunks {
					return fmt.Errorf("rpubmw: snapshot level %d word %d has %d check bytes, want %d", li+2, a, len(check), chunks)
				}
				img.data[a], img.check[a] = data, check
			}
		case levelPlain:
			img.words = int(d.U32())
			if err := d.Err(); err != nil {
				return err
			}
			if _, isECC := s.rams[li].(*faultinject.ECCRAM[node]); isECC {
				return fmt.Errorf("rpubmw: snapshot level %d is unprotected, machine level is ECC-protected", li+2)
			}
			if s.rams[li].Words() != img.words {
				return fmt.Errorf("rpubmw: snapshot level %d has %d words, machine has %d", li+2, img.words, s.rams[li].Words())
			}
			img.plain = make([]node, img.words)
			for a := 0; a < img.words; a++ {
				var nd node
				for i := 0; i < m; i++ {
					nd.slots[i] = slot{val: d.U64(), meta: d.U64(), count: d.U32(), born: d.U32()}
				}
				img.plain[a] = nd
			}
		default:
			return fmt.Errorf("rpubmw: snapshot level %d has unknown storage tag %d", li+2, tag)
		}
		if err := d.Err(); err != nil {
			return err
		}
	}
	if err := d.Done(); err != nil {
		return err
	}

	// Commit.
	s.root = root
	s.parity = parity
	for li := range images {
		img := &images[li]
		if img.ecc {
			er := s.rams[li].(*faultinject.ECCRAM[node])
			for a := 0; a < img.words; a++ {
				er.SetRawWord(a, img.data[a], img.check[a])
			}
		} else {
			for a := 0; a < img.words; a++ {
				s.rams[li].Poke(a, img.plain[a])
			}
		}
		s.fetchQ[li] = fetch{}
		s.liftQ[li] = liftWait{}
	}
	s.rootLift = liftWait{}
	s.stranded = nil
	s.faultErr = nil
	s.liftDelivered = false
	s.Strict = strict
	s.Plain = plain
	s.size = size
	s.cycle = cycle
	s.available = available
	s.cooldown = cooldown
	s.pushes, s.pops = pushes, pops
	s.detected, s.recoveries = detected, recoveries
	s.lastCheck, s.checkRuns = lastCheck, checkRuns
	return nil
}

// Replay re-issues one logged operation at its recorded cycle, filling
// the gap with the nop cycles the original schedule contained (which
// also reproduces the mandatory idle cycle after each pop). The pop
// result is audited against the log.
func (s *Sim) Replay(op persist.Op) error {
	if op.Cycle <= s.cycle {
		return fmt.Errorf("rpubmw: replay op at cycle %d but machine is already at %d", op.Cycle, s.cycle)
	}
	for s.cycle+1 < op.Cycle {
		if _, err := s.Tick(hw.NopOp()); err != nil {
			return fmt.Errorf("rpubmw: replay nop at cycle %d: %w", s.cycle, err)
		}
	}
	e, err := s.Tick(op.ToHW())
	if err != nil {
		return fmt.Errorf("rpubmw: replay %v at cycle %d: %w", op.Kind, op.Cycle, err)
	}
	if op.Kind == hw.Pop {
		if e == nil {
			return fmt.Errorf("rpubmw: replay pop at cycle %d returned nothing", op.Cycle)
		}
		if e.Value != op.Value || e.Meta != op.Meta {
			return fmt.Errorf("rpubmw: replay divergence at cycle %d: popped (%d,%d), log recorded (%d,%d)",
				op.Cycle, e.Value, e.Meta, op.Value, op.Meta)
		}
	}
	return nil
}

// VerifyRecovered runs the read-only health check (root parity, a full
// ECC audit of every SRAM word, and the shared treecheck invariants).
// Immediately after replay the final operation's lift may still be in
// flight; the check is then deferred to the caller's first quiescent
// point.
func (s *Sim) VerifyRecovered() error {
	if s.faultErr != nil {
		return s.faultErr
	}
	if !s.Quiescent() {
		return nil
	}
	return s.Verify()
}
