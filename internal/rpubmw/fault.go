// Fault tolerance for the RPU-BMW pipeline.
//
// Two storage classes need protection: the SRAM macros backing levels
// 2..L, and the RPU_1 latches holding the root node. Protect swaps the
// plain SDPRAMs for ECC-protected RAMs (SECDED or parity, with an
// optional background scrubber) and adds a parity bit per root register
// slot, maintained by the datapath on every write and checked when the
// root is operated on.
//
// SECDED corrects single-bit SRAM upsets transparently; uncorrectable
// errors and root-parity mismatches latch a sticky *hw.CorruptionError
// — Tick refuses further operations — until Recover drains the
// surviving elements and rebuilds a clean tree. The simulator also
// implements hw.FaultTarget for the root latches, and FaultTargets
// exposes every injectable structure for plan registration.
package rpubmw

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hw"
	"repro/internal/treecheck"
)

// rootSlotBits is the payload width of one root register slot.
const rootSlotBits = 64 + 64 + 32

// nodeCodec serialises a node (the first m slots) into 64-bit chunks
// for the ECC layer: three chunks per slot — value, metadata, and the
// counter sharing its chunk with the sojourn born tag (counter in the
// low half, born in the previously-unused high half, so the protected
// word width is unchanged and the tag survives the SRAM round trip).
type nodeCodec struct{ m int }

// Chunks returns 3 chunks per live slot.
func (c nodeCodec) Chunks() int { return 3 * c.m }

// Encode spreads the node over the chunk array.
func (c nodeCodec) Encode(w node, dst []uint64) {
	for i := 0; i < c.m; i++ {
		dst[3*i] = w.slots[i].val
		dst[3*i+1] = w.slots[i].meta
		dst[3*i+2] = uint64(w.slots[i].count) | uint64(w.slots[i].born)<<32
	}
}

// Decode restores the node from the chunk array.
func (c nodeCodec) Decode(src []uint64) node {
	var w node
	for i := 0; i < c.m; i++ {
		w.slots[i].val = src[3*i]
		w.slots[i].meta = src[3*i+1]
		w.slots[i].count = uint32(src[3*i+2])
		w.slots[i].born = uint32(src[3*i+2] >> 32)
	}
	return w
}

// slotParityOf returns the even-parity bit over one root slot.
func slotParityOf(sl *slot) uint8 {
	return uint8((bits.OnesCount64(sl.val) + bits.OnesCount64(sl.meta) + bits.OnesCount32(sl.count)) & 1)
}

// Protect replaces the level SRAMs with ECC-protected RAMs (named
// "sram2".."sramL") in the given mode and enables parity over the root
// registers. scrubEvery sets the per-RAM background scrub cadence in
// ticks (0 disables; SECDED only). It must be called on a fresh
// simulator, before any operation.
//
// EccOff is the unprotected ablation: the SRAMs and root latches stay
// bit-addressable for fault injection, but no coding bit is stored
// anywhere — corruption is silent until the online checker or a
// structural hazard trips over it.
func (s *Sim) Protect(mode faultinject.ECCMode, scrubEvery int) {
	if s.cycle != 0 || s.size != 0 {
		panic("rpubmw: Protect requires a fresh simulator")
	}
	s.protected = true
	s.rootParity = mode != faultinject.EccOff
	words := s.m
	for lvl := 2; lvl <= s.l; lvl++ {
		s.rams[lvl-2] = faultinject.NewECCRAM[node](
			fmt.Sprintf("sram%d", lvl), words, nodeCodec{m: s.m}, mode, scrubEvery)
		words *= s.m
	}
	for i := range s.parity {
		s.parity[i] = 0 // empty slots have even parity
	}
}

// Protected reports whether ECC/parity protection is enabled.
func (s *Sim) Protected() bool { return s.protected }

// AttachFaults connects a fault plan's clock hook: Step is called once
// at the end of every consumed cycle. The caller also registers the
// targets from FaultTargets on the plan.
func (s *Sim) AttachFaults(st hw.FaultStepper) { s.stepper = st }

// FaultTargets returns every injectable storage structure: the root
// latches (the Sim itself) and each level's RAM when it supports
// injection.
func (s *Sim) FaultTargets() []hw.FaultTarget {
	ts := []hw.FaultTarget{s}
	for _, r := range s.rams {
		if ft, ok := r.(hw.FaultTarget); ok {
			ts = append(ts, ft)
		}
	}
	return ts
}

// tolerant reports whether detections latch instead of panicking: any
// protection or injection machinery is attached. A bare simulator keeps
// the fail-fast panics, so clean-run behaviour is unchanged.
func (s *Sim) tolerant() bool {
	return s.protected || s.stepper != nil || s.CheckEvery > 0
}

// sramName labels a level's RAM in corruption reports.
func (s *Sim) sramName(lvl int) string { return fmt.Sprintf("sram%d", lvl) }

// readError surfaces the ECC layer's verdict on the last captured read.
func readError(r hw.RAM[node]) error {
	if er, ok := r.(interface{ ReadError() error }); ok {
		return er.ReadError()
	}
	return nil
}

// fail latches the first detected corruption.
func (s *Sim) fail(err *hw.CorruptionError) {
	if s.faultErr == nil {
		s.faultErr = err
		s.detected++
	}
}

// failErr latches an already-built corruption error (the ECC path).
func (s *Sim) failErr(err error) {
	if s.faultErr == nil {
		s.faultErr = err
		s.detected++
	}
}

// strand preserves an operation voided by a fault for recovery. The
// operation was voided before any of its effects applied: for a pop
// that means its node's minimum was never lifted and remains
// harvestable in place.
func (s *Sim) strand(lvl int, ar fetch) {
	s.strandLifted(lvl, ar, false)
}

// strandLifted preserves an operation interrupted mid-processing,
// recording whether a pop had already delivered its lift.
func (s *Sim) strandLifted(lvl int, ar fetch, lifted bool) {
	s.stranded = append(s.stranded, levelFetch{lvl: lvl, ar: ar, lifted: lifted})
}

// touchRoot recomputes the parity bit of a root slot the datapath just
// wrote.
func (s *Sim) touchRoot(i int) {
	if s.rootParity {
		s.parity[i] = slotParityOf(&s.root[i])
	}
}

// checkRoot verifies the parity of every root slot, as RPU_1 would when
// its comparator tree reads the latches. A mismatch latches the fault.
func (s *Sim) checkRoot() {
	if !s.rootParity || s.faultErr != nil {
		return
	}
	for i := 0; i < s.m; i++ {
		if slotParityOf(&s.root[i]) != s.parity[i]&1 {
			s.fail(&hw.CorruptionError{
				Unit: s.TargetName(), Word: i, Chunk: -1, Cycle: s.cycle,
				Detail: "root register parity mismatch",
			})
			return
		}
	}
}

// endOfCycle runs once per consumed Tick: the online invariant checker
// (on the first quiescent cycle once CheckEvery cycles have elapsed
// since the last check, so a busy pipeline does not starve it) and then
// the attached fault plan, so upsets strike between the clock edges.
func (s *Sim) endOfCycle() {
	if s.faultErr == nil && s.CheckEvery > 0 && s.cycle >= s.lastCheck+s.CheckEvery && s.Quiescent() {
		s.lastCheck = s.cycle
		s.checkRuns++
		if err := treecheck.Check(s); err != nil {
			s.fail(&hw.CorruptionError{
				Unit: "rpubmw-online-check", Word: -1, Chunk: -1, Cycle: s.cycle,
				Detail: err.Error(), Cause: err,
			})
		}
	}
	if s.stepper != nil {
		s.stepper.Step(s.cycle)
	}
}

// Faulted reports whether a corruption has been detected and latched.
func (s *Sim) Faulted() bool { return s.faultErr != nil }

// FaultError returns the latched corruption error, or nil.
func (s *Sim) FaultError() error { return s.faultErr }

// Detected returns the number of corruptions detected since
// construction.
func (s *Sim) Detected() uint64 { return s.detected }

// Recoveries returns the number of completed Recover calls.
func (s *Sim) Recoveries() uint64 { return s.recoveries }

// CheckRuns returns how many times the online invariant checker ran.
func (s *Sim) CheckRuns() uint64 { return s.checkRuns }

// ECCTotals sums the protection activity of every level's RAM.
func (s *Sim) ECCTotals() faultinject.ECCStats {
	var t faultinject.ECCStats
	for _, r := range s.rams {
		er, ok := r.(*faultinject.ECCRAM[node])
		if !ok {
			continue
		}
		st := er.ECCStats()
		t.CorrectedReads += st.CorrectedReads
		t.DetectedReads += st.DetectedReads
		t.Scrubs += st.Scrubs
		t.ScrubCorrected += st.ScrubCorrected
		t.ScrubDetected += st.ScrubDetected
	}
	return t
}

// Verify is a read-only health check: root parity, a full decode of
// every SRAM word, and the shared treecheck invariants. It does not
// latch a fault. Meaningful only when the pipeline is quiescent.
func (s *Sim) Verify() error {
	if s.rootParity {
		for i := 0; i < s.m; i++ {
			if slotParityOf(&s.root[i]) != s.parity[i]&1 {
				return &hw.CorruptionError{
					Unit: s.TargetName(), Word: i, Chunk: -1, Cycle: s.cycle,
					Detail: "root register parity mismatch",
				}
			}
		}
	}
	if s.protected {
		for idx, r := range s.rams {
			er, ok := r.(*faultinject.ECCRAM[node])
			if !ok {
				continue
			}
			for a := 0; a < er.Words(); a++ {
				if _, bad := er.Audit(a); len(bad) > 0 {
					return &hw.CorruptionError{
						Unit: s.sramName(idx + 2), Word: a, Chunk: bad[0], Cycle: s.cycle,
						Detail: "uncorrectable stored error",
					}
				}
			}
		}
	}
	return treecheck.Check(s)
}

// hw.FaultTarget — the root node's RPU_1 latches as bit-addressable
// storage. One word per slot: bits 0-63 value, 64-127 metadata,
// 128-159 counter, bit 160 the parity latch when protection is on.

var _ hw.FaultTarget = (*Sim)(nil)

// TargetName identifies the root latches in fault plans and reports.
func (s *Sim) TargetName() string { return "rpu-regs" }

// Words returns the number of root register slots.
func (s *Sim) Words() int { return s.m }

// WordBits returns the stored width of one root slot, including the
// parity latch when protection is enabled.
func (s *Sim) WordBits() int {
	if s.rootParity {
		return rootSlotBits + 1
	}
	return rootSlotBits
}

// PeekBit reports a stored root register bit.
func (s *Sim) PeekBit(word, bit int) bool {
	sl := &s.root[word]
	switch {
	case bit < 64:
		return sl.val>>uint(bit)&1 != 0
	case bit < 128:
		return sl.meta>>uint(bit-64)&1 != 0
	case bit < rootSlotBits:
		return sl.count>>uint(bit-128)&1 != 0
	case bit == rootSlotBits && s.rootParity:
		return s.parity[word]&1 != 0
	default:
		panic(fmt.Sprintf("rpubmw: PeekBit bit %d out of range", bit))
	}
}

// FlipBit inverts a stored root register bit — the injection path. It
// deliberately does not maintain the parity latch: that mismatch is
// what checkRoot detects.
func (s *Sim) FlipBit(word, bit int) {
	sl := &s.root[word]
	switch {
	case bit < 64:
		sl.val ^= 1 << uint(bit)
	case bit < 128:
		sl.meta ^= 1 << uint(bit-64)
	case bit < rootSlotBits:
		sl.count ^= 1 << uint(bit-128)
	case bit == rootSlotBits && s.rootParity:
		s.parity[word] ^= 1
	default:
		panic(fmt.Sprintf("rpubmw: FlipBit bit %d out of range", bit))
	}
}

// audit decodes one committed SRAM word and reports uncorrectable
// chunks; for an unprotected SDPRAM the word is returned as-is.
func (s *Sim) audit(idx, addr int) (node, []int) {
	if er, ok := s.rams[idx].(*faultinject.ECCRAM[node]); ok {
		return er.Audit(addr)
	}
	return s.rams[idx].Peek(addr), nil
}

// bestMinOf is minSlotOf without the panic: the leftmost minimum-value
// occupied slot, or -1 for an empty node. Recovery uses it to locate
// stale duplicates.
func bestMinOf(slots []slot) int {
	min := -1
	for i := range slots {
		if slots[i].count == 0 {
			continue
		}
		if min < 0 || slots[i].val < slots[min].val {
			min = i
		}
	}
	return min
}

// Recover drains every surviving element out of the (possibly corrupt)
// storage and rebuilds a clean tree, clearing the latched fault status.
// It returns the survivors in harvest order and the number of slots
// dropped because the protection layer proved their payload corrupt.
//
// The harvest accounts for all in-flight state at the moment the fault
// latched:
//
//   - a node held in an RPU awaiting a lift (liftQ) is authoritative —
//     its SRAM copy is stale and skipped, and its vacant slot holds a
//     stale duplicate of the value already lifted to the parent;
//   - the root slot awaiting a lift (rootLift) is likewise skipped;
//   - fetch-register and stranded push operations carry elements not
//     resident in any slot and are harvested from the latches;
//   - a pop stranded after its lift delivered marks a node whose
//     minimum slot duplicates the value already lifted above it;
//   - a pop still in a fetch register, or voided before its node
//     arrived, has lifted nothing: its node is harvested intact (the
//     parent's vacancy is the stale slot, covered by the two rules
//     above).
//
// The rebuild replays the survivors, in order, through the standard
// push placement algorithm via the maintenance paths. A golden model
// rebuilt by pushing the identical list in the identical order
// reproduces the exact slot layout, so subsequent pop order (including
// metadata of tied values) stays equivalent.
func (s *Sim) Recover() (survivors []core.Element, dropped int) {
	// Commit port state first: writes issued in the latching cycle are
	// still pending and Peek/Audit only see committed words.
	for _, r := range s.rams {
		r.Tick()
	}

	// Root registers.
	skipRoot := -1
	if s.rootLift.valid {
		skipRoot = s.rootLift.vac
	}
	for i := 0; i < s.m; i++ {
		sl := s.root[i]
		if sl.count == 0 || i == skipRoot {
			continue
		}
		if s.rootParity && slotParityOf(&sl) != s.parity[i]&1 {
			dropped++
			continue
		}
		survivors = append(survivors, core.Element{Value: sl.val, Meta: sl.meta})
	}

	// Nodes held in RPUs: authoritative over their SRAM copies.
	skipWord := make(map[[2]int]bool)
	for idx := range s.liftQ {
		lw := &s.liftQ[idx]
		if !lw.valid {
			continue
		}
		skipWord[[2]int{idx, lw.addr}] = true
		for i := 0; i < s.m; i++ {
			sl := lw.node.slots[i]
			if sl.count == 0 || i == lw.vac {
				continue
			}
			survivors = append(survivors, core.Element{Value: sl.val, Meta: sl.meta})
		}
	}

	// In-flight and stranded operations. A pop marks its node stale
	// only if its lift already delivered; a fetch-register pop (never
	// processed) and a pop voided before processing lifted nothing.
	staleWord := make(map[[2]int]bool)
	takeOp := func(lvl int, ar fetch, lifted bool) {
		if !ar.valid {
			return
		}
		if ar.kind == hw.Push {
			survivors = append(survivors, core.Element{Value: ar.val, Meta: ar.meta})
			return
		}
		if !lifted {
			return
		}
		idx := lvl - 2
		if idx >= 0 && idx < len(s.rams) && !skipWord[[2]int{idx, ar.addr}] {
			staleWord[[2]int{idx, ar.addr}] = true
		}
	}
	for idx, f := range s.fetchQ {
		takeOp(idx+2, f, false)
	}
	for _, sf := range s.stranded {
		takeOp(sf.lvl, sf.ar, sf.lifted)
	}

	// SRAM words, dropping slots the ECC layer proves corrupt and the
	// stale minimum of any node with an unfinished pop.
	for idx, r := range s.rams {
		for a := 0; a < r.Words(); a++ {
			if skipWord[[2]int{idx, a}] {
				continue
			}
			nd, bad := s.audit(idx, a)
			badSlot := make(map[int]bool, len(bad))
			for _, c := range bad {
				badSlot[c/3] = true
			}
			stale := -1
			if staleWord[[2]int{idx, a}] {
				stale = bestMinOf(nd.slots[:s.m])
			}
			for i := 0; i < s.m; i++ {
				sl := nd.slots[i]
				if sl.count == 0 || i == stale {
					continue
				}
				if badSlot[i] {
					dropped++
					continue
				}
				survivors = append(survivors, core.Element{Value: sl.val, Meta: sl.meta})
			}
		}
	}

	if len(survivors) > s.capacity {
		// Corrupt counters can make the harvest overshoot; shed the
		// excess rather than overflow the rebuilt tree.
		dropped += len(survivors) - s.capacity
		survivors = survivors[:s.capacity]
	}

	// Reset to a clean, quiescent, empty machine.
	var zero node
	for i := range s.root {
		s.root[i] = slot{}
	}
	for i := range s.parity {
		s.parity[i] = 0
	}
	for idx, r := range s.rams {
		for a := 0; a < r.Words(); a++ {
			r.Poke(a, zero)
		}
		s.fetchQ[idx] = fetch{}
		s.liftQ[idx] = liftWait{}
	}
	s.rootLift = liftWait{}
	s.stranded = nil
	s.faultErr = nil
	s.size = 0
	s.available = true
	s.cooldown = 0

	// Rebuild by replaying the survivors through the push placement
	// algorithm (maintenance path: Cycle does not advance).
	for _, e := range survivors {
		s.pushSync(e.Value, e.Meta)
	}
	s.recoveries++
	return survivors, dropped
}

// pushSync applies a full push — root to resting slot — through the
// maintenance paths, mirroring the placement the pipelined datapath
// (and the golden model) would perform.
func (s *Sim) pushSync(val, meta uint64) {
	// Recovered elements restart their sojourn clock at the recovery
	// cycle; the original born tag may have been lost with the slot.
	born := uint32(s.cycle)
	for i := 0; i < s.m; i++ {
		if s.root[i].count == 0 {
			s.root[i] = slot{val: val, meta: meta, count: 1, born: born}
			s.touchRoot(i)
			s.size++
			return
		}
	}
	min := 0
	for i := 1; i < s.m; i++ {
		if s.root[i].count < s.root[min].count {
			min = i
		}
	}
	s.root[min].count++
	if val < s.root[min].val {
		val, s.root[min].val = s.root[min].val, val
		meta, s.root[min].meta = s.root[min].meta, meta
		born, s.root[min].born = s.root[min].born, born
	}
	s.touchRoot(min)
	lvl, addr := 2, min
	for {
		r := s.rams[lvl-2]
		nd := r.Peek(addr)
		placed, next := false, 0
		for i := 0; i < s.m; i++ {
			if nd.slots[i].count == 0 {
				nd.slots[i] = slot{val: val, meta: meta, count: 1, born: born}
				placed = true
				break
			}
		}
		if !placed {
			mi := 0
			for i := 1; i < s.m; i++ {
				if nd.slots[i].count < nd.slots[mi].count {
					mi = i
				}
			}
			nd.slots[mi].count++
			if val < nd.slots[mi].val {
				val, nd.slots[mi].val = nd.slots[mi].val, val
				meta, nd.slots[mi].meta = nd.slots[mi].meta, meta
				born, nd.slots[mi].born = nd.slots[mi].born, born
			}
			next = addr*s.m + mi
		}
		r.Poke(addr, nd)
		if placed {
			break
		}
		if lvl == s.l {
			panic("rpubmw: recovery rebuild overflowed the last level")
		}
		lvl, addr = lvl+1, next
	}
	s.size++
}
