// Package rpubmw is a cycle-accurate simulation of the RPU-driven
// BMW-Tree (RPU-BMW) hardware design of Section 5 of the paper.
//
// Instead of holding every node in flip-flops, RPU-BMW stores the nodes
// of level i (i >= 2) in SRAM_i and drives each level with one Ranking
// Processing Unit (RPU). The root node is the only node of level 1 and
// permanently occupies RPU_1's registers. Nodes are loaded into an RPU,
// operated on, and written back — time-sharing the RPU like processes
// share a CPU. The simulation reproduces the optimised design with
// combinational logic (Section 5.2.2) and operation hiding on
// write-first Simple Dual-Port RAMs (Section 5.2.3):
//
//   - push: the RPU issues the SRAM read in the signal cycle; when the
//     node arrives one cycle later the comparison happens
//     combinationally, the loser is forwarded to the next level, and the
//     node is written back in the same cycle. Pushes issue one per cycle
//     — back-to-back pushes to the same node are correct because the
//     read of the second push collides with the write-back of the first
//     and the write-first SRAM returns the fresh data.
//   - pop: the RPU reads its node, pops the minimum combinationally,
//     signals the child level, and waits one more cycle for the lifted
//     substitute before writing back. A new pop can be issued every two
//     cycles; the cycle immediately after a pop must be idle (both
//     push_available and pop_available drop), because a push issued then
//     would read the node before the pop's delayed write-back — the
//     stale-read hazard that makes pop-push and pop-pop sequences
//     illegal (Section 5.2.3).
//   - the common push-pop sequence therefore costs 3 cycles, the
//     paper's headline RPU-BMW rate (Figure 7).
//
// The package tests prove operation-for-operation equivalence with the
// golden model of internal/core under every legal schedule, and
// demonstrate that violating the idle-cycle rule really does trip the
// SRAM port hazard the paper designs around.
package rpubmw

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
)

// MaxOrder bounds M so that SRAM words (whole nodes) can be fixed-size
// value types with exact copy semantics, like hardware words.
const MaxOrder = 16

// slot is one element position: value, metadata, sub-tree counter
// (0 = empty). born is the low 32 bits of the clock cycle when the
// element entered the machine — the sojourn-probe tag. It rides in the
// padding after count (the slot stays 24 bytes) and is observability
// side-state: not part of the fault-addressable root register word,
// though the SRAM codec round-trips it through the counter chunk's
// unused upper half (see fault.go).
type slot struct {
	val   uint64
	meta  uint64
	count uint32
	born  uint32
}

// node is one SRAM word: up to MaxOrder element slots.
type node struct {
	slots [MaxOrder]slot
}

// fetch is an operation whose SRAM read was issued in the previous
// cycle; its node data arrives this cycle.
type fetch struct {
	valid bool
	kind  hw.OpKind
	addr  int // node address within this level's SRAM
	val   uint64
	meta  uint64
	born  uint32 // sojourn tag travelling with a displaced push payload
}

// liftWait is a pop resident in an RPU: the node has been loaded, its
// minimum popped and the child signalled; the RPU holds the node until
// the substitute element is lifted from below, then writes back.
type liftWait struct {
	valid bool
	addr  int
	node  node
	vac   int // slot index awaiting the lifted element
}

// Sim is the cycle-accurate RPU-BMW simulator. It is intentionally
// confined to a single goroutine — it models clocked hardware with one
// issue port per cycle and carries no synchronization; concurrent
// callers go through internal/engine, which gives each simulator an
// exclusively owning shard goroutine.
type Sim struct {
	m, l     int
	capacity int
	size     int

	root     [MaxOrder]slot // level 1: the root node in RPU_1 registers
	rams     []hw.RAM[node] // rams[i] backs level i+2 (levels 2..L)
	fetchQ   []fetch        // fetchQ[i] for level i+2
	liftQ    []liftWait     // liftQ[i] for level i+2
	rootLift liftWait       // root's pending substitute slot

	cycle     uint64
	available bool // push/pop availability (drops for the cycle after a pop)

	// instr is the attached observability state (see instrument.go);
	// nil means uninstrumented and every hook is a single nil branch.
	// It lives beside the per-cycle fields so the hooks' nil checks
	// read a cache line every Tick already touches.
	instr *instrumentation

	// Strict rejects issue sequences the hardware forbids (an operation
	// in the cycle immediately after a pop). With Strict disabled the
	// simulator executes them anyway so tests can observe the SRAM
	// structural hazard they cause.
	Strict bool

	// Plain gates issues per the unoptimised Section 5.2.1 design —
	// sequential logic without operation hiding: a push occupies the
	// interface for 3 cycles and a pop for 6. It is the ablation knob
	// quantifying what combinational logic + operation hiding buy
	// (Sections 5.2.2-5.2.3). The internal dataflow stays the same;
	// only the issue rate changes.
	Plain    bool
	cooldown int

	pushes, pops uint64

	// Fault-tolerance state (see fault.go). protected enables SECDED (or
	// parity) SRAMs and parity over the root registers; rootParity is
	// false in the EccOff ablation, where storage stays injectable but
	// every coding bit is dropped; faultErr latches the first detected
	// corruption and Tick refuses operations until Recover is called.
	protected  bool
	rootParity bool
	parity     [MaxOrder]uint8
	stepper    hw.FaultStepper
	faultErr   error
	detected   uint64
	recoveries uint64
	// stranded records operations voided because a fault latched
	// mid-cycle: push entries carry live payloads for recovery to
	// harvest; pop entries stranded after their lift delivered mark a
	// node whose minimum is a stale duplicate of the lifted value,
	// while pops voided before processing leave their node intact.
	stranded []levelFetch
	// liftDelivered is transient per-arrival state: stepPop sets it
	// once the popped minimum has been handed to the level above, so
	// the panic-recovery path knows whether the fetched node's minimum
	// is now a stale duplicate.
	liftDelivered bool

	// CheckEvery enables the online invariant checker: once CheckEvery
	// cycles have elapsed since the last check, the first quiescent
	// cycle runs the shared treecheck invariants over the committed
	// tree state. 0 disables (the default).
	CheckEvery uint64
	lastCheck  uint64
	checkRuns  uint64
}

// levelFetch is a stranded operation: the level it was bound for plus
// the fetch-register contents. lifted records whether a pop had
// already delivered its minimum to the level above when it was
// stranded — only then is the fetched node's minimum a stale
// duplicate that recovery must skip.
type levelFetch struct {
	lvl    int
	ar     fetch
	lifted bool
}

// New creates an RPU-BMW simulator for an order-m, l-level tree.
// It panics if m exceeds MaxOrder.
func New(m, l int) *Sim {
	if m > MaxOrder {
		panic(fmt.Sprintf("rpubmw: order %d exceeds MaxOrder %d", m, MaxOrder))
	}
	core.NumNodes(m, l) // validates shape
	s := &Sim{
		m:         m,
		l:         l,
		capacity:  core.Capacity(m, l),
		available: true,
		Strict:    true,
	}
	words := m // level 2 has m nodes
	for lvl := 2; lvl <= l; lvl++ {
		s.rams = append(s.rams, hw.NewSDPRAM[node](words))
		words *= m
	}
	s.fetchQ = make([]fetch, len(s.rams))
	s.liftQ = make([]liftWait, len(s.rams))
	return s
}

// Order, Levels, Len, Cap, Cycle, AlmostFull mirror the R-BMW
// simulator's accessors.
func (s *Sim) Order() int       { return s.m }
func (s *Sim) Levels() int      { return s.l }
func (s *Sim) Len() int         { return s.size }
func (s *Sim) Cap() int         { return s.capacity }
func (s *Sim) Cycle() uint64    { return s.cycle }
func (s *Sim) AlmostFull() bool { return s.size >= s.capacity }

// PushAvailable and PopAvailable mirror the handshake of Section 5.2.3:
// both drop for exactly one cycle after a pop (and, in Plain mode, for
// the full 5.2.1 operation latencies).
func (s *Sim) PushAvailable() bool { return s.available && s.cooldown == 0 }
func (s *Sim) PopAvailable() bool  { return s.available && s.cooldown == 0 }

// Stats returns the number of pushes and pops issued. RAMStats sums the
// port activity of every level's SRAM.
func (s *Sim) Stats() (pushes, pops uint64) { return s.pushes, s.pops }

// RAMStats returns total SRAM reads, writes, and read-during-write
// collisions (operation-hiding events) across all levels.
func (s *Sim) RAMStats() (reads, writes, collisions uint64) {
	for _, r := range s.rams {
		a, b, c := r.Stats()
		reads += a
		writes += b
		collisions += c
	}
	return
}

// Quiescent reports whether no operation is in flight in any RPU.
func (s *Sim) Quiescent() bool {
	if s.rootLift.valid {
		return false
	}
	for i := range s.fetchQ {
		if s.fetchQ[i].valid || s.liftQ[i].valid {
			return false
		}
	}
	for _, r := range s.rams {
		if r.Pending() {
			return false
		}
	}
	return true
}

// SlotState exposes the committed tree state for the shared invariant
// checker, reading the root registers and peeking the SRAMs. Valid only
// when the pipeline is quiescent.
func (s *Sim) SlotState(n, i int) (value uint64, count uint32, ok bool) {
	if n == 0 {
		sl := s.root[i]
		return sl.val, sl.count, sl.count != 0
	}
	lvl, local := s.locate(n)
	nd := s.rams[lvl-2].Peek(local)
	sl := nd.slots[i]
	return sl.val, sl.count, sl.count != 0
}

// locate converts a global breadth-first node index into (level, local
// index within the level).
func (s *Sim) locate(n int) (level, local int) {
	level = 1
	count := 1
	start := 0
	for n >= start+count {
		start += count
		count *= s.m
		level++
	}
	return level, n - start
}

// Tick advances one clock cycle with the given external signal,
// returning the popped element for a pop (combinational in the issuing
// cycle, the root being register-resident).
func (s *Sim) Tick(op hw.Op) (*core.Element, error) {
	if s.faultErr != nil {
		return nil, s.faultErr
	}
	// Issue legality.
	switch op.Kind {
	case hw.Push:
		if s.Strict && !s.PushAvailable() {
			return nil, s.reject(fmt.Errorf("rpubmw: push issued while push_available=0"))
		}
		if s.AlmostFull() {
			return nil, s.reject(core.ErrFull)
		}
	case hw.Pop:
		if s.Strict && !s.PopAvailable() {
			return nil, s.reject(fmt.Errorf("rpubmw: pop issued while pop_available=0"))
		}
		if s.size == 0 {
			return nil, s.reject(core.ErrEmpty)
		}
	}

	var ckind hw.CycleKind
	wasAvailable := s.available
	if s.instr != nil {
		ckind = s.classifyCycle(op)
	}
	s.cycle++

	// Clock edge: SRAM writes commit, reads issued last cycle capture
	// their data (write-first on collisions).
	for _, r := range s.rams {
		r.Tick()
	}

	// Snapshot this cycle's arrivals, freeing the fetch registers for
	// reads issued below.
	arrivals := make([]fetch, len(s.fetchQ))
	copy(arrivals, s.fetchQ)
	for i := range s.fetchQ {
		s.fetchQ[i] = fetch{}
	}

	// Process arrivals level by level. Each arrival owns its level's
	// RPU this cycle; the only cross-level interaction is the lift of a
	// popped substitute into the parent RPU (or the root registers).
	for idx, ar := range arrivals {
		if !ar.valid {
			continue
		}
		lvl := idx + 2
		if s.faultErr != nil {
			// A fault latched earlier this cycle; this arrival is voided
			// and preserved for recovery.
			s.strand(lvl, ar)
			continue
		}
		if err := readError(s.rams[idx]); err != nil {
			// The ECC layer caught an uncorrectable error on the word
			// this RPU was about to operate on.
			s.failErr(err)
			s.strand(lvl, ar)
			continue
		}
		s.processArrival(idx, lvl, ar)
	}

	// External operation at the root (RPU_1 registers).
	var result *core.Element
	if s.faultErr == nil {
		result = s.rootOp(op)
	}

	s.available = op.Kind != hw.Pop
	if s.Plain {
		// Section 5.2.1 sequential-logic latencies: the RPU interface is
		// occupied for the remaining cycles of the operation.
		switch op.Kind {
		case hw.Push:
			s.cooldown = 2
		case hw.Pop:
			s.cooldown = 5
		default:
			if s.cooldown > 0 {
				s.cooldown--
			}
		}
	}

	// End of cycle: record observability facts, then the online
	// invariant checker and the attached fault plan (see fault.go).
	if s.instr != nil {
		s.instr.endCycle(s, ckind, op, wasAvailable)
	}
	s.endOfCycle()
	if s.faultErr != nil {
		return nil, s.faultErr
	}
	return result, nil
}

// processArrival runs one level's RPU for the cycle. In tolerant mode
// (protection or injection attached) a panic raised by corrupt state —
// an impossible minimum, a busy latch, a routing violation — is
// converted into a latched fault and the arrival is stranded for
// recovery; a bare simulator keeps the fail-fast panics.
func (s *Sim) processArrival(idx, lvl int, ar fetch) {
	if s.instr != nil {
		s.instr.traceOp(s.cycle, int64(lvl), ar.kind)
	}
	s.liftDelivered = false
	defer func() {
		if !s.tolerant() {
			return
		}
		if p := recover(); p != nil {
			s.fail(&hw.CorruptionError{
				Unit: s.sramName(lvl), Word: ar.addr, Chunk: -1, Cycle: s.cycle,
				Detail: fmt.Sprintf("structural hazard: %v", p),
			})
			s.strandLifted(lvl, ar, s.liftDelivered)
		}
	}()
	nd, ok := s.rams[idx].Data()
	if !ok {
		panic("rpubmw: arrival without SRAM data")
	}
	switch ar.kind {
	case hw.Push:
		s.stepPush(lvl, ar, nd)
	case hw.Pop:
		s.stepPop(lvl, ar, nd)
	}
}

// rootOp applies the external operation to the register-resident root,
// with the same tolerant-mode panic conversion as processArrival. When
// a fault latches mid-operation the op is voided: no element leaves the
// machine and no counters move, so every live element remains
// harvestable by Recover.
func (s *Sim) rootOp(op hw.Op) (result *core.Element) {
	defer func() {
		if !s.tolerant() {
			return
		}
		if p := recover(); p != nil {
			s.fail(&hw.CorruptionError{
				Unit: s.TargetName(), Word: -1, Chunk: -1, Cycle: s.cycle,
				Detail: fmt.Sprintf("structural hazard: %v", p),
			})
			if op.Kind == hw.Pop {
				// Abort the half-issued pop: forgetting the pending lift
				// leaves the minimum in its slot for recovery to harvest.
				s.rootLift = liftWait{}
			}
			result = nil
		}
	}()
	if s.instr != nil {
		s.instr.traceOp(s.cycle, 1, op.Kind)
	}
	switch op.Kind {
	case hw.Push:
		s.checkRoot()
		if s.faultErr != nil {
			s.strand(2, fetch{valid: true, kind: hw.Push, val: op.Value, meta: op.Meta, born: uint32(s.cycle)})
			return nil
		}
		s.rootPush(op.Value, op.Meta)
		s.size++
		s.pushes++
	case hw.Pop:
		s.checkRoot()
		if s.faultErr != nil {
			return nil
		}
		result = s.rootPop()
		if result != nil {
			s.size--
			s.pops++
		}
	}
	return result
}

// rootPush applies a push to the register-resident root: park in the
// leftmost empty slot or displace down the least-loaded sub-tree,
// issuing the SRAM_2 read for the displaced value.
func (s *Sim) rootPush(val, meta uint64) {
	born := uint32(s.cycle)
	for i := 0; i < s.m; i++ {
		if s.root[i].count == 0 {
			s.root[i] = slot{val: val, meta: meta, count: 1, born: born}
			s.touchRoot(i)
			if s.instr != nil {
				s.instr.pushDepth.Observe(1)
			}
			return
		}
	}
	min := 0
	for i := 1; i < s.m; i++ {
		if s.root[i].count < s.root[min].count {
			min = i
		}
	}
	s.root[min].count++
	if val < s.root[min].val {
		val, s.root[min].val = s.root[min].val, val
		meta, s.root[min].meta = s.root[min].meta, meta
		born, s.root[min].born = s.root[min].born, born
	}
	s.touchRoot(min)
	f := fetch{valid: true, kind: hw.Push, addr: min, val: val, meta: meta, born: born}
	if !s.issueRead(2, min, f) {
		s.strand(2, f) // preserve the displaced element for recovery
	}
}

// rootPop pops the root's minimum and, if the sub-tree below still holds
// elements, issues the SRAM_2 read for the substitute.
func (s *Sim) rootPop() *core.Element {
	j := minSlotOf(s.root[:s.m])
	out := &core.Element{Value: s.root[j].val, Meta: s.root[j].meta}
	born := s.root[j].born
	s.root[j].count--
	if s.root[j].count == 0 {
		s.root[j] = slot{}
		s.touchRoot(j)
		if s.instr != nil {
			s.instr.popDepth.Observe(1)
			s.instr.sojourn.Observe(uint64(uint32(s.cycle) - born))
		}
		return out
	}
	s.touchRoot(j)
	s.rootLift = liftWait{valid: true, vac: j}
	if !s.issueRead(2, j, fetch{valid: true, kind: hw.Pop, addr: j}) {
		// The substitute read could not issue: abort the pop so the
		// minimum stays in its slot for recovery to harvest.
		s.rootLift = liftWait{}
		return nil
	}
	if s.instr != nil {
		s.instr.sojourn.Observe(uint64(uint32(s.cycle) - born))
	}
	return out
}

// stepPush processes a push whose node has arrived from SRAM: place or
// displace, write the node back this cycle, and forward the loser.
func (s *Sim) stepPush(lvl int, ar fetch, nd node) {
	placed := false
	for i := 0; i < s.m; i++ {
		if nd.slots[i].count == 0 {
			nd.slots[i] = slot{val: ar.val, meta: ar.meta, count: 1, born: ar.born}
			placed = true
			if s.instr != nil {
				s.instr.pushDepth.Observe(uint64(lvl))
			}
			break
		}
	}
	if !placed {
		min := 0
		for i := 1; i < s.m; i++ {
			if nd.slots[i].count < nd.slots[min].count {
				min = i
			}
		}
		nd.slots[min].count++
		val, meta, born := ar.val, ar.meta, ar.born
		if val < nd.slots[min].val {
			val, nd.slots[min].val = nd.slots[min].val, val
			meta, nd.slots[min].meta = nd.slots[min].meta, meta
			born, nd.slots[min].born = nd.slots[min].born, born
		}
		forward := fetch{valid: true, kind: hw.Push, addr: ar.addr*s.m + min, val: val, meta: meta, born: born}
		if lvl == s.l {
			// Possible only when a corrupted counter routed the push into
			// a full sub-tree; in tolerant mode latch and preserve the
			// loser, otherwise fail fast.
			if !s.tolerant() {
				panic("rpubmw: push descended past the last level")
			}
			s.fail(&hw.CorruptionError{
				Unit: s.sramName(lvl), Word: ar.addr, Chunk: -1, Cycle: s.cycle,
				Detail: "push descended past the last level (corrupt sub-tree counter)",
			})
			s.strand(lvl, forward)
		} else if !s.issueRead(lvl+1, forward.addr, forward) {
			s.strand(lvl+1, forward)
		}
	}
	s.rams[lvl-2].Write(ar.addr, nd)
}

// stepPop processes a pop whose node has arrived: lift the minimum to
// the waiting parent, then either finish (write back now) or signal the
// child and hold the node until the substitute arrives.
func (s *Sim) stepPop(lvl int, ar fetch, nd node) {
	j := minSlotOf(nd.slots[:s.m])
	lifted := nd.slots[j]

	// Deliver the lifted element to the level above.
	if lvl == 2 {
		if !s.rootLift.valid {
			panic("rpubmw: lift arrived with no waiting root slot")
		}
		s.root[s.rootLift.vac].val = lifted.val
		s.root[s.rootLift.vac].meta = lifted.meta
		s.root[s.rootLift.vac].born = lifted.born
		s.touchRoot(s.rootLift.vac)
		s.rootLift = liftWait{}
	} else {
		lw := &s.liftQ[lvl-3]
		if !lw.valid {
			panic("rpubmw: lift arrived with no waiting parent RPU")
		}
		lw.node.slots[lw.vac].val = lifted.val
		lw.node.slots[lw.vac].meta = lifted.meta
		lw.node.slots[lw.vac].born = lifted.born
		s.rams[lvl-3].Write(lw.addr, lw.node)
		*lw = liftWait{}
	}
	s.liftDelivered = true

	// Remove the lifted element from this node.
	nd.slots[j].count--
	if nd.slots[j].count == 0 {
		nd.slots[j] = slot{}
		s.rams[lvl-2].Write(ar.addr, nd)
		if s.instr != nil {
			s.instr.popDepth.Observe(uint64(lvl))
		}
		return
	}
	if lvl == s.l {
		panic("rpubmw: non-terminal pop at the last level")
	}
	// Hold the node awaiting the substitute from below.
	if s.liftQ[lvl-2].valid {
		panic("rpubmw: RPU lift register busy (schedule violates pipeline spacing)")
	}
	s.liftQ[lvl-2] = liftWait{valid: true, addr: ar.addr, node: nd, vac: j}
	// On failure the fault is latched and the liftWait entry stays
	// valid; recovery treats the held node as authoritative.
	s.issueRead(lvl+1, ar.addr*s.m+j, fetch{valid: true, kind: hw.Pop, addr: ar.addr*s.m + j})
}

// issueRead presents the read address to the level's SRAM and parks the
// operation in the level's fetch register; the data arrives next cycle.
// It reports whether the read was issued: in tolerant mode a busy fetch
// register or an out-of-range address (both only reachable through
// corrupted routing state) latch a fault and return false instead of
// panicking, so callers can preserve in-flight payloads for recovery.
func (s *Sim) issueRead(lvl, addr int, f fetch) bool {
	if s.fetchQ[lvl-2].valid {
		if s.tolerant() {
			s.fail(&hw.CorruptionError{
				Unit: s.sramName(lvl), Word: addr, Chunk: -1, Cycle: s.cycle,
				Detail: "fetch register busy (corrupt routing state)",
			})
			return false
		}
		panic(fmt.Sprintf("rpubmw: level %d fetch register busy (double read)", lvl))
	}
	if s.tolerant() && (addr < 0 || addr >= s.rams[lvl-2].Words()) {
		s.fail(&hw.CorruptionError{
			Unit: s.sramName(lvl), Word: addr, Chunk: -1, Cycle: s.cycle,
			Detail: "read address out of range (corrupt routing state)",
		})
		return false
	}
	s.rams[lvl-2].Read(addr)
	s.fetchQ[lvl-2] = f
	return true
}

// minSlotOf returns the index of the leftmost minimum-value occupied
// slot.
func minSlotOf(slots []slot) int {
	min := -1
	for i := range slots {
		if slots[i].count == 0 {
			continue
		}
		if min < 0 || slots[i].val < slots[min].val {
			min = i
		}
	}
	if min < 0 {
		panic("rpubmw: min of empty node")
	}
	return min
}

// Drain pops every element, inserting the mandatory idle cycles, and
// returns the dequeue order. Test and example convenience.
func (s *Sim) Drain() []core.Element {
	out := make([]core.Element, 0, s.size)
	for s.size > 0 {
		if !s.available {
			s.Tick(hw.NopOp())
			continue
		}
		e, err := s.Tick(hw.PopOp())
		if err != nil {
			panic(err)
		}
		out = append(out, *e)
	}
	for !s.Quiescent() {
		s.Tick(hw.NopOp())
	}
	return out
}
