package rpubmw

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/obs"
)

// Trace track layout: tree levels occupy tids 1..L, each level's SRAM
// ports tid sramTidBase+level, and each level's refill strand (the
// RPU holding a popped node while the substitute is lifted from
// below) tid strandTidBase+level. The bases keep the groups visually
// separated in Perfetto's numeric tid ordering.
const (
	sramTidBase   = 100
	strandTidBase = 200
)

// instrumentation is the attached observability state; the simulator
// holds one pointer so an uninstrumented hot path pays one nil branch
// per hook site.
type instrumentation struct {
	cycles   [hw.NumCycleKinds]*obs.Counter
	rejected *obs.Counter
	// mandIdle counts honoured mandatory idle cycles: a nop issued in
	// the cycle immediately after a pop, when the write-back hazard of
	// Section 5.2.3 forbids any operation.
	mandIdle *obs.Counter

	almostFull    *obs.Counter
	wasAlmostFull bool
	occHigh       *obs.Gauge

	pushDepth *obs.Histogram
	popDepth  *obs.Histogram

	// sojourn observes enqueue-to-dequeue latency in clock cycles for
	// every popped element (the born tag on each slot).
	sojourn *obs.QuantileHistogram

	tr  *obs.TraceRecorder
	pid int64
	// prev* hold last cycle's per-level SRAM port totals so endCycle
	// can emit a port-activity slice only for ports that moved.
	prevReads, prevWrites, prevColl []uint64
	// strandStart[i] is the cycle liftQ[i] became valid (0 = idle);
	// rootStrand likewise for the root's pending lift.
	strandStart []uint64
	rootStrand  uint64
	lastOcc     int
}

func (s *Sim) instrState() *instrumentation {
	if s.instr == nil {
		s.instr = &instrumentation{
			prevReads:   make([]uint64, len(s.rams)),
			prevWrites:  make([]uint64, len(s.rams)),
			prevColl:    make([]uint64, len(s.rams)),
			strandStart: make([]uint64, len(s.rams)),
			lastOcc:     -1,
		}
	}
	return s.instr
}

// Instrument registers this simulator's pipeline probes in reg under
// the given metric-name prefix (e.g. "rpubmw"). Per-cycle facts are
// owned atomics; operation totals, per-level occupancy, SRAM port
// activity (reads, writes, and write-first hits — the operation-hiding
// events of Section 5.2.3) and fault/ECC counters are snapshot-time
// callbacks reading simulator state — snapshot only between Ticks.
// A nil registry leaves the simulator uninstrumented.
func (s *Sim) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	in := s.instrState()
	for k := 0; k < hw.NumCycleKinds; k++ {
		in.cycles[k] = reg.Counter(fmt.Sprintf("%s_cycles_%s_total", prefix, hw.CycleKind(k)))
	}
	in.rejected = reg.Counter(prefix + "_rejected_issues_total")
	in.mandIdle = reg.Counter(prefix + "_mandatory_idle_total")
	in.almostFull = reg.Counter(prefix + "_almost_full_events_total")
	in.occHigh = reg.Gauge(prefix + "_occupancy_highwater")
	depthBounds := make([]uint64, s.l)
	for i := range depthBounds {
		depthBounds[i] = uint64(i + 1)
	}
	in.pushDepth = reg.Histogram(prefix+"_push_depth_levels", depthBounds)
	in.popDepth = reg.Histogram(prefix+"_pop_depth_levels", depthBounds)
	reg.Help(prefix+"_sojourn_cycles",
		"enqueue-to-dequeue latency of popped elements in clock cycles")
	in.sojourn = reg.QuantileHistogram(prefix + "_sojourn_cycles")

	reg.CounterFunc(prefix+"_pushes_total", func() uint64 { return s.pushes })
	reg.CounterFunc(prefix+"_pops_total", func() uint64 { return s.pops })
	reg.CounterFunc(prefix+"_sram_reads_total", func() uint64 { r, _, _ := s.RAMStats(); return r })
	reg.CounterFunc(prefix+"_sram_writes_total", func() uint64 { _, w, _ := s.RAMStats(); return w })
	reg.CounterFunc(prefix+"_sram_write_first_hits_total", func() uint64 { _, _, c := s.RAMStats(); return c })
	reg.CounterFunc(prefix+"_fault_detected_total", func() uint64 { return s.detected })
	reg.CounterFunc(prefix+"_fault_recoveries_total", func() uint64 { return s.recoveries })
	reg.CounterFunc(prefix+"_fault_check_runs_total", func() uint64 { return s.checkRuns })
	reg.CounterFunc(prefix+"_ecc_corrected_reads_total", func() uint64 { return s.ECCTotals().CorrectedReads })
	reg.CounterFunc(prefix+"_ecc_detected_reads_total", func() uint64 { return s.ECCTotals().DetectedReads })
	reg.CounterFunc(prefix+"_ecc_scrub_corrected_total", func() uint64 { return s.ECCTotals().ScrubCorrected })
	reg.GaugeFunc(prefix+"_occupancy", func() float64 { return float64(s.size) })
	reg.GaugeFunc(prefix+"_capacity", func() float64 { return float64(s.capacity) })
	for lvl := 1; lvl <= s.l; lvl++ {
		lvl := lvl
		reg.GaugeFunc(fmt.Sprintf("%s_level%d_occupancy", prefix, lvl),
			func() float64 { return float64(s.levelOccupancy(lvl)) })
	}
}

// TraceTo attaches a cycle-trace recorder (1 cycle = 1 µs): RPU
// operations appear on per-level tracks, SRAM port activity on
// per-level port tracks (with write-first collision markers), and
// refill strands as slices spanning the lift wait. pid groups the
// tracks. A nil recorder leaves tracing off.
func (s *Sim) TraceTo(tr *obs.TraceRecorder, pid int64) {
	if tr == nil {
		return
	}
	in := s.instrState()
	in.tr = tr
	in.pid = pid
	tr.ProcessName(pid, fmt.Sprintf("RPU-BMW m=%d l=%d", s.m, s.l))
	tr.ThreadName(pid, 1, "level 1 (root RPU)")
	tr.ThreadName(pid, strandTidBase+1, "refill strand L1")
	for lvl := 2; lvl <= s.l; lvl++ {
		tr.ThreadName(pid, int64(lvl), fmt.Sprintf("level %d", lvl))
		tr.ThreadName(pid, sramTidBase+int64(lvl), fmt.Sprintf("SRAM%d ports", lvl))
		if lvl < s.l {
			tr.ThreadName(pid, strandTidBase+int64(lvl), fmt.Sprintf("refill strand L%d", lvl))
		}
	}
}

// levelOccupancy counts occupied slots at a 1-based level, reading
// the root registers and peeking the SRAMs (committed state only).
func (s *Sim) levelOccupancy(lvl int) int {
	occ := 0
	if lvl == 1 {
		for i := 0; i < s.m; i++ {
			if s.root[i].count != 0 {
				occ++
			}
		}
		return occ
	}
	r := s.rams[lvl-2]
	for w := 0; w < r.Words(); w++ {
		nd := r.Peek(w)
		for i := 0; i < s.m; i++ {
			if nd.slots[i].count != 0 {
				occ++
			}
		}
	}
	return occ
}

// classifyCycle buckets a consumed cycle; it must run before Tick
// updates s.available and the cooldown so it sees the state the issue
// decision was made against.
func (s *Sim) classifyCycle(op hw.Op) hw.CycleKind {
	switch op.Kind {
	case hw.Push:
		return hw.CycleIssuePush
	case hw.Pop:
		return hw.CycleIssuePop
	}
	if !s.available || s.cooldown > 0 {
		return hw.CycleStall
	}
	if !s.Quiescent() {
		return hw.CycleDrain
	}
	return hw.CycleIdle
}

// reject counts a refused issue (the cycle is not consumed).
func (s *Sim) reject(err error) error {
	if s.instr != nil {
		s.instr.rejected.Inc()
	}
	return err
}

// traceOp emits one RPU operation as a slice on its level's track.
func (in *instrumentation) traceOp(cycle uint64, lvl int64, kind hw.OpKind) {
	if in.tr == nil || kind == hw.Nop {
		return
	}
	in.tr.Slice(in.pid, lvl, int64(cycle), 1, kind.String(), nil)
}

// endCycle records the per-cycle facts after the cycle's RPU work and
// RAM edges; wasAvailable is the availability the issue saw.
func (in *instrumentation) endCycle(s *Sim, kind hw.CycleKind, op hw.Op, wasAvailable bool) {
	in.cycles[kind].Inc()
	if op.Kind == hw.Nop && !wasAvailable {
		in.mandIdle.Inc()
	}
	in.occHigh.Max(float64(s.size))
	if full := s.AlmostFull(); full != in.wasAlmostFull {
		if full {
			in.almostFull.Inc()
			if in.tr != nil {
				in.tr.Instant(in.pid, 1, int64(s.cycle), "almost_full", nil)
			}
		}
		in.wasAlmostFull = full
	}
	if in.tr == nil {
		// Strand starts must still be tracked so metrics-only runs that
		// later attach a recorder don't emit bogus spans; cheap anyway.
		in.trackStrands(s)
		return
	}
	ts := int64(s.cycle)
	for i, r := range s.rams {
		reads, writes, coll := r.Stats()
		tid := sramTidBase + int64(i+2)
		if reads > in.prevReads[i] {
			in.tr.Slice(in.pid, tid, ts, 1, "rd", nil)
		}
		if writes > in.prevWrites[i] {
			in.tr.Slice(in.pid, tid, ts, 1, "wr", nil)
		}
		if coll > in.prevColl[i] {
			in.tr.Instant(in.pid, tid, ts, "write_first_hit", nil)
		}
		in.prevReads[i], in.prevWrites[i], in.prevColl[i] = reads, writes, coll
	}
	in.trackStrands(s)
	if s.size != in.lastOcc {
		in.tr.Counter(in.pid, ts, "occupancy", map[string]any{"elements": s.size})
		in.lastOcc = s.size
	}
	// Sojourn quantiles render as a periodic counter track; every 1024
	// cycles keeps the event volume negligible next to the op slices.
	if s.cycle&1023 == 0 {
		in.tr.QuantileCounter(in.pid, ts, "sojourn_cycles", in.sojourn.Snapshot())
	}
}

// SojournSnapshot returns the sojourn-latency distribution collected
// since Instrument was called (the zero snapshot when uninstrumented).
func (s *Sim) SojournSnapshot() obs.QuantileSnapshot {
	if s.instr == nil {
		return obs.QuantileSnapshot{}
	}
	return s.instr.sojourn.Snapshot()
}

// trackStrands turns liftQ/rootLift valid spans into trace slices:
// a strand's slice is emitted when it completes, so traces never hold
// unbalanced begin events. Start cycles are stored +1 so 0 means idle.
func (in *instrumentation) trackStrands(s *Sim) {
	emit := func(start *uint64, valid bool, tid int64) {
		switch {
		case valid && *start == 0:
			*start = s.cycle + 1
		case !valid && *start != 0:
			if in.tr != nil {
				begin := int64(*start - 1)
				in.tr.Slice(in.pid, tid, begin, int64(s.cycle)-begin, "lift_wait", nil)
			}
			*start = 0
		}
	}
	emit(&in.rootStrand, s.rootLift.valid, strandTidBase+1)
	for i := range s.liftQ {
		emit(&in.strandStart[i], s.liftQ[i].valid, strandTidBase+int64(i+2))
	}
}
