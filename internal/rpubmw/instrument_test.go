package rpubmw

import (
	"bytes"
	"testing"

	"repro/internal/hw"
	"repro/internal/obs"
)

// TestInstrumentedRun checks operation counters, the mandatory
// idle-after-pop accounting, operation-hiding counters, and cycle
// classification after a legal mixed workload.
func TestInstrumentedRun(t *testing.T) {
	s := New(4, 3)
	reg := obs.NewRegistry()
	s.Instrument(reg, "rpubmw")

	// Fill 20 (one push per cycle), then 6 pop / idle / push triples —
	// the paper's 3-cycle push-pop rate — then drain.
	for i := 0; i < 20; i++ {
		if _, err := s.Tick(hw.PushOp(uint64(500-i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if _, err := s.Tick(hw.PopOp()); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Tick(hw.NopOp()); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Tick(hw.PushOp(uint64(600+i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain()

	snap := reg.Snapshot()
	if p, q := snap.Counter("rpubmw_pushes_total"), snap.Counter("rpubmw_pops_total"); p != 26 || q != 26 {
		t.Fatalf("pushes/pops = %d/%d, want 26/26", p, q)
	}
	// Every pop is followed by exactly one mandatory idle nop in this
	// schedule — except the final Drain pop, which empties the tree
	// and leaves it quiescent, so no nop is ever issued after it.
	mand := snap.Counter("rpubmw_mandatory_idle_total")
	if mand != 25 {
		t.Fatalf("mandatory idle cycles = %d, want 25 (one per pop but the last)", mand)
	}
	// Deep pushes displace into SRAM; write-first hits happen under
	// back-to-back pushes to the same node.
	if snap.Counter("rpubmw_sram_reads_total") == 0 || snap.Counter("rpubmw_sram_writes_total") == 0 {
		t.Fatalf("SRAM port counters empty: %+v", snap.Counters)
	}
	var classified uint64
	for k := 0; k < hw.NumCycleKinds; k++ {
		classified += snap.Counter("rpubmw_cycles_" + hw.CycleKind(k).String() + "_total")
	}
	if classified != s.Cycle() {
		t.Fatalf("classified %d cycles, sim ran %d", classified, s.Cycle())
	}
	if got := snap.Gauge("rpubmw_occupancy"); got != 0 {
		t.Fatalf("final occupancy = %g, want 0", got)
	}
	if got := snap.Gauge("rpubmw_occupancy_highwater"); got != 20 {
		t.Fatalf("highwater = %g, want 20", got)
	}
}

// TestOperationHidingCounter pins the write-first collision metric:
// back-to-back pushes displacing into the same SRAM node make the
// second read collide with the first write-back, and the probe must
// surface it.
func TestOperationHidingCounter(t *testing.T) {
	s := New(2, 5)
	reg := obs.NewRegistry()
	s.Instrument(reg, "rpubmw")
	// The saturated push/pop/idle workload of the package's
	// operation-hiding test: repeated displacement down unbalanced
	// sub-trees makes consecutive operations hit the same SRAM word.
	for i := 0; i < 20; i++ {
		s.Tick(hw.PushOp(uint64(100+i), uint64(i)))
	}
	for i := 0; i < 200; i++ {
		s.Tick(hw.PushOp(uint64(i%50), uint64(i)))
		if _, err := s.Tick(hw.PopOp()); err != nil {
			t.Fatal(err)
		}
		s.Tick(hw.NopOp())
	}
	for !s.Quiescent() {
		s.Tick(hw.NopOp())
	}
	snap := reg.Snapshot()
	hits := snap.Counter("rpubmw_sram_write_first_hits_total")
	_, _, direct := s.RAMStats()
	if hits != direct {
		t.Fatalf("probe reports %d write-first hits, sim counted %d", hits, direct)
	}
	if hits == 0 {
		t.Fatal("expected at least one operation-hiding event under back-to-back pushes")
	}
}

// TestTraceRecordsValidPerfetto validates the RPU-BMW trace — level
// tracks, SRAM port tracks, refill strands — against the Chrome Trace
// Event schema.
func TestTraceRecordsValidPerfetto(t *testing.T) {
	s := New(2, 3)
	tr := obs.NewTraceRecorder()
	s.TraceTo(tr, 2)
	for i := 0; i < 10; i++ {
		if _, err := s.Tick(hw.PushOp(uint64(100-i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain()

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if err := obs.ValidateTrace(parsed); err != nil {
		t.Fatalf("trace fails schema validation: %v", err)
	}
	var sramTrack, strandSlice, rootOps bool
	for _, ev := range parsed.TraceEvents {
		switch {
		case ev.Phase == "X" && ev.Tid >= sramTidBase && ev.Tid < strandTidBase:
			sramTrack = true
		case ev.Phase == "X" && ev.Tid >= strandTidBase && ev.Name == "lift_wait":
			strandSlice = true
		case ev.Phase == "X" && ev.Tid == 1 && (ev.Name == "push" || ev.Name == "pop"):
			rootOps = true
		}
	}
	if !sramTrack || !strandSlice || !rootOps {
		t.Fatalf("trace missing tracks: sram=%v strand=%v root=%v", sramTrack, strandSlice, rootOps)
	}
}
