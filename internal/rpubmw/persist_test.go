package rpubmw

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hw"
	"repro/internal/persist"
)

func driveLogged(t *testing.T, s *Sim, seed int64, cycles int) []persist.Op {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var log []persist.Op
	for i := 0; i < cycles; i++ {
		switch {
		case s.PopAvailable() && s.Len() > 0 && rng.Intn(3) == 0:
			e, err := s.Tick(hw.PopOp())
			if err != nil {
				t.Fatal(err)
			}
			if e != nil {
				log = append(log, persist.Op{Kind: hw.Pop, Cycle: s.Cycle(), Value: e.Value, Meta: e.Meta})
			}
		case s.PushAvailable() && !s.AlmostFull() && rng.Intn(2) == 0:
			op := hw.PushOp(uint64(rng.Intn(400)), uint64(i))
			if _, err := s.Tick(op); err != nil {
				t.Fatal(err)
			}
			log = append(log, persist.Op{Kind: hw.Push, Cycle: s.Cycle(), Value: op.Value, Meta: op.Meta})
		default:
			if _, err := s.Tick(hw.NopOp()); err != nil {
				t.Fatal(err)
			}
		}
	}
	return log
}

func fence(t *testing.T, s *Sim) {
	t.Helper()
	for i := 0; !s.Quiescent(); i++ {
		if i > 10000 {
			t.Fatal("simulator never quiesced")
		}
		if _, err := s.Tick(hw.NopOp()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSnapshotRequiresQuiescence(t *testing.T) {
	s := New(2, 3)
	rng := rand.New(rand.NewSource(1))
	sawBusy := false
	for i := 0; i < 50 && !sawBusy; i++ {
		if s.PushAvailable() && !s.AlmostFull() {
			if _, err := s.Tick(hw.PushOp(uint64(rng.Intn(50)), uint64(i))); err != nil {
				t.Fatal(err)
			}
		} else if _, err := s.Tick(hw.NopOp()); err != nil {
			t.Fatal(err)
		}
		if !s.Quiescent() {
			sawBusy = true
			if _, err := s.EncodeSnapshot(); err == nil || !strings.Contains(err.Error(), "mid-pipeline") {
				t.Fatalf("mid-pipeline snapshot accepted: %v", err)
			}
		}
	}
	if !sawBusy {
		t.Fatal("workload never left the quiescent state; test is vacuous")
	}
	fence(t, s)
	if _, err := s.EncodeSnapshot(); err != nil {
		t.Fatalf("quiescent snapshot refused: %v", err)
	}
}

func TestSnapshotRoundTripPlain(t *testing.T) {
	a := New(4, 3)
	driveLogged(t, a, 2, 600)
	fence(t, a)
	payload, err := a.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := New(4, 3)
	if err := b.RestoreSnapshot(a.SnapshotVersion(), payload); err != nil {
		t.Fatal(err)
	}
	if err := b.VerifyRecovered(); err != nil {
		t.Fatal(err)
	}
	if b.Cycle() != a.Cycle() || b.Len() != a.Len() {
		t.Fatalf("cycle/len diverged: (%d,%d) vs (%d,%d)", b.Cycle(), b.Len(), a.Cycle(), a.Len())
	}
	compareDrains(t, a, b)
}

func TestSnapshotRoundTripSECDED(t *testing.T) {
	a := New(2, 3)
	a.Protect(faultinject.EccSECDED, 0)
	driveLogged(t, a, 3, 500)
	fence(t, a)
	payload, err := a.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := New(2, 3)
	b.Protect(faultinject.EccSECDED, 0)
	if err := b.RestoreSnapshot(1, payload); err != nil {
		t.Fatal(err)
	}
	if err := b.VerifyRecovered(); err != nil {
		t.Fatal(err)
	}
	compareDrains(t, a, b)
}

func TestRestoreRejectsProtectionMismatch(t *testing.T) {
	a := New(2, 3)
	a.Protect(faultinject.EccSECDED, 0)
	driveLogged(t, a, 4, 200)
	fence(t, a)
	payload, err := a.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := New(2, 3).RestoreSnapshot(1, payload); err == nil {
		t.Fatal("ECC snapshot restored into an unprotected machine")
	}
	par := New(2, 3)
	par.Protect(faultinject.EccParity, 0)
	if err := par.RestoreSnapshot(1, payload); err == nil {
		t.Fatal("SECDED snapshot restored into a parity-mode machine")
	}
	if err := New(4, 3).RestoreSnapshot(1, payload); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if err := New(2, 3).RestoreSnapshot(9, payload); err == nil {
		t.Fatal("unknown version accepted")
	}
}

// TestSnapshotPreservesUncorrectableError flips two bits in the same
// stored chunk — uncorrectable under SECDED. The snapshot must carry
// the raw codeword so the restored machine still reports it; re-encoding
// on restore would silently launder the corruption.
func TestSnapshotPreservesUncorrectableError(t *testing.T) {
	a := New(2, 3)
	a.Protect(faultinject.EccSECDED, 0)
	driveLogged(t, a, 5, 400)
	fence(t, a)

	er, ok := a.rams[0].(*faultinject.ECCRAM[node])
	if !ok {
		t.Fatal("level 2 RAM is not ECC-protected")
	}
	er.FlipBit(0, 0)
	er.FlipBit(0, 1) // same chunk: double-bit, uncorrectable

	payload, err := a.EncodeSnapshot()
	if err != nil {
		t.Fatalf("snapshot of latently-corrupt machine refused: %v", err)
	}
	b := New(2, 3)
	b.Protect(faultinject.EccSECDED, 0)
	if err := b.RestoreSnapshot(1, payload); err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(); err == nil {
		t.Fatal("uncorrectable error silently healed across the snapshot round trip")
	}
}

// TestSnapshotCarriesCorrectableError: a single-bit flip survives the
// round trip as raw bits, and SECDED still corrects it afterwards.
func TestSnapshotCarriesCorrectableError(t *testing.T) {
	a := New(2, 3)
	a.Protect(faultinject.EccSECDED, 0)
	driveLogged(t, a, 6, 400)
	fence(t, a)

	er := a.rams[0].(*faultinject.ECCRAM[node])
	er.FlipBit(0, 5)

	payload, err := a.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := New(2, 3)
	b.Protect(faultinject.EccSECDED, 0)
	if err := b.RestoreSnapshot(1, payload); err != nil {
		t.Fatal(err)
	}
	// Single-bit errors are correctable: audit passes, drains match.
	if err := b.Verify(); err != nil {
		t.Fatalf("correctable single-bit flip failed verification: %v", err)
	}
	compareDrains(t, a, b)
}

func TestFaultedMachineRefusesSnapshotRPU(t *testing.T) {
	s := New(2, 2)
	s.Protect(faultinject.EccParity, 0)
	for i := 0; i < 2; i++ {
		if _, err := s.Tick(hw.PushOp(uint64(i+1), 0)); err != nil {
			t.Fatal(err)
		}
	}
	fence(t, s)
	s.FlipBit(0, 0) // root latch flip: parity check latches the fault
	for i := 0; i < 20 && !s.Faulted(); i++ {
		s.Tick(hw.PopOp())
	}
	if !s.Faulted() {
		t.Fatal("injected root fault never detected")
	}
	if _, err := s.EncodeSnapshot(); err == nil {
		t.Fatal("faulted machine produced a snapshot")
	}
}

func TestReplayFromGenesisRPU(t *testing.T) {
	a := New(3, 3)
	log := driveLogged(t, a, 7, 600)

	b := New(3, 3)
	for i, op := range log {
		if err := b.Replay(op); err != nil {
			t.Fatalf("replay op %d (%+v): %v", i, op, err)
		}
	}
	fence(t, a)
	fence(t, b)
	if err := b.VerifyRecovered(); err != nil {
		t.Fatal(err)
	}
	compareDrains(t, a, b)
}

func TestReplayRejectsCycleRewindRPU(t *testing.T) {
	s := New(2, 2)
	if err := s.Replay(persist.Op{Kind: hw.Push, Cycle: 2, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Replay(persist.Op{Kind: hw.Push, Cycle: 2, Value: 2}); err == nil {
		t.Fatal("replay at a past cycle accepted")
	}
}

func compareDrains(t *testing.T, a, b *Sim) {
	t.Helper()
	da, db := a.Drain(), b.Drain()
	if len(da) != len(db) {
		t.Fatalf("drain lengths %d vs %d", len(da), len(db))
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("pop %d diverged: %+v vs %+v", i, da[i], db[i])
		}
	}
}

var _ = core.Element{}
