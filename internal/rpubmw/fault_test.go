package rpubmw

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hw"
)

// drainWithRecovery pops sim and golden in lockstep; on a detected
// corruption it recovers the sim and rebuilds the golden tree from the
// survivors. It returns the number of recoveries performed.
func drainWithRecovery(t *testing.T, s *Sim, g *core.Tree) int {
	t.Helper()
	recoveries := 0
	for g.Len() > 0 || s.Len() > 0 {
		if !s.PopAvailable() {
			if _, err := s.Tick(hw.NopOp()); err != nil && errors.Is(err, hw.ErrCorrupt) {
				recoveries += rebuild(t, s, g)
				continue
			}
			continue
		}
		got, err := s.Tick(hw.PopOp())
		if err != nil {
			if !errors.Is(err, hw.ErrCorrupt) {
				t.Fatalf("pop: %v", err)
			}
			recoveries += rebuild(t, s, g)
			continue
		}
		want, gerr := g.Pop()
		if gerr != nil {
			t.Fatalf("golden pop: %v", gerr)
		}
		if got.Value != want.Value || got.Meta != want.Meta {
			t.Fatalf("pop mismatch: sim {%d %d} golden {%d %d}", got.Value, got.Meta, want.Value, want.Meta)
		}
	}
	return recoveries
}

func rebuild(t *testing.T, s *Sim, g *core.Tree) int {
	t.Helper()
	survivors, _ := s.Recover()
	g.Reset()
	for _, e := range survivors {
		if err := g.Push(core.Element{Value: e.Value, Meta: e.Meta}); err != nil {
			t.Fatalf("golden rebuild: %v", err)
		}
	}
	return 1
}

// fill pushes n random elements into both sim and golden.
func fill(t *testing.T, s *Sim, g *core.Tree, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		v, mt := uint64(rng.Intn(1000)), uint64(i)
		if _, err := s.Tick(hw.PushOp(v, mt)); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		if err := g.Push(core.Element{Value: v, Meta: mt}); err != nil {
			t.Fatalf("golden push %d: %v", i, err)
		}
	}
	for !s.Quiescent() {
		s.Tick(hw.NopOp())
	}
}

// TestProtectZeroFaultEquivalence proves the ECC layer is transparent:
// a SECDED-protected simulator with a scrubber matches the golden model
// operation for operation when no faults are injected.
func TestProtectZeroFaultEquivalence(t *testing.T) {
	const m, l = 4, 3
	s := New(m, l)
	s.Protect(faultinject.EccSECDED, 3)
	s.CheckEvery = 16
	g := core.New(m, l)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 4000; i++ {
		switch {
		case !s.PushAvailable():
			s.Tick(hw.NopOp())
		case rng.Intn(3) != 0 && !g.AlmostFull():
			v, mt := uint64(rng.Intn(500)), uint64(i)
			if _, err := s.Tick(hw.PushOp(v, mt)); err != nil {
				t.Fatalf("push: %v", err)
			}
			g.Push(core.Element{Value: v, Meta: mt})
		case g.Len() > 0:
			want, _ := g.Pop()
			got, err := s.Tick(hw.PopOp())
			if err != nil {
				t.Fatalf("pop: %v", err)
			}
			if got.Value != want.Value || got.Meta != want.Meta {
				t.Fatalf("op %d: pop mismatch", i)
			}
		default:
			s.Tick(hw.NopOp())
		}
	}
	if r := drainWithRecovery(t, s, g); r != 0 {
		t.Fatalf("%d recoveries on a clean run", r)
	}
	if s.Detected() != 0 {
		t.Fatalf("detected %d corruptions with no faults injected", s.Detected())
	}
	if s.CheckRuns() == 0 {
		t.Fatal("online checker never ran")
	}
}

// TestSECDEDCorrectsSingleBit flips one stored SRAM bit and requires
// the pipeline to keep producing golden-identical output with zero
// detections — the correction is transparent.
func TestSECDEDCorrectsSingleBit(t *testing.T) {
	const m, l = 2, 3
	s := New(m, l)
	s.Protect(faultinject.EccSECDED, 0)
	g := core.New(m, l)
	fill(t, s, g, s.Cap(), 31)
	targets := s.FaultTargets()
	leaf := targets[len(targets)-1] // sramL
	if leaf.TargetName() != "sram3" {
		t.Fatalf("unexpected target order: %v", leaf.TargetName())
	}
	leaf.FlipBit(0, 7) // payload bit of slot 0's value chunk
	if r := drainWithRecovery(t, s, g); r != 0 {
		t.Fatalf("%d recoveries; SECDED should have corrected silently", r)
	}
	if s.Detected() != 0 {
		t.Fatalf("detected %d; single-bit error must be corrected", s.Detected())
	}
	if s.ECCTotals().CorrectedReads == 0 {
		t.Fatal("no corrected reads recorded")
	}
}

// TestSECDEDDetectsDoubleBit flips two bits in one chunk: the read must
// surface a typed corruption error, and recovery must drop exactly the
// poisoned slot while the rest of the tree drains golden-identically.
func TestSECDEDDetectsDoubleBit(t *testing.T) {
	const m, l = 2, 3
	s := New(m, l)
	s.Protect(faultinject.EccSECDED, 0)
	g := core.New(m, l)
	fill(t, s, g, s.Cap(), 33)
	sram2 := s.FaultTargets()[1]
	if sram2.TargetName() != "sram2" {
		t.Fatalf("unexpected target order: %v", sram2.TargetName())
	}
	sram2.FlipBit(0, 2)
	sram2.FlipBit(0, 5) // two flips in slot 0's value chunk: uncorrectable
	recoveries := drainWithRecovery(t, s, g)
	if recoveries != 1 {
		t.Fatalf("recoveries = %d want 1", recoveries)
	}
	if s.Detected() != 1 {
		t.Fatalf("detected = %d want 1", s.Detected())
	}
	if s.ECCTotals().DetectedReads != 1 {
		t.Fatalf("DetectedReads = %d want 1", s.ECCTotals().DetectedReads)
	}
}

// TestRecoverConservesVoidedRefill pins the in-flight accounting: a
// pop whose refill fetch is voided by an uncorrectable read has lifted
// nothing, so the fetched node must be harvested intact — skipping its
// minimum as a "stale duplicate" would silently lose an element. Every
// element remaining in the machine must come back as a survivor or a
// counted drop, and nothing already delivered may reappear.
func TestRecoverConservesVoidedRefill(t *testing.T) {
	const m, l = 2, 3
	s := New(m, l)
	s.Protect(faultinject.EccSECDED, 0)
	for i, v := range []uint64{100, 99, 98, 97, 96, 95} {
		if _, err := s.Tick(hw.PushOp(v, uint64(i))); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		for !s.Quiescent() {
			s.Tick(hw.NopOp())
		}
	}
	// One clean pop (95) with its refill completed.
	for !s.PopAvailable() {
		s.Tick(hw.NopOp())
	}
	if got, err := s.Tick(hw.PopOp()); err != nil || got.Value != 95 {
		t.Fatalf("pop = %v, %v want 95", got, err)
	}
	for !s.Quiescent() {
		s.Tick(hw.NopOp())
	}
	// Poison the word the next refill will fetch, then pop: the element
	// is delivered, but the refill read is uncorrectable and voids the
	// lift with the substitute still resident below.
	sram2 := s.FaultTargets()[1]
	if sram2.TargetName() != "sram2" {
		t.Fatalf("unexpected target order: %v", sram2.TargetName())
	}
	sram2.FlipBit(0, 2)
	sram2.FlipBit(0, 5) // two flips in slot 0's value chunk: uncorrectable
	for !s.PopAvailable() {
		s.Tick(hw.NopOp())
	}
	if got, err := s.Tick(hw.PopOp()); err != nil || got.Value != 96 {
		t.Fatalf("pop = %v, %v want 96", got, err)
	}
	if _, err := s.Tick(hw.NopOp()); !errors.Is(err, hw.ErrCorrupt) {
		t.Fatalf("refill over the poisoned word not detected: %v", err)
	}
	remaining := s.Len()
	survivors, dropped := s.Recover()
	if len(survivors)+dropped != remaining {
		t.Fatalf("conservation: %d survivors + %d dropped != %d remaining",
			len(survivors), dropped, remaining)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d want 1 (exactly the poisoned slot)", dropped)
	}
	for _, e := range survivors {
		if e.Value <= 96 {
			t.Fatalf("phantom survivor %d: value was already delivered", e.Value)
		}
	}
}

// TestParityModeDetectsSingleBit checks the parity-only ablation:
// a single flip is detected (not corrected) and recovery drops the
// poisoned slot.
func TestParityModeDetectsSingleBit(t *testing.T) {
	const m, l = 2, 3
	s := New(m, l)
	s.Protect(faultinject.EccParity, 0)
	g := core.New(m, l)
	fill(t, s, g, s.Cap(), 35)
	s.FaultTargets()[1].FlipBit(0, 11)
	if r := drainWithRecovery(t, s, g); r != 1 {
		t.Fatalf("recoveries = %d want 1", r)
	}
	if s.Detected() != 1 {
		t.Fatalf("detected = %d want 1", s.Detected())
	}
}

// TestRootParityDetectsFlip flips a root latch bit: the next root
// operation must latch a sticky corruption naming the rpu-regs unit.
func TestRootParityDetectsFlip(t *testing.T) {
	const m, l = 2, 3
	s := New(m, l)
	s.Protect(faultinject.EccSECDED, 0)
	g := core.New(m, l)
	fill(t, s, g, 6, 37)
	s.FlipBit(0, 70) // metadata bit of root slot 0
	_, err := s.Tick(hw.PopOp())
	if err == nil {
		t.Fatal("pop after root flip succeeded")
	}
	var ce *hw.CorruptionError
	if !errors.As(err, &ce) || ce.Unit != "rpu-regs" {
		t.Fatalf("error = %v", err)
	}
	if _, err2 := s.Tick(hw.NopOp()); !errors.Is(err2, hw.ErrCorrupt) {
		t.Fatalf("fault status not sticky: %v", err2)
	}
	if r := drainWithRecovery(t, s, g); r != 1 {
		t.Fatalf("recoveries = %d want 1", r)
	}
}

// TestScrubberRepairsIdleCorruption flips a bit and lets the background
// scrubber repair it before the functional path ever reads the word.
func TestScrubberRepairsIdleCorruption(t *testing.T) {
	const m, l = 2, 3
	s := New(m, l)
	s.Protect(faultinject.EccSECDED, 1) // scrub one word per tick
	g := core.New(m, l)
	fill(t, s, g, s.Cap(), 39)
	s.FaultTargets()[2].FlipBit(1, 3)
	// One full scrub sweep of the largest RAM.
	for i := 0; i < 8; i++ {
		if _, err := s.Tick(hw.NopOp()); err != nil {
			t.Fatalf("nop: %v", err)
		}
	}
	st := s.ECCTotals()
	if st.ScrubCorrected == 0 {
		t.Fatalf("scrubber repaired nothing: %+v", st)
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("Verify after scrub: %v", err)
	}
	if r := drainWithRecovery(t, s, g); r != 0 || s.Detected() != 0 {
		t.Fatalf("recoveries=%d detected=%d after scrub repair", r, s.Detected())
	}
}

// TestInjectionPlanIntegration drives the full loop: a seeded plan
// injecting scheduled flips across every target (root latches and all
// SRAM levels) while a random workload runs differentially against the
// golden model, recovering on every detection. SECDED corrects most
// SRAM strikes; everything detected recovers consistently.
func TestInjectionPlanIntegration(t *testing.T) {
	const m, l = 4, 3
	s := New(m, l)
	s.Protect(faultinject.EccSECDED, 4)
	s.CheckEvery = 64
	plan := faultinject.NewPlan(faultinject.Config{Seed: 77})
	for _, tgt := range s.FaultTargets() {
		plan.Register(tgt)
	}
	s.AttachFaults(plan)
	for i := 1; i <= 25; i++ {
		plan.ScheduleRandomFlip(uint64(i * 97))
	}

	g := core.New(m, l)
	rng := rand.New(rand.NewSource(41))
	recoveries := 0
	for i := 0; i < 3000; i++ {
		var err error
		switch {
		case !s.PushAvailable():
			_, err = s.Tick(hw.NopOp())
		case rng.Intn(3) != 0 && !g.AlmostFull():
			v, mt := uint64(rng.Intn(400)), uint64(i)
			_, err = s.Tick(hw.PushOp(v, mt))
			if err == nil {
				g.Push(core.Element{Value: v, Meta: mt})
			}
		case g.Len() > 0:
			var got *core.Element
			got, err = s.Tick(hw.PopOp())
			if err == nil {
				want, gerr := g.Pop()
				if gerr != nil {
					t.Fatalf("golden pop: %v", gerr)
				}
				if got.Value != want.Value || got.Meta != want.Meta {
					t.Fatalf("op %d: divergence before any detection", i)
				}
			}
		default:
			_, err = s.Tick(hw.NopOp())
		}
		if err != nil {
			if !errors.Is(err, hw.ErrCorrupt) {
				t.Fatalf("op %d: %v", i, err)
			}
			recoveries += rebuild(t, s, g)
		}
	}
	if plan.Injected() != 25 {
		t.Fatalf("injected = %d want 25", plan.Injected())
	}
	drainWithRecovery(t, s, g)
	t.Logf("detected=%d recoveries=%d ecc=%+v", s.Detected(), recoveries, s.ECCTotals())
}
