package cluster

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// FetchMap dials addr and asks for a map newer than since (version 0
// fetches unconditionally). It returns (nil, nil) when the peer has
// nothing newer. One throwaway connection per call — map refresh is a
// control-plane rarity, not a hot path.
func FetchMap(addr string, since uint64, timeout time.Duration) (*Map, error) {
	payload, err := exchange(addr, wire.TClusterHello, wire.AppendClusterHello(nil, since), timeout)
	if err != nil {
		return nil, err
	}
	if len(payload) == 0 {
		return nil, nil
	}
	return Decode(payload)
}

// OfferMap pushes m to addr (the gossip write) and returns the peer's
// map when the peer answered with one of its own — the peer holding
// something newer. (nil, nil) means the peer accepted or already knew.
func OfferMap(addr string, m *Map, timeout time.Duration) (*Map, error) {
	payload, err := exchange(addr, wire.TClusterMap, m.Encode(nil), timeout)
	if err != nil {
		return nil, err
	}
	if len(payload) == 0 {
		return nil, nil
	}
	return Decode(payload)
}

// exchange runs one request/response round trip on a fresh connection.
func exchange(addr string, typ wire.Type, payload []byte, timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := wire.WriteFrame(conn, typ, 1, payload); err != nil {
		return nil, err
	}
	f, err := wire.ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case wire.TClusterMap:
		return append([]byte(nil), f.Payload...), nil
	case wire.TError:
		msg := ""
		if len(f.Payload) > 1 {
			msg = string(f.Payload[1:])
		}
		return nil, fmt.Errorf("cluster: peer %s refused: %s", addr, msg)
	}
	return nil, fmt.Errorf("cluster: peer %s answered frame type %d", addr, f.Type)
}

// GossiperConfig parameterises a node's map-gossip loop.
type GossiperConfig struct {
	// State is the node's cluster state.
	State *State
	// SelfAddrs are this process's own listen addresses, excluded from
	// the peer sweep (a node's standby is a peer of its primary — the
	// standby must track epoch bumps elsewhere in the cluster so it
	// holds a current map at promotion).
	SelfAddrs []string
	// Interval is the sweep period (default 2s). Kick forces an
	// immediate sweep — promotion and rebalance use it so a new map
	// spreads in one round trip instead of one period.
	Interval time.Duration
	// Timeout bounds each peer exchange (default 2s).
	Timeout time.Duration
	// Logf, when set, receives diagnostic lines.
	Logf func(format string, args ...any)
}

// Gossiper spreads map changes: each sweep offers the live map to
// every address in it (minus this process's own), adopting anything
// newer a peer answers with. Version dominance makes it convergent —
// a sweep is idempotent once everyone holds the newest map.
type Gossiper struct {
	cfg   GossiperConfig
	kick  chan struct{}
	stop  chan struct{}
	done  chan struct{}
	self  map[string]bool
	fails atomic.Uint64
}

// NewGossiper builds the loop; call Run (usually in a goroutine).
func NewGossiper(cfg GossiperConfig) *Gossiper {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	g := &Gossiper{
		cfg:  cfg,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
		self: map[string]bool{},
	}
	for _, a := range cfg.SelfAddrs {
		g.self[a] = true
	}
	return g
}

// Kick requests an immediate sweep (coalesced if one is pending).
func (g *Gossiper) Kick() {
	select {
	case g.kick <- struct{}{}:
	default:
	}
}

// Fails counts failed peer exchanges (dead peers during a sweep are
// expected — the sweep carries on to the rest).
func (g *Gossiper) Fails() uint64 { return g.fails.Load() }

// Run sweeps until Stop.
func (g *Gossiper) Run() {
	defer close(g.done)
	t := time.NewTicker(g.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
		case <-g.kick:
		}
		g.sweep()
	}
}

// Stop ends the loop and waits for the in-flight sweep.
func (g *Gossiper) Stop() {
	select {
	case <-g.stop:
	default:
		close(g.stop)
	}
	<-g.done
}

// sweep offers the live map to every peer address it names.
func (g *Gossiper) sweep() {
	m := g.cfg.State.Current()
	for _, n := range m.Nodes {
		for _, addr := range n.Addrs {
			if g.self[addr] {
				continue
			}
			reply, err := OfferMap(addr, m, g.cfg.Timeout)
			if err != nil {
				g.fails.Add(1)
				continue
			}
			if reply != nil && g.cfg.State.Offer(reply) {
				if g.cfg.Logf != nil {
					g.cfg.Logf("cluster: adopted map version %d from %s", reply.Version, addr)
				}
				// The adopted map may name peers this sweep's snapshot
				// did not; the next sweep covers them.
				m = g.cfg.State.Current()
			}
		}
	}
}
