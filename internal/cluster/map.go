// Package cluster generalises the engine's rank-range router from
// shard goroutines to remote bmwd nodes — the step from one multi-core
// process to a fleet. A versioned Map partitions the cluster key space
// (element rank, or a hash of the flow metadata) into contiguous
// per-node bands; clients route each push straight to its owner, and
// PopMin is reconstructed client-side as a strict merge over per-node
// heads — the same design the engine uses across shards, lifted one
// level up. Nodes enforce ownership at their front door (a push
// outside the owned band is refused with StatusNotOwner carrying the
// node's map version), exchange maps over the wire protocol's
// TClusterHello/TClusterMap frames, and converge on the newest map by
// gossip, so a promotion or a rebalance propagates without a
// coordinator. See DESIGN.md §6b.
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
)

// ErrBadMap reports bytes that cannot be a cluster map: torn, corrupt,
// or structurally invalid (overlapping bands, missing coverage,
// version zero). Decode never yields a partially-valid map — the
// contract FuzzClusterMapDecode enforces.
var ErrBadMap = errors.New("cluster: bad map")

// Mode selects which key the map's bands partition.
type Mode uint8

// Partitioning modes. They mirror engine.Routing one level up: rank
// bands preserve a strict global drain order, hash bands balance load
// with approximate global order (per-node exactness still holds).
const (
	// ModeHash partitions splitmix64(Meta) — the flow key.
	ModeHash Mode = 0
	// ModeRank partitions the element rank (Value), clamped to the
	// RankBits-wide rank space.
	ModeRank Mode = 1
)

// String names the mode as used in map files and flags.
func (m Mode) String() string {
	switch m {
	case ModeHash:
		return "hash"
	case ModeRank:
		return "rank"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// ParseMode resolves a mode name ("hash", "rank").
func ParseMode(s string) (Mode, error) {
	switch s {
	case "hash":
		return ModeHash, nil
	case "rank":
		return ModeRank, nil
	}
	return 0, fmt.Errorf("cluster: unknown mode %q (want hash or rank)", s)
}

// Codec and validation bounds.
const (
	// codecVersion is the binary map encoding version.
	codecVersion = 1
	// MaxNodes bounds a map's node count; with MaxAddrs addresses each
	// the encoding stays far under wire.MaxPayload.
	MaxNodes = 256
	// MaxAddrs bounds one node's address list (primary + standbys).
	MaxAddrs = 4
	// MaxAddrLen bounds one address string.
	MaxAddrLen = 256
)

// Node is one replica group in the map: a primary (Addrs[0]) and its
// standbys, owning the key band [Start, next node's Start). Epoch
// counts the group's promotions — a failover bumps it (and the map
// version), which is how the rest of the cluster learns the group's
// serving head moved without the band layout changing.
type Node struct {
	ID    uint32
	Epoch uint64
	Start uint64
	// Addrs are the group's wire addresses in failover order: primary
	// first, standbys after — exactly the list a ResilientClient
	// rotates through on StatusNotPrimary.
	Addrs []string
	// Obs is the node's observability HTTP address ("" when not
	// exported); bmwtop's cluster view scrapes it.
	Obs string
}

// Map is one versioned cluster layout. Nodes are sorted by Start with
// Nodes[0].Start == 0, so the bands tile the key space with no gaps or
// overlaps by construction; node i owns [Start_i, Start_i+1), the last
// node through the top of the key space. Higher Version wins
// everywhere — gossip, client refresh, node adoption.
type Map struct {
	Version  uint64
	Mode     Mode
	RankBits uint8 // ModeRank: keys clamp to 1<<RankBits - 1; 0 in ModeHash
	Nodes    []Node
}

// splitmix64 is the hash-mode routing hash — the same function the
// engine uses for shard routing, so hash-banded clusters and
// hash-routed shards agree on the flow-key distribution. The two
// copies must stay identical.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Validate checks the map's structural invariants: nonzero version, a
// known mode with a sane rank width, and bands that tile the key space
// (sorted, starting at zero, strictly increasing, unique ids, bounded
// address lists). Decode calls it, so an adopted map is always whole.
func (m *Map) Validate() error {
	if m.Version == 0 {
		return fmt.Errorf("%w: version 0", ErrBadMap)
	}
	switch m.Mode {
	case ModeHash:
		if m.RankBits != 0 {
			return fmt.Errorf("%w: rank_bits %d in hash mode", ErrBadMap, m.RankBits)
		}
	case ModeRank:
		if m.RankBits < 1 || m.RankBits > 63 {
			return fmt.Errorf("%w: rank_bits %d (want 1..63)", ErrBadMap, m.RankBits)
		}
	default:
		return fmt.Errorf("%w: mode %d", ErrBadMap, uint8(m.Mode))
	}
	if len(m.Nodes) == 0 || len(m.Nodes) > MaxNodes {
		return fmt.Errorf("%w: %d nodes", ErrBadMap, len(m.Nodes))
	}
	if m.Nodes[0].Start != 0 {
		return fmt.Errorf("%w: first band starts at %d, not 0", ErrBadMap, m.Nodes[0].Start)
	}
	seen := make(map[uint32]bool, len(m.Nodes))
	for i, n := range m.Nodes {
		if seen[n.ID] {
			return fmt.Errorf("%w: duplicate node id %d", ErrBadMap, n.ID)
		}
		seen[n.ID] = true
		if i > 0 && n.Start <= m.Nodes[i-1].Start {
			return fmt.Errorf("%w: band starts not strictly increasing at node %d", ErrBadMap, n.ID)
		}
		if m.Mode == ModeRank && n.Start > (uint64(1)<<m.RankBits)-1 {
			return fmt.Errorf("%w: node %d band start %d beyond %d-bit rank space", ErrBadMap, n.ID, n.Start, m.RankBits)
		}
		if len(n.Addrs) == 0 || len(n.Addrs) > MaxAddrs {
			return fmt.Errorf("%w: node %d has %d addrs", ErrBadMap, n.ID, len(n.Addrs))
		}
		for _, a := range n.Addrs {
			if len(a) == 0 || len(a) > MaxAddrLen {
				return fmt.Errorf("%w: node %d addr length %d", ErrBadMap, n.ID, len(a))
			}
		}
		if len(n.Obs) > MaxAddrLen {
			return fmt.Errorf("%w: node %d obs length %d", ErrBadMap, n.ID, len(n.Obs))
		}
	}
	return nil
}

// KeyOf maps an element to its cluster routing key: the clamped rank
// in ModeRank (mirroring the engine's rank router), the metadata hash
// in ModeHash.
func (m *Map) KeyOf(value, meta uint64) uint64 {
	if m.Mode == ModeRank {
		if max := (uint64(1) << m.RankBits) - 1; value > max {
			return max
		}
		return value
	}
	return splitmix64(meta)
}

// NodeFor returns the index of the node owning key.
func (m *Map) NodeFor(key uint64) int {
	// First index whose band starts beyond key; the owner is the one
	// before it. Nodes[0].Start == 0 guarantees i >= 1.
	i := sort.Search(len(m.Nodes), func(i int) bool { return m.Nodes[i].Start > key })
	return i - 1
}

// Owner returns the node owning key.
func (m *Map) Owner(key uint64) *Node { return &m.Nodes[m.NodeFor(key)] }

// ByID returns the node with the given id, or nil.
func (m *Map) ByID(id uint32) *Node {
	for i := range m.Nodes {
		if m.Nodes[i].ID == id {
			return &m.Nodes[i]
		}
	}
	return nil
}

// Band returns the inclusive key range [start, end] node id owns.
func (m *Map) Band(id uint32) (start, end uint64, ok bool) {
	for i := range m.Nodes {
		if m.Nodes[i].ID != id {
			continue
		}
		end = uint64(math.MaxUint64)
		if m.Mode == ModeRank {
			end = (uint64(1) << m.RankBits) - 1
		}
		if i+1 < len(m.Nodes) {
			end = m.Nodes[i+1].Start - 1
		}
		return m.Nodes[i].Start, end, true
	}
	return 0, 0, false
}

// EpochSum totals the node epochs — the tie-breaker when two maps
// share a version (e.g. two groups promoted concurrently, each minting
// version v+1 from v).
func (m *Map) EpochSum() uint64 {
	var s uint64
	for _, n := range m.Nodes {
		s += n.Epoch
	}
	return s
}

// Compare orders two maps for adoption: positive when a is newer than
// b, by version then by epoch sum. Equal keys compare 0 — neither
// replaces the other, so gossip reaches a fixpoint instead of
// thrashing between divergent same-version maps.
func Compare(a, b *Map) int {
	switch {
	case a.Version != b.Version:
		if a.Version > b.Version {
			return 1
		}
		return -1
	case a.EpochSum() != b.EpochSum():
		if a.EpochSum() > b.EpochSum() {
			return 1
		}
		return -1
	}
	return 0
}

// Clone deep-copies the map.
func (m *Map) Clone() *Map {
	c := &Map{Version: m.Version, Mode: m.Mode, RankBits: m.RankBits, Nodes: make([]Node, len(m.Nodes))}
	copy(c.Nodes, m.Nodes)
	for i := range c.Nodes {
		c.Nodes[i].Addrs = append([]string(nil), m.Nodes[i].Addrs...)
	}
	return c
}

// Encode appends the binary (TClusterMap payload) encoding to dst.
// The map must be valid; Encode panics on one that is not — that is a
// caller bug, never an input condition.
func (m *Map) Encode(dst []byte) []byte {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	dst = append(dst, codecVersion)
	dst = binary.LittleEndian.AppendUint64(dst, m.Version)
	dst = append(dst, byte(m.Mode), m.RankBits)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Nodes)))
	for _, n := range m.Nodes {
		dst = binary.LittleEndian.AppendUint32(dst, n.ID)
		dst = binary.LittleEndian.AppendUint64(dst, n.Epoch)
		dst = binary.LittleEndian.AppendUint64(dst, n.Start)
		dst = append(dst, byte(len(n.Addrs)))
		for _, a := range n.Addrs {
			dst = binary.LittleEndian.AppendUint16(dst, uint16(len(a)))
			dst = append(dst, a...)
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(n.Obs)))
		dst = append(dst, n.Obs...)
	}
	return dst
}

// Decode parses a binary map. Arbitrary input never panics; torn or
// corrupt bytes — including structurally invalid maps and trailing
// garbage — return ErrBadMap-wrapped errors and never a partial map.
func Decode(p []byte) (*Map, error) {
	if len(p) < 13 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadMap, len(p))
	}
	if p[0] != codecVersion {
		return nil, fmt.Errorf("%w: codec version %d", ErrBadMap, p[0])
	}
	m := &Map{
		Version:  binary.LittleEndian.Uint64(p[1:9]),
		Mode:     Mode(p[9]),
		RankBits: p[10],
	}
	count := int(binary.LittleEndian.Uint16(p[11:13]))
	if count == 0 || count > MaxNodes {
		return nil, fmt.Errorf("%w: %d nodes", ErrBadMap, count)
	}
	p = p[13:]
	m.Nodes = make([]Node, 0, count)
	for i := 0; i < count; i++ {
		if len(p) < 21 {
			return nil, fmt.Errorf("%w: truncated at node %d", ErrBadMap, i)
		}
		n := Node{
			ID:    binary.LittleEndian.Uint32(p[0:4]),
			Epoch: binary.LittleEndian.Uint64(p[4:12]),
			Start: binary.LittleEndian.Uint64(p[12:20]),
		}
		na := int(p[20])
		p = p[21:]
		if na == 0 || na > MaxAddrs {
			return nil, fmt.Errorf("%w: node %d addr count %d", ErrBadMap, i, na)
		}
		for j := 0; j < na; j++ {
			s, rest, err := decodeString(p, i)
			if err != nil {
				return nil, err
			}
			if len(s) == 0 {
				return nil, fmt.Errorf("%w: node %d empty addr", ErrBadMap, i)
			}
			n.Addrs = append(n.Addrs, s)
			p = rest
		}
		obs, rest, err := decodeString(p, i)
		if err != nil {
			return nil, err
		}
		n.Obs = obs
		p = rest
		m.Nodes = append(m.Nodes, n)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMap, len(p))
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// decodeString parses one length-prefixed string with bounds checks.
func decodeString(p []byte, node int) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, fmt.Errorf("%w: truncated string at node %d", ErrBadMap, node)
	}
	n := int(binary.LittleEndian.Uint16(p))
	if n > MaxAddrLen {
		return "", nil, fmt.Errorf("%w: node %d string length %d", ErrBadMap, node, n)
	}
	if len(p) < 2+n {
		return "", nil, fmt.Errorf("%w: truncated string at node %d", ErrBadMap, node)
	}
	return string(p[2 : 2+n]), p[2+n:], nil
}

// jsonMap is the -cluster-map bootstrap file format.
type jsonMap struct {
	Version  uint64     `json:"version"`
	Mode     string     `json:"mode"`
	RankBits uint8      `json:"rank_bits,omitempty"`
	Nodes    []jsonNode `json:"nodes"`
}

type jsonNode struct {
	ID    uint32   `json:"id"`
	Epoch uint64   `json:"epoch,omitempty"`
	Start uint64   `json:"start"`
	Addrs []string `json:"addrs"`
	Obs   string   `json:"obs,omitempty"`
}

// LoadFile reads and validates a JSON map file — the static bootstrap
// every node and client can start from before gossip takes over.
// Nodes may appear in any order (the loader sorts by Start); a zero
// epoch defaults to 1.
func LoadFile(path string) (*Map, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var jm jsonMap
	if err := json.Unmarshal(b, &jm); err != nil {
		return nil, fmt.Errorf("cluster: parse %s: %w", path, err)
	}
	mode, err := ParseMode(jm.Mode)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", path, err)
	}
	m := &Map{Version: jm.Version, Mode: mode, RankBits: jm.RankBits}
	if m.Version == 0 {
		m.Version = 1
	}
	for _, jn := range jm.Nodes {
		n := Node{ID: jn.ID, Epoch: jn.Epoch, Start: jn.Start, Addrs: jn.Addrs, Obs: jn.Obs}
		if n.Epoch == 0 {
			n.Epoch = 1
		}
		m.Nodes = append(m.Nodes, n)
	}
	sort.Slice(m.Nodes, func(i, j int) bool { return m.Nodes[i].Start < m.Nodes[j].Start })
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", path, err)
	}
	return m, nil
}

// SaveFile writes the map as a JSON bootstrap file.
func (m *Map) SaveFile(path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	jm := jsonMap{Version: m.Version, Mode: m.Mode.String(), RankBits: m.RankBits}
	for _, n := range m.Nodes {
		jm.Nodes = append(jm.Nodes, jsonNode{ID: n.ID, Epoch: n.Epoch, Start: n.Start, Addrs: n.Addrs, Obs: n.Obs})
	}
	b, err := json.MarshalIndent(jm, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
