package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// State is one node's view of the cluster: the current map plus this
// node's identity in it. It backs the wire server's ownership gate and
// cluster-map handlers, and it is where promotion mints the successor
// map. All methods are safe for concurrent use; readers (the ownership
// gate on the request hot path) pay one atomic load.
type State struct {
	self uint32

	mu  sync.Mutex // serialises adopters; readers go through cur
	cur atomic.Pointer[Map]

	adopts atomic.Uint64

	onChange func(*Map)
}

// NewState validates m and binds it to this node's id. The id must
// appear in the map — a node that cannot find itself would refuse all
// traffic, which is a deployment error worth failing fast on.
func NewState(m *Map, self uint32) (*State, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.ByID(self) == nil {
		return nil, fmt.Errorf("cluster: node id %d not in map version %d", self, m.Version)
	}
	st := &State{self: self}
	st.cur.Store(m.Clone())
	return st, nil
}

// SetOnChange installs a callback fired (from the adopting goroutine)
// after each map change — adoption or self-promotion. Call before the
// state sees traffic.
func (st *State) SetOnChange(f func(*Map)) { st.onChange = f }

// Self returns this node's id.
func (st *State) Self() uint32 { return st.self }

// Current returns the live map. Callers must not mutate it.
func (st *State) Current() *Map { return st.cur.Load() }

// Version returns the live map's version.
func (st *State) Version() uint64 { return st.cur.Load().Version }

// Adopts counts maps adopted from peers (gossip or direct offers).
func (st *State) Adopts() uint64 { return st.adopts.Load() }

// Owns reports whether this node owns the push (value, meta) under the
// live map, along with that map's version — the pair the wire server's
// OwnerGate forwards as a StatusNotOwner redirect when ownership
// fails. A map that no longer lists this node owns it nothing: that is
// ownership transfer mid-flight, and refusing with the new version is
// exactly what re-routes the client.
func (st *State) Owns(value, meta uint64) (bool, uint64) {
	m := st.cur.Load()
	return m.Owner(m.KeyOf(value, meta)).ID == st.self, m.Version
}

// EncodedIfNewer returns the live map's encoding when it is newer than
// since, nil otherwise — the TClusterHello answer.
func (st *State) EncodedIfNewer(since uint64) []byte {
	m := st.cur.Load()
	if m.Version <= since {
		return nil
	}
	return m.Encode(nil)
}

// Offer proposes a map for adoption and reports whether it replaced
// the live one (strictly newer under Compare). The offered map is
// cloned on adoption, so the caller keeps ownership of its copy.
func (st *State) Offer(m *Map) bool {
	if err := m.Validate(); err != nil {
		return false
	}
	st.mu.Lock()
	if Compare(m, st.cur.Load()) <= 0 {
		st.mu.Unlock()
		return false
	}
	c := m.Clone()
	st.cur.Store(c)
	st.mu.Unlock()
	st.adopts.Add(1)
	if st.onChange != nil {
		st.onChange(c)
	}
	return true
}

// OfferEncoded is the wire server's ClusterSink: it decodes and maybe
// adopts a gossiped map, and returns the local map's encoding when the
// local one is the newer of the two (nil otherwise), converging both
// peers in one exchange. Undecodable bytes adopt nothing and answer
// with the local map — a corrupt offer is a peer worth healing.
func (st *State) OfferEncoded(p []byte) []byte {
	m, err := Decode(p)
	if err != nil {
		return st.cur.Load().Encode(nil)
	}
	st.Offer(m)
	if cur := st.cur.Load(); Compare(cur, m) > 0 {
		return cur.Encode(nil)
	}
	return nil
}

// PromoteSelf mints and installs the failover successor map: this
// node's epoch and the map version both bump, so every peer and client
// that hears about it knows the group's serving head moved. It returns
// the new map (for logging and an immediate gossip push). Called from
// the replication layer's promotion path.
func (st *State) PromoteSelf() *Map {
	st.mu.Lock()
	c := st.cur.Load().Clone()
	c.Version++
	if n := c.ByID(st.self); n != nil {
		n.Epoch++
	}
	st.cur.Store(c)
	st.mu.Unlock()
	if st.onChange != nil {
		st.onChange(c)
	}
	return c
}
