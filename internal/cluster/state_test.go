package cluster

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/wire"
)

// startNode boots an engine + wire server with the cluster state wired
// in (owner gate + map handlers) on a loopback port. The caller's map
// is the node's bootstrap; shutdown happens via t.Cleanup.
func startNode(t *testing.T, m *Map, id uint32) (string, *State, *engine.Engine) {
	t.Helper()
	eng, err := engine.New(engine.Config{Shards: 2, Order: 2, Levels: 10, Routing: engine.RouteHash})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(m, id)
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	srv := wire.NewServer(eng)
	srv.SetOwnerGate(func(op wire.Op) (bool, uint64) {
		return st.Owns(op.Value, op.Meta)
	})
	srv.SetClusterHandlers(st.EncodedIfNewer, st.OfferEncoded)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		eng.Close()
	})
	return ln.Addr().String(), st, eng
}

func TestStateOfferDominance(t *testing.T) {
	m := testMap()
	st, err := NewState(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	changes := 0
	st.SetOnChange(func(*Map) { changes++ })

	older := m.Clone()
	if st.Offer(older) {
		t.Fatal("adopted a map that is not newer")
	}
	newer := m.Clone()
	newer.Version++
	if !st.Offer(newer) {
		t.Fatal("refused a strictly newer map")
	}
	if st.Version() != m.Version+1 || st.Adopts() != 1 || changes != 1 {
		t.Fatalf("version=%d adopts=%d changes=%d", st.Version(), st.Adopts(), changes)
	}
	// The state cloned on adoption: mutating the offered map afterwards
	// must not reach through.
	newer.Nodes[0].Addrs[0] = "mutated"
	if st.Current().Nodes[0].Addrs[0] == "mutated" {
		t.Fatal("state aliases the offered map")
	}
}

func TestStatePromoteSelf(t *testing.T) {
	m := testMap()
	st, err := NewState(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := st.Current().ByID(2).Epoch
	nm := st.PromoteSelf()
	if nm.Version != m.Version+1 {
		t.Fatalf("promotion version %d, want %d", nm.Version, m.Version+1)
	}
	if got := st.Current().ByID(2).Epoch; got != before+1 {
		t.Fatalf("promotion epoch %d, want %d", got, before+1)
	}
	// The minted map dominates the old one — peers will adopt it.
	if Compare(st.Current(), m) <= 0 {
		t.Fatal("promoted map does not dominate its predecessor")
	}
}

func TestStateOwns(t *testing.T) {
	m := testMap() // bands: 1:[0,1000) 2:[1000,500000) 7:[500000,...]
	st, err := NewState(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if owned, ver := st.Owns(1000, 0); !owned || ver != m.Version {
		t.Fatalf("Owns(1000) = %v, %d", owned, ver)
	}
	if owned, _ := st.Owns(999, 0); owned {
		t.Fatal("Owns(999) should belong to node 1")
	}
	// A map that drops this node means it owns nothing — ownership
	// transfer mid-flight.
	dropped := m.Clone()
	dropped.Version++
	dropped.Nodes = dropped.Nodes[:2] // ids 1, 2 remain... drop node 7 instead
	st2, err := NewState(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Offer(dropped) {
		t.Fatal("offer refused")
	}
	if owned, ver := st2.Owns(700000, 0); owned || ver != dropped.Version {
		t.Fatalf("dropped node still owns: %v, %d", owned, ver)
	}
}

func TestStateOfferEncoded(t *testing.T) {
	m := testMap()
	st, err := NewState(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt bytes adopt nothing and answer with the local map.
	reply := st.OfferEncoded([]byte{1, 2, 3})
	if reply == nil {
		t.Fatal("corrupt offer should be answered with the local map")
	}
	if got, err := Decode(reply); err != nil || Compare(got, m) != 0 {
		t.Fatalf("reply decode: %v", err)
	}
	// A newer offer is adopted and answered with nil.
	newer := m.Clone()
	newer.Version++
	if reply := st.OfferEncoded(newer.Encode(nil)); reply != nil {
		t.Fatal("newer offer should be adopted silently")
	}
	if st.Version() != newer.Version {
		t.Fatalf("version %d after adoption", st.Version())
	}
	// An older offer is refused and answered with the newer local map.
	reply = st.OfferEncoded(m.Encode(nil))
	if reply == nil {
		t.Fatal("older offer should be answered with the local map")
	}
	if got, _ := Decode(reply); got.Version != newer.Version {
		t.Fatalf("reply version %d", got.Version)
	}
}

// TestWireMapExchange exercises the TClusterHello/TClusterMap frames
// against a real server: fetch, conditional fetch, offer-adopt and
// offer-refused round trips.
func TestWireMapExchange(t *testing.T) {
	m := testMap()
	m.Nodes = m.Nodes[:1] // single node is enough for the exchange
	m.Nodes[0].Addrs = []string{"127.0.0.1:1"}
	addr, st, _ := startNode(t, m, 1)

	got, err := FetchMap(addr, 0, 2*time.Second)
	if err != nil || got == nil {
		t.Fatalf("fetch: %v, %v", got, err)
	}
	if Compare(got, m) != 0 {
		t.Fatalf("fetched map version %d", got.Version)
	}
	// Nothing newer than what we already hold.
	got, err = FetchMap(addr, m.Version, 2*time.Second)
	if err != nil || got != nil {
		t.Fatalf("conditional fetch: %v, %v", got, err)
	}

	newer := m.Clone()
	newer.Version++
	reply, err := OfferMap(addr, newer, 2*time.Second)
	if err != nil || reply != nil {
		t.Fatalf("offer newer: %v, %v", reply, err)
	}
	if st.Version() != newer.Version {
		t.Fatalf("node did not adopt: version %d", st.Version())
	}
	// Offering the stale map back gets the newer one in reply.
	reply, err = OfferMap(addr, m, 2*time.Second)
	if err != nil || reply == nil {
		t.Fatalf("offer older: %v, %v", reply, err)
	}
	if reply.Version != newer.Version {
		t.Fatalf("reply version %d", reply.Version)
	}
}

// TestGossipConvergence injects a newer map into one node and checks
// the gossiper spreads it to every peer named by the map.
func TestGossipConvergence(t *testing.T) {
	// Build the real map from three pre-bound listeners.
	base := testMap()
	addrA, stA, _ := startNode(t, base, 1)
	addrB, stB, _ := startNode(t, base, 2)
	addrC, stC, _ := startNode(t, base, 7)
	live := base.Clone()
	live.Version++
	for i, a := range []string{addrA, addrB, addrC} {
		live.Nodes[i].Addrs = []string{a}
	}
	if !stA.Offer(live) {
		t.Fatal("node A refused the live map")
	}

	g := NewGossiper(GossiperConfig{
		State:     stA,
		SelfAddrs: []string{addrA},
		Interval:  10 * time.Millisecond,
		Timeout:   time.Second,
	})
	go g.Run()
	defer g.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for stB.Version() != live.Version || stC.Version() != live.Version {
		if time.Now().After(deadline) {
			t.Fatalf("gossip never converged: B=%d C=%d want %d",
				stB.Version(), stC.Version(), live.Version)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOwnerGateRefusal checks the wire-level contract: a push outside
// the owned band is refused with StatusNotOwner carrying the node's
// map version, while pops and peeks pass the gate.
func TestOwnerGateRefusal(t *testing.T) {
	m := testMap() // node 2 owns [1000, 500000)
	addr, _, _ := startNode(t, m, 2)
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Do([]wire.Op{
		{Kind: wire.OpPush, Value: 2000, Meta: 1}, // owned
		{Kind: wire.OpPush, Value: 5, Meta: 2},    // node 1's band
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Status != wire.StatusOK {
		t.Fatalf("owned push: %v", res[0].Status)
	}
	if res[1].Status != wire.StatusNotOwner || res[1].Value != m.Version {
		t.Fatalf("foreign push: %v value %d, want not-owner with map version %d",
			res[1].Status, res[1].Value, m.Version)
	}
	// Pops are never gated, and the refused push must not have applied.
	res, err = c.Do([]wire.Op{{Kind: wire.OpPop}, {Kind: wire.OpPeek}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Status != wire.StatusOK || res[0].Value != 2000 {
		t.Fatalf("pop: %v value %d", res[0].Status, res[0].Value)
	}
	// The peek is answered from post-batch state: the pop above drained
	// the only element.
	if res[1].Status != wire.StatusEmpty {
		t.Fatalf("peek after pop: %v", res[1].Status)
	}
}

func TestNewStateRejectsForeignID(t *testing.T) {
	if _, err := NewState(testMap(), 99); err == nil {
		t.Fatal("NewState accepted an id the map does not contain")
	}
	bad := testMap()
	bad.Version = 0
	if _, err := NewState(bad, 1); !errors.Is(err, ErrBadMap) {
		t.Fatalf("NewState on invalid map: %v", err)
	}
}
