package cluster

import (
	"context"
	"math"
	"math/rand"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/refpq"
	"repro/internal/wire"
)

// startServedMap binds n loopback listeners, lets the caller build the
// cluster map from the real addresses, then serves every node of that
// map (engine + owner gate + map handlers). Teardown via t.Cleanup.
func startServedMap(t *testing.T, n int, build func(addrs []string) *Map) (*Map, []*State) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	m := build(addrs)
	if err := m.Validate(); err != nil {
		t.Fatalf("built map invalid: %v", err)
	}
	states := make([]*State, n)
	for i, nd := range m.Nodes {
		eng, err := engine.New(engine.Config{Shards: 2, Order: 2, Levels: 10, Routing: engine.RouteHash})
		if err != nil {
			t.Fatal(err)
		}
		st, err := NewState(m, nd.ID)
		if err != nil {
			t.Fatal(err)
		}
		states[i] = st
		srv := wire.NewServer(eng)
		srv.SetOwnerGate(func(op wire.Op) (bool, uint64) {
			return st.Owns(op.Value, op.Meta)
		})
		srv.SetClusterHandlers(st.EncodedIfNewer, st.OfferEncoded)
		go srv.Serve(lns[i])
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
			eng.Close()
		})
	}
	return m, states
}

// rankMap3 partitions a RankBits-bit rank space over three nodes.
func rankMap3(addrs []string) *Map {
	const span = uint64(1) << 20
	return &Map{
		Version:  1,
		Mode:     ModeRank,
		RankBits: 20,
		Nodes: []Node{
			{ID: 1, Epoch: 1, Start: 0, Addrs: []string{addrs[0]}},
			{ID: 2, Epoch: 1, Start: span / 3, Addrs: []string{addrs[1]}},
			{ID: 3, Epoch: 1, Start: 2 * span / 3, Addrs: []string{addrs[2]}},
		},
	}
}

// hashMap3 partitions the full 64-bit hash space over three nodes.
func hashMap3(addrs []string) *Map {
	third := uint64(math.MaxUint64) / 3
	return &Map{
		Version: 1,
		Mode:    ModeHash,
		Nodes: []Node{
			{ID: 1, Epoch: 1, Start: 0, Addrs: []string{addrs[0]}},
			{ID: 2, Epoch: 1, Start: third, Addrs: []string{addrs[1]}},
			{ID: 3, Epoch: 1, Start: 2 * third, Addrs: []string{addrs[2]}},
		},
	}
}

func newTestClient(t *testing.T, m *Map) *Client {
	t.Helper()
	cl, err := NewClient(Options{
		Map:            m,
		RequestTimeout: 2 * time.Second,
		BaseDelay:      2 * time.Millisecond,
		MaxDelay:       50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// TestClientDifferential runs a sequential mixed workload through the
// routing client over three nodes and locksteps it against a single
// golden priority queue: every acked pop must return exactly the golden
// global minimum — the cross-node strict merge is exact for a
// sequential caller, in both routing modes.
func TestClientDifferential(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func([]string) *Map
	}{
		{"rank", rankMap3},
		{"hash", hashMap3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, _ := startServedMap(t, 3, tc.build)
			cl := newTestClient(t, m)
			golden := refpq.New()
			rng := rand.New(rand.NewSource(42))
			var meta uint64

			for i := 0; i < 2500; i++ {
				if rng.Intn(10) < 6 {
					v := rng.Uint64() % (1 << 20)
					meta++
					res, err := cl.Push(v, meta)
					if err != nil {
						t.Fatalf("op %d push: %v", i, err)
					}
					switch res.Status {
					case wire.StatusOK:
						golden.Push(refpq.Entry{Value: v, Meta: meta})
					case wire.StatusFull, wire.StatusBackpressure, wire.StatusOverloaded:
						// acked-not-applied
					default:
						t.Fatalf("op %d push status %v", i, res.Status)
					}
					continue
				}
				res, err := cl.PopMin()
				if err != nil {
					t.Fatalf("op %d pop: %v", i, err)
				}
				switch res.Status {
				case wire.StatusOK:
					if golden.Len() == 0 {
						t.Fatalf("op %d popped %d from an empty golden queue", i, res.Value)
					}
					want := golden.PopMin()
					if res.Value != want.Value {
						t.Fatalf("op %d pop = %d, golden min %d", i, res.Value, want.Value)
					}
				case wire.StatusEmpty:
					if golden.Len() != 0 {
						t.Fatalf("op %d pop empty with %d golden elements", i, golden.Len())
					}
				default:
					t.Fatalf("op %d pop status %v", i, res.Status)
				}
			}
			// Final drain: the cluster and the golden queue empty in the
			// same exact order.
			for golden.Len() > 0 {
				res, err := cl.PopMin()
				if err != nil || res.Status != wire.StatusOK {
					t.Fatalf("drain: %v %v with %d left", res.Status, err, golden.Len())
				}
				if want := golden.PopMin(); res.Value != want.Value {
					t.Fatalf("drain pop = %d, golden min %d", res.Value, want.Value)
				}
			}
			if res, err := cl.PopMin(); err != nil || res.Status != wire.StatusEmpty {
				t.Fatalf("post-drain pop: %v %v", res.Status, err)
			}
		})
	}
}

// TestClientStaleHeadRace pops an element out from under the routing
// client's head cache through a direct per-node connection: the
// client's next PopMin hits StatusEmpty on the node it believed held
// the minimum, and must recover by re-probing and returning the true
// global minimum.
func TestClientStaleHeadRace(t *testing.T) {
	m, _ := startServedMap(t, 3, rankMap3)
	cl := newTestClient(t, m)

	for _, v := range []uint64{10, 20, 800000} { // 10,20 → node 1; 800000 → node 3
		if res, err := cl.Push(v, v); err != nil || res.Status != wire.StatusOK {
			t.Fatalf("push %d: %v %v", v, res.Status, err)
		}
	}
	if res, err := cl.PopMin(); err != nil || res.Value != 10 {
		t.Fatalf("first pop: %v %v", res, err)
	}
	// The pop's piggybacked peek cached node 1's next head (20). Steal
	// it behind the client's back.
	direct, err := wire.Dial(m.Nodes[0].Addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	dres, err := direct.Do([]wire.Op{{Kind: wire.OpPop}})
	if err != nil || dres[0].Status != wire.StatusOK || dres[0].Value != 20 {
		t.Fatalf("direct steal: %v %v", dres, err)
	}
	// The client still believes node 1 heads at 20; it must survive the
	// stale hit and deliver the true minimum from node 3.
	if res, err := cl.PopMin(); err != nil || res.Status != wire.StatusOK || res.Value != 800000 {
		t.Fatalf("pop after steal: %+v %v", res, err)
	}
	if res, err := cl.PopMin(); err != nil || res.Status != wire.StatusEmpty {
		t.Fatalf("pop on drained cluster: %+v %v", res, err)
	}
}

// TestClientEmptyBandNode drives traffic that never lands on the middle
// node: the merge must skip past the empty band without stalling, and
// routing must never have pushed to it.
func TestClientEmptyBandNode(t *testing.T) {
	m, _ := startServedMap(t, 3, rankMap3)
	cl := newTestClient(t, m)

	vals := []uint64{5, 700001, 17, 900000, 2, 1048575, 44, 800000}
	for i, v := range vals { // all in node 1's or node 3's band
		if res, err := cl.Push(v, uint64(i)); err != nil || res.Status != wire.StatusOK {
			t.Fatalf("push %d: %v %v", v, res.Status, err)
		}
	}
	sorted := append([]uint64{}, vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, want := range sorted {
		res, err := cl.PopMin()
		if err != nil || res.Status != wire.StatusOK || res.Value != want {
			t.Fatalf("pop = %+v %v, want %d", res, err, want)
		}
	}
	if res, err := cl.PopMin(); err != nil || res.Status != wire.StatusEmpty {
		t.Fatalf("post-drain pop: %+v %v", res, err)
	}
	if ps := cl.Stats().PerNode[2].Pushes; ps != 0 {
		t.Fatalf("empty-band node received %d pushes", ps)
	}
}

// TestClientRedirectRefresh bootstraps the client with a stale map
// whose bands disagree with the cluster's: the owner refuses the push
// with StatusNotOwner, and the client must refresh to the live map and
// re-route within the same call.
func TestClientRedirectRefresh(t *testing.T) {
	m, _ := startServedMap(t, 3, func(addrs []string) *Map {
		m := rankMap3(addrs)
		m.Version = 2 // the cluster serves v2
		return m
	})
	stale := m.Clone()
	stale.Version = 1
	// v1 hands nearly the whole space to node 1; value 900000 routes to
	// node 1 under v1 but belongs to node 3 under v2.
	stale.Nodes[1].Start = 1000000
	stale.Nodes[2].Start = 1000001

	cl := newTestClient(t, stale)
	res, err := cl.Push(900000, 7)
	if err != nil || res.Status != wire.StatusOK {
		t.Fatalf("push through redirect: %+v %v", res, err)
	}
	st := cl.Stats()
	if st.Redirects == 0 || st.MapRefreshes == 0 || st.MapVersion != m.Version {
		t.Fatalf("stats after redirect: %+v", st)
	}
	// The element landed where v2 says it lives.
	if res, err := cl.PopMin(); err != nil || res.Value != 900000 {
		t.Fatalf("pop: %+v %v", res, err)
	}
	if ps := cl.Stats().PerNode[3].Pushes; ps == 0 {
		t.Fatal("re-routed push never reached the v2 owner")
	}
}

// TestClientConcurrentConservation hammers one shared client from
// several goroutines and checks conservation: every acked push is
// popped exactly once, no loss, no duplication. Global order is
// best-effort under concurrency, so only the multiset is asserted.
// Primarily a data-race exercise for the head cache and redirect path.
func TestClientConcurrentConservation(t *testing.T) {
	m, _ := startServedMap(t, 3, rankMap3)
	cl := newTestClient(t, m)

	const workers, opsPer = 4, 150
	var mu sync.Mutex
	var pushed, popped []uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for i := 0; i < opsPer; i++ {
				if rng.Intn(10) < 6 {
					v := rng.Uint64() % (1 << 20)
					meta := uint64(w)<<32 | uint64(i)
					res, err := cl.Push(v, meta)
					if err != nil {
						t.Errorf("worker %d push: %v", w, err)
						return
					}
					if res.Status == wire.StatusOK {
						mu.Lock()
						pushed = append(pushed, v)
						mu.Unlock()
					}
					continue
				}
				res, err := cl.PopMin()
				if err != nil {
					t.Errorf("worker %d pop: %v", w, err)
					return
				}
				if res.Status == wire.StatusOK {
					mu.Lock()
					popped = append(popped, res.Value)
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Drain the remainder sequentially.
	for {
		res, err := cl.PopMin()
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
		if res.Status == wire.StatusEmpty {
			break
		}
		popped = append(popped, res.Value)
	}
	sort.Slice(pushed, func(i, j int) bool { return pushed[i] < pushed[j] })
	sort.Slice(popped, func(i, j int) bool { return popped[i] < popped[j] })
	if len(pushed) != len(popped) {
		t.Fatalf("conservation: %d acked pushes, %d pops", len(pushed), len(popped))
	}
	for i := range pushed {
		if pushed[i] != popped[i] {
			t.Fatalf("multiset mismatch at %d: pushed %d popped %d", i, pushed[i], popped[i])
		}
	}
}
