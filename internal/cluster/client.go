package cluster

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// headEmpty is the cached head of a node believed empty — the same
// sentinel the engine publishes for an empty shard, one level up.
const headEmpty = math.MaxUint64

// Options parameterises a cluster Client.
type Options struct {
	// Seeds are addresses to fetch the bootstrap map from, tried in
	// order, when Map is nil. Any cluster node serves its map.
	Seeds []string
	// Map is a static bootstrap map; set, it skips the seed fetch.
	Map *Map
	// RequestTimeout, MaxAttempts, BaseDelay and MaxDelay pass through
	// to the per-node ResilientClients (their defaults apply).
	RequestTimeout time.Duration
	MaxAttempts    int
	BaseDelay      time.Duration
	MaxDelay       time.Duration
	// RedirectMax bounds the refresh-and-re-route rounds a push batch
	// gets after StatusNotOwner redirects (default 4); past it the
	// refusal is surfaced to the caller.
	RedirectMax int
	// FetchTimeout bounds each map fetch round trip (default 2s).
	FetchTimeout time.Duration
}

// NodeStats is one node's slice of the client's traffic.
type NodeStats struct {
	// Ops counts wire operations sent to the node (pushes, pops, and
	// the merge's peek probes).
	Ops    uint64
	Pushes uint64
	Pops   uint64
	// Resilient are the node connection's retry/failover counters.
	Resilient wire.ResilientStats
}

// Stats snapshots the client's routing counters.
type Stats struct {
	// MapVersion is the cluster-map version currently routed by.
	MapVersion uint64
	// Redirects counts ops refused with StatusNotOwner and re-routed.
	Redirects uint64
	// MapRefreshes counts map-refresh sweeps (redirects and explicit
	// Refresh calls).
	MapRefreshes uint64
	// PerNode is keyed by node id.
	PerNode map[uint32]NodeStats
}

// nodeConn is one replica group's connection state.
type nodeConn struct {
	rc                *wire.ResilientClient
	addrs             []string
	ops, pushes, pops atomic.Uint64
}

// Client routes queue operations across a cluster: pushes go straight
// to the owner node under the live map (retrying StatusNotOwner
// redirects with a map refresh), and PopMin is the cross-node strict
// merge — an atomically-refreshed per-node head cache, drained from
// the globally minimal head, mirroring the engine's merge across
// shards. Each node gets one ResilientClient (failover order =
// Addrs), so a node-local failover is absorbed below the routing
// layer while a map change re-points it. Safe for concurrent use;
// under concurrent callers the merge is exact per node and
// best-effort globally, exactly like the engine's intra-process merge
// under concurrent submitters.
type Client struct {
	opts Options

	redirects atomic.Uint64
	refreshes atomic.Uint64

	mu     sync.Mutex
	m      *Map
	nodes  map[uint32]*nodeConn
	heads  map[uint32]uint64 // cached head rank by node id; absent = unknown
	closed bool
}

// NewClient resolves the bootstrap map (static or fetched from the
// seeds) and returns a routing client. Connections dial lazily.
func NewClient(opts Options) (*Client, error) {
	if opts.RedirectMax <= 0 {
		opts.RedirectMax = 4
	}
	if opts.FetchTimeout <= 0 {
		opts.FetchTimeout = 2 * time.Second
	}
	c := &Client{opts: opts, nodes: map[uint32]*nodeConn{}, heads: map[uint32]uint64{}}
	switch {
	case opts.Map != nil:
		if err := opts.Map.Validate(); err != nil {
			return nil, err
		}
		c.m = opts.Map.Clone()
	case len(opts.Seeds) > 0:
		var lastErr error
		for _, addr := range opts.Seeds {
			m, err := FetchMap(addr, 0, opts.FetchTimeout)
			if err != nil {
				lastErr = err
				continue
			}
			if m != nil {
				c.m = m
				break
			}
		}
		if c.m == nil {
			return nil, fmt.Errorf("cluster: no map from any seed: %w", lastErr)
		}
	default:
		return nil, errors.New("cluster: client needs a map or seed addresses")
	}
	return c, nil
}

// Close tears down every node connection.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, nc := range c.nodes {
		nc.rc.Close()
	}
}

// Map snapshots the live routing map. Callers must not mutate it.
func (c *Client) Map() *Map {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m
}

// Stats snapshots the routing counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		MapVersion:   c.m.Version,
		Redirects:    c.redirects.Load(),
		MapRefreshes: c.refreshes.Load(),
		PerNode:      map[uint32]NodeStats{},
	}
	for id, nc := range c.nodes {
		s.PerNode[id] = NodeStats{
			Ops:       nc.ops.Load(),
			Pushes:    nc.pushes.Load(),
			Pops:      nc.pops.Load(),
			Resilient: nc.rc.Stats(),
		}
	}
	return s
}

// node returns (building if needed) the connection for map node n.
func (c *Client) node(n *Node) (*nodeConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, wire.ErrConnClosed
	}
	if nc := c.nodes[n.ID]; nc != nil {
		return nc, nil
	}
	rc, err := wire.NewResilientClient(wire.ResilientOptions{
		Addrs:          n.Addrs,
		RequestTimeout: c.opts.RequestTimeout,
		MaxAttempts:    c.opts.MaxAttempts,
		BaseDelay:      c.opts.BaseDelay,
		MaxDelay:       c.opts.MaxDelay,
		Conn: wire.ClientOptions{
			ReadTimeout:  c.opts.RequestTimeout,
			WriteTimeout: c.opts.RequestTimeout,
		},
	})
	if err != nil {
		return nil, err
	}
	nc := &nodeConn{rc: rc, addrs: append([]string(nil), n.Addrs...)}
	c.nodes[n.ID] = nc
	return nc, nil
}

// adopt installs a newer map: node connections whose address lists
// changed are re-pointed (the live conn survives until it fails),
// connections for departed nodes are closed, and their cached heads
// dropped. Heads of surviving nodes stay — a map change moves
// ownership of future pushes, not the elements already queued.
func (c *Client) adopt(m *Map) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if Compare(m, c.m) <= 0 {
		return
	}
	c.m = m
	present := map[uint32]bool{}
	for i := range m.Nodes {
		n := &m.Nodes[i]
		present[n.ID] = true
		if nc := c.nodes[n.ID]; nc != nil && !sameAddrs(nc.addrs, n.Addrs) {
			nc.rc.SetAddrs(n.Addrs)
			nc.addrs = append([]string(nil), n.Addrs...)
		}
	}
	for id, nc := range c.nodes {
		if !present[id] {
			nc.rc.Close()
			delete(c.nodes, id)
			delete(c.heads, id)
		}
	}
}

func sameAddrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Refresh sweeps the cluster (current map addresses, then seeds) for a
// map newer than the one held, adopting the newest found. minVersion
// is the version a redirect told us exists; the sweep stops early once
// it is reached.
func (c *Client) Refresh(minVersion uint64) {
	c.refreshes.Add(1)
	cur := c.Map()
	var addrs []string
	seen := map[string]bool{}
	for _, n := range cur.Nodes {
		for _, a := range n.Addrs {
			if !seen[a] {
				seen[a] = true
				addrs = append(addrs, a)
			}
		}
	}
	for _, a := range c.opts.Seeds {
		if !seen[a] {
			seen[a] = true
			addrs = append(addrs, a)
		}
	}
	var best *Map
	for _, a := range addrs {
		m, err := FetchMap(a, cur.Version, c.opts.FetchTimeout)
		if err != nil || m == nil {
			continue
		}
		if best == nil || Compare(m, best) > 0 {
			best = m
		}
		if best.Version >= minVersion {
			break
		}
	}
	if best != nil {
		c.adopt(best)
	}
}

// Do executes a batch of operations across the cluster and returns one
// result per op, in order. Like engine.Submit, the ops in one batch
// are logically concurrent: pushes fan out to their owner nodes in
// parallel, then pops and peeks run through the strict merge. An error
// is terminal for the whole call (a node unreachable within its retry
// budget, or an indeterminate retry — wire.ErrDedupMiss).
func (c *Client) Do(ops []wire.Op) ([]wire.Result, error) {
	results := make([]wire.Result, len(ops))
	var pushes []int
	for i, op := range ops {
		if op.Kind == wire.OpPush {
			pushes = append(pushes, i)
		}
	}
	if err := c.doPushes(ops, pushes, results); err != nil {
		return nil, err
	}
	for i, op := range ops {
		switch op.Kind {
		case wire.OpPop:
			r, err := c.PopMin()
			if err != nil {
				return nil, err
			}
			results[i] = r
		case wire.OpPeek:
			r, err := c.PeekMin()
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
	}
	return results, nil
}

// Push routes one push to its owner.
func (c *Client) Push(value, meta uint64) (wire.Result, error) {
	ops := []wire.Op{{Kind: wire.OpPush, Value: value, Meta: meta}}
	results := make([]wire.Result, 1)
	if err := c.doPushes(ops, []int{0}, results); err != nil {
		return wire.Result{}, err
	}
	return results[0], nil
}

// doPushes routes ops[idxs] to their owners, in parallel per node,
// re-routing StatusNotOwner refusals after a map refresh for up to
// RedirectMax rounds. Unresolved refusals keep their StatusNotOwner
// result — the caller sees the disagreement instead of an op silently
// dropped.
func (c *Client) doPushes(ops []wire.Op, idxs []int, results []wire.Result) error {
	pending := idxs
	for round := 0; len(pending) > 0; round++ {
		m := c.Map()
		groups := map[int][]int{}
		for _, i := range pending {
			op := ops[i]
			groups[m.NodeFor(m.KeyOf(op.Value, op.Meta))] = append(groups[m.NodeFor(m.KeyOf(op.Value, op.Meta))], i)
		}
		var (
			wg       sync.WaitGroup
			gmu      sync.Mutex
			firstErr error
			retry    []int
			maxVer   uint64
		)
		for ni, gidx := range groups {
			nc, err := c.node(&m.Nodes[ni])
			if err != nil {
				return err
			}
			wg.Add(1)
			go func(id uint32, nc *nodeConn, gidx []int) {
				defer wg.Done()
				batch := make([]wire.Op, len(gidx))
				for k, i := range gidx {
					batch[k] = ops[i]
				}
				res, err := nc.rc.Do(batch)
				nc.ops.Add(uint64(len(batch)))
				gmu.Lock()
				defer gmu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				if len(res) != len(gidx) {
					if firstErr == nil {
						firstErr = fmt.Errorf("cluster: node %d answered %d results for %d ops", id, len(res), len(gidx))
					}
					return
				}
				for k, r := range res {
					i := gidx[k]
					if r.Status == wire.StatusNotOwner {
						retry = append(retry, i)
						if r.Value > maxVer {
							maxVer = r.Value
						}
						results[i] = r
						continue
					}
					results[i] = r
					if r.Status == wire.StatusOK {
						nc.pushes.Add(1)
						c.noteOwnPush(id, ops[i].Value)
					}
				}
			}(m.Nodes[ni].ID, nc, gidx)
		}
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
		if len(retry) == 0 {
			return nil
		}
		if round >= c.opts.RedirectMax {
			// Results already carry StatusNotOwner for the leftovers.
			return nil
		}
		c.redirects.Add(uint64(len(retry)))
		c.Refresh(maxVer)
		pending = retry
	}
	return nil
}

// noteOwnPush folds the client's own acknowledged push into the head
// cache: a sequential caller's next PopMin sees its own write without
// an extra probe round trip.
func (c *Client) noteOwnPush(id uint32, value uint64) {
	c.mu.Lock()
	if h, ok := c.heads[id]; ok && value < h {
		c.heads[id] = value
	}
	c.mu.Unlock()
}

// PopMin pops the cluster's global minimum: probe any node whose head
// is unknown, drain from the node holding the smallest cached head,
// and fold the pop's piggybacked peek back into the cache. A pop that
// loses a stale-head race (the believed-minimal node answers empty)
// corrects that head and retries against the next; when every head
// reads empty, one full re-probe round confirms before StatusEmpty is
// returned. Exact for a sequential caller; exact per node and
// best-effort globally under concurrency, like the engine's merge.
func (c *Client) PopMin() (wire.Result, error) {
	confirmedEmpty := false
	m := c.Map()
	for attempt := 0; attempt < 16+4*len(m.Nodes); attempt++ {
		m = c.Map()
		if err := c.ensureHeads(m); err != nil {
			return wire.Result{}, err
		}
		id, head := c.minHead(m)
		if head == headEmpty {
			if confirmedEmpty {
				return wire.Result{Status: wire.StatusEmpty}, nil
			}
			// Believed empty everywhere — re-probe every node once to
			// rule out staleness before reporting empty.
			c.mu.Lock()
			c.heads = map[uint32]uint64{}
			c.mu.Unlock()
			confirmedEmpty = true
			continue
		}
		n := m.ByID(id)
		if n == nil {
			continue // map changed under us; re-snapshot
		}
		nc, err := c.node(n)
		if err != nil {
			return wire.Result{}, err
		}
		res, err := nc.rc.Do([]wire.Op{{Kind: wire.OpPop}, {Kind: wire.OpPeek}})
		nc.ops.Add(2)
		if err != nil {
			return wire.Result{}, err
		}
		if len(res) != 2 {
			return wire.Result{}, fmt.Errorf("cluster: node %d answered %d results for pop+peek", id, len(res))
		}
		c.setHead(id, res[1])
		r := res[0]
		if r.Status == wire.StatusEmpty {
			// Stale-head race: the cache said this node held the
			// minimum, the node disagreed. Its head is corrected from
			// the piggyback; try the next-best node.
			confirmedEmpty = false
			continue
		}
		if r.Status == wire.StatusOK {
			nc.pops.Add(1)
		}
		return r, nil
	}
	return wire.Result{}, errors.New("cluster: pop did not converge (heads churning faster than probes)")
}

// PeekMin reads the cluster's global minimum without removing it,
// probing every node fresh.
func (c *Client) PeekMin() (wire.Result, error) {
	m := c.Map()
	c.mu.Lock()
	c.heads = map[uint32]uint64{}
	c.mu.Unlock()
	if err := c.ensureHeads(m); err != nil {
		return wire.Result{}, err
	}
	_, head := c.minHead(m)
	if head == headEmpty {
		return wire.Result{Status: wire.StatusEmpty}, nil
	}
	return wire.Result{Status: wire.StatusOK, Value: head}, nil
}

// ensureHeads probes (in parallel) every map node whose head is not
// cached.
func (c *Client) ensureHeads(m *Map) error {
	var unknown []*Node
	c.mu.Lock()
	for i := range m.Nodes {
		if _, ok := c.heads[m.Nodes[i].ID]; !ok {
			unknown = append(unknown, &m.Nodes[i])
		}
	}
	c.mu.Unlock()
	if len(unknown) == 0 {
		return nil
	}
	var (
		wg       sync.WaitGroup
		gmu      sync.Mutex
		firstErr error
	)
	for _, n := range unknown {
		nc, err := c.node(n)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(id uint32, nc *nodeConn) {
			defer wg.Done()
			res, err := nc.rc.Do([]wire.Op{{Kind: wire.OpPeek}})
			nc.ops.Add(1)
			if err != nil || len(res) != 1 {
				gmu.Lock()
				if firstErr == nil {
					if err == nil {
						err = fmt.Errorf("cluster: node %d answered %d results for peek", id, len(res))
					}
					firstErr = err
				}
				gmu.Unlock()
				return
			}
			c.setHead(id, res[0])
		}(n.ID, nc)
	}
	wg.Wait()
	return firstErr
}

// setHead folds a peek result into the head cache.
func (c *Client) setHead(id uint32, r wire.Result) {
	c.mu.Lock()
	if r.Status == wire.StatusOK {
		c.heads[id] = r.Value
	} else {
		c.heads[id] = headEmpty
	}
	c.mu.Unlock()
}

// minHead returns the node id holding the smallest cached head
// (headEmpty when every cached head is empty). Nodes missing from the
// cache are ignored — callers ensureHeads first.
func (c *Client) minHead(m *Map) (uint32, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	bestID, best := uint32(0), uint64(headEmpty)
	for i := range m.Nodes {
		id := m.Nodes[i].ID
		if h, ok := c.heads[id]; ok && h < best {
			bestID, best = id, h
		}
	}
	return bestID, best
}
