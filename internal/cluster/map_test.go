package cluster

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"testing"
)

// testMap builds a valid 3-node rank map for tests.
func testMap() *Map {
	return &Map{
		Version:  3,
		Mode:     ModeRank,
		RankBits: 20,
		Nodes: []Node{
			{ID: 1, Epoch: 1, Start: 0, Addrs: []string{"127.0.0.1:1", "127.0.0.1:2"}, Obs: "127.0.0.1:91"},
			{ID: 2, Epoch: 4, Start: 1000, Addrs: []string{"127.0.0.1:3"}},
			{ID: 7, Epoch: 1, Start: 500000, Addrs: []string{"127.0.0.1:4"}},
		},
	}
}

func TestMapEncodeDecodeRoundTrip(t *testing.T) {
	m := testMap()
	enc := m.Encode(nil)
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got.Encode(nil), enc) {
		t.Fatal("re-encode differs from original encoding")
	}
	if got.Version != m.Version || got.Mode != m.Mode || got.RankBits != m.RankBits {
		t.Fatalf("header mismatch: %+v vs %+v", got, m)
	}
	for i := range m.Nodes {
		if got.Nodes[i].ID != m.Nodes[i].ID || got.Nodes[i].Epoch != m.Nodes[i].Epoch ||
			got.Nodes[i].Start != m.Nodes[i].Start || got.Nodes[i].Obs != m.Nodes[i].Obs {
			t.Fatalf("node %d mismatch: %+v vs %+v", i, got.Nodes[i], m.Nodes[i])
		}
	}
}

func TestMapDecodeRejectsCorruption(t *testing.T) {
	enc := testMap().Encode(nil)
	// Every truncation must fail cleanly.
	for n := 0; n < len(enc); n++ {
		if _, err := Decode(enc[:n]); !errors.Is(err, ErrBadMap) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrBadMap", n, err)
		}
	}
	// Trailing garbage is not tolerated.
	if _, err := Decode(append(append([]byte{}, enc...), 0)); !errors.Is(err, ErrBadMap) {
		t.Fatalf("trailing byte: err = %v, want ErrBadMap", err)
	}
	// Wrong codec version.
	bad := append([]byte{}, enc...)
	bad[0] = 99
	if _, err := Decode(bad); !errors.Is(err, ErrBadMap) {
		t.Fatalf("codec version: err = %v, want ErrBadMap", err)
	}
}

func TestMapValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Map)
	}{
		{"version zero", func(m *Map) { m.Version = 0 }},
		{"unknown mode", func(m *Map) { m.Mode = 9 }},
		{"rank bits zero in rank mode", func(m *Map) { m.RankBits = 0 }},
		{"rank bits in hash mode", func(m *Map) { m.Mode = ModeHash }},
		{"no nodes", func(m *Map) { m.Nodes = nil }},
		{"first band not zero", func(m *Map) { m.Nodes[0].Start = 5 }},
		{"duplicate id", func(m *Map) { m.Nodes[1].ID = 1 }},
		{"non-increasing starts", func(m *Map) { m.Nodes[2].Start = 1000 }},
		{"start beyond rank space", func(m *Map) { m.Nodes[2].Start = 1 << 21 }},
		{"no addrs", func(m *Map) { m.Nodes[1].Addrs = nil }},
		{"empty addr", func(m *Map) { m.Nodes[1].Addrs = []string{""} }},
	}
	for _, tc := range cases {
		m := testMap()
		tc.mut(m)
		if err := m.Validate(); !errors.Is(err, ErrBadMap) {
			t.Errorf("%s: err = %v, want ErrBadMap", tc.name, err)
		}
	}
}

func TestMapRouting(t *testing.T) {
	m := testMap()
	for _, tc := range []struct {
		key  uint64
		want uint32
	}{
		{0, 1}, {999, 1}, {1000, 2}, {499999, 2}, {500000, 7}, {math.MaxUint64, 7},
	} {
		if got := m.Owner(tc.key).ID; got != tc.want {
			t.Errorf("Owner(%d) = node %d, want %d", tc.key, got, tc.want)
		}
	}
	// Rank mode clamps the value into the rank space.
	if k := m.KeyOf(math.MaxUint64, 0); k != (1<<20)-1 {
		t.Errorf("KeyOf clamp = %d", k)
	}
	// Hash mode keys on the metadata hash, matching the engine's.
	hm := &Map{Version: 1, Mode: ModeHash, Nodes: []Node{{ID: 1, Epoch: 1, Addrs: []string{"a"}}}}
	if k := hm.KeyOf(12, 34); k != splitmix64(34) {
		t.Errorf("hash KeyOf = %d, want splitmix64(meta)", k)
	}

	s, e, ok := m.Band(2)
	if !ok || s != 1000 || e != 499999 {
		t.Errorf("Band(2) = [%d,%d] ok=%v", s, e, ok)
	}
	s, e, ok = m.Band(7)
	if !ok || s != 500000 || e != (1<<20)-1 {
		t.Errorf("Band(7) = [%d,%d] ok=%v", s, e, ok)
	}
	if _, _, ok := m.Band(99); ok {
		t.Error("Band(99) found a node that does not exist")
	}
}

func TestMapCompare(t *testing.T) {
	a, b := testMap(), testMap()
	if Compare(a, b) != 0 {
		t.Fatal("identical maps should compare 0")
	}
	b.Version++
	if Compare(b, a) <= 0 || Compare(a, b) >= 0 {
		t.Fatal("higher version must win")
	}
	// Same version: epoch sum breaks the tie (concurrent promotions).
	b.Version = a.Version
	b.Nodes[0].Epoch++
	if Compare(b, a) <= 0 {
		t.Fatal("higher epoch sum must win at equal version")
	}
}

func TestMapFileRoundTrip(t *testing.T) {
	m := testMap()
	path := filepath.Join(t.TempDir(), "map.json")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if Compare(got, m) != 0 || len(got.Nodes) != len(m.Nodes) {
		t.Fatalf("loaded map differs: %+v", got)
	}
	if !bytes.Equal(got.Encode(nil), m.Encode(nil)) {
		t.Fatal("loaded map encodes differently")
	}
}

// FuzzClusterMapDecode feeds arbitrary bytes to Decode and, for inputs
// that do decode, re-encodes and checks the identity — the decoder
// must never panic, never yield an invalid map, and accept exactly
// what the encoder produces.
func FuzzClusterMapDecode(f *testing.F) {
	f.Add(testMap().Encode(nil))
	hm := &Map{Version: 1, Mode: ModeHash, Nodes: []Node{
		{ID: 0, Epoch: 1, Start: 0, Addrs: []string{"x"}},
		{ID: 1, Epoch: 2, Start: 1 << 63, Addrs: []string{"y", "z"}, Obs: "o"},
	}}
	f.Add(hm.Encode(nil))
	f.Add([]byte{})
	f.Add([]byte{codecVersion})

	f.Fuzz(func(t *testing.T, p []byte) {
		m, err := Decode(p)
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("decode accepted an invalid map: %v", verr)
		}
		if re := m.Encode(nil); !bytes.Equal(re, p) {
			t.Fatalf("re-encode differs:\n in  %x\n out %x", p, re)
		}
	})
}
