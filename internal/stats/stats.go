// Package stats collects the flow-completion-time statistics that
// regenerate Figure 10 of the paper: average FCT normalised by the
// ideal (unloaded) FCT, bucketed by flow size.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// FlowRecord is one finished flow.
type FlowRecord struct {
	Bytes      uint64
	FCTNs      uint64
	IdealFCTNs uint64
}

// Normalized returns FCT / ideal FCT (the slowdown).
func (r FlowRecord) Normalized() float64 {
	if r.IdealFCTNs == 0 {
		return math.NaN()
	}
	return float64(r.FCTNs) / float64(r.IdealFCTNs)
}

// FCT accumulates flow records.
type FCT struct {
	records []FlowRecord
}

// Add records a finished flow.
func (f *FCT) Add(r FlowRecord) { f.records = append(f.records, r) }

// Count returns the number of recorded flows.
func (f *FCT) Count() int { return len(f.records) }

// Bin is one flow-size bucket of Figure 10.
type Bin struct {
	LoBytes, HiBytes uint64 // [Lo, Hi)
	Flows            int
	MeanNormFCT      float64
	P99NormFCT       float64
}

// Label formats the bin bounds the way Figure 10's x-axis does.
func (b Bin) Label() string {
	human := func(v uint64) string {
		switch {
		case v >= 1<<20:
			return fmt.Sprintf("%gM", float64(v)/(1<<20))
		case v >= 1<<10:
			return fmt.Sprintf("%gK", float64(v)/(1<<10))
		default:
			return fmt.Sprintf("%d", v)
		}
	}
	if b.HiBytes == math.MaxUint64 {
		return ">" + human(b.LoBytes)
	}
	return human(b.LoBytes) + "-" + human(b.HiBytes)
}

// DefaultBins are the flow-size intervals used for the Figure 10
// reproduction, spanning the web-search distribution's range.
func DefaultBins() []uint64 {
	return []uint64{0, 10 << 10, 30 << 10, 100 << 10, 300 << 10, 1 << 20, 3 << 20, 10 << 20, math.MaxUint64}
}

// Binned buckets the records by flow size. edges must be ascending;
// bin i covers [edges[i], edges[i+1]).
func (f *FCT) Binned(edges []uint64) []Bin {
	bins := make([]Bin, len(edges)-1)
	norm := make([][]float64, len(bins))
	for i := range bins {
		bins[i].LoBytes = edges[i]
		bins[i].HiBytes = edges[i+1]
	}
	for _, r := range f.records {
		i := sort.Search(len(edges), func(i int) bool { return edges[i] > r.Bytes }) - 1
		if i < 0 || i >= len(bins) {
			continue
		}
		// An unfinished or zero-ideal record yields a NaN (or, from a
		// hand-built record, an Inf) slowdown; one such value would
		// poison the bin's mean and p99, so drop it here.
		n := r.Normalized()
		if math.IsNaN(n) || math.IsInf(n, 0) {
			continue
		}
		bins[i].Flows++
		norm[i] = append(norm[i], n)
	}
	for i := range bins {
		if len(norm[i]) == 0 {
			continue
		}
		sort.Float64s(norm[i])
		sum := 0.0
		for _, v := range norm[i] {
			sum += v
		}
		bins[i].MeanNormFCT = sum / float64(len(norm[i]))
		bins[i].P99NormFCT = percentileSorted(norm[i], 0.99)
	}
	return bins
}

// OverallMeanNorm returns the mean normalised FCT across all flows
// with a finite slowdown; NaN if there are none.
func (f *FCT) OverallMeanNorm() float64 {
	sum := 0.0
	n := 0
	for _, r := range f.records {
		v := r.Normalized()
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// NormQuantiles returns the requested quantiles of the normalised-FCT
// (slowdown) distribution across all flows with a finite slowdown,
// sorting once. NaN entries are returned if there are no such flows.
func (f *FCT) NormQuantiles(ps ...float64) []float64 {
	var norm []float64
	for _, r := range f.records {
		v := r.Normalized()
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			norm = append(norm, v)
		}
	}
	sort.Float64s(norm)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if len(norm) == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = percentileSorted(norm, p)
	}
	return out
}

// percentileSorted returns the p-quantile of an ascending slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	idx := p * float64(len(sorted)-1)
	lo := int(idx)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Summary computes mean / median / p99 over a data set.
type Summary struct {
	N                 int
	Mean, Median, P99 float64
	Min, Max          float64
}

// Summarize builds a Summary.
func Summarize(vals []float64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return Summary{
		N:      len(s),
		Mean:   sum / float64(len(s)),
		Median: percentileSorted(s, 0.5),
		P99:    percentileSorted(s, 0.99),
		Min:    s[0],
		Max:    s[len(s)-1],
	}
}

// Table renders bins as an aligned text table (one Figure 10 series).
func Table(name string, bins []Bin) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %8s %14s %14s\n", name, "flows", "mean norm FCT", "p99 norm FCT")
	for _, b := range bins {
		if b.Flows == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%-12s %8d %14.3f %14.3f\n", b.Label(), b.Flows, b.MeanNormFCT, b.P99NormFCT)
	}
	return sb.String()
}

// InversionMeter measures how accurately a scheduler approximates PIFO
// dequeue order. Feed it the rank of every dequeued packet in service
// order: an inversion is a packet whose rank is smaller than the
// maximum rank already served (it should have left earlier). The
// BMW-Tree paper's motivation for an accurate PIFO is exactly that
// approximate schemes (SP-PIFO, AIFO, calendar queues) admit such
// inversions, weakening scheduling guarantees.
type InversionMeter struct {
	maxSeen   uint64
	have      bool
	total     uint64
	inverted  uint64
	magnitude uint64 // sum of (maxSeen - rank) over inverted packets
}

// Observe records one dequeued rank.
func (m *InversionMeter) Observe(rank uint64) {
	m.total++
	if m.have && rank < m.maxSeen {
		m.inverted++
		m.magnitude += m.maxSeen - rank
	}
	if !m.have || rank > m.maxSeen {
		m.maxSeen = rank
		m.have = true
	}
}

// Total returns the number of observed dequeues.
func (m *InversionMeter) Total() uint64 { return m.total }

// Inversions returns the number of out-of-order dequeues.
func (m *InversionMeter) Inversions() uint64 { return m.inverted }

// Rate returns the fraction of dequeues that were inverted.
func (m *InversionMeter) Rate() float64 {
	if m.total == 0 {
		return 0
	}
	return float64(m.inverted) / float64(m.total)
}

// MeanMagnitude returns the average rank displacement of inverted
// packets (0 if none).
func (m *InversionMeter) MeanMagnitude() float64 {
	if m.inverted == 0 {
		return 0
	}
	return float64(m.magnitude) / float64(m.inverted)
}
