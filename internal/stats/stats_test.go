package stats

import (
	"math"
	"strings"
	"testing"
)

func TestNormalized(t *testing.T) {
	r := FlowRecord{Bytes: 100, FCTNs: 300, IdealFCTNs: 100}
	if r.Normalized() != 3 {
		t.Fatalf("normalized = %f", r.Normalized())
	}
	if !math.IsNaN((FlowRecord{}).Normalized()) {
		t.Fatal("zero ideal should be NaN")
	}
}

func TestBinned(t *testing.T) {
	var f FCT
	// Two small flows (norm 2, 4), one large flow (norm 3).
	f.Add(FlowRecord{Bytes: 5 << 10, FCTNs: 200, IdealFCTNs: 100})
	f.Add(FlowRecord{Bytes: 6 << 10, FCTNs: 400, IdealFCTNs: 100})
	f.Add(FlowRecord{Bytes: 5 << 20, FCTNs: 300, IdealFCTNs: 100})
	bins := f.Binned(DefaultBins())
	if bins[0].Flows != 2 || bins[0].MeanNormFCT != 3 {
		t.Fatalf("small bin = %+v", bins[0])
	}
	var largeBin *Bin
	for i := range bins {
		if bins[i].LoBytes <= 5<<20 && 5<<20 < bins[i].HiBytes {
			largeBin = &bins[i]
		}
	}
	if largeBin == nil || largeBin.Flows != 1 || largeBin.MeanNormFCT != 3 {
		t.Fatalf("large bin = %+v", largeBin)
	}
	if f.Count() != 3 {
		t.Fatalf("Count = %d", f.Count())
	}
}

func TestOverallMean(t *testing.T) {
	var f FCT
	f.Add(FlowRecord{Bytes: 1, FCTNs: 100, IdealFCTNs: 100})
	f.Add(FlowRecord{Bytes: 1, FCTNs: 300, IdealFCTNs: 100})
	if got := f.OverallMeanNorm(); got != 2 {
		t.Fatalf("overall mean = %f", got)
	}
	var empty FCT
	if !math.IsNaN(empty.OverallMeanNorm()) {
		t.Fatal("empty mean should be NaN")
	}
}

func TestBinLabels(t *testing.T) {
	b := Bin{LoBytes: 10 << 10, HiBytes: 30 << 10}
	if b.Label() != "10K-30K" {
		t.Fatalf("label = %q", b.Label())
	}
	last := Bin{LoBytes: 10 << 20, HiBytes: math.MaxUint64}
	if last.Label() != ">10M" {
		t.Fatalf("label = %q", last.Label())
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Median != 2.5 {
		t.Fatalf("median = %f", s.Median)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestPercentile(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	s := Summarize(vals)
	if s.P99 < 99 || s.P99 > 100 {
		t.Fatalf("p99 = %f", s.P99)
	}
}

func TestTable(t *testing.T) {
	var f FCT
	f.Add(FlowRecord{Bytes: 5 << 10, FCTNs: 200, IdealFCTNs: 100})
	out := Table("test", f.Binned(DefaultBins()))
	if !strings.Contains(out, "0-10K") || !strings.Contains(out, "2.000") {
		t.Fatalf("table output:\n%s", out)
	}
}

// TestDegenerateRecordsDoNotPoison is the regression test for NaN/Inf
// slowdowns: a record with a zero ideal FCT (NaN slowdown) must be
// dropped from bins and the overall mean instead of turning every
// aggregate into NaN.
func TestDegenerateRecordsDoNotPoison(t *testing.T) {
	var f FCT
	f.Add(FlowRecord{Bytes: 100, FCTNs: 200, IdealFCTNs: 100}) // slowdown 2
	f.Add(FlowRecord{Bytes: 100, FCTNs: 400, IdealFCTNs: 100}) // slowdown 4
	f.Add(FlowRecord{Bytes: 100, FCTNs: 999, IdealFCTNs: 0})   // NaN slowdown

	bins := f.Binned([]uint64{0, 1000})
	if bins[0].Flows != 2 {
		t.Fatalf("bin counted %d flows, want 2 (NaN record dropped)", bins[0].Flows)
	}
	if bins[0].MeanNormFCT != 3 {
		t.Fatalf("bin mean = %f, want 3", bins[0].MeanNormFCT)
	}
	if math.IsNaN(bins[0].P99NormFCT) || bins[0].P99NormFCT < 2 || bins[0].P99NormFCT > 4 {
		t.Fatalf("bin p99 = %f, want finite in [2, 4]", bins[0].P99NormFCT)
	}
	if got := f.OverallMeanNorm(); got != 3 {
		t.Fatalf("overall mean = %f, want 3", got)
	}

	// All-degenerate input: aggregates must be empty/NaN, not panic.
	var bad FCT
	bad.Add(FlowRecord{Bytes: 1, FCTNs: 1, IdealFCTNs: 0})
	if !math.IsNaN(bad.OverallMeanNorm()) {
		t.Fatal("all-degenerate overall mean should be NaN")
	}
	if b := bad.Binned([]uint64{0, 1000}); b[0].Flows != 0 {
		t.Fatalf("all-degenerate bin counted %d flows, want 0", b[0].Flows)
	}
}
