package pieo

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestSmallestEligibleFirst(t *testing.T) {
	l := New(8)
	// Smallest rank not yet eligible; a larger rank is.
	l.Push(Entry{Rank: 1, Eligible: 100, Meta: 1})
	l.Push(Entry{Rank: 5, Eligible: 0, Meta: 2})
	l.Push(Entry{Rank: 9, Eligible: 0, Meta: 3})

	e, ok := l.ExtractEligible(50)
	if !ok || e.Meta != 2 {
		t.Fatalf("extract at t=50 = %v,%v; want rank-5 element (rank-1 ineligible)", e, ok)
	}
	// Once time passes, the smallest rank wins again.
	e, ok = l.ExtractEligible(100)
	if !ok || e.Meta != 1 {
		t.Fatalf("extract at t=100 = %v,%v; want rank-1 element", e, ok)
	}
}

func TestNothingEligible(t *testing.T) {
	l := New(4)
	l.Push(Entry{Rank: 1, Eligible: 1000})
	if _, ok := l.ExtractEligible(10); ok {
		t.Fatal("extracted an ineligible element")
	}
	if _, ok := l.PeekEligible(10); ok {
		t.Fatal("peeked an ineligible element")
	}
	at, ok := l.NextEligibleAt()
	if !ok || at != 1000 {
		t.Fatalf("NextEligibleAt = %d,%v", at, ok)
	}
	if e, ok := l.ExtractEligible(1000); !ok || e.Rank != 1 {
		t.Fatal("element not extractable at its eligibility time")
	}
	if _, ok := l.NextEligibleAt(); ok {
		t.Fatal("NextEligibleAt on empty")
	}
}

func TestFIFOAmongEqualRanks(t *testing.T) {
	l := New(8)
	for i := uint64(0); i < 4; i++ {
		l.Push(Entry{Rank: 7, Eligible: 0, Meta: i})
	}
	for i := uint64(0); i < 4; i++ {
		e, ok := l.ExtractEligible(0)
		if !ok || e.Meta != i {
			t.Fatalf("tie order broken at %d: %v", i, e)
		}
	}
}

func TestExtractWhere(t *testing.T) {
	l := New(8)
	l.Push(Entry{Rank: 1, Meta: 10})
	l.Push(Entry{Rank: 2, Meta: 20})
	l.Push(Entry{Rank: 3, Meta: 10})
	// Dequeue anywhere: smallest rank with Meta == 20.
	e, ok := l.ExtractWhere(func(e Entry) bool { return e.Meta == 20 })
	if !ok || e.Rank != 2 {
		t.Fatalf("ExtractWhere = %v,%v", e, ok)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if _, ok := l.ExtractWhere(func(e Entry) bool { return e.Meta == 99 }); ok {
		t.Fatal("matched nothing but extracted")
	}
}

func TestCapacity(t *testing.T) {
	l := New(2)
	l.Push(Entry{Rank: 1})
	l.Push(Entry{Rank: 2})
	if err := l.Push(Entry{Rank: 3}); err != core.ErrFull {
		t.Fatalf("push full = %v", err)
	}
}

// TestShapingSchedule uses PIEO as a shaper: eligibility times form a
// token-bucket schedule and extraction at increasing wall times
// releases packets exactly at their spaced departure times.
func TestShapingSchedule(t *testing.T) {
	l := New(16)
	// 5 packets eligible at t = 0, 10, 20, 30, 40; ranks follow times.
	for i := uint64(0); i < 5; i++ {
		l.Push(Entry{Rank: i, Eligible: i * 10, Meta: i})
	}
	released := 0
	for now := uint64(0); now < 50; now++ {
		for {
			e, ok := l.ExtractEligible(now)
			if !ok {
				break
			}
			if e.Eligible > now {
				t.Fatalf("released early: %v at %d", e, now)
			}
			if now != e.Eligible {
				t.Fatalf("packet %d released at %d, want %d", e.Meta, now, e.Eligible)
			}
			released++
		}
	}
	if released != 5 {
		t.Fatalf("released %d", released)
	}
}

// TestRandomAgainstScan cross-checks ExtractEligible against a naive
// full-scan oracle.
func TestRandomAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := New(128)
	var mirror []Entry
	for step := 0; step < 5000; step++ {
		if len(mirror) == 0 || (rng.Intn(2) == 0 && len(mirror) < 128) {
			e := Entry{Rank: uint64(rng.Intn(100)), Eligible: uint64(rng.Intn(50)), Meta: uint64(step)}
			if err := l.Push(e); err != nil {
				t.Fatal(err)
			}
			mirror = append(mirror, e)
		} else {
			now := uint64(rng.Intn(60))
			got, ok := l.ExtractEligible(now)
			// Oracle: smallest rank among eligible; earliest push wins ties.
			best := -1
			for i, e := range mirror {
				if e.Eligible <= now && (best < 0 || e.Rank < mirror[best].Rank) {
					best = i
				}
			}
			if (best >= 0) != ok {
				t.Fatalf("step %d: eligibility disagreement (oracle %v, got %v)", step, best >= 0, ok)
			}
			if ok {
				if got.Rank != mirror[best].Rank {
					t.Fatalf("step %d: rank %d, oracle %d", step, got.Rank, mirror[best].Rank)
				}
				// Remove the extracted element from the mirror.
				for i, e := range mirror {
					if e == got {
						mirror = append(mirror[:i], mirror[i+1:]...)
						break
					}
				}
			}
		}
	}
}
