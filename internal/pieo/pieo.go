// Package pieo implements the PIEO (Push-In-Extract-Out) scheduler
// primitive of Shrivastav, "Fast, scalable, and programmable packet
// scheduler in hardware" (SIGCOMM 2019), which Section 7.1 of the
// BMW-Tree paper surveys as the main alternative abstraction to PIFO.
//
// PIEO generalises PIFO: elements carry a rank and an eligibility
// time, and dequeue extracts the smallest-ranked *eligible* element
// ("smallest eligible packet first"), which expresses
// non-work-conserving algorithms without external gating. The hardware
// keeps a rank-sorted list and evaluates eligibility in parallel; this
// software model keeps the same ordered list with binary-search
// insertion and returns exactly what the hardware would.
package pieo

import (
	"sort"

	"repro/internal/core"
)

// Entry is one PIEO element: rank orders extraction, Eligible is the
// earliest time (arbitrary monotone units) the element may leave.
type Entry struct {
	Rank     uint64
	Eligible uint64
	Meta     uint64
}

// List is a PIEO with fixed capacity.
type List struct {
	entries []Entry // sorted by Rank, FIFO among equal ranks
	cap     int
}

// New creates a PIEO with the given capacity.
func New(capacity int) *List {
	if capacity < 1 {
		panic("pieo: capacity must be positive")
	}
	return &List{cap: capacity}
}

// Len returns the stored element count; Cap the capacity.
func (l *List) Len() int { return len(l.entries) }
func (l *List) Cap() int { return l.cap }

// Push inserts in rank order (after equal ranks).
func (l *List) Push(e Entry) error {
	if len(l.entries) >= l.cap {
		return core.ErrFull
	}
	i := sort.Search(len(l.entries), func(i int) bool { return l.entries[i].Rank > e.Rank })
	l.entries = append(l.entries, Entry{})
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = e
	return nil
}

// ExtractEligible removes and returns the smallest-ranked element
// whose eligibility time is <= now. ok is false when nothing is
// eligible (the defining non-work-conserving behaviour).
func (l *List) ExtractEligible(now uint64) (Entry, bool) {
	for i, e := range l.entries {
		if e.Eligible <= now {
			l.remove(i)
			return e, true
		}
	}
	return Entry{}, false
}

// ExtractWhere removes and returns the smallest-ranked element
// matching an arbitrary predicate — PIEO's "dequeue anywhere"
// generalisation.
func (l *List) ExtractWhere(pred func(Entry) bool) (Entry, bool) {
	for i, e := range l.entries {
		if pred(e) {
			l.remove(i)
			return e, true
		}
	}
	return Entry{}, false
}

// PeekEligible returns the smallest-ranked eligible element without
// removing it.
func (l *List) PeekEligible(now uint64) (Entry, bool) {
	for _, e := range l.entries {
		if e.Eligible <= now {
			return e, true
		}
	}
	return Entry{}, false
}

// NextEligibleAt returns the earliest time at which some element will
// become eligible, and ok=false on an empty list. A shaping scheduler
// uses it to set its wake-up timer.
func (l *List) NextEligibleAt() (uint64, bool) {
	if len(l.entries) == 0 {
		return 0, false
	}
	min := l.entries[0].Eligible
	for _, e := range l.entries[1:] {
		if e.Eligible < min {
			min = e.Eligible
		}
	}
	return min, true
}

func (l *List) remove(i int) {
	copy(l.entries[i:], l.entries[i+1:])
	l.entries = l.entries[:len(l.entries)-1]
}
