// Merkle tree over fixed-size file chunks. Snapshots get their leaf
// hashes and root published in the checkpoint manifest, so recovery can
// tell *which chunk* rotted (leaf comparison) and anti-entropy repair
// can accept a single fetched chunk from an untrusted peer by checking
// its inclusion proof against the locally trusted root.
//
// Construction: leaves are sha256(0x00 || chunk); interior nodes are
// sha256(0x01 || left || right). An odd node at any level is paired
// with itself (the duplicate-last rule), so every leaf has a complete
// sibling path and proofs are a plain hash list. The domain-separation
// prefixes prevent a leaf being reinterpreted as an interior node.

package persist

import "crypto/sha256"

// DefaultChunkSize is the snapshot chunking granularity: small enough
// to localise single-sector rot, large enough that the manifest's leaf
// list stays a few hundred entries for typical snapshots.
const DefaultChunkSize = 4096

// merkleEmpty is the root of a zero-byte file (no leaves).
var merkleEmpty = sha256.Sum256([]byte("bmw-merkle-empty/v1"))

func merkleLeaf(chunk []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(chunk)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

func merkleNode(l, r [sha256.Size]byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(l[:])
	h.Write(r[:])
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// MerkleLeaves chunks b and hashes each chunk. The final chunk may be
// short; a zero-byte file has no leaves.
func MerkleLeaves(b []byte, chunkSize int) [][sha256.Size]byte {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	var leaves [][sha256.Size]byte
	for off := 0; off < len(b); off += chunkSize {
		end := off + chunkSize
		if end > len(b) {
			end = len(b)
		}
		leaves = append(leaves, merkleLeaf(b[off:end]))
	}
	return leaves
}

// MerkleRoot folds leaves up to the root (duplicate-last pairing).
func MerkleRoot(leaves [][sha256.Size]byte) [sha256.Size]byte {
	if len(leaves) == 0 {
		return merkleEmpty
	}
	level := append([][sha256.Size]byte(nil), leaves...)
	for len(level) > 1 {
		next := level[: 0 : len(level)/2+1]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, merkleNode(level[i], level[i+1]))
			} else {
				next = append(next, merkleNode(level[i], level[i]))
			}
		}
		level = next
	}
	return level[0]
}

// MerkleProof returns leaf i's sibling path, bottom-up. The proof plus
// the leaf count is everything VerifyMerkleProof needs.
func MerkleProof(leaves [][sha256.Size]byte, i int) [][sha256.Size]byte {
	if i < 0 || i >= len(leaves) {
		return nil
	}
	var proof [][sha256.Size]byte
	level := append([][sha256.Size]byte(nil), leaves...)
	for len(level) > 1 {
		sib := i ^ 1
		if sib >= len(level) {
			sib = i // odd tail: self-paired
		}
		proof = append(proof, level[sib])
		next := level[: 0 : len(level)/2+1]
		for j := 0; j < len(level); j += 2 {
			if j+1 < len(level) {
				next = append(next, merkleNode(level[j], level[j+1]))
			} else {
				next = append(next, merkleNode(level[j], level[j]))
			}
		}
		level = next
		i /= 2
	}
	return proof
}

// VerifyMerkleProof checks that leaf sits at index i of an n-leaf tree
// with the given root. It recomputes the path with the same
// duplicate-last pairing the builder used.
func VerifyMerkleProof(leaf [sha256.Size]byte, i, n int, proof [][sha256.Size]byte, root [sha256.Size]byte) bool {
	if i < 0 || i >= n || n <= 0 {
		return false
	}
	h := leaf
	size := n
	for _, sib := range proof {
		if size <= 1 {
			return false // proof longer than the tree is tall
		}
		if i%2 == 0 {
			// sibling on the right — or self when this is the odd tail.
			if i == size-1 && sib != h {
				return false
			}
			h = merkleNode(h, sib)
		} else {
			h = merkleNode(sib, h)
		}
		i /= 2
		size = (size + 1) / 2
	}
	return size == 1 && h == root
}
