// CrashDisk: an FS wrapper that simulates a process death at an exact
// byte of write traffic, including the torn-write behaviour of a real
// crash.
//
// The disk carries a global byte budget. Writes consume it; the write
// that exhausts it lands partially (its prefix reaches the file) and
// the disk "dies": that write and every later write, sync, rename or
// remove fails with ErrKilled. At the moment of death every open file
// is torn — its unsynced suffix is truncated to a pseudo-random length,
// modelling the page-cache bytes a real crash loses. Bytes before the
// last successful Sync are never lost, which is exactly the durability
// an fsync buys.
//
// Because budgets are sampled over the whole byte stream of a run, kill
// points land everywhere: mid-WAL-record, between group commits, in the
// middle of a snapshot payload, and between a snapshot's write and its
// rename.

package persist

import (
	"errors"
	"math/rand"
	"os"
)

// ErrKilled is returned by every CrashDisk operation after the byte
// budget is exhausted — the simulated process death. It is permanent:
// retry classifiers must treat it as non-transient (the default nil
// classifier does).
var ErrKilled = errors.New("persist: simulated crash (byte budget exhausted)")

// CrashDisk implements FS with a byte-budget kill switch.
type CrashDisk struct {
	inner  OSFS
	budget int64 // remaining write bytes; <0 = unlimited
	killed bool
	rng    *rand.Rand
	open   []*crashFile
	// written counts payload bytes accepted across all files, so a
	// calibration run can report the total a budget is sampled from.
	written int64
}

// NewCrashDisk builds a disk that dies after budget written bytes
// (budget < 0 never dies — the calibration mode). seed drives the torn
// tail lengths.
func NewCrashDisk(budget int64, seed int64) *CrashDisk {
	return &CrashDisk{budget: budget, rng: rand.New(rand.NewSource(seed))}
}

// Killed reports whether the simulated crash has happened.
func (d *CrashDisk) Killed() bool { return d.killed }

// BytesWritten returns the total bytes accepted by Write calls.
func (d *CrashDisk) BytesWritten() int64 { return d.written }

// kill marks the disk dead and tears every open file: the unsynced
// suffix of each is cut at a random point, the synced prefix survives.
func (d *CrashDisk) kill() {
	if d.killed {
		return
	}
	d.killed = true
	for _, f := range d.open {
		f.tear(d.rng)
	}
}

// crashFile wraps one real file with synced/written bookkeeping.
type crashFile struct {
	f      *os.File
	name   string
	size   int64
	synced int64
}

// tear truncates the file to its synced prefix plus a random portion of
// the unsynced bytes.
func (f *crashFile) tear(rng *rand.Rand) {
	if f.f == nil {
		return
	}
	unsynced := f.size - f.synced
	keep := f.synced
	if unsynced > 0 {
		keep += rng.Int63n(unsynced + 1)
	}
	_ = f.f.Truncate(keep)
	f.size = keep
}

// MkdirAll forwards; directory metadata is outside the crash model.
func (d *CrashDisk) MkdirAll(dir string) error { return d.inner.MkdirAll(dir) }

// OpenAppend opens a tracked file for appending.
func (d *CrashDisk) OpenAppend(name string) (File, error) {
	if d.killed {
		return nil, ErrKilled
	}
	f, err := os.OpenFile(name, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return d.track(f, name)
}

// Create opens a tracked file, truncating any previous contents.
func (d *CrashDisk) Create(name string) (File, error) {
	if d.killed {
		return nil, ErrKilled
	}
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return d.track(f, name)
}

// track registers an open file with the disk.
func (d *CrashDisk) track(f *os.File, name string) (File, error) {
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	cf := &crashFile{f: f, name: name, size: st.Size(), synced: st.Size()}
	d.open = append(d.open, cf)
	return &trackedFile{d: d, f: cf}, nil
}

// Rename fails after death: a crash between a snapshot's write and its
// rename leaves the temporary file behind, never the final name.
func (d *CrashDisk) Rename(oldname, newname string) error {
	if d.killed {
		return ErrKilled
	}
	return d.inner.Rename(oldname, newname)
}

// Remove fails after death.
func (d *CrashDisk) Remove(name string) error {
	if d.killed {
		return ErrKilled
	}
	return d.inner.Remove(name)
}

// ReadFile and ReadDirNames pass through: recovery reads with a fresh
// FS after the "reboot", and the manager's open-time scan happens
// before any budget is spent.
func (d *CrashDisk) ReadFile(name string) ([]byte, error) { return d.inner.ReadFile(name) }

// ReadDirNames lists dir's entries.
func (d *CrashDisk) ReadDirNames(dir string) ([]string, error) { return d.inner.ReadDirNames(dir) }

// Truncate passes through (the manager only truncates torn tails during
// recovery, before writing anything).
func (d *CrashDisk) Truncate(name string, size int64) error {
	if d.killed {
		return ErrKilled
	}
	return d.inner.Truncate(name, size)
}

// trackedFile is the File handed to the Manager.
type trackedFile struct {
	d *CrashDisk
	f *crashFile
}

// Write spends the disk's byte budget. When the budget runs out
// mid-buffer the prefix that fit is written for real — the torn write —
// and the disk dies.
func (t *trackedFile) Write(p []byte) (int, error) {
	d := t.d
	if d.killed {
		return 0, ErrKilled
	}
	n := len(p)
	if d.budget >= 0 && int64(n) > d.budget {
		n = int(d.budget)
	}
	if n > 0 {
		wn, err := t.f.f.Write(p[:n])
		t.f.size += int64(wn)
		d.written += int64(wn)
		if d.budget >= 0 {
			d.budget -= int64(wn)
		}
		if err != nil {
			return wn, err
		}
	}
	if n < len(p) {
		d.kill()
		return n, ErrKilled
	}
	return n, nil
}

// Sync marks the file's current contents durable: they survive the
// tear. The real fsync is skipped — the harness runs in-process, so
// page-cache visibility is enough and trials stay fast.
func (t *trackedFile) Sync() error {
	if t.d.killed {
		return ErrKilled
	}
	t.f.synced = t.f.size
	return nil
}

// Close closes the real file but keeps the tear bookkeeping: a closed
// unsynced file can still lose bytes in the crash, exactly like a real
// close without fsync.
func (t *trackedFile) Close() error {
	if t.d.killed {
		return ErrKilled
	}
	// Reopen-on-tear is unnecessary: keep the handle for truncation and
	// let process exit reap it (trials are short-lived).
	return nil
}
