// WAL hash chain: every record's CRC and payload are folded into a
// running sha256, and the writer seals the running head into the log as
// a periodic *chain-point* record. A per-record CRC proves a record is
// internally consistent; the chain proves the *sequence* is — no record
// was replaced, reordered or dropped — and the sealed head published in
// the checkpoint manifest lets recovery authenticate the whole log
// against one 32-byte value.
//
// Chain-point framing (little-endian, same header as op records):
//
//	offset  size  field
//	0       4     payload length (always 41)
//	4       4     CRC32C over the payload
//	8       1     chain kind byte (0xC1; outside the hw.OpKind space)
//	9       8     LSN the head covers
//	17      32    sha256 chain head after that LSN's record
//
// Chain-points carry no queue state: readers skip them, the LSN does
// not advance, and their deterministic placement (after every
// ChainEvery-th record) makes the byte offset of any LSN computable —
// the property anti-entropy repair uses to splice a fetched LSN range
// back into a damaged log.

package persist

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/hw"
)

const (
	chainKind       = 0xC1 // payload tag byte; hw.OpKind stops at Pop=2
	chainPayloadLen = 1 + 8 + sha256.Size
	// ChainRecordLen is the on-disk size of one chain-point record.
	ChainRecordLen = recHeaderLen + chainPayloadLen
	// DefaultChainEvery is the chain-point interval when WALOptions
	// leaves ChainEvery zero.
	DefaultChainEvery = 256
)

// chainSeed is the domain-separated genesis head: the chain of an empty
// log. Derived, not stored, so every log agrees on LSN 0.
var chainSeed = sha256.Sum256([]byte("bmw-wal-chain/v1"))

// ChainState is the running hash chain position: Head authenticates
// every record up to and including LSN.
type ChainState struct {
	LSN  uint64
	Head [sha256.Size]byte
}

// NewChain returns the genesis chain state (LSN 0, seed head).
func NewChain() ChainState { return ChainState{Head: chainSeed} }

// Extend folds one record (its CRC and payload bytes) into the chain:
// H(n) = sha256(H(n-1) || crc_le || payload).
func (c ChainState) Extend(crc uint32, payload []byte) ChainState {
	h := sha256.New()
	h.Write(c.Head[:])
	var cb [4]byte
	putU32(cb[:], crc)
	h.Write(cb[:])
	h.Write(payload)
	var out ChainState
	out.LSN = c.LSN + 1
	h.Sum(out.Head[:0])
	return out
}

// AppendChainPoint encodes one sealed chain-point record onto dst.
func AppendChainPoint(dst []byte, c ChainState) []byte {
	var payload [chainPayloadLen]byte
	payload[0] = chainKind
	putU64(payload[1:], c.LSN)
	copy(payload[9:], c.Head[:])
	var hdr [recHeaderLen]byte
	putU32(hdr[0:], chainPayloadLen)
	putU32(hdr[4:], crc32.Checksum(payload[:], castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload[:]...)
}

// BuildWALImage encodes ops (LSNs 1..len) as a complete log image with
// chain-points after every chainEvery-th record — byte-identical to
// what a WAL writer configured the same way produces. It returns the
// image and the final chain state. chainEvery <= 0 disables seals.
func BuildWALImage(ops []Op, chainEvery int) ([]byte, ChainState) {
	chain := NewChain()
	var b []byte
	for _, op := range ops {
		b = AppendRecord(b, op)
		payload := b[len(b)-recPayloadLen:]
		chain = chain.Extend(crc32.Checksum(payload, castagnoli), payload)
		if chainEvery > 0 && chain.LSN%uint64(chainEvery) == 0 {
			b = AppendChainPoint(b, chain)
		}
	}
	return b, chain
}

// Corruption classes a WAL/snapshot verification can report. They drive
// both the operator-facing message and the repair strategy.
const (
	ClassWALRecord     = "wal-record"     // op record unparseable or chain-divergent
	ClassWALChainPoint = "wal-chainpoint" // sealed head disagrees with recomputed chain
	ClassWALTruncated  = "wal-truncated"  // log ends before the manifest's record count
	ClassSnapshotChunk = "snapshot-chunk" // snapshot chunk hash differs from manifest leaf
	ClassManifest      = "manifest"       // manifest unreadable, torn or field-invalid
)

// BadRange localises one detected corruption to an inclusive LSN range.
type BadRange struct {
	FromLSN uint64
	ToLSN   uint64
	Class   string
	Detail  string
}

func (r BadRange) String() string {
	if r.FromLSN == r.ToLSN {
		return fmt.Sprintf("%s LSN %d (%s)", r.Class, r.FromLSN, r.Detail)
	}
	return fmt.Sprintf("%s LSNs %d-%d (%s)", r.Class, r.FromLSN, r.ToLSN, r.Detail)
}

// ErrIntegrity is the sentinel all durable-state integrity violations
// wrap: unlike a torn tail, the damage is *inside* committed state and
// recovery refuses to proceed silently.
var ErrIntegrity = errors.New("persist: durable-state integrity violation")

// IntegrityError reports detected corruption with enough localisation
// to drive repair: which file, which LSN ranges, which snapshot chunks.
type IntegrityError struct {
	Path   string
	Ranges []BadRange // WAL damage, by LSN range
	Chunks []int      // snapshot damage, by chunk index
	Reason string
}

func (e *IntegrityError) Error() string {
	msg := fmt.Sprintf("persist: integrity violation in %s", e.Path)
	if e.Reason != "" {
		msg += ": " + e.Reason
	}
	for _, r := range e.Ranges {
		msg += "; " + r.String()
	}
	if len(e.Chunks) > 0 {
		msg += fmt.Sprintf("; corrupt chunks %v", e.Chunks)
	}
	return msg
}

// Unwrap lets errors.Is(err, ErrIntegrity) match.
func (e *IntegrityError) Unwrap() error { return ErrIntegrity }

// VerifiedOp is one decoded record with the LSN the verifier assigned
// it (LSNs around a corrupt gap stay correct via chain-point resync).
type VerifiedOp struct {
	LSN uint64
	Op  Op
}

// WALVerifyReport is the outcome of VerifyWALImage: the decoded
// records, the recomputed chain, and every localised fault.
type WALVerifyReport struct {
	// Ops holds every record that decoded cleanly, labelled with its
	// LSN. When Bad is empty the LSNs are contiguous from 1.
	Ops []VerifiedOp
	// LSN is the highest sequence number reached (including records
	// lost inside Bad ranges, when a chain-point re-anchored the count).
	LSN uint64
	// Chain is the running chain after the last record. When a resync
	// adopted a sealed head the value is provisional until checked
	// against the manifest head.
	Chain ChainState
	// ChainPoints counts seals that verified against the recomputed
	// chain.
	ChainPoints int
	// ValidBytes is the length of the parseable prefix — the truncation
	// point when only the tail is torn.
	ValidBytes int64
	// TornTail reports unparseable bytes at end-of-file with no later
	// chain-point to resync on: indistinguishable from a crash tear.
	TornTail  bool
	TornBytes int64
	// Bad localises mid-log corruption: damage *before* later valid
	// data, which a crash cannot produce.
	Bad []BadRange
	// HeadMismatch reports the recomputed chain at the expected LSN
	// disagreed with the caller-supplied head.
	HeadMismatch bool
}

// Err converts the report into an *IntegrityError, or nil when the
// image is clean (a torn tail alone is a recovery event, not an
// integrity violation).
func (r *WALVerifyReport) Err(path string) error {
	if len(r.Bad) == 0 {
		return nil
	}
	return &IntegrityError{Path: path, Ranges: r.Bad}
}

// parseFrameAt decodes one frame at off. reason is "" on success;
// otherwise it describes why the bytes are not a valid frame.
func parseFrameAt(b []byte, off int) (op Op, cp ChainState, isCP bool, frameLen int, reason string) {
	rest := b[off:]
	if len(rest) < recHeaderLen {
		return op, cp, false, 0, fmt.Sprintf("partial header: %d of %d bytes", len(rest), recHeaderLen)
	}
	length := getU32(rest)
	switch length {
	case recPayloadLen:
		if len(rest) < RecordLen {
			return op, cp, false, 0, fmt.Sprintf("partial payload: %d of %d bytes", len(rest)-recHeaderLen, recPayloadLen)
		}
		payload := rest[recHeaderLen:RecordLen]
		if crc32.Checksum(payload, castagnoli) != getU32(rest[4:]) {
			return op, cp, false, 0, "checksum mismatch"
		}
		op = Op{
			Kind:  hw.OpKind(payload[0]),
			Cycle: getU64(payload[1:]),
			Value: getU64(payload[9:]),
			Meta:  getU64(payload[17:]),
		}
		if !op.Kind.Valid() || op.Kind == hw.Nop {
			return Op{}, cp, false, 0, fmt.Sprintf("invalid op kind %d", payload[0])
		}
		return op, cp, false, RecordLen, ""
	case chainPayloadLen:
		if len(rest) < ChainRecordLen {
			return op, cp, false, 0, fmt.Sprintf("partial chain-point: %d of %d bytes", len(rest)-recHeaderLen, chainPayloadLen)
		}
		payload := rest[recHeaderLen:ChainRecordLen]
		if crc32.Checksum(payload, castagnoli) != getU32(rest[4:]) {
			return op, cp, false, 0, "chain-point checksum mismatch"
		}
		if payload[0] != chainKind {
			return op, cp, false, 0, fmt.Sprintf("invalid chain kind %d", payload[0])
		}
		cp.LSN = getU64(payload[1:])
		copy(cp.Head[:], payload[9:])
		return op, cp, true, ChainRecordLen, ""
	default:
		return op, cp, false, 0, fmt.Sprintf("payload length %d, want %d or %d", length, recPayloadLen, chainPayloadLen)
	}
}

// resyncChainPoint scans forward from off for the next parseable
// chain-point frame sealing at least minLSN, returning its offset (or
// -1) and decoded state. Seals below minLSN are skipped: a valid log's
// chain-points are monotonic, so a backwards seal is itself damage (or
// a stale log fragment spliced in) and must not rewind the verifier's
// sequence count.
func resyncChainPoint(b []byte, off int, minLSN uint64) (int, ChainState) {
	for ; off+ChainRecordLen <= len(b); off++ {
		if getU32(b[off:]) != chainPayloadLen {
			continue
		}
		_, cp, isCP, _, reason := parseFrameAt(b, off)
		if isCP && reason == "" && cp.LSN >= minLSN {
			return off, cp
		}
	}
	return -1, ChainState{}
}

// VerifyWALImage walks a log image verifying framing and the hash
// chain, localising any damage to LSN ranges. expect, when non-nil, is
// the manifest's sealed head: the recomputed chain at expect.LSN must
// match it, and a log shorter than expect.LSN is reported as truncated
// rather than merely torn. The function never panics on arbitrary
// input and never returns torn bytes as data.
func VerifyWALImage(b []byte, expect *ChainState) *WALVerifyReport {
	r := &WALVerifyReport{Chain: NewChain()}
	var lastSeal uint64 // LSN of the last chain anchor (seal or resync)
	var headAtExpect *[sha256.Size]byte
	var sealAtExpect uint64
	off := 0
	for off < len(b) {
		op, cp, isCP, frameLen, reason := parseFrameAt(b, off)
		if reason != "" {
			// Damage at off. If a later chain-point parses, this is
			// mid-log corruption: resync there, report the LSN gap.
			// Otherwise everything to EOF is a torn tail.
			ns, ncp := resyncChainPoint(b, off+1, r.LSN)
			if ns < 0 {
				r.TornTail = true
				r.TornBytes = int64(len(b) - off)
				break
			}
			from := r.LSN + 1
			if ncp.LSN < from {
				// The seal covers the already-decoded prefix: the damage
				// sits between records, lose no LSNs.
				from = ncp.LSN
			}
			r.Bad = append(r.Bad, BadRange{
				FromLSN: from, ToLSN: ncp.LSN,
				Class: ClassWALRecord, Detail: reason,
			})
			r.LSN = ncp.LSN
			r.Chain = ncp // provisional: authenticated by expect / later seals
			lastSeal = ncp.LSN
			off = ns + ChainRecordLen
			r.ValidBytes = int64(off)
			continue
		}
		if isCP {
			switch {
			case cp.LSN != r.LSN:
				r.Bad = append(r.Bad, BadRange{
					FromLSN: r.LSN, ToLSN: r.LSN,
					Class:  ClassWALChainPoint,
					Detail: fmt.Sprintf("chain-point sealed LSN %d at record %d", cp.LSN, r.LSN),
				})
			case cp.Head != r.Chain.Head:
				// Either the seal's stored hash rotted, or the records
				// since the last anchor were tampered with CRC-valid
				// frames. Keep the recomputed chain: if the next seal
				// agrees with it, the damage was this seal alone.
				r.Bad = append(r.Bad, BadRange{
					FromLSN: lastSeal + 1, ToLSN: cp.LSN,
					Class:  ClassWALChainPoint,
					Detail: "sealed head disagrees with recomputed chain",
				})
			default:
				r.ChainPoints++
				lastSeal = cp.LSN
			}
			off += frameLen
			r.ValidBytes = int64(off)
			continue
		}
		payload := b[off+recHeaderLen : off+RecordLen]
		r.Chain = r.Chain.Extend(crc32.Checksum(payload, castagnoli), payload)
		r.LSN++
		r.Ops = append(r.Ops, VerifiedOp{LSN: r.LSN, Op: op})
		off += frameLen
		r.ValidBytes = int64(off)
		if expect != nil && r.LSN == expect.LSN {
			h := r.Chain.Head
			headAtExpect = &h
			sealAtExpect = lastSeal
		}
	}
	if expect != nil {
		switch {
		case expect.LSN == 0:
			// Genesis head: nothing to compare.
		case expect.LSN > r.LSN:
			r.HeadMismatch = true
			r.Bad = append(r.Bad, BadRange{
				FromLSN: r.LSN + 1, ToLSN: expect.LSN,
				Class:  ClassWALTruncated,
				Detail: fmt.Sprintf("log ends at LSN %d, manifest seals %d", r.LSN, expect.LSN),
			})
		case headAtExpect == nil:
			// expect.LSN was inside a corrupt gap; Bad already covers it.
			r.HeadMismatch = true
		case *headAtExpect != expect.Head:
			r.HeadMismatch = true
			r.Bad = append(r.Bad, BadRange{
				FromLSN: sealAtExpect + 1, ToLSN: expect.LSN,
				Class:  ClassWALRecord,
				Detail: "chain head disagrees with manifest seal",
			})
		}
	}
	return r
}
