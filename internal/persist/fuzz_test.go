package persist

import (
	"errors"
	"testing"

	"repro/internal/hw"
)

// FuzzWALReplay feeds arbitrary bytes to the WAL reader. The contract
// under fuzz:
//
//   - never panic;
//   - either the image decodes cleanly or the error is a typed
//     ErrTornRecord;
//   - the reported valid prefix is exactly the decoded records —
//     torn bytes are never returned as data;
//   - re-reading the valid prefix reproduces the same ops with no
//     error (truncation to the valid prefix is a fixpoint).
func FuzzWALReplay(f *testing.F) {
	two := encodeLog([]Op{
		{Kind: hw.Push, Cycle: 1, Value: 42, Meta: 7},
		{Kind: hw.Pop, Cycle: 2, Value: 42, Meta: 7},
	})
	// Seed corpus: truncations at every offset of a two-record log.
	for cut := 0; cut <= len(two); cut++ {
		f.Add(append([]byte(nil), two[:cut]...))
	}
	// Plus a few corrupted variants: kind, length field, checksum.
	for _, i := range []int{0, 4, recHeaderLen, RecordLen - 1} {
		mut := append([]byte(nil), two...)
		mut[i] ^= 0xff
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		ops, valid, err := ReadAll(data)
		if err != nil && !errors.Is(err, ErrTornRecord) {
			t.Fatalf("non-torn error from ReadAll: %v", err)
		}
		if valid != int64(len(ops))*RecordLen {
			t.Fatalf("valid prefix %d bytes for %d fixed-size records", valid, len(ops))
		}
		if valid > int64(len(data)) {
			t.Fatalf("valid prefix %d exceeds input length %d", valid, len(data))
		}
		if err == nil && valid != int64(len(data)) {
			t.Fatalf("clean decode but %d of %d bytes consumed", valid, len(data))
		}
		for i, op := range ops {
			if !op.Kind.Valid() || op.Kind == hw.Nop {
				t.Fatalf("op %d decoded with invalid kind %v", i, op.Kind)
			}
		}
		again, validAgain, errAgain := ReadAll(data[:valid])
		if errAgain != nil || validAgain != valid || len(again) != len(ops) {
			t.Fatalf("valid prefix is not a fixpoint: %v / %d / %d ops", errAgain, validAgain, len(again))
		}
		for i := range ops {
			if again[i] != ops[i] {
				t.Fatalf("re-decode diverged at op %d", i)
			}
		}
	})
}
