package persist

import (
	"errors"
	"testing"

	"repro/internal/hw"
)

// FuzzWALReplay feeds arbitrary bytes to the WAL reader. The contract
// under fuzz:
//
//   - never panic;
//   - either the image decodes cleanly or the error is a typed
//     ErrTornRecord;
//   - the reported valid prefix is exactly the decoded records —
//     torn bytes are never returned as data;
//   - re-reading the valid prefix reproduces the same ops with no
//     error (truncation to the valid prefix is a fixpoint).
func FuzzWALReplay(f *testing.F) {
	two := encodeLog([]Op{
		{Kind: hw.Push, Cycle: 1, Value: 42, Meta: 7},
		{Kind: hw.Pop, Cycle: 2, Value: 42, Meta: 7},
	})
	// Seed corpus: truncations at every offset of a two-record log.
	for cut := 0; cut <= len(two); cut++ {
		f.Add(append([]byte(nil), two[:cut]...))
	}
	// Plus a few corrupted variants: kind, length field, checksum.
	for _, i := range []int{0, 4, recHeaderLen, RecordLen - 1} {
		mut := append([]byte(nil), two...)
		mut[i] ^= 0xff
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		ops, valid, err := ReadAll(data)
		if err != nil && !errors.Is(err, ErrTornRecord) {
			t.Fatalf("non-torn error from ReadAll: %v", err)
		}
		if valid < int64(len(ops))*RecordLen {
			t.Fatalf("valid prefix %d bytes cannot hold %d fixed-size records", valid, len(ops))
		}
		if valid > int64(len(data)) {
			t.Fatalf("valid prefix %d exceeds input length %d", valid, len(data))
		}
		if err == nil && valid != int64(len(data)) {
			t.Fatalf("clean decode but %d of %d bytes consumed", valid, len(data))
		}
		for i, op := range ops {
			if !op.Kind.Valid() || op.Kind == hw.Nop {
				t.Fatalf("op %d decoded with invalid kind %v", i, op.Kind)
			}
		}
		again, validAgain, errAgain := ReadAll(data[:valid])
		if errAgain != nil || validAgain != valid || len(again) != len(ops) {
			t.Fatalf("valid prefix is not a fixpoint: %v / %d / %d ops", errAgain, validAgain, len(again))
		}
		for i := range ops {
			if again[i] != ops[i] {
				t.Fatalf("re-decode diverged at op %d", i)
			}
		}
	})
}

// FuzzChainVerify feeds arbitrary bytes to the localising WAL verifier.
// The contract under fuzz:
//
//   - never panic, with or without an expected sealed head;
//   - decoded ops carry strictly increasing LSNs;
//   - a report with no faults and no torn tail consumes every byte and
//     has contiguous LSNs from 1;
//   - mutating any single byte of a sealed image is detected (one of:
//     fault range, torn tail, head mismatch) — zero undetected escapes.
func FuzzChainVerify(f *testing.F) {
	ops := []Op{
		{Kind: hw.Push, Cycle: 1, Value: 42, Meta: 7},
		{Kind: hw.Push, Cycle: 2, Value: 9, Meta: 1},
		{Kind: hw.Pop, Cycle: 3, Value: 9, Meta: 1},
		{Kind: hw.Push, Cycle: 4, Value: 5, Meta: 2},
	}
	img, _ := BuildWALImage(ops, 2)
	f.Add(append([]byte(nil), img...))
	for cut := 0; cut <= len(img); cut += 7 {
		f.Add(append([]byte(nil), img[:cut]...))
	}
	for _, i := range []int{0, 4, recHeaderLen, RecordLen, RecordLen + 8, 2*RecordLen + ChainRecordLen} {
		mut := append([]byte(nil), img...)
		mut[i] ^= 0xff
		f.Add(mut)
	}

	_, sealed := BuildWALImage(ops, 2)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, expect := range []*ChainState{nil, &sealed} {
			r := VerifyWALImage(data, expect)
			var last uint64
			for _, v := range r.Ops {
				if v.LSN <= last {
					t.Fatalf("non-increasing LSN %d after %d", v.LSN, last)
				}
				last = v.LSN
			}
			if r.ValidBytes > int64(len(data)) {
				t.Fatalf("valid bytes %d exceed input %d", r.ValidBytes, len(data))
			}
			if len(r.Bad) == 0 && !r.TornTail && !r.HeadMismatch {
				if expect == nil && r.ValidBytes != int64(len(data)) {
					t.Fatalf("clean report consumed %d of %d bytes", r.ValidBytes, len(data))
				}
				for i, v := range r.Ops {
					if v.LSN != uint64(i+1) {
						t.Fatalf("clean report with LSN gap at %d", i)
					}
				}
			}
		}

		// Detection completeness: use the fuzz input to pick a byte of
		// the sealed image to flip; the verifier must notice.
		if len(data) >= 3 {
			mut := append([]byte(nil), img...)
			pos := (int(data[0]) | int(data[1])<<8) % len(mut)
			bit := data[2] % 8
			mut[pos] ^= 1 << bit
			r := VerifyWALImage(mut, &sealed)
			if len(r.Bad) == 0 && !r.TornTail && !r.HeadMismatch {
				t.Fatalf("flipped bit %d at byte %d escaped undetected", bit, pos)
			}
		}
	})
}
