// Snapshot envelope: a versioned, self-checksummed container for one
// queue's EncodeSnapshot payload.
//
// File layout (little-endian):
//
//	offset  size  field
//	0       8     magic "BMWSNAP1"
//	8       1     kind length K
//	9       K     kind ("core", "pifo", "rbmw", "rpubmw")
//	9+K     4     codec version (the queue's SnapshotVersion)
//	13+K    8     sequence number (monotonic per directory)
//	21+K    8     LSN: WAL records this snapshot covers
//	29+K    4     payload length P
//	33+K    P     payload (EncodeSnapshot output)
//	33+K+P  4     CRC32C over every preceding byte
//
// The trailing whole-file checksum is the torn-snapshot defence: a
// crash mid-write (or a bit flip while the file is being produced)
// fails validation and recovery falls back to the previous snapshot.

package persist

import (
	"fmt"
	"hash/crc32"
)

var snapMagic = []byte("BMWSNAP1")

const maxSnapKind = 255

// SnapshotHeader identifies one snapshot.
type SnapshotHeader struct {
	Kind    string
	Version uint32
	Seq     uint64
	LSN     uint64
}

// EncodeSnapshotFile wraps a payload in the checksummed envelope.
func EncodeSnapshotFile(h SnapshotHeader, payload []byte) ([]byte, error) {
	if len(h.Kind) == 0 || len(h.Kind) > maxSnapKind {
		return nil, fmt.Errorf("persist: snapshot kind %q length out of range", h.Kind)
	}
	var e Enc
	e.B = append(e.B, snapMagic...)
	e.U8(uint8(len(h.Kind)))
	e.B = append(e.B, h.Kind...)
	e.U32(h.Version)
	e.U64(h.Seq)
	e.U64(h.LSN)
	e.Bytes(payload)
	e.U32(crc32.Checksum(e.B, castagnoli))
	return e.B, nil
}

// DecodeSnapshotFile validates an envelope and returns its header and
// payload. Any truncation, bit error or format mismatch returns an
// error; the caller treats the file as invalid and falls back.
func DecodeSnapshotFile(b []byte) (SnapshotHeader, []byte, error) {
	var h SnapshotHeader
	if len(b) < len(snapMagic)+4 {
		return h, nil, fmt.Errorf("persist: snapshot file too short (%d bytes)", len(b))
	}
	if string(b[:len(snapMagic)]) != string(snapMagic) {
		return h, nil, fmt.Errorf("persist: bad snapshot magic")
	}
	body, sum := b[:len(b)-4], getU32(b[len(b)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return h, nil, fmt.Errorf("persist: snapshot checksum mismatch")
	}
	d := NewDec(body[len(snapMagic):])
	kind := d.take(int(d.U8()))
	h.Kind = string(kind)
	h.Version = d.U32()
	h.Seq = d.U64()
	h.LSN = d.U64()
	payload := d.Bytes()
	if err := d.Done(); err != nil {
		return h, nil, fmt.Errorf("persist: snapshot envelope malformed: %w", err)
	}
	if h.Kind == "" {
		return h, nil, fmt.Errorf("persist: snapshot kind empty")
	}
	return h, payload, nil
}
