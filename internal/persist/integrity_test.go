package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/obs"
)

func chainOps(n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Kind: hw.Push, Cycle: uint64(i + 1), Value: uint64(i) * 7, Meta: uint64(i)}
	}
	return ops
}

func TestChainImageRoundTrip(t *testing.T) {
	ops := chainOps(700)
	img, chain := BuildWALImage(ops, 256)
	if chain.LSN != 700 {
		t.Fatalf("chain LSN %d, want 700", chain.LSN)
	}
	// 700 records, seals at 256 and 512.
	wantLen := 700*RecordLen + 2*ChainRecordLen
	if len(img) != wantLen {
		t.Fatalf("image %d bytes, want %d", len(img), wantLen)
	}
	rep := VerifyWALImage(img, &chain)
	if err := rep.Err("img"); err != nil || rep.TornTail || rep.HeadMismatch {
		t.Fatalf("clean image: err=%v torn=%v mismatch=%v", err, rep.TornTail, rep.HeadMismatch)
	}
	if rep.ChainPoints != 2 || len(rep.Ops) != 700 || rep.LSN != 700 {
		t.Fatalf("report %d seals %d ops lsn %d", rep.ChainPoints, len(rep.Ops), rep.LSN)
	}
	for i, v := range rep.Ops {
		if v.LSN != uint64(i+1) || v.Op != ops[i] {
			t.Fatalf("op %d: lsn %d op %+v", i, v.LSN, v.Op)
		}
	}
	// Reader (the strict streaming decoder) agrees with the verifier.
	got, valid, err := ReadAll(img)
	if err != nil || valid != int64(len(img)) || len(got) != 700 {
		t.Fatalf("ReadAll: %d ops, valid %d, err %v", len(got), valid, err)
	}
}

func TestChainWriterMatchesBuilder(t *testing.T) {
	// The live writer must produce byte-identical images to
	// BuildWALImage so splice repair can reconstruct its output.
	f := &fakeFile{}
	w := NewWAL(f, 0, WALOptions{BatchOps: 3, ChainEvery: 4})
	ops := chainOps(11)
	for _, op := range ops {
		if err := w.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	img, chain := BuildWALImage(ops, 4)
	if !bytes.Equal(f.buf.Bytes(), img) {
		t.Fatalf("writer image differs from BuildWALImage (%d vs %d bytes)", f.buf.Len(), len(img))
	}
	if w.Chain() != chain {
		t.Fatalf("writer chain %+v, builder %+v", w.Chain(), chain)
	}
}

func TestChainLocalisesMidLogCorruption(t *testing.T) {
	ops := chainOps(600)
	img, chain := BuildWALImage(ops, 100)
	// Flip one byte inside record LSN 150's payload.
	off := 149*RecordLen + ChainRecordLen + recHeaderLen + 3
	img[off] ^= 0x40
	rep := VerifyWALImage(img, &chain)
	if len(rep.Bad) != 1 {
		t.Fatalf("bad ranges %v, want exactly one", rep.Bad)
	}
	bad := rep.Bad[0]
	if bad.Class != ClassWALRecord || bad.FromLSN != 150 || bad.ToLSN != 200 {
		t.Fatalf("range %+v, want wal-record 150-200", bad)
	}
	// Everything after the resync seal still decodes with correct LSNs.
	if rep.LSN != 600 || rep.Ops[len(rep.Ops)-1].LSN != 600 {
		t.Fatalf("verification did not resume: lsn %d", rep.LSN)
	}
	if !errors.Is(rep.Err("wal"), ErrIntegrity) {
		t.Fatalf("Err() = %v, want ErrIntegrity", rep.Err("wal"))
	}
}

func TestChainLocalisesCorruptSeal(t *testing.T) {
	ops := chainOps(300)
	img, chain := BuildWALImage(ops, 100)
	// Flip a byte of the *hash* inside the second seal (after record
	// 200). CRC of the seal frame then fails -> parse falls to resync.
	sealOff := 200*RecordLen + ChainRecordLen // start of seal #2's frame
	img[sealOff+recHeaderLen+10] ^= 0x01
	rep := VerifyWALImage(img, &chain)
	if len(rep.Bad) != 1 || rep.Bad[0].Class != ClassWALRecord {
		t.Fatalf("bad %v", rep.Bad)
	}
	// The damage is confined between the seals around the broken one.
	if rep.Bad[0].FromLSN != 201 || rep.Bad[0].ToLSN != 300 {
		t.Fatalf("range %+v, want 201-300 (resync at seal 300)", rep.Bad[0])
	}
}

func TestChainDetectsTruncationAgainstSeal(t *testing.T) {
	ops := chainOps(100)
	img, chain := BuildWALImage(ops, 1000) // no interior seals
	rep := VerifyWALImage(img[:50*RecordLen], &chain)
	if len(rep.Bad) != 1 || rep.Bad[0].Class != ClassWALTruncated {
		t.Fatalf("bad %v, want wal-truncated", rep.Bad)
	}
	if rep.Bad[0].FromLSN != 51 || rep.Bad[0].ToLSN != 100 {
		t.Fatalf("range %+v, want 51-100", rep.Bad[0])
	}
	// Without a sealed head the same prefix is simply a shorter log.
	if rep := VerifyWALImage(img[:50*RecordLen], nil); len(rep.Bad) != 0 {
		t.Fatalf("unsealed prefix flagged: %v", rep.Bad)
	}
}

func TestChainTornTailStaysTorn(t *testing.T) {
	// Damage at EOF with no later seal is a torn tail (crash damage),
	// not an integrity violation.
	ops := chainOps(10)
	img, _ := BuildWALImage(ops, 1000)
	rep := VerifyWALImage(img[:len(img)-5], nil)
	if !rep.TornTail || len(rep.Bad) != 0 || rep.LSN != 9 {
		t.Fatalf("torn=%v bad=%v lsn=%d", rep.TornTail, rep.Bad, rep.LSN)
	}
	if rep.ValidBytes != int64(9*RecordLen) {
		t.Fatalf("valid bytes %d", rep.ValidBytes)
	}
}

func TestMerkleProofs(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13} {
		b := make([]byte, n*100+37)
		for i := range b {
			b[i] = byte(i * 31)
		}
		leaves := MerkleLeaves(b, 100)
		root := MerkleRoot(leaves)
		for i := range leaves {
			proof := MerkleProof(leaves, i)
			if !VerifyMerkleProof(leaves[i], i, len(leaves), proof, root) {
				t.Fatalf("n=%d leaf %d: valid proof rejected", n, i)
			}
			var wrong [sha256.Size]byte
			copy(wrong[:], leaves[i][:])
			wrong[0] ^= 1
			if VerifyMerkleProof(wrong, i, len(leaves), proof, root) {
				t.Fatalf("n=%d leaf %d: corrupt leaf accepted", n, i)
			}
			if i+1 < len(leaves) && VerifyMerkleProof(leaves[i], i+1, len(leaves), proof, root) {
				t.Fatalf("n=%d leaf %d: wrong index accepted", n, i)
			}
		}
	}
}

func TestManifestRoundTripAndFieldErrors(t *testing.T) {
	dir := t.TempDir()
	q := &toyQueue{}
	m, _, err := Open(dir, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5; i++ {
		if err := q.push(m, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	man, err := LoadManifest(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.WALRecords != 5 || man.SnapshotSeq != 1 || man.SnapshotLSN != 5 {
		t.Fatalf("manifest %+v", man)
	}

	path := filepath.Join(dir, ManifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A flipped field fails the self-checksum with a typed error.
	tampered := bytes.Replace(raw, []byte(`"wal_records": 5`), []byte(`"wal_records": 6`), 1)
	if bytes.Equal(tampered, raw) {
		t.Fatal("tamper did not apply")
	}
	_, err = DecodeManifest(path, tampered)
	var me *ManifestError
	if !errors.As(err, &me) || me.Field != "checksum" {
		t.Fatalf("tampered manifest error %v, want ManifestError on checksum", err)
	}
	if !errors.Is(err, ErrManifest) {
		t.Fatalf("err %v does not wrap ErrManifest", err)
	}

	// Torn JSON (truncated write) is a typed refusal, never a panic.
	_, err = DecodeManifest(path, raw[:len(raw)/2])
	if !errors.As(err, &me) || me.Field != "(json)" {
		t.Fatalf("torn manifest error %v, want ManifestError on (json)", err)
	}

	// Structured field errors name the field.
	var doc Manifest
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	doc.ChainEvery = -1
	sum, _ := ManifestChecksum(doc)
	doc.Checksum = sum
	b2, _ := json.Marshal(doc)
	if _, err := DecodeManifest(path, b2); !errors.As(err, &me) || me.Field != "chain_every" {
		t.Fatalf("chain_every error %v", err)
	}
}

func TestRecoveryVerifiesManifestAndSnapshotRoot(t *testing.T) {
	dir := t.TempDir()
	q := &toyQueue{}
	m, _, err := Open(dir, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 300; i++ {
		if err := q.push(m, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean reopen: manifest and snapshot root verified.
	q2 := &toyQueue{}
	m2, rep, err := Open(dir, q2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ManifestVerified || !rep.SnapshotRootVerified {
		t.Fatalf("report %+v, want manifest+root verified", rep)
	}
	if rep.ChainPoints != 1 {
		t.Fatalf("chain points %d, want 1 (300 records, seal at 256)", rep.ChainPoints)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}

	// Rot a byte inside the snapshot. Lenient recovery skips it (and
	// with no older snapshot, replays from genesis); strict refuses
	// with chunk localisation.
	snap := filepath.Join(dir, snapName(1))
	sb, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	sb[len(sb)/2] ^= 0x20
	if err := os.WriteFile(snap, sb, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(dir, &toyQueue{}, Options{StrictIntegrity: true})
	var ie *IntegrityError
	if !errors.As(err, &ie) || len(ie.Chunks) == 0 {
		t.Fatalf("strict error %v, want IntegrityError with chunk localisation", err)
	}

	q3 := &toyQueue{}
	m3, rep3, err := Open(dir, q3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if rep3.SnapshotSeq != 0 || rep3.SnapshotsSkipped != 1 || rep3.ReplayedOps != 300 {
		t.Fatalf("lenient report %+v, want snapshot skipped and full replay", rep3)
	}
	if len(q3.vals) != 300 {
		t.Fatalf("recovered %d vals", len(q3.vals))
	}
}

func TestRetireBlockedByCorruptRetainedSnapshot(t *testing.T) {
	// Satellite: retirement must not advance past an unverifiable
	// snapshot — deleting older good copies while a newer one is rotten
	// could destroy the last restorable state.
	dir := t.TempDir()
	reg := obs.NewRegistry()
	q := &toyQueue{}
	m, _, err := Open(dir, q, Options{Retain: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	checkpoint := func(v uint64) {
		t.Helper()
		if err := q.push(m, v); err != nil {
			t.Fatal(err)
		}
		if err := m.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	checkpoint(1) // snap 1
	checkpoint(2) // snap 2

	// Rot snapshot 2 on disk, then checkpoint again. Retention wants to
	// keep {2,3} and delete 1 — but 2 no longer verifies, so nothing
	// may retire.
	snap2 := filepath.Join(dir, snapName(2))
	sb, err := os.ReadFile(snap2)
	if err != nil {
		t.Fatal(err)
	}
	sb[len(sb)-10] ^= 0xFF
	if err := os.WriteFile(snap2, sb, 0o644); err != nil {
		t.Fatal(err)
	}
	checkpoint(3) // snap 3

	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := os.Stat(filepath.Join(dir, snapName(seq))); err != nil {
			t.Fatalf("snapshot %d missing: retirement advanced past corrupt snap 2", seq)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counter("persist_integrity_retire_blocked_total"); got != 1 {
		t.Fatalf("retire_blocked counter %d, want 1", got)
	}

	// The scrubber flags the rotten retained snapshot.
	sc := NewScrubber(ScrubConfig{Dirs: []string{dir}, Metrics: reg})
	rep := sc.Step()
	found := false
	for _, f := range rep.Findings {
		if f.Class == ClassSnapshotChunk && f.Seq == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("scrub findings %v, want snapshot-chunk on seq 2", rep.Findings)
	}

	// Repairing (rewriting) snapshot 2 unblocks retirement.
	sb[len(sb)-10] ^= 0xFF
	if err := os.WriteFile(snap2, sb, 0o644); err != nil {
		t.Fatal(err)
	}
	checkpoint(4) // snap 4: now {3,4} retained, 1 and 2 retire
	if _, err := os.Stat(filepath.Join(dir, snapName(1))); !os.IsNotExist(err) {
		t.Fatalf("snapshot 1 still present after repair: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName(2))); !os.IsNotExist(err) {
		t.Fatalf("snapshot 2 still present after repair: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestScrubberDetectsAndReportsCorruption(t *testing.T) {
	mk := func(t *testing.T) string {
		dir := t.TempDir()
		q := &toyQueue{}
		m, _, err := Open(dir, q, Options{WAL: WALOptions{ChainEvery: 16}})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 64; i++ {
			if err := q.push(m, i); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	clean, dirty := mk(t), mk(t)

	// Rot one WAL byte in the dirty directory (inside record 5).
	wal := filepath.Join(dirty, walName)
	wb, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	wb[4*RecordLen+recHeaderLen+2] ^= 0x08
	if err := os.WriteFile(wal, wb, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	var firedDir string
	slept := 0
	sc := NewScrubber(ScrubConfig{
		Dirs:      []string{clean, dirty},
		Metrics:   reg,
		RateBytes: 1 << 30,
		Sleep:     func(d time.Duration) { slept++ },
		OnCorruption: func(dir string, fs []Finding) {
			firedDir = dir
		},
	})
	r1 := sc.Step()
	if !r1.Clean() {
		t.Fatalf("clean dir flagged: %v", r1.Findings)
	}
	if sc.Cursor() != 1 {
		t.Fatalf("cursor %d, want 1 (resumable position)", sc.Cursor())
	}
	r2 := sc.Step()
	if r2.Clean() {
		t.Fatal("dirty dir not flagged")
	}
	if r2.Findings[0].Class != ClassWALRecord || r2.Findings[0].FromLSN != 5 {
		t.Fatalf("finding %+v, want wal-record from LSN 5", r2.Findings[0])
	}
	if firedDir != dirty {
		t.Fatalf("incident hook fired for %q, want %q", firedDir, dirty)
	}
	if slept == 0 {
		t.Fatal("throttle never slept")
	}
	snap := reg.Snapshot()
	if snap.Counter("persist_scrub_dirs_total") != 2 || snap.Counter("persist_scrub_passes_total") != 1 {
		t.Fatalf("scrub counters: dirs=%d passes=%d", snap.Counter("persist_scrub_dirs_total"), snap.Counter("persist_scrub_passes_total"))
	}
	if snap.Counter("persist_scrub_corruptions_total") == 0 {
		t.Fatal("corruption counter not incremented")
	}

	// Second firing is suppressed: incident capture triggers once.
	firedDir = ""
	sc.Step()
	sc.Step()
	if firedDir != "" {
		t.Fatal("incident hook fired twice")
	}
}

func TestWALPoisonedGauge(t *testing.T) {
	reg := obs.NewRegistry()
	f := &fakeFile{}
	w := NewWAL(f, 0, WALOptions{BatchOps: 1})
	w.Instrument(reg, "persist")
	if err := w.Append(Op{Kind: hw.Push, Cycle: 1, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if reg.Snapshot().Gauge("persist_wal_poisoned") != 0 {
		t.Fatal("poisoned gauge set while healthy")
	}
	f.failWrites, f.err = 1, errors.New("disk gone")
	if err := w.Append(Op{Kind: hw.Push, Cycle: 2, Value: 2}); err == nil {
		t.Fatal("append after injected failure succeeded")
	}
	if !w.Poisoned() {
		t.Fatal("WAL not poisoned")
	}
	if reg.Snapshot().Gauge("persist_wal_poisoned") != 1 {
		t.Fatal("poisoned gauge not set")
	}
}
