// The write-ahead log: fixed-size CRC32C-framed records, group-commit
// batching, pluggable fsync policy, and retry-with-backoff on transient
// write errors.
//
// Record framing (all little-endian):
//
//	offset  size  field
//	0       4     payload length (always 25 for the v1 record)
//	4       4     CRC32C (Castagnoli) over the payload bytes
//	8       1     op kind (1 = push, 2 = pop)
//	9       8     commit cycle
//	17      8     value
//	25      8     meta
//
// A record is valid only if the full frame is present, the length field
// matches the v1 payload size, the checksum matches, and the kind byte
// decodes to a push or pop. Anything else is a torn record: the reader
// reports it (typed *TornRecordError) and the byte offset of the last
// valid record, so recovery can truncate the tail.
//
// Interleaved with op records the writer emits chain-point records
// (chain.go): sealed sha256 chain heads every ChainEvery ops. The
// reader verifies and skips them — they carry no queue state — and the
// checkpoint manifest publishes the head so recovery can authenticate
// the whole log, not just each record individually.

package persist

import (
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"repro/internal/obs"
)

// castagnoli is the CRC32C table (the polynomial used by ext4, iSCSI
// and most storage formats; hardware-accelerated by hash/crc32).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	recHeaderLen  = 8
	recPayloadLen = 1 + 8 + 8 + 8
	// RecordLen is the on-disk size of one WAL record.
	RecordLen = recHeaderLen + recPayloadLen
)

// AppendRecord encodes one operation as a framed WAL record onto dst.
func AppendRecord(dst []byte, op Op) []byte {
	var payload [recPayloadLen]byte
	payload[0] = byte(op.Kind)
	putU64(payload[1:], op.Cycle)
	putU64(payload[9:], op.Value)
	putU64(payload[17:], op.Meta)
	var hdr [recHeaderLen]byte
	putU32(hdr[0:], recPayloadLen)
	putU32(hdr[4:], crc32.Checksum(payload[:], castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload[:]...)
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}

// Reader decodes a WAL image record by record. It never panics on
// arbitrary input: a malformed record surfaces as a *TornRecordError
// and Offset() reports the length of the valid prefix before it.
// Chain-point records are verified against the running chain and
// skipped; a mismatched seal reads as a torn record (the localising
// verifier, VerifyWALImage, is the tool for diagnosing those).
type Reader struct {
	b     []byte
	off   int
	chain ChainState
}

// NewReader wraps a WAL image (typically the whole log file).
func NewReader(b []byte) *Reader { return &Reader{b: b, chain: NewChain()} }

// Offset returns the byte offset just past the last valid record — the
// truncation point when the tail is torn.
func (r *Reader) Offset() int64 { return int64(r.off) }

// Chain returns the running hash chain over the records read so far.
func (r *Reader) Chain() ChainState { return r.chain }

// Next decodes the next record. It returns io.EOF at a clean end of the
// log and a *TornRecordError (wrapping ErrTornRecord) for a partial or
// corrupt record; the reader does not advance past a bad record.
func (r *Reader) Next() (Op, error) {
	for {
		rest := r.b[r.off:]
		if len(rest) == 0 {
			return Op{}, io.EOF
		}
		op, cp, isCP, frameLen, reason := parseFrameAt(r.b, r.off)
		if reason != "" {
			return Op{}, &TornRecordError{Offset: int64(r.off), Reason: reason}
		}
		if isCP {
			if cp.LSN != r.chain.LSN || cp.Head != r.chain.Head {
				return Op{}, &TornRecordError{Offset: int64(r.off), Reason: "chain-point disagrees with recomputed chain"}
			}
			r.off += frameLen
			continue
		}
		payload := r.b[r.off+recHeaderLen : r.off+RecordLen]
		r.chain = r.chain.Extend(crc32.Checksum(payload, castagnoli), payload)
		r.off += frameLen
		return op, nil
	}
}

// ReadAll decodes every valid record of a WAL image. valid is the byte
// length of the intact prefix; err is nil for a cleanly terminated log
// and the *TornRecordError for a torn tail. The decoded prefix is
// returned in both cases — a torn tail never hides intact records, and
// torn bytes are never returned as data.
func ReadAll(b []byte) (ops []Op, valid int64, err error) {
	r := NewReader(b)
	for {
		op, e := r.Next()
		if e == io.EOF {
			return ops, r.Offset(), nil
		}
		if e != nil {
			return ops, r.Offset(), e
		}
		ops = append(ops, op)
	}
}

// SyncPolicy selects when the WAL fsyncs.
type SyncPolicy int

const (
	// SyncBatch fsyncs once per group commit (the default): an op is
	// durable once its batch commits.
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs after every appended record (BatchOps is
	// effectively 1).
	SyncAlways
	// SyncNone never fsyncs from the append path; only Checkpoint and
	// Close force durability. Crashes may lose every op since the last
	// explicit sync, but never reorder or corrupt the prefix.
	SyncNone
)

// String names the policy as the command-line flags spell it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncBatch:
		return "batch"
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// WALOptions tune the writer.
type WALOptions struct {
	// BatchOps is the group-commit threshold: Append buffers records
	// and commits the batch once this many are pending. <=1 commits
	// every record immediately.
	BatchOps int
	// Sync is the fsync policy.
	Sync SyncPolicy
	// MaxRetries bounds the retry attempts for one commit when a write
	// fails and Transient classifies the error retryable.
	MaxRetries int
	// Backoff is the first retry's sleep; it doubles per attempt.
	// Zero defaults to 1ms.
	Backoff time.Duration
	// Transient classifies write/sync errors as retryable. Nil retries
	// nothing: every error is permanent.
	Transient func(error) bool
	// Sleep replaces time.Sleep in the backoff path (tests).
	Sleep func(time.Duration)
	// ChainEvery is the chain-point interval: a sealed hash-chain head
	// is embedded after every ChainEvery-th record. 0 uses
	// DefaultChainEvery; negative disables seals (legacy layout).
	ChainEvery int
}

// WAL is the write-ahead log writer. It is not safe for concurrent use;
// the queues it logs are single-threaded state machines.
type WAL struct {
	f    File
	opts WALOptions

	buf    []byte
	bufOps int

	lsn     uint64 // records appended (including buffered)
	durable uint64 // records written through the file (per the policy)
	err     error  // sticky: a failed commit poisons the log

	chain ChainState // running hash chain over appended records

	records     *obs.Counter
	bytes       *obs.Counter
	commits     *obs.Counter
	fsyncs      *obs.Counter
	retries     *obs.Counter
	chainPoints *obs.Counter
	poisoned    *obs.Gauge
	lastRetries *obs.Gauge
	// Latency quantiles: how long one group-commit write (and one
	// fsync) takes — the WAL's contribution to the request commit
	// stage — plus the ops-per-commit batch-size distribution the
	// group-commit threshold actually achieves.
	commitNs  *obs.QuantileHistogram
	fsyncNs   *obs.QuantileHistogram
	batchSize *obs.Histogram

	// Flight-recorder stall reporting (SetFlight).
	flight  *obs.FlightRecorder
	stallNs uint64

	commitRetries int // transient retries consumed by the current commit
}

// SetFlight records a FlightWALStall event whenever an fsync takes at
// least stall — the black-box view of storage hiccups that group
// commit latency quantiles only show in aggregate.
func (w *WAL) SetFlight(fr *obs.FlightRecorder, stall time.Duration) {
	w.flight = fr
	if stall > 0 {
		w.stallNs = uint64(stall)
	}
}

// NewWAL wraps an append-positioned file. startLSN is the number of
// records already in the file (recovery passes the replayed count). A
// writer opened at LSN 0 starts the hash chain at genesis; resuming a
// non-empty log without the chain state (legacy callers) disables seal
// emission — use NewWALChained to resume with the recovered chain.
func NewWAL(f File, startLSN uint64, opts WALOptions) *WAL {
	chain := NewChain()
	if startLSN != 0 {
		// Unknown chain position: appending seals would be wrong, so
		// the writer stays seal-silent for this incarnation.
		chain.LSN = startLSN
		opts.ChainEvery = -1
	}
	return NewWALChained(f, chain, opts)
}

// NewWALChained wraps an append-positioned file whose recovered chain
// state is known, so seal emission continues deterministically.
func NewWALChained(f File, chain ChainState, opts WALOptions) *WAL {
	if opts.BatchOps < 1 {
		opts.BatchOps = 1
	}
	if opts.Backoff <= 0 {
		opts.Backoff = time.Millisecond
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	if opts.ChainEvery == 0 {
		opts.ChainEvery = DefaultChainEvery
	}
	return &WAL{f: f, opts: opts, lsn: chain.LSN, durable: chain.LSN, chain: chain}
}

// Instrument registers the writer's counters in reg under prefix
// (nil-safe: a nil registry leaves every probe disabled).
func (w *WAL) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	w.records = reg.Counter(prefix + "_wal_records_total")
	w.bytes = reg.Counter(prefix + "_wal_bytes_total")
	w.commits = reg.Counter(prefix + "_wal_commits_total")
	w.fsyncs = reg.Counter(prefix + "_wal_fsyncs_total")
	w.retries = reg.Counter(prefix + "_wal_retry_total")
	w.chainPoints = reg.Counter(prefix + "_wal_chain_points_total")
	reg.Help(prefix+"_wal_poisoned", "1 while the log is sticky-poisoned by a permanent write/sync failure")
	w.poisoned = reg.Gauge(prefix + "_wal_poisoned")
	reg.Help(prefix+"_wal_last_sync_retries", "transient-error retries consumed by the most recent commit+sync")
	w.lastRetries = reg.Gauge(prefix + "_wal_last_sync_retries")
	reg.Help(prefix+"_wal_commit_ns", "group-commit write latency (write through the file, excluding fsync)")
	w.commitNs = reg.QuantileHistogram(prefix + "_wal_commit_ns")
	reg.Help(prefix+"_wal_fsync_ns", "fsync latency per policy-triggered sync")
	w.fsyncNs = reg.QuantileHistogram(prefix + "_wal_fsync_ns")
	reg.Help(prefix+"_wal_commit_ops", "records per group commit")
	w.batchSize = reg.Histogram(prefix+"_wal_commit_ops",
		[]uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
}

// LSN returns the log sequence number: total records appended,
// including any still buffered.
func (w *WAL) LSN() uint64 { return w.lsn }

// Chain returns the running hash chain over every appended record
// (including buffered ones) — the head a checkpoint manifest seals.
func (w *WAL) Chain() ChainState { return w.chain }

// Poisoned reports whether a permanent write/sync failure has latched:
// the log refuses further writes and the owning shard is not durable.
func (w *WAL) Poisoned() bool { return w.err != nil }

// Err returns the sticky error poisoning the log, or nil.
func (w *WAL) Err() error { return w.err }

// poison latches a permanent failure and flips the poisoned gauge.
func (w *WAL) poison(err error) error {
	w.err = err
	w.poisoned.Set(1)
	return err
}

// Durable returns the number of records pushed through the file —
// written, and synced when the policy syncs on commit.
func (w *WAL) Durable() uint64 { return w.durable }

// Append buffers one record and commits the batch when the group-commit
// threshold is reached (always, under SyncAlways).
func (w *WAL) Append(op Op) error {
	if w.err != nil {
		return w.err
	}
	w.buf = AppendRecord(w.buf, op)
	payload := w.buf[len(w.buf)-recPayloadLen:]
	w.chain = w.chain.Extend(crc32.Checksum(payload, castagnoli), payload)
	w.bufOps++
	w.lsn++
	w.records.Inc()
	if w.opts.ChainEvery > 0 && w.lsn%uint64(w.opts.ChainEvery) == 0 {
		w.buf = AppendChainPoint(w.buf, w.chain)
		w.chainPoints.Inc()
	}
	if w.bufOps >= w.opts.BatchOps || w.opts.Sync == SyncAlways {
		return w.Commit()
	}
	return nil
}

// Commit writes the buffered batch to the file (retrying transient
// errors with exponential backoff) and fsyncs per the policy. A
// permanent failure is sticky: the log refuses further writes, because
// a partially written batch may sit beyond the last known-good offset.
func (w *WAL) Commit() error {
	if w.err != nil {
		return w.err
	}
	if w.bufOps == 0 {
		return nil
	}
	var start time.Time
	if w.commitNs != nil {
		start = time.Now()
	}
	w.commitRetries = 0
	if err := w.writeRetry(w.buf); err != nil {
		return w.poison(fmt.Errorf("persist: WAL commit failed: %w", err))
	}
	if w.commitNs != nil {
		w.commitNs.Observe(uint64(time.Since(start)))
	}
	w.batchSize.Observe(uint64(w.bufOps))
	w.bytes.Add(uint64(len(w.buf)))
	w.commits.Inc()
	w.durable += uint64(w.bufOps)
	w.buf = w.buf[:0]
	w.bufOps = 0
	if w.opts.Sync != SyncNone {
		return w.Sync()
	}
	return nil
}

// Sync forces an fsync (with the same retry discipline as writes).
func (w *WAL) Sync() error {
	if w.err != nil {
		return w.err
	}
	var start time.Time
	if w.fsyncNs != nil || w.flight != nil {
		start = time.Now()
	}
	err := w.f.Sync()
	for attempt := 0; err != nil && w.opts.Transient != nil && w.opts.Transient(err) && attempt < w.opts.MaxRetries; attempt++ {
		w.retries.Inc()
		w.commitRetries++
		w.opts.Sleep(w.opts.Backoff << uint(attempt))
		err = w.f.Sync()
	}
	w.lastRetries.Set(float64(w.commitRetries))
	if err != nil {
		return w.poison(fmt.Errorf("persist: WAL fsync failed: %w", err))
	}
	if w.fsyncNs != nil || w.flight != nil {
		el := uint64(time.Since(start))
		w.fsyncNs.Observe(el)
		if w.flight != nil && w.stallNs > 0 && el >= w.stallNs {
			w.flight.Record(obs.FlightWALStall, 0, el, w.stallNs, w.durable)
		}
	}
	w.fsyncs.Inc()
	return nil
}

// writeRetry pushes p through the file, resuming after short writes and
// retrying transient errors with doubling backoff.
func (w *WAL) writeRetry(p []byte) error {
	attempt := 0
	for len(p) > 0 {
		n, err := w.f.Write(p)
		p = p[n:]
		if err == nil {
			if n == 0 && len(p) > 0 {
				return io.ErrShortWrite
			}
			attempt = 0
			continue
		}
		if w.opts.Transient == nil || !w.opts.Transient(err) || attempt >= w.opts.MaxRetries {
			return err
		}
		w.retries.Inc()
		w.commitRetries++
		w.opts.Sleep(w.opts.Backoff << uint(attempt))
		attempt++
	}
	return nil
}
