package persist

import (
	"strings"
	"testing"
)

func TestSnapshotEnvelopeRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5, 250, 251, 252}
	want := SnapshotHeader{Kind: "rbmw", Version: 3, Seq: 17, LSN: 12345678901}
	b, err := EncodeSnapshotFile(want, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, p, err := DecodeSnapshotFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("header %+v, want %+v", got, want)
	}
	if string(p) != string(payload) {
		t.Fatalf("payload %v, want %v", p, payload)
	}
}

func TestSnapshotEmptyPayload(t *testing.T) {
	b, err := EncodeSnapshotFile(SnapshotHeader{Kind: "core", Version: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, p, err := DecodeSnapshotFile(b)
	if err != nil || h.Kind != "core" || len(p) != 0 {
		t.Fatalf("h=%+v p=%v err=%v", h, p, err)
	}
}

// TestSnapshotDetectsEveryByteFlip flips every byte of a valid envelope
// in turn: each corruption must fail validation (the whole-file CRC32C
// covers everything before it; a flip inside the CRC itself mismatches
// the recomputed sum).
func TestSnapshotDetectsEveryByteFlip(t *testing.T) {
	b, err := EncodeSnapshotFile(SnapshotHeader{Kind: "pifo", Version: 2, Seq: 9, LSN: 99}, []byte("payload-bytes"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0x5a
		if _, _, err := DecodeSnapshotFile(mut); err == nil {
			t.Fatalf("byte %d flip not detected", i)
		}
	}
}

// TestSnapshotDetectsEveryTruncation cuts the envelope at every length:
// a torn snapshot (crash mid-write without rename protection) must
// never validate.
func TestSnapshotDetectsEveryTruncation(t *testing.T) {
	b, err := EncodeSnapshotFile(SnapshotHeader{Kind: "rpubmw", Version: 1, Seq: 3, LSN: 40}, []byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(b); cut++ {
		if _, _, err := DecodeSnapshotFile(b[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes not detected", cut, len(b))
		}
	}
}

func TestSnapshotKindValidation(t *testing.T) {
	if _, err := EncodeSnapshotFile(SnapshotHeader{Kind: ""}, nil); err == nil {
		t.Fatal("empty kind accepted")
	}
	if _, err := EncodeSnapshotFile(SnapshotHeader{Kind: strings.Repeat("x", 256)}, nil); err == nil {
		t.Fatal("oversized kind accepted")
	}
}

func TestSnapshotTrailingGarbageRejected(t *testing.T) {
	b, err := EncodeSnapshotFile(SnapshotHeader{Kind: "core", Version: 1}, []byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeSnapshotFile(append(b, 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}
