// Checkpoint manifest: one JSON document per persistence directory
// binding together everything a verifier needs to authenticate the
// directory's durable state — the WAL's sealed chain head, the current
// snapshot's Merkle root and leaf hashes, and the chunking parameters —
// under a self-checksum, so a single trusted 64-hex-digit value (the
// manifest checksum) transitively authenticates every byte on disk.
//
// The manifest is written last in the checkpoint sequence (WAL sync →
// snapshot publish → manifest), so a crash can only ever leave a
// manifest that is *stale*, never one that promises state that was not
// yet durable. Verification therefore treats the manifest as a sealed
// prefix claim: the chain head must match the recomputed chain at the
// manifest's record count, even if the log has since grown.

package persist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
)

// ManifestName is the per-directory manifest file name.
const ManifestName = "MANIFEST.json"

// ManifestSchema identifies the manifest document format.
const ManifestSchema = "bmw-persist-manifest/v1"

// Manifest is the on-disk checkpoint manifest document.
type Manifest struct {
	Schema string `json:"schema"`
	// Kind is the queue implementation that owns the directory.
	Kind string `json:"kind"`
	// WALRecords and ChainHead seal the log prefix this checkpoint
	// covers: ChainHead is the hex sha256 chain head after record
	// WALRecords. ChainEvery is the writer's chain-point interval,
	// which makes record byte offsets computable for splice repair.
	WALRecords uint64 `json:"wal_records"`
	ChainEvery int    `json:"chain_every"`
	ChainHead  string `json:"wal_chain_head"`
	// Snapshot identity plus its content authentication: the Merkle
	// root and per-chunk leaf hashes over the encoded snapshot file.
	SnapshotSeq     uint64   `json:"snapshot_seq"`
	SnapshotVersion uint32   `json:"snapshot_version"`
	SnapshotLSN     uint64   `json:"snapshot_lsn"`
	SnapshotBytes   int64    `json:"snapshot_bytes"`
	ChunkSize       int      `json:"chunk_size"`
	SnapshotRoot    string   `json:"snapshot_root"`
	SnapshotLeaves  []string `json:"snapshot_leaves"`
	// Checksum is the self-checksum: hex sha256 over the canonical JSON
	// of the manifest with Checksum itself empty.
	Checksum string `json:"checksum"`
}

// ErrManifest is the sentinel every manifest refusal wraps.
var ErrManifest = errors.New("persist: invalid checkpoint manifest")

// ManifestError names the exact field a manifest was refused on — the
// typed alternative to a decode panic or a bare "invalid manifest".
type ManifestError struct {
	Path   string
	Field  string
	Reason string
}

func (e *ManifestError) Error() string {
	return fmt.Sprintf("persist: manifest %s: field %q: %s", e.Path, e.Field, e.Reason)
}

// Unwrap lets errors.Is(err, ErrManifest) match.
func (e *ManifestError) Unwrap() error { return ErrManifest }

// ManifestChecksum computes the self-checksum over the canonical JSON
// with the Checksum field cleared.
func ManifestChecksum(m Manifest) (string, error) {
	m.Checksum = ""
	b, err := json.Marshal(m)
	if err != nil {
		return "", fmt.Errorf("persist: marshal manifest: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// hexHash decodes a hex sha256 field, reporting refusals by field name.
func hexHash(path, field, v string) ([sha256.Size]byte, error) {
	var out [sha256.Size]byte
	b, err := hex.DecodeString(v)
	if err != nil {
		return out, &ManifestError{Path: path, Field: field, Reason: "not hex: " + err.Error()}
	}
	if len(b) != sha256.Size {
		return out, &ManifestError{Path: path, Field: field, Reason: fmt.Sprintf("hash length %d, want %d", len(b), sha256.Size)}
	}
	copy(out[:], b)
	return out, nil
}

// validate structurally checks a decoded manifest, naming the first bad
// field. It does not touch the WAL or snapshot files.
func (m *Manifest) validate(path string) error {
	if m.Schema != ManifestSchema {
		return &ManifestError{Path: path, Field: "schema", Reason: fmt.Sprintf("%q, want %q", m.Schema, ManifestSchema)}
	}
	if m.Kind == "" {
		return &ManifestError{Path: path, Field: "kind", Reason: "empty"}
	}
	if m.ChainEvery <= 0 {
		return &ManifestError{Path: path, Field: "chain_every", Reason: fmt.Sprintf("%d, must be positive", m.ChainEvery)}
	}
	if _, err := hexHash(path, "wal_chain_head", m.ChainHead); err != nil {
		return err
	}
	if m.SnapshotSeq != 0 {
		if m.ChunkSize <= 0 {
			return &ManifestError{Path: path, Field: "chunk_size", Reason: fmt.Sprintf("%d, must be positive", m.ChunkSize)}
		}
		if m.SnapshotBytes < 0 {
			return &ManifestError{Path: path, Field: "snapshot_bytes", Reason: "negative"}
		}
		if m.SnapshotLSN > m.WALRecords {
			return &ManifestError{Path: path, Field: "snapshot_lsn",
				Reason: fmt.Sprintf("%d exceeds wal_records %d", m.SnapshotLSN, m.WALRecords)}
		}
		wantLeaves := int((m.SnapshotBytes + int64(m.ChunkSize) - 1) / int64(m.ChunkSize))
		if len(m.SnapshotLeaves) != wantLeaves {
			return &ManifestError{Path: path, Field: "snapshot_leaves",
				Reason: fmt.Sprintf("%d leaves for %d bytes in %d-byte chunks, want %d", len(m.SnapshotLeaves), m.SnapshotBytes, m.ChunkSize, wantLeaves)}
		}
		if _, err := hexHash(path, "snapshot_root", m.SnapshotRoot); err != nil {
			return err
		}
		leaves, err := m.Leaves()
		if err != nil {
			return err
		}
		root := MerkleRoot(leaves)
		if hex.EncodeToString(root[:]) != m.SnapshotRoot {
			return &ManifestError{Path: path, Field: "snapshot_root", Reason: "root does not match snapshot_leaves"}
		}
	}
	want, err := ManifestChecksum(*m)
	if err != nil {
		return &ManifestError{Path: path, Field: "checksum", Reason: err.Error()}
	}
	if m.Checksum != want {
		return &ManifestError{Path: path, Field: "checksum",
			Reason: fmt.Sprintf("%.12s, want %.12s", m.Checksum, want)}
	}
	return nil
}

// Leaves decodes the manifest's leaf hashes.
func (m *Manifest) Leaves() ([][sha256.Size]byte, error) {
	leaves := make([][sha256.Size]byte, 0, len(m.SnapshotLeaves))
	for i, s := range m.SnapshotLeaves {
		h, err := hexHash("", fmt.Sprintf("snapshot_leaves[%d]", i), s)
		if err != nil {
			return nil, err
		}
		leaves = append(leaves, h)
	}
	return leaves, nil
}

// Root decodes the manifest's snapshot Merkle root.
func (m *Manifest) Root() ([sha256.Size]byte, error) {
	return hexHash("", "snapshot_root", m.SnapshotRoot)
}

// Head decodes the manifest's sealed WAL chain head.
func (m *Manifest) Head() (ChainState, error) {
	h, err := hexHash("", "wal_chain_head", m.ChainHead)
	if err != nil {
		return ChainState{}, err
	}
	return ChainState{LSN: m.WALRecords, Head: h}, nil
}

// NewManifest builds a manifest for a just-written checkpoint and
// stamps its self-checksum. snapshot is the encoded snapshot file's
// full byte image.
func NewManifest(chain ChainState, chainEvery int, h SnapshotHeader, snapshot []byte, chunkSize int) (Manifest, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	leaves := MerkleLeaves(snapshot, chunkSize)
	root := MerkleRoot(leaves)
	m := Manifest{
		Schema:          ManifestSchema,
		Kind:            h.Kind,
		WALRecords:      chain.LSN,
		ChainEvery:      chainEvery,
		ChainHead:       hex.EncodeToString(chain.Head[:]),
		SnapshotSeq:     h.Seq,
		SnapshotVersion: h.Version,
		SnapshotLSN:     h.LSN,
		SnapshotBytes:   int64(len(snapshot)),
		ChunkSize:       chunkSize,
		SnapshotRoot:    hex.EncodeToString(root[:]),
		SnapshotLeaves:  make([]string, 0, len(leaves)),
	}
	for _, l := range leaves {
		m.SnapshotLeaves = append(m.SnapshotLeaves, hex.EncodeToString(l[:]))
	}
	sum, err := ManifestChecksum(m)
	if err != nil {
		return m, err
	}
	m.Checksum = sum
	return m, nil
}

// snapshotBadChunks compares a snapshot file's chunk hashes against a
// validated manifest's leaves, returning the indices that disagree —
// including indices present on only one side when the lengths differ.
// Empty means the file matches the manifest root bit-for-bit.
func snapshotBadChunks(man *Manifest, b []byte) []int {
	leaves, err := man.Leaves()
	if err != nil {
		// Unreachable for a validated manifest; treat as all-bad.
		return []int{0}
	}
	got := MerkleLeaves(b, man.ChunkSize)
	n := len(got)
	if len(leaves) > n {
		n = len(leaves)
	}
	var bad []int
	for i := 0; i < n; i++ {
		if i >= len(got) || i >= len(leaves) || got[i] != leaves[i] {
			bad = append(bad, i)
		}
	}
	return bad
}

// SnapshotBadChunks is the exported form the scrubber and anti-entropy
// repair use to localise snapshot damage.
func SnapshotBadChunks(man *Manifest, b []byte) []int { return snapshotBadChunks(man, b) }

// LoadManifest reads and fully validates dir's manifest. A missing file
// returns fs.ErrNotExist unwrapped (legacy directories have none); any
// other failure is a *ManifestError naming the offending field.
func LoadManifest(fsys FS, dir string) (*Manifest, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	path := join(dir, ManifestName)
	b, err := fsys.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
		return nil, &ManifestError{Path: path, Field: "(file)", Reason: err.Error()}
	}
	return DecodeManifest(path, b)
}

// DecodeManifest parses and validates manifest bytes. Torn or truncated
// JSON is a typed refusal, never a panic.
func DecodeManifest(path string, b []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, &ManifestError{Path: path, Field: "(json)", Reason: err.Error()}
	}
	if err := m.validate(path); err != nil {
		return nil, err
	}
	return &m, nil
}

// WriteManifest encodes m and writes it to dir, tmp+rename unless
// nonAtomic (the crash harness tears manifests through that mode).
func WriteManifest(fsys FS, dir string, m Manifest, nonAtomic bool) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("persist: marshal manifest: %w", err)
	}
	b = append(b, '\n')
	final := join(dir, ManifestName)
	name := final
	if !nonAtomic {
		name = final + ".tmp"
	}
	f, err := fsys.Create(name)
	if err != nil {
		return fmt.Errorf("persist: create manifest: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("persist: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: close manifest: %w", err)
	}
	if !nonAtomic {
		if err := fsys.Rename(name, final); err != nil {
			return fmt.Errorf("persist: publish manifest: %w", err)
		}
	}
	return nil
}
