// Package persist makes the exact priority queues of this module
// durable: a CRC32C-framed write-ahead log of push/pop operations
// (wal.go), versioned self-checksummed snapshots (snapshot.go), and a
// Manager that composes the two into checkpoint/recover (manager.go).
//
// The durability contract is the classic WAL discipline:
//
//   - every accepted operation is appended to the log before (or
//     together with) the commit policy's sync point;
//   - a checkpoint first makes the log durable, then writes a snapshot
//     stamped with the log sequence number (LSN) it covers;
//   - recovery loads the newest snapshot that validates (checksum,
//     version, shape, LSN within the log), replays the log suffix, and
//     runs the queue's own invariant checker before declaring it live.
//
// Torn tails — a partial final record left by a crash mid-write — are
// expected, not exceptional: the reader stops at the last valid record,
// the tail is truncated and counted, and recovery proceeds. A torn or
// corrupt *snapshot* fails its checksum and recovery falls back to the
// previous one.
//
// Replay determinism: the cycle simulators (rbmw, rpubmw) schedule
// internal pipeline waves off the clock cycle an operation is issued
// in, so each WAL record carries the commit cycle and the queues'
// Replay implementations nop-align to it. Replaying the identical ops
// at the identical cycles reproduces the identical registers — and
// therefore a pop order bit-identical to the uninterrupted run,
// metadata of tied ranks included.
//
// The package depends only on the standard library, internal/hw (the
// operation vocabulary) and internal/obs (nil-safe counters); the queue
// packages implement Checkpointable and import persist, never the
// reverse.
package persist

import (
	"errors"
	"fmt"

	"repro/internal/hw"
)

// Op is one logged queue operation. Cycle is the clock value at which
// the operation completed (the logical push+pop tick for the untimed
// models): replay uses it to reproduce the exact issue schedule. For a
// pop, Value and Meta record the element that left the queue, so replay
// can audit that the recovered machine pops the identical element.
type Op struct {
	Kind  hw.OpKind
	Cycle uint64
	Value uint64
	Meta  uint64
}

// ToHW converts the logged operation to the per-cycle external signal
// the simulators consume. For a pop the logged Value/Meta are the audit
// record, not an input, and are not carried.
func (o Op) ToHW() hw.Op {
	if o.Kind == hw.Push {
		return hw.Op{Kind: hw.Push, Value: o.Value, Meta: o.Meta}
	}
	return hw.Op{Kind: o.Kind}
}

// Checkpointable is the surface a queue exposes to the persistence
// layer. All four exact queues (core, pifo, rbmw, rpubmw) implement it.
type Checkpointable interface {
	// SnapshotKind names the implementation ("core", "pifo", "rbmw",
	// "rpubmw"); a snapshot restores only into the kind that wrote it.
	SnapshotKind() string
	// SnapshotVersion is the codec version EncodeSnapshot writes;
	// RestoreSnapshot rejects versions it does not understand.
	SnapshotVersion() uint32
	// EncodeSnapshot serialises the complete queue state — storage,
	// counters, in-flight pipeline state, protection bits — such that
	// RestoreSnapshot on a same-configured fresh instance reproduces
	// behaviour bit-for-bit.
	EncodeSnapshot() ([]byte, error)
	// RestoreSnapshot loads a payload written by EncodeSnapshot at the
	// given version into the receiver.
	RestoreSnapshot(version uint32, payload []byte) error
	// Replay applies one logged operation, reproducing the original
	// schedule (nop-aligning to op.Cycle where the clock matters) and
	// auditing pop results against the log.
	Replay(op Op) error
	// VerifyRecovered runs the queue's structural invariant checker
	// (treecheck for the trees); recovery refuses to declare a queue
	// live while it fails. Implementations may defer the check when
	// transient in-flight state makes invariants unevaluable.
	VerifyRecovered() error
}

// ErrTornRecord is the sentinel for a WAL tail that ends in a partial
// or corrupt record. Concrete cases are *TornRecordError values
// wrapping it. A torn tail is recoverable by construction: everything
// before it is intact.
var ErrTornRecord = errors.New("persist: torn or corrupt WAL record")

// TornRecordError locates and describes one torn/corrupt record.
type TornRecordError struct {
	// Offset is the byte offset of the bad record — equivalently, the
	// length of the valid prefix.
	Offset int64
	// Reason describes what failed (short header, bad length, short
	// payload, checksum mismatch, invalid op kind).
	Reason string
}

// Error formats the detection.
func (e *TornRecordError) Error() string {
	return fmt.Sprintf("persist: torn WAL record at offset %d: %s", e.Offset, e.Reason)
}

// Unwrap lets errors.Is(err, ErrTornRecord) match.
func (e *TornRecordError) Unwrap() error { return ErrTornRecord }
