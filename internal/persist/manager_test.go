package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/hw"
	"repro/internal/obs"
)

// toyQueue is a minimal Checkpointable: a FIFO of pushed values whose
// pops are audited against the log, with a running op count as clock.
type toyQueue struct {
	vals    []uint64
	applied uint64 // clock: total ops applied
	verify  error  // injected VerifyRecovered failure
}

func (q *toyQueue) SnapshotKind() string    { return "toy" }
func (q *toyQueue) SnapshotVersion() uint32 { return 1 }

func (q *toyQueue) EncodeSnapshot() ([]byte, error) {
	var e Enc
	e.U64(q.applied)
	e.U32(uint32(len(q.vals)))
	for _, v := range q.vals {
		e.U64(v)
	}
	return e.B, nil
}

func (q *toyQueue) RestoreSnapshot(version uint32, payload []byte) error {
	if version != 1 {
		return fmt.Errorf("toy: bad version %d", version)
	}
	d := NewDec(payload)
	applied := d.U64()
	n := d.Len(1 << 20)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = d.U64()
	}
	if err := d.Done(); err != nil {
		return err
	}
	q.applied, q.vals = applied, vals
	return nil
}

func (q *toyQueue) Replay(op Op) error {
	switch op.Kind {
	case hw.Push:
		q.vals = append(q.vals, op.Value)
	case hw.Pop:
		if len(q.vals) == 0 {
			return errors.New("toy: replay pop on empty queue")
		}
		if q.vals[0] != op.Value {
			return fmt.Errorf("toy: replay divergence: have %d, log says %d", q.vals[0], op.Value)
		}
		q.vals = q.vals[1:]
	default:
		return fmt.Errorf("toy: bad op kind %v", op.Kind)
	}
	q.applied++
	return nil
}

func (q *toyQueue) VerifyRecovered() error { return q.verify }

// push/pop drive a live toy queue, mirroring how the real harnesses
// pair queue mutation with Record.
func (q *toyQueue) push(m *Manager, v uint64) error {
	q.vals = append(q.vals, v)
	q.applied++
	return m.Record(Op{Kind: hw.Push, Cycle: q.applied, Value: v})
}

func (q *toyQueue) pop(m *Manager) error {
	v := q.vals[0]
	q.vals = q.vals[1:]
	q.applied++
	return m.Record(Op{Kind: hw.Pop, Cycle: q.applied, Value: v})
}

func TestManagerFreshDirIsEmpty(t *testing.T) {
	dir := t.TempDir()
	q := &toyQueue{}
	m, rep, err := Open(dir, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if rep.WALRecords != 0 || rep.SnapshotSeq != 0 || rep.TornTail {
		t.Fatalf("fresh dir report %+v", rep)
	}
}

func TestManagerReplayFromGenesis(t *testing.T) {
	dir := t.TempDir()
	q := &toyQueue{}
	m, _, err := Open(dir, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := q.push(m, uint64(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.pop(m); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	q2 := &toyQueue{}
	m2, rep, err := Open(dir, q2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if rep.SnapshotSeq != 0 || rep.ReplayedOps != 6 {
		t.Fatalf("report %+v, want genesis replay of 6 ops", rep)
	}
	if len(q2.vals) != 4 || q2.vals[0] != 10 || q2.applied != 6 {
		t.Fatalf("recovered state %+v", q2)
	}
}

func TestManagerCheckpointPlusSuffix(t *testing.T) {
	dir := t.TempDir()
	q := &toyQueue{}
	m, _, err := Open(dir, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := q.push(m, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Suffix past the checkpoint.
	if err := q.push(m, 99); err != nil {
		t.Fatal(err)
	}
	if err := q.pop(m); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	q2 := &toyQueue{}
	m2, rep, err := Open(dir, q2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if rep.SnapshotSeq != 1 || rep.SnapshotLSN != 4 || rep.ReplayedOps != 2 {
		t.Fatalf("report %+v, want snapshot at LSN 4 plus 2 replayed", rep)
	}
	if len(q2.vals) != 4 || q2.vals[3] != 99 || q2.applied != 6 {
		t.Fatalf("recovered state %+v", q2)
	}
}

func TestManagerSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	q := &toyQueue{}
	reg := obs.NewRegistry()
	m, _, err := Open(dir, q, Options{Retain: -1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.push(m, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := q.push(m, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest snapshot: recovery must fall back to snapshot
	// 1 and replay the suffix past it.
	path := filepath.Join(dir, snapName(2))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	q2 := &toyQueue{}
	m2, rep, err := Open(dir, q2, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if rep.SnapshotSeq != 1 || rep.SnapshotsSkipped != 1 || rep.ReplayedOps != 1 {
		t.Fatalf("report %+v, want fallback to seq 1 with 1 skip", rep)
	}
	if len(q2.vals) != 2 || q2.vals[1] != 2 {
		t.Fatalf("recovered state %+v", q2)
	}
	if got := reg.Snapshot().Counters["persist_snapshots_skipped_total"]; got != 1 {
		t.Fatalf("skip counter %d, want 1", got)
	}
}

func TestManagerTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	q := &toyQueue{}
	m, _, err := Open(dir, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := q.push(m, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// A crash mid-record: append half a record of garbage.
	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(make([]byte, RecordLen/2))
	f.Close()

	reg := obs.NewRegistry()
	q2 := &toyQueue{}
	m2, rep, err := Open(dir, q2, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TornTail || rep.TornBytes != int64(RecordLen/2) || rep.WALRecords != 3 {
		t.Fatalf("report %+v, want torn tail of %d bytes over 3 records", rep, RecordLen/2)
	}
	snap := reg.Snapshot()
	if snap.Counters["persist_torn_tails_total"] != 1 || snap.Counters["persist_torn_bytes_total"] != uint64(RecordLen/2) {
		t.Fatalf("torn counters %v", snap.Counters)
	}
	// The truncated log must be clean: append and re-recover.
	if err := q2.push(m2, 7); err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	q3 := &toyQueue{}
	m3, rep3, err := Open(dir, q3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if rep3.TornTail || rep3.WALRecords != 4 || len(q3.vals) != 4 {
		t.Fatalf("re-recovery report %+v state %+v", rep3, q3)
	}
}

func TestManagerRetention(t *testing.T) {
	dir := t.TempDir()
	q := &toyQueue{}
	m, _, err := Open(dir, q, Options{}) // default Retain 2
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := q.push(m, uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := m.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := OSFS{}.ReadDirNames(dir)
	snaps := 0
	for _, n := range names {
		if _, ok := parseSnapName(n); ok {
			snaps++
		}
	}
	if snaps != 2 {
		t.Fatalf("%d snapshots retained, want 2 (dir: %v)", snaps, names)
	}
	// The newest must carry seq 4.
	q2 := &toyQueue{}
	m2, rep, err := Open(dir, q2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if rep.SnapshotSeq != 4 {
		t.Fatalf("recovered from seq %d, want 4", rep.SnapshotSeq)
	}
}

func TestManagerLSNAheadOfWALRejected(t *testing.T) {
	// A snapshot claiming to cover more records than the log holds must
	// be skipped (it postdates the durable log — e.g. the log was torn
	// back past it).
	dir := t.TempDir()
	q := &toyQueue{}
	m, _, err := Open(dir, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := q.push(m, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the whole WAL away: snapshot LSN 3 > 0 records.
	if err := os.Truncate(filepath.Join(dir, walName), 0); err != nil {
		t.Fatal(err)
	}

	// With the checkpoint manifest still present, the missing records
	// contradict its sealed chain head: recovery must refuse with a
	// localising integrity error, not silently restart from genesis.
	if _, _, err := Open(dir, &toyQueue{}, Options{}); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("recovery error %v, want ErrIntegrity (manifest seals 3 records)", err)
	}

	// A legacy directory (no manifest) has nothing sealing the log
	// length; the over-claiming snapshot is simply skipped.
	if err := os.Remove(filepath.Join(dir, ManifestName)); err != nil {
		t.Fatal(err)
	}
	q2 := &toyQueue{}
	m2, rep, err := Open(dir, q2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if rep.SnapshotSeq != 0 || rep.SnapshotsSkipped != 1 || len(q2.vals) != 0 {
		t.Fatalf("report %+v state %+v, want snapshot skipped", rep, q2)
	}
}

func TestManagerVerifyFailureRefusesRecovery(t *testing.T) {
	dir := t.TempDir()
	q := &toyQueue{}
	m, _, err := Open(dir, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.push(m, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	bad := errors.New("invariants broken")
	if _, _, err := Open(dir, &toyQueue{verify: bad}, Options{}); !errors.Is(err, bad) {
		t.Fatalf("recovery error %v, want verification failure", err)
	}
}

func TestManagerAttachSupersedesHistory(t *testing.T) {
	dir := t.TempDir()
	q := &toyQueue{}
	m, _, err := Open(dir, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := q.push(m, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// A live queue with different state one-shot-checkpoints into the
	// same directory; its snapshot must supersede the 3 old WAL records.
	live := &toyQueue{vals: []uint64{7, 8}, applied: 10}
	am, err := Attach(dir, live, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := am.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := am.Close(); err != nil {
		t.Fatal(err)
	}

	q2 := &toyQueue{}
	m2, rep, err := Open(dir, q2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if rep.SnapshotLSN != 3 || rep.ReplayedOps != 0 {
		t.Fatalf("report %+v, want snapshot at LSN 3 with empty suffix", rep)
	}
	if len(q2.vals) != 2 || q2.vals[0] != 7 || q2.applied != 10 {
		t.Fatalf("recovered state %+v, want the live queue's", q2)
	}
}

// TestManagerCrashDiskPrefix drives a workload over a CrashDisk with a
// tight byte budget, then recovers with the real filesystem: the
// recovered operation log must be a prefix of what was issued, and the
// recovered state must replay cleanly.
func TestManagerCrashDiskPrefix(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		dir := t.TempDir()
		disk := NewCrashDisk(200+37*seed, seed)
		q := &toyQueue{}
		m, _, err := Open(dir, q, Options{FS: disk, WAL: WALOptions{BatchOps: 3}})
		if err != nil {
			t.Fatal(err)
		}
		var issued []uint64
		for i := 0; i < 100; i++ {
			v := uint64(i)
			if err := q.push(m, v); err != nil {
				if !errors.Is(err, ErrKilled) {
					t.Fatalf("seed %d: non-crash error %v", seed, err)
				}
				break
			}
			issued = append(issued, v)
			if i%10 == 9 {
				if err := m.Checkpoint(); err != nil {
					if !errors.Is(err, ErrKilled) {
						t.Fatalf("seed %d: checkpoint error %v", seed, err)
					}
					break
				}
			}
		}
		if !disk.Killed() {
			t.Fatalf("seed %d: budget never exhausted (wrote %d bytes)", seed, disk.BytesWritten())
		}

		q2 := &toyQueue{}
		m2, rep, err := Open(dir, q2, Options{})
		if err != nil {
			t.Fatalf("seed %d: recovery failed: %v", seed, err)
		}
		m2.Close()
		if len(rep.Ops) > len(issued) {
			t.Fatalf("seed %d: recovered %d ops, only %d issued", seed, len(rep.Ops), len(issued))
		}
		for i, op := range rep.Ops {
			if op.Value != issued[i] {
				t.Fatalf("seed %d: recovered op %d value %d, issued %d", seed, i, op.Value, issued[i])
			}
		}
		if len(q2.vals) != len(rep.Ops) {
			t.Fatalf("seed %d: state %d vals for %d ops", seed, len(q2.vals), len(rep.Ops))
		}
	}
}

// TestManagerCrashDiskNonAtomicSnapshot forces the torn-snapshot path:
// with NonAtomicSnapshots a crash mid-snapshot leaves a corrupt .snap
// under its final name, which recovery must skip.
func TestManagerCrashDiskNonAtomicSnapshot(t *testing.T) {
	recoveredWithSkip := false
	for seed := int64(0); seed < 20 && !recoveredWithSkip; seed++ {
		dir := t.TempDir()
		disk := NewCrashDisk(150+11*seed, seed)
		q := &toyQueue{}
		m, _, err := Open(dir, q, Options{FS: disk, NonAtomicSnapshots: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if err := q.push(m, uint64(i)); err != nil {
				break
			}
			if i%5 == 4 {
				if err := m.Checkpoint(); err != nil {
					break
				}
			}
		}
		q2 := &toyQueue{}
		m2, rep, err := Open(dir, q2, Options{})
		if err != nil {
			t.Fatalf("seed %d: recovery failed: %v", seed, err)
		}
		m2.Close()
		if rep.SnapshotsSkipped > 0 {
			recoveredWithSkip = true
		}
	}
	if !recoveredWithSkip {
		t.Fatal("no trial produced a torn snapshot to skip; widen the budget sweep")
	}
}
