// Background integrity scrub: walk persistence directories verifying
// manifests, WAL hash chains and snapshot Merkle roots, io-throttled so
// a multi-gigabyte checkpoint fan-out never competes with the serving
// path, and resumable — the cursor survives between steps so a stopped
// scrub continues where it left off instead of re-reading from zero.
//
// VerifyDir is the underlying one-directory audit; recovery, the
// scrubber, anti-entropy repair and the bmwrot harness all classify
// corruption through it, so a detection always carries the same class
// vocabulary (chain.go's Class* constants) wherever it surfaces.

package persist

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"
	"time"

	"repro/internal/obs"
)

// Finding is one localised integrity fault in a directory.
type Finding struct {
	Path    string `json:"path"`
	Class   string `json:"class"`
	Detail  string `json:"detail"`
	FromLSN uint64 `json:"from_lsn,omitempty"`
	ToLSN   uint64 `json:"to_lsn,omitempty"`
	Seq     uint64 `json:"seq,omitempty"`
	Chunks  []int  `json:"chunks,omitempty"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s", f.Class, f.Path)
	if f.ToLSN > 0 {
		s += fmt.Sprintf(" LSNs %d-%d", f.FromLSN, f.ToLSN)
	}
	if len(f.Chunks) > 0 {
		s += fmt.Sprintf(" chunks %v", f.Chunks)
	}
	if f.Detail != "" {
		s += " (" + f.Detail + ")"
	}
	return s
}

// DirReport is the outcome of one directory audit.
type DirReport struct {
	Dir      string
	Manifest *Manifest        // nil when absent or invalid
	WAL      *WALVerifyReport // nil when the log was unreadable
	Findings []Finding
	Files    int
	Bytes    int64
}

// Clean reports no integrity faults (a torn WAL tail alone is clean:
// that is crash damage, handled by recovery, not rot).
func (r *DirReport) Clean() bool { return len(r.Findings) == 0 }

// VerifyDir audits one persistence directory: manifest self-checksum
// and field validity, WAL framing + hash chain against the manifest's
// sealed head, and every snapshot's envelope (plus Merkle root and
// chunk localisation for the manifest-covered snapshot). It only
// reads; nothing is truncated or repaired.
func VerifyDir(fsys FS, dir string) *DirReport {
	if fsys == nil {
		fsys = OSFS{}
	}
	r := &DirReport{Dir: dir}

	var expect *ChainState
	man, manErr := LoadManifest(fsys, dir)
	switch {
	case manErr == nil:
		r.Manifest = man
		r.Files++
		if h, err := man.Head(); err == nil {
			expect = &h
		}
	case errors.Is(manErr, fs.ErrNotExist):
		// Legacy directory: nothing seals it; verify what self-verifies.
	default:
		r.Files++
		r.Findings = append(r.Findings, Finding{
			Path: join(dir, ManifestName), Class: ClassManifest, Detail: manErr.Error(),
		})
	}

	walPath := join(dir, walName)
	b, err := fsys.ReadFile(walPath)
	switch {
	case err == nil:
		r.Files++
		r.Bytes += int64(len(b))
		rep := VerifyWALImage(b, expect)
		r.WAL = rep
		for _, bad := range rep.Bad {
			r.Findings = append(r.Findings, Finding{
				Path: walPath, Class: bad.Class, Detail: bad.Detail,
				FromLSN: bad.FromLSN, ToLSN: bad.ToLSN,
			})
		}
	case errors.Is(err, fs.ErrNotExist):
		if expect != nil && expect.LSN > 0 {
			r.Findings = append(r.Findings, Finding{
				Path: walPath, Class: ClassWALTruncated,
				Detail:  "log missing",
				FromLSN: 1, ToLSN: expect.LSN,
			})
		}
	default:
		r.Findings = append(r.Findings, Finding{
			Path: walPath, Class: ClassWALRecord, Detail: "read: " + err.Error(),
		})
	}

	names, _ := fsys.ReadDirNames(dir)
	manifestSeqSeen := false
	for _, name := range names {
		seq, ok := parseSnapName(name)
		if !ok {
			continue
		}
		path := join(dir, name)
		sb, err := fsys.ReadFile(path)
		if err != nil {
			r.Findings = append(r.Findings, Finding{
				Path: path, Class: ClassSnapshotChunk, Seq: seq, Detail: "read: " + err.Error(),
			})
			continue
		}
		r.Files++
		r.Bytes += int64(len(sb))
		if man != nil && seq == man.SnapshotSeq {
			manifestSeqSeen = true
			if bad := snapshotBadChunks(man, sb); len(bad) > 0 {
				r.Findings = append(r.Findings, Finding{
					Path: path, Class: ClassSnapshotChunk, Seq: seq, Chunks: bad,
					Detail: fmt.Sprintf("%d of %d chunks fail the manifest leaves", len(bad), len(man.SnapshotLeaves)),
				})
			}
			continue // root match authenticates the file bit-for-bit
		}
		if _, _, err := DecodeSnapshotFile(sb); err != nil {
			r.Findings = append(r.Findings, Finding{
				Path: path, Class: ClassSnapshotChunk, Seq: seq, Detail: err.Error(),
			})
		}
	}
	if man != nil && man.SnapshotSeq != 0 && !manifestSeqSeen {
		r.Findings = append(r.Findings, Finding{
			Path: join(dir, snapName(man.SnapshotSeq)), Class: ClassSnapshotChunk,
			Seq: man.SnapshotSeq, Detail: "manifest-covered snapshot missing",
		})
	}
	return r
}

// ScrubConfig tunes a Scrubber.
type ScrubConfig struct {
	// FS is the filesystem seam; nil uses the os package.
	FS FS
	// Dirs are the persistence directories to walk, in cursor order
	// (for an engine checkpoint: every shard directory).
	Dirs []string
	// RateBytes caps verification throughput in bytes/second by
	// sleeping after each directory. 0 disables the throttle.
	RateBytes int64
	// Metrics receives the persist_scrub_* instruments under Prefix
	// (default "persist").
	Metrics *obs.Registry
	Prefix  string
	// Flight receives one FlightIntegrity event per finding.
	Flight *obs.FlightRecorder
	// OnCorruption fires once per scrubber lifetime, on the first dirty
	// directory — the incident-capture trigger.
	OnCorruption func(dir string, findings []Finding)
	// Sleep replaces time.Sleep for the throttle (tests).
	Sleep func(time.Duration)
}

// Scrubber is a resumable, throttled integrity walker. Step verifies
// one directory and advances the cursor; a full cycle of Steps is one
// pass. Safe for use from a single background goroutine; the cursor
// and counters tolerate concurrent readers.
type Scrubber struct {
	cfg ScrubConfig

	mu     sync.Mutex
	cursor int
	fired  bool

	passes      *obs.Counter
	dirs        *obs.Counter
	bytes       *obs.Counter
	corruptions *obs.Counter
	chainPoints *obs.Counter
	progress    *obs.Gauge
}

// NewScrubber builds a scrubber over cfg.Dirs.
func NewScrubber(cfg ScrubConfig) *Scrubber {
	if cfg.FS == nil {
		cfg.FS = OSFS{}
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "persist"
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	s := &Scrubber{cfg: cfg}
	if reg := cfg.Metrics; reg != nil {
		p := cfg.Prefix
		s.passes = reg.Counter(p + "_scrub_passes_total")
		s.dirs = reg.Counter(p + "_scrub_dirs_total")
		s.bytes = reg.Counter(p + "_scrub_bytes_total")
		s.corruptions = reg.Counter(p + "_scrub_corruptions_total")
		s.chainPoints = reg.Counter(p + "_scrub_chain_points_total")
		reg.Help(p+"_scrub_progress", "fraction of the current scrub pass completed")
		s.progress = reg.Gauge(p + "_scrub_progress")
	}
	return s
}

// Cursor returns the index of the next directory to verify.
func (s *Scrubber) Cursor() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cursor
}

// Step verifies the directory under the cursor and advances it,
// wrapping (and counting a completed pass) at the end of the list.
// Returns nil when there is nothing to scrub.
func (s *Scrubber) Step() *DirReport {
	s.mu.Lock()
	if len(s.cfg.Dirs) == 0 {
		s.mu.Unlock()
		return nil
	}
	i := s.cursor
	dir := s.cfg.Dirs[i]
	s.mu.Unlock()

	r := VerifyDir(s.cfg.FS, dir)
	s.dirs.Inc()
	s.bytes.Add(uint64(r.Bytes))
	if r.WAL != nil {
		s.chainPoints.Add(uint64(r.WAL.ChainPoints))
	}
	if !r.Clean() {
		s.corruptions.Add(uint64(len(r.Findings)))
		if s.cfg.Flight != nil {
			for _, f := range r.Findings {
				s.cfg.Flight.RecordMsg(obs.FlightIntegrity, 0, f.String(), f.FromLSN, f.ToLSN, f.Seq)
			}
		}
		s.mu.Lock()
		fire := !s.fired && s.cfg.OnCorruption != nil
		s.fired = true
		s.mu.Unlock()
		if fire {
			s.cfg.OnCorruption(dir, r.Findings)
		}
	}

	s.mu.Lock()
	s.cursor = (i + 1) % len(s.cfg.Dirs)
	if s.cursor == 0 {
		s.passes.Inc()
	}
	s.progress.Set(float64(s.cursor) / float64(len(s.cfg.Dirs)))
	s.mu.Unlock()

	if s.cfg.RateBytes > 0 && r.Bytes > 0 {
		s.cfg.Sleep(time.Duration(float64(r.Bytes) / float64(s.cfg.RateBytes) * float64(time.Second)))
	}
	return r
}

// Pass runs one full pass from the current cursor position and returns
// every directory's report.
func (s *Scrubber) Pass() []*DirReport {
	n := len(s.cfg.Dirs)
	reports := make([]*DirReport, 0, n)
	for i := 0; i < n; i++ {
		if r := s.Step(); r != nil {
			reports = append(reports, r)
		}
	}
	return reports
}
