// Filesystem seam: the Manager writes through an FS so the crash
// harness can interpose a byte-budget kill simulator (crashfile.go)
// while production paths use the real os package.

package persist

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the writable-file surface the WAL and snapshot writers need.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the handful of filesystem operations the Manager
// performs. OSFS is the real implementation; CrashDisk wraps it with a
// byte budget and torn-write semantics.
type FS interface {
	MkdirAll(dir string) error
	// OpenAppend opens (creating if needed) a file for appending.
	OpenAppend(name string) (File, error)
	// Create truncates/creates a file for writing.
	Create(name string) (File, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	// ReadDirNames lists the file names (not paths) in dir, sorted.
	ReadDirNames(dir string) ([]string, error)
	Truncate(name string, size int64) error
}

// OSFS is the pass-through FS over the os package.
type OSFS struct{}

// MkdirAll creates dir and parents.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// OpenAppend opens name for appending, creating it if absent.
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Create creates/truncates name for writing.
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

// Rename renames a file.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove deletes a file.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// ReadFile reads a whole file.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDirNames lists dir's entries, sorted by name.
func (OSFS) ReadDirNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Truncate truncates name to size bytes.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// join is filepath.Join, aliased so manager.go reads cleanly.
func join(dir, name string) string { return filepath.Join(dir, name) }
