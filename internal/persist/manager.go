// Manager: one directory holding a queue's WAL ("wal.log") and its
// snapshots ("snap-<seq>.snap"), with the recovery state machine
//
//	scan WAL -> truncate torn tail -> pick newest valid snapshot
//	  -> restore -> replay WAL suffix -> verify invariants -> live
//
// and the checkpoint discipline
//
//	commit+sync WAL -> encode snapshot -> write (tmp+rename when
//	  atomic) -> retire old snapshots.

package persist

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

const walName = "wal.log"

// snapName formats a snapshot file name; seq is zero-padded so the
// lexical directory order matches the numeric order.
func snapName(seq uint64) string { return fmt.Sprintf("snap-%016d.snap", seq) }

// parseSnapName extracts the sequence number of a snapshot file name.
func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
	if len(digits) == 0 {
		return 0, false
	}
	var seq uint64
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

// Options configure a Manager.
type Options struct {
	// WAL tunes the log writer (group commit, fsync policy, retries).
	WAL WALOptions
	// NonAtomicSnapshots writes snapshots directly to their final name
	// instead of tmp+rename. A crash mid-write then leaves a torn
	// .snap file — which the checksum rejects at recovery. The mode
	// exists so the crash harness can exercise exactly that path.
	NonAtomicSnapshots bool
	// Retain is how many snapshots to keep (older ones are removed
	// after a successful checkpoint). 0 means the default of 2; a
	// negative value keeps everything.
	Retain int
	// FS is the filesystem seam; nil uses the real os package.
	FS FS
	// Metrics, when non-nil, receives the persist counters under
	// MetricsPrefix (default "persist") — including the counts accrued
	// during recovery itself.
	Metrics       *obs.Registry
	MetricsPrefix string
	// Flight, when non-nil, receives a FlightWALStall event for every
	// fsync that takes FlightStall or longer (default 50ms).
	Flight      *obs.FlightRecorder
	FlightStall time.Duration
}

// RecoveryReport describes what recovery found and did.
type RecoveryReport struct {
	// SnapshotSeq and SnapshotLSN identify the restored snapshot
	// (Seq 0: no snapshot, the queue replayed from genesis).
	SnapshotSeq uint64
	SnapshotLSN uint64
	// SnapshotsSkipped counts snapshot files rejected by checksum,
	// version, kind, shape or LSN validation before one restored.
	SnapshotsSkipped int
	// WALRecords is the count of intact log records; ReplayedOps how
	// many of them (the suffix past SnapshotLSN) were replayed.
	WALRecords  int
	ReplayedOps int
	// TornTail reports a partial/corrupt final record was truncated,
	// and TornBytes how many bytes were cut.
	TornTail  bool
	TornBytes int64
	// Ops is the full durable operation log, for differential
	// validation by the crash harness.
	Ops []Op
}

// Manager couples one queue to one persistence directory.
type Manager struct {
	dir  string
	q    Checkpointable
	fsys FS
	opts Options

	wal     *WAL
	walFile File

	nextSeq uint64
	snaps   []uint64 // live snapshot seqs, ascending

	snapshots        *obs.Counter
	snapshotBytes    *obs.Counter
	snapshotsSkipped *obs.Counter
	tornTails        *obs.Counter
	tornBytes        *obs.Counter
	recoveries       *obs.Counter
	replayed         *obs.Counter
}

// Open recovers the queue from dir (creating it on first use) and
// returns a Manager appending to its WAL. The queue must be a freshly
// constructed instance with the same configuration (shape, protection
// mode) as the one that wrote the directory; on a fresh directory it is
// simply left empty and the report is all zeroes.
func Open(dir string, q Checkpointable, opts Options) (*Manager, *RecoveryReport, error) {
	m, err := newManager(dir, q, opts)
	if err != nil {
		return nil, nil, err
	}
	rep, err := m.recover()
	if err != nil {
		return nil, nil, err
	}
	if err := m.attach(uint64(len(rep.Ops))); err != nil {
		return nil, nil, err
	}
	return m, rep, nil
}

// Attach opens dir for writing without restoring anything into q: the
// one-shot checkpoint path for a live queue. Any existing WAL is
// scanned (and its torn tail truncated) only to position the LSN, so a
// subsequent checkpoint supersedes the directory's history.
func Attach(dir string, q Checkpointable, opts Options) (*Manager, error) {
	m, err := newManager(dir, q, opts)
	if err != nil {
		return nil, err
	}
	ops, _, err := m.scanWAL()
	if err != nil {
		return nil, err
	}
	m.scanSnaps()
	if err := m.attach(uint64(len(ops))); err != nil {
		return nil, err
	}
	return m, nil
}

// newManager validates options and prepares the directory.
func newManager(dir string, q Checkpointable, opts Options) (*Manager, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.Retain == 0 {
		opts.Retain = 2
	}
	if opts.MetricsPrefix == "" {
		opts.MetricsPrefix = "persist"
	}
	m := &Manager{dir: dir, q: q, fsys: opts.FS, opts: opts}
	if reg := opts.Metrics; reg != nil {
		p := opts.MetricsPrefix
		m.snapshots = reg.Counter(p + "_snapshots_total")
		m.snapshotBytes = reg.Counter(p + "_snapshot_bytes_total")
		m.snapshotsSkipped = reg.Counter(p + "_snapshots_skipped_total")
		m.tornTails = reg.Counter(p + "_torn_tails_total")
		m.tornBytes = reg.Counter(p + "_torn_bytes_total")
		m.recoveries = reg.Counter(p + "_recoveries_total")
		m.replayed = reg.Counter(p + "_replayed_ops_total")
	}
	if err := m.fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("persist: create %s: %w", dir, err)
	}
	return m, nil
}

// scanWAL reads the log, truncating a torn tail in place.
func (m *Manager) scanWAL() (ops []Op, torn int64, err error) {
	path := join(m.dir, walName)
	b, err := m.fsys.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("persist: read WAL: %w", err)
	}
	ops, valid, rerr := ReadAll(b)
	if rerr != nil {
		torn = int64(len(b)) - valid
		if err := m.fsys.Truncate(path, valid); err != nil {
			return nil, 0, fmt.Errorf("persist: truncate torn WAL tail: %w", err)
		}
		m.tornTails.Inc()
		m.tornBytes.Add(uint64(torn))
	}
	return ops, torn, nil
}

// scanSnaps records the snapshot seqs present in the directory and
// positions nextSeq past the largest (counting even invalid files, so
// a reused directory never collides names).
func (m *Manager) scanSnaps() {
	m.snaps = nil
	names, err := m.fsys.ReadDirNames(m.dir)
	if err != nil {
		m.nextSeq = 1
		return
	}
	var max uint64
	for _, name := range names {
		if seq, ok := parseSnapName(name); ok {
			m.snaps = append(m.snaps, seq)
			if seq > max {
				max = seq
			}
		}
	}
	sort.Slice(m.snaps, func(i, j int) bool { return m.snaps[i] < m.snaps[j] })
	m.nextSeq = max + 1
}

// recover runs the recovery state machine against m.q.
func (m *Manager) recover() (*RecoveryReport, error) {
	rep := &RecoveryReport{}
	ops, torn, err := m.scanWAL()
	if err != nil {
		return nil, err
	}
	rep.Ops = ops
	rep.WALRecords = len(ops)
	rep.TornTail = torn > 0
	rep.TornBytes = torn

	// Newest valid snapshot wins; anything that fails checksum, kind,
	// version, LSN plausibility or the queue's own decoder is skipped.
	m.scanSnaps()
	for i := len(m.snaps) - 1; i >= 0 && rep.SnapshotSeq == 0; i-- {
		seq := m.snaps[i]
		b, err := m.fsys.ReadFile(join(m.dir, snapName(seq)))
		if err != nil {
			rep.SnapshotsSkipped++
			continue
		}
		h, payload, err := DecodeSnapshotFile(b)
		if err != nil || h.Kind != m.q.SnapshotKind() || h.LSN > uint64(len(ops)) {
			rep.SnapshotsSkipped++
			continue
		}
		if err := m.q.RestoreSnapshot(h.Version, payload); err != nil {
			rep.SnapshotsSkipped++
			continue
		}
		rep.SnapshotSeq = h.Seq
		rep.SnapshotLSN = h.LSN
	}
	m.snapshotsSkipped.Add(uint64(rep.SnapshotsSkipped))

	// Replay the suffix the snapshot does not cover.
	for _, op := range ops[rep.SnapshotLSN:] {
		if err := m.q.Replay(op); err != nil {
			return nil, fmt.Errorf("persist: WAL replay failed at op %d: %w", rep.SnapshotLSN+uint64(rep.ReplayedOps), err)
		}
		rep.ReplayedOps++
	}
	m.replayed.Add(uint64(rep.ReplayedOps))

	// The queue goes live only with its invariants intact.
	if err := m.q.VerifyRecovered(); err != nil {
		return nil, fmt.Errorf("persist: recovered queue failed verification: %w", err)
	}
	m.recoveries.Inc()
	return rep, nil
}

// attach opens the WAL for appending at the given LSN.
func (m *Manager) attach(lsn uint64) error {
	f, err := m.fsys.OpenAppend(join(m.dir, walName))
	if err != nil {
		return fmt.Errorf("persist: open WAL: %w", err)
	}
	m.walFile = f
	m.wal = NewWAL(f, lsn, m.opts.WAL)
	m.wal.Instrument(m.opts.Metrics, m.opts.MetricsPrefix)
	if m.opts.Flight != nil {
		stall := m.opts.FlightStall
		if stall <= 0 {
			stall = 50 * time.Millisecond
		}
		m.wal.SetFlight(m.opts.Flight, stall)
	}
	return nil
}

// WAL exposes the log writer (LSN/Durable introspection).
func (m *Manager) WAL() *WAL { return m.wal }

// Dir returns the persistence directory.
func (m *Manager) Dir() string { return m.dir }

// Record appends one operation to the WAL under the group-commit and
// sync policy.
func (m *Manager) Record(op Op) error { return m.wal.Append(op) }

// Checkpoint makes the log durable, snapshots the queue's current state
// stamped with the covered LSN, and retires old snapshots. After a
// successful checkpoint, recovery needs only the snapshot plus the WAL
// suffix written after this call.
func (m *Manager) Checkpoint() error {
	if err := m.wal.Commit(); err != nil {
		return err
	}
	if err := m.wal.Sync(); err != nil {
		return err
	}
	payload, err := m.q.EncodeSnapshot()
	if err != nil {
		return fmt.Errorf("persist: encode snapshot: %w", err)
	}
	b, err := EncodeSnapshotFile(SnapshotHeader{
		Kind:    m.q.SnapshotKind(),
		Version: m.q.SnapshotVersion(),
		Seq:     m.nextSeq,
		LSN:     m.wal.LSN(),
	}, payload)
	if err != nil {
		return err
	}
	final := join(m.dir, snapName(m.nextSeq))
	name := final
	if !m.opts.NonAtomicSnapshots {
		name = final + ".tmp"
	}
	f, err := m.fsys.Create(name)
	if err != nil {
		return fmt.Errorf("persist: create snapshot: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("persist: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: close snapshot: %w", err)
	}
	if !m.opts.NonAtomicSnapshots {
		if err := m.fsys.Rename(name, final); err != nil {
			return fmt.Errorf("persist: publish snapshot: %w", err)
		}
	}
	m.snaps = append(m.snaps, m.nextSeq)
	m.nextSeq++
	m.snapshots.Inc()
	m.snapshotBytes.Add(uint64(len(b)))
	return m.retire()
}

// retire removes the oldest snapshots beyond the retention count.
func (m *Manager) retire() error {
	if m.opts.Retain < 0 {
		return nil
	}
	for len(m.snaps) > m.opts.Retain {
		seq := m.snaps[0]
		if err := m.fsys.Remove(join(m.dir, snapName(seq))); err != nil {
			return fmt.Errorf("persist: retire snapshot %d: %w", seq, err)
		}
		m.snaps = m.snaps[1:]
	}
	return nil
}

// Close flushes and syncs the WAL and closes the file.
func (m *Manager) Close() error {
	var first error
	if err := m.wal.Commit(); err != nil {
		first = err
	}
	if err := m.wal.Sync(); err != nil && first == nil {
		first = err
	}
	if err := m.walFile.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
