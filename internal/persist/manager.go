// Manager: one directory holding a queue's WAL ("wal.log"), its
// snapshots ("snap-<seq>.snap") and a checkpoint manifest
// ("MANIFEST.json"), with the recovery state machine
//
//	verify WAL (chain + framing) -> truncate torn tail -> verify
//	  manifest -> pick newest valid snapshot (Merkle-root checked when
//	  the manifest covers it) -> restore -> replay WAL suffix ->
//	  verify invariants -> live
//
// and the checkpoint discipline
//
//	commit+sync WAL -> encode snapshot -> write (tmp+rename when
//	  atomic) -> write manifest -> retire old snapshots.
//
// Recovery distinguishes a *torn tail* (unparseable bytes at EOF —
// what a crash leaves; truncated and counted) from *mid-log
// corruption* (damage before later valid data, or state contradicting
// the manifest's sealed heads — what bit rot leaves; refused with a
// typed *IntegrityError that localises the damage to LSN ranges or
// snapshot chunks so anti-entropy repair can fetch exactly that).

package persist

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

const walName = "wal.log"

// WALName is the log file name inside a persistence directory, exported
// for the integrity tooling (anti-entropy repair, the bit-rot harness).
const WALName = walName

// snapName formats a snapshot file name; seq is zero-padded so the
// lexical directory order matches the numeric order.
func snapName(seq uint64) string { return fmt.Sprintf("snap-%016d.snap", seq) }

// SnapFileName is snapName exported for the integrity tooling.
func SnapFileName(seq uint64) string { return snapName(seq) }

// parseSnapName extracts the sequence number of a snapshot file name.
func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
	if len(digits) == 0 {
		return 0, false
	}
	var seq uint64
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

// Options configure a Manager.
type Options struct {
	// WAL tunes the log writer (group commit, fsync policy, retries).
	WAL WALOptions
	// NonAtomicSnapshots writes snapshots directly to their final name
	// instead of tmp+rename. A crash mid-write then leaves a torn
	// .snap file — which the checksum rejects at recovery. The mode
	// exists so the crash harness can exercise exactly that path.
	NonAtomicSnapshots bool
	// Retain is how many snapshots to keep (older ones are removed
	// after a successful checkpoint). 0 means the default of 2; a
	// negative value keeps everything.
	Retain int
	// FS is the filesystem seam; nil uses the real os package.
	FS FS
	// Metrics, when non-nil, receives the persist counters under
	// MetricsPrefix (default "persist") — including the counts accrued
	// during recovery itself.
	Metrics       *obs.Registry
	MetricsPrefix string
	// Flight, when non-nil, receives a FlightWALStall event for every
	// fsync that takes FlightStall or longer (default 50ms), and a
	// FlightIntegrity event for every corruption recovery detects.
	Flight      *obs.FlightRecorder
	FlightStall time.Duration
	// StrictIntegrity refuses recovery when the manifest is invalid or
	// the manifest-covered snapshot fails its Merkle root, instead of
	// counting the fault and falling back. The repair path and the
	// bit-rot harness run strict; a bare daemon stays lenient so legacy
	// directories (no manifest) still restore.
	StrictIntegrity bool
	// ChunkSize overrides the snapshot Merkle chunk size (testing; 0
	// uses DefaultChunkSize).
	ChunkSize int
}

// RecoveryReport describes what recovery found and did.
type RecoveryReport struct {
	// SnapshotSeq and SnapshotLSN identify the restored snapshot
	// (Seq 0: no snapshot, the queue replayed from genesis).
	SnapshotSeq uint64
	SnapshotLSN uint64
	// SnapshotsSkipped counts snapshot files rejected by checksum,
	// version, kind, shape or LSN validation before one restored.
	SnapshotsSkipped int
	// WALRecords is the count of intact log records; ReplayedOps how
	// many of them (the suffix past SnapshotLSN) were replayed.
	WALRecords  int
	ReplayedOps int
	// TornTail reports a partial/corrupt final record was truncated,
	// and TornBytes how many bytes were cut.
	TornTail  bool
	TornBytes int64
	// ChainPoints counts WAL chain seals that verified against the
	// recomputed hash chain.
	ChainPoints int
	// ManifestVerified reports a checkpoint manifest was present and
	// fully valid; ManifestError carries the refusal reason when one
	// was present but rejected (lenient mode records it and proceeds).
	ManifestVerified bool
	ManifestError    string
	// SnapshotRootVerified reports the restored snapshot matched the
	// manifest's Merkle root.
	SnapshotRootVerified bool
	// Ops is the full durable operation log, for differential
	// validation by the crash harness.
	Ops []Op
}

// Manager couples one queue to one persistence directory.
type Manager struct {
	dir  string
	q    Checkpointable
	fsys FS
	opts Options

	wal     *WAL
	walFile File

	nextSeq   uint64
	snaps     []uint64   // live snapshot seqs, ascending
	scanChain ChainState // chain at end of the recovery scan
	manifest  *Manifest  // last manifest this manager wrote

	snapshots        *obs.Counter
	snapshotBytes    *obs.Counter
	snapshotsSkipped *obs.Counter
	tornTails        *obs.Counter
	tornBytes        *obs.Counter
	recoveries       *obs.Counter
	replayed         *obs.Counter
	corruptions      *obs.Counter
	manifestErrors   *obs.Counter
	chainVerified    *obs.Counter
	retireBlocked    *obs.Counter
}

// Open recovers the queue from dir (creating it on first use) and
// returns a Manager appending to its WAL. The queue must be a freshly
// constructed instance with the same configuration (shape, protection
// mode) as the one that wrote the directory; on a fresh directory it is
// simply left empty and the report is all zeroes.
func Open(dir string, q Checkpointable, opts Options) (*Manager, *RecoveryReport, error) {
	m, err := newManager(dir, q, opts)
	if err != nil {
		return nil, nil, err
	}
	rep, err := m.recover()
	if err != nil {
		return nil, nil, err
	}
	if err := m.attach(m.scanChain); err != nil {
		return nil, nil, err
	}
	return m, rep, nil
}

// Attach opens dir for writing without restoring anything into q: the
// one-shot checkpoint path for a live queue. Any existing WAL is
// verified (and its torn tail truncated) only to position the LSN and
// chain, so a subsequent checkpoint supersedes the directory's history.
func Attach(dir string, q Checkpointable, opts Options) (*Manager, error) {
	m, err := newManager(dir, q, opts)
	if err != nil {
		return nil, err
	}
	report, err := m.scanWAL(nil)
	if err != nil {
		return nil, err
	}
	m.scanSnaps()
	if err := m.attach(report.Chain); err != nil {
		return nil, err
	}
	return m, nil
}

// newManager validates options and prepares the directory.
func newManager(dir string, q Checkpointable, opts Options) (*Manager, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.Retain == 0 {
		opts.Retain = 2
	}
	if opts.MetricsPrefix == "" {
		opts.MetricsPrefix = "persist"
	}
	m := &Manager{dir: dir, q: q, fsys: opts.FS, opts: opts}
	if reg := opts.Metrics; reg != nil {
		p := opts.MetricsPrefix
		m.snapshots = reg.Counter(p + "_snapshots_total")
		m.snapshotBytes = reg.Counter(p + "_snapshot_bytes_total")
		m.snapshotsSkipped = reg.Counter(p + "_snapshots_skipped_total")
		m.tornTails = reg.Counter(p + "_torn_tails_total")
		m.tornBytes = reg.Counter(p + "_torn_bytes_total")
		m.recoveries = reg.Counter(p + "_recoveries_total")
		m.replayed = reg.Counter(p + "_replayed_ops_total")
		m.corruptions = reg.Counter(p + "_integrity_corruptions_total")
		m.manifestErrors = reg.Counter(p + "_integrity_manifest_errors_total")
		m.chainVerified = reg.Counter(p + "_integrity_chain_points_total")
		m.retireBlocked = reg.Counter(p + "_integrity_retire_blocked_total")
	}
	if err := m.fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("persist: create %s: %w", dir, err)
	}
	return m, nil
}

// scanWAL verifies the log image (framing + hash chain, against the
// manifest's sealed head when given), truncating a torn tail in place.
// Mid-log corruption — damage a crash cannot produce — is refused with
// a localising *IntegrityError rather than silently truncated, because
// truncating there would drop committed records that are still intact
// on disk (and recoverable from a peer).
func (m *Manager) scanWAL(expect *ChainState) (*WALVerifyReport, error) {
	path := join(m.dir, walName)
	b, err := m.fsys.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("persist: read WAL: %w", err)
	}
	if errors.Is(err, fs.ErrNotExist) && (expect == nil || expect.LSN == 0) {
		return &WALVerifyReport{Chain: NewChain()}, nil
	}
	report := VerifyWALImage(b, expect)
	m.chainVerified.Add(uint64(report.ChainPoints))
	if ierr := report.Err(path); ierr != nil {
		m.corruptions.Add(uint64(len(report.Bad)))
		m.flightIntegrity(report.Bad)
		return nil, ierr
	}
	if report.TornTail {
		if err := m.fsys.Truncate(path, report.ValidBytes); err != nil {
			return nil, fmt.Errorf("persist: truncate torn WAL tail: %w", err)
		}
		m.tornTails.Inc()
		m.tornBytes.Add(uint64(report.TornBytes))
	}
	return report, nil
}

// flightIntegrity records one flight-recorder event per detected
// corruption range (A/B = LSN range, C unused).
func (m *Manager) flightIntegrity(bad []BadRange) {
	if m.opts.Flight == nil {
		return
	}
	for _, r := range bad {
		m.opts.Flight.RecordMsg(obs.FlightIntegrity, 0, r.Class+": "+r.Detail, r.FromLSN, r.ToLSN, 0)
	}
}

// scanSnaps records the snapshot seqs present in the directory and
// positions nextSeq past the largest (counting even invalid files, so
// a reused directory never collides names).
func (m *Manager) scanSnaps() {
	m.snaps = nil
	names, err := m.fsys.ReadDirNames(m.dir)
	if err != nil {
		m.nextSeq = 1
		return
	}
	var max uint64
	for _, name := range names {
		if seq, ok := parseSnapName(name); ok {
			m.snaps = append(m.snaps, seq)
			if seq > max {
				max = seq
			}
		}
	}
	sort.Slice(m.snaps, func(i, j int) bool { return m.snaps[i] < m.snaps[j] })
	m.nextSeq = max + 1
}

// recover runs the recovery state machine against m.q.
func (m *Manager) recover() (*RecoveryReport, error) {
	rep := &RecoveryReport{}

	// The manifest, when present and valid, supplies the sealed chain
	// head and snapshot root everything else is authenticated against.
	// A missing manifest is a legacy directory (nothing to authenticate
	// beyond per-record CRCs); an invalid one is counted and ignored in
	// lenient mode, refused in strict mode — a crash can only leave a
	// *stale* manifest, never a torn one, because it is published by
	// tmp+rename after the state it describes is durable.
	var expect *ChainState
	man, manErr := LoadManifest(m.fsys, m.dir)
	switch {
	case manErr == nil:
		rep.ManifestVerified = true
		if h, err := man.Head(); err == nil {
			expect = &h
		}
	case errors.Is(manErr, fs.ErrNotExist):
		man = nil
	default:
		man = nil
		m.manifestErrors.Inc()
		rep.ManifestError = manErr.Error()
		if m.opts.Flight != nil {
			m.opts.Flight.RecordMsg(obs.FlightIntegrity, 0, manErr.Error(), 0, 0, 0)
		}
		if m.opts.StrictIntegrity {
			return nil, manErr
		}
	}

	report, err := m.scanWAL(expect)
	if err != nil {
		return nil, err
	}
	ops := make([]Op, len(report.Ops))
	for i, v := range report.Ops {
		ops[i] = v.Op
	}
	rep.Ops = ops
	rep.WALRecords = len(ops)
	rep.TornTail = report.TornTail
	rep.TornBytes = report.TornBytes
	rep.ChainPoints = report.ChainPoints

	// Newest valid snapshot wins; anything that fails checksum, kind,
	// version, LSN plausibility or the queue's own decoder is skipped.
	// The manifest-covered snapshot is additionally held to its Merkle
	// root, with chunk-level localisation on mismatch.
	m.scanSnaps()
	for i := len(m.snaps) - 1; i >= 0 && rep.SnapshotSeq == 0; i-- {
		seq := m.snaps[i]
		path := join(m.dir, snapName(seq))
		b, err := m.fsys.ReadFile(path)
		if err != nil {
			rep.SnapshotsSkipped++
			continue
		}
		if man != nil && seq == man.SnapshotSeq {
			if bad := snapshotBadChunks(man, b); len(bad) > 0 {
				m.corruptions.Inc()
				if m.opts.Flight != nil {
					m.opts.Flight.RecordMsg(obs.FlightIntegrity, 0, ClassSnapshotChunk, uint64(seq), uint64(len(bad)), 0)
				}
				ierr := &IntegrityError{Path: path, Chunks: bad,
					Reason: fmt.Sprintf("snapshot %d fails manifest Merkle root (%d bad chunks)", seq, len(bad))}
				if m.opts.StrictIntegrity {
					return nil, ierr
				}
				rep.SnapshotsSkipped++
				continue
			}
			rep.SnapshotRootVerified = true
		}
		h, payload, err := DecodeSnapshotFile(b)
		if err != nil || h.Kind != m.q.SnapshotKind() || h.LSN > uint64(len(ops)) {
			rep.SnapshotsSkipped++
			continue
		}
		if err := m.q.RestoreSnapshot(h.Version, payload); err != nil {
			rep.SnapshotsSkipped++
			continue
		}
		rep.SnapshotSeq = h.Seq
		rep.SnapshotLSN = h.LSN
	}
	m.snapshotsSkipped.Add(uint64(rep.SnapshotsSkipped))

	// Replay the suffix the snapshot does not cover.
	for _, op := range ops[rep.SnapshotLSN:] {
		if err := m.q.Replay(op); err != nil {
			return nil, fmt.Errorf("persist: WAL replay failed at op %d: %w", rep.SnapshotLSN+uint64(rep.ReplayedOps), err)
		}
		rep.ReplayedOps++
	}
	m.replayed.Add(uint64(rep.ReplayedOps))

	// The queue goes live only with its invariants intact.
	if err := m.q.VerifyRecovered(); err != nil {
		return nil, fmt.Errorf("persist: recovered queue failed verification: %w", err)
	}
	m.recoveries.Inc()
	m.scanChain = report.Chain
	return rep, nil
}

// attach opens the WAL for appending with the recovered chain state.
func (m *Manager) attach(chain ChainState) error {
	f, err := m.fsys.OpenAppend(join(m.dir, walName))
	if err != nil {
		return fmt.Errorf("persist: open WAL: %w", err)
	}
	m.walFile = f
	m.wal = NewWALChained(f, chain, m.opts.WAL)
	m.wal.Instrument(m.opts.Metrics, m.opts.MetricsPrefix)
	if m.opts.Flight != nil {
		stall := m.opts.FlightStall
		if stall <= 0 {
			stall = 50 * time.Millisecond
		}
		m.wal.SetFlight(m.opts.Flight, stall)
	}
	return nil
}

// WAL exposes the log writer (LSN/Durable introspection).
func (m *Manager) WAL() *WAL { return m.wal }

// Poisoned reports whether the underlying WAL has latched a permanent
// write/sync failure — the shard is no longer durable and readiness
// probes should fail it.
func (m *Manager) Poisoned() bool { return m.wal != nil && m.wal.Poisoned() }

// Dir returns the persistence directory.
func (m *Manager) Dir() string { return m.dir }

// Record appends one operation to the WAL under the group-commit and
// sync policy.
func (m *Manager) Record(op Op) error { return m.wal.Append(op) }

// Checkpoint makes the log durable, snapshots the queue's current state
// stamped with the covered LSN, and retires old snapshots. After a
// successful checkpoint, recovery needs only the snapshot plus the WAL
// suffix written after this call.
func (m *Manager) Checkpoint() error {
	if err := m.wal.Commit(); err != nil {
		return err
	}
	if err := m.wal.Sync(); err != nil {
		return err
	}
	payload, err := m.q.EncodeSnapshot()
	if err != nil {
		return fmt.Errorf("persist: encode snapshot: %w", err)
	}
	b, err := EncodeSnapshotFile(SnapshotHeader{
		Kind:    m.q.SnapshotKind(),
		Version: m.q.SnapshotVersion(),
		Seq:     m.nextSeq,
		LSN:     m.wal.LSN(),
	}, payload)
	if err != nil {
		return err
	}
	final := join(m.dir, snapName(m.nextSeq))
	name := final
	if !m.opts.NonAtomicSnapshots {
		name = final + ".tmp"
	}
	f, err := m.fsys.Create(name)
	if err != nil {
		return fmt.Errorf("persist: create snapshot: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("persist: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: close snapshot: %w", err)
	}
	if !m.opts.NonAtomicSnapshots {
		if err := m.fsys.Rename(name, final); err != nil {
			return fmt.Errorf("persist: publish snapshot: %w", err)
		}
	}
	seq := m.nextSeq
	m.snaps = append(m.snaps, seq)
	m.nextSeq++
	m.snapshots.Inc()
	m.snapshotBytes.Add(uint64(len(b)))

	// The manifest seals what is now durable: the WAL chain head and
	// the snapshot's Merkle root. Written last, so it can only ever be
	// stale, never ahead of the state it authenticates.
	man, err := NewManifest(m.wal.Chain(), m.chainEvery(), SnapshotHeader{
		Kind:    m.q.SnapshotKind(),
		Version: m.q.SnapshotVersion(),
		Seq:     seq,
		LSN:     m.wal.LSN(),
	}, b, m.opts.ChunkSize)
	if err != nil {
		return err
	}
	if err := WriteManifest(m.fsys, m.dir, man, m.opts.NonAtomicSnapshots); err != nil {
		return err
	}
	m.manifest = &man
	return m.retire()
}

// chainEvery is the effective chain-point interval the WAL writer uses.
func (m *Manager) chainEvery() int {
	if ce := m.opts.WAL.ChainEvery; ce != 0 {
		return ce
	}
	return DefaultChainEvery
}

// Manifest returns the manifest written by the most recent Checkpoint
// (nil before the first).
func (m *Manager) Manifest() *Manifest { return m.manifest }

// retire removes the oldest snapshots beyond the retention count — but
// only while every snapshot it would keep verifies. An unverifiable
// retained snapshot blocks retirement of everything older than it:
// deleting an older, still-good snapshot while a newer one is rotten
// could destroy the last restorable copy. The scrubber (and the next
// recovery) flag the rot; once repaired, retirement resumes.
func (m *Manager) retire() error {
	if m.opts.Retain < 0 {
		return nil
	}
	keepFrom := len(m.snaps) - m.opts.Retain
	if keepFrom <= 0 {
		return nil
	}
	for _, seq := range m.snaps[keepFrom:] {
		if err := m.verifySnap(seq); err != nil {
			m.retireBlocked.Inc()
			m.corruptions.Inc()
			if m.opts.Flight != nil {
				m.opts.Flight.RecordMsg(obs.FlightIntegrity, 0,
					"retire blocked: "+err.Error(), seq, 0, 0)
			}
			return nil
		}
	}
	for len(m.snaps) > m.opts.Retain {
		seq := m.snaps[0]
		if err := m.fsys.Remove(join(m.dir, snapName(seq))); err != nil {
			return fmt.Errorf("persist: retire snapshot %d: %w", seq, err)
		}
		m.snaps = m.snaps[1:]
	}
	return nil
}

// verifySnap re-reads one snapshot from disk and validates it: envelope
// checksum, kind, and the manifest Merkle root when this seq is the
// manifest-covered one.
func (m *Manager) verifySnap(seq uint64) error {
	path := join(m.dir, snapName(seq))
	b, err := m.fsys.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read snapshot %d: %w", seq, err)
	}
	if m.manifest != nil && seq == m.manifest.SnapshotSeq {
		if bad := snapshotBadChunks(m.manifest, b); len(bad) > 0 {
			return &IntegrityError{Path: path, Chunks: bad,
				Reason: fmt.Sprintf("snapshot %d fails manifest Merkle root", seq)}
		}
	}
	h, _, err := DecodeSnapshotFile(b)
	if err != nil {
		return fmt.Errorf("snapshot %d: %w", seq, err)
	}
	if h.Kind != m.q.SnapshotKind() {
		return fmt.Errorf("snapshot %d kind %q, want %q", seq, h.Kind, m.q.SnapshotKind())
	}
	return nil
}

// Close flushes and syncs the WAL and closes the file.
func (m *Manager) Close() error {
	var first error
	if err := m.wal.Commit(); err != nil {
		first = err
	}
	if err := m.wal.Sync(); err != nil && first == nil {
		first = err
	}
	if err := m.walFile.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
