package persist

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/obs"
)

func sampleOps(n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		kind := hw.Push
		if i%3 == 2 {
			kind = hw.Pop
		}
		ops[i] = Op{Kind: kind, Cycle: uint64(i + 1), Value: uint64(i * 7), Meta: uint64(i)}
	}
	return ops
}

func encodeLog(ops []Op) []byte {
	var b []byte
	for _, op := range ops {
		b = AppendRecord(b, op)
	}
	return b
}

func TestRecordRoundTrip(t *testing.T) {
	want := sampleOps(10)
	b := encodeLog(want)
	if len(b) != len(want)*RecordLen {
		t.Fatalf("encoded %d bytes, want %d", len(b), len(want)*RecordLen)
	}
	got, valid, err := ReadAll(b)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if valid != int64(len(b)) {
		t.Fatalf("valid prefix %d, want %d", valid, len(b))
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestTornTailEveryOffset truncates a two-record log at every byte
// offset: the valid prefix must always decode, the tail must be
// reported torn exactly when the cut is not on a record boundary, and
// torn bytes must never come back as data.
func TestTornTailEveryOffset(t *testing.T) {
	want := sampleOps(2)
	b := encodeLog(want)
	for cut := 0; cut <= len(b); cut++ {
		ops, valid, err := ReadAll(b[:cut])
		wantOps := cut / RecordLen
		wantValid := int64(wantOps * RecordLen)
		if len(ops) != wantOps || valid != wantValid {
			t.Fatalf("cut %d: got %d ops valid %d, want %d ops valid %d", cut, len(ops), valid, wantOps, wantValid)
		}
		for i := range ops {
			if ops[i] != want[i] {
				t.Fatalf("cut %d: op %d diverged", cut, i)
			}
		}
		if cut%RecordLen == 0 {
			if err != nil {
				t.Fatalf("cut %d (record boundary): unexpected error %v", cut, err)
			}
		} else if !errors.Is(err, ErrTornRecord) {
			t.Fatalf("cut %d: error %v, want ErrTornRecord", cut, err)
		}
	}
}

func TestChecksumMismatchIsTorn(t *testing.T) {
	b := encodeLog(sampleOps(2))
	b[RecordLen+recHeaderLen+3] ^= 0x40 // flip a payload bit of record 2
	ops, valid, err := ReadAll(b)
	if len(ops) != 1 || valid != RecordLen {
		t.Fatalf("got %d ops valid %d, want 1 op valid %d", len(ops), valid, RecordLen)
	}
	var torn *TornRecordError
	if !errors.As(err, &torn) {
		t.Fatalf("error %v, want *TornRecordError", err)
	}
	if torn.Offset != RecordLen {
		t.Fatalf("torn offset %d, want %d", torn.Offset, RecordLen)
	}
}

func TestInvalidKindIsTorn(t *testing.T) {
	// A record whose checksum is fine but whose kind byte no scheduler
	// could have consumed.
	var payload [recPayloadLen]byte
	payload[0] = 9
	var b []byte
	var hdr [recHeaderLen]byte
	putU32(hdr[0:], recPayloadLen)
	putU32(hdr[4:], crc32.Checksum(payload[:], castagnoli))
	b = append(append(b, hdr[:]...), payload[:]...)
	_, valid, err := ReadAll(b)
	if valid != 0 || !errors.Is(err, ErrTornRecord) {
		t.Fatalf("valid %d err %v, want 0 and ErrTornRecord", valid, err)
	}
}

// fakeFile is an in-memory File with scriptable write/sync failures.
type fakeFile struct {
	buf        bytes.Buffer
	writes     int
	syncs      int
	failWrites int // fail the next N writes
	failSyncs  int
	err        error
	shortAt    int // if >0, the next write lands only shortAt bytes, then errors
}

func (f *fakeFile) Write(p []byte) (int, error) {
	f.writes++
	if f.shortAt > 0 && f.failWrites > 0 {
		n := f.shortAt
		if n > len(p) {
			n = len(p)
		}
		f.failWrites--
		f.shortAt = 0
		f.buf.Write(p[:n])
		return n, f.err
	}
	if f.failWrites > 0 {
		f.failWrites--
		return 0, f.err
	}
	return f.buf.Write(p)
}

func (f *fakeFile) Sync() error {
	f.syncs++
	if f.failSyncs > 0 {
		f.failSyncs--
		return f.err
	}
	return nil
}

func (f *fakeFile) Close() error { return nil }

func TestGroupCommitBatching(t *testing.T) {
	f := &fakeFile{}
	w := NewWAL(f, 0, WALOptions{BatchOps: 4})
	ops := sampleOps(10)
	for _, op := range ops {
		if err := w.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	// 10 ops at batch 4: two full batches committed, two ops buffered.
	if f.writes != 2 || f.syncs != 2 {
		t.Fatalf("writes=%d syncs=%d, want 2 and 2", f.writes, f.syncs)
	}
	if w.LSN() != 10 || w.Durable() != 8 {
		t.Fatalf("lsn=%d durable=%d, want 10 and 8", w.LSN(), w.Durable())
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if w.Durable() != 10 {
		t.Fatalf("durable=%d after Commit, want 10", w.Durable())
	}
	got, _, err := ReadAll(f.buf.Bytes())
	if err != nil || len(got) != 10 {
		t.Fatalf("log holds %d ops (err %v), want 10", len(got), err)
	}
}

func TestSyncPolicies(t *testing.T) {
	always := &fakeFile{}
	w := NewWAL(always, 0, WALOptions{BatchOps: 8, Sync: SyncAlways})
	for _, op := range sampleOps(3) {
		if err := w.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	if always.syncs != 3 {
		t.Fatalf("SyncAlways: %d fsyncs for 3 ops, want 3", always.syncs)
	}

	none := &fakeFile{}
	w = NewWAL(none, 0, WALOptions{BatchOps: 1, Sync: SyncNone})
	for _, op := range sampleOps(3) {
		if err := w.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	if none.syncs != 0 {
		t.Fatalf("SyncNone: %d fsyncs from the append path, want 0", none.syncs)
	}
	if err := w.Sync(); err != nil || none.syncs != 1 {
		t.Fatalf("explicit Sync: err %v syncs %d", err, none.syncs)
	}
}

func TestRetryBackoffOnTransientErrors(t *testing.T) {
	transient := errors.New("EAGAIN")
	f := &fakeFile{failWrites: 2, err: transient}
	var slept []time.Duration
	reg := obs.NewRegistry()
	w := NewWAL(f, 0, WALOptions{
		MaxRetries: 5,
		Backoff:    time.Millisecond,
		Transient:  func(err error) bool { return errors.Is(err, transient) },
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
	})
	w.Instrument(reg, "test")
	if err := w.Append(sampleOps(1)[0]); err != nil {
		t.Fatalf("append with transient failures: %v", err)
	}
	if len(slept) != 2 {
		t.Fatalf("%d backoff sleeps, want 2", len(slept))
	}
	if slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("backoff %v, want doubling from 1ms", slept)
	}
	if got, _, err := ReadAll(f.buf.Bytes()); err != nil || len(got) != 1 {
		t.Fatalf("log after retries holds %d ops (err %v)", len(got), err)
	}
	snap := reg.Snapshot()
	if snap.Counters["test_wal_retry_total"] != 2 {
		t.Fatalf("retry counter %d, want 2", snap.Counters["test_wal_retry_total"])
	}
}

func TestShortWriteResumes(t *testing.T) {
	transient := errors.New("partial")
	f := &fakeFile{failWrites: 1, shortAt: 5, err: transient}
	w := NewWAL(f, 0, WALOptions{
		MaxRetries: 3,
		Transient:  func(err error) bool { return errors.Is(err, transient) },
		Sleep:      func(time.Duration) {},
	})
	op := Op{Kind: hw.Push, Cycle: 1, Value: 42, Meta: 7}
	if err := w.Append(op); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadAll(f.buf.Bytes())
	if err != nil || len(got) != 1 || got[0] != op {
		t.Fatalf("resumed record mismatch: %v ops=%v", err, got)
	}
}

func TestPermanentFailureIsSticky(t *testing.T) {
	perm := errors.New("EIO")
	f := &fakeFile{failWrites: 1000, err: perm}
	w := NewWAL(f, 0, WALOptions{})
	err := w.Append(sampleOps(1)[0])
	if !errors.Is(err, perm) {
		t.Fatalf("append error %v, want EIO", err)
	}
	if err2 := w.Append(sampleOps(1)[0]); !errors.Is(err2, perm) {
		t.Fatalf("sticky error not returned: %v", err2)
	}
	if w.Durable() != 0 {
		t.Fatalf("durable=%d after failure, want 0", w.Durable())
	}
}

func TestReaderOffsetTracksValidPrefix(t *testing.T) {
	b := encodeLog(sampleOps(3))
	b = append(b, 0xde, 0xad) // partial header
	r := NewReader(b)
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			t.Fatalf("clean EOF on a torn log")
		}
		if err != nil {
			if !errors.Is(err, ErrTornRecord) {
				t.Fatalf("error %v, want ErrTornRecord", err)
			}
			break
		}
		n++
	}
	if n != 3 || r.Offset() != int64(3*RecordLen) {
		t.Fatalf("decoded %d ops, offset %d", n, r.Offset())
	}
	// The reader must not advance past the bad record.
	if _, err := r.Next(); !errors.Is(err, ErrTornRecord) {
		t.Fatalf("second Next after torn record: %v", err)
	}
}

func TestWALInstrumentCounters(t *testing.T) {
	reg := obs.NewRegistry()
	f := &fakeFile{}
	w := NewWAL(f, 0, WALOptions{BatchOps: 2})
	w.Instrument(reg, "p")
	for _, op := range sampleOps(4) {
		if err := w.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"p_wal_records_total": 4,
		"p_wal_commits_total": 2,
		"p_wal_fsyncs_total":  2,
		"p_wal_bytes_total":   uint64(4 * RecordLen),
	} {
		if snap.Counters[name] != want {
			t.Errorf("%s = %d, want %d", name, snap.Counters[name], want)
		}
	}
	// Latency and batch-size distributions: one observation per commit.
	if got := snap.Quantile("p_wal_commit_ns").Count; got != 2 {
		t.Errorf("p_wal_commit_ns count = %d, want 2", got)
	}
	if got := snap.Quantile("p_wal_fsync_ns").Count; got != 2 {
		t.Errorf("p_wal_fsync_ns count = %d, want 2", got)
	}
	bs := snap.Histograms["p_wal_commit_ops"]
	if bs.Count != 2 || bs.Sum != 4 {
		t.Errorf("p_wal_commit_ops count=%d sum=%d, want count=2 sum=4 (two 2-op commits)", bs.Count, bs.Sum)
	}
}

func TestSyncPolicyString(t *testing.T) {
	for p, want := range map[SyncPolicy]string{SyncBatch: "batch", SyncAlways: "always", SyncNone: "none"} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
	if got := SyncPolicy(42).String(); got != fmt.Sprintf("SyncPolicy(42)") {
		t.Errorf("unknown policy String() = %q", got)
	}
}
