// Byte-level codec helpers shared by the snapshot implementations of
// the queue packages. Everything is little-endian and length-prefixed;
// Dec accumulates its first error so callers check once at the end.

package persist

import (
	"encoding/binary"
	"fmt"
)

// Enc builds a snapshot payload. The zero value is ready to use.
type Enc struct{ B []byte }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.B = append(e.B, v) }

// Bool appends a boolean as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.B = binary.LittleEndian.AppendUint32(e.B, v) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.B = binary.LittleEndian.AppendUint64(e.B, v) }

// Bytes appends a uint32 length prefix followed by the bytes.
func (e *Enc) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.B = append(e.B, b...)
}

// Dec consumes a snapshot payload. The first decode past the end (or
// with an impossible length) latches an error; subsequent reads return
// zero values so decoders stay linear and check Err once.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec wraps a payload for decoding.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// fail latches the first decode error.
func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("persist: "+format, args...)
	}
}

// take returns the next n bytes, or nil after latching an error.
func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) || d.off+n < d.off {
		d.fail("snapshot payload truncated at offset %d (need %d of %d bytes)", d.off, n, len(d.b)-d.off)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte as a boolean (any nonzero is true).
func (d *Dec) Bool() bool { return d.U8() != 0 }

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Bytes reads a uint32-length-prefixed byte slice (aliasing the
// payload; copy if retained).
func (d *Dec) Bytes() []byte {
	n := int(d.U32())
	return d.take(n)
}

// Len reads a uint32 length and validates it against an inclusive
// upper bound, so corrupt lengths fail cleanly instead of driving huge
// allocations.
func (d *Dec) Len(max int) int {
	n := int(d.U32())
	if d.err == nil && (n < 0 || n > max) {
		d.fail("snapshot length %d out of range [0,%d]", n, max)
		return 0
	}
	return n
}

// Err returns the latched decode error, if any.
func (d *Dec) Err() error { return d.err }

// Done returns the latched error, or an error if payload bytes remain
// unconsumed (a version/shape mismatch symptom).
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("persist: snapshot payload has %d trailing bytes", len(d.b)-d.off)
	}
	return nil
}
