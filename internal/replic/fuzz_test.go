package replic

import (
	"bytes"
	"testing"
)

// FuzzRecordsDecode feeds arbitrary bytes to ParseReplRecords and, for
// payloads that do decode, re-encodes and checks the identity — the
// decoder must never panic and must accept exactly what the encoder
// produces.
func FuzzRecordsDecode(f *testing.F) {
	f.Add(AppendReplRecords(nil, 1, nil)) // heartbeat
	f.Add(AppendReplRecords(nil, 7, []Record{
		{Kind: RecOp, Shard: 2, LSN: 5, Op: OpPush, Value: 99, Meta: 3},
		{Kind: RecOp, Shard: 0, LSN: 1, Op: OpPop, Value: 4, Meta: 0, End: true},
	}))
	f.Add(AppendReplRecords(nil, 1000, []Record{
		{Kind: RecDedup, Session: 0xFEED, ReqID: 42, Resp: []byte("cached response"), End: true},
	}))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, p []byte) {
		first, recs, err := ParseReplRecords(p)
		if err != nil {
			return
		}
		re := AppendReplRecords(nil, first, recs)
		if !bytes.Equal(re, p) {
			t.Fatalf("re-encode differs:\n in  %x\n out %x", p, re)
		}
	})
}
