package replic

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/wire"
)

// tnode is one engine+server+replication-node trio on a loopback port.
type tnode struct {
	eng  *engine.Engine
	srv  *wire.Server
	node *Node
	addr string
	stop func(grace time.Duration)
}

func startNode(t *testing.T, ecfg engine.Config, cfg Config) *tnode {
	t.Helper()
	eng, err := engine.New(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(eng)
	cfg.Engine = ecfg
	if cfg.DialRetry == 0 {
		cfg.DialRetry = 5 * time.Millisecond
	}
	node := Attach(eng, srv, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		srv.Serve(ln)
		close(done)
	}()
	stopped := false
	return &tnode{
		eng: eng, srv: srv, node: node, addr: ln.Addr().String(),
		stop: func(grace time.Duration) {
			if stopped {
				return
			}
			stopped = true
			ctx, cancel := context.WithTimeout(context.Background(), grace)
			defer cancel()
			srv.Shutdown(ctx)
			<-done
			node.Close()
			eng.Close()
		},
	}
}

// waitUntil polls cond for up to 5s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

var testGeom = engine.Config{Shards: 2, Order: 2, Levels: 10, Routing: engine.RouteRank}

// TestReplicationCatchUpAndPromote replays a primary's history —
// pushes and pops — onto a follower, promotes it, and drains it: the
// follower must hold exactly the primary's surviving elements.
func TestReplicationCatchUpAndPromote(t *testing.T) {
	prim := startNode(t, testGeom, Config{Sync: true, SyncTimeout: 5 * time.Second})
	defer prim.stop(2 * time.Second)
	fol := startNode(t, testGeom, Config{PrimaryAddr: prim.addr})
	defer fol.stop(2 * time.Second)

	if prim.node.Role() != "primary" || fol.node.Role() != "follower" {
		t.Fatalf("roles: %s / %s", prim.node.Role(), fol.node.Role())
	}

	c, err := wire.NewResilientClient(wire.ResilientOptions{Addrs: []string{prim.addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 200
	want := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		v := uint64(i*7 + 1)
		res, err := c.Do([]wire.Op{{Kind: wire.OpPush, Value: v, Meta: v}})
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Status != wire.StatusOK {
			t.Fatalf("push %d: %v", i, res[0].Status)
		}
		want = append(want, v)
	}
	// Pop a prefix on the primary; the follower must pop the same.
	for i := 0; i < 50; i++ {
		res, err := c.Do([]wire.Op{{Kind: wire.OpPop}})
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Status != wire.StatusOK || res[0].Value != want[0] {
			t.Fatalf("pop %d: %+v, want value %d", i, res[0], want[0])
		}
		want = want[1:]
	}

	waitUntil(t, "follower ack at tip", func() bool {
		return prim.node.AckSeq() == prim.node.LogSeq() && fol.node.Ready()
	})
	if prim.node.Status().Degraded {
		t.Fatal("sync primary degraded with a live follower")
	}
	if got := fol.eng.Len(); got != len(want) {
		t.Fatalf("follower holds %d elements, want %d", got, len(want))
	}
	for i := 0; i < testGeom.Shards; i++ {
		if p, f := prim.eng.ShardLSN(i), fol.eng.ShardLSN(i); p != f {
			t.Fatalf("shard %d LSN: primary %d, follower %d", i, p, f)
		}
	}

	// The standby refuses queue traffic until promoted.
	fc, err := wire.Dial(fol.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	if _, err := fc.Do([]wire.Op{{Kind: wire.OpPop}}); err == nil {
		t.Fatal("follower served before promotion")
	} else {
		var se *wire.ServerError
		if !errors.As(err, &se) || se.Code != wire.StatusNotPrimary {
			t.Fatalf("pre-promotion error: %v", err)
		}
	}

	fol.node.Promote()
	if fol.node.Role() != "primary" || !fol.node.Ready() {
		t.Fatalf("post-promotion: role %s ready %v", fol.node.Role(), fol.node.Ready())
	}
	fc2, err := wire.Dial(fol.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer fc2.Close()
	got := make([]uint64, 0, len(want))
	for {
		res, err := fc2.Do([]wire.Op{{Kind: wire.OpPop}})
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Status == wire.StatusEmpty {
			break
		}
		got = append(got, res[0].Value)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("promoted follower drained %d elements, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("drain[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestRetryDedup re-sends an already-executed request id on a fresh
// connection with the same session: the server must replay the cached
// response without re-applying the ops.
func TestRetryDedup(t *testing.T) {
	prim := startNode(t, testGeom, Config{})
	defer prim.stop(2 * time.Second)

	const session = 0xBEEF
	ops := []wire.Op{
		{Kind: wire.OpPush, Value: 10, Meta: 1},
		{Kind: wire.OpPush, Value: 20, Meta: 2},
		{Kind: wire.OpPop},
	}
	c1, err := wire.DialOptions(prim.addr, wire.ClientOptions{Session: session})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := c1.DoID(7, ops, 0)
	if err != nil {
		t.Fatal(err)
	}
	c1.Close()
	lenAfter := prim.eng.Len()

	c2, err := wire.DialOptions(prim.addr, wire.ClientOptions{Session: session})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	res2, err := c2.DoID(7, ops, 0)
	if err != nil {
		t.Fatalf("retried request: %v", err)
	}
	if len(res1) != len(res2) {
		t.Fatalf("replay length %d, want %d", len(res2), len(res1))
	}
	for i := range res1 {
		if res1[i] != res2[i] {
			t.Fatalf("replay[%d] = %+v, want %+v", i, res2[i], res1[i])
		}
	}
	if got := prim.eng.Len(); got != lenAfter {
		t.Fatalf("retry re-applied: engine len %d, want %d", got, lenAfter)
	}
	// A different id from the same session still executes.
	if _, err := c2.DoID(8, []wire.Op{{Kind: wire.OpPush, Value: 30, Meta: 3}}, 0); err != nil {
		t.Fatal(err)
	}
	if got := prim.eng.Len(); got != lenAfter+1 {
		t.Fatalf("fresh id did not apply: engine len %d, want %d", got, lenAfter+1)
	}
}

// TestManifestMismatchRefused sends a TReplHello with the wrong
// geometry and expects a TError, not a stream.
func TestManifestMismatchRefused(t *testing.T) {
	prim := startNode(t, testGeom, Config{})
	defer prim.stop(2 * time.Second)

	conn, err := net.Dial("tcp", prim.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bad := ManifestOf(engine.Config{Shards: 7, Order: 2, Levels: 6})
	if err := wire.WriteFrame(conn, wire.TReplHello, 1, AppendReplHello(nil, bad, 0, 0)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.TError {
		t.Fatalf("mismatched manifest got frame type %d, want TError", f.Type)
	}
}

// TestLogIdentityMismatchRefused resumes a stream with a nonzero
// position minted against a different log identity: the primary must
// refuse it — sequence numbers from a foreign log are meaningless here.
// A fresh attach (resume 0, no identity) must still be granted.
func TestLogIdentityMismatchRefused(t *testing.T) {
	prim := startNode(t, testGeom, Config{})
	defer prim.stop(2 * time.Second)

	// Give the log some history so resume 3 is within the tip.
	c, err := wire.Dial(prim.addr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Do([]wire.Op{{Kind: wire.OpPush, Value: uint64(i + 1), Meta: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	waitUntil(t, "log growth", func() bool { return prim.node.LogSeq() >= 3 })

	attach := func(resume, logID uint64) wire.Frame {
		t.Helper()
		conn, err := net.Dial("tcp", prim.addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		m := ManifestOf(testGeom)
		if err := wire.WriteFrame(conn, wire.TReplHello, 1, AppendReplHello(nil, m, resume, logID)); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		f, err := wire.ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	if f := attach(3, 0xDEADBEEF); f.Type != wire.TError {
		t.Fatalf("foreign-log resume got frame type %d, want TError", f.Type)
	}
	f := attach(0, 0)
	if f.Type != wire.TReplOK {
		t.Fatalf("fresh attach got frame type %d, want TReplOK", f.Type)
	}
	tip, logID, err := ParseReplOK(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if logID == 0 {
		t.Fatal("primary advertised zero log identity")
	}
	if tip != prim.node.LogSeq() {
		t.Fatalf("TReplOK tip %d, want %d", tip, prim.node.LogSeq())
	}
	// Resuming against the real identity is accepted.
	if f := attach(3, logID); f.Type != wire.TReplOK {
		t.Fatalf("matching-log resume got frame type %d, want TReplOK", f.Type)
	}
}

// TestFailoverNoAckedOpLoss runs a client against a primary/standby
// pair, kills the primary mid-traffic, promotes the standby, and
// checks every acknowledged push survives exactly once.
func TestFailoverNoAckedOpLoss(t *testing.T) {
	prim := startNode(t, testGeom, Config{Sync: true, SyncTimeout: 5 * time.Second})
	fol := startNode(t, testGeom, Config{PrimaryAddr: prim.addr})
	defer fol.stop(2 * time.Second)
	defer prim.stop(50 * time.Millisecond)

	waitUntil(t, "follower attach", func() bool { return fol.node.Ready() })

	rc, err := wire.NewResilientClient(wire.ResilientOptions{
		Addrs:          []string{prim.addr, fol.addr},
		RequestTimeout: time.Second,
		BaseDelay:      time.Millisecond,
		MaxDelay:       20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	acked := make(map[uint64]bool)
	push := func(v uint64) {
		res, err := rc.Do([]wire.Op{{Kind: wire.OpPush, Value: v, Meta: v}})
		if err != nil {
			t.Fatalf("push %d: %v", v, err)
		}
		if res[0].Status != wire.StatusOK {
			t.Fatalf("push %d: status %v", v, res[0].Status)
		}
		acked[v] = true
	}

	v := uint64(1)
	for ; v <= 100; v++ {
		push(v)
	}
	// Kill the primary abruptly (50ms grace force-closes its
	// connections), promote the standby, keep pushing through the
	// client's retry/failover path.
	prim.stop(50 * time.Millisecond)
	done := make(chan struct{})
	go func() { fol.node.Promote(); close(done) }()
	for ; v <= 200; v++ {
		push(v)
	}
	<-done

	got := make(map[uint64]int)
	for {
		res, err := rc.Do([]wire.Op{{Kind: wire.OpPop}})
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Status == wire.StatusEmpty {
			break
		}
		got[res[0].Value]++
	}
	for val := range acked {
		if got[val] != 1 {
			t.Fatalf("acked push %d present %d times after failover", val, got[val])
		}
	}
	for val, n := range got {
		if n != 1 {
			t.Fatalf("value %d applied %d times", val, n)
		}
		if !acked[val] {
			t.Fatalf("unacked value %d survived failover", val)
		}
	}
	s := rc.Stats()
	if s.Retries == 0 {
		t.Error("failover run recorded no retries")
	}
	if s.DedupMisses != 0 {
		t.Errorf("%d dedup misses — indeterminate op outcomes", s.DedupMisses)
	}
}

// TestConcurrentFailoverNoDuplicates drives several clients in
// parallel through a primary kill and standby promotion. Concurrent
// batches are what interleave per-shard LSNs across log groups, so this
// exercises the follower's group-atomic reorder apply: a group the
// standby applied ahead of the acked frontier carries its dedup entry
// with it, so the unacked client's retry is answered from cache, and a
// group not applied leaves no engine trace, so its retry re-executes
// freshly. After failover every pushed value must be present exactly
// once.
func TestConcurrentFailoverNoDuplicates(t *testing.T) {
	prim := startNode(t, testGeom, Config{Sync: true, SyncTimeout: 5 * time.Second})
	fol := startNode(t, testGeom, Config{PrimaryAddr: prim.addr})
	defer fol.stop(2 * time.Second)
	defer prim.stop(50 * time.Millisecond)

	waitUntil(t, "follower attach", func() bool { return fol.node.Ready() })

	const (
		clients   = 4
		perClient = 150
		killAfter = 40
	)
	var (
		wg      sync.WaitGroup
		killOne sync.Once
		errs    = make(chan error, clients)
	)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rc, err := wire.NewResilientClient(wire.ResilientOptions{
				Addrs:          []string{prim.addr, fol.addr},
				RequestTimeout: time.Second,
				BaseDelay:      time.Millisecond,
				MaxDelay:       20 * time.Millisecond,
			})
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", ci, err)
				return
			}
			defer rc.Close()
			for i := 0; i < perClient; i++ {
				if ci == 0 && i == killAfter {
					killOne.Do(func() {
						prim.stop(50 * time.Millisecond)
						go fol.node.Promote()
					})
				}
				v := uint64(ci*perClient + i + 1)
				res, err := rc.Do([]wire.Op{{Kind: wire.OpPush, Value: v, Meta: v}})
				if err != nil {
					errs <- fmt.Errorf("client %d push %d: %w", ci, v, err)
					return
				}
				if res[0].Status != wire.StatusOK {
					errs <- fmt.Errorf("client %d push %d: status %v", ci, v, res[0].Status)
					return
				}
				if s := rc.Stats(); s.DedupMisses != 0 {
					errs <- fmt.Errorf("client %d: dedup miss — indeterminate op outcome", ci)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	fol.node.Promote() // idempotent; waits for the serving gate
	rc, err := wire.NewResilientClient(wire.ResilientOptions{Addrs: []string{fol.addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	got := make(map[uint64]int)
	for {
		res, err := rc.Do([]wire.Op{{Kind: wire.OpPop}})
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Status == wire.StatusEmpty {
			break
		}
		got[res[0].Value]++
	}
	// Every push eventually succeeded (the loops above fail otherwise),
	// so every value 1..clients*perClient was acked to some client and
	// must survive failover exactly once.
	for v := uint64(1); v <= clients*perClient; v++ {
		switch got[v] {
		case 1:
		case 0:
			t.Fatalf("acked push %d lost in failover", v)
		default:
			t.Fatalf("push %d applied %d times — duplicate apply", v, got[v])
		}
	}
	if len(got) != clients*perClient {
		t.Fatalf("drained %d distinct values, want %d", len(got), clients*perClient)
	}
}

// TestPromoteMidStreamUnblocksFollower promotes a follower while its
// stream is idle-blocked reading from a live primary: Promote must
// interrupt the read and open the serving gate promptly.
func TestPromoteMidStreamUnblocksFollower(t *testing.T) {
	prim := startNode(t, testGeom, Config{})
	defer prim.stop(2 * time.Second)
	fol := startNode(t, testGeom, Config{PrimaryAddr: prim.addr})
	defer fol.stop(2 * time.Second)

	waitUntil(t, "follower attach", func() bool { return fol.node.Ready() })
	start := time.Now()
	fol.node.Promote()
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("promotion took %v", d)
	}
	if !fol.srv.Serving() {
		t.Fatal("promoted follower not serving")
	}
}
