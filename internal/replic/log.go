package replic

import "sync"

// Log is the primary's in-memory replication log: records numbered
// from sequence 1, appended in atomic groups (one executed batch's op
// records plus its dedup record land under one lock acquisition, so a
// reader can never observe a group's dedup entry without its ops).
// Senders block in ReadFrom until records arrive; Wake unblocks them
// so a dying stream can exit.
//
// The log is retained from genesis: a fresh follower attaches at
// sequence 0 and replays everything. That bounds this design to
// histories that fit in memory — snapshot-shipping for late joiners is
// future work (see DESIGN.md §6).
type Log struct {
	mu   sync.Mutex
	cond *sync.Cond
	recs []Record // recs[i] has sequence i+1
}

// NewLog returns an empty log.
func NewLog() *Log {
	l := &Log{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// AppendGroup appends recs as one atomic group and returns the new tip
// sequence (that of the last record). It stamps the group-end flag:
// only the final record carries End, so stream readers can reassemble
// group boundaries no matter how frames chunk the records.
func (l *Log) AppendGroup(recs []Record) uint64 {
	for i := range recs {
		recs[i].End = i == len(recs)-1
	}
	l.mu.Lock()
	l.recs = append(l.recs, recs...)
	tip := uint64(len(l.recs))
	l.mu.Unlock()
	l.cond.Broadcast()
	return tip
}

// Seq returns the tip sequence (0 when empty).
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(len(l.recs))
}

// ReadFrom blocks until records after seq exist (or Wake is called),
// then returns up to max of them. The returned slice aliases log
// memory; records are never mutated after append. An empty return
// means a wakeup with nothing new — callers check their stop condition
// and loop.
func (l *Log) ReadFrom(seq uint64, max int) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	if uint64(len(l.recs)) <= seq {
		l.cond.Wait()
	}
	if uint64(len(l.recs)) <= seq {
		return nil
	}
	end := uint64(len(l.recs))
	if end > seq+uint64(max) {
		end = seq + uint64(max)
	}
	return l.recs[seq:end]
}

// Wake unblocks every ReadFrom waiter.
func (l *Log) Wake() { l.cond.Broadcast() }
