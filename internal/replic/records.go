// Package replic is WAL-shipping hot-standby replication for the
// sharded engine: the primary taps every executed batch into an
// in-memory, sequence-numbered log of per-shard operation records plus
// retry-dedup records, streams it to followers over the wire protocol's
// replication frames, and a follower applies the stream to its own
// engine — per shard, in LSN order — until promoted.
//
// The unit of shipping is the atomic batch group: one executed request
// becomes its successful ops' records followed by (for dedup-enrolled
// sessions) one dedup record carrying the encoded response, appended to
// the log as a unit with the last record flagged as the group end. A
// follower applies groups all-or-nothing — a group's ops and its dedup
// record land together or not at all — and acknowledges only the
// contiguous, fully-applied prefix of the stream. So a client ack gated
// on the follower's ack (synchronous mode) implies the follower can
// reproduce both the state and the response, and a primary kill loses
// no acknowledged op and duplicates none.
package replic

import (
	"fmt"

	"encoding/binary"

	"repro/internal/engine"
	"repro/internal/wire"
)

// RecKind discriminates log records.
type RecKind uint8

// Record kinds.
const (
	// RecOp is one applied queue mutation on one shard.
	RecOp RecKind = 1
	// RecDedup is one dedup-cache entry: a session's request id and its
	// encoded TBatchOK response, appended after its group's op records.
	RecDedup RecKind = 2
)

// Op codes inside a RecOp record.
const (
	OpPush uint8 = 1
	OpPop  uint8 = 2
)

// Record is one replication log entry. For RecOp, Shard/LSN place the
// mutation, Op selects push or pop, and Value/Meta carry the pushed
// element — or, for a pop, the element the primary popped, which the
// follower checks its own pop against. For RecDedup, Session/ReqID/Resp
// carry the cached response. End marks the last record of an atomic log
// group; it is what lets a follower reassemble group boundaries from a
// flat record stream and apply groups all-or-nothing.
type Record struct {
	Kind RecKind
	End  bool

	Shard uint32
	LSN   uint64
	Op    uint8
	Value uint64
	Meta  uint64

	Session uint64
	ReqID   uint64
	Resp    []byte
}

// Manifest is the engine geometry a follower must match before a
// stream is granted: replaying a history against a different shard
// count, queue kind, or capacity diverges silently, so mismatches are
// refused at the handshake.
type Manifest struct {
	Shards   uint32
	Kind     uint8
	Routing  uint8
	Order    uint32
	Levels   uint32
	Cap      uint64
	RankBits uint32
}

// ManifestOf derives the manifest from an engine config (after its
// defaults are applied).
func ManifestOf(cfg engine.Config) Manifest {
	cfg = cfg.Normalized()
	return Manifest{
		Shards:   uint32(cfg.Shards),
		Kind:     uint8(cfg.Kind),
		Routing:  uint8(cfg.Routing),
		Order:    uint32(cfg.Order),
		Levels:   uint32(cfg.Levels),
		Cap:      uint64(cfg.Cap),
		RankBits: uint32(cfg.RankBits),
	}
}

// Payload sizes.
const (
	helloSize   = 4 + 1 + 1 + 4 + 4 + 8 + 4 + 8 + 8 // manifest + resume seq + log id
	replOKSize  = 8 + 8                             // tip seq + log id
	recOpSize   = 1 + 4 + 8 + 1 + 8 + 8
	recDedupMin = 1 + 8 + 8 + 4
	// recEndFlag is OR-ed into the record kind byte on the last record
	// of an atomic log group.
	recEndFlag = 0x80
	// MaxRecordsPerFrame bounds one TReplRecords frame; together with
	// the response-size bound it keeps frames under wire.MaxPayload.
	MaxRecordsPerFrame = 512
)

// AppendReplHello encodes a TReplHello payload: the follower's
// manifest, the stream sequence after which it wants records, and the
// identity of the log that sequence was minted against (0 when the
// follower has no history yet).
func AppendReplHello(dst []byte, m Manifest, resume, logID uint64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, m.Shards)
	dst = append(dst, m.Kind, m.Routing)
	dst = binary.LittleEndian.AppendUint32(dst, m.Order)
	dst = binary.LittleEndian.AppendUint32(dst, m.Levels)
	dst = binary.LittleEndian.AppendUint64(dst, m.Cap)
	dst = binary.LittleEndian.AppendUint32(dst, m.RankBits)
	dst = binary.LittleEndian.AppendUint64(dst, resume)
	return binary.LittleEndian.AppendUint64(dst, logID)
}

// ParseReplHello decodes a TReplHello payload.
func ParseReplHello(p []byte) (Manifest, uint64, uint64, error) {
	if len(p) != helloSize {
		return Manifest{}, 0, 0, fmt.Errorf("%w: repl hello payload %d bytes", wire.ErrBadFrame, len(p))
	}
	m := Manifest{
		Shards:   binary.LittleEndian.Uint32(p[0:4]),
		Kind:     p[4],
		Routing:  p[5],
		Order:    binary.LittleEndian.Uint32(p[6:10]),
		Levels:   binary.LittleEndian.Uint32(p[10:14]),
		Cap:      binary.LittleEndian.Uint64(p[14:22]),
		RankBits: binary.LittleEndian.Uint32(p[22:26]),
	}
	return m, binary.LittleEndian.Uint64(p[26:34]), binary.LittleEndian.Uint64(p[34:42]), nil
}

// AppendReplOK encodes a TReplOK payload: the primary's log tip plus
// its log identity, which a reattaching follower must see unchanged —
// a resume position is only meaningful against the log it was minted
// on.
func AppendReplOK(dst []byte, tip, logID uint64) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, tip)
	return binary.LittleEndian.AppendUint64(dst, logID)
}

// ParseReplOK decodes a TReplOK payload.
func ParseReplOK(p []byte) (tip, logID uint64, err error) {
	if len(p) != replOKSize {
		return 0, 0, fmt.Errorf("%w: repl ok payload %d bytes", wire.ErrBadFrame, len(p))
	}
	return binary.LittleEndian.Uint64(p[0:8]), binary.LittleEndian.Uint64(p[8:16]), nil
}

// AppendSeq encodes the u64 payload shared by TReplOK and TReplAck.
func AppendSeq(dst []byte, seq uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, seq)
}

// ParseSeq decodes a TReplOK/TReplAck payload.
func ParseSeq(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("%w: seq payload %d bytes", wire.ErrBadFrame, len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// AppendReplRecords encodes a TReplRecords payload: the stream
// sequence of the first record, then the records. It panics on more
// than MaxRecordsPerFrame records or an oversized dedup response —
// caller bugs, not input conditions.
func AppendReplRecords(dst []byte, first uint64, recs []Record) []byte {
	if len(recs) > MaxRecordsPerFrame {
		panic(fmt.Sprintf("replic: %d records exceed MaxRecordsPerFrame %d", len(recs), MaxRecordsPerFrame))
	}
	dst = binary.LittleEndian.AppendUint64(dst, first)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(recs)))
	for _, r := range recs {
		k := byte(r.Kind)
		if r.End {
			k |= recEndFlag
		}
		switch r.Kind {
		case RecOp:
			dst = append(dst, k)
			dst = binary.LittleEndian.AppendUint32(dst, r.Shard)
			dst = binary.LittleEndian.AppendUint64(dst, r.LSN)
			dst = append(dst, r.Op)
			dst = binary.LittleEndian.AppendUint64(dst, r.Value)
			dst = binary.LittleEndian.AppendUint64(dst, r.Meta)
		case RecDedup:
			if len(r.Resp) > wire.MaxPayload {
				panic(fmt.Sprintf("replic: dedup response %d bytes", len(r.Resp)))
			}
			dst = append(dst, k)
			dst = binary.LittleEndian.AppendUint64(dst, r.Session)
			dst = binary.LittleEndian.AppendUint64(dst, r.ReqID)
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Resp)))
			dst = append(dst, r.Resp...)
		default:
			panic(fmt.Sprintf("replic: record kind %d", r.Kind))
		}
	}
	return dst
}

// ParseReplRecords decodes a TReplRecords payload. Arbitrary input
// never panics; malformed payloads return wire.ErrBadFrame-wrapped
// errors.
func ParseReplRecords(p []byte) (first uint64, recs []Record, err error) {
	if len(p) < 12 {
		return 0, nil, fmt.Errorf("%w: repl records payload %d bytes", wire.ErrBadFrame, len(p))
	}
	first = binary.LittleEndian.Uint64(p[0:8])
	count := binary.LittleEndian.Uint32(p[8:12])
	if count > MaxRecordsPerFrame {
		return 0, nil, fmt.Errorf("%w: repl record count %d", wire.ErrBadFrame, count)
	}
	p = p[12:]
	recs = make([]Record, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(p) < 1 {
			return 0, nil, fmt.Errorf("%w: repl records truncated at %d", wire.ErrBadFrame, i)
		}
		end := p[0]&recEndFlag != 0
		switch RecKind(p[0] &^ recEndFlag) {
		case RecOp:
			if len(p) < recOpSize {
				return 0, nil, fmt.Errorf("%w: op record truncated at %d", wire.ErrBadFrame, i)
			}
			r := Record{
				Kind:  RecOp,
				End:   end,
				Shard: binary.LittleEndian.Uint32(p[1:5]),
				LSN:   binary.LittleEndian.Uint64(p[5:13]),
				Op:    p[13],
				Value: binary.LittleEndian.Uint64(p[14:22]),
				Meta:  binary.LittleEndian.Uint64(p[22:30]),
			}
			if r.Op != OpPush && r.Op != OpPop {
				return 0, nil, fmt.Errorf("%w: op code %d at %d", wire.ErrBadFrame, r.Op, i)
			}
			recs = append(recs, r)
			p = p[recOpSize:]
		case RecDedup:
			if len(p) < recDedupMin {
				return 0, nil, fmt.Errorf("%w: dedup record truncated at %d", wire.ErrBadFrame, i)
			}
			n := binary.LittleEndian.Uint32(p[17:21])
			if n > wire.MaxPayload || len(p) < recDedupMin+int(n) {
				return 0, nil, fmt.Errorf("%w: dedup response %d bytes at %d", wire.ErrBadFrame, n, i)
			}
			recs = append(recs, Record{
				Kind:    RecDedup,
				End:     end,
				Session: binary.LittleEndian.Uint64(p[1:9]),
				ReqID:   binary.LittleEndian.Uint64(p[9:17]),
				Resp:    append([]byte(nil), p[recDedupMin:recDedupMin+int(n)]...),
			})
			p = p[recDedupMin+int(n):]
		default:
			return 0, nil, fmt.Errorf("%w: record kind %d at %d", wire.ErrBadFrame, p[0], i)
		}
	}
	if len(p) != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes after records", wire.ErrBadFrame, len(p))
	}
	return first, recs, nil
}
