package replic

import (
	"bytes"
	"context"
	"crypto/sha256"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/wire"
)

const (
	repairShards     = 2
	repairOps        = 400
	repairChainEvery = 16
	repairChunkSize  = 256
)

// buildCheckpointNode writes a WAL-bearing checkpoint fan-out under dir:
// per shard, a seeded core-tree workload recorded through a
// persist.Manager, a mid-stream checkpoint (so the manifest seals a
// nonzero WAL prefix), then more records (so an unsealed tail follows
// the seal), then ENGINE.json binding the shard manifests. The same
// seed produces bit-identical directories — the repair tests' stand-in
// for a primary/follower pair that applied the same replicated history.
func buildCheckpointNode(t *testing.T, dir string) {
	t.Helper()
	man := engine.CheckpointManifest{
		Schema: engine.EngineManifestSchema,
		Shards: repairShards,
		Kind:   "core",
	}
	for s := 0; s < repairShards; s++ {
		tr := core.New(2, 6)
		m, err := persist.Attach(engine.ShardDir(dir, s), tr, persist.Options{
			ChunkSize: repairChunkSize,
			WAL:       persist.WALOptions{ChainEvery: repairChainEvery},
		})
		if err != nil {
			t.Fatalf("shard %d attach: %v", s, err)
		}
		rng := rand.New(rand.NewSource(int64(41 + s)))
		for i := 0; i < repairOps; i++ {
			var op persist.Op
			if tr.Len() > 0 && (rng.Intn(3) == 0 || tr.AlmostFull()) {
				e, err := tr.Pop()
				if err != nil {
					t.Fatal(err)
				}
				p, q := tr.OpStats()
				op = persist.Op{Kind: hw.Pop, Cycle: p + q, Value: e.Value, Meta: e.Meta}
			} else {
				e := core.Element{Value: uint64(rng.Intn(1000)), Meta: uint64(i)}
				if err := tr.Push(e); err != nil {
					t.Fatal(err)
				}
				p, q := tr.OpStats()
				op = persist.Op{Kind: hw.Push, Cycle: p + q, Value: e.Value, Meta: e.Meta}
			}
			if err := m.Record(op); err != nil {
				t.Fatalf("shard %d record %d: %v", s, i, err)
			}
			if i == repairOps*2/3 {
				if err := m.Checkpoint(); err != nil {
					t.Fatalf("shard %d checkpoint: %v", s, err)
				}
			}
		}
		sm := m.Manifest()
		if sm == nil {
			t.Fatalf("shard %d has no manifest after checkpoint", s)
		}
		man.ShardChecksums = append(man.ShardChecksums, sm.Checksum)
		if err := m.Close(); err != nil {
			t.Fatalf("shard %d close: %v", s, err)
		}
	}
	man.Root = engine.EngineRoot(man.ShardChecksums)
	sum, err := engine.EngineManifestChecksum(man)
	if err != nil {
		t.Fatal(err)
	}
	man.Checksum = sum
	if err := engine.WriteEngineManifest(dir, man); err != nil {
		t.Fatal(err)
	}
}

// corrupt flips one byte of the file at off (negative: from the end).
func corrupt(t *testing.T, path string, off int) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += len(b)
	}
	b[off] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func mustEqualFiles(t *testing.T, a, b string) {
	t.Helper()
	eq, err := equalFiles(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("%s differs from %s after repair", a, b)
	}
}

// assertRepaired runs the repair against an in-process peer and checks
// the fan-out verifies clean and bit-identical to the peer afterwards.
func assertRepaired(t *testing.T, local, peer string) *RepairReport {
	t.Helper()
	rep, err := RepairCheckpoint(local, LocalPeer{&FetchServer{Dir: peer}}, RepairConfig{})
	if err != nil {
		t.Fatalf("repair: %v (findings %v)", err, rep.Findings)
	}
	if !rep.Clean {
		t.Fatal("repair reported not clean")
	}
	if len(rep.Findings) == 0 {
		t.Fatal("repair found nothing — the injected corruption escaped")
	}
	for s := 0; s < repairShards; s++ {
		ls, ps := engine.ShardDir(local, s), engine.ShardDir(peer, s)
		for _, name := range []string{persist.WALName, persist.ManifestName} {
			mustEqualFiles(t, filepath.Join(ls, name), filepath.Join(ps, name))
		}
		man, err := persist.LoadManifest(nil, ls)
		if err != nil {
			t.Fatal(err)
		}
		snap := persist.SnapFileName(man.SnapshotSeq)
		mustEqualFiles(t, filepath.Join(ls, snap), filepath.Join(ps, snap))
	}
	return rep
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		out := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(out, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// newPair builds the peer node once per test and clones it into the
// local node.
func newPair(t *testing.T) (local, peer string) {
	base := t.TempDir()
	peer = filepath.Join(base, "peer")
	local = filepath.Join(base, "local")
	buildCheckpointNode(t, peer)
	copyTree(t, peer, local)
	return local, peer
}

func TestFetchCodecsRoundTrip(t *testing.T) {
	req := FetchReq{Kind: FetchSnapChunks, Shard: 3, From: 10, To: 20, Seq: 2, Chunks: []uint32{0, 5, 9}}
	got, err := ParseFetchReq(AppendFetchReq(nil, req))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != req.Kind || got.Shard != req.Shard || got.Seq != req.Seq || len(got.Chunks) != 3 {
		t.Fatalf("request round trip: %+v", got)
	}

	ops := []FetchedOp{
		{LSN: 7, Op: persist.Op{Kind: hw.Push, Cycle: 1, Value: 9, Meta: 2}},
		{LSN: 8, Op: persist.Op{Kind: hw.Pop, Cycle: 2, Value: 9, Meta: 2}},
	}
	back, err := ParseOpsResp(AppendOpsResp(nil, ops))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != ops[0] || back[1] != ops[1] {
		t.Fatalf("ops round trip: %+v", back)
	}

	chunks := []FetchedChunk{{
		Index: 4,
		Data:  bytes.Repeat([]byte{0xAB}, 256),
		Proof: [][sha256.Size]byte{sha256.Sum256([]byte("a")), sha256.Sum256([]byte("b"))},
	}}
	cback, err := ParseChunksResp(AppendChunksResp(nil, chunks))
	if err != nil {
		t.Fatal(err)
	}
	if len(cback) != 1 || cback[0].Index != 4 || !bytes.Equal(cback[0].Data, chunks[0].Data) || len(cback[0].Proof) != 2 {
		t.Fatalf("chunks round trip: %+v", cback)
	}

	raw, err := ParseRawResp(AppendRawResp(nil, FetchEngineManifest, []byte(`{"x":1}`)), FetchEngineManifest)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"x":1}` {
		t.Fatalf("raw round trip: %q", raw)
	}

	// Arbitrary garbage never panics and errors typed.
	if _, err := ParseFetchReq([]byte{0xFF, 1, 2}); err == nil {
		t.Fatal("garbage fetch request accepted")
	}
	if _, err := ParseOpsResp([]byte{FetchWALOps, 0xFF}); err == nil {
		t.Fatal("garbage ops response accepted")
	}
}

// TestRepairWALRecordRot rots a record body inside the sealed prefix:
// the repairer must fetch exactly the lost LSN range and splice the log
// back bit-identically.
func TestRepairWALRecordRot(t *testing.T) {
	local, peer := newPair(t)
	corrupt(t, filepath.Join(engine.ShardDir(local, 0), persist.WALName), 5*int(persist.RecordLen)+10)
	rep := assertRepaired(t, local, peer)
	if rep.OpsFetched == 0 {
		t.Fatal("record rot repaired without fetching any ops")
	}
}

// TestRepairWALChainPointRot rots a seal: the records around it are
// intact but unverifiable, so the repairer refetches the gap and the
// rebuilt image must reproduce the sealed head.
func TestRepairWALChainPointRot(t *testing.T) {
	local, peer := newPair(t)
	// The first chain-point sits after repairChainEvery records.
	off := repairChainEvery*int(persist.RecordLen) + 3
	corrupt(t, filepath.Join(engine.ShardDir(local, 0), persist.WALName), off)
	assertRepaired(t, local, peer)
}

// TestRepairWALTruncation cuts the log below the sealed record count.
func TestRepairWALTruncation(t *testing.T) {
	local, peer := newPair(t)
	path := filepath.Join(engine.ShardDir(local, 1), persist.WALName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	rep := assertRepaired(t, local, peer)
	if rep.OpsFetched == 0 {
		t.Fatal("truncation repaired without fetching ops")
	}
}

// TestRepairWALMissing deletes the log outright.
func TestRepairWALMissing(t *testing.T) {
	local, peer := newPair(t)
	if err := os.Remove(filepath.Join(engine.ShardDir(local, 0), persist.WALName)); err != nil {
		t.Fatal(err)
	}
	assertRepaired(t, local, peer)
}

// TestRepairSnapshotChunkRot rots bytes inside the manifest-covered
// snapshot: only the failing chunks may be fetched, each verified by
// Merkle proof against the sealed root.
func TestRepairSnapshotChunkRot(t *testing.T) {
	local, peer := newPair(t)
	sdir := engine.ShardDir(local, 1)
	man, err := persist.LoadManifest(nil, sdir)
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(sdir, persist.SnapFileName(man.SnapshotSeq))
	corrupt(t, snap, int(man.SnapshotBytes)/2)
	rep := assertRepaired(t, local, peer)
	if rep.ChunksFetched == 0 {
		t.Fatal("chunk rot repaired without fetching chunks")
	}
	if rep.ChunksFetched > 2 {
		t.Fatalf("single-byte rot fetched %d chunks, want minimal", rep.ChunksFetched)
	}
}

// TestRepairShardManifestTamper rots the shard manifest; the
// replacement must carry the checksum the engine root sealed.
func TestRepairShardManifestTamper(t *testing.T) {
	local, peer := newPair(t)
	corrupt(t, filepath.Join(engine.ShardDir(local, 0), persist.ManifestName), 40)
	rep := assertRepaired(t, local, peer)
	if rep.ManifestsFetched == 0 {
		t.Fatal("manifest tamper repaired without fetching a manifest")
	}
}

// TestRepairSwappedShardManifests swaps two individually-valid shard
// manifests — only the engine-root binding can catch this.
func TestRepairSwappedShardManifests(t *testing.T) {
	local, peer := newPair(t)
	a := filepath.Join(engine.ShardDir(local, 0), persist.ManifestName)
	b := filepath.Join(engine.ShardDir(local, 1), persist.ManifestName)
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(a, bb, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, ab, 0o644); err != nil {
		t.Fatal(err)
	}
	rep := assertRepaired(t, local, peer)
	if rep.ManifestsFetched != 2 {
		t.Fatalf("swap repaired with %d manifests fetched, want 2", rep.ManifestsFetched)
	}
}

// TestRepairEngineManifestTorn truncates ENGINE.json; the fetched
// replacement must self-verify before anything trusts it.
func TestRepairEngineManifestTorn(t *testing.T) {
	local, peer := newPair(t)
	path := filepath.Join(local, engine.EngineManifestName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	assertRepaired(t, local, peer)
	mustEqualFiles(t, path, filepath.Join(peer, engine.EngineManifestName))
}

// TestRepairRefusesUnprovablePeerData pins the trust model: a peer
// serving tampered chunks (valid framing, wrong bytes) must be caught
// by the Merkle proof check and the repair must fail without
// installing anything.
func TestRepairRefusesUnprovablePeerData(t *testing.T) {
	local, peer := newPair(t)
	sdir := engine.ShardDir(local, 0)
	man, err := persist.LoadManifest(nil, sdir)
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(sdir, persist.SnapFileName(man.SnapshotSeq))
	corrupt(t, snap, 10)
	before, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}

	evil := evilPeer{inner: LocalPeer{&FetchServer{Dir: peer}}}
	_, err = RepairCheckpoint(local, evil, RepairConfig{})
	if err == nil {
		t.Fatal("repair accepted tampered peer chunks")
	}
	after, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed repair modified the snapshot")
	}
}

// evilPeer flips a byte in every chunk payload it relays.
type evilPeer struct{ inner FetchPeer }

func (e evilPeer) Fetch(req FetchReq) ([]byte, error) {
	resp, err := e.inner.Fetch(req)
	if err != nil {
		return nil, err
	}
	if req.Kind == FetchSnapChunks {
		chunks, err := ParseChunksResp(resp)
		if err != nil {
			return nil, err
		}
		for i := range chunks {
			if len(chunks[i].Data) > 0 {
				chunks[i].Data[0] ^= 0x01
			}
		}
		return AppendChunksResp(nil, chunks), nil
	}
	return resp, nil
}

// TestRepairOverWire runs a full repair through real TReplFetch /
// TReplChunk frames against a wire.Server, and then proves the
// repaired state is behaviourally identical: both nodes' shards
// recover and drain the same element sequence.
func TestRepairOverWire(t *testing.T) {
	local, peer := newPair(t)
	eng, err := engine.New(engine.Config{Shards: 1, Order: 2, Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := wire.NewServer(eng)
	fs := &FetchServer{Dir: peer}
	srv.SetFetchHandler(fs.Handle)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	corrupt(t, filepath.Join(engine.ShardDir(local, 0), persist.WALName), 7*int(persist.RecordLen)+4)
	corrupt(t, filepath.Join(engine.ShardDir(local, 1), persist.ManifestName), 30)

	f, err := DialFetcher(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reg := obs.NewRegistry()
	rep, err := RepairCheckpoint(local, f, RepairConfig{Metrics: reg, Prefix: "repl"})
	if err != nil {
		t.Fatalf("repair over wire: %v", err)
	}
	if !rep.Clean {
		t.Fatal("repair over wire not clean")
	}
	snap := reg.Snapshot()
	if snap.Counters["repl_repair_dirs_total"] == 0 {
		t.Fatal("repair counters not exported")
	}

	drain := func(dir string) [][2]uint64 {
		var out [][2]uint64
		for s := 0; s < repairShards; s++ {
			tr := core.New(2, 6)
			m, _, err := persist.Open(engine.ShardDir(dir, s), tr, persist.Options{})
			if err != nil {
				t.Fatalf("%s shard %d open: %v", dir, s, err)
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			for tr.Len() > 0 {
				e, err := tr.Pop()
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, [2]uint64{e.Value, e.Meta})
			}
		}
		return out
	}
	got, want := drain(local), drain(peer)
	if len(got) != len(want) {
		t.Fatalf("repaired drain %d elements, peer %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("repaired drain diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}
}
