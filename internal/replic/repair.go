// Anti-entropy repair: when the scrubber (or recovery) localises bit
// rot in a checkpoint fan-out, the repairer fetches exactly the damaged
// pieces from a peer — a missing WAL LSN range, Merkle-proof-carrying
// snapshot chunks, a manifest — over the wire protocol's TReplFetch /
// TReplChunk frames, re-verifies everything against the trusted
// manifest roots, and splices the directory back to a state that passes
// persist.VerifyDir clean.
//
// Trust model: fetched bytes are never installed on the peer's word.
// A fetched WAL range is spliced into a rebuilt image whose hash chain
// must reproduce the manifest's sealed head; a fetched snapshot chunk
// must carry a Merkle proof to the manifest's sealed root; a fetched
// shard manifest must carry the self-checksum the engine manifest
// sealed. Only a fetched engine manifest bottoms out on its own
// self-checksum — it authenticates the peer's checkpoint, and the
// caller decides whether that peer is trusted (see DESIGN.md §5g).

package replic

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/wire"
)

// Fetch request kinds.
const (
	// FetchEngineManifest asks for the peer's raw ENGINE.json bytes.
	FetchEngineManifest uint8 = 1
	// FetchShardManifest asks for one shard's raw MANIFEST.json bytes.
	FetchShardManifest uint8 = 2
	// FetchWALOps asks for a shard's verified WAL records in an
	// inclusive LSN range.
	FetchWALOps uint8 = 3
	// FetchSnapChunks asks for snapshot chunks by index, each with its
	// Merkle proof against the shard manifest's sealed root.
	FetchSnapChunks uint8 = 4
)

// Fetch batching bounds, chosen so every response stays well inside
// wire.MaxPayload (ops are 33 encoded bytes; a chunk is ChunkSize plus
// a ~1 KiB proof).
const (
	MaxFetchOps    = 4096
	MaxFetchChunks = 64
)

// FetchReq is one anti-entropy read. Kind selects which fields matter.
type FetchReq struct {
	Kind   uint8
	Shard  uint32
	From   uint64 // FetchWALOps: first LSN (inclusive)
	To     uint64 // FetchWALOps: last LSN (inclusive)
	Seq    uint64 // FetchSnapChunks: snapshot sequence
	Chunks []uint32
}

// AppendFetchReq encodes a TReplFetch payload.
func AppendFetchReq(dst []byte, r FetchReq) []byte {
	var e persist.Enc
	e.B = dst
	e.U8(r.Kind)
	e.U32(r.Shard)
	e.U64(r.From)
	e.U64(r.To)
	e.U64(r.Seq)
	e.U32(uint32(len(r.Chunks)))
	for _, c := range r.Chunks {
		e.U32(c)
	}
	return e.B
}

// ParseFetchReq decodes a TReplFetch payload.
func ParseFetchReq(p []byte) (FetchReq, error) {
	d := persist.NewDec(p)
	r := FetchReq{
		Kind:  d.U8(),
		Shard: d.U32(),
		From:  d.U64(),
		To:    d.U64(),
		Seq:   d.U64(),
	}
	n := d.Len(MaxFetchChunks)
	for i := 0; i < n; i++ {
		r.Chunks = append(r.Chunks, d.U32())
	}
	if err := d.Done(); err != nil {
		return FetchReq{}, fmt.Errorf("%w: fetch request: %v", wire.ErrBadFrame, err)
	}
	if r.Kind < FetchEngineManifest || r.Kind > FetchSnapChunks {
		return FetchReq{}, fmt.Errorf("%w: fetch kind %d", wire.ErrBadFrame, r.Kind)
	}
	return r, nil
}

// FetchedOp is one WAL record shipped for splice repair.
type FetchedOp struct {
	LSN uint64
	Op  persist.Op
}

// FetchedChunk is one snapshot chunk with its Merkle proof.
type FetchedChunk struct {
	Index uint32
	Data  []byte
	Proof [][sha256.Size]byte
}

// AppendOpsResp encodes a FetchWALOps TReplChunk payload.
func AppendOpsResp(dst []byte, ops []FetchedOp) []byte {
	if len(ops) > MaxFetchOps {
		panic(fmt.Sprintf("replic: %d ops exceed MaxFetchOps", len(ops)))
	}
	var e persist.Enc
	e.B = dst
	e.U8(FetchWALOps)
	e.U32(uint32(len(ops)))
	for _, o := range ops {
		e.U64(o.LSN)
		e.U8(uint8(o.Op.Kind))
		e.U64(o.Op.Cycle)
		e.U64(o.Op.Value)
		e.U64(o.Op.Meta)
	}
	return e.B
}

// ParseOpsResp decodes a FetchWALOps TReplChunk payload.
func ParseOpsResp(p []byte) ([]FetchedOp, error) {
	d := persist.NewDec(p)
	if k := d.U8(); k != FetchWALOps {
		return nil, fmt.Errorf("%w: ops response kind %d", wire.ErrBadFrame, k)
	}
	n := d.Len(MaxFetchOps)
	ops := make([]FetchedOp, 0, n)
	for i := 0; i < n; i++ {
		o := FetchedOp{LSN: d.U64()}
		o.Op.Kind = hw.OpKind(d.U8())
		o.Op.Cycle = d.U64()
		o.Op.Value = d.U64()
		o.Op.Meta = d.U64()
		if !o.Op.Kind.Valid() || o.Op.Kind == hw.Nop {
			return nil, fmt.Errorf("%w: op kind %d at %d", wire.ErrBadFrame, o.Op.Kind, i)
		}
		ops = append(ops, o)
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("%w: ops response: %v", wire.ErrBadFrame, err)
	}
	return ops, nil
}

// AppendChunksResp encodes a FetchSnapChunks TReplChunk payload.
func AppendChunksResp(dst []byte, chunks []FetchedChunk) []byte {
	if len(chunks) > MaxFetchChunks {
		panic(fmt.Sprintf("replic: %d chunks exceed MaxFetchChunks", len(chunks)))
	}
	var e persist.Enc
	e.B = dst
	e.U8(FetchSnapChunks)
	e.U32(uint32(len(chunks)))
	for _, c := range chunks {
		e.U32(c.Index)
		e.Bytes(c.Data)
		e.U32(uint32(len(c.Proof)))
		for _, h := range c.Proof {
			e.Bytes(h[:])
		}
	}
	return e.B
}

// ParseChunksResp decodes a FetchSnapChunks TReplChunk payload.
func ParseChunksResp(p []byte) ([]FetchedChunk, error) {
	d := persist.NewDec(p)
	if k := d.U8(); k != FetchSnapChunks {
		return nil, fmt.Errorf("%w: chunks response kind %d", wire.ErrBadFrame, k)
	}
	n := d.Len(MaxFetchChunks)
	chunks := make([]FetchedChunk, 0, n)
	for i := 0; i < n; i++ {
		c := FetchedChunk{Index: d.U32(), Data: append([]byte(nil), d.Bytes()...)}
		pn := d.Len(64)
		for j := 0; j < pn; j++ {
			var h [sha256.Size]byte
			pb := d.Bytes()
			if len(pb) != sha256.Size {
				return nil, fmt.Errorf("%w: proof hash %d bytes", wire.ErrBadFrame, len(pb))
			}
			copy(h[:], pb)
			c.Proof = append(c.Proof, h)
		}
		chunks = append(chunks, c)
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("%w: chunks response: %v", wire.ErrBadFrame, err)
	}
	return chunks, nil
}

// AppendRawResp encodes a manifest-bytes TReplChunk payload.
func AppendRawResp(dst []byte, kind uint8, raw []byte) []byte {
	var e persist.Enc
	e.B = dst
	e.U8(kind)
	e.Bytes(raw)
	return e.B
}

// ParseRawResp decodes a manifest-bytes TReplChunk payload.
func ParseRawResp(p []byte, wantKind uint8) ([]byte, error) {
	d := persist.NewDec(p)
	if k := d.U8(); k != wantKind {
		return nil, fmt.Errorf("%w: raw response kind %d, want %d", wire.ErrBadFrame, k, wantKind)
	}
	raw := append([]byte(nil), d.Bytes()...)
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("%w: raw response: %v", wire.ErrBadFrame, err)
	}
	return raw, nil
}

// FetchServer answers anti-entropy fetches from a checkpoint fan-out
// directory (ENGINE.json plus shard-NNN subtrees). It serves only data
// it can itself verify: WAL records come from the verified portion of
// its own log, snapshot chunks are cut from the manifest-covered
// snapshot with proofs derived from the manifest leaves. Handle is
// wire.FetchHandler-shaped.
type FetchServer struct {
	Dir string
}

// Handle answers one fetch request.
func (s *FetchServer) Handle(payload []byte) ([]byte, error) {
	req, err := ParseFetchReq(payload)
	if err != nil {
		return nil, err
	}
	switch req.Kind {
	case FetchEngineManifest:
		raw, err := os.ReadFile(filepath.Join(s.Dir, engine.EngineManifestName))
		if err != nil {
			return nil, fmt.Errorf("replic: engine manifest: %w", err)
		}
		return AppendRawResp(nil, FetchEngineManifest, raw), nil
	case FetchShardManifest:
		raw, err := os.ReadFile(filepath.Join(engine.ShardDir(s.Dir, int(req.Shard)), persist.ManifestName))
		if err != nil {
			return nil, fmt.Errorf("replic: shard %d manifest: %w", req.Shard, err)
		}
		return AppendRawResp(nil, FetchShardManifest, raw), nil
	case FetchWALOps:
		if req.To < req.From || req.To-req.From+1 > MaxFetchOps {
			return nil, fmt.Errorf("replic: wal range %d-%d", req.From, req.To)
		}
		b, err := os.ReadFile(filepath.Join(engine.ShardDir(s.Dir, int(req.Shard)), persist.WALName))
		if err != nil {
			return nil, fmt.Errorf("replic: shard %d wal: %w", req.Shard, err)
		}
		rep := persist.VerifyWALImage(b, nil)
		var ops []FetchedOp
		for _, v := range rep.Ops {
			if v.LSN >= req.From && v.LSN <= req.To {
				ops = append(ops, FetchedOp{LSN: v.LSN, Op: v.Op})
			}
		}
		return AppendOpsResp(nil, ops), nil
	case FetchSnapChunks:
		sdir := engine.ShardDir(s.Dir, int(req.Shard))
		man, err := persist.LoadManifest(nil, sdir)
		if err != nil {
			return nil, fmt.Errorf("replic: shard %d manifest: %w", req.Shard, err)
		}
		if man.SnapshotSeq != req.Seq {
			return nil, fmt.Errorf("replic: shard %d snapshot seq %d not covered (manifest seals %d)", req.Shard, req.Seq, man.SnapshotSeq)
		}
		b, err := os.ReadFile(filepath.Join(sdir, persist.SnapFileName(req.Seq)))
		if err != nil {
			return nil, fmt.Errorf("replic: shard %d snapshot: %w", req.Shard, err)
		}
		leaves := persist.MerkleLeaves(b, man.ChunkSize)
		var chunks []FetchedChunk
		for _, i := range req.Chunks {
			if int(i) >= len(leaves) {
				return nil, fmt.Errorf("replic: chunk %d of %d", i, len(leaves))
			}
			lo := int(i) * man.ChunkSize
			hi := lo + man.ChunkSize
			if hi > len(b) {
				hi = len(b)
			}
			chunks = append(chunks, FetchedChunk{
				Index: i,
				Data:  append([]byte(nil), b[lo:hi]...),
				Proof: persist.MerkleProof(leaves, int(i)),
			})
		}
		return AppendChunksResp(nil, chunks), nil
	}
	return nil, fmt.Errorf("replic: fetch kind %d", req.Kind)
}

// FetchPeer is the transport seam the repairer pulls from: Fetcher over
// a live connection in production, a FetchServer directly in tests.
type FetchPeer interface {
	Fetch(req FetchReq) ([]byte, error)
}

// LocalPeer adapts a FetchServer into an in-process FetchPeer.
type LocalPeer struct{ S *FetchServer }

// Fetch serves the request without a wire round trip.
func (l LocalPeer) Fetch(req FetchReq) ([]byte, error) {
	return l.S.Handle(AppendFetchReq(nil, req))
}

// Fetcher is a synchronous TReplFetch client: one outstanding request
// per connection, responses matched by id.
type Fetcher struct {
	conn net.Conn
	id   uint64
}

// DialFetcher connects to a peer's wire listener for anti-entropy
// reads.
func DialFetcher(addr string, timeout time.Duration) (*Fetcher, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Fetcher{conn: conn}, nil
}

// Fetch performs one round trip.
func (f *Fetcher) Fetch(req FetchReq) ([]byte, error) {
	f.id++
	if err := wire.WriteFrame(f.conn, wire.TReplFetch, f.id, AppendFetchReq(nil, req)); err != nil {
		return nil, err
	}
	for {
		fr, err := wire.ReadFrame(f.conn)
		if err != nil {
			return nil, err
		}
		if fr.ID != f.id {
			continue // stale response from an abandoned request
		}
		switch fr.Type {
		case wire.TReplChunk:
			return append([]byte(nil), fr.Payload...), nil
		case wire.TError:
			msg := ""
			if len(fr.Payload) > 1 {
				msg = string(fr.Payload[1:])
			}
			return nil, fmt.Errorf("replic: peer refused fetch: %s", msg)
		default:
			return nil, fmt.Errorf("replic: unexpected %d frame answering fetch", fr.Type)
		}
	}
}

// Close releases the connection.
func (f *Fetcher) Close() error { return f.conn.Close() }

// RepairConfig tunes a repair run.
type RepairConfig struct {
	// Metrics receives the repl_repair_* counters under Prefix (default
	// "repl").
	Metrics *obs.Registry
	Prefix  string
	// Flight receives one FlightIntegrity event per repaired finding.
	Flight *obs.FlightRecorder
}

// RepairReport summarises one RepairCheckpoint run.
type RepairReport struct {
	// Findings are every fault VerifyDir localised before repair, in
	// shard order (engine-manifest faults carry shard -1).
	Findings []ShardFinding `json:"findings"`
	// OpsFetched / ChunksFetched / ManifestsFetched count what came
	// over the wire.
	OpsFetched       int `json:"ops_fetched"`
	ChunksFetched    int `json:"chunks_fetched"`
	ManifestsFetched int `json:"manifests_fetched"`
	// Resealed counts WAL images rebuilt purely from local verified
	// records (a rotted seal with intact ops needs no peer data).
	Resealed int `json:"resealed"`
	// Clean reports the post-repair VerifyDir outcome for every shard.
	Clean bool `json:"clean"`
}

// ShardFinding labels a persist finding with its shard.
type ShardFinding struct {
	Shard   int             `json:"shard"`
	Finding persist.Finding `json:"finding"`
}

// repairer carries the run's counters.
type repairer struct {
	cfg       RepairConfig
	peer      FetchPeer
	rep       *RepairReport
	dirs      *obs.Counter
	ops       *obs.Counter
	chunks    *obs.Counter
	manifests *obs.Counter
	failed    *obs.Counter
}

// RepairCheckpoint audits the checkpoint fan-out at dir and repairs
// every localised fault by fetching the minimal missing pieces from
// peer, verifying each against the manifest chain of trust before
// installing it. It returns the report and an error when any fault
// could not be repaired; the directory is only modified with verified
// data, so a failed repair never makes things worse.
func RepairCheckpoint(dir string, peer FetchPeer, cfg RepairConfig) (*RepairReport, error) {
	if cfg.Prefix == "" {
		cfg.Prefix = "repl"
	}
	r := &repairer{cfg: cfg, peer: peer, rep: &RepairReport{}}
	if reg := cfg.Metrics; reg != nil {
		p := cfg.Prefix
		r.dirs = reg.Counter(p + "_repair_dirs_total")
		r.ops = reg.Counter(p + "_repair_ops_fetched_total")
		r.chunks = reg.Counter(p + "_repair_chunks_fetched_total")
		r.manifests = reg.Counter(p + "_repair_manifests_fetched_total")
		r.failed = reg.Counter(p + "_repair_failed_total")
	}
	err := r.run(dir)
	if err != nil {
		r.failed.Inc()
	}
	return r.rep, err
}

func (r *repairer) flight(shard int, f persist.Finding) {
	r.rep.Findings = append(r.rep.Findings, ShardFinding{Shard: shard, Finding: f})
	if r.cfg.Flight != nil {
		r.cfg.Flight.RecordMsg(obs.FlightIntegrity, 0, "repair "+f.String(), f.FromLSN, f.ToLSN, uint64(shard))
	}
}

func (r *repairer) run(dir string) error {
	em, err := r.trustedEngineManifest(dir)
	if err != nil {
		return err
	}
	for i := 0; i < em.Shards; i++ {
		sealed := ""
		if len(em.ShardChecksums) == em.Shards {
			sealed = em.ShardChecksums[i]
		}
		if err := r.repairShard(dir, i, sealed); err != nil {
			return fmt.Errorf("replic: shard %d: %w", i, err)
		}
	}
	// Post-repair audit: the whole fan-out must verify clean.
	r.rep.Clean = true
	for i := 0; i < em.Shards; i++ {
		if v := persist.VerifyDir(nil, engine.ShardDir(dir, i)); !v.Clean() {
			r.rep.Clean = false
			return fmt.Errorf("replic: shard %d still dirty after repair: %v", i, v.Findings[0])
		}
	}
	return nil
}

// trustedEngineManifest returns a validated ENGINE.json, fetching a
// replacement from the peer when the local one is torn, rotted or
// missing.
func (r *repairer) trustedEngineManifest(dir string) (*engine.CheckpointManifest, error) {
	m, err := engine.LoadEngineManifest(dir)
	if err == nil {
		return m, nil
	}
	r.flight(-1, persist.Finding{
		Path: filepath.Join(dir, engine.EngineManifestName), Class: persist.ClassManifest, Detail: err.Error(),
	})
	raw, ferr := r.peer.Fetch(FetchReq{Kind: FetchEngineManifest})
	if ferr != nil {
		return nil, fmt.Errorf("replic: engine manifest unrepairable: %v (fetch: %w)", err, ferr)
	}
	rawBytes, ferr := ParseRawResp(raw, FetchEngineManifest)
	if ferr != nil {
		return nil, ferr
	}
	m, ferr = engine.DecodeEngineManifest("(fetched)", rawBytes)
	if ferr != nil {
		return nil, fmt.Errorf("replic: peer engine manifest invalid: %w", ferr)
	}
	if werr := os.WriteFile(filepath.Join(dir, engine.EngineManifestName), rawBytes, 0o644); werr != nil {
		return nil, werr
	}
	r.manifests.Inc()
	r.rep.ManifestsFetched++
	return m, nil
}

// trustedShardManifest returns shard i's validated MANIFEST.json,
// fetching a replacement when the local one fails its self-checksum or
// disagrees with the engine seal.
func (r *repairer) trustedShardManifest(sdir string, shard int, sealed string) (*persist.Manifest, error) {
	man, err := persist.LoadManifest(nil, sdir)
	if err == nil && (sealed == "" || man.Checksum == sealed) {
		return man, nil
	}
	detail := "disagrees with engine seal"
	if err != nil {
		detail = err.Error()
	}
	r.flight(shard, persist.Finding{
		Path: filepath.Join(sdir, persist.ManifestName), Class: persist.ClassManifest, Detail: detail,
	})
	raw, ferr := r.peer.Fetch(FetchReq{Kind: FetchShardManifest, Shard: uint32(shard)})
	if ferr != nil {
		return nil, fmt.Errorf("shard manifest unrepairable: %v (fetch: %w)", detail, ferr)
	}
	rawBytes, ferr := ParseRawResp(raw, FetchShardManifest)
	if ferr != nil {
		return nil, ferr
	}
	man, ferr = persist.DecodeManifest("(fetched)", rawBytes)
	if ferr != nil {
		return nil, fmt.Errorf("peer shard manifest invalid: %w", ferr)
	}
	if sealed != "" && man.Checksum != sealed {
		return nil, fmt.Errorf("peer shard manifest checksum %.12s not sealed by engine root (%.12s)", man.Checksum, sealed)
	}
	if werr := os.WriteFile(filepath.Join(sdir, persist.ManifestName), rawBytes, 0o644); werr != nil {
		return nil, werr
	}
	r.manifests.Inc()
	r.rep.ManifestsFetched++
	return man, nil
}

// repairShard brings one shard directory back to a clean VerifyDir.
func (r *repairer) repairShard(dir string, shard int, sealed string) error {
	sdir := engine.ShardDir(dir, shard)
	r.dirs.Inc()
	man, err := r.trustedShardManifest(sdir, shard, sealed)
	if err != nil {
		return err
	}
	if err := r.repairWAL(sdir, shard, man); err != nil {
		return err
	}
	if err := r.repairSnapshot(sdir, shard, man); err != nil {
		return err
	}
	return r.dropRottedStaleSnapshots(sdir, shard, man)
}

// repairWAL verifies the shard's log against the manifest's sealed
// chain head and, on damage, rebuilds the image: locally verified
// records are kept, missing LSN ranges are fetched from the peer, and
// the splice is only installed if its recomputed chain reproduces the
// sealed head exactly.
func (r *repairer) repairWAL(sdir string, shard int, man *persist.Manifest) error {
	expect, err := man.Head()
	if err != nil {
		return err
	}
	path := filepath.Join(sdir, persist.WALName)
	b, rerr := os.ReadFile(path)
	if rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
		return rerr
	}
	rep := persist.VerifyWALImage(b, &expect)
	if len(rep.Bad) == 0 && !rep.HeadMismatch {
		// A torn tail past the seal is crash damage, recovery's concern;
		// nothing here is rot.
		return nil
	}
	for _, bad := range rep.Bad {
		r.flight(shard, persist.Finding{
			Path: path, Class: bad.Class, Detail: bad.Detail, FromLSN: bad.FromLSN, ToLSN: bad.ToLSN,
		})
	}
	if rep.HeadMismatch || len(rep.Bad) == 0 {
		r.flight(shard, persist.Finding{
			Path: path, Class: persist.ClassWALChainPoint, Detail: "sealed head unreachable from local records",
		})
	}

	// Collect what survives locally, then fetch the gaps.
	have := map[uint64]persist.Op{}
	for _, v := range rep.Ops {
		if v.LSN <= man.WALRecords {
			have[v.LSN] = v.Op
		}
	}
	var missing []uint64
	for lsn := uint64(1); lsn <= man.WALRecords; lsn++ {
		if _, ok := have[lsn]; !ok {
			missing = append(missing, lsn)
		}
	}
	fetched := 0
	for len(missing) > 0 {
		from := missing[0]
		to := from
		for len(missing) > 0 && missing[0] == to {
			missing = missing[1:]
			to++
		}
		to--
		for lo := from; lo <= to; lo += MaxFetchOps {
			hi := lo + MaxFetchOps - 1
			if hi > to {
				hi = to
			}
			raw, err := r.peer.Fetch(FetchReq{Kind: FetchWALOps, Shard: uint32(shard), From: lo, To: hi})
			if err != nil {
				return fmt.Errorf("wal range %d-%d unrepairable: %w", lo, hi, err)
			}
			ops, err := ParseOpsResp(raw)
			if err != nil {
				return err
			}
			for _, o := range ops {
				if o.LSN >= lo && o.LSN <= hi {
					have[o.LSN] = o.Op
					fetched++
				}
			}
		}
	}

	ordered := make([]persist.Op, 0, man.WALRecords)
	for lsn := uint64(1); lsn <= man.WALRecords; lsn++ {
		op, ok := have[lsn]
		if !ok {
			return fmt.Errorf("wal LSN %d unavailable locally and from peer", lsn)
		}
		ordered = append(ordered, op)
	}
	// Keep the contiguous locally-verified tail past the seal — records
	// the manifest does not cover cannot be authenticated, but they
	// chain onto the sealed prefix, so a rebuilt image revalidates them.
	tail := 0
	for lsn := man.WALRecords + 1; ; lsn++ {
		op, ok := tailOp(rep.Ops, lsn)
		if !ok {
			break
		}
		ordered = append(ordered, op)
		tail++
	}
	// No local tail survived (whole-file truncation or deletion):
	// converge on the peer's unsealed suffix instead. Like the local
	// tail, it is trusted only transitively — it must chain onto the
	// sealed head when the rebuilt image is verified below.
	for tail == 0 {
		lo := uint64(len(ordered)) + 1
		hi := lo + MaxFetchOps - 1
		raw, err := r.peer.Fetch(FetchReq{Kind: FetchWALOps, Shard: uint32(shard), From: lo, To: hi})
		if err != nil {
			break // a peer without the range just ends the tail
		}
		ops, err := ParseOpsResp(raw)
		if err != nil {
			return err
		}
		got := 0
		for _, o := range ops {
			if o.LSN == uint64(len(ordered))+1 {
				ordered = append(ordered, o.Op)
				fetched++
				got++
			}
		}
		if got == 0 || uint64(got) < hi-lo+1 {
			break
		}
	}

	img, _ := persist.BuildWALImage(ordered, man.ChainEvery)
	check := persist.VerifyWALImage(img, &expect)
	if len(check.Bad) != 0 || check.HeadMismatch || check.TornTail {
		return fmt.Errorf("rebuilt wal image does not reproduce sealed chain head %.12s", man.ChainHead)
	}
	if err := writeFileAtomic(path, img); err != nil {
		return err
	}
	if fetched == 0 {
		r.rep.Resealed++
	}
	r.ops.Add(uint64(fetched))
	r.rep.OpsFetched += fetched
	return nil
}

// tailOp finds the op verified at lsn beyond the sealed prefix.
func tailOp(ops []persist.VerifiedOp, lsn uint64) (persist.Op, bool) {
	i := sort.Search(len(ops), func(i int) bool { return ops[i].LSN >= lsn })
	if i < len(ops) && ops[i].LSN == lsn {
		return ops[i].Op, true
	}
	return persist.Op{}, false
}

// repairSnapshot re-fetches exactly the chunks of the manifest-covered
// snapshot that fail their leaves, verifying each fetched chunk's
// Merkle proof against the sealed root before splicing it in.
func (r *repairer) repairSnapshot(sdir string, shard int, man *persist.Manifest) error {
	if man.SnapshotSeq == 0 {
		return nil
	}
	root, err := man.Root()
	if err != nil {
		return err
	}
	leaves, err := man.Leaves()
	if err != nil {
		return err
	}
	path := filepath.Join(sdir, persist.SnapFileName(man.SnapshotSeq))
	b, rerr := os.ReadFile(path)
	if rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
		return rerr
	}
	if int64(len(b)) != man.SnapshotBytes {
		nb := make([]byte, man.SnapshotBytes)
		copy(nb, b)
		b = nb
	}
	bad := persist.SnapshotBadChunks(man, b)
	if len(bad) == 0 {
		return nil
	}
	r.flight(shard, persist.Finding{
		Path: path, Class: persist.ClassSnapshotChunk, Seq: man.SnapshotSeq, Chunks: bad,
		Detail: fmt.Sprintf("%d of %d chunks fail the manifest leaves", len(bad), len(leaves)),
	})
	for lo := 0; lo < len(bad); lo += MaxFetchChunks {
		hi := lo + MaxFetchChunks
		if hi > len(bad) {
			hi = len(bad)
		}
		idx := make([]uint32, 0, hi-lo)
		for _, c := range bad[lo:hi] {
			idx = append(idx, uint32(c))
		}
		raw, err := r.peer.Fetch(FetchReq{Kind: FetchSnapChunks, Shard: uint32(shard), Seq: man.SnapshotSeq, Chunks: idx})
		if err != nil {
			return fmt.Errorf("snapshot chunks %v unrepairable: %w", idx, err)
		}
		chunks, err := ParseChunksResp(raw)
		if err != nil {
			return err
		}
		got := map[uint32]bool{}
		for _, c := range chunks {
			leaf := sha256.Sum256(append([]byte{0x00}, c.Data...))
			if !persist.VerifyMerkleProof(leaf, int(c.Index), len(leaves), c.Proof, root) {
				return fmt.Errorf("fetched chunk %d fails its Merkle proof against the sealed root", c.Index)
			}
			off := int(c.Index) * man.ChunkSize
			if off+len(c.Data) > len(b) {
				return fmt.Errorf("fetched chunk %d overruns snapshot length %d", c.Index, len(b))
			}
			copy(b[off:], c.Data)
			got[c.Index] = true
			r.chunks.Inc()
			r.rep.ChunksFetched++
		}
		for _, i := range idx {
			if !got[i] {
				return fmt.Errorf("peer did not return chunk %d", i)
			}
		}
	}
	if still := persist.SnapshotBadChunks(man, b); len(still) != 0 {
		return fmt.Errorf("snapshot chunks %v still fail after repair", still)
	}
	return writeFileAtomic(path, b)
}

// dropRottedStaleSnapshots removes fallback snapshots (sequences the
// manifest does not cover) whose envelopes fail — they cannot be
// authenticated or repaired chunk-wise, and recovery never needs them
// once the covered snapshot verifies.
func (r *repairer) dropRottedStaleSnapshots(sdir string, shard int, man *persist.Manifest) error {
	v := persist.VerifyDir(nil, sdir)
	for _, f := range v.Findings {
		if f.Class == persist.ClassSnapshotChunk && f.Seq != 0 && f.Seq != man.SnapshotSeq {
			r.flight(shard, f)
			if err := os.Remove(filepath.Join(sdir, persist.SnapFileName(f.Seq))); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeFileAtomic publishes b at path via tmp+rename.
func writeFileAtomic(path string, b []byte) error {
	tmp := path + ".repair"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// equalFiles reports whether two files hold identical bytes (test and
// harness helper for bit-identical repair assertions).
func equalFiles(a, b string) (bool, error) {
	ab, err := os.ReadFile(a)
	if err != nil {
		return false, err
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		return false, err
	}
	return bytes.Equal(ab, bb), nil
}
