package replic

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// TestReplicationTelemetry replicates a burst through an instrumented
// primary/follower pair and checks the exported gauges and counters:
// lag returns to 0 once the follower catches up, ack latency is
// observed in sync mode, records/acks count up, and the Prometheus
// text exposition carries the lag gauge.
func TestReplicationTelemetry(t *testing.T) {
	prim := startNode(t, testGeom, Config{Sync: true, SyncTimeout: 5 * time.Second})
	defer prim.stop(2 * time.Second)
	fol := startNode(t, testGeom, Config{PrimaryAddr: prim.addr})
	defer fol.stop(2 * time.Second)

	preg, freg := obs.NewRegistry(), obs.NewRegistry()
	prim.node.Instrument(preg, "repl")
	fol.node.Instrument(freg, "repl")

	waitUntil(t, "follower attached", func() bool { return fol.node.attached.Load() })

	c, err := wire.NewResilientClient(wire.ResilientOptions{Addrs: []string{prim.addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ops := make([]wire.Op, 32)
	for i := range ops {
		ops[i] = wire.Op{Kind: wire.OpPush, Value: uint64(i), Meta: uint64(i)}
	}
	for n := 0; n < 20; n++ {
		if _, err := c.Do(ops); err != nil {
			t.Fatal(err)
		}
	}

	// Sync mode: every batch waited for its ack, so the lag gauge must
	// come back to 0 once traffic stops and the ack latency histogram
	// must have fed.
	waitUntil(t, "primary lag 0", func() bool { return prim.node.Lag() == 0 })
	waitUntil(t, "follower lag 0", func() bool { return fol.node.Lag() == 0 })

	ps, fs := preg.Snapshot(), freg.Snapshot()
	if got := ps.Gauge("repl_role"); got != 0 {
		t.Errorf("primary repl_role = %v, want 0", got)
	}
	if got := fs.Gauge("repl_role"); got != 1 {
		t.Errorf("follower repl_role = %v, want 1", got)
	}
	if got := ps.Gauge("repl_followers"); got != 1 {
		t.Errorf("repl_followers = %v, want 1", got)
	}
	if got := ps.Gauge("repl_sync_mode"); got != 1 {
		t.Errorf("repl_sync_mode = %v, want 1", got)
	}
	if got := ps.Gauge("repl_degraded"); got != 0 {
		t.Errorf("repl_degraded = %v, want 0", got)
	}
	if ps.Gauge("repl_log_seq") == 0 {
		t.Error("primary repl_log_seq still 0 after traffic")
	}
	if got, want := ps.Gauge("repl_ack_seq"), ps.Gauge("repl_log_seq"); got != want {
		t.Errorf("primary ack_seq %v != log_seq %v after drain", got, want)
	}
	if ps.Quantile("repl_ack_latency_ns").Count == 0 {
		t.Error("sync mode produced no ack latency observations")
	}
	if fs.Counter("repl_records_applied_total") == 0 {
		t.Error("follower applied no records")
	}
	if ps.Counter("repl_acks_total") == 0 {
		t.Error("primary counted no acks")
	}
	if fs.Gauge("repl_heartbeat_age_seconds") <= 0 {
		t.Error("follower heartbeat age not tracked")
	}

	// The lag gauge must appear in the Prometheus text exposition — the
	// contract the CI smoke greps for.
	var buf bytes.Buffer
	if err := preg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\nrepl_lag 0\n") {
		t.Errorf("Prometheus text missing drained repl_lag gauge:\n%s", buf.String())
	}
}

// TestStructuredEventsJSON routes replication lifecycle events through
// a slog JSON logger and checks attach/detach land as structured
// records with their attributes.
func TestStructuredEventsJSON(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	lock := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	logger := slog.New(slog.NewJSONHandler(lock, nil))

	prim := startNode(t, testGeom, Config{Logger: logger})
	defer prim.stop(2 * time.Second)
	fol := startNode(t, testGeom, Config{PrimaryAddr: prim.addr, Logger: logger})
	defer fol.stop(2 * time.Second)
	waitUntil(t, "follower caught up", fol.node.Ready)
	fol.node.Promote()

	mu.Lock()
	defer mu.Unlock()
	var msgs []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		msg, _ := rec["msg"].(string)
		msgs = append(msgs, msg)
		if msg == "replic: attached to primary" && rec["addr"] != prim.addr {
			t.Errorf("attach event addr = %v, want %v", rec["addr"], prim.addr)
		}
	}
	joined := strings.Join(msgs, "|")
	for _, want := range []string{"replic: follower attached", "replic: attached to primary", "replic: promoted to primary"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing structured event %q in %q", want, joined)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
