package replic

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/wire"
)

func TestReplHelloRoundTrip(t *testing.T) {
	m := Manifest{Shards: 4, Kind: 2, Routing: 1, Order: 4, Levels: 6, Cap: 1 << 12, RankBits: 30}
	p := AppendReplHello(nil, m, 77, 0xABCDEF)
	got, resume, logID, err := ParseReplHello(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != m || resume != 77 || logID != 0xABCDEF {
		t.Fatalf("round trip: got %+v resume %d logID %x", got, resume, logID)
	}
	if _, _, _, err := ParseReplHello(p[:len(p)-1]); !errors.Is(err, wire.ErrBadFrame) {
		t.Fatalf("short hello: %v", err)
	}
}

func TestReplOKRoundTrip(t *testing.T) {
	p := AppendReplOK(nil, 123, 0xFACE)
	tip, logID, err := ParseReplOK(p)
	if err != nil {
		t.Fatal(err)
	}
	if tip != 123 || logID != 0xFACE {
		t.Fatalf("round trip: tip %d logID %x", tip, logID)
	}
	if _, _, err := ParseReplOK(p[:8]); !errors.Is(err, wire.ErrBadFrame) {
		t.Fatalf("short repl ok: %v", err)
	}
}

func TestManifestOfNormalizes(t *testing.T) {
	// Two configs differing only in unset-vs-explicit defaults must
	// yield the same manifest, or a follower started with default flags
	// could never attach to a primary started the same way.
	a := ManifestOf(engine.Config{Shards: 4})
	b := ManifestOf(engine.Config{Shards: 4}.Normalized())
	if a != b {
		t.Fatalf("manifest differs across normalization: %+v vs %+v", a, b)
	}
	if a == ManifestOf(engine.Config{Shards: 8}) {
		t.Fatal("different shard counts produced equal manifests")
	}
}

func TestReplRecordsRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: RecOp, Shard: 3, LSN: 9, Op: OpPush, Value: 42, Meta: 7},
		{Kind: RecOp, Shard: 0, LSN: 1, Op: OpPop, Value: 5, Meta: 1, End: true},
		{Kind: RecDedup, Session: 0xFEED, ReqID: 12, Resp: []byte{1, 2, 3}},
		{Kind: RecDedup, Session: 1, ReqID: 13, End: true}, // empty response
	}
	p := AppendReplRecords(nil, 100, recs)
	first, got, err := ParseReplRecords(p)
	if err != nil {
		t.Fatal(err)
	}
	if first != 100 {
		t.Fatalf("first = %d", first)
	}
	// An empty Resp decodes as empty-but-allocated; normalize.
	for i := range got {
		if len(got[i].Resp) == 0 {
			got[i].Resp = nil
		}
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("records round trip:\n got %+v\nwant %+v", got, recs)
	}

	// Heartbeat: zero records.
	first, got, err = ParseReplRecords(AppendReplRecords(nil, 5, nil))
	if err != nil || first != 5 || len(got) != 0 {
		t.Fatalf("heartbeat: first=%d recs=%v err=%v", first, got, err)
	}
}

func TestReplRecordsRejectsMalformed(t *testing.T) {
	good := AppendReplRecords(nil, 1, []Record{
		{Kind: RecOp, Shard: 1, LSN: 1, Op: OpPush, Value: 2, Meta: 3},
		{Kind: RecDedup, Session: 9, ReqID: 9, Resp: []byte("ok")},
	})
	cases := map[string][]byte{
		"empty":      {},
		"short":      good[:11],
		"truncated":  good[:len(good)-1],
		"trailing":   append(append([]byte(nil), good...), 0),
		"bad-kind":   func() []byte { b := append([]byte(nil), good...); b[12] = 99; return b }(),
		"bad-opcode": func() []byte { b := append([]byte(nil), good...); b[25] = 99; return b }(),
	}
	for name, p := range cases {
		if _, _, err := ParseReplRecords(p); !errors.Is(err, wire.ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
}

func TestLogGroupsAndReadFrom(t *testing.T) {
	l := NewLog()
	if l.Seq() != 0 {
		t.Fatalf("fresh log seq = %d", l.Seq())
	}
	tip := l.AppendGroup([]Record{
		{Kind: RecOp, Shard: 0, LSN: 1, Op: OpPush},
		{Kind: RecDedup, Session: 1, ReqID: 1},
	})
	if tip != 2 || l.Seq() != 2 {
		t.Fatalf("tip = %d seq = %d", tip, l.Seq())
	}
	recs := l.ReadFrom(0, 10)
	if len(recs) != 2 || recs[1].Kind != RecDedup {
		t.Fatalf("ReadFrom(0) = %+v", recs)
	}
	// AppendGroup stamps the group boundary: End on the last record only.
	if recs[0].End || !recs[1].End {
		t.Fatalf("group-end flags: %v/%v, want false/true", recs[0].End, recs[1].End)
	}
	if recs := l.ReadFrom(1, 1); len(recs) != 1 || recs[0].Kind != RecDedup {
		t.Fatalf("ReadFrom(1,1) = %+v", recs)
	}

	// A reader blocked at the tip is released by an append…
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if recs := l.ReadFrom(2, 10); len(recs) != 1 {
			t.Errorf("blocked ReadFrom woke with %+v", recs)
		}
	}()
	l.AppendGroup([]Record{{Kind: RecOp, Shard: 0, LSN: 2, Op: OpPop}})
	wg.Wait()

	// …and by Wake, returning empty. Wake is broadcast-only (no memory),
	// so keep waking until the reader has observed one.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if recs := l.ReadFrom(3, 10); len(recs) != 0 {
			t.Errorf("woken ReadFrom returned %+v", recs)
		}
	}()
	for {
		l.Wake()
		select {
		case <-done:
			return
		case <-time.After(time.Millisecond):
		}
	}
}

func TestChunkRecords(t *testing.T) {
	if got := chunkRecords(nil); len(got) != 1 || got[0] != nil {
		t.Fatalf("empty input: %+v", got)
	}
	recs := make([]Record, MaxRecordsPerFrame+3)
	for i := range recs {
		recs[i] = Record{Kind: RecOp, Op: OpPush, LSN: uint64(i + 1)}
	}
	chunks := chunkRecords(recs)
	if len(chunks) != 2 || len(chunks[0]) != MaxRecordsPerFrame || len(chunks[1]) != 3 {
		t.Fatalf("count split: %d chunks, sizes %d/%d", len(chunks), len(chunks[0]), len(chunks[len(chunks)-1]))
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	if total != len(recs) {
		t.Fatalf("chunks cover %d of %d records", total, len(recs))
	}

	// Size budget: a few large dedup responses split early.
	big := []Record{
		{Kind: RecDedup, Resp: make([]byte, 400<<10)},
		{Kind: RecDedup, Resp: make([]byte, 400<<10)},
	}
	if chunks := chunkRecords(big); len(chunks) != 2 {
		t.Fatalf("size split: %d chunks", len(chunks))
	}
}
