package replic

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Roles.
const (
	rolePrimary int32 = iota
	roleFollower
)

// Config parameterises a replication node.
type Config struct {
	// Engine is the geometry the engine was built with; it becomes the
	// replication manifest both sides compare.
	Engine engine.Config
	// PrimaryAddr, when nonempty, starts the node as a follower
	// streaming from that address; empty starts it as primary.
	PrimaryAddr string
	// Sync gates each dedup-enrolled response on the follower having
	// acknowledged the batch's log group — the zero-acked-op-loss mode.
	// Without it replication is asynchronous: faster, but ops acked
	// inside the replication lag are lost if the primary dies.
	Sync bool
	// SyncTimeout bounds the Sync ack wait; past it the node marks
	// itself Degraded and releases the response anyway (default 2s).
	SyncTimeout time.Duration
	// DialRetry is the follower's reconnect backoff floor (default
	// 50ms; doubles to 1s).
	DialRetry time.Duration
	// StreamTimeout bounds replication stream reads and writes on both
	// sides; heartbeats keep a healthy idle stream under it (default
	// 15s).
	StreamTimeout time.Duration
	// Logf, when set, receives diagnostic lines.
	Logf func(format string, args ...any)
	// Logger, when set, receives structured replication events (attach,
	// detach, refusal, promotion, stream errors) and takes precedence
	// over Logf.
	Logger *slog.Logger
	// Flight, when set, receives every replication state transition
	// (attach, detach, caught-up, promotion, degrade, refusal, fatal
	// stream death) as FlightReplState events.
	Flight *obs.FlightRecorder
	// OnIncident, when set, fires on the transitions worth a bundle:
	// a follower's unrecoverable stream death and the first degrade.
	// Called from replication goroutines — keep it non-blocking (e.g.
	// IncidentCapturer.CaptureAsync).
	OnIncident func(trigger, reason string)
	// OnPromote, when set, fires after a promotion completes — the node
	// is primary and serving. The cluster layer hooks it to bump its
	// map epoch and gossip the successor map so clients re-route.
	OnPromote func()
}

func (c Config) withDefaults() Config {
	if c.SyncTimeout <= 0 {
		c.SyncTimeout = 2 * time.Second
	}
	if c.DialRetry <= 0 {
		c.DialRetry = 50 * time.Millisecond
	}
	if c.StreamTimeout <= 0 {
		c.StreamTimeout = 15 * time.Second
	}
	return c
}

// heartbeatEvery is how often an idle primary sends an empty
// TReplRecords frame so the follower's stream deadline measures
// liveness, not traffic.
const heartbeatEvery = 3 * time.Second

// ackWaiter is one synchronous response blocked on the follower
// reaching seq.
type ackWaiter struct {
	seq uint64
	ch  chan struct{}
}

// grp is one wholly-received, not-yet-applied log group: the records
// at stream sequences start..end, ending with the End-flagged record.
type grp struct {
	start, end uint64
	recs       []Record
}

// newLogID mints a random nonzero log identity. Each node stamps its
// own log with one at birth; a resume position is only honoured
// against the log identity it was minted on.
func newLogID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// Node binds an engine and its wire server into a replication role. A
// primary taps executed batches into its log and serves follower
// streams; a follower holds the serving gate closed, applies the
// stream, and opens the gate on Promote. Attach installs the node's
// hooks on the server — call it before Serve.
type Node struct {
	cfg   Config
	man   Manifest
	eng   *engine.Engine
	srv   *wire.Server
	log   *Log
	logID uint64 // identity of this node's own log

	role      atomic.Int32
	degraded  atomic.Bool
	followers atomic.Int32

	// Primary-side ack state.
	amu     sync.Mutex
	ackSeq  uint64
	waiters []ackWaiter

	// Follower-side stream state.
	streamPos   atomic.Uint64 // frontier: contiguous applied stream prefix
	tipAtAttach atomic.Uint64
	attached    atomic.Bool
	caughtUp    atomic.Bool
	streamFatal atomic.Bool   // primary refused us or changed identity: stop dialing
	primLogID   atomic.Uint64 // identity of the log streamPos was minted on (0 = none yet)
	fconn       atomic.Pointer[net.Conn]

	// appliedGroups maps start → end stream sequence of every group
	// applied ahead of the frontier; the frontier advances over it and
	// deletes entries as they become contiguous. Owned by the follower
	// goroutine — no lock.
	appliedGroups map[uint64]uint64

	// Telemetry state (follower side): when the last stream frame
	// arrived (UnixNano) and the highest stream sequence received —
	// received-but-unapplied is the follower's replication lag.
	lastRecvNs atomic.Int64
	remoteSeq  atomic.Uint64

	// Instruments (nil-safe until Instrument is called).
	ackLatency    *obs.QuantileHistogram
	reorderDepth  *obs.Histogram
	recordsInc    *obs.Counter
	acksInc       *obs.Counter
	reconnectsInc *obs.Counter
	heartbeatsInc *obs.Counter

	promote     chan struct{}
	promoteOnce sync.Once
	closed      chan struct{}
	closeOnce   sync.Once
	wg          sync.WaitGroup
}

// Attach builds the node, installs its hooks on srv, and (for a
// follower) starts the streaming loop.
func Attach(eng *engine.Engine, srv *wire.Server, cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:           cfg,
		man:           ManifestOf(cfg.Engine),
		eng:           eng,
		srv:           srv,
		log:           NewLog(),
		logID:         newLogID(),
		appliedGroups: map[uint64]uint64{},
		promote:       make(chan struct{}),
		closed:        make(chan struct{}),
	}
	srv.SetBatchHook(n.onBatch)
	srv.SetAdminHandler(n.admin)
	srv.SetReplHandler(n.handleRepl)
	if cfg.PrimaryAddr != "" {
		n.role.Store(roleFollower)
		srv.SetServing(false)
		n.wg.Add(1)
		go n.runFollower()
	}
	return n
}

// Close stops the node's goroutines. It does not touch the engine or
// the server.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.closed)
		n.interruptStream()
		n.log.Wake()
	})
	n.wg.Wait()
}

// Promote opens the serving gate: a follower stops streaming, keeps
// every group it has applied (each with its dedup entry — group apply
// is all-or-nothing, and in synchronous mode the applied set covers
// every acknowledged op), and starts serving; on a primary it is a
// no-op. It returns once the node is serving.
func (n *Node) Promote() {
	n.promoteOnce.Do(func() {
		close(n.promote)
		n.interruptStream()
	})
	for !n.srv.Serving() {
		select {
		case <-n.closed:
			return
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// Role returns "primary" or "follower".
func (n *Node) Role() string {
	if n.role.Load() == rolePrimary {
		return "primary"
	}
	return "follower"
}

// Ready reports serving readiness: a primary is ready when serving; a
// follower is ready once attached to its primary and caught up to the
// log tip observed at attach.
func (n *Node) Ready() bool {
	if n.role.Load() == rolePrimary {
		return n.srv.Serving()
	}
	return n.attached.Load() && n.caughtUp.Load()
}

// Status snapshots the node for the admin frame and /readyz.
func (n *Node) Status() wire.AdminInfo {
	info := wire.AdminInfo{
		Serving:   n.srv.Serving(),
		Degraded:  n.degraded.Load(),
		Followers: uint32(n.followers.Load()),
		LogSeq:    n.log.Seq(),
	}
	if n.role.Load() == rolePrimary {
		info.Role = wire.RolePrimary
		n.amu.Lock()
		info.AckSeq = n.ackSeq
		n.amu.Unlock()
	} else {
		info.Role = wire.RoleFollower
		info.AckSeq = n.streamPos.Load()
	}
	for i := 0; i < n.eng.Shards(); i++ {
		info.ShardLSNs = append(info.ShardLSNs, n.eng.ShardLSN(i))
	}
	return info
}

// admin answers TAdmin frames.
func (n *Node) admin(cmd wire.AdminCmd) (wire.AdminInfo, error) {
	if cmd == wire.AdminPromote {
		n.Promote()
	}
	return n.Status(), nil
}

// logf emits a diagnostic line when configured.
func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// event emits one structured replication event through the slog
// handler, falling back to the printf logger with key=value rendering.
func (n *Node) event(level slog.Level, msg string, attrs ...any) {
	if n.cfg.Logger != nil {
		n.cfg.Logger.Log(context.Background(), level, msg, attrs...)
		return
	}
	if n.cfg.Logf == nil {
		return
	}
	var b strings.Builder
	b.WriteString(msg)
	for i := 0; i+1 < len(attrs); i += 2 {
		fmt.Fprintf(&b, " %v=%v", attrs[i], attrs[i+1])
	}
	n.cfg.Logf("%s", b.String())
}

// transition records one replication state change into the flight
// recorder.
func (n *Node) transition(name string, a, b uint64) {
	n.cfg.Flight.RecordMsg(obs.FlightReplState, 0, name, a, b, 0)
}

// setDegraded latches the degraded flag, recording the edge (and
// firing the incident hook) only on the first transition.
func (n *Node) setDegraded(reason string) {
	if n.degraded.Swap(true) {
		return
	}
	n.transition("degraded", 0, 0)
	if n.cfg.OnIncident != nil {
		n.cfg.OnIncident("repl_degraded", reason)
	}
}

// Lag returns the node's replication lag in log sequences. A primary
// with no attached follower reports 0 (there is nothing to lag behind);
// with followers it is the log tip minus the highest follower ack. A
// follower reports the stream sequences it knows exist (received, or
// the tip observed at attach) but has not yet applied.
func (n *Node) Lag() uint64 {
	if n.role.Load() == rolePrimary {
		if n.followers.Load() == 0 {
			return 0
		}
		tip, ack := n.log.Seq(), n.AckSeq()
		if tip <= ack {
			return 0
		}
		return tip - ack
	}
	tip := n.remoteSeq.Load()
	if t := n.tipAtAttach.Load(); t > tip {
		tip = t
	}
	pos := n.streamPos.Load()
	if tip <= pos {
		return 0
	}
	return tip - pos
}

// HeartbeatAge returns how long ago the follower last heard from its
// primary (any stream frame counts); zero on a primary or before the
// first frame.
func (n *Node) HeartbeatAge() time.Duration {
	last := n.lastRecvNs.Load()
	if last == 0 || n.role.Load() == rolePrimary {
		return 0
	}
	return time.Duration(time.Now().UnixNano() - last)
}

// Instrument registers the node's replication telemetry in reg under
// prefix: role/serving/degraded/sync-mode state gauges, log and ack
// sequence gauges, the LSN lag gauge, heartbeat age, sync-ack latency
// and reorder-buffer-depth histograms, and apply/ack/reconnect
// counters. Nil registry disables everything.
func (n *Node) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Help(prefix+"_role", "replication role: 0 primary, 1 follower")
	reg.GaugeFunc(prefix+"_role", func() float64 { return float64(n.role.Load()) })
	reg.GaugeFunc(prefix+"_serving", func() float64 { return b2f(n.srv.Serving()) })
	reg.Help(prefix+"_degraded", "1 once a sync ack timed out or the follower detached with waiters blocked")
	reg.GaugeFunc(prefix+"_degraded", func() float64 { return b2f(n.degraded.Load()) })
	reg.GaugeFunc(prefix+"_sync_mode", func() float64 { return b2f(n.cfg.Sync) })
	reg.GaugeFunc(prefix+"_followers", func() float64 { return float64(n.followers.Load()) })
	reg.GaugeFunc(prefix+"_log_seq", func() float64 { return float64(n.log.Seq()) })
	reg.Help(prefix+"_ack_seq", "primary: highest follower-acked sequence; follower: applied frontier")
	reg.GaugeFunc(prefix+"_ack_seq", func() float64 {
		if n.role.Load() == rolePrimary {
			return float64(n.AckSeq())
		}
		return float64(n.streamPos.Load())
	})
	reg.Help(prefix+"_lag", "replication lag in log sequences (0 when nothing to catch up)")
	reg.GaugeFunc(prefix+"_lag", func() float64 { return float64(n.Lag()) })
	reg.Help(prefix+"_heartbeat_age_seconds", "follower: seconds since the last stream frame from the primary")
	reg.GaugeFunc(prefix+"_heartbeat_age_seconds", func() float64 { return n.HeartbeatAge().Seconds() })
	reg.Help(prefix+"_ack_latency_ns", "sync-mode response gating: how long a response waited for its follower ack")
	n.ackLatency = reg.QuantileHistogram(prefix + "_ack_latency_ns")
	reg.Help(prefix+"_reorder_depth", "groups buffered out of LSN order after each apply pass")
	n.reorderDepth = reg.Histogram(prefix+"_reorder_depth",
		[]uint64{0, 1, 2, 4, 8, 16, 32, 64, 128})
	n.recordsInc = reg.Counter(prefix + "_records_applied_total")
	n.acksInc = reg.Counter(prefix + "_acks_total")
	n.reconnectsInc = reg.Counter(prefix + "_reconnects_total")
	n.heartbeatsInc = reg.Counter(prefix + "_heartbeats_total")
}

// b2f renders a bool as a 0/1 gauge value.
func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------
// Primary side: batch tap, sync gating, follower streams.

// onBatch is the wire server's batch tap: turn one executed request
// into an atomic log group — its successful ops' records, then (for
// enrolled sessions) the dedup record — and, in synchronous mode,
// return the ack gate for the response.
func (n *Node) onBatch(session, reqID uint64, ops []engine.Op, results []engine.Result, resp []byte) func() {
	if n.role.Load() != rolePrimary {
		return nil
	}
	group := make([]Record, 0, len(ops)+1)
	for i, r := range results {
		if r.Err != nil {
			continue
		}
		rec := Record{Kind: RecOp, Shard: uint32(r.Shard), LSN: r.LSN}
		if ops[i].Kind == engine.OpPush {
			rec.Op = OpPush
			rec.Value = ops[i].Elem.Value
			rec.Meta = ops[i].Elem.Meta
		} else {
			// A pop record carries the popped element so the follower
			// can check its own pop against it — divergence detection.
			rec.Op = OpPop
			rec.Value = r.Elem.Value
			rec.Meta = r.Elem.Meta
		}
		group = append(group, rec)
	}
	if session != 0 {
		group = append(group, Record{
			Kind:    RecDedup,
			Session: session,
			ReqID:   reqID,
			Resp:    append([]byte(nil), resp...),
		})
	}
	if len(group) == 0 {
		return nil
	}
	seq := n.log.AppendGroup(group)
	if !n.cfg.Sync || n.followers.Load() == 0 {
		return nil
	}
	return func() { n.waitAck(seq) }
}

// waitAck blocks until a follower acknowledges seq or SyncTimeout
// passes (which marks the node Degraded: the response is released
// without proof of replication).
func (n *Node) waitAck(seq uint64) {
	if n.ackLatency != nil {
		start := time.Now()
		defer func() { n.ackLatency.Observe(uint64(time.Since(start))) }()
	}
	n.amu.Lock()
	if n.ackSeq >= seq {
		n.amu.Unlock()
		return
	}
	if n.followers.Load() == 0 {
		n.amu.Unlock()
		n.degraded.Store(true)
		return
	}
	w := ackWaiter{seq: seq, ch: make(chan struct{})}
	n.waiters = append(n.waiters, w)
	n.amu.Unlock()
	t := time.NewTimer(n.cfg.SyncTimeout)
	defer t.Stop()
	select {
	case <-w.ch:
	case <-t.C:
		n.setDegraded("sync ack timeout")
	}
}

// updateAck records a follower ack and releases waiters it covers.
func (n *Node) updateAck(seq uint64) {
	n.acksInc.Inc()
	n.amu.Lock()
	if seq > n.ackSeq {
		n.ackSeq = seq
	}
	kept := n.waiters[:0]
	for _, w := range n.waiters {
		if w.seq <= n.ackSeq {
			close(w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	n.waiters = kept
	n.amu.Unlock()
}

// releaseWaiters frees every sync waiter (the follower detached; their
// acks will never come) and marks the node Degraded if any were
// blocked.
func (n *Node) releaseWaiters() {
	n.amu.Lock()
	blocked := len(n.waiters) > 0
	for _, w := range n.waiters {
		close(w.ch)
	}
	n.waiters = nil
	n.amu.Unlock()
	if blocked {
		n.setDegraded("follower detached with sync waiters blocked")
	}
}

// AckSeq returns the highest follower-acknowledged log sequence.
func (n *Node) AckSeq() uint64 {
	n.amu.Lock()
	defer n.amu.Unlock()
	return n.ackSeq
}

// LogSeq returns the log tip sequence.
func (n *Node) LogSeq() uint64 { return n.log.Seq() }

// handleRepl owns one follower stream: manifest check, then records
// out / acks in until either side dies.
func (n *Node) handleRepl(conn net.Conn, hello wire.Frame) {
	fail := func(msg string) {
		payload := append([]byte{byte(wire.StatusInvalid)}, msg...)
		conn.SetWriteDeadline(time.Now().Add(n.cfg.StreamTimeout))
		wire.WriteFrame(conn, wire.TError, hello.ID, payload)
	}
	m, resume, helloLogID, err := ParseReplHello(hello.Payload)
	if err != nil {
		fail(err.Error())
		return
	}
	if m != n.man {
		n.transition("refused", 0, 0)
		n.event(slog.LevelWarn, "replic: refusing follower",
			"reason", "manifest mismatch",
			"follower", fmt.Sprintf("%+v", m), "primary", fmt.Sprintf("%+v", n.man))
		fail(fmt.Sprintf("manifest mismatch: follower %+v, primary %+v", m, n.man))
		return
	}
	// A resume position numbers a prefix of one specific log. A promoted
	// follower rebuilds its log in apply order, so its numbering differs
	// from the dead primary's; honouring a foreign resume would stream
	// records whose sequences mean different things and corrupt the
	// follower's frontier and dedup bookkeeping.
	if resume > 0 && helloLogID != n.logID {
		n.transition("refused", resume, 0)
		n.event(slog.LevelWarn, "replic: refusing follower",
			"reason", "log identity mismatch",
			"resume", resume, "follower_log", fmt.Sprintf("%x", helloLogID),
			"primary_log", fmt.Sprintf("%x", n.logID))
		fail(fmt.Sprintf("resume %d minted against log %x, this log is %x", resume, helloLogID, n.logID))
		return
	}
	if tip := n.log.Seq(); resume > tip {
		fail(fmt.Sprintf("resume %d beyond log tip %d", resume, tip))
		return
	}
	conn.SetWriteDeadline(time.Now().Add(n.cfg.StreamTimeout))
	if err := wire.WriteFrame(conn, wire.TReplOK, hello.ID, AppendReplOK(nil, n.log.Seq(), n.logID)); err != nil {
		return
	}
	n.transition("follower_attached", resume, n.log.Seq())
	n.event(slog.LevelInfo, "replic: follower attached", "seq", resume)
	n.followers.Add(1)
	defer func() {
		if n.followers.Add(-1) == 0 {
			n.releaseWaiters()
		}
		n.transition("follower_detached", 0, 0)
		n.event(slog.LevelInfo, "replic: follower detached")
	}()

	var stop atomic.Bool
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() { // ack reader: the follower's only frames are TReplAck
		defer rwg.Done()
		for {
			f, err := wire.ReadFrame(conn)
			if err != nil {
				stop.Store(true)
				n.log.Wake()
				return
			}
			if f.Type == wire.TReplAck {
				if seq, err := ParseSeq(f.Payload); err == nil {
					n.updateAck(seq)
				}
			}
		}
	}()
	rwg.Add(1)
	hbStop := make(chan struct{})
	go func() { // heartbeat ticker: wake the sender so idle streams stay live
		defer rwg.Done()
		t := time.NewTicker(heartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				n.log.Wake()
			case <-hbStop:
				return
			}
		}
	}()

	next := resume
	lastSent := time.Now()
	for !stop.Load() {
		select {
		case <-n.closed:
			stop.Store(true)
		default:
		}
		if stop.Load() {
			break
		}
		recs := n.log.ReadFrom(next, MaxRecordsPerFrame)
		if len(recs) == 0 {
			// Woken with nothing new: heartbeat if it has been a while.
			if time.Since(lastSent) < heartbeatEvery {
				continue
			}
		}
		ok := true
		for _, chunk := range chunkRecords(recs) {
			payload := AppendReplRecords(nil, next+1, chunk)
			conn.SetWriteDeadline(time.Now().Add(n.cfg.StreamTimeout))
			if err := wire.WriteFrame(conn, wire.TReplRecords, 0, payload); err != nil {
				ok = false
				break
			}
			next += uint64(len(chunk))
			lastSent = time.Now()
		}
		if !ok {
			break
		}
	}
	close(hbStop)
	conn.Close()
	rwg.Wait()
}

// chunkRecords splits records into frame-sized chunks: bounded count
// and bounded encoded size (dedup responses can be large). An empty
// input yields one empty chunk — the heartbeat frame.
func chunkRecords(recs []Record) [][]Record {
	if len(recs) == 0 {
		return [][]Record{nil}
	}
	const sizeBudget = 512 << 10
	var chunks [][]Record
	start, size := 0, 0
	for i, r := range recs {
		sz := recOpSize
		if r.Kind == RecDedup {
			sz = recDedupMin + len(r.Resp)
		}
		if i > start && (size+sz > sizeBudget || i-start >= MaxRecordsPerFrame) {
			chunks = append(chunks, recs[start:i])
			start, size = i, 0
		}
		size += sz
	}
	return append(chunks, recs[start:])
}

// ---------------------------------------------------------------------
// Follower side: dial, apply, ack, promote.

// interruptStream closes the follower's current stream connection so a
// blocked read returns.
func (n *Node) interruptStream() {
	if c := n.fconn.Load(); c != nil {
		(*c).Close()
	}
}

// runFollower keeps a stream to the primary until promotion or close,
// reconnecting with capped backoff.
func (n *Node) runFollower() {
	defer n.wg.Done()
	delay := n.cfg.DialRetry
	for {
		select {
		case <-n.promote:
			n.finishPromotion()
			return
		case <-n.closed:
			return
		default:
		}
		err := n.streamOnce()
		select {
		case <-n.promote:
			n.finishPromotion()
			return
		case <-n.closed:
			return
		default:
		}
		if n.streamFatal.Load() {
			// The primary refused us or is a different log than the one
			// our state was built from. Redialing cannot help; hold the
			// applied state and wait for an operator decision.
			n.transition("stream_fatal", n.streamPos.Load(), 0)
			n.event(slog.LevelError, "replic: stream unrecoverable", "err", err)
			if n.cfg.OnIncident != nil {
				n.cfg.OnIncident("repl_fatal", fmt.Sprint(err))
			}
			n.setDegraded("unrecoverable replication stream")
			select {
			case <-n.promote:
				n.finishPromotion()
			case <-n.closed:
			}
			return
		}
		if err != nil {
			n.event(slog.LevelWarn, "replic: stream ended", "err", err)
			n.reconnectsInc.Inc()
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-n.promote:
			case <-n.closed:
			}
			t.Stop()
			if delay *= 2; delay > time.Second {
				delay = time.Second
			}
		} else {
			delay = n.cfg.DialRetry
		}
	}
}

// finishPromotion turns the follower into the serving primary. The
// engine holds exactly the applied groups: each landed all-or-nothing
// with its dedup entry installed, so a client whose ack never arrived
// retries and is answered from the dedup cache — not re-executed.
// Groups received but not yet applied left zero engine trace, so their
// clients' retries re-execute freshly. Either way, no acknowledged op
// is lost and none is applied twice.
func (n *Node) finishPromotion() {
	n.role.Store(rolePrimary)
	n.attached.Store(false)
	n.srv.SetServing(true)
	n.transition("promoted", n.streamPos.Load(), n.log.Seq())
	n.event(slog.LevelInfo, "replic: promoted to primary",
		"stream_seq", n.streamPos.Load(), "log_seq", n.log.Seq())
	if n.cfg.OnPromote != nil {
		n.cfg.OnPromote()
	}
}

// streamOnce runs one attach-stream-apply session against the primary.
func (n *Node) streamOnce() error {
	d := net.Dialer{Timeout: n.cfg.StreamTimeout}
	conn, err := d.Dial("tcp", n.cfg.PrimaryAddr)
	if err != nil {
		return err
	}
	n.fconn.Store(&conn)
	defer func() {
		n.fconn.Store(nil)
		conn.Close()
		n.attached.Store(false)
	}()

	resume := n.streamPos.Load()
	conn.SetDeadline(time.Now().Add(n.cfg.StreamTimeout))
	if err := wire.WriteFrame(conn, wire.TReplHello, 1, AppendReplHello(nil, n.man, resume, n.primLogID.Load())); err != nil {
		return err
	}
	f, err := wire.ReadFrame(conn)
	if err != nil {
		return err
	}
	switch f.Type {
	case wire.TReplOK:
	case wire.TError:
		// An explicit refusal is permanent: the primary compared our
		// manifest and log identity and said no. Redialing would loop.
		n.streamFatal.Store(true)
		return fmt.Errorf("replic: primary refused stream: %s", errString(f.Payload))
	default:
		return fmt.Errorf("replic: attach got frame type %d", f.Type)
	}
	tip, logID, err := ParseReplOK(f.Payload)
	if err != nil {
		return err
	}
	if want := n.primLogID.Load(); want != 0 && want != logID {
		// Same address, different log (a promoted or restarted node).
		// Our engine state was built from the old log; applying this one
		// on top would silently diverge.
		n.streamFatal.Store(true)
		return fmt.Errorf("replic: primary log identity changed %x -> %x", want, logID)
	}
	n.primLogID.Store(logID)
	conn.SetWriteDeadline(time.Time{})
	n.tipAtAttach.Store(tip)
	if resume >= tip && !n.caughtUp.Swap(true) {
		n.transition("caught_up", resume, tip)
	}
	n.attached.Store(true)
	n.transition("attached", resume, tip)
	n.event(slog.LevelInfo, "replic: attached to primary",
		"addr", n.cfg.PrimaryAddr, "seq", resume, "tip", tip)

	// Per-attach reassembly state. Frames deliver records in log order
	// but can split a group; pending accumulates the tail group until
	// its End record arrives, and buffered holds wholly-received groups
	// until applyReady finds them LSN-reachable.
	var (
		pending      []Record
		pendingStart uint64
		buffered     []grp
	)
	recvSeq := resume

	for {
		conn.SetReadDeadline(time.Now().Add(n.cfg.StreamTimeout))
		f, err := wire.ReadFrame(conn)
		if err != nil {
			return err
		}
		n.lastRecvNs.Store(time.Now().UnixNano())
		if f.Type != wire.TReplRecords {
			return fmt.Errorf("replic: stream got frame type %d", f.Type)
		}
		first, recs, err := ParseReplRecords(f.Payload)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			n.heartbeatsInc.Inc()
			continue // heartbeat
		}
		if first != recvSeq+1 {
			return fmt.Errorf("replic: stream gap: got seq %d, want %d", first, recvSeq+1)
		}
		for i := range recs {
			seq := first + uint64(i)
			if len(pending) == 0 {
				pendingStart = seq
			}
			pending = append(pending, recs[i])
			if !recs[i].End {
				continue
			}
			g := grp{start: pendingStart, end: seq, recs: pending}
			pending = nil
			// A stream that died and resumed at the frontier re-sends
			// groups already applied ahead of it — skip those; their
			// frontier bookkeeping is still in appliedGroups.
			if _, done := n.appliedGroups[g.start]; done || g.end <= n.streamPos.Load() {
				continue
			}
			buffered = append(buffered, g)
		}
		recvSeq = first + uint64(len(recs)) - 1
		n.remoteSeq.Store(recvSeq)

		if buffered, err = n.applyReady(buffered); err != nil {
			return err
		}

		// Advance the frontier over contiguously applied groups, then
		// acknowledge it: an ack covers only groups whose ops and dedup
		// entries have fully landed.
		fr := n.streamPos.Load()
		for {
			end, ok := n.appliedGroups[fr+1]
			if !ok {
				break
			}
			delete(n.appliedGroups, fr+1)
			fr = end
		}
		if fr != n.streamPos.Load() {
			n.streamPos.Store(fr)
			conn.SetWriteDeadline(time.Now().Add(n.cfg.StreamTimeout))
			if err := wire.WriteFrame(conn, wire.TReplAck, 0, AppendSeq(nil, fr)); err != nil {
				return err
			}
		}
		if fr >= n.tipAtAttach.Load() && !n.caughtUp.Swap(true) {
			n.transition("caught_up", fr, n.tipAtAttach.Load())
		}
	}
}

// applyReady applies every buffered group that is LSN-reachable and
// returns the rest. Stream order can invert per-shard LSN order across
// groups (concurrent batches append in completion order) — even
// mutually, as in group A carrying shard-1 LSN 5 with shard-2 LSN 1
// while group B carries shard-1 LSN 4 with shard-2 LSN 2 — so judging
// one group at a time would deadlock. Instead start from the whole
// buffer and iteratively drop any group with an op not reachable from
// the engine's applied LSNs through the ops of the groups that remain;
// the fixpoint is the largest set applyable together.
//
// Each surviving group lands whole: its ops (per shard, in LSN order),
// then its log append and dedup install as one unit. Engine state, own
// log, and dedup cache therefore always agree at group granularity —
// the invariant promotion relies on.
func (n *Node) applyReady(buffered []grp) ([]grp, error) {
	if len(buffered) == 0 {
		return buffered, nil
	}
	applied := make(map[uint32]uint64)
	lsnOf := func(shard uint32) uint64 {
		l, ok := applied[shard]
		if !ok {
			l = n.eng.ShardLSN(int(shard))
			applied[shard] = l
		}
		return l
	}
	ready := make([]bool, len(buffered))
	for i := range ready {
		ready[i] = true
	}
	for {
		// LSNs the current candidate set offers, per shard.
		offer := map[uint32]map[uint64]bool{}
		for i, g := range buffered {
			if !ready[i] {
				continue
			}
			for _, r := range g.recs {
				if r.Kind != RecOp {
					continue
				}
				if offer[r.Shard] == nil {
					offer[r.Shard] = map[uint64]bool{}
				}
				offer[r.Shard][r.LSN] = true
			}
		}
		// Extend each shard's applied chain as far as the offers reach.
		reach := map[uint32]uint64{}
		for shard, set := range offer {
			l := lsnOf(shard)
			for set[l+1] {
				l++
			}
			reach[shard] = l
		}
		changed := false
		for i, g := range buffered {
			if !ready[i] {
				continue
			}
			for _, r := range g.recs {
				if r.Kind == RecOp && r.LSN > reach[r.Shard] {
					ready[i] = false
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	// Apply the ready set's ops per shard in LSN order. An op at or
	// below the applied frontier is a replay of a group whose apply a
	// stream death cut short — skip it; the group still completes now.
	var toApply []Record
	for i, g := range buffered {
		if !ready[i] {
			continue
		}
		for _, r := range g.recs {
			if r.Kind == RecOp && r.LSN > lsnOf(r.Shard) {
				toApply = append(toApply, r)
			}
		}
	}
	sort.Slice(toApply, func(a, b int) bool {
		if toApply[a].Shard != toApply[b].Shard {
			return toApply[a].Shard < toApply[b].Shard
		}
		return toApply[a].LSN < toApply[b].LSN
	})
	for _, r := range toApply {
		if err := n.applyOne(r); err != nil {
			return nil, err
		}
	}
	n.recordsInc.Add(uint64(len(toApply)))
	// Every ready group is now fully in the engine: log it, install its
	// dedup entry, and record it for frontier advance.
	rest := buffered[:0]
	for i, g := range buffered {
		if !ready[i] {
			rest = append(rest, g)
			continue
		}
		n.log.AppendGroup(g.recs)
		for _, r := range g.recs {
			if r.Kind == RecDedup {
				n.srv.InstallDedup(r.Session, r.ReqID, r.Resp)
			}
		}
		n.appliedGroups[g.start] = g.end
	}
	n.reorderDepth.Observe(uint64(len(rest)))
	return rest, nil
}

// applyOne applies one op record to the follower's engine and checks
// the result against the primary's: same LSN, and for pops the same
// element. Any mismatch is divergence — fatal for the stream.
func (n *Node) applyOne(rec Record) error {
	var ops [1]engine.Op
	if rec.Op == OpPush {
		ops[0] = engine.PushOp(core.Element{Value: rec.Value, Meta: rec.Meta})
	} else {
		ops[0] = engine.PopOp()
	}
	var res [1]engine.Result
	if err := n.eng.ApplyReplica(int(rec.Shard), ops[:], res[:]); err != nil {
		return err
	}
	r := res[0]
	if r.Err != nil {
		return fmt.Errorf("replic: apply shard %d lsn %d: %w", rec.Shard, rec.LSN, r.Err)
	}
	if r.LSN != rec.LSN {
		return fmt.Errorf("replic: shard %d applied lsn %d, primary says %d", rec.Shard, r.LSN, rec.LSN)
	}
	if rec.Op == OpPop && (r.Elem.Value != rec.Value || r.Elem.Meta != rec.Meta) {
		return fmt.Errorf("replic: divergence: shard %d lsn %d popped (%d,%d), primary popped (%d,%d)",
			rec.Shard, rec.LSN, r.Elem.Value, r.Elem.Meta, rec.Value, rec.Meta)
	}
	return nil
}

// errString decodes a TError payload's message.
func errString(p []byte) string {
	if len(p) <= 1 {
		return "unknown error"
	}
	return string(p[1:])
}
