package rtl

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/rbmw"
	"repro/internal/treecheck"
)

// TestNetlistShape: the structural claim of Section 3.3 — the tree is
// (m^l-1)/(m-1) identical modules wired only parent-to-child.
func TestNetlistShape(t *testing.T) {
	tr := New(2, 4)
	if len(tr.modules) != 15 {
		t.Fatalf("modules = %d, want 15", len(tr.modules))
	}
	// Leaf modules have no children wired.
	for i := 7; i < 15; i++ {
		for _, c := range tr.modules[i].children {
			if c != nil {
				t.Fatal("leaf module has a child wire")
			}
		}
	}
	// Every non-root module is the child of exactly one parent.
	seen := map[*Module]int{}
	for _, m := range tr.modules {
		for _, c := range m.children {
			if c != nil {
				seen[c]++
			}
		}
	}
	for i, m := range tr.modules[1:] {
		if seen[m] != 1 {
			t.Fatalf("module %d has %d parents", i+1, seen[m])
		}
	}
}

// TestLockstepWithWaveSimulator drives the structural netlist and the
// behavioural wave simulator with the same cycle-by-cycle signals and
// requires identical pop results at identical cycles — the two
// descriptions of the hardware must be indistinguishable.
func TestLockstepWithWaveSimulator(t *testing.T) {
	shapes := []struct{ m, l int }{{2, 3}, {2, 6}, {3, 4}, {4, 4}, {8, 3}}
	for si, shape := range shapes {
		netlist := New(shape.m, shape.l)
		wave := rbmw.New(shape.m, shape.l)
		golden := core.New(shape.m, shape.l)
		rng := rand.New(rand.NewSource(int64(si + 1)))
		for i := 0; i < 4000; i++ {
			var op hw.Op
			switch {
			case golden.Len() == 0:
				op = hw.PushOp(uint64(rng.Intn(256)), uint64(i))
			case !netlist.PopAvailable():
				if rng.Intn(2) == 0 && !golden.AlmostFull() {
					op = hw.PushOp(uint64(rng.Intn(256)), uint64(i))
				} else {
					op = hw.NopOp()
				}
			case golden.AlmostFull():
				op = hw.PopOp()
			default:
				switch rng.Intn(4) {
				case 0:
					op = hw.NopOp()
				case 1, 2:
					op = hw.PushOp(uint64(rng.Intn(256)), uint64(i))
				default:
					op = hw.PopOp()
				}
			}
			if netlist.PopAvailable() != wave.PopAvailable() {
				t.Fatalf("shape %v op %d: availability skew", shape, i)
			}
			rN, errN := netlist.Tick(op)
			rW, errW := wave.Tick(op)
			if (errN == nil) != (errW == nil) {
				t.Fatalf("shape %v op %d: error skew %v vs %v", shape, i, errN, errW)
			}
			if errN != nil {
				continue
			}
			switch op.Kind {
			case hw.Push:
				golden.Push(core.Element{Value: op.Value, Meta: op.Meta})
			case hw.Pop:
				want, _ := golden.Pop()
				if rN == nil || rW == nil || *rN != *rW || *rN != want {
					t.Fatalf("shape %v op %d: netlist %v wave %v golden %v", shape, i, rN, rW, want)
				}
			}
			if netlist.Cycle() != wave.Cycle() {
				t.Fatalf("cycle skew: %d vs %d", netlist.Cycle(), wave.Cycle())
			}
		}
		// Settle and compare architectural state via the shared checker.
		for !netlist.Quiescent() {
			netlist.Tick(hw.NopOp())
		}
		if err := treecheck.Check(netlist); err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
	}
}

// TestSustainedTransferAtPinLevel reproduces Figure 4's timing at the
// pin level: in the cycle a pop is issued, o_pop_result carries the
// minimum and the selected child's o_pop line rises for the next
// cycle.
func TestSustainedTransferAtPinLevel(t *testing.T) {
	tr := New(2, 3)
	for _, v := range []uint64{10, 17, 57, 21, 32, 43, 74, 33} {
		if _, err := tr.Tick(hw.PushOp(v, v)); err != nil {
			t.Fatal(err)
		}
	}
	for !tr.Quiescent() {
		tr.Tick(hw.NopOp())
	}
	r, err := tr.Tick(hw.PopOp())
	if err != nil || r.Value != 10 {
		t.Fatalf("o_pop_result = %v, %v", r, err)
	}
	// The root raised o_pop to exactly one child, whose i_pop register
	// is now set.
	popped := 0
	for _, c := range tr.root.children {
		if c.inPop {
			popped++
		}
	}
	if popped != 1 {
		t.Fatalf("o_pop raised to %d children, want 1", popped)
	}
	// Sustained transfer: the root keeps reporting its (new) minimum on
	// o_pop_data without any pop signal.
	tr.Tick(hw.NopOp())
	if tr.root.outPopEmpty || tr.root.outPopData.Val != 17 {
		t.Fatalf("o_pop_data = %+v, want sustained report of 17", tr.root.outPopData)
	}
}

func TestErrorsAndHandshake(t *testing.T) {
	tr := New(2, 2)
	if _, err := tr.Tick(hw.PopOp()); err != core.ErrEmpty {
		t.Fatalf("pop empty = %v", err)
	}
	for i := 0; i < tr.Cap(); i++ {
		if _, err := tr.Tick(hw.PushOp(uint64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Tick(hw.PushOp(9, 0)); err != core.ErrFull {
		t.Fatalf("push full = %v", err)
	}
	tr.Tick(hw.PopOp())
	if tr.PopAvailable() {
		t.Fatal("pop_available after pop")
	}
	if _, err := tr.Tick(hw.PopOp()); err == nil {
		t.Fatal("pop-pop accepted")
	}
}
