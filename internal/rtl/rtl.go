// Package rtl is a structural, signal-level simulation of the R-BMW
// modular building block of Figure 3 in the paper. Where internal/rbmw
// simulates the pipeline's behaviour with operation waves, this package
// reproduces the paper's *hardware decomposition*: every node is an
// identical module with the exact pin list of Section 4.1
// (i_push/i_pop, i_push_data/i_pop_data, o_push/o_pop one-hot enables,
// o_push_data/o_pop_data, o_pop_result on the root), wired only to its
// parent and children, evaluated in a two-phase combinational/commit
// cycle like synthesisable RTL:
//
//   - phase 1 (combinational, node-local): each module applies its
//     registered i_push to a shadow copy of pifo_data and drives
//     o_pop_data with the shadow minimum — the sustained transfer of
//     Section 4.2.2, where the reported minimum reflects an in-flight
//     push but never an in-flight pop;
//   - phase 2 (combinational, parent-to-child wires only): each module
//     with i_pop asserted selects its minimum slot, grafts the child's
//     o_pop_data bus (i_pop_data is M elements wide after the
//     sustained-transfer modification), and raises o_pop for that
//     child;
//   - commit (rising edge): shadow state becomes architectural state,
//     o_push/o_pop signals latch into the children's i_push/i_pop
//     registers.
//
// The package tests prove this structural netlist is cycle-for-cycle
// identical to the behavioural wave simulator and the golden software
// tree — the modularity claim of Section 3.3 ("trees of various sizes
// can be elegantly constructed by duplicating the node and connecting
// them") executed literally.
package rtl

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
)

// Elem is one pifo_data entry carried on the data buses: priority,
// metadata and the sub-tree counter.
type Elem struct {
	Val   uint64
	Meta  uint64
	Count uint32
}

// Module is one building block (Figure 3). All fields prefixed in/out
// mirror the pin list; in* are registers latched at the previous
// rising edge, out* are combinational outputs valid during the current
// cycle.
type Module struct {
	m int

	// Architectural state: pifo_data.
	state []Elem

	// Registered inputs.
	inPush     bool
	inPushData Elem
	inPop      bool

	// Combinational outputs (valid after Eval phases).
	outPopData  Elem // sustained-transfer minimum report to the parent
	outPopEmpty bool // no element to report
	outPush     int  // child index receiving a push next cycle (-1 none)
	outPushData Elem
	outPop      int // child index receiving a pop next cycle (-1 none)

	// shadow is the post-push state computed in phase 1.
	shadow []Elem

	children []*Module // nil entries below the last level
}

// newModule builds one block of order m.
func newModule(m int) *Module {
	return &Module{
		m:        m,
		state:    make([]Elem, m),
		shadow:   make([]Elem, m),
		children: make([]*Module, m),
		outPush:  -1,
		outPop:   -1,
	}
}

// evalPush is phase 1: apply the registered i_push node-locally and
// drive o_pop_data from the shadow (post-push) state.
func (n *Module) evalPush() {
	copy(n.shadow, n.state)
	n.outPush = -1
	n.outPop = -1
	if n.inPush {
		placed := false
		for i := 0; i < n.m; i++ {
			if n.shadow[i].Count == 0 {
				n.shadow[i] = Elem{Val: n.inPushData.Val, Meta: n.inPushData.Meta, Count: 1}
				placed = true
				break
			}
		}
		if !placed {
			// min_sub_tree: least-loaded child, leftmost on ties.
			min := 0
			for i := 1; i < n.m; i++ {
				if n.shadow[i].Count < n.shadow[min].Count {
					min = i
				}
			}
			n.shadow[min].Count++
			push := n.inPushData
			if push.Val < n.shadow[min].Val {
				push.Val, n.shadow[min].Val = n.shadow[min].Val, push.Val
				push.Meta, n.shadow[min].Meta = n.shadow[min].Meta, push.Meta
			}
			if n.children[min] == nil {
				panic("rtl: push descended past the last level")
			}
			n.outPush = min
			n.outPushData = push
		}
	}
	// Sustained transfer: continuously report the (post-push) minimum.
	j := n.minShadowSlot()
	if j < 0 {
		n.outPopEmpty = true
	} else {
		n.outPopEmpty = false
		n.outPopData = n.shadow[j]
	}
}

// evalPop is phase 2: consume i_pop using the children's o_pop_data
// buses (i_pop_data), mutating the shadow and raising o_pop.
func (n *Module) evalPop() (result Elem, valid bool) {
	if !n.inPop {
		return Elem{}, false
	}
	j := n.minShadowSlot()
	if j < 0 {
		panic("rtl: i_pop asserted on an empty node")
	}
	result = n.shadow[j]
	n.shadow[j].Count--
	if n.shadow[j].Count == 0 {
		n.shadow[j] = Elem{}
		return result, true
	}
	child := n.children[j]
	if child == nil || child.outPopEmpty {
		panic("rtl: counter promises a child element that is not reported")
	}
	// Graft the child's sustained minimum; its counter stays local.
	n.shadow[j].Val = child.outPopData.Val
	n.shadow[j].Meta = child.outPopData.Meta
	n.outPop = j
	return result, true
}

// minShadowSlot returns the leftmost minimum occupied shadow slot.
func (n *Module) minShadowSlot() int {
	min := -1
	for i := 0; i < n.m; i++ {
		if n.shadow[i].Count == 0 {
			continue
		}
		if min < 0 || n.shadow[i].Val < n.shadow[min].Val {
			min = i
		}
	}
	return min
}

// commitState is the first half of the rising edge: shadow state
// becomes architectural and the module's own input registers clear.
// Signal routing happens afterwards in route, for every module, so
// that a child's clear cannot wipe a flag its parent just latched.
func (n *Module) commitState() {
	copy(n.state, n.shadow)
	n.inPush = false
	n.inPop = false
}

// route is the second half of the rising edge: outbound signals latch
// into the children's input registers.
func (n *Module) route() {
	if n.outPush >= 0 {
		c := n.children[n.outPush]
		c.inPush = true
		c.inPushData = n.outPushData
	}
	if n.outPop >= 0 {
		n.children[n.outPop].inPop = true
	}
}

// Tree is the netlist: (m^l-1)/(m-1) identical modules connected
// parent-to-child, plus the external interface of the root.
type Tree struct {
	m, l     int
	modules  []*Module
	root     *Module
	size     int
	capacity int
	cycle    uint64

	popCooldown int
}

// New builds and wires the netlist for an order-m, l-level tree.
func New(m, l int) *Tree {
	nn := core.NumNodes(m, l)
	mods := make([]*Module, nn)
	for i := range mods {
		mods[i] = newModule(m)
	}
	for i := range mods {
		for k := 0; k < m; k++ {
			ci := i*m + k + 1
			if ci < nn {
				mods[i].children[k] = mods[ci]
			}
		}
	}
	return &Tree{
		m:        m,
		l:        l,
		modules:  mods,
		root:     mods[0],
		capacity: nn * m,
	}
}

// Order, Levels, Len, Cap, Cycle, AlmostFull mirror the behavioural
// simulator's accessors.
func (t *Tree) Order() int       { return t.m }
func (t *Tree) Levels() int      { return t.l }
func (t *Tree) Len() int         { return t.size }
func (t *Tree) Cap() int         { return t.capacity }
func (t *Tree) Cycle() uint64    { return t.cycle }
func (t *Tree) AlmostFull() bool { return t.size >= t.capacity }

// PushAvailable and PopAvailable implement the Section 4.2.2
// handshake.
func (t *Tree) PushAvailable() bool { return true }
func (t *Tree) PopAvailable() bool  { return t.popCooldown == 0 }

// SlotState exposes architectural state for the shared invariant
// checker (quiescent pipelines only).
func (t *Tree) SlotState(n, i int) (value uint64, count uint32, ok bool) {
	e := t.modules[n].state[i]
	return e.Val, e.Count, e.Count != 0
}

// Quiescent reports whether any module holds a pending input.
func (t *Tree) Quiescent() bool {
	for _, m := range t.modules {
		if m.inPush || m.inPop {
			return false
		}
	}
	return true
}

// Tick advances one clock with the external signal applied to the
// root's pins, returning o_pop_result for a pop.
func (t *Tree) Tick(op hw.Op) (*core.Element, error) {
	switch op.Kind {
	case hw.Push:
		if t.AlmostFull() {
			return nil, core.ErrFull
		}
		t.root.inPush = true
		t.root.inPushData = Elem{Val: op.Value, Meta: op.Meta}
		t.size++
	case hw.Pop:
		if t.popCooldown > 0 {
			return nil, fmt.Errorf("rtl: pop issued while pop_available=0")
		}
		if t.size == 0 {
			return nil, core.ErrEmpty
		}
		t.root.inPop = true
		t.size--
	}
	t.cycle++

	// Phase 1 on every module (node-local, any order).
	for _, m := range t.modules {
		m.evalPush()
	}
	// Phase 2: pops read children's phase-1 outputs. Parent-before-
	// child order is irrelevant because i_pop registers were latched
	// last cycle and at most one module per level holds one.
	var result *core.Element
	for _, m := range t.modules {
		r, valid := m.evalPop()
		if valid && m == t.root {
			result = &core.Element{Value: r.Val, Meta: r.Meta}
		}
	}
	// Rising edge: commit all state, then latch routed signals.
	for _, m := range t.modules {
		m.commitState()
	}
	for _, m := range t.modules {
		m.route()
	}

	if op.Kind == hw.Pop {
		t.popCooldown = 1
	} else if t.popCooldown > 0 {
		t.popCooldown--
	}
	return result, nil
}
