// Package aifo implements AIFO (Yu et al., SIGCOMM 2021), the
// single-FIFO approximation of a PIFO discussed in Section 7.2 of the
// BMW-Tree paper. AIFO approximates PIFO behaviour *in dropped
// packets*: it admits a packet only when its rank is low enough for
// the current queue occupancy, then serves strictly FIFO.
//
// Admission rule (the paper's quantile check): a packet of rank r is
// admitted iff
//
//	(1/(1-burst)) * (C - used)/C  >=  quantile(r)
//
// where quantile(r) is r's position within a sliding window of the
// most recent ranks, C the queue capacity and burst a small slack
// parameter. An empty-enough queue admits anything; a nearly full
// queue admits only the lowest-ranked packets.
package aifo

import (
	"repro/internal/core"
)

// Queue is an AIFO scheduler.
type Queue struct {
	fifo  []core.Element
	cap   int
	burst float64

	window []uint64 // sliding window of recent ranks (ring)
	wpos   int
	wfull  bool

	admitted, dropped uint64
}

// New creates an AIFO queue with the given capacity, sliding-window
// size, and burst slack (0 <= burst < 1; the AIFO paper uses small
// values like 0.1).
func New(capacity, window int, burst float64) *Queue {
	if capacity < 1 || window < 1 || burst < 0 || burst >= 1 {
		panic("aifo: invalid parameters")
	}
	return &Queue{
		cap:    capacity,
		burst:  burst,
		window: make([]uint64, window),
	}
}

// Len returns the queued element count and Cap the capacity.
func (q *Queue) Len() int { return len(q.fifo) }
func (q *Queue) Cap() int { return q.cap }

// Stats returns admitted and dropped packet counts.
func (q *Queue) Stats() (admitted, dropped uint64) { return q.admitted, q.dropped }

// quantile returns the fraction of windowed ranks strictly smaller
// than r.
func (q *Queue) quantile(r uint64) float64 {
	n := q.wpos
	if q.wfull {
		n = len(q.window)
	}
	if n == 0 {
		return 0
	}
	smaller := 0
	for i := 0; i < n; i++ {
		if q.window[i] < r {
			smaller++
		}
	}
	return float64(smaller) / float64(n)
}

// observe records a rank in the sliding window (admitted or not — the
// window tracks the offered rank distribution).
func (q *Queue) observe(r uint64) {
	q.window[q.wpos] = r
	q.wpos++
	if q.wpos == len(q.window) {
		q.wpos = 0
		q.wfull = true
	}
}

// Push applies the admission check; a rejected packet returns ErrFull
// (the drop-based approximation of PIFO).
func (q *Queue) Push(e core.Element) error {
	quant := q.quantile(e.Value)
	q.observe(e.Value)
	headroom := float64(q.cap-len(q.fifo)) / float64(q.cap)
	if len(q.fifo) >= q.cap || quant > headroom/(1-q.burst) {
		q.dropped++
		return core.ErrFull
	}
	q.fifo = append(q.fifo, e)
	q.admitted++
	return nil
}

// Pop serves strictly FIFO.
func (q *Queue) Pop() (core.Element, error) {
	if len(q.fifo) == 0 {
		return core.Element{}, core.ErrEmpty
	}
	e := q.fifo[0]
	q.fifo = q.fifo[1:]
	if len(q.fifo) == 0 {
		q.fifo = nil
	}
	return e, nil
}

// Peek returns the FIFO head (not necessarily the global minimum).
func (q *Queue) Peek() (core.Element, error) {
	if len(q.fifo) == 0 {
		return core.Element{}, core.ErrEmpty
	}
	return q.fifo[0], nil
}
