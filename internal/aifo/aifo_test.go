package aifo

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestFIFOOrder(t *testing.T) {
	q := New(16, 32, 0.1)
	for i := uint64(0); i < 5; i++ {
		if err := q.Push(core.Element{Value: 10, Meta: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 5; i++ {
		e, err := q.Pop()
		if err != nil || e.Meta != i {
			t.Fatalf("pop %d = %v,%v", i, e, err)
		}
	}
	if _, err := q.Pop(); err != core.ErrEmpty {
		t.Fatalf("pop empty = %v", err)
	}
}

// TestAdmissionEmptyQueueAcceptsAll: with a near-empty queue the
// headroom term admits any rank.
func TestAdmissionEmptyQueueAcceptsAll(t *testing.T) {
	q := New(100, 16, 0.1)
	for _, r := range []uint64{5, 500, 50000} {
		if err := q.Push(core.Element{Value: r}); err != nil {
			t.Fatalf("empty queue rejected rank %d: %v", r, err)
		}
	}
}

// TestAdmissionFullQueuePrefersLowRanks: as the queue fills, only
// low-quantile ranks are admitted; high ranks are dropped.
func TestAdmissionFullQueuePrefersLowRanks(t *testing.T) {
	q := New(50, 64, 0.0)
	rng := rand.New(rand.NewSource(1))
	// Fill to ~90% with mid ranks.
	for q.Len() < 45 {
		q.Push(core.Element{Value: uint64(500 + rng.Intn(100))})
	}
	// A very low rank must be admitted; a very high rank rejected.
	if err := q.Push(core.Element{Value: 1}); err != nil {
		t.Fatalf("low rank rejected at high occupancy: %v", err)
	}
	if err := q.Push(core.Element{Value: 10000}); err != core.ErrFull {
		t.Fatalf("high rank admitted at high occupancy: %v", err)
	}
	admitted, dropped := q.Stats()
	if admitted == 0 || dropped == 0 {
		t.Fatalf("stats: admitted=%d dropped=%d", admitted, dropped)
	}
}

func TestHardCapacity(t *testing.T) {
	q := New(4, 8, 0.0)
	filled := 0
	for i := 0; i < 100 && filled < 4; i++ {
		if q.Push(core.Element{Value: 1}) == nil {
			filled++
		}
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d", q.Len())
	}
	if err := q.Push(core.Element{Value: 0}); err != core.ErrFull {
		t.Fatalf("overfull push = %v", err)
	}
}

// TestWindowQuantile: the sliding window tracks the offered ranks, so
// the quantile of the median rank converges to ~0.5.
func TestWindowQuantile(t *testing.T) {
	q := New(1000, 128, 0.1)
	for r := uint64(0); r < 128; r++ {
		q.observe(r)
	}
	if got := q.quantile(64); got < 0.45 || got > 0.55 {
		t.Fatalf("quantile(median) = %.2f", got)
	}
	if q.quantile(0) != 0 {
		t.Fatal("quantile of minimum must be 0")
	}
	if got := q.quantile(1 << 60); got != 1 {
		t.Fatalf("quantile of maximum = %.2f", got)
	}
}

// TestApproximatesPIFOInDrops reproduces the paper's classification:
// AIFO approximates a PIFO "in dropped packets" — under overload the
// dropped packets are predominantly high-rank ones.
func TestApproximatesPIFOInDrops(t *testing.T) {
	q := New(64, 128, 0.05)
	rng := rand.New(rand.NewSource(7))
	droppedHigh, droppedLow := 0, 0
	for i := 0; i < 5000; i++ {
		r := uint64(rng.Intn(1000))
		err := q.Push(core.Element{Value: r})
		if err != nil {
			if r >= 500 {
				droppedHigh++
			} else {
				droppedLow++
			}
		}
		if i%3 == 0 {
			q.Pop()
		}
	}
	if droppedHigh <= droppedLow*2 {
		t.Fatalf("drops not biased to high ranks: high=%d low=%d", droppedHigh, droppedLow)
	}
}

func TestPeek(t *testing.T) {
	q := New(8, 8, 0.1)
	if _, err := q.Peek(); err != core.ErrEmpty {
		t.Fatal("peek empty")
	}
	q.Push(core.Element{Value: 3})
	if e, _ := q.Peek(); e.Value != 3 {
		t.Fatal("peek wrong")
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 8, 0.1) },
		func() { New(8, 0, 0.1) },
		func() { New(8, 8, 1.0) },
		func() { New(8, 8, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid params did not panic")
				}
			}()
			fn()
		}()
	}
}
