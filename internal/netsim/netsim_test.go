package netsim

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/trafficgen"
)

// scaled returns a down-scaled Figure 10 configuration that keeps the
// mechanism (flow-scheduler capacity between the two designs) while
// running in test-sized time: 32 hosts, 1 Gbps links, ~600 flows.
func scaled(kind SchedulerKind, capacity int, load float64) Config {
	cfg := DefaultConfig()
	cfg.NumHosts = 32
	cfg.LinkBps = 1e9
	cfg.Scheduler = kind
	cfg.SchedCap = capacity
	cfg.BMWOrder = 2
	cfg.BMWLevels = 7 // capacity 254
	cfg.StoreLimit = 0
	cfg.TCP.MaxRTONs = 10e9
	cfg.NumFlows = 600
	cfg.Load = load
	cfg.Seed = 42
	return cfg
}

func TestAllFlowsCompleteBMW(t *testing.T) {
	res := New(scaled(SchedBMW, 254, 0.9)).Run()
	if res.Completed != res.Generated {
		t.Fatalf("completed %d of %d", res.Completed, res.Generated)
	}
	if res.LossRate != 0 {
		t.Fatalf("BMW run dropped packets: %.4f", res.LossRate)
	}
	if res.Retransmits != 0 || res.Timeouts != 0 {
		t.Fatalf("lossless run had retx=%d tmo=%d", res.Retransmits, res.Timeouts)
	}
	// Every normalised FCT is >= 1 (nothing beats the unloaded ideal).
	for _, b := range res.FCT.Binned(stats.DefaultBins()) {
		if b.Flows > 0 && b.MeanNormFCT < 0.999 {
			t.Fatalf("bin %s mean norm FCT %.3f < 1", b.Label(), b.MeanNormFCT)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := New(scaled(SchedBMW, 254, 0.9)).Run()
	b := New(scaled(SchedBMW, 254, 0.9)).Run()
	if a.Events != b.Events || a.SimEndNs != b.SimEndNs || a.Completed != b.Completed {
		t.Fatalf("same seed, different runs: %+v vs %+v", a, b)
	}
	c := New(scaled(SchedBMW, 254, 0.9))
	c2 := scaled(SchedBMW, 254, 0.9)
	c2.Seed = 43
	d := New(c2).Run()
	_ = c
	if a.Events == d.Events && a.SimEndNs == d.SimEndNs {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestLowLoadNearIdeal: at 30% load with few flows, normalised FCTs
// stay near 1 — the simulator's latency accounting is calibrated.
func TestLowLoadNearIdeal(t *testing.T) {
	cfg := scaled(SchedBMW, 254, 0.3)
	cfg.NumFlows = 100
	res := New(cfg).Run()
	if res.Completed != 100 {
		t.Fatalf("completed %d", res.Completed)
	}
	small := res.FCT.Binned(stats.DefaultBins())[0]
	if small.Flows == 0 || small.MeanNormFCT > 1.5 {
		t.Fatalf("small flows at low load: %+v", small)
	}
	if overall := res.FCT.OverallMeanNorm(); overall > 3 {
		t.Fatalf("overall mean norm FCT %.2f at 30%% load", overall)
	}
}

// TestFigure10Mechanism is the scaled-down Figure 10: under sustained
// overload the number of concurrently backlogged flows exceeds the
// small scheduler's flow capacity but not the BMW-Tree's, so only the
// small scheduler drops packets and its flows suffer timeouts; the
// BMW-backed scheduler yields the lower overall normalised FCT.
func TestFigure10Mechanism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second packet simulation")
	}
	bmw := New(scaled(SchedBMW, 254, 1.1)).Run()
	pifo := New(scaled(SchedPIFO, 16, 1.1)).Run()

	if bmw.BlockStats.DropsScheduler != 0 {
		t.Fatalf("BMW (capacity 254) dropped %d new-flow packets", bmw.BlockStats.DropsScheduler)
	}
	if pifo.BlockStats.DropsScheduler == 0 {
		t.Fatal("small PIFO (capacity 16) never hit its flow capacity; mechanism untested")
	}
	if pifo.Retransmits == 0 {
		t.Fatal("PIFO drops caused no retransmissions")
	}
	bn := bmw.FCT.OverallMeanNorm()
	pn := pifo.FCT.OverallMeanNorm()
	if bn >= pn {
		t.Fatalf("BMW norm FCT %.2f not better than PIFO %.2f", bn, pn)
	}
	t.Logf("overall mean normalised FCT: BMW %.2f, PIFO %.2f (%.0f%% reduction); PIFO loss %.4f",
		bn, pn, 100*(1-bn/pn), pifo.LossRate)
}

func TestIdealFCT(t *testing.T) {
	s := New(scaled(SchedBMW, 254, 0.9))
	// A single MSS flow: one full segment -> RTT + serialisation.
	got := s.idealFCTNs(1460)
	want := s.baseRTTNs() + uint64(1500)*8e9/s.cfg.LinkBps
	if got != want {
		t.Fatalf("idealFCT = %d, want %d", got, want)
	}
	// Larger flows scale with wire bytes.
	if s.idealFCTNs(1_000_000) <= s.idealFCTNs(10_000) {
		t.Fatal("ideal FCT not increasing in size")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	cfg := scaled(SchedBMW, 254, 0.9)
	cfg.BMWLevels = 3 // capacity 14 < SchedCap 254
	defer func() {
		if recover() == nil {
			t.Fatal("undersized BMW shape did not panic")
		}
	}()
	New(cfg)
}

func TestUnlimitedScheduler(t *testing.T) {
	cfg := scaled(SchedUnlimited, 0, 0.5)
	cfg.NumFlows = 50
	res := New(cfg).Run()
	if res.Completed != 50 || res.LossRate != 0 {
		t.Fatalf("unlimited scheduler: %+v", res)
	}
}

// TestProgrammability_SRPTvsFCFS swaps the rank function — the whole
// point of the PIFO model — and verifies the textbook outcome: under
// load, SRPT ranks cut small-flow completion times relative to FCFS,
// at the cost of the largest flows.
func TestProgrammability_SRPTvsFCFS(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second packet simulation")
	}
	base := scaled(SchedBMW, 254, 0.9)
	base.NumFlows = 400

	fcfs := base
	fcfs.Rank = RankFCFS
	srpt := base
	srpt.Rank = RankSRPT

	rf := New(fcfs).Run()
	rs := New(srpt).Run()
	if rf.Completed != 400 || rs.Completed != 400 {
		t.Fatalf("completed %d / %d", rf.Completed, rs.Completed)
	}

	binsF := rf.FCT.Binned(stats.DefaultBins())
	binsS := rs.FCT.Binned(stats.DefaultBins())
	// Small flows (first two bins) must improve under SRPT.
	for i := 0; i < 2; i++ {
		if binsS[i].Flows == 0 {
			continue
		}
		if binsS[i].MeanNormFCT >= binsF[i].MeanNormFCT {
			t.Errorf("bin %s: SRPT %.2f not better than FCFS %.2f",
				binsS[i].Label(), binsS[i].MeanNormFCT, binsF[i].MeanNormFCT)
		}
	}
	t.Logf("small-flow mean norm FCT: SRPT %.2f vs FCFS %.2f",
		binsS[1].MeanNormFCT, binsF[1].MeanNormFCT)
	// The largest flows pay for it.
	last := len(binsS) - 1
	for last > 0 && binsS[last].Flows == 0 {
		last--
	}
	if binsS[last].MeanNormFCT <= binsF[last].MeanNormFCT {
		t.Logf("note: largest bin SRPT %.2f vs FCFS %.2f (penalty not visible at this load)",
			binsS[last].MeanNormFCT, binsF[last].MeanNormFCT)
	}
}

// TestSTFQIsDefaultRank guards the Figure 10 configuration.
func TestSTFQIsDefaultRank(t *testing.T) {
	if DefaultConfig().Rank != RankSTFQ {
		t.Fatal("default rank function must be STFQ (the paper's Figure 10 setting)")
	}
}

// TestECNDCTCPAvoidsLossAtShallowBuffers is the data-center extension
// experiment: both runs get the same shallow switch buffer (a fraction
// of the path BDP). Loss-driven NewReno repeatedly overflows it and
// pays in retransmissions and timeouts; DCTCP sources react to ECN
// marks before the buffer fills, complete without a single drop, and
// finish flows faster across the board.
func TestECNDCTCPAvoidsLossAtShallowBuffers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second packet simulation")
	}
	base := scaled(SchedBMW, 254, 0.9)
	base.NumFlows = 300
	base.StoreLimit = 400 // ~0.4 x BDP: shallow shared buffer

	reno := base

	dctcp := base
	dctcp.ECNThresholdPkts = 100 // mark well before the buffer fills
	dctcp.TCP.DCTCP = true

	rr := New(reno).Run()
	rd := New(dctcp).Run()
	if rr.Completed != 300 || rd.Completed != 300 {
		t.Fatalf("completed %d / %d", rr.Completed, rd.Completed)
	}
	if rr.BlockStats.DropsStore == 0 {
		t.Fatal("NewReno never overflowed the shallow buffer; regime wrong")
	}
	// At this 12 ms RTT the marks take a full round trip to bite, so
	// slow-start overshoot can still clip the buffer occasionally —
	// but drops must fall by an order of magnitude.
	if rd.BlockStats.DropsStore*10 >= rr.BlockStats.DropsStore {
		t.Fatalf("DCTCP drops %d not <= 10%% of NewReno's %d",
			rd.BlockStats.DropsStore, rr.BlockStats.DropsStore)
	}
	nr, nd := rr.FCT.OverallMeanNorm(), rd.FCT.OverallMeanNorm()
	if nd >= nr {
		t.Fatalf("DCTCP norm FCT %.2f not below NewReno %.2f", nd, nr)
	}
	t.Logf("shallow buffer: NewReno norm FCT %.2f (%d buffer drops, %d timeouts) vs DCTCP %.2f (%d drops)",
		nr, rr.BlockStats.DropsStore, rr.Timeouts, nd, rd.BlockStats.DropsStore)
}

// TestIncast runs the classic synchronized-burst workload: 24 servers
// each answer with 100 KB at t=0 through the BMW-backed bottleneck.
// Everything completes, and the queue's high-water mark reflects the
// burst; with ECN+DCTCP the peak shrinks substantially.
func TestIncast(t *testing.T) {
	base := scaled(SchedBMW, 254, 0.9)
	base.CustomFlows = trafficgenIncast(24, 100<<10)

	plain := New(base).Run()
	if plain.Completed != 24 {
		t.Fatalf("completed %d/24", plain.Completed)
	}
	if plain.PeakQueuePkts < 100 {
		t.Fatalf("incast peak queue = %d packets, expected a deep burst", plain.PeakQueuePkts)
	}

	ecn := base
	ecn.ECNThresholdPkts = 60
	ecn.TCP.DCTCP = true
	marked := New(ecn).Run()
	if marked.Completed != 24 {
		t.Fatalf("completed %d/24 with ECN", marked.Completed)
	}
	if marked.PeakQueuePkts >= plain.PeakQueuePkts {
		t.Fatalf("ECN peak %d not below plain %d", marked.PeakQueuePkts, plain.PeakQueuePkts)
	}
	t.Logf("incast peak queue: NewReno %d pkts vs DCTCP+ECN %d pkts",
		plain.PeakQueuePkts, marked.PeakQueuePkts)
}

// trafficgenIncast is a small indirection so the test reads cleanly.
func trafficgenIncast(servers int, bytes uint64) []trafficgen.Flow {
	return trafficgen.GenerateIncast(servers, bytes, 0)
}

// TestSchedulingQualityProbes: every served packet contributes one
// sojourn observation and one inversion-meter observation; the exact
// BMW scheduler never inverts.
func TestSchedulingQualityProbes(t *testing.T) {
	res := New(scaled(SchedBMW, 254, 0.9)).Run()
	if res.PktSojournNs.Count != res.BlockStats.Dequeued {
		t.Fatalf("sojourn observations %d != dequeues %d",
			res.PktSojournNs.Count, res.BlockStats.Dequeued)
	}
	if res.RankObservations != res.BlockStats.Dequeued {
		t.Fatalf("rank observations %d != dequeues %d",
			res.RankObservations, res.BlockStats.Dequeued)
	}
	if res.RankInversions != 0 || res.RankInversionRate != 0 {
		t.Fatalf("exact scheduler reported inversions: %d (rate %.4f)",
			res.RankInversions, res.RankInversionRate)
	}
	if res.PktSojournNs.P999 < res.PktSojournNs.P50 {
		t.Fatalf("quantiles out of order: p50=%d p99.9=%d",
			res.PktSojournNs.P50, res.PktSojournNs.P999)
	}
	if res.PktSojournNs.Max > res.SimEndNs {
		t.Fatalf("max sojourn %d exceeds simulated time %d",
			res.PktSojournNs.Max, res.SimEndNs)
	}
}

// TestApproximateSchedulersInvert: the approximate queues run the
// Figure 10 workload to completion with the inversion meter attached.
// Under STFQ's near-monotone virtual time, the calendar-based queues
// (Gearbox, calendar queue) invert at bucket granularity, while
// SP-PIFO's bound adaptation keeps up at this load — its zero is a
// meaningful fidelity baseline, not a dead probe (the probe's wiring
// is covered by the observation count).
func TestApproximateSchedulersInvert(t *testing.T) {
	for _, tc := range []struct {
		name           string
		kind           SchedulerKind
		wantInversions bool
	}{
		{"sppifo", SchedSPPIFO, false},
		{"gearbox", SchedGearbox, true},
		{"calendarq", SchedCalendarQ, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res := New(scaled(tc.kind, 254, 0.9)).Run()
			if res.Completed != res.Generated {
				t.Fatalf("completed %d of %d", res.Completed, res.Generated)
			}
			if res.RankObservations != res.BlockStats.Dequeued {
				t.Fatalf("rank observations %d != dequeues %d",
					res.RankObservations, res.BlockStats.Dequeued)
			}
			if tc.wantInversions {
				if res.RankInversions == 0 {
					t.Fatal("calendar-based scheduler reported zero inversions under load")
				}
				if res.RankInversionMeanMag <= 0 {
					t.Fatalf("inversions without magnitude: %.3f", res.RankInversionMeanMag)
				}
			} else if res.RankInversionRate > 0.01 {
				t.Fatalf("SP-PIFO inversion rate %.4f unexpectedly high under STFQ",
					res.RankInversionRate)
			}
		})
	}
}
