// Package netsim is the discrete-event packet-level simulator that
// substitutes for NS-3 in the paper's Section 6.4 evaluation.
//
// Topology (Figure 10 experiment): a star with NumHosts source hosts
// sending TCP traffic through one switch to a single destination host.
// Every link has the same bandwidth and propagation delay (the paper
// uses 10 Gbps and 3 ms). The schedulers under test — a PIFO block
// whose flow scheduler is either an RPU-BMW-capacity BMW-Tree or an
// original-PIFO-capacity queue — sit on the switch's output (bottleneck)
// link. STFQ computes ranks so all TCP flows share the bottleneck
// fairly.
//
// Model fidelity choices, documented per DESIGN.md:
//
//   - each source's access link serialises its own packets (per-source
//     FIFO, never the bottleneck since each host has a dedicated link);
//   - the bottleneck link runs the PIFO block: packets of new flows are
//     dropped when the flow scheduler is at flow capacity — the loss
//     mechanism behind the original PIFO's inflated FCT;
//   - ACKs return over dedicated reverse paths with propagation delay
//     only (they are 40-byte packets on otherwise idle links).
package netsim

import (
	"fmt"

	"repro/internal/calendarq"
	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/gearbox"
	"repro/internal/obs"
	"repro/internal/pifo"
	"repro/internal/pifoblock"
	"repro/internal/sched"
	"repro/internal/sppifo"
	"repro/internal/stats"
	"repro/internal/tcp"
	"repro/internal/trafficgen"
)

// SchedulerKind selects the flow scheduler on the bottleneck link.
type SchedulerKind int

// The two schedulers the paper compares in Figure 10, the ideal
// (unlimited) scheduler for calibration runs, and the approximate
// queues of the paper's Section 7.2 survey. The approximate kinds
// admit rank inversions — dequeues whose rank is below the maximum
// already served — which the simulator's InversionMeter quantifies.
const (
	SchedBMW SchedulerKind = iota // BMW-Tree with RPU-BMW capacity
	SchedPIFO
	SchedUnlimited
	SchedSPPIFO    // SP-PIFO: 8 strict-priority FIFOs, adaptive bounds
	SchedGearbox   // hierarchical calendar queue (3 gears x 16 buckets)
	SchedCalendarQ // single rotating calendar queue
)

// RankAlgo selects the rank function programmed into the PIFO block —
// the programmability the PIFO model exists for (Section 2.2: "by
// changing the rank computation function, PIFO can express a wide
// range of scheduling algorithms").
type RankAlgo int

// Available rank functions for the bottleneck scheduler.
const (
	RankSTFQ RankAlgo = iota // fair queueing (the Figure 10 setting)
	RankSRPT                 // shortest remaining processing time
	RankFCFS                 // first come first serve
)

// Config parameterises one simulation run.
type Config struct {
	NumHosts    int    // source hosts (the paper uses 128)
	LinkBps     uint64 // every link's bandwidth (10e9)
	PropDelayNs uint64 // per-link propagation delay (3e6 = 3 ms)

	Scheduler SchedulerKind
	SchedCap  int // flow scheduler capacity (4094 for BMW, 512 for PIFO)
	Rank      RankAlgo

	// BMW tree shape when Scheduler == SchedBMW. Order 2, 11 levels
	// gives the paper's 4094 capacity.
	BMWOrder, BMWLevels int

	HeaderBytes uint32 // per-segment wire overhead
	TCP         tcp.Config

	// StoreLimit bounds the rank store (switch buffer) in packets;
	// 0 means unlimited. A finite buffer is what lets TCP stabilise:
	// overflowing packets drop and the senders back off.
	StoreLimit int

	// ECNThresholdPkts enables ECN marking at the bottleneck: a data
	// packet arriving while the PIFO block already buffers at least
	// this many packets gets the congestion-experienced mark (the
	// DCTCP-style instantaneous-queue marking rule). 0 disables ECN.
	ECNThresholdPkts int

	NumFlows int
	Load     float64 // bottleneck utilisation target
	Seed     int64
	Workload trafficgen.Distribution // flow-size law (default web-search)

	// CustomFlows overrides the generated workload entirely (e.g. an
	// incast from trafficgen.GenerateIncast). NumFlows/Load/Workload
	// are ignored when set.
	CustomFlows []trafficgen.Flow

	// MaxEvents guards against runaway simulations (0 = default).
	MaxEvents uint64
}

// DefaultConfig returns the Figure 10 setting with the BMW scheduler.
func DefaultConfig() Config {
	return Config{
		NumHosts:    128,
		LinkBps:     10e9,
		PropDelayNs: 3e6,
		Scheduler:   SchedBMW,
		SchedCap:    4094,
		BMWOrder:    2,
		BMWLevels:   11,
		HeaderBytes: 40,
		TCP:         tcp.DefaultConfig(),
		StoreLimit:  4000,
		NumFlows:    1000,
		Load:        0.9,
		Seed:        1,
	}
}

// Result reports a finished run.
type Result struct {
	FCT        *stats.FCT
	Completed  int
	Generated  int
	BlockStats pifoblock.Stats
	LossRate   float64 // dropped / offered at the bottleneck
	// PeakQueuePkts is the bottleneck queue's high-water mark.
	PeakQueuePkts int
	Retransmits,
	Timeouts uint64
	SimEndNs uint64
	Events   uint64

	// PktSojournNs is the distribution of per-packet bottleneck
	// sojourn (enqueue to start-of-service, ns) over every served
	// packet.
	PktSojournNs obs.QuantileSnapshot
	// RankObservations / RankInversions / RankInversionRate /
	// RankInversionMeanMag summarise scheduling quality: an inversion
	// is a dequeue whose rank is below the maximum rank already
	// served. The exact queues (BMW, PIFO) stay at zero; the
	// approximate kinds do not.
	RankObservations     uint64
	RankInversions       uint64
	RankInversionRate    float64
	RankInversionMeanMag float64
}

// flowState couples a flow's transport endpoints.
type flowState struct {
	spec     trafficgen.Flow
	sender   *tcp.Sender
	receiver *tcp.Receiver
}

// Sim is one simulation instance.
type Sim struct {
	cfg   Config
	q     *eventq.Queue
	block *pifoblock.Block
	stfq  *sched.STFQ

	srcBusy      []uint64 // per-source access-link busy-until
	egressActive bool

	flows     map[uint32]*flowState
	fct       *stats.FCT
	completed int
	peakQueue int

	// sojournNs and inv are the always-on scheduling-quality probes,
	// fed from the ranker's dequeue hook: per-packet bottleneck
	// sojourn and rank-inversion accounting. Instrument swaps
	// sojournNs for a registry-owned histogram.
	sojournNs *obs.QuantileHistogram
	inv       stats.InversionMeter

	// probes are the attached live instruments (see instrument.go);
	// nil means uninstrumented.
	probes *probes
}

// New builds a simulator from the config.
func New(cfg Config) *Sim {
	if cfg.NumHosts <= 0 || cfg.LinkBps == 0 || (cfg.NumFlows <= 0 && len(cfg.CustomFlows) == 0) {
		panic("netsim: invalid config")
	}
	var fs pifoblock.FlowScheduler
	// Calendar-style queues need a rank-units-per-bucket width. STFQ
	// virtual time advances by bytes/weight per packet (~one MSS at
	// weight 1), so ~1.5 packets of virtual time per bucket keeps
	// inversions to the structural minimum while leaving a finite
	// horizon whose squashing the inversion meter can see.
	const approxBucketWidth = 2048
	switch cfg.Scheduler {
	case SchedBMW:
		fs = core.New(cfg.BMWOrder, cfg.BMWLevels)
		if fs.Cap() < cfg.SchedCap {
			panic(fmt.Sprintf("netsim: BMW shape %d-%d holds %d < SchedCap %d",
				cfg.BMWLevels, cfg.BMWOrder, fs.Cap(), cfg.SchedCap))
		}
	case SchedPIFO:
		fs = pifo.New(cfg.SchedCap)
	case SchedUnlimited:
		fs = pifo.New(1 << 30)
	case SchedSPPIFO:
		fs = sppifo.New(8, cfg.SchedCap)
	case SchedGearbox:
		fs = gearbox.New(3, 16, approxBucketWidth, cfg.SchedCap)
	case SchedCalendarQ:
		fs = calendarq.New(128, approxBucketWidth, cfg.SchedCap)
	default:
		panic("netsim: unknown scheduler")
	}
	var ranker sched.Ranker
	var stfq *sched.STFQ
	switch cfg.Rank {
	case RankSTFQ:
		stfq = sched.NewSTFQ(1)
		ranker = stfq
	case RankSRPT:
		ranker = sched.SRPT{}
	case RankFCFS:
		ranker = sched.FCFS{}
	default:
		panic("netsim: unknown rank algorithm")
	}
	s := &Sim{
		cfg:       cfg,
		q:         eventq.New(),
		stfq:      stfq,
		srcBusy:   make([]uint64, cfg.NumHosts),
		flows:     make(map[uint32]*flowState),
		fct:       &stats.FCT{},
		sojournNs: obs.NewQuantileHistogram(),
	}
	// The Observed wrapper taps every bottleneck dequeue for the
	// sojourn and inversion probes; the delegate ranker still sees its
	// OnDequeue first (STFQ's virtual-time advance).
	block := pifoblock.New(fs, sched.Observed{Ranker: ranker, Dequeued: s.onDequeue})
	block.StoreLimit = cfg.StoreLimit
	s.block = block
	return s
}

// onDequeue is the per-packet scheduling-quality hook, called from the
// PIFO block as each packet enters service at the bottleneck.
func (s *Sim) onDequeue(p sched.Packet, rank uint64) {
	s.sojournNs.Observe(s.q.Now() - p.Arrival)
	before := s.inv.Inversions()
	s.inv.Observe(rank)
	if s.probes != nil && s.inv.Inversions() != before {
		s.probes.inversions.Inc()
	}
}

// SojournSnapshot returns the per-packet bottleneck sojourn (ns)
// distribution collected so far.
func (s *Sim) SojournSnapshot() obs.QuantileSnapshot { return s.sojournNs.Snapshot() }

// InversionStats exposes the rank-inversion meter (read between runs;
// the event loop writes it).
func (s *Sim) InversionStats() *stats.InversionMeter { return &s.inv }

// wireBytes returns a segment's size on the wire.
func (s *Sim) wireBytes(seg tcp.Segment) uint32 { return seg.Len + s.cfg.HeaderBytes }

// serNs returns the serialisation time of n bytes on a link.
func (s *Sim) serNs(n uint32) uint64 { return uint64(n) * 8e9 / s.cfg.LinkBps }

// baseRTTNs is the unloaded round-trip: two forward hops of propagation
// plus the reverse path.
func (s *Sim) baseRTTNs() uint64 { return 4 * s.cfg.PropDelayNs }

// idealFCTNs is the unloaded completion time used for normalisation:
// one RTT plus the flow's serialisation at the bottleneck line rate.
func (s *Sim) idealFCTNs(bytes uint64) uint64 {
	mss := uint64(s.cfg.TCP.MSS)
	segs := (bytes + mss - 1) / mss
	wire := bytes + segs*uint64(s.cfg.HeaderBytes)
	return s.baseRTTNs() + wire*8e9/s.cfg.LinkBps
}

// Run generates the workload, executes the simulation, and returns the
// result. It is deterministic in Config.Seed.
func (s *Sim) Run() Result {
	specs := s.cfg.CustomFlows
	if len(specs) == 0 {
		specs = trafficgen.GenerateDist(s.cfg.Seed, s.cfg.NumFlows, s.cfg.Load, s.cfg.LinkBps, s.cfg.NumHosts, s.cfg.Workload)
	}
	for _, spec := range specs {
		spec := spec
		s.q.At(spec.StartNs, func() { s.startFlow(spec) })
	}
	budget := s.cfg.MaxEvents
	if budget == 0 {
		budget = 500_000_000
	}
	s.q.Run(budget)

	var retx, tmo uint64
	for _, f := range s.flows {
		retx += f.sender.Retransmits
		tmo += f.sender.Timeouts
	}
	bs := s.block.Stats()
	offered := bs.Enqueued + bs.DropsScheduler + bs.DropsStore
	loss := 0.0
	if offered > 0 {
		loss = float64(bs.DropsScheduler+bs.DropsStore) / float64(offered)
	}
	return Result{
		FCT:                  s.fct,
		Completed:            s.completed,
		Generated:            len(specs),
		BlockStats:           bs,
		LossRate:             loss,
		PeakQueuePkts:        s.peakQueue,
		Retransmits:          retx,
		Timeouts:             tmo,
		SimEndNs:             s.q.Now(),
		Events:               s.q.Processed(),
		PktSojournNs:         s.sojournNs.Snapshot(),
		RankObservations:     s.inv.Total(),
		RankInversions:       s.inv.Inversions(),
		RankInversionRate:    s.inv.Rate(),
		RankInversionMeanMag: s.inv.MeanMagnitude(),
	}
}

// startFlow instantiates the TCP endpoints and begins transmission.
func (s *Sim) startFlow(spec trafficgen.Flow) {
	fs := &flowState{spec: spec}
	fs.receiver = tcp.NewReceiver(func(ackNo uint64, ece bool) {
		// Reverse path: dedicated, uncongested; propagation only
		// (dst -> switch -> src).
		s.q.After(2*s.cfg.PropDelayNs+s.serNs(s.cfg.HeaderBytes), func() {
			fs.sender.OnAckECN(ackNo, ece)
		})
	})
	start := s.q.Now()
	fs.sender = tcp.NewSender(s.q, s.cfg.TCP, spec.ID, spec.Bytes,
		func(seg tcp.Segment) { s.sendFromHost(spec.Source, fs, seg) },
		func(finish uint64) {
			s.completed++
			if s.probes != nil {
				s.probes.completed.Inc()
				s.probes.simNs.Set(float64(finish))
			}
			s.fct.Add(stats.FlowRecord{
				Bytes:      spec.Bytes,
				FCTNs:      finish - start,
				IdealFCTNs: s.idealFCTNs(spec.Bytes),
			})
			if s.stfq != nil {
				s.stfq.Forget(spec.ID)
			}
		})
	s.flows[spec.ID] = fs
	fs.sender.Start()
}

// sendFromHost serialises a data segment on the source's access link
// and delivers it to the switch after propagation.
func (s *Sim) sendFromHost(src int, fs *flowState, seg tcp.Segment) {
	wire := s.wireBytes(seg)
	txStart := s.q.Now()
	if s.srcBusy[src] > txStart {
		txStart = s.srcBusy[src]
	}
	txEnd := txStart + s.serNs(wire)
	s.srcBusy[src] = txEnd
	s.q.At(txEnd+s.cfg.PropDelayNs, func() { s.switchArrival(fs, seg) })
}

// switchArrival enqueues the segment into the bottleneck PIFO block,
// applying ECN marking against the instantaneous queue depth.
func (s *Sim) switchArrival(fs *flowState, seg tcp.Segment) {
	if s.cfg.ECNThresholdPkts > 0 && s.block.Len() >= s.cfg.ECNThresholdPkts {
		seg.CE = true
	}
	// Remaining bytes of the flow from this segment onward — the SRPT
	// rank input, carried in packet metadata by the endpoints (as the
	// PIFO model prescribes for SRPT, Section 2.2).
	remaining := uint64(0)
	if total := fs.spec.Bytes; total > seg.Seq {
		remaining = total - seg.Seq
	}
	err := s.block.Enqueue(sched.Packet{
		Flow:      seg.Flow,
		Bytes:     s.wireBytes(seg),
		Arrival:   s.q.Now(),
		Remaining: remaining,
	}, seg)
	if err != nil {
		return // dropped: TCP recovers via dupacks or RTO
	}
	if n := s.block.Len(); n > s.peakQueue {
		s.peakQueue = n
	}
	if s.probes != nil {
		s.probes.enqueued.Inc()
		s.probes.queueLen.Set(float64(s.block.Len()))
		s.probes.queuePeak.Max(float64(s.peakQueue))
		s.probes.simNs.Set(float64(s.q.Now()))
	}
	s.kickEgress()
}

// kickEgress starts the bottleneck service loop when the link is idle.
func (s *Sim) kickEgress() {
	if s.egressActive {
		return
	}
	s.egressActive = true
	s.serveNext()
}

// serveNext transmits the minimum-rank packet and reschedules itself.
func (s *Sim) serveNext() {
	p, payload, err := s.block.Dequeue()
	if err != nil {
		s.egressActive = false
		return
	}
	seg := payload.(tcp.Segment)
	tx := s.serNs(p.Bytes)
	fs := s.flows[seg.Flow]
	// Delivery at the destination after serialisation + propagation.
	s.q.After(tx+s.cfg.PropDelayNs, func() {
		if fs != nil {
			fs.receiver.OnData(seg)
		}
	})
	// The link frees after serialisation.
	s.q.After(tx, s.serveNext)
}

// Queue exposes the event queue (tests and tooling).
func (s *Sim) Queue() *eventq.Queue { return s.q }

// Block exposes the bottleneck PIFO block (tests and tooling).
func (s *Sim) Block() *pifoblock.Block { return s.block }
