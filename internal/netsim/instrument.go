package netsim

import "repro/internal/obs"

// probes are the live instruments a running simulation updates. They
// are owned atomics, so an HTTP scrape concurrent with Run is safe —
// unlike snapshot-time callbacks, which would race with the event
// loop. nil (the default) disables them at one branch per hook.
type probes struct {
	enqueued   *obs.Counter
	completed  *obs.Counter
	queueLen   *obs.Gauge
	queuePeak  *obs.Gauge
	simNs      *obs.Gauge
	inversions *obs.Counter
}

// Instrument registers live probes in reg under the given metric-name
// prefix. Must be called before Run. The instruments are updated from
// the event loop with atomic stores, so reg can be served over HTTP
// while the simulation runs. A nil registry is a no-op.
func (s *Sim) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	s.probes = &probes{
		enqueued:   reg.Counter(prefix + "_bottleneck_enqueued_total"),
		completed:  reg.Counter(prefix + "_flows_completed_total"),
		queueLen:   reg.Gauge(prefix + "_bottleneck_queue_pkts"),
		queuePeak:  reg.Gauge(prefix + "_bottleneck_queue_peak_pkts"),
		simNs:      reg.Gauge(prefix + "_sim_time_ns"),
		inversions: reg.Counter(prefix + "_rank_inversions_total"),
	}
	// Swap the private sojourn histogram for a registry-owned one so
	// scrapes see it; safe because Instrument precedes Run and the
	// histogram's writers are all inside the event loop.
	reg.Help(prefix+"_pkt_sojourn_ns",
		"bottleneck sojourn of served packets: enqueue to start of service, nanoseconds")
	s.sojournNs = reg.QuantileHistogram(prefix + "_pkt_sojourn_ns")
}
