// Package gearbox implements a hierarchical calendar queue in the
// style of Gearbox (Gao, Dalleggio, Xu, Chao — NSDI 2022, reference
// [26] of the BMW-Tree paper, by the same research group): several
// calendar "gears" of geometrically coarser bucket widths. Near-future
// ranks land in the finest gear (small bounded inversions); far-future
// ranks land in coarser gears and are re-bucketed into finer gears as
// virtual time advances, so a small number of buckets covers a huge
// rank horizon — the fix for the plain calendar queue's "limited range
// of values" problem, at the price of approximation that the BMW-Tree
// does not pay.
package gearbox

import (
	"repro/internal/core"
)

// Queue is a hierarchical calendar queue.
type Queue struct {
	gears   [][][]core.Element // gears[g][bucket] -> FIFO of elements
	buckets int
	width   uint64 // finest-gear bucket width; gear g has width*buckets^g
	vtime   uint64 // start of the finest gear's current frame
	heads   []int  // rotating head bucket per gear
	size    int
	cap     int

	migrations uint64 // elements re-bucketed from a coarser gear
	overflowed uint64 // elements beyond even the coarsest horizon
}

// New creates a gearbox with the given number of gears, buckets per
// gear, finest bucket width, and element capacity.
func New(gears, buckets int, width uint64, capacity int) *Queue {
	if gears < 1 || buckets < 2 || width == 0 || capacity < 1 {
		panic("gearbox: invalid parameters")
	}
	q := &Queue{
		buckets: buckets,
		width:   width,
		cap:     capacity,
		heads:   make([]int, gears),
	}
	for g := 0; g < gears; g++ {
		q.gears = append(q.gears, make([][]core.Element, buckets))
	}
	return q
}

// Len returns the stored element count; Cap the capacity; Gears the
// gear count.
func (q *Queue) Len() int   { return q.size }
func (q *Queue) Cap() int   { return q.cap }
func (q *Queue) Gears() int { return len(q.gears) }

// Horizon returns the total representable rank span from the current
// virtual time: width * buckets^gears.
func (q *Queue) Horizon() uint64 {
	h := q.width
	for range q.gears {
		h *= uint64(q.buckets)
	}
	return h
}

// Stats returns migrations (re-bucketed elements) and overflows
// (ranks squashed at the horizon).
func (q *Queue) Stats() (migrations, overflowed uint64) {
	return q.migrations, q.overflowed
}

// gearWidth returns gear g's bucket width.
func (q *Queue) gearWidth(g int) uint64 {
	w := q.width
	for i := 0; i < g; i++ {
		w *= uint64(q.buckets)
	}
	return w
}

// Push files the element into the finest gear whose frame covers its
// rank.
func (q *Queue) Push(e core.Element) error {
	if q.size >= q.cap {
		return core.ErrFull
	}
	q.file(e)
	q.size++
	return nil
}

func (q *Queue) file(e core.Element) {
	var offset uint64
	if e.Value > q.vtime {
		offset = e.Value - q.vtime
	}
	for g := range q.gears {
		w := q.gearWidth(g)
		span := w * uint64(q.buckets)
		if offset < span || g == len(q.gears)-1 {
			idx := offset / w
			if idx >= uint64(q.buckets) {
				idx = uint64(q.buckets) - 1
				q.overflowed++
			}
			slot := (q.heads[g] + int(idx)) % q.buckets
			q.gears[g][slot] = append(q.gears[g][slot], e)
			return
		}
	}
}

// Pop drains the finest gear's earliest bucket; when the fine frame is
// exhausted it pulls the next coarser bucket down, re-bucketing its
// elements at finer granularity (the gear shift).
func (q *Queue) Pop() (core.Element, error) {
	if q.size == 0 {
		return core.Element{}, core.ErrEmpty
	}
	for {
		// Serve the finest gear if any bucket is loaded.
		g0 := q.gears[0]
		for i := 0; i < q.buckets; i++ {
			slot := (q.heads[0] + i) % q.buckets
			if len(g0[slot]) > 0 {
				// Rotate the head so vtime tracks served buckets.
				q.heads[0] = slot
				q.vtime += uint64(i) * q.width
				e := g0[slot][0]
				g0[slot] = g0[slot][1:]
				if len(g0[slot]) == 0 {
					g0[slot] = nil
				}
				q.size--
				return e, nil
			}
		}
		// Finest frame empty: shift the earliest loaded coarser bucket
		// down, advancing virtual time to that bucket's start.
		if !q.shift() {
			panic("gearbox: size > 0 but no loaded bucket")
		}
	}
}

// shift migrates the earliest non-empty bucket of the coarsest-first
// loaded gear into finer gears. Returns false when all gears are
// empty.
func (q *Queue) shift() bool {
	for g := 1; g < len(q.gears); g++ {
		w := q.gearWidth(g)
		for i := 0; i < q.buckets; i++ {
			slot := (q.heads[g] + i) % q.buckets
			if len(q.gears[g][slot]) == 0 {
				continue
			}
			elems := q.gears[g][slot]
			q.gears[g][slot] = nil
			// The finest frame jumps forward to this bucket's start.
			q.vtime += uint64(i) * w
			q.heads[g] = slot
			q.heads[0] = 0
			for _, e := range elems {
				q.migrations++
				q.file(e)
			}
			return true
		}
	}
	return false
}

// Peek returns the element Pop would serve next.
func (q *Queue) Peek() (core.Element, error) {
	if q.size == 0 {
		return core.Element{}, core.ErrEmpty
	}
	// Peek must not mutate: simulate by scanning fine gear, else the
	// earliest coarse bucket's FIFO head after a hypothetical shift —
	// for simplicity scan gears in order for the earliest loaded
	// bucket's head element.
	for g := range q.gears {
		for i := 0; i < q.buckets; i++ {
			slot := (q.heads[g] + i) % q.buckets
			if len(q.gears[g][slot]) > 0 {
				return q.gears[g][slot][0], nil
			}
		}
	}
	return core.Element{}, core.ErrEmpty
}
