package gearbox

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func TestBasicOrder(t *testing.T) {
	q := New(3, 4, 10, 64) // horizon 10*4^3 = 640
	for _, r := range []uint64{500, 35, 180, 5} {
		if err := q.Push(core.Element{Value: r}); err != nil {
			t.Fatal(err)
		}
	}
	want := []uint64{5, 35, 180, 500}
	for _, w := range want {
		e, err := q.Pop()
		if err != nil || e.Value != w {
			t.Fatalf("pop = %v,%v want %d", e, err, w)
		}
	}
	if _, err := q.Pop(); err != core.ErrEmpty {
		t.Fatalf("pop empty = %v", err)
	}
}

// TestHorizonBeatsFlatCalendar: with the same bucket count, the
// gearbox covers a far larger rank span than a flat calendar, which is
// its reason to exist (the paper's "limited range of values" problem).
func TestHorizonBeatsFlatCalendar(t *testing.T) {
	q := New(3, 8, 10, 64)
	flatHorizon := uint64(3*8) * 10 // same 24 buckets in one flat ring
	if q.Horizon() <= flatHorizon*4 {
		t.Fatalf("gearbox horizon %d not ≫ flat %d", q.Horizon(), flatHorizon)
	}
	// A rank far beyond the flat horizon still orders correctly.
	q.Push(core.Element{Value: 5000})
	q.Push(core.Element{Value: 3})
	e, _ := q.Pop()
	if e.Value != 3 {
		t.Fatalf("near rank served %d first", e.Value)
	}
	e, _ = q.Pop()
	if e.Value != 5000 {
		t.Fatalf("far rank = %d", e.Value)
	}
	if _, over := q.Stats(); over != 0 {
		t.Fatalf("rank within horizon counted as overflow")
	}
}

// TestGearShiftMigration: draining into the future forces coarse
// buckets to re-bucket into fine gears.
func TestGearShiftMigration(t *testing.T) {
	q := New(2, 4, 10, 64) // fine span 40, horizon 160
	// Two elements in the same coarse bucket but different fine buckets.
	q.Push(core.Element{Value: 50})
	q.Push(core.Element{Value: 75})
	e1, _ := q.Pop()
	e2, _ := q.Pop()
	if e1.Value != 50 || e2.Value != 75 {
		t.Fatalf("coarse bucket not refined: %d then %d", e1.Value, e2.Value)
	}
	mig, _ := q.Stats()
	if mig == 0 {
		t.Fatal("no migrations recorded")
	}
}

// TestBoundedInversions: on a mostly-increasing rank stream the
// gearbox's inversions are bounded by bucket granularity — far fewer
// than total pops — while an exact BMW-Tree has none.
func TestBoundedInversions(t *testing.T) {
	q := New(3, 16, 16, 1024) // fine span 256, gear-1 span 4096
	tr := core.New(2, 10)
	rng := rand.New(rand.NewSource(5))
	var gm, bm stats.InversionMeter
	next := uint64(100)
	inq := 0
	for step := 0; step < 30000; step++ {
		if inq < 100 && (inq == 0 || rng.Intn(2) == 0) {
			r := next + uint64(rng.Intn(32))
			next += uint64(rng.Intn(8))
			q.Push(core.Element{Value: r})
			tr.Push(core.Element{Value: r})
			inq++
		} else {
			e1, err := q.Pop()
			if err != nil {
				t.Fatal(err)
			}
			e2, _ := tr.Pop()
			gm.Observe(e1.Value)
			bm.Observe(e2.Value)
			inq--
		}
	}
	if gm.Rate() > 0.5 {
		t.Fatalf("gearbox inversion rate %.2f unbounded", gm.Rate())
	}
	t.Logf("inversion rate: gearbox %.3f (mean magnitude %.1f), exact tree %.3f",
		gm.Rate(), gm.MeanMagnitude(), bm.Rate())
}

func TestCapacity(t *testing.T) {
	q := New(2, 2, 1, 2)
	q.Push(core.Element{Value: 1})
	q.Push(core.Element{Value: 2})
	if err := q.Push(core.Element{Value: 3}); err != core.ErrFull {
		t.Fatalf("push full = %v", err)
	}
}

func TestPeekMatchesPop(t *testing.T) {
	q := New(2, 4, 10, 32)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		q.Push(core.Element{Value: uint64(rng.Intn(150)), Meta: uint64(i)})
	}
	for q.Len() > 0 {
		p, err := q.Peek()
		if err != nil {
			t.Fatal(err)
		}
		e, err := q.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if p != e {
			t.Fatalf("peek %v != pop %v", p, e)
		}
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 4, 10, 8) },
		func() { New(2, 1, 10, 8) },
		func() { New(2, 4, 0, 8) },
		func() { New(2, 4, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid params did not panic")
				}
			}()
			fn()
		}()
	}
}
