package gearbox

import "repro/internal/obs"

// Instrument registers the queue's probes in reg under the given
// metric-name prefix. All instruments are snapshot-time callbacks
// reading queue state — snapshot only between operations. Migrations
// count elements re-filed from a coarse gear into a finer one as the
// horizon advances; overflows count ranks squashed into the last
// bucket (the coarse gear's unbounded-inversion region). A nil
// registry is a no-op.
func (q *Queue) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.CounterFunc(prefix+"_migrations_total", func() uint64 { return q.migrations })
	reg.CounterFunc(prefix+"_overflowed_total", func() uint64 { return q.overflowed })
	reg.GaugeFunc(prefix+"_occupancy", func() float64 { return float64(q.size) })
	reg.GaugeFunc(prefix+"_capacity", func() float64 { return float64(q.cap) })
	reg.GaugeFunc(prefix+"_horizon_ranks", func() float64 { return float64(q.Horizon()) })
}
