// Package tcp implements a packet-level TCP New Reno model — the
// congestion control the paper's NS-3 evaluation applies to all source
// hosts (Section 6.4). It provides what a flow-completion-time study
// needs: slow start, congestion avoidance, fast retransmit / NewReno
// fast recovery with partial-ACK retransmission, retransmission
// timeouts with exponential backoff and Karn's algorithm for RTT
// sampling, and a cumulative-ACK receiver with out-of-order buffering.
//
// Simplifications relative to a kernel stack, chosen to keep the FCT
// dynamics faithful while staying simulator-sized: no receiver-window
// limit (memory is ample), no delayed ACKs (one ACK per data segment),
// byte-counting windows, and go-back-N after a timeout (the canonical
// behaviour of simple simulators; it only makes timeouts costlier,
// which is the effect the experiment measures).
package tcp

import (
	"fmt"

	"repro/internal/eventq"
)

// Segment is a TCP segment on the wire: either data (Len > 0) or a
// pure cumulative ACK.
type Segment struct {
	Flow  uint32
	Seq   uint64 // first payload byte offset
	Len   uint32 // payload bytes (0 for pure ACK)
	IsAck bool
	AckNo uint64 // next expected byte (cumulative)

	// CE is the ECN congestion-experienced codepoint, set by a marking
	// queue in the network; ECE echoes it back on the ACK path.
	CE  bool
	ECE bool
}

// Config holds the transport parameters.
type Config struct {
	MSS          uint32 // payload bytes per segment
	InitCwndMSS  uint32 // initial window in segments
	MaxCwndMSS   uint32 // window cap in segments (stands in for rwnd; 0 = unlimited)
	MinRTONs     uint64
	InitRTONs    uint64
	MaxRTONs     uint64
	DupAckThresh int

	// DCTCP enables the data-center TCP reaction to ECN marks
	// (Alizadeh et al. — the same study the web-search workload comes
	// from): the window shrinks in proportion to the fraction alpha of
	// marked bytes, estimated with gain DCTCPg per window. Loss
	// handling stays NewReno.
	DCTCP  bool
	DCTCPg float64
}

// DefaultConfig mirrors common simulator settings: 1460-byte MSS,
// initial window of 10 segments, 200 ms minimum RTO, 1 s initial RTO.
func DefaultConfig() Config {
	return Config{
		MSS:          1460,
		InitCwndMSS:  10,
		MaxCwndMSS:   4096,
		MinRTONs:     200e6,
		InitRTONs:    1e9,
		MaxRTONs:     60e9,
		DupAckThresh: 3,
	}
}

// sentInfo tracks one in-flight segment for RTT sampling.
type sentInfo struct {
	sentAt uint64
	retx   bool
}

// Sender is the NewReno sending side of one flow.
type Sender struct {
	cfg    Config
	q      *eventq.Queue
	flow   uint32
	total  uint64
	output func(Segment)
	onDone func(finishNs uint64)

	sndUna uint64
	sndNxt uint64

	cwnd     float64 // bytes
	ssthresh float64
	inFR     bool
	recover  uint64
	dupAcks  int

	srtt, rttvar float64
	rto          uint64
	haveRTT      bool

	// DCTCP state.
	alpha       float64
	ackedBytes  uint64
	markedBytes uint64
	alphaEnd    uint64 // alpha observation window ends when sndUna passes this
	cutEnd      uint64 // at most one multiplicative cut per window of data

	sent map[uint64]sentInfo // keyed by segment end offset

	timerGen uint64
	done     bool

	// Counters for tests and reporting.
	Retransmits uint64
	Timeouts    uint64
	FastRecov   uint64
}

// NewSender creates a sender for a flow of total bytes. output
// transmits a segment into the network; onDone fires once when the last
// byte is cumulatively acknowledged.
func NewSender(q *eventq.Queue, cfg Config, flow uint32, total uint64, output func(Segment), onDone func(uint64)) *Sender {
	if total == 0 {
		panic("tcp: empty flow")
	}
	if cfg.MSS == 0 || cfg.DupAckThresh <= 0 {
		panic("tcp: invalid config")
	}
	return &Sender{
		cfg:      cfg,
		q:        q,
		flow:     flow,
		total:    total,
		output:   output,
		onDone:   onDone,
		cwnd:     float64(cfg.InitCwndMSS) * float64(cfg.MSS),
		ssthresh: 1 << 50, // effectively unbounded until the first loss
		rto:      cfg.InitRTONs,
		sent:     make(map[uint64]sentInfo),
	}
}

// Start begins transmission (sends the initial window).
func (s *Sender) Start() { s.trySend() }

// Done reports whether the flow completed.
func (s *Sender) Done() bool { return s.done }

// Flow returns the flow ID.
func (s *Sender) Flow() uint32 { return s.flow }

// inflight returns the outstanding bytes.
func (s *Sender) inflight() uint64 { return s.sndNxt - s.sndUna }

// trySend transmits new data while the effective window (cwnd capped
// by the receiver-window stand-in) allows.
func (s *Sender) trySend() {
	wnd := s.cwnd
	if s.cfg.MaxCwndMSS > 0 {
		if cap := float64(s.cfg.MaxCwndMSS) * float64(s.cfg.MSS); wnd > cap {
			wnd = cap
		}
	}
	for !s.done && s.sndNxt < s.total {
		segLen := uint64(s.cfg.MSS)
		if s.sndNxt+segLen > s.total {
			segLen = s.total - s.sndNxt
		}
		if float64(s.inflight()+segLen) > wnd {
			break
		}
		s.transmit(s.sndNxt, uint32(segLen), false)
		s.sndNxt += segLen
	}
	s.armTimer()
}

// transmit emits one segment and records its send time for RTT
// sampling (suppressed on retransmissions per Karn's algorithm).
func (s *Sender) transmit(seq uint64, n uint32, isRetx bool) {
	end := seq + uint64(n)
	info := sentInfo{sentAt: s.q.Now(), retx: isRetx}
	if _, ok := s.sent[end]; ok {
		// Re-sending a byte range already transmitted (fast retransmit or
		// post-timeout go-back-N): excluded from RTT sampling per Karn.
		info.retx = true
	}
	s.sent[end] = info
	if info.retx {
		s.Retransmits++
	}
	s.output(Segment{Flow: s.flow, Seq: seq, Len: n})
}

// armTimer (re)starts the retransmission timer when data is
// outstanding.
func (s *Sender) armTimer() {
	if s.done || s.inflight() == 0 {
		s.timerGen++ // disarm
		return
	}
	s.timerGen++
	gen := s.timerGen
	s.q.After(s.rto, func() {
		if gen == s.timerGen && !s.done {
			s.onTimeout()
		}
	})
}

// OnAck processes a cumulative acknowledgement.
func (s *Sender) OnAck(ackNo uint64) { s.OnAckECN(ackNo, false) }

// OnAckECN processes a cumulative acknowledgement carrying an ECN
// echo. With Config.DCTCP set, marked bytes feed the alpha estimator
// and trigger at most one proportional window cut per window of data.
func (s *Sender) OnAckECN(ackNo uint64, ece bool) {
	if s.done {
		return
	}
	if s.cfg.DCTCP && ackNo > s.sndUna {
		s.dctcpObserve(ackNo, ece)
	}
	switch {
	case ackNo > s.sndUna:
		s.onNewAck(ackNo)
	case ackNo == s.sndUna && s.inflight() > 0:
		s.onDupAck()
	}
}

// dctcpObserve accumulates the marked-byte fraction and applies the
// DCTCP window law: once per window, alpha <- (1-g)alpha + gF and, if
// any bytes were marked, cwnd <- cwnd(1 - alpha/2).
func (s *Sender) dctcpObserve(ackNo uint64, ece bool) {
	acked := ackNo - s.sndUna
	s.ackedBytes += acked
	if ece {
		s.markedBytes += acked
	}
	if ackNo < s.alphaEnd {
		// Still observing the current window.
		if ece && ackNo >= s.cutEnd {
			s.cut()
		}
		return
	}
	if s.ackedBytes > 0 {
		g := s.cfg.DCTCPg
		if g <= 0 || g > 1 {
			g = 1.0 / 16
		}
		f := float64(s.markedBytes) / float64(s.ackedBytes)
		s.alpha = (1-g)*s.alpha + g*f
	}
	if ece && ackNo >= s.cutEnd {
		s.cut()
	}
	s.ackedBytes, s.markedBytes = 0, 0
	s.alphaEnd = s.sndNxt
}

// cut applies one multiplicative DCTCP decrease and leaves slow start.
func (s *Sender) cut() {
	s.cwnd *= 1 - s.alpha/2
	if min := float64(s.cfg.MSS); s.cwnd < min {
		s.cwnd = min
	}
	s.ssthresh = s.cwnd
	s.cutEnd = s.sndNxt // at most one cut per in-flight window
}

// Alpha returns the DCTCP mark-fraction estimate (tests).
func (s *Sender) Alpha() float64 { return s.alpha }

func (s *Sender) onNewAck(ackNo uint64) {
	// RTT sample from the newest segment this ACK covers, if it was
	// never retransmitted (Karn).
	if info, ok := s.sent[ackNo]; ok && !info.retx {
		s.sampleRTT(s.q.Now() - info.sentAt)
	}
	// Segment ends are MSS-aligned (the final one ends at total), so the
	// acked range can be cleaned in O(acked/MSS) instead of scanning the
	// whole in-flight map per ACK.
	mss := uint64(s.cfg.MSS)
	for end := (s.sndUna/mss)*mss + mss; end <= ackNo; end += mss {
		delete(s.sent, end)
	}
	delete(s.sent, ackNo)
	acked := ackNo - s.sndUna
	s.sndUna = ackNo
	s.dupAcks = 0

	if s.inFR {
		if ackNo >= s.recover {
			// Full ACK: leave fast recovery (deflate).
			s.inFR = false
			s.cwnd = s.ssthresh
		} else {
			// Partial ACK (NewReno): retransmit the next hole, deflate by
			// the amount acked, stay in recovery.
			s.retransmitOne(s.sndUna)
			s.cwnd -= float64(acked)
			if s.cwnd < float64(s.cfg.MSS) {
				s.cwnd = float64(s.cfg.MSS)
			}
			s.cwnd += float64(s.cfg.MSS)
		}
	} else if s.cwnd < s.ssthresh {
		// Slow start: one MSS per ACK.
		s.cwnd += float64(s.cfg.MSS)
	} else {
		// Congestion avoidance: MSS*MSS/cwnd per ACK.
		s.cwnd += float64(s.cfg.MSS) * float64(s.cfg.MSS) / s.cwnd
	}

	if s.sndUna >= s.total {
		s.done = true
		s.timerGen++
		s.onDone(s.q.Now())
		return
	}
	s.trySend()
}

func (s *Sender) onDupAck() {
	s.dupAcks++
	if s.inFR {
		// Window inflation per duplicate ACK.
		s.cwnd += float64(s.cfg.MSS)
		s.trySend()
		return
	}
	if s.dupAcks == s.cfg.DupAckThresh {
		// Fast retransmit + NewReno fast recovery.
		s.FastRecov++
		s.inFR = true
		s.recover = s.sndNxt
		s.ssthresh = s.halfFlight()
		s.cwnd = s.ssthresh + float64(s.cfg.DupAckThresh)*float64(s.cfg.MSS)
		s.retransmitOne(s.sndUna)
		s.armTimer()
	}
}

// retransmitOne resends the segment starting at seq.
func (s *Sender) retransmitOne(seq uint64) {
	n := uint64(s.cfg.MSS)
	if seq+n > s.total {
		n = s.total - seq
	}
	if seq+n > s.sndNxt {
		n = s.sndNxt - seq
	}
	if n == 0 {
		return
	}
	s.transmit(seq, uint32(n), true)
}

func (s *Sender) onTimeout() {
	s.Timeouts++
	s.ssthresh = s.halfFlight()
	s.cwnd = float64(s.cfg.MSS)
	s.inFR = false
	s.dupAcks = 0
	// Go-back-N: retransmit from the first unacknowledged byte.
	s.sndNxt = s.sndUna
	// Exponential backoff.
	s.rto *= 2
	if s.rto > s.cfg.MaxRTONs {
		s.rto = s.cfg.MaxRTONs
	}
	s.trySend()
}

// halfFlight returns max(inflight/2, 2*MSS) in bytes.
func (s *Sender) halfFlight() float64 {
	half := float64(s.inflight()) / 2
	if min := 2 * float64(s.cfg.MSS); half < min {
		half = min
	}
	return half
}

// sampleRTT runs the Jacobson/Karels estimator and clamps the RTO.
func (s *Sender) sampleRTT(rtt uint64) {
	r := float64(rtt)
	if !s.haveRTT {
		s.srtt = r
		s.rttvar = r / 2
		s.haveRTT = true
	} else {
		const alpha, beta = 0.125, 0.25
		d := s.srtt - r
		if d < 0 {
			d = -d
		}
		s.rttvar = (1-beta)*s.rttvar + beta*d
		s.srtt = (1-alpha)*s.srtt + alpha*r
	}
	rto := uint64(s.srtt + 4*s.rttvar)
	if rto < s.cfg.MinRTONs {
		rto = s.cfg.MinRTONs
	}
	if rto > s.cfg.MaxRTONs {
		rto = s.cfg.MaxRTONs
	}
	s.rto = rto
}

// SRTT returns the smoothed RTT estimate in nanoseconds (0 until the
// first sample).
func (s *Sender) SRTT() uint64 { return uint64(s.srtt) }

// RTO returns the current retransmission timeout.
func (s *Sender) RTO() uint64 { return s.rto }

// Cwnd returns the congestion window in bytes.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// Receiver is the receiving side of one flow: cumulative ACKs with
// out-of-order buffering.
type Receiver struct {
	expected uint64
	ooo      map[uint64]uint32 // seq -> len
	sendAck  func(ackNo uint64, ece bool)

	// Received counts distinct payload bytes delivered in order.
	Received uint64
}

// NewReceiver creates a receiver; sendAck transmits a cumulative ACK
// back to the sender, echoing the segment's ECN mark (ece).
func NewReceiver(sendAck func(ackNo uint64, ece bool)) *Receiver {
	return &Receiver{ooo: make(map[uint64]uint32), sendAck: sendAck}
}

// OnData processes a data segment and emits an ACK.
func (r *Receiver) OnData(seg Segment) {
	if seg.Len == 0 {
		panic(fmt.Sprintf("tcp: zero-length data segment %+v", seg))
	}
	switch {
	case seg.Seq == r.expected:
		r.expected += uint64(seg.Len)
		// Drain any now-contiguous buffered segments.
		for {
			l, ok := r.ooo[r.expected]
			if !ok {
				break
			}
			delete(r.ooo, r.expected)
			r.expected += uint64(l)
		}
	case seg.Seq > r.expected:
		r.ooo[seg.Seq] = seg.Len
	default:
		// Fully or partially duplicate segment below the cumulative
		// point: a retransmission overlap; nothing to store.
	}
	r.Received = r.expected
	r.sendAck(r.expected, seg.CE)
}

// Expected returns the next in-order byte the receiver awaits.
func (r *Receiver) Expected() uint64 { return r.expected }
