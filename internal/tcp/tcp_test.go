package tcp

import (
	"testing"

	"repro/internal/eventq"
)

// harness wires a sender and receiver over a perfect fixed-delay link,
// with an optional per-segment drop decision on the data path.
type harness struct {
	q         *eventq.Queue
	snd       *Sender
	rcv       *Receiver
	delay     uint64
	dropData  func(seg Segment, nth uint64) bool
	nthData   uint64
	finished  bool
	finishNs  uint64
	delivered uint64
}

func newHarness(total uint64, cfg Config, delay uint64, drop func(Segment, uint64) bool) *harness {
	h := &harness{q: eventq.New(), delay: delay, dropData: drop}
	h.rcv = NewReceiver(func(ackNo uint64, ece bool) {
		h.q.After(h.delay, func() { h.snd.OnAckECN(ackNo, ece) })
	})
	h.snd = NewSender(h.q, cfg, 1, total,
		func(seg Segment) {
			h.nthData++
			if h.dropData != nil && h.dropData(seg, h.nthData) {
				return
			}
			h.q.After(h.delay, func() {
				h.rcv.OnData(seg)
				h.delivered++
			})
		},
		func(fin uint64) { h.finished = true; h.finishNs = fin })
	return h
}

func (h *harness) run(t *testing.T) {
	t.Helper()
	h.snd.Start()
	h.q.Run(10_000_000)
	if !h.finished {
		t.Fatalf("flow did not complete: una=%d nxt=%d cwnd=%.0f timeouts=%d",
			h.snd.sndUna, h.snd.sndNxt, h.snd.Cwnd(), h.snd.Timeouts)
	}
}

func TestLosslessTransfer(t *testing.T) {
	cfg := DefaultConfig()
	const total = 1_000_000
	h := newHarness(total, cfg, 1e6, nil) // 1 ms one-way, RTT 2 ms
	h.run(t)
	if h.rcv.Expected() != total {
		t.Fatalf("receiver got %d bytes, want %d", h.rcv.Expected(), total)
	}
	if h.snd.Retransmits != 0 || h.snd.Timeouts != 0 {
		t.Fatalf("lossless run had %d retransmits, %d timeouts", h.snd.Retransmits, h.snd.Timeouts)
	}
	// RTT estimate near 2 ms.
	if srtt := h.snd.SRTT(); srtt < 1_900_000 || srtt > 2_200_000 {
		t.Errorf("SRTT = %d, want ≈2ms", srtt)
	}
	if h.snd.RTO() < cfg.MinRTONs {
		t.Error("RTO below minimum")
	}
}

func TestTinyFlowSingleSegment(t *testing.T) {
	h := newHarness(100, DefaultConfig(), 1e6, nil)
	h.run(t)
	if h.rcv.Expected() != 100 {
		t.Fatalf("got %d bytes", h.rcv.Expected())
	}
	// One data segment, completion in one RTT.
	if h.finishNs != 2e6 {
		t.Errorf("FCT = %d, want 2e6 (one RTT)", h.finishNs)
	}
}

// TestSlowStartGrowth: with a large transfer and no loss, the window
// doubles every RTT initially.
func TestSlowStartGrowth(t *testing.T) {
	cfg := DefaultConfig()
	h := newHarness(5_000_000, cfg, 1e6, nil)
	h.snd.Start()
	// After a few RTTs the window should exceed the initial by 4x.
	h.q.RunUntil(8e6) // 4 RTTs
	if h.snd.Cwnd() < 4*float64(cfg.InitCwndMSS)*float64(cfg.MSS) {
		t.Fatalf("cwnd after 4 RTT = %.0f, want exponential growth", h.snd.Cwnd())
	}
	h.q.Run(10_000_000)
	if !h.finished {
		t.Fatal("did not finish")
	}
}

// TestFastRetransmit drops exactly one mid-stream segment: the loss is
// repaired by fast retransmit (no timeout) and the transfer completes.
func TestFastRetransmit(t *testing.T) {
	cfg := DefaultConfig()
	const total = 2_000_000
	h := newHarness(total, cfg, 1e6, func(seg Segment, nth uint64) bool {
		return nth == 20 // drop the 20th transmitted data segment
	})
	h.run(t)
	if h.rcv.Expected() != total {
		t.Fatalf("receiver got %d", h.rcv.Expected())
	}
	if h.snd.FastRecov != 1 {
		t.Fatalf("fast recoveries = %d, want 1", h.snd.FastRecov)
	}
	if h.snd.Timeouts != 0 {
		t.Fatalf("timeouts = %d, want 0 (loss repaired by fast retransmit)", h.snd.Timeouts)
	}
	if h.snd.Retransmits == 0 {
		t.Fatal("no retransmission recorded")
	}
}

// TestNewRenoPartialAcks drops several segments from one window: NewReno
// repairs them one per partial ACK within a single fast-recovery epoch.
func TestNewRenoPartialAcks(t *testing.T) {
	cfg := DefaultConfig()
	const total = 2_000_000
	h := newHarness(total, cfg, 1e6, func(seg Segment, nth uint64) bool {
		return nth == 30 || nth == 32 || nth == 34
	})
	h.run(t)
	if h.rcv.Expected() != total {
		t.Fatalf("receiver got %d", h.rcv.Expected())
	}
	if h.snd.FastRecov != 1 {
		t.Fatalf("fast recoveries = %d, want 1 (partial ACKs stay in one epoch)", h.snd.FastRecov)
	}
	if h.snd.Timeouts != 0 {
		t.Fatalf("timeouts = %d, want 0", h.snd.Timeouts)
	}
}

// TestTimeoutOnTailLoss: dropping the final segments leaves too few
// dupacks, so recovery needs the RTO and exponential backoff.
func TestTimeoutOnTailLoss(t *testing.T) {
	cfg := DefaultConfig()
	const total = 14600 // exactly 10 MSS
	drops := map[uint64]bool{9: true, 10: true}
	h := newHarness(total, cfg, 1e6, func(seg Segment, nth uint64) bool {
		return drops[nth]
	})
	h.run(t)
	if h.rcv.Expected() != total {
		t.Fatalf("receiver got %d", h.rcv.Expected())
	}
	if h.snd.Timeouts == 0 {
		t.Fatal("tail loss must trigger a timeout")
	}
	// FCT must include at least one RTO; the first eight segments'
	// RTT samples legitimately shrink the RTO down to the minimum.
	if h.finishNs < cfg.MinRTONs {
		t.Fatalf("FCT %d shorter than one minimum RTO", h.finishNs)
	}
}

// TestHeavyRandomLoss: 5% deterministic-pattern loss still completes,
// exercising interleaved fast recoveries and timeouts, and the receiver
// sees every byte exactly once in order.
func TestHeavyRandomLoss(t *testing.T) {
	cfg := DefaultConfig()
	const total = 3_000_000
	h := newHarness(total, cfg, 1e6, func(seg Segment, nth uint64) bool {
		return nth%20 == 13
	})
	h.run(t)
	if h.rcv.Expected() != total {
		t.Fatalf("receiver got %d", h.rcv.Expected())
	}
	if h.snd.Retransmits == 0 {
		t.Fatal("expected retransmissions under 5% loss")
	}
}

// TestRTOBackoff verifies exponential backoff when every packet is lost
// for a while.
func TestRTOBackoff(t *testing.T) {
	cfg := DefaultConfig()
	blackhole := true
	h := newHarness(100_000, cfg, 1e6, func(seg Segment, nth uint64) bool {
		return blackhole
	})
	h.snd.Start()
	h.q.RunUntil(uint64(7.2e9)) // RTOs at 1s, +2s, +4s
	if h.snd.Timeouts < 3 {
		t.Fatalf("timeouts = %d, want >= 3", h.snd.Timeouts)
	}
	if h.snd.RTO() < 8e9 {
		t.Fatalf("RTO = %d, want >= 8e9 after 3 backoffs", h.snd.RTO())
	}
	// Heal the path; the flow must still complete.
	blackhole = false
	h.q.Run(10_000_000)
	if !h.finished {
		t.Fatal("flow did not complete after blackhole healed")
	}
}

// TestCwndCollapsesOnTimeout: after an RTO the window restarts from one
// MSS (slow start).
func TestCwndCollapsesOnTimeout(t *testing.T) {
	cfg := DefaultConfig()
	dropping := false
	h := newHarness(5_000_000, cfg, 1e6, func(seg Segment, nth uint64) bool {
		return dropping
	})
	h.snd.Start()
	h.q.RunUntil(6e6)
	if h.snd.Cwnd() <= float64(cfg.InitCwndMSS)*float64(cfg.MSS) {
		t.Fatal("cwnd did not grow before loss")
	}
	dropping = true
	h.q.RunUntil(h.q.Now() + 3e9)
	if h.snd.Timeouts == 0 {
		t.Fatal("no timeout during blackhole")
	}
	dropping = false
	// Immediately after the RTO the window restarted at 1 MSS; it may
	// have grown a little since, but must be far below the pre-loss one.
	if h.snd.Cwnd() > h.snd.ssthresh+float64(cfg.MSS) {
		t.Fatalf("cwnd = %.0f after timeout, ssthresh = %.0f", h.snd.Cwnd(), h.snd.ssthresh)
	}
	h.q.Run(20_000_000)
	if !h.finished {
		t.Fatal("did not finish")
	}
}

// TestReceiverOutOfOrder: the receiver buffers out-of-order segments
// and acknowledges cumulatively.
func TestReceiverOutOfOrder(t *testing.T) {
	var acks []uint64
	r := NewReceiver(func(a uint64, _ bool) { acks = append(acks, a) })
	r.OnData(Segment{Seq: 1460, Len: 1460}) // gap
	r.OnData(Segment{Seq: 2920, Len: 1460}) // gap continues
	if r.Expected() != 0 {
		t.Fatalf("expected = %d before hole filled", r.Expected())
	}
	r.OnData(Segment{Seq: 0, Len: 1460}) // hole fills; drain to 4380
	if r.Expected() != 4380 {
		t.Fatalf("expected = %d, want 4380", r.Expected())
	}
	if len(acks) != 3 || acks[0] != 0 || acks[1] != 0 || acks[2] != 4380 {
		t.Fatalf("acks = %v", acks)
	}
	// Duplicate data is re-acked but not double counted.
	r.OnData(Segment{Seq: 0, Len: 1460})
	if r.Expected() != 4380 {
		t.Fatal("duplicate moved the cumulative point")
	}
}

func TestConfigValidation(t *testing.T) {
	q := eventq.New()
	for name, fn := range map[string]func(){
		"empty flow": func() { NewSender(q, DefaultConfig(), 1, 0, nil, nil) },
		"zero mss":   func() { NewSender(q, Config{DupAckThresh: 3}, 1, 10, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// markingHarness wires sender/receiver over a link that sets the CE
// codepoint on a configurable fraction of data segments.
func newMarkingHarness(total uint64, cfg Config, delay uint64, mark func(nth uint64) bool) *harness {
	h := &harness{q: eventq.New(), delay: delay}
	h.rcv = NewReceiver(func(ackNo uint64, ece bool) {
		h.q.After(h.delay, func() { h.snd.OnAckECN(ackNo, ece) })
	})
	h.snd = NewSender(h.q, cfg, 1, total,
		func(seg Segment) {
			h.nthData++
			if mark != nil && mark(h.nthData) {
				seg.CE = true
			}
			h.q.After(h.delay, func() { h.rcv.OnData(seg) })
		},
		func(fin uint64) { h.finished = true; h.finishNs = fin })
	return h
}

// TestDCTCPAlphaConvergence: with every packet marked, alpha converges
// towards 1 and the window is cut towards halving per window; with no
// marks alpha stays 0 and the window grows unimpeded.
func TestDCTCPAlphaConvergence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DCTCP = true
	cfg.DCTCPg = 0.25
	h := newMarkingHarness(5_000_000, cfg, 1e6, func(nth uint64) bool { return true })
	h.run(t)
	if h.rcv.Expected() != 5_000_000 {
		t.Fatalf("receiver got %d", h.rcv.Expected())
	}
	if h.snd.Alpha() < 0.5 {
		t.Fatalf("alpha = %.3f under full marking, want near 1", h.snd.Alpha())
	}

	clean := newMarkingHarness(5_000_000, cfg, 1e6, nil)
	clean.run(t)
	if clean.snd.Alpha() != 0 {
		t.Fatalf("alpha = %.3f with no marks", clean.snd.Alpha())
	}
}

// TestDCTCPGentlerThanLoss: sparse marking trims the window without
// retransmissions — ECN signals congestion without losing packets.
func TestDCTCPGentlerThanLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DCTCP = true
	h := newMarkingHarness(3_000_000, cfg, 1e6, func(nth uint64) bool { return nth%10 == 0 })
	h.run(t)
	if h.snd.Retransmits != 0 || h.snd.Timeouts != 0 {
		t.Fatalf("marking caused retransmissions: %d/%d", h.snd.Retransmits, h.snd.Timeouts)
	}
	if h.snd.Alpha() == 0 {
		t.Fatal("alpha never updated despite marks")
	}
}

// TestDCTCPCutOncePerWindow: a burst of marked ACKs within one window
// must not collapse the window exponentially.
func TestDCTCPCutOncePerWindow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DCTCP = true
	q := eventq.New()
	var snd *Sender
	snd = NewSender(q, cfg, 1, 10_000_000, func(Segment) {}, func(uint64) {})
	snd.Start()
	before := snd.Cwnd()
	// Deliver marked ACKs covering three segments of the same window.
	snd.OnAckECN(uint64(cfg.MSS), true)
	afterFirst := snd.Cwnd()
	snd.OnAckECN(uint64(cfg.MSS)*2, true)
	snd.OnAckECN(uint64(cfg.MSS)*3, true)
	afterThree := snd.Cwnd()
	if afterFirst >= before {
		t.Fatalf("no cut on first marked ACK: %.0f -> %.0f", before, afterFirst)
	}
	// Subsequent marked ACKs in the same window grow cwnd normally
	// (slow-start/CA increments) but apply no further multiplicative
	// cuts: the window must not keep shrinking.
	if afterThree < afterFirst {
		t.Fatalf("window cut more than once per window: %.0f then %.0f", afterFirst, afterThree)
	}
}
