// Package treecheck verifies the structural invariants of a BMW-Tree
// (Section 3.1 of the paper) over any implementation that can expose its
// node state: the golden software model and both cycle-accurate hardware
// simulations. Sharing one checker guarantees all implementations are
// held to identical invariants.
package treecheck

import "fmt"

// State is the read-only view of a BMW-Tree's storage. Nodes are indexed
// breadth-first (node n's k-th child is n*M+k+1); slots are indexed
// 0..M-1 within a node. ok is false for an empty slot (counter zero).
type State interface {
	Order() int
	Levels() int
	Len() int
	SlotState(node, i int) (value uint64, count uint32, ok bool)
}

// numNodes returns (m^l-1)/(m-1).
func numNodes(m, l int) int {
	n, p := 0, 1
	for i := 0; i < l; i++ {
		n += p
		p *= m
	}
	return n
}

// Check validates the heap property, counter correctness, emptiness
// below vacant slots, and total-size consistency. It returns nil when
// all invariants hold.
func Check(s State) error {
	m := s.Order()
	nn := numNodes(m, s.Levels())
	total := 0
	for i := 0; i < m; i++ {
		c, err := checkSlot(s, nn, 0, i)
		if err != nil {
			return err
		}
		total += c
	}
	if total != s.Len() {
		return fmt.Errorf("treecheck: root counters sum to %d, Len() is %d", total, s.Len())
	}
	return nil
}

func checkSlot(s State, nn, n, i int) (int, error) {
	m := s.Order()
	val, count, ok := s.SlotState(n, i)
	child := n*m + i + 1
	if !ok {
		if count != 0 {
			return 0, fmt.Errorf("treecheck: node %d slot %d empty but counter %d", n, i, count)
		}
		if err := checkEmptyBelow(s, nn, n, i); err != nil {
			return 0, err
		}
		return 0, nil
	}
	size := 1
	if child < nn {
		for j := 0; j < m; j++ {
			cv, _, cok := s.SlotState(child, j)
			if cok && cv < val {
				return 0, fmt.Errorf("treecheck: heap violation: node %d slot %d value %d > descendant node %d slot %d value %d",
					n, i, val, child, j, cv)
			}
			c, err := checkSlot(s, nn, child, j)
			if err != nil {
				return 0, err
			}
			size += c
		}
	}
	if uint32(size) != count {
		return 0, fmt.Errorf("treecheck: counter violation: node %d slot %d counter %d, sub-tree size %d",
			n, i, count, size)
	}
	return size, nil
}

func checkEmptyBelow(s State, nn, n, i int) error {
	m := s.Order()
	child := n*m + i + 1
	if child >= nn {
		return nil
	}
	for j := 0; j < m; j++ {
		if _, _, ok := s.SlotState(child, j); ok {
			return fmt.Errorf("treecheck: orphan element below empty slot: node %d slot %d", child, j)
		}
		if err := checkEmptyBelow(s, nn, child, j); err != nil {
			return err
		}
	}
	return nil
}
