// Package treecheck verifies the structural invariants of a BMW-Tree
// (Section 3.1 of the paper) over any implementation that can expose its
// node state: the golden software model and both cycle-accurate hardware
// simulations. Sharing one checker guarantees all implementations are
// held to identical invariants.
//
// Violations are reported as typed *Violation errors so callers — in
// particular the online checker mode of the hardware simulators and the
// chaos-soak harness — can classify what kind of corruption the
// invariants caught and where.
package treecheck

import "fmt"

// State is the read-only view of a BMW-Tree's storage. Nodes are indexed
// breadth-first (node n's k-th child is n*M+k+1); slots are indexed
// 0..M-1 within a node. ok is false for an empty slot (counter zero).
type State interface {
	Order() int
	Levels() int
	Len() int
	SlotState(node, i int) (value uint64, count uint32, ok bool)
}

// Kind classifies an invariant violation.
type Kind int

// The violation classes, in the order the checker tests them.
const (
	// HeapViolation: an element is larger than a descendant.
	HeapViolation Kind = iota
	// CounterViolation: a slot's counter disagrees with its sub-tree's
	// actual element count.
	CounterViolation
	// OrphanViolation: an element exists below an empty slot.
	OrphanViolation
	// SizeViolation: the root counters do not sum to Len().
	SizeViolation
)

// String names the violation class.
func (k Kind) String() string {
	switch k {
	case HeapViolation:
		return "heap violation"
	case CounterViolation:
		return "counter violation"
	case OrphanViolation:
		return "orphan element"
	case SizeViolation:
		return "size mismatch"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Violation is one detected invariant breach. Node and Slot locate the
// offending storage (the parent slot for heap violations; -1 when not
// applicable, as for size mismatches).
type Violation struct {
	Kind Kind
	Node int
	Slot int
	Msg  string
}

// Error formats the violation; the message keeps the kind's
// conventional wording ("heap violation", "counter violation",
// "orphan") so log-scraping consumers remain stable.
func (v *Violation) Error() string { return v.Msg }

// Check validates the heap property, counter correctness, emptiness
// below vacant slots, and total-size consistency. It returns nil when
// all invariants hold and a *Violation describing the first breach
// otherwise.
func Check(s State) error {
	m := s.Order()
	nn := numNodes(m, s.Levels())
	total := 0
	for i := 0; i < m; i++ {
		c, v := checkSlot(s, nn, 0, i)
		if v != nil {
			return v
		}
		total += c
	}
	if total != s.Len() {
		return &Violation{Kind: SizeViolation, Node: -1, Slot: -1,
			Msg: fmt.Sprintf("treecheck: root counters sum to %d, Len() is %d", total, s.Len())}
	}
	return nil
}

// Occupancy counts the occupied slots visible in s. When the structure
// is quiescent it equals Len(); while pipeline waves are in flight the
// two differ by a known amount (each in-flight push carries one element
// not yet parked in a slot; each in-flight pop refill leaves one stale
// duplicate parked), which the snapshot restore validators use to
// reconcile a mid-pipeline image against its recorded size.
func Occupancy(s State) int {
	m := s.Order()
	nn := numNodes(m, s.Levels())
	occ := 0
	for n := 0; n < nn; n++ {
		for i := 0; i < m; i++ {
			if _, _, ok := s.SlotState(n, i); ok {
				occ++
			}
		}
	}
	return occ
}

// numNodes returns (m^l-1)/(m-1).
func numNodes(m, l int) int {
	n, p := 0, 1
	for i := 0; i < l; i++ {
		n += p
		p *= m
	}
	return n
}

func checkSlot(s State, nn, n, i int) (int, *Violation) {
	m := s.Order()
	val, count, ok := s.SlotState(n, i)
	child := n*m + i + 1
	if !ok {
		if count != 0 {
			return 0, &Violation{Kind: CounterViolation, Node: n, Slot: i,
				Msg: fmt.Sprintf("treecheck: counter violation: node %d slot %d empty but counter %d", n, i, count)}
		}
		if v := checkEmptyBelow(s, nn, n, i); v != nil {
			return 0, v
		}
		return 0, nil
	}
	size := 1
	if child < nn {
		for j := 0; j < m; j++ {
			cv, _, cok := s.SlotState(child, j)
			if cok && cv < val {
				return 0, &Violation{Kind: HeapViolation, Node: n, Slot: i,
					Msg: fmt.Sprintf("treecheck: heap violation: node %d slot %d value %d > descendant node %d slot %d value %d",
						n, i, val, child, j, cv)}
			}
			c, v := checkSlot(s, nn, child, j)
			if v != nil {
				return 0, v
			}
			size += c
		}
	}
	if uint32(size) != count {
		return 0, &Violation{Kind: CounterViolation, Node: n, Slot: i,
			Msg: fmt.Sprintf("treecheck: counter violation: node %d slot %d counter %d, sub-tree size %d",
				n, i, count, size)}
	}
	return size, nil
}

func checkEmptyBelow(s State, nn, n, i int) *Violation {
	m := s.Order()
	child := n*m + i + 1
	if child >= nn {
		return nil
	}
	for j := 0; j < m; j++ {
		if _, _, ok := s.SlotState(child, j); ok {
			return &Violation{Kind: OrphanViolation, Node: child, Slot: j,
				Msg: fmt.Sprintf("treecheck: orphan element below empty slot: node %d slot %d", child, j)}
		}
		if v := checkEmptyBelow(s, nn, child, j); v != nil {
			return v
		}
	}
	return nil
}
