package treecheck

import (
	"errors"
	"strings"
	"testing"
)

// fakeState is a hand-built tree state for violation injection:
// a 2-level, 2-order tree (nodes 0..2, slots 0..1 each).
type fakeState struct {
	m, l  int
	size  int
	slots map[[2]int][2]uint64 // (node, slot) -> (value, count)
}

func (f *fakeState) Order() int  { return f.m }
func (f *fakeState) Levels() int { return f.l }
func (f *fakeState) Len() int    { return f.size }
func (f *fakeState) SlotState(n, i int) (uint64, uint32, bool) {
	s, ok := f.slots[[2]int{n, i}]
	if !ok {
		return 0, 0, false
	}
	return s[0], uint32(s[1]), s[1] != 0
}

func valid22() *fakeState {
	return &fakeState{
		m: 2, l: 2, size: 3,
		slots: map[[2]int][2]uint64{
			{0, 0}: {5, 2}, // root slot 0: value 5, sub-tree of 2
			{0, 1}: {7, 1}, // root slot 1: value 7, alone
			{1, 0}: {9, 1}, // child of slot 0
		},
	}
}

func TestValidTree(t *testing.T) {
	if err := Check(valid22()); err != nil {
		t.Fatal(err)
	}
}

func TestHeapViolation(t *testing.T) {
	f := valid22()
	f.slots[[2]int{1, 0}] = [2]uint64{3, 1} // child smaller than parent 5
	err := Check(f)
	if err == nil || !strings.Contains(err.Error(), "heap violation") {
		t.Fatalf("err = %v", err)
	}
}

func TestCounterViolation(t *testing.T) {
	f := valid22()
	f.slots[[2]int{0, 0}] = [2]uint64{5, 3} // claims 3, actual sub-tree 2
	err := Check(f)
	if err == nil || !strings.Contains(err.Error(), "counter violation") {
		t.Fatalf("err = %v", err)
	}
}

func TestOrphanBelowEmpty(t *testing.T) {
	f := valid22()
	f.slots[[2]int{2, 1}] = [2]uint64{9, 1} // element below the empty... root slot 1 has no children space? node 2 is slot 1's child
	f.size = 4
	// Root slot 1 counter stays 1 while node 2 holds an element: both a
	// counter violation and an orphan; the checker reports the first it
	// finds walking slot order.
	if err := Check(f); err == nil {
		t.Fatal("corrupted tree passed")
	}
	// Pure orphan: empty root slot 1 with an element below it.
	f2 := valid22()
	delete(f2.slots, [2]int{0, 1})
	f2.slots[[2]int{2, 0}] = [2]uint64{9, 1}
	f2.size = 3
	err := Check(f2)
	if err == nil || !strings.Contains(err.Error(), "orphan") {
		t.Fatalf("err = %v", err)
	}
}

func TestSizeMismatch(t *testing.T) {
	f := valid22()
	f.size = 7
	err := Check(f)
	if err == nil || !strings.Contains(err.Error(), "sum") {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyTree(t *testing.T) {
	f := &fakeState{m: 3, l: 2, size: 0, slots: map[[2]int][2]uint64{}}
	if err := Check(f); err != nil {
		t.Fatal(err)
	}
}

// TestTypedViolations checks that each violation class surfaces as a
// *Violation with the right Kind and location, so the online checker
// mode of the hardware simulators can classify detections.
func TestTypedViolations(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(f *fakeState)
		kind   Kind
		node   int
		slot   int
	}{
		{"heap", func(f *fakeState) { f.slots[[2]int{1, 0}] = [2]uint64{3, 1} }, HeapViolation, 0, 0},
		{"counter", func(f *fakeState) { f.slots[[2]int{0, 0}] = [2]uint64{5, 3} }, CounterViolation, 0, 0},
		{"orphan", func(f *fakeState) {
			delete(f.slots, [2]int{0, 1})
			f.slots[[2]int{2, 0}] = [2]uint64{9, 1}
		}, OrphanViolation, 2, 0},
		{"size", func(f *fakeState) { f.size = 7 }, SizeViolation, -1, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := valid22()
			tc.mutate(f)
			err := Check(f)
			var v *Violation
			if !errors.As(err, &v) {
				t.Fatalf("err %T is not *Violation: %v", err, err)
			}
			if v.Kind != tc.kind {
				t.Fatalf("kind = %v want %v", v.Kind, tc.kind)
			}
			if v.Node != tc.node || v.Slot != tc.slot {
				t.Fatalf("location = (%d,%d) want (%d,%d)", v.Node, v.Slot, tc.node, tc.slot)
			}
		})
	}
}

// TestKindString pins the class names used in soak reports.
func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		HeapViolation:    "heap violation",
		CounterViolation: "counter violation",
		OrphanViolation:  "orphan element",
		SizeViolation:    "size mismatch",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q want %q", int(k), k.String(), want)
		}
	}
}

// TestPhantomCounterViolation models a fault flipping an empty slot's
// counter to nonzero with ok=false semantics preserved by the state
// view — the checker must flag it.
func TestPhantomCounterViolation(t *testing.T) {
	f := valid22()
	// fakeState reports ok=count!=0, so emulate a phantom element the
	// way a flipped counter bit appears through SlotState: an occupied
	// slot whose counter disagrees with the (empty) sub-tree below.
	f.slots[[2]int{0, 1}] = [2]uint64{7, 9}
	err := Check(f)
	var v *Violation
	if !errors.As(err, &v) || v.Kind != CounterViolation {
		t.Fatalf("phantom counter not classified: %v", err)
	}
}
