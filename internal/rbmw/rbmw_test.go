package rbmw

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/treecheck"
)

func TestPushEveryCycle(t *testing.T) {
	s := New(2, 4)
	for i := 0; i < s.Cap(); i++ {
		if !s.PushAvailable() {
			t.Fatal("push_available dropped")
		}
		if _, err := s.Tick(hw.PushOp(uint64(i%7), uint64(i))); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if got := s.Cycle(); got != uint64(s.Cap()) {
		t.Fatalf("pushed %d elements in %d cycles, want one per cycle", s.Cap(), got)
	}
	if !s.AlmostFull() {
		t.Fatal("almost_full not raised at capacity")
	}
	if _, err := s.Tick(hw.PushOp(1, 1)); err != core.ErrFull {
		t.Fatalf("push on full = %v, want ErrFull", err)
	}
}

// TestConsecutivePopsIllegal verifies the pop_available handshake of
// Section 4.2.2: a pop immediately after a pop is rejected, and a push
// or null signal restores availability.
func TestConsecutivePopsIllegal(t *testing.T) {
	s := New(2, 3)
	for i := 0; i < 6; i++ {
		s.Tick(hw.PushOp(uint64(i), 0))
	}
	if _, err := s.Tick(hw.PopOp()); err != nil {
		t.Fatal(err)
	}
	if s.PopAvailable() {
		t.Fatal("pop_available still 1 right after a pop")
	}
	if _, err := s.Tick(hw.PopOp()); err == nil {
		t.Fatal("second consecutive pop accepted")
	}
	// A null signal restores pop_available.
	s.Tick(hw.NopOp())
	if !s.PopAvailable() {
		t.Fatal("pop_available not restored after null")
	}
	if _, err := s.Tick(hw.PopOp()); err != nil {
		t.Fatalf("pop after null: %v", err)
	}
	// A push also restores pop_available (pop-push then pop is legal).
	s.Tick(hw.PushOp(100, 0))
	if !s.PopAvailable() {
		t.Fatal("pop_available not restored after push")
	}
}

// TestPushPopTwoCycles verifies the headline R-BMW rate: a push-pop
// consecutive sequence costs 2 cycles (Figure 4), so n pairs complete in
// 2n cycles.
func TestPushPopTwoCycles(t *testing.T) {
	s := New(2, 11)
	// Preload half the tree.
	for i := 0; i < 100; i++ {
		s.Tick(hw.PushOp(uint64(i), 0))
	}
	start := s.Cycle()
	const pairs = 500
	for i := 0; i < pairs; i++ {
		if _, err := s.Tick(hw.PushOp(uint64(i%64), 0)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Tick(hw.PopOp()); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Cycle() - start; got != 2*pairs {
		t.Fatalf("%d push-pop pairs took %d cycles, want %d", pairs, got, 2*pairs)
	}
}

func TestPopEmpty(t *testing.T) {
	s := New(2, 3)
	if _, err := s.Tick(hw.PopOp()); err != core.ErrEmpty {
		t.Fatalf("pop on empty = %v, want ErrEmpty", err)
	}
}

func TestPopResultCombinatorial(t *testing.T) {
	s := New(2, 3)
	s.Tick(hw.PushOp(42, 7))
	c := s.Cycle()
	e, err := s.Tick(hw.PopOp())
	if err != nil || e == nil {
		t.Fatalf("pop: %v %v", e, err)
	}
	if e.Value != 42 || e.Meta != 7 {
		t.Fatalf("pop result = %+v", *e)
	}
	if s.Cycle() != c+1 {
		t.Fatal("pop result was not emitted in the issuing cycle")
	}
}

func TestDrainSorted(t *testing.T) {
	s := New(4, 3)
	rng := rand.New(rand.NewSource(3))
	n := s.Cap()
	for i := 0; i < n; i++ {
		if _, err := s.Tick(hw.PushOp(uint64(rng.Intn(100)), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	out := s.Drain()
	if len(out) != n {
		t.Fatalf("drained %d, want %d", len(out), n)
	}
	for i := 1; i < len(out); i++ {
		if out[i].Value < out[i-1].Value {
			t.Fatalf("drain not sorted at %d: %d < %d", i, out[i].Value, out[i-1].Value)
		}
	}
	if err := treecheck.Check(s); err != nil {
		t.Fatal(err)
	}
}

// legalDriver issues the same random legal schedule to the wave
// simulator and the golden model and asserts identical pop results.
func legalDriver(t *testing.T, m, l int, ops int, seed int64) {
	t.Helper()
	s := New(m, l)
	g := core.New(m, l)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < ops; i++ {
		var op hw.Op
		switch {
		case g.Len() == 0:
			op = hw.PushOp(uint64(rng.Intn(256)), uint64(i))
		case !s.PopAvailable():
			// After a pop: push or null only.
			if rng.Intn(2) == 0 && !g.AlmostFull() {
				op = hw.PushOp(uint64(rng.Intn(256)), uint64(i))
			} else {
				op = hw.NopOp()
			}
		case g.AlmostFull():
			if rng.Intn(4) == 0 {
				op = hw.NopOp()
			} else {
				op = hw.PopOp()
			}
		default:
			switch rng.Intn(5) {
			case 0:
				op = hw.NopOp()
			case 1, 2:
				op = hw.PushOp(uint64(rng.Intn(256)), uint64(i))
			default:
				op = hw.PopOp()
			}
		}

		got, err := s.Tick(op)
		if err != nil {
			t.Fatalf("m=%d l=%d op %d (%v): %v", m, l, i, op.Kind, err)
		}
		switch op.Kind {
		case hw.Push:
			if err := g.Push(core.Element{Value: op.Value, Meta: op.Meta}); err != nil {
				t.Fatal(err)
			}
		case hw.Pop:
			want, err := g.Pop()
			if err != nil {
				t.Fatal(err)
			}
			if got == nil || *got != want {
				t.Fatalf("m=%d l=%d op %d: sim popped %v, golden model popped %v", m, l, i, got, want)
			}
		}
		if g.Len() != s.Len() {
			t.Fatalf("m=%d l=%d op %d: size mismatch %d vs %d", m, l, i, s.Len(), g.Len())
		}
	}
	// Settle the pipeline and compare full state via invariants plus a
	// complete drain.
	for !s.Quiescent() {
		if _, err := s.Tick(hw.NopOp()); err != nil {
			t.Fatal(err)
		}
	}
	if err := treecheck.Check(s); err != nil {
		t.Fatalf("m=%d l=%d: %v", m, l, err)
	}
	for g.Len() > 0 {
		want, _ := g.Pop()
		for !s.PopAvailable() {
			s.Tick(hw.NopOp())
		}
		got, err := s.Tick(hw.PopOp())
		if err != nil {
			t.Fatal(err)
		}
		if *got != want {
			t.Fatalf("m=%d l=%d final drain: sim %v, golden %v", m, l, got, want)
		}
	}
}

// TestEquivalenceWithGoldenModel is the central correctness property of
// the pipelined design: for every legal issue schedule the wave
// simulation is operation-for-operation identical to the sequential
// golden model (it pops exactly the same (value, meta) pairs).
func TestEquivalenceWithGoldenModel(t *testing.T) {
	shapes := []struct{ m, l int }{{2, 3}, {2, 6}, {2, 11}, {3, 4}, {4, 4}, {4, 6}, {8, 3}, {8, 4}}
	for i, shape := range shapes {
		legalDriver(t, shape.m, shape.l, 5000, int64(i+1))
	}
}

// TestQuickEquivalence drives the same property through testing/quick
// with random shapes and seeds.
func TestQuickEquivalence(t *testing.T) {
	prop := func(mRaw, lRaw uint8, seed int64) bool {
		m := 2 + int(mRaw)%7
		l := 2 + int(lRaw)%4
		legalDriver(t, m, l, 800, seed)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPushPopStress alternates push-pop at the maximum legal rate with
// adversarial value patterns (ascending, descending, constant) and
// validates against the golden model plus a final sorted drain.
func TestPushPopStress(t *testing.T) {
	patterns := map[string]func(i int) uint64{
		"ascending":  func(i int) uint64 { return uint64(i) },
		"descending": func(i int) uint64 { return uint64(1<<20 - i) },
		"constant":   func(i int) uint64 { return 7 },
	}
	for name, f := range patterns {
		t.Run(name, func(t *testing.T) {
			s := New(2, 6)
			g := core.New(2, 6)
			// Preload.
			for i := 0; i < 30; i++ {
				s.Tick(hw.PushOp(f(i), uint64(i)))
				g.Push(core.Element{Value: f(i), Meta: uint64(i)})
			}
			for i := 30; i < 1000; i++ {
				if _, err := s.Tick(hw.PushOp(f(i), uint64(i))); err != nil {
					t.Fatal(err)
				}
				g.Push(core.Element{Value: f(i), Meta: uint64(i)})
				got, err := s.Tick(hw.PopOp())
				if err != nil {
					t.Fatal(err)
				}
				want, _ := g.Pop()
				if *got != want {
					t.Fatalf("%s step %d: sim %v golden %v", name, i, *got, want)
				}
			}
			out := s.Drain()
			for i := 1; i < len(out); i++ {
				if out[i].Value < out[i-1].Value {
					t.Fatalf("%s: drain unsorted", name)
				}
			}
		})
	}
}

// TestBalanceUnderPipeline verifies the insertion-balance property holds
// in the pipelined implementation too: a push-only schedule never leaves
// sibling counters differing by more than 1 once the pipeline settles.
func TestBalanceUnderPipeline(t *testing.T) {
	s := New(4, 4)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < s.Cap(); i++ {
		if _, err := s.Tick(hw.PushOp(uint64(rng.Intn(1000)), 0)); err != nil {
			t.Fatal(err)
		}
	}
	for !s.Quiescent() {
		s.Tick(hw.NopOp())
	}
	if err := treecheck.Check(s); err != nil {
		t.Fatal(err)
	}
	// Full tree: every full node's counters are perfectly determined.
	nn := 0
	for n, p := 0, 1; n < s.Levels()-1; n++ {
		nn += p
		p *= 4
	}
	for n := 0; n < nn; n++ {
		var lo, hi uint32
		for i := 0; i < 4; i++ {
			_, c, ok := s.SlotState(n, i)
			if !ok {
				t.Fatalf("node %d slot %d empty in a full tree", n, i)
			}
			if i == 0 || c < lo {
				lo = c
			}
			if i == 0 || c > hi {
				hi = c
			}
		}
		if hi-lo > 1 {
			t.Fatalf("node %d imbalance %d after push-only fill", n, hi-lo)
		}
	}
}

// TestPlainModeIssueRates verifies the Section 4.2.1 (pre-optimisation)
// ablation: without sustained transfer a pop occupies three cycles and
// blocks pushes too, while the functional results stay identical.
func TestPlainModeIssueRates(t *testing.T) {
	s := New(2, 5)
	s.Sustained = false
	g := core.New(2, 5)
	for i := 0; i < 20; i++ {
		s.Tick(hw.PushOp(uint64(i), 0))
		g.Push(core.Element{Value: uint64(i)})
	}
	if _, err := s.Tick(hw.PopOp()); err != nil {
		t.Fatal(err)
	}
	if s.PushAvailable() || s.PopAvailable() {
		t.Fatal("plain mode: availability must drop for two cycles after a pop")
	}
	if _, err := s.Tick(hw.PushOp(99, 0)); err == nil {
		t.Fatal("plain mode accepted a push right after a pop")
	}
	s.Tick(hw.NopOp())
	if s.PushAvailable() {
		t.Fatal("plain mode: still one blocked cycle to go")
	}
	s.Tick(hw.NopOp())
	if !s.PushAvailable() || !s.PopAvailable() {
		t.Fatal("plain mode: availability not restored after two idle cycles")
	}
	// Functional equivalence is unchanged: drain matches the golden model.
	g.Pop()
	for g.Len() > 0 {
		want, _ := g.Pop()
		for !s.PopAvailable() {
			s.Tick(hw.NopOp())
		}
		got, err := s.Tick(hw.PopOp())
		if err != nil {
			t.Fatal(err)
		}
		if *got != want {
			t.Fatalf("plain mode drain mismatch: %v vs %v", got, want)
		}
	}
}
