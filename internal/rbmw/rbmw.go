// Package rbmw is a cycle-accurate simulation of the register-based
// BMW-Tree (R-BMW) hardware design of Section 4 of the paper.
//
// Every tree node is a modular building block held in flip-flops. The
// pipeline works in waves: an operation issued at the root descends one
// level per clock cycle. The simulation reproduces the optimised design
// with sustained transfer (Section 4.2.2):
//
//   - a push can be issued every cycle (push_available is always 1);
//   - a pop makes pop_available 0 for the following cycle, so two
//     consecutive pops are illegal; pop_available returns to 1 after a
//     push or a null signal;
//   - a push-pop (or pop-push) consecutive sequence therefore completes
//     in 2 cycles, the paper's headline R-BMW rate;
//   - the pop result is emitted combinationally in the issuing cycle via
//     o_pop_result.
//
// Sustained transfer makes every node continuously report its smallest
// element to its parent as combinational logic, so a parent consuming a
// pop can graft the child's minimum in the same cycle. Crucially, a
// node's reported minimum reflects a push being processed at that node
// in the same cycle (the push's effect is pure node-local combinational
// logic), but can never reflect an in-flight pop (that would chain
// combinational paths through every level) — which is exactly why the
// design forbids back-to-back pops.
//
// The simulation keeps per-node registered state and advances it with
// the same two-phase discipline: all push waves are applied first (their
// results are visible combinationally), then pop waves read their
// child's post-push state. The package test suite proves the resulting
// behaviour is operation-for-operation identical to the golden software
// model in internal/core for every legal issue schedule.
package rbmw

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
)

// slot mirrors the pifo_data storage of one element inside a building
// block: value, metadata and the sub-tree counter. born is the low 32
// bits of the clock cycle when the element entered the machine — the
// sojourn-probe tag, carried in the padding after count so the slot
// stays 24 bytes. It is observability side-state, not part of the
// fault-addressable storage word (see fault.go).
type slot struct {
	val   uint64
	meta  uint64
	count uint32
	born  uint32
}

// wave is an operation travelling down the pipeline: it is processed at
// node during the current cycle. Push waves carry the displaced value
// (and its born tag); pop waves recompute the node's minimum slot
// locally (autonomous nodes — Section 3.3). Field order packs born into
// what used to be padding so the struct stays 32 bytes.
type wave struct {
	node int
	val  uint64
	meta uint64
	born uint32
	push bool
}

// Sim is the cycle-accurate R-BMW simulator. It is intentionally
// confined to a single goroutine — it models clocked hardware with one
// issue port per cycle and carries no synchronization; concurrent
// callers go through internal/engine, which gives each simulator an
// exclusively owning shard goroutine.
type Sim struct {
	m, l     int
	nodes    []slot
	numNodes int
	size     int
	capacity int

	cycle uint64

	// instr is the attached observability state (see instrument.go);
	// nil means uninstrumented and every hook is a single nil branch.
	// It lives beside the per-cycle fields so the hooks' nil checks
	// read a cache line the step functions already touch.
	instr *instrumentation

	// Sustained selects the sustained-transfer optimisation of Section
	// 4.2.2 (the default). When disabled, the simulator gates issues per
	// the plain sequential-logic design of Section 4.2.1: a pop occupies
	// the interface for three cycles, blocking any new operation for the
	// following two. The functional wave behaviour is identical; only
	// the issue rate changes — this is the ablation knob that quantifies
	// what sustained transfer buys.
	Sustained bool

	popCooldown  int
	pushCooldown int

	// waves due for processing in the next cycle.
	next []wave
	// scratch for the current cycle.
	cur []wave

	pushes, pops uint64

	// Fault-tolerance state (see fault.go). protected enables parity
	// maintenance and checking on the register file; parity holds one
	// bit per slot. stepper is the attached fault plan's clock hook.
	// faultErr latches the first detected corruption: the machine
	// refuses operations until Recover is called.
	protected  bool
	parity     []uint8
	stepper    hw.FaultStepper
	faultErr   error
	detected   uint64
	recoveries uint64
	// stranded records waves that could not be applied because a fault
	// latched mid-cycle: unapplied push waves still carry a live element,
	// unapplied pop waves mark a node whose minimum is a stale duplicate.
	// Recover consumes this to harvest the exact surviving multiset.
	stranded []wave

	// CheckEvery enables the online invariant checker: once CheckEvery
	// cycles have elapsed since the last check, the first quiescent
	// cycle runs the shared treecheck invariants over the registers and
	// latches a fault on violation. 0 disables (the default).
	CheckEvery uint64
	lastCheck  uint64
	checkRuns  uint64
}

// New creates an R-BMW simulator for an order-m, l-level tree.
func New(m, l int) *Sim {
	n := core.NumNodes(m, l)
	return &Sim{
		m:         m,
		l:         l,
		nodes:     make([]slot, n*m),
		numNodes:  n,
		capacity:  n * m,
		Sustained: true,
	}
}

// Order returns M. Levels returns L. Len returns the stored element
// count and Cap the capacity, all as in the golden model.
func (s *Sim) Order() int  { return s.m }
func (s *Sim) Levels() int { return s.l }
func (s *Sim) Len() int    { return s.size }
func (s *Sim) Cap() int    { return s.capacity }

// Cycle returns the number of clock cycles elapsed.
func (s *Sim) Cycle() uint64 { return s.cycle }

// AlmostFull mirrors the almost_full signal: no new push may be issued.
func (s *Sim) AlmostFull() bool { return s.size >= s.capacity }

// PushAvailable mirrors the push_available signal; with sustained
// transfer it is constantly 1 (Section 4.2.2); in plain mode a pop
// blocks pushes for two cycles.
func (s *Sim) PushAvailable() bool { return s.pushCooldown == 0 }

// PopAvailable mirrors the pop_available signal: 0 in the cycle
// immediately after a pop (two cycles in plain mode).
func (s *Sim) PopAvailable() bool { return s.popCooldown == 0 }

// SlotState exposes registered node state for the shared invariant
// checker. Note that in-flight waves make intermediate states transient;
// invariants are guaranteed only when the pipeline is quiescent (see
// Quiescent).
func (s *Sim) SlotState(n, i int) (value uint64, count uint32, ok bool) {
	sl := s.nodes[n*s.m+i]
	return sl.val, sl.count, sl.count != 0
}

// Quiescent reports whether no waves remain in the pipeline.
func (s *Sim) Quiescent() bool { return len(s.next) == 0 }

// Stats returns the number of pushes and pops issued so far.
func (s *Sim) Stats() (pushes, pops uint64) { return s.pushes, s.pops }

// Tick advances the simulation by one clock cycle with the given
// external signal and returns the popped element when op is a pop (the
// o_pop_result output, valid combinationally in the same cycle).
//
// Illegal signals — push when almost_full, pop when empty, pop when
// pop_available is 0 — return an error without consuming the cycle,
// matching a testbench that respects the handshake.
func (s *Sim) Tick(op hw.Op) (*core.Element, error) {
	if s.faultErr != nil {
		return nil, s.faultErr
	}
	switch op.Kind {
	case hw.Push:
		if s.pushCooldown > 0 {
			return nil, s.reject(fmt.Errorf("rbmw: push issued while push_available=0"))
		}
		if s.AlmostFull() {
			return nil, s.reject(core.ErrFull)
		}
	case hw.Pop:
		if s.popCooldown > 0 {
			return nil, s.reject(fmt.Errorf("rbmw: pop issued while pop_available=0 (consecutive pops are illegal)"))
		}
		if s.size == 0 {
			return nil, s.reject(core.ErrEmpty)
		}
	}

	s.cycle++
	var ckind hw.CycleKind
	if s.instr != nil {
		ckind = s.classifyCycle(op)
	}
	s.cur, s.next = s.next, s.cur[:0]

	// Phase 1: push waves, including a newly issued push at the root.
	// Their effects are node-local combinational logic and are visible to
	// this cycle's pop waves (sustained transfer reports post-push
	// minima).
	if op.Kind == hw.Push {
		s.cur = append(s.cur, wave{node: 0, push: true, val: op.Value, meta: op.Meta, born: uint32(s.cycle)})
		s.size++
		s.pushes++
	}
	for _, w := range s.cur {
		if w.push {
			s.stepPush(w)
		}
	}

	// Phase 2: pop waves, including a newly issued pop at the root.
	var result *core.Element
	if op.Kind == hw.Pop {
		s.checkNode(0)
		if s.faultErr == nil {
			if j := s.minSlot(0); j >= 0 {
				sl := s.nodes[j]
				s.stepPop(wave{node: 0})
				if s.faultErr == nil {
					result = &core.Element{Value: sl.val, Meta: sl.meta}
					s.size--
					s.pops++
					if s.instr != nil {
						s.instr.sojourn.Observe(uint64(uint32(s.cycle) - sl.born))
					}
				} else if n := len(s.stranded); n > 0 {
					// The pop aborted mid-flight and no element left the
					// machine: drop the stale-duplicate marker stepPop
					// recorded so recovery harvests the element instead.
					if last := s.stranded[n-1]; !last.push && last.node == 0 {
						s.stranded = s.stranded[:n-1]
					}
				}
			}
		}
	}
	for _, w := range s.cur {
		if !w.push {
			s.stepPop(w)
		}
	}

	// Availability handshake: with sustained transfer, pop_available
	// drops for one cycle after a pop and returns after a push or null
	// signal; in plain mode a pop blocks everything for two cycles.
	if op.Kind == hw.Pop {
		if s.Sustained {
			s.popCooldown = 1
		} else {
			s.popCooldown = 2
			s.pushCooldown = 2
		}
	} else {
		if s.popCooldown > 0 {
			s.popCooldown--
		}
		if s.pushCooldown > 0 {
			s.pushCooldown--
		}
	}

	// End of cycle: record observability facts, run the online invariant
	// checker if due, then let an attached fault plan strike between the
	// clock edges (see fault.go).
	if s.instr != nil {
		s.instr.endCycle(s, ckind)
	}
	s.endOfCycle()
	if s.faultErr != nil {
		return nil, s.faultErr
	}
	return result, nil
}

// stepPush performs one node's share of a push (Section 3.2 steps 1-2):
// park in the leftmost empty slot, or displace down the least-loaded
// sub-tree.
func (s *Sim) stepPush(w wave) {
	lvl := 0
	if s.instr != nil {
		lvl = s.level(w.node)
		s.instr.traceWave(s.cycle, lvl, true)
	}
	s.checkNode(w.node)
	if s.faultErr != nil {
		s.stranded = append(s.stranded, w)
		return
	}
	base := w.node * s.m
	for i := 0; i < s.m; i++ {
		if s.nodes[base+i].count == 0 {
			s.nodes[base+i] = slot{val: w.val, meta: w.meta, count: 1, born: w.born}
			s.touch(base + i)
			if s.instr != nil {
				s.instr.pushDepth.Observe(uint64(lvl))
			}
			return
		}
	}
	min := 0
	for i := 1; i < s.m; i++ {
		if s.nodes[base+i].count < s.nodes[base+min].count {
			min = i
		}
	}
	sl := &s.nodes[base+min]
	sl.count++
	val, meta, born := w.val, w.meta, w.born
	if val < sl.val {
		val, sl.val = sl.val, val
		meta, sl.meta = sl.meta, meta
		born, sl.born = sl.born, born
	}
	s.touch(base + min)
	child := w.node*s.m + min + 1
	if child >= s.numNodes {
		// Descending below the last level is impossible when the
		// almost_full handshake is respected: the counters steer pushes
		// into sub-trees with vacancies. With fault tolerance engaged a
		// corrupted counter can route a push off the tree; latch the
		// detection instead of crashing the simulation.
		if s.tolerant() {
			s.fail(&hw.CorruptionError{
				Unit: "rbmw-regs", Word: base + min, Chunk: -1, Cycle: s.cycle,
				Detail: "push descended past the last level (corrupt sub-tree counter)",
			})
			s.stranded = append(s.stranded, wave{push: true, val: val, meta: meta, born: born})
			return
		}
		panic("rbmw: push descended past the last level")
	}
	s.next = append(s.next, wave{node: child, push: true, val: val, meta: meta, born: born})
}

// stepPop performs one node's share of a pop with sustained transfer:
// the node recomputes its minimum slot (the element its parent grafted
// in the previous cycle, or the popped result at the root), then refills
// it with the child's combinational minimum — which already reflects a
// push processed at the child this cycle.
func (s *Sim) stepPop(w wave) {
	lvl := 0
	if s.instr != nil {
		lvl = s.level(w.node)
		s.instr.traceWave(s.cycle, lvl, false)
	}
	s.checkNode(w.node)
	if s.faultErr != nil {
		s.stranded = append(s.stranded, w)
		return
	}
	j := s.minSlot(w.node)
	if j < 0 {
		s.stranded = append(s.stranded, w)
		return // corruption latched by minSlot in tolerant mode
	}
	sl := &s.nodes[j]
	sl.count--
	if sl.count == 0 {
		*sl = slot{}
		s.touch(j)
		if s.instr != nil {
			s.instr.popDepth.Observe(uint64(lvl))
		}
		return
	}
	si := j - w.node*s.m
	child := w.node*s.m + si + 1
	s.checkNode(child)
	if s.faultErr != nil {
		s.stranded = append(s.stranded, w)
		return
	}
	cj := s.minSlot(child)
	if cj < 0 {
		s.stranded = append(s.stranded, w)
		return
	}
	cs := s.nodes[cj]
	sl.val, sl.meta = cs.val, cs.meta
	sl.born = cs.born
	s.touch(j)
	s.next = append(s.next, wave{node: child})
}

// minSlot returns the flat index of the leftmost minimum-value occupied
// slot of node n. The leftmost tie-break matters: the parent's graft
// decision and the child's own recomputation one cycle later must select
// the same slot.
func (s *Sim) minSlot(n int) int {
	base := n * s.m
	min := -1
	for i := 0; i < s.m; i++ {
		if s.nodes[base+i].count == 0 {
			continue
		}
		if min < 0 || s.nodes[base+i].val < s.nodes[base+min].val {
			min = i
		}
	}
	if min < 0 {
		// An occupied parent slot guarantees a non-empty child in a
		// healthy tree; an all-empty node here means a counter was
		// corrupted somewhere above. Latch the detection in tolerant
		// mode rather than crashing the simulation.
		if s.tolerant() {
			s.fail(&hw.CorruptionError{
				Unit: "rbmw-regs", Word: base, Chunk: -1, Cycle: s.cycle,
				Detail: fmt.Sprintf("minSlot on empty node %d (corrupt counter above)", n),
			})
			return -1
		}
		panic(fmt.Sprintf("rbmw: minSlot on empty node %d", n))
	}
	return base + min
}

// Drain pops every stored element (inserting the null cycles the
// handshake requires) and returns them in dequeue order. It is a test
// and example convenience, not a hardware operation.
func (s *Sim) Drain() []core.Element {
	out := make([]core.Element, 0, s.size)
	for s.size > 0 {
		if !s.PopAvailable() {
			s.Tick(hw.NopOp())
			continue
		}
		e, err := s.Tick(hw.PopOp())
		if err != nil {
			panic(err)
		}
		out = append(out, *e)
	}
	// Let the last waves settle so the tree is quiescent.
	for !s.Quiescent() {
		s.Tick(hw.NopOp())
	}
	return out
}
