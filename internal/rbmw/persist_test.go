package rbmw

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/persist"
)

// driveLogged runs a random legal schedule, returning the op log with
// commit cycles (the WAL's view of the run).
func driveLogged(t *testing.T, s *Sim, seed int64, cycles int) []persist.Op {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var log []persist.Op
	for i := 0; i < cycles; i++ {
		switch {
		case s.PopAvailable() && s.Len() > 0 && rng.Intn(3) == 0:
			e, err := s.Tick(hw.PopOp())
			if err != nil {
				t.Fatal(err)
			}
			if e != nil {
				log = append(log, persist.Op{Kind: hw.Pop, Cycle: s.Cycle(), Value: e.Value, Meta: e.Meta})
			}
		case s.PushAvailable() && !s.AlmostFull() && rng.Intn(2) == 0:
			op := hw.PushOp(uint64(rng.Intn(500)), uint64(i))
			if _, err := s.Tick(op); err != nil {
				t.Fatal(err)
			}
			log = append(log, persist.Op{Kind: hw.Push, Cycle: s.Cycle(), Value: op.Value, Meta: op.Meta})
		default:
			if _, err := s.Tick(hw.NopOp()); err != nil {
				t.Fatal(err)
			}
		}
	}
	return log
}

func quiesce(t *testing.T, s *Sim) {
	t.Helper()
	for !s.Quiescent() {
		if _, err := s.Tick(hw.NopOp()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSnapshotRoundTripQuiescent(t *testing.T) {
	a := New(4, 3)
	driveLogged(t, a, 1, 400)
	quiesce(t, a)
	payload, err := a.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := New(4, 3)
	if err := b.RestoreSnapshot(a.SnapshotVersion(), payload); err != nil {
		t.Fatal(err)
	}
	if err := b.VerifyRecovered(); err != nil {
		t.Fatal(err)
	}
	if b.Cycle() != a.Cycle() || b.Len() != a.Len() {
		t.Fatalf("cycle/len diverged: (%d,%d) vs (%d,%d)", b.Cycle(), b.Len(), a.Cycle(), a.Len())
	}
	da, db := a.Drain(), b.Drain()
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("pop %d diverged: %+v vs %+v", i, da[i], db[i])
		}
	}
}

// TestSnapshotMidPipeline snapshots with waves in flight: the restored
// machine must track the original tick for tick through the rest of the
// schedule and drain bit-identically.
func TestSnapshotMidPipeline(t *testing.T) {
	a := New(2, 4)
	rng := rand.New(rand.NewSource(7))
	// Fill enough that pops launch multi-level refill waves.
	for i := 0; i < 20; i++ {
		if _, err := a.Tick(hw.PushOp(uint64(rng.Intn(100)), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Launch a pop and push so both wave kinds are in flight.
	if _, err := a.Tick(hw.PopOp()); err != nil {
		t.Fatal(err)
	}
	if !a.Quiescent() {
		// Expected: the refill wave is still descending.
	} else {
		t.Log("pipeline settled immediately; mid-flight coverage weaker for this shape")
	}
	payload, err := a.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := New(2, 4)
	if err := b.RestoreSnapshot(1, payload); err != nil {
		t.Fatal(err)
	}
	// VerifyRecovered defers while waves are in flight.
	if err := b.VerifyRecovered(); err != nil {
		t.Fatal(err)
	}
	// Run both machines through the identical remaining schedule.
	for i := 0; i < 200; i++ {
		var op hw.Op
		switch {
		case a.PopAvailable() && a.Len() > 0 && rng.Intn(3) == 0:
			op = hw.PopOp()
		case a.PushAvailable() && !a.AlmostFull() && rng.Intn(2) == 0:
			op = hw.PushOp(uint64(rng.Intn(100)), uint64(1000+i))
		}
		ea, erra := a.Tick(op)
		eb, errb := b.Tick(op)
		if (erra == nil) != (errb == nil) {
			t.Fatalf("cycle %d: errors diverged: %v vs %v", i, erra, errb)
		}
		if (ea == nil) != (eb == nil) || (ea != nil && *ea != *eb) {
			t.Fatalf("cycle %d: pops diverged: %v vs %v", i, ea, eb)
		}
	}
	da, db := a.Drain(), b.Drain()
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("drain pop %d diverged", i)
		}
	}
}

func TestSnapshotRoundTripProtected(t *testing.T) {
	a := New(2, 3)
	a.Protect(true)
	driveLogged(t, a, 3, 300)
	quiesce(t, a)
	payload, err := a.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := New(2, 3)
	b.Protect(true)
	if err := b.RestoreSnapshot(1, payload); err != nil {
		t.Fatal(err)
	}
	if err := b.VerifyRecovered(); err != nil {
		t.Fatal(err)
	}
	// Protection mismatch must be rejected both ways.
	if err := New(2, 3).RestoreSnapshot(1, payload); err == nil || !strings.Contains(err.Error(), "protection") {
		t.Fatalf("protection mismatch accepted: %v", err)
	}
}

// TestSnapshotPreservesLatentParityMismatch flips a register bit after
// the last parity update: the snapshot must carry the mismatch so the
// restored machine still detects it, instead of silently healing it.
func TestSnapshotPreservesLatentParityMismatch(t *testing.T) {
	a := New(2, 2)
	a.Protect(true)
	for i := 0; i < 4; i++ {
		if _, err := a.Tick(hw.PushOp(uint64(10+i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	quiesce(t, a)
	a.FlipBit(0, 3) // silent until the slot is next read
	payload, err := a.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := New(2, 2)
	b.Protect(true)
	if err := b.RestoreSnapshot(1, payload); err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(); err == nil {
		t.Fatal("latent parity mismatch silently healed by the snapshot round trip")
	}
}

func TestFaultedMachineRefusesSnapshot(t *testing.T) {
	s := New(2, 2)
	s.Protect(true)
	for i := 0; i < 3; i++ {
		if _, err := s.Tick(hw.PushOp(uint64(i+1), 0)); err != nil {
			t.Fatal(err)
		}
	}
	quiesce(t, s)
	s.FlipBit(0, 0)
	// Operate until the parity check latches the fault.
	for i := 0; i < 10 && !s.Faulted(); i++ {
		s.Tick(hw.PopOp())
	}
	if !s.Faulted() {
		t.Fatal("injected fault never detected")
	}
	if _, err := s.EncodeSnapshot(); err == nil {
		t.Fatal("faulted machine produced a snapshot")
	}
}

func TestReplayFromGenesis(t *testing.T) {
	a := New(3, 3)
	log := driveLogged(t, a, 5, 500)

	b := New(3, 3)
	for i, op := range log {
		if err := b.Replay(op); err != nil {
			t.Fatalf("replay op %d (%+v): %v", i, op, err)
		}
	}
	quiesce(t, a)
	quiesce(t, b)
	if err := b.VerifyRecovered(); err != nil {
		t.Fatal(err)
	}
	da, db := a.Drain(), b.Drain()
	if len(da) != len(db) {
		t.Fatalf("drain lengths %d vs %d", len(da), len(db))
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("pop %d diverged: %+v vs %+v", i, da[i], db[i])
		}
	}
}

func TestReplayRejectsCycleRewind(t *testing.T) {
	s := New(2, 2)
	if err := s.Replay(persist.Op{Kind: hw.Push, Cycle: 3, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Replay(persist.Op{Kind: hw.Push, Cycle: 3, Value: 2}); err == nil {
		t.Fatal("replay at a past cycle accepted")
	}
}

func TestRestoreRejectsInconsistentOccupancy(t *testing.T) {
	a := New(2, 2)
	for i := 0; i < 3; i++ {
		if _, err := a.Tick(hw.PushOp(uint64(i+1), 0)); err != nil {
			t.Fatal(err)
		}
	}
	quiesce(t, a)
	payload, err := a.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the recorded size (offset: m,l u32s + 2 bools = 10).
	mut := append([]byte(nil), payload...)
	mut[10] = mut[10] + 1
	b := New(2, 2)
	if err := b.RestoreSnapshot(1, mut); err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("inconsistent size accepted: %v", err)
	}
}

var _ = core.Element{} // keep the import for the drain comparisons' type
