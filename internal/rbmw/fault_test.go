package rbmw

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hw"
	"repro/internal/treecheck"
)

// drainBoth pops sim and golden in lockstep and fails on any mismatch.
func drainBoth(t *testing.T, s *Sim, g *core.Tree) {
	t.Helper()
	for g.Len() > 0 {
		if !s.PopAvailable() {
			if _, err := s.Tick(hw.NopOp()); err != nil {
				t.Fatalf("nop: %v", err)
			}
			continue
		}
		want, err := g.Pop()
		if err != nil {
			t.Fatalf("golden pop: %v", err)
		}
		got, err := s.Tick(hw.PopOp())
		if err != nil {
			t.Fatalf("sim pop: %v", err)
		}
		if got.Value != want.Value || got.Meta != want.Meta {
			t.Fatalf("pop mismatch: sim {%d %d} golden {%d %d}", got.Value, got.Meta, want.Value, want.Meta)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("sim still holds %d elements after golden drained", s.Len())
	}
}

// TestProtectZeroFaultEquivalence proves parity protection is purely
// passive: with no faults injected, a protected simulator's outputs are
// identical to the golden model over a randomized workload.
func TestProtectZeroFaultEquivalence(t *testing.T) {
	const m, l = 4, 3
	s := New(m, l)
	s.Protect(true)
	s.CheckEvery = 8
	g := core.New(m, l)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 4000; i++ {
		switch {
		case rng.Intn(3) != 0 && !s.AlmostFull():
			v, mt := uint64(rng.Intn(500)), uint64(i)
			if err := g.Push(core.Element{Value: v, Meta: mt}); err != nil {
				t.Fatalf("golden push: %v", err)
			}
			if _, err := s.Tick(hw.PushOp(v, mt)); err != nil {
				t.Fatalf("sim push: %v", err)
			}
		case s.PopAvailable() && g.Len() > 0:
			want, _ := g.Pop()
			got, err := s.Tick(hw.PopOp())
			if err != nil {
				t.Fatalf("sim pop: %v", err)
			}
			if got.Value != want.Value || got.Meta != want.Meta {
				t.Fatalf("op %d: pop mismatch", i)
			}
		default:
			s.Tick(hw.NopOp())
		}
	}
	drainBoth(t, s, g)
	if s.Detected() != 0 {
		t.Fatalf("detected %d corruptions with no faults injected", s.Detected())
	}
	if s.CheckRuns() == 0 {
		t.Fatal("online checker never ran")
	}
}

// TestParityDetectsFlip flips one register bit and requires the next
// access to that node to latch a typed, sticky corruption error.
func TestParityDetectsFlip(t *testing.T) {
	s := New(2, 3)
	s.Protect(true)
	for i := 0; i < 6; i++ {
		if _, err := s.Tick(hw.PushOp(uint64(10+i), uint64(i))); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	for !s.Quiescent() {
		s.Tick(hw.NopOp())
	}
	s.FlipBit(0, 3) // bit 3 of the root's first slot value
	_, err := s.Tick(hw.PopOp())
	if err == nil {
		t.Fatal("pop after bit flip succeeded")
	}
	if !errors.Is(err, hw.ErrCorrupt) {
		t.Fatalf("error %v does not wrap hw.ErrCorrupt", err)
	}
	var ce *hw.CorruptionError
	if !errors.As(err, &ce) || ce.Unit != "rbmw-regs" || ce.Word != 0 {
		t.Fatalf("CorruptionError = %+v", ce)
	}
	if !s.Faulted() || s.Detected() != 1 {
		t.Fatalf("Faulted=%v Detected=%d", s.Faulted(), s.Detected())
	}
	// The fault status is sticky: further operations refuse.
	if _, err2 := s.Tick(hw.NopOp()); !errors.Is(err2, hw.ErrCorrupt) {
		t.Fatalf("post-fault Tick returned %v", err2)
	}
}

// TestOnlineCheckerCatchesCounterCorruption disables parity and relies
// on the periodic treecheck pass to catch a corrupted counter.
func TestOnlineCheckerCatchesCounterCorruption(t *testing.T) {
	s := New(2, 3)
	s.CheckEvery = 1
	for i := 0; i < 8; i++ {
		if _, err := s.Tick(hw.PushOp(uint64(i), 0)); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	for !s.Quiescent() {
		s.Tick(hw.NopOp())
	}
	s.FlipBit(0, 128) // low counter bit of the root's first slot
	_, err := s.Tick(hw.NopOp())
	if err == nil {
		t.Fatal("online checker missed the corrupted counter")
	}
	var v *treecheck.Violation
	if !errors.As(err, &v) {
		t.Fatalf("error %v does not carry a *treecheck.Violation", err)
	}
	if !errors.Is(err, hw.ErrCorrupt) {
		t.Fatalf("error %v does not wrap hw.ErrCorrupt", err)
	}
}

// TestRecoverRoundTrip corrupts a value bit, lets parity catch it, then
// recovers and checks the survivors replay identically on a golden tree
// rebuilt from the same list.
func TestRecoverRoundTrip(t *testing.T) {
	const m, l = 4, 3
	s := New(m, l)
	s.Protect(true)
	rng := rand.New(rand.NewSource(5))
	n := 40
	for i := 0; i < n; i++ {
		if _, err := s.Tick(hw.PushOp(uint64(rng.Intn(1000)), uint64(i))); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	for !s.Quiescent() {
		s.Tick(hw.NopOp())
	}
	s.FlipBit(0, 40)
	if _, err := s.Tick(hw.PopOp()); !errors.Is(err, hw.ErrCorrupt) {
		t.Fatalf("expected corruption, got %v", err)
	}
	survivors, dropped := s.Recover()
	if dropped != 1 {
		t.Fatalf("dropped = %d want 1 (the parity-bad slot)", dropped)
	}
	if len(survivors) != n-1 {
		t.Fatalf("survivors = %d want %d", len(survivors), n-1)
	}
	if s.Faulted() || s.Len() != n-1 || s.Recoveries() != 1 {
		t.Fatalf("post-recover state: faulted=%v len=%d recoveries=%d", s.Faulted(), s.Len(), s.Recoveries())
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("Verify after recover: %v", err)
	}
	g := core.New(m, l)
	for _, e := range survivors {
		if err := g.Push(core.Element{Value: e.Value, Meta: e.Meta}); err != nil {
			t.Fatalf("golden rebuild: %v", err)
		}
	}
	drainBoth(t, s, g)
}

// TestRecoverMidFlight latches a fault while waves are in the pipeline
// and checks no element is lost or duplicated: in-flight push payloads
// are harvested, stale pop duplicates are skipped.
func TestRecoverMidFlight(t *testing.T) {
	const m, l = 2, 4
	s := New(m, l)
	s.Protect(true)
	rng := rand.New(rand.NewSource(17))
	type elem struct{ v, mt uint64 }
	live := map[elem]int{}
	push := func(v, mt uint64) {
		if _, err := s.Tick(hw.PushOp(v, mt)); err != nil {
			t.Fatalf("push: %v", err)
		}
		live[elem{v, mt}]++
	}
	for i := 0; i < 12; i++ {
		push(uint64(rng.Intn(100)), uint64(i))
	}
	// Keep waves in flight, then corrupt a mid-tree slot while a pop
	// wave descends.
	e, err := s.Tick(hw.PopOp())
	if err != nil {
		t.Fatalf("pop: %v", err)
	}
	live[elem{e.Value, e.Meta}]--
	push(uint64(rng.Intn(100)), 1000) // push wave now in flight
	s.FlipBit(2, 7)                   // node 1's first slot value
	var ferr error
	for i := 0; i < 2*l && ferr == nil; i++ {
		_, ferr = s.Tick(hw.NopOp())
	}
	if ferr == nil {
		// The flipped slot was never accessed; force a scan.
		ferr = s.Verify()
		if ferr == nil {
			t.Skip("corrupted slot not on any wave path")
		}
		s.fail(ferr.(*hw.CorruptionError))
	}
	if !errors.Is(ferr, hw.ErrCorrupt) {
		t.Fatalf("expected corruption, got %v", ferr)
	}
	survivors, dropped := s.Recover()
	if got := len(survivors) + dropped; got != 12 {
		t.Fatalf("survivors %d + dropped %d != 12 live elements", len(survivors), dropped)
	}
	// Every survivor must be one of the live elements (no duplicates of
	// the popped value, no phantoms).
	for _, sv := range survivors {
		k := elem{sv.Value, sv.Meta}
		if live[k] <= 0 {
			t.Fatalf("survivor {%d %d} was not live", sv.Value, sv.Meta)
		}
		live[k]--
	}
	g := core.New(m, l)
	for _, sv := range survivors {
		g.Push(core.Element{Value: sv.Value, Meta: sv.Meta})
	}
	drainBoth(t, s, g)
}

// TestFaultTargetBits round-trips PeekBit/FlipBit across the value,
// metadata, counter and parity ranges of a slot word.
func TestFaultTargetBits(t *testing.T) {
	s := New(2, 2)
	s.Protect(true)
	if s.TargetName() != "rbmw-regs" {
		t.Fatalf("TargetName = %q", s.TargetName())
	}
	if s.Words() != 6 || s.WordBits() != slotBits+1 {
		t.Fatalf("Words=%d WordBits=%d", s.Words(), s.WordBits())
	}
	for _, bit := range []int{0, 63, 64, 127, 128, 159, 160} {
		before := s.PeekBit(3, bit)
		s.FlipBit(3, bit)
		if s.PeekBit(3, bit) == before {
			t.Fatalf("bit %d did not flip", bit)
		}
		s.FlipBit(3, bit)
		if s.PeekBit(3, bit) != before {
			t.Fatalf("bit %d did not flip back", bit)
		}
	}
	s.Protect(false)
	if s.WordBits() != slotBits {
		t.Fatalf("unprotected WordBits = %d", s.WordBits())
	}
}

// TestInjectionPlanIntegration wires a faultinject.Plan to the
// simulator: scheduled register flips land between cycles and parity
// catches every one; recovery resumes a consistent machine each time.
func TestInjectionPlanIntegration(t *testing.T) {
	const m, l = 4, 3
	s := New(m, l)
	s.Protect(true)
	plan := faultinject.NewPlan(faultinject.Config{Seed: 99})
	plan.Register(s)
	s.AttachFaults(plan)
	for i := 1; i <= 10; i++ {
		plan.ScheduleRandomFlip(uint64(i * 120))
	}

	g := core.New(m, l)
	rng := rand.New(rand.NewSource(23))
	recoveries := 0
	for i := 0; i < 2000; i++ {
		var err error
		switch {
		case rng.Intn(3) != 0 && !s.AlmostFull():
			v, mt := uint64(rng.Intn(400)), uint64(i)
			_, err = s.Tick(hw.PushOp(v, mt))
			if err == nil {
				g.Push(core.Element{Value: v, Meta: mt})
			}
		case s.PopAvailable() && s.Len() > 0 && !s.Faulted():
			var got *core.Element
			got, err = s.Tick(hw.PopOp())
			if err == nil {
				want, gerr := g.Pop()
				if gerr != nil {
					t.Fatalf("golden pop: %v", gerr)
				}
				if got.Value != want.Value || got.Meta != want.Meta {
					t.Fatalf("op %d: divergence before any detection", i)
				}
			}
		default:
			_, err = s.Tick(hw.NopOp())
		}
		if err != nil && errors.Is(err, hw.ErrCorrupt) {
			survivors, _ := s.Recover()
			g.Reset()
			for _, sv := range survivors {
				g.Push(core.Element{Value: sv.Value, Meta: sv.Meta})
			}
			recoveries++
		} else if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if plan.Injected() == 0 {
		t.Fatal("plan injected nothing")
	}
	if s.Detected() == 0 || recoveries == 0 {
		t.Fatalf("detected=%d recoveries=%d want both > 0", s.Detected(), recoveries)
	}
	drainBoth(t, s, g)
}
