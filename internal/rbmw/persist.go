// Snapshot/replay codec: the R-BMW pipeline as a persist.Checkpointable.
//
// Unlike the untimed models, R-BMW state is a function of the clock
// schedule: waves descend one level per cycle, born tags are cycle
// numbers, and the pop handshake depends on the preceding cycle. The
// codec therefore captures the machine mid-flight — registers, the
// parity column (raw, so a latent upset is persisted as the mismatch it
// is rather than silently healed), in-flight waves, cooldowns and the
// cycle counter — and Replay nop-aligns each logged operation to its
// recorded cycle, reproducing the exact schedule and hence bit-identical
// registers and pop order.
//
// A faulted machine (latched error or stranded waves) refuses to
// snapshot: recovery from detected corruption is Recover's drain-and-
// rebuild job, not the checkpointer's.

package rbmw

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/persist"
	"repro/internal/treecheck"
)

// rbmwSnapVersion is the current snapshot codec version.
const rbmwSnapVersion = 1

var _ persist.Checkpointable = (*Sim)(nil)

// SnapshotKind identifies R-BMW snapshots.
func (s *Sim) SnapshotKind() string { return "rbmw" }

// SnapshotVersion returns the codec version EncodeSnapshot writes.
func (s *Sim) SnapshotVersion() uint32 { return rbmwSnapVersion }

// EncodeSnapshot serialises the complete machine state, including
// in-flight waves — the pipeline does not need to be quiescent.
func (s *Sim) EncodeSnapshot() ([]byte, error) {
	if s.faultErr != nil {
		return nil, fmt.Errorf("rbmw: cannot snapshot a faulted machine: %w", s.faultErr)
	}
	if len(s.stranded) > 0 {
		return nil, fmt.Errorf("rbmw: cannot snapshot with %d stranded waves (recover first)", len(s.stranded))
	}
	var e persist.Enc
	e.U32(uint32(s.m))
	e.U32(uint32(s.l))
	e.Bool(s.Sustained)
	e.Bool(s.protected)
	e.U64(uint64(s.size))
	e.U64(s.cycle)
	e.U64(s.pushes)
	e.U64(s.pops)
	e.U32(uint32(s.popCooldown))
	e.U32(uint32(s.pushCooldown))
	e.U64(s.detected)
	e.U64(s.recoveries)
	e.U64(s.lastCheck)
	e.U64(s.checkRuns)
	e.U32(uint32(len(s.nodes)))
	for i := range s.nodes {
		sl := &s.nodes[i]
		e.U64(sl.val)
		e.U64(sl.meta)
		e.U32(sl.count)
		e.U32(sl.born)
	}
	if s.protected {
		// Raw parity column: a mismatch present now must still be a
		// mismatch after restore, so detection survives the round trip.
		e.Bytes(s.parity)
	}
	e.U32(uint32(len(s.next)))
	for _, w := range s.next {
		e.U64(uint64(w.node))
		e.U64(w.val)
		e.U64(w.meta)
		e.U32(w.born)
		e.Bool(w.push)
	}
	return e.B, nil
}

// RestoreSnapshot loads a payload into the receiver, which must have
// the same shape and protection mode as the machine that wrote it. The
// payload is fully decoded and cross-checked (including reconciling the
// recorded size against slot occupancy and in-flight waves) before any
// receiver state changes.
func (s *Sim) RestoreSnapshot(version uint32, payload []byte) error {
	if version != rbmwSnapVersion {
		return fmt.Errorf("rbmw: unsupported snapshot version %d (have %d)", version, rbmwSnapVersion)
	}
	d := persist.NewDec(payload)
	m, l := int(d.U32()), int(d.U32())
	sustained := d.Bool()
	protected := d.Bool()
	size := int(d.U64())
	cycle := d.U64()
	pushes, pops := d.U64(), d.U64()
	popCD, pushCD := int(d.U32()), int(d.U32())
	detected, recoveries := d.U64(), d.U64()
	lastCheck, checkRuns := d.U64(), d.U64()
	n := d.Len(1 << 30)
	if err := d.Err(); err != nil {
		return err
	}
	if m != s.m || l != s.l || n != len(s.nodes) {
		return fmt.Errorf("rbmw: snapshot shape m=%d l=%d slots=%d does not match machine m=%d l=%d slots=%d",
			m, l, n, s.m, s.l, len(s.nodes))
	}
	if protected != s.protected {
		return fmt.Errorf("rbmw: snapshot protection (%v) does not match machine (%v); construct with matching Protect",
			protected, s.protected)
	}
	if size < 0 || size > s.capacity {
		return fmt.Errorf("rbmw: snapshot size %d out of range [0,%d]", size, s.capacity)
	}
	nodes := make([]slot, n)
	for i := range nodes {
		nodes[i] = slot{val: d.U64(), meta: d.U64(), count: d.U32(), born: d.U32()}
	}
	var parity []uint8
	if protected {
		pb := d.Bytes()
		if d.Err() == nil && len(pb) != n {
			return fmt.Errorf("rbmw: snapshot parity column has %d bits, want %d", len(pb), n)
		}
		parity = append([]uint8(nil), pb...)
	}
	waves := make([]wave, d.Len(n+1))
	for i := range waves {
		waves[i] = wave{node: int(d.U64()), val: d.U64(), meta: d.U64(), born: d.U32(), push: d.Bool()}
	}
	if err := d.Done(); err != nil {
		return err
	}
	pushWaves, popWaves := 0, 0
	for _, w := range waves {
		if w.node < 0 || w.node >= s.numNodes {
			return fmt.Errorf("rbmw: snapshot wave targets node %d outside [0,%d)", w.node, s.numNodes)
		}
		if w.push {
			pushWaves++
		} else {
			popWaves++
		}
	}

	// Commit, then reconcile occupancy: every in-flight push is an
	// element not yet parked in a slot, every in-flight pop refill has
	// left a stale duplicate parked, so
	// occupied slots == size - pushWaves + popWaves.
	copy(s.nodes, nodes)
	if protected {
		copy(s.parity, parity)
	}
	s.next = append(s.next[:0], waves...)
	s.cur = s.cur[:0]
	s.stranded = nil
	s.faultErr = nil
	s.Sustained = sustained
	s.size = size
	s.cycle = cycle
	s.pushes, s.pops = pushes, pops
	s.popCooldown, s.pushCooldown = popCD, pushCD
	s.detected, s.recoveries = detected, recoveries
	s.lastCheck, s.checkRuns = lastCheck, checkRuns
	if occ := treecheck.Occupancy(s); occ != size-pushWaves+popWaves {
		return fmt.Errorf("rbmw: snapshot inconsistent: %d occupied slots, size %d with %d push / %d pop waves in flight",
			occ, size, pushWaves, popWaves)
	}
	return nil
}

// Replay re-issues one logged operation at its recorded cycle, filling
// the gap with the nop cycles the original schedule contained. The wave
// pipeline is a deterministic function of (state, schedule), so the
// replayed machine tracks the original bit for bit; the pop result is
// audited against the log.
func (s *Sim) Replay(op persist.Op) error {
	if op.Cycle <= s.cycle {
		return fmt.Errorf("rbmw: replay op at cycle %d but machine is already at %d", op.Cycle, s.cycle)
	}
	for s.cycle+1 < op.Cycle {
		if _, err := s.Tick(hw.NopOp()); err != nil {
			return fmt.Errorf("rbmw: replay nop at cycle %d: %w", s.cycle, err)
		}
	}
	e, err := s.Tick(op.ToHW())
	if err != nil {
		return fmt.Errorf("rbmw: replay %v at cycle %d: %w", op.Kind, op.Cycle, err)
	}
	if op.Kind == hw.Pop {
		if e == nil {
			return fmt.Errorf("rbmw: replay pop at cycle %d returned nothing", op.Cycle)
		}
		if e.Value != op.Value || e.Meta != op.Meta {
			return fmt.Errorf("rbmw: replay divergence at cycle %d: popped (%d,%d), log recorded (%d,%d)",
				op.Cycle, e.Value, e.Meta, op.Value, op.Meta)
		}
	}
	return nil
}

// VerifyRecovered runs the read-only health check (parity column and
// the shared treecheck invariants). With waves still in flight the tree
// invariants are transiently unevaluable and the check is deferred to
// the caller's first quiescent point; the restore-time occupancy
// reconciliation has already validated the mid-flight image.
func (s *Sim) VerifyRecovered() error {
	if s.faultErr != nil {
		return s.faultErr
	}
	if !s.Quiescent() {
		return nil
	}
	return s.Verify()
}
