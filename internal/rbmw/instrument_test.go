package rbmw

import (
	"bytes"
	"testing"

	"repro/internal/hw"
	"repro/internal/obs"
)

// TestInstrumentedRun checks the probe wiring: operation counters,
// cycle classification totals, occupancy, depth histograms, and
// rejected-issue counting after a mixed workload.
func TestInstrumentedRun(t *testing.T) {
	s := New(2, 4)
	reg := obs.NewRegistry()
	s.Instrument(reg, "rbmw")

	// Fill 10, then 5 push-pop pairs, then drain 10 with nop spacing.
	for i := 0; i < 10; i++ {
		if _, err := s.Tick(hw.PushOp(uint64(100-i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Tick(hw.PopOp()); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Tick(hw.PushOp(uint64(200+i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	// One illegal pop-after-pop to exercise the rejected counter.
	if _, err := s.Tick(hw.PopOp()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(hw.PopOp()); err == nil {
		t.Fatal("second consecutive pop should be rejected")
	}
	s.Drain()

	snap := reg.Snapshot()
	pushes, pops := snap.Counter("rbmw_pushes_total"), snap.Counter("rbmw_pops_total")
	if pushes != 15 || pops != 15 {
		t.Fatalf("pushes/pops = %d/%d, want 15/15", pushes, pops)
	}
	if got := snap.Gauge("rbmw_occupancy"); got != 0 {
		t.Fatalf("final occupancy = %g, want 0", got)
	}
	if got := snap.Gauge("rbmw_occupancy_highwater"); got != 10 {
		t.Fatalf("highwater = %g, want 10", got)
	}
	if got := snap.Counter("rbmw_rejected_issues_total"); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	// Every consumed cycle is classified exactly once.
	var classified uint64
	for k := 0; k < hw.NumCycleKinds; k++ {
		classified += snap.Counter("rbmw_cycles_" + hw.CycleKind(k).String() + "_total")
	}
	if classified != s.Cycle() {
		t.Fatalf("classified %d cycles, sim ran %d", classified, s.Cycle())
	}
	if snap.Counter("rbmw_cycles_issue_push_total") != 15 ||
		snap.Counter("rbmw_cycles_issue_pop_total") != 15 {
		t.Fatalf("issue mix wrong: %+v", snap.Counters)
	}
	// Every push chain terminated somewhere; same for pops.
	if h := snap.Histograms["rbmw_push_depth_levels"]; h.Count != 15 {
		t.Fatalf("push depth observations = %d, want 15", h.Count)
	}
	if h := snap.Histograms["rbmw_pop_depth_levels"]; h.Count != 15 {
		t.Fatalf("pop depth observations = %d, want 15", h.Count)
	}
	// Per-level occupancies sum to total occupancy (0 after drain).
	var lvlSum float64
	for lvl := 1; lvl <= 4; lvl++ {
		lvlSum += snap.Gauge(levelName("rbmw", lvl))
	}
	if lvlSum != 0 {
		t.Fatalf("level occupancies sum to %g after drain", lvlSum)
	}
}

func levelName(prefix string, lvl int) string {
	return prefix + "_level" + string(rune('0'+lvl)) + "_occupancy"
}

// TestTraceRecordsValidPerfetto runs an instrumented workload with a
// trace recorder attached and validates the emitted file against the
// Chrome Trace Event schema.
func TestTraceRecordsValidPerfetto(t *testing.T) {
	s := New(2, 3)
	tr := obs.NewTraceRecorder()
	s.TraceTo(tr, 1)
	for i := 0; i < 8; i++ {
		if _, err := s.Tick(hw.PushOp(uint64(50-i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain()

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if err := obs.ValidateTrace(parsed); err != nil {
		t.Fatalf("trace fails schema validation: %v", err)
	}
	// The trace must contain per-level tracks and wave slices.
	names := map[string]int{}
	for _, ev := range parsed.TraceEvents {
		names[ev.Name+"/"+ev.Phase]++
	}
	if names["thread_name/M"] != 3 {
		t.Fatalf("want 3 level track names, got %d", names["thread_name/M"])
	}
	if names["push/X"] == 0 || names["pop/X"] == 0 {
		t.Fatalf("missing wave slices: %v", names)
	}
}

// TestLevelIndexing pins the breadth-first level computation the
// probes rely on.
func TestLevelIndexing(t *testing.T) {
	s := New(2, 4)
	for _, tc := range []struct{ node, lvl int }{
		{0, 1}, {1, 2}, {2, 2}, {3, 3}, {6, 3}, {7, 4}, {14, 4},
	} {
		if got := s.level(tc.node); got != tc.lvl {
			t.Errorf("level(%d) = %d, want %d", tc.node, got, tc.lvl)
		}
	}
}
