package rbmw

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/obs"
)

// instrumentation is the attached observability state. The simulator
// holds a single pointer to it, so the hot path of an uninstrumented
// Sim pays exactly one nil branch per hook site and nothing else.
type instrumentation struct {
	cycles   [hw.NumCycleKinds]*obs.Counter
	rejected *obs.Counter

	almostFull    *obs.Counter
	wasAlmostFull bool
	occHigh       *obs.Gauge

	pushDepth *obs.Histogram // level where a push wave parked
	popDepth  *obs.Histogram // level where a pop refill chain ended

	// sojourn observes enqueue-to-dequeue latency in clock cycles for
	// every popped element (the born tag on each slot).
	sojourn *obs.QuantileHistogram

	tr      *obs.TraceRecorder
	pid     int64
	lastOcc int // last occupancy emitted on the trace counter track
}

func (s *Sim) instrState() *instrumentation {
	if s.instr == nil {
		s.instr = &instrumentation{lastOcc: -1}
	}
	return s.instr
}

// Instrument registers this simulator's pipeline probes in reg under
// the given metric-name prefix (e.g. "rbmw"). Counters and gauges for
// per-cycle facts are owned atomics; per-level occupancy, operation
// totals and fault-layer counters are snapshot-time callbacks that
// read simulator state — take snapshots only while the simulator is
// not mid-Tick. A nil registry leaves the simulator uninstrumented.
func (s *Sim) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	in := s.instrState()
	for k := 0; k < hw.NumCycleKinds; k++ {
		in.cycles[k] = reg.Counter(fmt.Sprintf("%s_cycles_%s_total", prefix, hw.CycleKind(k)))
	}
	in.rejected = reg.Counter(prefix + "_rejected_issues_total")
	in.almostFull = reg.Counter(prefix + "_almost_full_events_total")
	in.occHigh = reg.Gauge(prefix + "_occupancy_highwater")
	depthBounds := make([]uint64, s.l)
	for i := range depthBounds {
		depthBounds[i] = uint64(i + 1)
	}
	in.pushDepth = reg.Histogram(prefix+"_push_depth_levels", depthBounds)
	in.popDepth = reg.Histogram(prefix+"_pop_depth_levels", depthBounds)
	reg.Help(prefix+"_sojourn_cycles",
		"enqueue-to-dequeue latency of popped elements in clock cycles")
	in.sojourn = reg.QuantileHistogram(prefix + "_sojourn_cycles")

	reg.CounterFunc(prefix+"_pushes_total", func() uint64 { return s.pushes })
	reg.CounterFunc(prefix+"_pops_total", func() uint64 { return s.pops })
	reg.CounterFunc(prefix+"_fault_detected_total", func() uint64 { return s.detected })
	reg.CounterFunc(prefix+"_fault_recoveries_total", func() uint64 { return s.recoveries })
	reg.CounterFunc(prefix+"_fault_check_runs_total", func() uint64 { return s.checkRuns })
	reg.GaugeFunc(prefix+"_occupancy", func() float64 { return float64(s.size) })
	reg.GaugeFunc(prefix+"_capacity", func() float64 { return float64(s.capacity) })
	reg.GaugeFunc(prefix+"_inflight_waves", func() float64 { return float64(len(s.next)) })
	for lvl := 1; lvl <= s.l; lvl++ {
		lvl := lvl
		reg.GaugeFunc(fmt.Sprintf("%s_level%d_occupancy", prefix, lvl),
			func() float64 { return float64(s.levelOccupancy(lvl)) })
	}
}

// TraceTo attaches a cycle-trace recorder: every processed wave
// becomes a slice on its level's track (1 cycle = 1 µs in the Chrome
// Trace Event timebase), and total occupancy is emitted as a counter
// track whenever it changes. pid groups this simulator's tracks in
// the viewer. A nil recorder leaves tracing off.
func (s *Sim) TraceTo(tr *obs.TraceRecorder, pid int64) {
	if tr == nil {
		return
	}
	in := s.instrState()
	in.tr = tr
	in.pid = pid
	tr.ProcessName(pid, fmt.Sprintf("R-BMW m=%d l=%d", s.m, s.l))
	for lvl := 1; lvl <= s.l; lvl++ {
		tr.ThreadName(pid, int64(lvl), fmt.Sprintf("level %d", lvl))
	}
}

// level returns the 1-based tree level of a breadth-first node index.
func (s *Sim) level(n int) int {
	lvl, count, start := 1, 1, 0
	for n >= start+count {
		start += count
		count *= s.m
		lvl++
	}
	return lvl
}

// levelOccupancy counts occupied slots at a 1-based level.
func (s *Sim) levelOccupancy(lvl int) int {
	start, count := 0, 1
	for i := 1; i < lvl; i++ {
		start += count
		count *= s.m
	}
	occ := 0
	for n := start; n < start+count; n++ {
		for i := 0; i < s.m; i++ {
			if s.nodes[n*s.m+i].count != 0 {
				occ++
			}
		}
	}
	return occ
}

// classifyCycle buckets a consumed cycle; it must run before the
// cooldown decrements and the wave-queue swap so it sees the state
// the issue decision was made against.
func (s *Sim) classifyCycle(op hw.Op) hw.CycleKind {
	switch op.Kind {
	case hw.Push:
		return hw.CycleIssuePush
	case hw.Pop:
		return hw.CycleIssuePop
	}
	if s.popCooldown > 0 || s.pushCooldown > 0 {
		return hw.CycleStall
	}
	if len(s.next) > 0 {
		return hw.CycleDrain
	}
	return hw.CycleIdle
}

// reject counts a refused issue (handshake or capacity violation —
// the cycle is not consumed) and returns the error unchanged.
func (s *Sim) reject(err error) error {
	if s.instr != nil {
		s.instr.rejected.Inc()
	}
	return err
}

// traceWave emits one processed wave as a trace slice.
func (in *instrumentation) traceWave(cycle uint64, lvl int, push bool) {
	if in.tr == nil {
		return
	}
	name := "pop"
	if push {
		name = "push"
	}
	in.tr.Slice(in.pid, int64(lvl), int64(cycle), 1, name, nil)
}

// endCycle records the per-cycle facts after the cycle's waves have
// been processed.
func (in *instrumentation) endCycle(s *Sim, kind hw.CycleKind) {
	in.cycles[kind].Inc()
	in.occHigh.Max(float64(s.size))
	if full := s.AlmostFull(); full != in.wasAlmostFull {
		if full {
			in.almostFull.Inc()
			if in.tr != nil {
				in.tr.Instant(in.pid, 1, int64(s.cycle), "almost_full", nil)
			}
		}
		in.wasAlmostFull = full
	}
	if in.tr != nil && s.size != in.lastOcc {
		in.tr.Counter(in.pid, int64(s.cycle), "occupancy", map[string]any{"elements": s.size})
		in.lastOcc = s.size
	}
	// Sojourn quantiles render as a periodic counter track; every 1024
	// cycles keeps the event volume negligible next to the wave slices.
	if in.tr != nil && s.cycle&1023 == 0 {
		in.tr.QuantileCounter(in.pid, int64(s.cycle), "sojourn_cycles", in.sojourn.Snapshot())
	}
}

// SojournSnapshot returns the sojourn-latency distribution collected
// since Instrument was called (the zero snapshot when uninstrumented).
func (s *Sim) SojournSnapshot() obs.QuantileSnapshot { return s.instrSojourn().Snapshot() }

func (s *Sim) instrSojourn() *obs.QuantileHistogram {
	if s.instr == nil {
		return nil
	}
	return s.instr.sojourn
}
