// Fault tolerance for the R-BMW register pipeline.
//
// The register file (one {value, metadata, counter} slot per word) can be
// protected with a per-slot parity bit, recomputed by the functional
// datapath on every write (touch) and checked on every node access
// (checkNode). Parity detects any single-bit upset in a slot; it cannot
// correct, so a detection latches a sticky fault status — Tick refuses
// further operations — until Recover drains the surviving elements and
// rebuilds a clean tree.
//
// The Sim also implements hw.FaultTarget so a faultinject.Plan can flip
// or pin register bits, and accepts an hw.FaultStepper so injections
// land between clock edges.
package rbmw

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/treecheck"
)

// slotBits is the payload width of one register slot: 64-bit value,
// 64-bit metadata, 32-bit counter.
const slotBits = 64 + 64 + 32

// slotParity returns the even-parity bit over a slot's stored bits.
func slotParity(sl *slot) uint8 {
	return uint8((bits.OnesCount64(sl.val) + bits.OnesCount64(sl.meta) + bits.OnesCount32(sl.count)) & 1)
}

// Protect enables (or disables) parity protection on the register file.
// The pipeline must be quiescent: the parity column is (re)computed from
// the committed register state.
func (s *Sim) Protect(on bool) {
	if !s.Quiescent() {
		panic("rbmw: Protect requires a quiescent pipeline")
	}
	s.protected = on
	if on {
		if s.parity == nil {
			s.parity = make([]uint8, len(s.nodes))
		}
		for i := range s.nodes {
			s.parity[i] = slotParity(&s.nodes[i])
		}
	}
}

// Protected reports whether register parity is enabled.
func (s *Sim) Protected() bool { return s.protected }

// AttachFaults connects a fault plan's clock hook: Step is called once
// at the end of every consumed cycle. The caller is responsible for also
// registering the Sim as a target on the plan.
func (s *Sim) AttachFaults(st hw.FaultStepper) { s.stepper = st }

// tolerant reports whether detections should latch a fault status
// instead of panicking: any protection or injection machinery is
// attached. A bare simulator keeps the fail-fast panics, so clean-run
// behaviour is byte-for-byte identical to the unprotected build.
func (s *Sim) tolerant() bool {
	return s.protected || s.stepper != nil || s.CheckEvery > 0
}

// fail latches the first detected corruption; later detections in the
// same (aborted) cycle are ignored.
func (s *Sim) fail(err *hw.CorruptionError) {
	if s.faultErr == nil {
		s.faultErr = err
		s.detected++
	}
}

// touch recomputes the parity bit of a slot the datapath just wrote.
func (s *Sim) touch(idx int) {
	if s.protected {
		s.parity[idx] = slotParity(&s.nodes[idx])
	}
}

// checkNode verifies the parity of every slot of node n, as the hardware
// would when the node's comparator tree reads its registers. A mismatch
// latches the fault status.
func (s *Sim) checkNode(n int) {
	if !s.protected || s.faultErr != nil {
		return
	}
	base := n * s.m
	for i := 0; i < s.m; i++ {
		idx := base + i
		if slotParity(&s.nodes[idx]) != s.parity[idx]&1 {
			s.fail(&hw.CorruptionError{
				Unit: s.TargetName(), Word: idx, Chunk: -1, Cycle: s.cycle,
				Detail: "register parity mismatch",
			})
			return
		}
	}
}

// endOfCycle runs once per consumed Tick, after all waves: the online
// invariant checker (on the first quiescent cycle once CheckEvery
// cycles have elapsed since the last check, so a busy pipeline does not
// starve it) and then the attached fault plan, so upsets strike between
// clock edges.
func (s *Sim) endOfCycle() {
	if s.faultErr == nil && s.CheckEvery > 0 && s.cycle >= s.lastCheck+s.CheckEvery && s.Quiescent() {
		s.lastCheck = s.cycle
		s.checkRuns++
		if err := treecheck.Check(s); err != nil {
			s.fail(&hw.CorruptionError{
				Unit: "rbmw-online-check", Word: -1, Chunk: -1, Cycle: s.cycle,
				Detail: err.Error(), Cause: err,
			})
		}
	}
	if s.stepper != nil {
		s.stepper.Step(s.cycle)
	}
}

// Faulted reports whether a corruption has been detected and latched.
func (s *Sim) Faulted() bool { return s.faultErr != nil }

// FaultError returns the latched *hw.CorruptionError, or nil.
func (s *Sim) FaultError() error { return s.faultErr }

// Detected returns the number of corruptions detected since construction.
func (s *Sim) Detected() uint64 { return s.detected }

// Recoveries returns the number of completed Recover calls.
func (s *Sim) Recoveries() uint64 { return s.recoveries }

// CheckRuns returns how many times the online invariant checker ran.
func (s *Sim) CheckRuns() uint64 { return s.checkRuns }

// Verify is a read-only health check: it scans the parity column (when
// protected) and runs the shared treecheck invariants. Unlike the online
// checker it does not latch a fault. Meaningful only when quiescent.
func (s *Sim) Verify() error {
	if s.protected {
		for idx := range s.nodes {
			if slotParity(&s.nodes[idx]) != s.parity[idx]&1 {
				return &hw.CorruptionError{
					Unit: s.TargetName(), Word: idx, Chunk: -1, Cycle: s.cycle,
					Detail: "register parity mismatch",
				}
			}
		}
	}
	return treecheck.Check(s)
}

// hw.FaultTarget — the register file as bit-addressable storage. One
// word per slot: bits 0-63 value, 64-127 metadata, 128-159 counter, and
// bit 160 the parity bit when protection is enabled.

var _ hw.FaultTarget = (*Sim)(nil)

// TargetName identifies the register file in fault plans and reports.
func (s *Sim) TargetName() string { return "rbmw-regs" }

// Words returns the number of register slots.
func (s *Sim) Words() int { return len(s.nodes) }

// WordBits returns the stored width of one slot, including the parity
// bit when protection is enabled.
func (s *Sim) WordBits() int {
	if s.protected {
		return slotBits + 1
	}
	return slotBits
}

// PeekBit reports a stored register bit.
func (s *Sim) PeekBit(word, bit int) bool {
	sl := &s.nodes[word]
	switch {
	case bit < 64:
		return sl.val>>uint(bit)&1 != 0
	case bit < 128:
		return sl.meta>>uint(bit-64)&1 != 0
	case bit < slotBits:
		return sl.count>>uint(bit-128)&1 != 0
	case bit == slotBits && s.protected:
		return s.parity[word]&1 != 0
	default:
		panic(fmt.Sprintf("rbmw: PeekBit bit %d out of range", bit))
	}
}

// FlipBit inverts a stored register bit in place — the injection path.
// It deliberately does not update the parity column: that is the
// corruption the protection exists to catch.
func (s *Sim) FlipBit(word, bit int) {
	sl := &s.nodes[word]
	switch {
	case bit < 64:
		sl.val ^= 1 << uint(bit)
	case bit < 128:
		sl.meta ^= 1 << uint(bit-64)
	case bit < slotBits:
		sl.count ^= 1 << uint(bit-128)
	case bit == slotBits && s.protected:
		s.parity[word] ^= 1
	default:
		panic(fmt.Sprintf("rbmw: FlipBit bit %d out of range", bit))
	}
}

// bestMin is minSlot without the health machinery: the leftmost
// minimum-value occupied slot of node n, or -1 when the node is empty.
// Recovery uses it to locate stale duplicates without latching faults.
func (s *Sim) bestMin(n int) int {
	base := n * s.m
	min := -1
	for i := 0; i < s.m; i++ {
		if s.nodes[base+i].count == 0 {
			continue
		}
		if min < 0 || s.nodes[base+i].val < s.nodes[base+min].val {
			min = i
		}
	}
	if min < 0 {
		return -1
	}
	return base + min
}

// Recover drains every surviving element out of the (possibly corrupt)
// register file and rebuilds a clean tree from scratch, clearing the
// latched fault status. It returns the survivors in harvest order and
// the number of slots dropped because their parity proved the payload
// corrupt.
//
// Harvesting accounts for in-flight work at the moment the fault
// latched: pending and stranded push waves carry elements not yet
// parked in any slot (harvested from the wave latch); pending and
// stranded pop waves mark a node whose minimum slot is a stale
// duplicate of a value already grafted into the parent (skipped).
//
// The rebuild replays the survivors, in order, through the standard
// push datapath. Because that algorithm is the same one the golden
// model uses, a golden tree rebuilt by pushing the identical list in
// the identical order reproduces the exact slot layout — so subsequent
// pop order (including metadata of tied values) stays equivalent.
func (s *Sim) Recover() (survivors []core.Element, dropped int) {
	skipNode := make(map[int]bool)
	harvestWave := func(w wave) {
		if w.push {
			survivors = append(survivors, core.Element{Value: w.val, Meta: w.meta})
		} else {
			skipNode[w.node] = true
		}
	}
	for _, w := range s.next {
		harvestWave(w)
	}
	for _, w := range s.stranded {
		harvestWave(w)
	}
	skipSlot := make(map[int]bool)
	for n := range skipNode {
		if j := s.bestMin(n); j >= 0 {
			skipSlot[j] = true
		}
	}
	for idx := range s.nodes {
		sl := &s.nodes[idx]
		if sl.count == 0 || skipSlot[idx] {
			continue
		}
		if s.protected && slotParity(sl) != s.parity[idx]&1 {
			dropped++
			continue
		}
		survivors = append(survivors, core.Element{Value: sl.val, Meta: sl.meta})
	}
	if len(survivors) > s.capacity {
		// Corrupt counters can make the harvest overshoot; shed the
		// excess rather than overflow the rebuilt tree.
		dropped += len(survivors) - s.capacity
		survivors = survivors[:s.capacity]
	}

	// Reset to a clean, quiescent, empty machine.
	for i := range s.nodes {
		s.nodes[i] = slot{}
	}
	if s.protected {
		for i := range s.parity {
			s.parity[i] = 0
		}
	}
	s.next = s.next[:0]
	s.cur = s.cur[:0]
	s.stranded = nil
	s.faultErr = nil
	s.size = 0
	s.popCooldown, s.pushCooldown = 0, 0

	// Rebuild by replaying the survivors through the push datapath,
	// applying each wave chain synchronously (maintenance path, not
	// clocked operation: Cycle does not advance).
	for _, e := range survivors {
		s.pushSync(e.Value, e.Meta)
	}
	s.recoveries++
	return survivors, dropped
}

// pushSync applies a full push — root to resting slot — in zero cycles,
// chaining the wave the datapath would spread over one cycle per level.
func (s *Sim) pushSync(val, meta uint64) {
	// Recovered elements restart their sojourn clock at the recovery
	// cycle; the original born tag is not recoverable from the parity
	// word (born is observability side-state, outside the ECC domain).
	w := wave{node: 0, push: true, val: val, meta: meta, born: uint32(s.cycle)}
	for {
		s.next = s.next[:0]
		s.stepPush(w)
		if len(s.next) == 0 {
			break
		}
		w = s.next[0]
	}
	s.next = s.next[:0]
	s.size++
}
