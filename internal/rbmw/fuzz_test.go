package rbmw

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
)

// FuzzRBMWVsCore interprets fuzz bytes as a legal issue schedule for the
// R-BMW wave pipeline and cross-checks every pop against the golden
// software model. The first byte selects the tree geometry and whether
// parity protection and the online checker are engaged, so the fuzzer
// also proves the fault-tolerance machinery is passive on clean runs.
// Run with `go test -fuzz=FuzzRBMWVsCore ./internal/rbmw`.
func FuzzRBMWVsCore(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x90, 0x20, 0xA0, 0x30})
	f.Add([]byte{0x03, 255, 0, 255, 0, 255, 0, 255, 0})
	f.Add([]byte("interleaved operations everywhere"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		cfg := data[0]
		data = data[1:]
		m := 2 + int(cfg&0x03) // order 2..5
		const l = 3
		s := New(m, l)
		if cfg&0x04 != 0 {
			s.Protect(true)
		}
		if cfg&0x08 != 0 {
			s.CheckEvery = 4
		}
		g := core.New(m, l)
		for i, b := range data {
			var op hw.Op
			switch {
			case !s.PopAvailable():
				op = hw.NopOp() // mandatory idle after a pop
			case b&0x80 != 0 && g.Len() > 0:
				op = hw.PopOp()
			case !g.AlmostFull():
				op = hw.PushOp(uint64(b&0x7F), uint64(i))
			default:
				op = hw.NopOp()
			}
			got, err := s.Tick(op)
			if err != nil {
				t.Fatalf("tick %d (%v): %v", i, op.Kind, err)
			}
			switch op.Kind {
			case hw.Push:
				if err := g.Push(core.Element{Value: op.Value, Meta: op.Meta}); err != nil {
					t.Fatal(err)
				}
			case hw.Pop:
				want, err := g.Pop()
				if err != nil {
					t.Fatal(err)
				}
				if got == nil || *got != want {
					t.Fatalf("tick %d: sim %v golden %v", i, got, want)
				}
			}
		}
		for g.Len() > 0 {
			if !s.PopAvailable() {
				s.Tick(hw.NopOp())
				continue
			}
			want, _ := g.Pop()
			got, err := s.Tick(hw.PopOp())
			if err != nil {
				t.Fatal(err)
			}
			if *got != want {
				t.Fatalf("drain: sim %v golden %v", got, want)
			}
		}
		if s.Detected() != 0 {
			t.Fatalf("clean run detected %d corruptions", s.Detected())
		}
	})
}
