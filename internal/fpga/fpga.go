// Package fpga models the resource consumption and maximum clock
// frequency of the three flow-scheduler designs on the Xilinx Alveo
// U200 (XCU200) FPGA of Section 6 of the paper. It substitutes for the
// Vivado synthesis runs: the per-element / per-level cost constants are
// calibrated from the paper's own reported design points (Tables 2 and
// 3, Figure 8/9 narration), and the model's *structure* — not per-point
// hard-coding — produces the sweeps of Figures 8 and 9:
//
//   - R-BMW and PIFO resources are linear in the number of elements
//     (Fig. 8b/8c: "LUTs and FFs cost per element are constant");
//   - R-BMW Fmax is independent of the number of levels while resources
//     are affluent and set by node complexity, so it falls with M
//     (Fig. 8a);
//   - PIFO Fmax collapses with capacity because of the broadcast-bus
//     loading and the linearly growing comparator (Section 6.1);
//   - RPU-BMW LUT and LUTRAM consumption is proportional to elements
//     regardless of order and level (Fig. 9b), FF grows linearly with
//     the number of levels (Fig. 9c: "FF is mainly consumed by ranking
//     processing units"), and Fmax decreases linearly with the number
//     of levels as placement and routing get harder (Fig. 9a).
//
// Calibration sources (value 16 bits, metadata 32 bits, as in the
// paper):
//
//	R-BMW    (Table 3): 11-2 = 384.61 MHz, 25.51% LUT, 12.29% FF
//	                     6-4 = 200.00 MHz, 46.22% LUT, 14.20% FF
//	                     4-8 = 188.67 MHz, 66.79% LUT, 11.69% FF
//	RPU-BMW  (Table 2): 15-2 = 82.64 MHz, 11.43% LUT, 20.13% LUTRAM, 0.14% FF
//	                     8-4 = 93.45 MHz, 15.03% LUT, 26.81% LUTRAM, 0.13% FF
//	                     5-8 = 125.0 MHz,  7.36% LUT, 11.52% LUTRAM, 0.15% FF
//	RPU-BMW  (Table 3): 11-2 = 204.08 MHz, 6-4 = 277.77 MHz, 4-8 = 212.76 MHz
//	PIFO     (Sec 6.1): 4096 flows at 40 MHz, "consumes the most LUTs"
//
// Documented assumptions (inputs the paper does not tabulate):
// PIFO's per-element LUT cost (set just above the densest R-BMW, per
// "PIFO consumes the most LUTs"), PIFO's per-element FF cost (element
// width without BMW counters), and PIFO's frequency-vs-capacity curve
// shape (hyperbolic in capacity from bus loading, anchored at the
// reported 40 MHz / 4096 point).
package fpga

import (
	"fmt"

	"repro/internal/core"
)

// Device describes an FPGA's resource totals.
type Device struct {
	Name    string
	LUTs    float64
	LUTRAMs float64
	FFs     float64
}

// XCU200 is the Xilinx Alveo U200 device of the paper: 1182k LUTs, 591k
// LUTRAMs, 2364k flip-flops.
var XCU200 = Device{Name: "XCU200", LUTs: 1182e3, LUTRAMs: 591e3, FFs: 2364e3}

// Report is the synthesis-style summary for one design point.
type Report struct {
	Design   string
	M, L     int
	Capacity int

	FmaxMHz float64
	LUT     float64
	LUTRAM  float64
	FF      float64

	LUTPct    float64
	LUTRAMPct float64
	FFPct     float64

	// Mpps is the steady-state scheduling rate: Fmax divided by the
	// cycles a push-pop pair costs (2 for R-BMW, 3 for RPU-BMW, 1 for
	// PIFO whose ops are single-cycle).
	Mpps float64

	// Feasible reports whether the design fits the device.
	Feasible bool
}

// GbpsAt returns the line rate sustained at the report's scheduling
// rate with the given average packet size in bytes (the paper uses 512).
func (r Report) GbpsAt(pktBytes int) float64 {
	return r.Mpps * 1e6 * float64(pktBytes) * 8 / 1e9
}

// String formats the report like a synthesis summary row.
func (r Report) String() string {
	return fmt.Sprintf("%-8s M=%d L=%2d cap=%6d Fmax=%7.2f MHz LUT=%5.2f%% LUTRAM=%5.2f%% FF=%5.2f%% rate=%6.1f Mpps",
		r.Design, r.M, r.L, r.Capacity, r.FmaxMHz, r.LUTPct, r.LUTRAMPct, r.FFPct, r.Mpps)
}

// Calibrated per-element LUT cost of an R-BMW building block, derived
// from Table 3 (LUT% x device / capacity). Larger orders need wider
// comparators and muxes per element.
var rbmwLUTPerElem = map[int]float64{2: 73.65, 4: 100.06, 8: 168.68}

// Calibrated per-element FF cost of R-BMW, derived from Table 3. The
// element payload (48 bits + counter) dominates; the per-node caching
// overhead is amortised over M elements, which is why M=2 costs most
// (Section 6.1).
var rbmwFFPerElem = map[int]float64{2: 70.97, 4: 61.48, 8: 59.05}

// Calibrated base frequency of an R-BMW node by order (Table 3). With
// modular autonomous nodes the pipeline frequency is set by the node's
// internal critical path, not by the level count (Section 3.3), so the
// model keeps it flat across L while the design fits.
var rbmwBaseMHz = map[int]float64{2: 384.61, 4: 200.0, 8: 188.67}

// interp linearly interpolates/extrapolates a per-order constant for
// orders the paper did not synthesise, anchored on M=2 and M=8.
func interp(table map[int]float64, m int) float64 {
	if v, ok := table[m]; ok {
		return v
	}
	lo, hi := table[2], table[8]
	return lo + (hi-lo)*float64(m-2)/6.0
}

// RBMW models an order-m, l-level register-based BMW-Tree on dev.
func RBMW(dev Device, m, l int) Report {
	capacity := core.Capacity(m, l)
	lut := interp(rbmwLUTPerElem, m) * float64(capacity)
	ff := interp(rbmwFFPerElem, m) * float64(capacity)
	r := Report{
		Design:   "R-BMW",
		M:        m,
		L:        l,
		Capacity: capacity,
		FmaxMHz:  interp(rbmwBaseMHz, m),
		LUT:      lut,
		FF:       ff,
		LUTPct:   100 * lut / dev.LUTs,
		FFPct:    100 * ff / dev.FFs,
	}
	r.Feasible = r.LUTPct <= 100 && r.FFPct <= 100
	if !r.Feasible {
		r.FmaxMHz = 0
	}
	// Steady-state push-pop pair costs 2 cycles (Section 4.3).
	r.Mpps = r.FmaxMHz / 2
	return r
}

// RPU-BMW calibration. LUT has two terms: a per-element cost from the
// LUT-fabric SRAMs (1.925 LUT/element — solving the Table 2 and
// Table 3 pairs per order yields 1.92-1.93 for every M, confirming
// Fig. 9b's "proportional to the number of elements, regardless of the
// order and level") and a per-RPU logic cost that grows with node
// width. LUTRAM is per-element only; FF belongs to the RPUs, linear in
// L with a per-way width term (the fit 56 + 82*M per RPU reproduces
// all three Table 2 points to within 1%).
const rpuLUTPerElem = 1.925

var rpuLUTPerRPU = map[int]float64{2: 606, 4: 1076, 8: 2975}

const (
	rpuLUTRAMPerElem = 1.815
	rpuFFBase        = 56.0
	rpuFFPerWay      = 82.0
)

// RPU-BMW Fmax declines linearly with the level count as placement and
// routing get harder (Fig. 9a). Anchored on the Table 2 and Table 3
// points per order; clamped to a 350 MHz fabric ceiling for shallow
// trees outside the calibrated range.
var rpuFmax = map[int]struct{ intercept, slope float64 }{
	2: {538.04, 30.36}, // 204.08 @ L=11, 82.64 @ L=15
	4: {830.73, 92.16}, // 277.77 @ L=6, 93.45 @ L=8
	8: {563.80, 87.76}, // 212.76 @ L=4, 125.0 @ L=5
}

const rpuFabricCeilingMHz = 350.0

// RPUBMW models an order-m, l-level RPU-driven BMW-Tree on dev.
func RPUBMW(dev Device, m, l int) Report {
	capacity := core.Capacity(m, l)
	lut := rpuLUTPerElem*float64(capacity) + interp(rpuLUTPerRPU, m)*float64(l)
	lutram := rpuLUTRAMPerElem * float64(capacity)
	ff := (rpuFFBase + rpuFFPerWay*float64(m)) * float64(l)

	var fmax float64
	if c, ok := rpuFmax[m]; ok {
		fmax = c.intercept - c.slope*float64(l)
	} else {
		lo := rpuFmax[2]
		hi := rpuFmax[8]
		t := float64(m-2) / 6.0
		fmax = (lo.intercept + (hi.intercept-lo.intercept)*t) -
			(lo.slope+(hi.slope-lo.slope)*t)*float64(l)
	}
	if fmax > rpuFabricCeilingMHz {
		fmax = rpuFabricCeilingMHz
	}
	if fmax < 0 {
		fmax = 0
	}

	r := Report{
		Design:    "RPU-BMW",
		M:         m,
		L:         l,
		Capacity:  capacity,
		FmaxMHz:   fmax,
		LUT:       lut,
		LUTRAM:    lutram,
		FF:        ff,
		LUTPct:    100 * lut / dev.LUTs,
		LUTRAMPct: 100 * lutram / dev.LUTRAMs,
		FFPct:     100 * ff / dev.FFs,
	}
	r.Feasible = r.LUTPct <= 100 && r.LUTRAMPct <= 100 && r.FFPct <= 100
	if !r.Feasible {
		r.FmaxMHz = 0
	}
	// Steady-state push-pop pair costs 3 cycles (Section 5.3).
	r.Mpps = r.FmaxMHz / 3
	return r
}

// PIFO assumptions (see package comment): per-element LUT cost above
// the densest R-BMW, per-element FF cost of the raw 48-bit element plus
// output mux staging, and a bus-loading frequency curve anchored at the
// reported 40 MHz for 4096 entries.
const (
	pifoLUTPerElem = 190.0
	pifoFFPerElem  = 52.0
	pifoFmaxA      = 213.6   // MHz
	pifoFmaxB      = 0.00106 // per element
)

// PIFO models the original shift-register PIFO flow scheduler with the
// given capacity on dev.
func PIFO(dev Device, capacity int) Report {
	lut := pifoLUTPerElem * float64(capacity)
	ff := pifoFFPerElem * float64(capacity)
	r := Report{
		Design:   "PIFO",
		M:        1,
		L:        1,
		Capacity: capacity,
		FmaxMHz:  pifoFmaxA / (1 + pifoFmaxB*float64(capacity)),
		LUT:      lut,
		FF:       ff,
		LUTPct:   100 * lut / dev.LUTs,
		FFPct:    100 * ff / dev.FFs,
	}
	r.Feasible = r.LUTPct <= 100 && r.FFPct <= 100
	if !r.Feasible {
		r.FmaxMHz = 0
	}
	// PIFO completes any operation in a single cycle, so its scheduling
	// rate equals its (low) clock frequency.
	r.Mpps = r.FmaxMHz
	return r
}

// MaxLevels returns the deepest feasible tree on dev for the design
// ("R-BMW" or "RPU-BMW") and order m.
func MaxLevels(dev Device, design string, m int) int {
	best := 0
	for l := 1; l <= 30; l++ {
		var r Report
		switch design {
		case "R-BMW":
			r = RBMW(dev, m, l)
		case "RPU-BMW":
			r = RPUBMW(dev, m, l)
		default:
			panic("fpga: unknown design " + design)
		}
		if r.Feasible && r.FmaxMHz > 0 {
			best = l
		}
		if !r.Feasible {
			break
		}
	}
	return best
}
