package fpga

import (
	"math"
	"testing"
)

func within(t *testing.T, name string, got, want, tolPct float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %v, want 0", name, got)
		}
		return
	}
	if math.Abs(got-want)/want*100 > tolPct {
		t.Errorf("%s = %.3f, want %.3f (±%.1f%%)", name, got, want, tolPct)
	}
}

// TestTable3RBMW checks that the calibrated model reproduces the R-BMW
// rows of Table 3 (Fmax, LUT%, FF%) at the paper's design points.
func TestTable3RBMW(t *testing.T) {
	rows := []struct {
		m, l                int
		cap                 int
		fmax, lutPct, ffPct float64
	}{
		{2, 11, 4094, 384.61, 25.51, 12.29},
		{4, 6, 5460, 200, 46.22, 14.2},
		{8, 4, 4680, 188.67, 66.79, 11.69},
	}
	for _, row := range rows {
		r := RBMW(XCU200, row.m, row.l)
		if r.Capacity != row.cap {
			t.Errorf("M=%d L=%d capacity = %d, want %d", row.m, row.l, r.Capacity, row.cap)
		}
		if !r.Feasible {
			t.Errorf("M=%d L=%d infeasible", row.m, row.l)
		}
		within(t, "Fmax", r.FmaxMHz, row.fmax, 1)
		within(t, "LUT%", r.LUTPct, row.lutPct, 2)
		within(t, "FF%", r.FFPct, row.ffPct, 2)
	}
}

// TestTable2RPUBMW checks the three largest-scale RPU-BMW rows of
// Table 2.
func TestTable2RPUBMW(t *testing.T) {
	rows := []struct {
		m, l, cap                      int
		fmax, lutPct, lutramPct, ffPct float64
	}{
		{2, 15, 65534, 82.64, 11.43, 20.13, 0.14},
		{4, 8, 87380, 93.45, 15.03, 26.81, 0.13},
		{8, 5, 37448, 125, 7.36, 11.52, 0.15},
	}
	for _, row := range rows {
		r := RPUBMW(XCU200, row.m, row.l)
		if r.Capacity != row.cap {
			t.Errorf("M=%d L=%d capacity = %d, want %d", row.m, row.l, r.Capacity, row.cap)
		}
		within(t, "Fmax", r.FmaxMHz, row.fmax, 1)
		within(t, "LUT%", r.LUTPct, row.lutPct, 2)
		within(t, "LUTRAM%", r.LUTRAMPct, row.lutramPct, 2)
		within(t, "FF%", r.FFPct, row.ffPct, 10)
	}
}

// TestTable3RPUBMW checks the RPU-BMW half of Table 3 (same capacities
// as the largest R-BMW configurations).
func TestTable3RPUBMW(t *testing.T) {
	rows := []struct {
		m, l         int
		fmax, lutPct float64
	}{
		{2, 11, 204.08, 1.23},
		{4, 6, 277.77, 1.44},
		{8, 4, 212.76, 1.77},
	}
	for _, row := range rows {
		r := RPUBMW(XCU200, row.m, row.l)
		within(t, "Fmax", r.FmaxMHz, row.fmax, 1)
		within(t, "LUT%", r.LUTPct, row.lutPct, 4)
		// Table 3's headline: RPU-BMW costs far fewer resources than
		// R-BMW at the same capacity.
		rb := RBMW(XCU200, row.m, row.l)
		if r.LUTPct > rb.LUTPct/5 {
			t.Errorf("M=%d: RPU-BMW LUT%% %.2f not ≪ R-BMW %.2f", row.m, r.LUTPct, rb.LUTPct)
		}
		if r.FFPct > 1 {
			t.Errorf("M=%d: RPU-BMW FF%% %.2f, expected ≪ 1%%", row.m, r.FFPct)
		}
	}
}

// TestHeadlineThroughput checks Section 6.1's headline: the 11-2 R-BMW
// reaches 192 Mpps, 4.8x the original PIFO's 40 Mpps at similar
// capacity.
func TestHeadlineThroughput(t *testing.T) {
	r := RBMW(XCU200, 2, 11)
	within(t, "R-BMW Mpps", r.Mpps, 192.3, 1)
	p := PIFO(XCU200, 4096)
	within(t, "PIFO Mpps", p.Mpps, 40, 2)
	speedup := r.Mpps / p.Mpps
	if speedup < 4.5 || speedup > 5.1 {
		t.Errorf("R-BMW/PIFO speedup = %.2fx, want ≈4.8x", speedup)
	}
	// 4-order and 8-order R-BMW: 2.5x and 2.35x PIFO (Section 6.1).
	within(t, "4-order speedup", RBMW(XCU200, 4, 6).Mpps/p.Mpps, 2.5, 5)
	within(t, "8-order speedup", RBMW(XCU200, 8, 4).Mpps/p.Mpps, 2.35, 5)
}

// TestFigure8Shapes checks the qualitative shapes of Figure 8 that the
// model must produce structurally.
func TestFigure8Shapes(t *testing.T) {
	// (a) R-BMW Fmax is flat across levels for a given order, and falls
	// with order; PIFO is far below at matched capacity.
	for _, m := range []int{2, 4, 8} {
		f3 := RBMW(XCU200, m, 3).FmaxMHz
		fMax := RBMW(XCU200, m, MaxLevels(XCU200, "R-BMW", m)).FmaxMHz
		if f3 != fMax {
			t.Errorf("M=%d: R-BMW Fmax varies with levels (%.1f vs %.1f)", m, f3, fMax)
		}
	}
	if !(RBMW(XCU200, 2, 5).FmaxMHz > RBMW(XCU200, 4, 5).FmaxMHz &&
		RBMW(XCU200, 4, 5).FmaxMHz > RBMW(XCU200, 8, 4).FmaxMHz) {
		t.Error("R-BMW Fmax not decreasing in node complexity (order)")
	}
	for _, n := range []int{256, 1024, 4096} {
		if PIFO(XCU200, n).FmaxMHz >= RBMW(XCU200, 2, 5).FmaxMHz {
			t.Errorf("PIFO at %d entries not slower than R-BMW", n)
		}
	}
	// PIFO frequency decreases with capacity (bus loading).
	if !(PIFO(XCU200, 256).FmaxMHz > PIFO(XCU200, 1024).FmaxMHz &&
		PIFO(XCU200, 1024).FmaxMHz > PIFO(XCU200, 4096).FmaxMHz) {
		t.Error("PIFO Fmax not decreasing with capacity")
	}

	// (b) LUT per element constant per design; PIFO consumes the most.
	for _, m := range []int{2, 4, 8} {
		perElemSmall := RBMW(XCU200, m, 3).LUT / float64(RBMW(XCU200, m, 3).Capacity)
		perElemBig := RBMW(XCU200, m, 6).LUT / float64(RBMW(XCU200, m, 6).Capacity)
		if math.Abs(perElemSmall-perElemBig) > 1e-9 {
			t.Errorf("M=%d LUT/elem not constant", m)
		}
		if pifoLUTPerElem <= perElemBig {
			t.Errorf("PIFO LUT/elem %.1f not above R-BMW M=%d %.1f", pifoLUTPerElem, m, perElemBig)
		}
	}

	// (c) FF per element: M=2 slightly above M=4 and M=8 (per-node
	// overhead amortised over M); PIFO below all (no counters).
	f2 := rbmwFFPerElem[2]
	if !(f2 > rbmwFFPerElem[4] && rbmwFFPerElem[4] > rbmwFFPerElem[8]) {
		t.Error("R-BMW FF/elem ordering wrong")
	}
	if pifoFFPerElem >= rbmwFFPerElem[8] {
		t.Error("PIFO FF/elem should be below R-BMW (no counters)")
	}
}

// TestFigure9Shapes checks the qualitative shapes of Figure 9.
func TestFigure9Shapes(t *testing.T) {
	// (a) Fmax decreases with levels for each order: non-increasing
	// everywhere (flat only under the fabric ceiling at shallow depths)
	// and strictly decreasing across the calibrated range.
	for _, m := range []int{2, 4, 8} {
		prev := math.Inf(1)
		lmax := MaxLevels(XCU200, "RPU-BMW", m)
		sawDecline := false
		for l := 4; l <= lmax; l++ {
			f := RPUBMW(XCU200, m, l).FmaxMHz
			if f > prev {
				t.Errorf("M=%d: Fmax increased at L=%d (%.1f > %.1f)", m, l, f, prev)
			}
			if f < prev && prev != math.Inf(1) {
				sawDecline = true
			}
			prev = f
		}
		if !sawDecline {
			t.Errorf("M=%d: Fmax never declines with levels", m)
		}
	}
	// (b) LUT% proportional to elements regardless of order and level:
	// at large scales the per-element term dominates the per-RPU logic,
	// so LUT/element converges to the same constant for every order.
	for _, m := range []int{2, 4, 8} {
		l := MaxLevels(XCU200, "RPU-BMW", m)
		r := RPUBMW(XCU200, m, l)
		perElem := r.LUT / float64(r.Capacity)
		if math.Abs(perElem-rpuLUTPerElem)/rpuLUTPerElem > 0.15 {
			t.Errorf("M=%d: LUT/elem %.2f deviates from proportionality (%.3f)", m, perElem, rpuLUTPerElem)
		}
	}
	// (c) FF grows linearly with levels.
	for _, m := range []int{2, 4, 8} {
		d1 := RPUBMW(XCU200, m, 5).FF - RPUBMW(XCU200, m, 4).FF
		d2 := RPUBMW(XCU200, m, 8).FF - RPUBMW(XCU200, m, 7).FF
		if math.Abs(d1-d2) > 1e-9 {
			t.Errorf("M=%d: FF not linear in levels", m)
		}
	}
}

// TestTable2Gbps checks Section 6.2: every Table 2 configuration
// reaches 100 Gbps with 512-byte packets given the 3-cycle push-pop.
func TestTable2Gbps(t *testing.T) {
	for _, p := range []struct{ m, l int }{{2, 15}, {4, 8}, {8, 5}} {
		r := RPUBMW(XCU200, p.m, p.l)
		if g := r.GbpsAt(512); g < 100 {
			t.Errorf("M=%d L=%d reaches only %.1f Gbps, want >= 100", p.m, p.l, g)
		}
	}
}

// TestMaxLevels checks the scalability limits: the paper reports that
// resources allow a 12-level 2-order R-BMW in theory (Section 6.1
// footnote) and the largest synthesised RPU-BMW configurations of
// Table 2 are feasible.
func TestMaxLevels(t *testing.T) {
	if got := MaxLevels(XCU200, "R-BMW", 2); got != 12 {
		t.Errorf("R-BMW M=2 max levels = %d, want 12", got)
	}
	if got := MaxLevels(XCU200, "RPU-BMW", 4); got < 8 {
		t.Errorf("RPU-BMW M=4 max levels = %d, want >= 8", got)
	}
	if got := MaxLevels(XCU200, "RPU-BMW", 2); got < 15 {
		t.Errorf("RPU-BMW M=2 max levels = %d, want >= 15", got)
	}
	if got := MaxLevels(XCU200, "RPU-BMW", 8); got < 5 {
		t.Errorf("RPU-BMW M=8 max levels = %d, want >= 5", got)
	}
}

func TestInterpFallback(t *testing.T) {
	// Orders the paper did not synthesise get interpolated constants
	// between the M=2 and M=8 anchors.
	v := interp(rbmwLUTPerElem, 5)
	if v <= rbmwLUTPerElem[2] || v >= rbmwLUTPerElem[8] {
		t.Errorf("interp(5) = %.1f out of range", v)
	}
	r := RBMW(XCU200, 3, 4)
	if !r.Feasible || r.FmaxMHz <= 0 {
		t.Error("interpolated order should be feasible")
	}
	rp := RPUBMW(XCU200, 6, 5)
	if !rp.Feasible || rp.FmaxMHz <= 0 {
		t.Error("interpolated RPU order should be feasible")
	}
}

func TestInfeasibleDesigns(t *testing.T) {
	r := RBMW(XCU200, 2, 14) // 32766 elements: way past the LUT budget
	if r.Feasible || r.Mpps != 0 {
		t.Errorf("14-2 R-BMW should be infeasible: %+v", r)
	}
	p := PIFO(XCU200, 8192)
	if p.Feasible {
		t.Error("8192-entry PIFO should not fit")
	}
}

func TestReportString(t *testing.T) {
	s := RBMW(XCU200, 2, 11).String()
	if len(s) == 0 {
		t.Fatal("empty report string")
	}
}
