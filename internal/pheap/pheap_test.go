package pheap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/refpq"
)

func TestBasic(t *testing.T) {
	h := New(4) // capacity 15
	if h.Cap() != 15 {
		t.Fatalf("Cap = %d", h.Cap())
	}
	for _, v := range []uint64{8, 3, 5, 1, 9} {
		if err := h.Push(core.Element{Value: v}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 3, 5, 8, 9}
	for _, w := range want {
		e, err := h.Pop()
		if err != nil || e.Value != w {
			t.Fatalf("pop = %v,%v want %d", e, err, w)
		}
		if err := h.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.Pop(); err != core.ErrEmpty {
		t.Fatalf("pop empty = %v", err)
	}
}

func TestFullError(t *testing.T) {
	h := New(2) // capacity 3
	for i := 0; i < 3; i++ {
		if err := h.Push(core.Element{Value: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Push(core.Element{Value: 9}); err != core.ErrFull {
		t.Fatalf("push full = %v", err)
	}
}

// TestLeftSkew reproduces the Table 1 observation: pHeap inserts
// left-first, so a partially filled queue concentrates in the left
// sub-tree and grows deep, unlike the insertion-balanced BMW-Tree.
func TestLeftSkew(t *testing.T) {
	h := New(6) // capacity 63
	// Fill half the capacity.
	for i := 0; i < 31; i++ {
		if err := h.Push(core.Element{Value: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	left, right := h.SideCounts()
	if left <= right {
		t.Fatalf("expected left skew: left %d, right %d", left, right)
	}
	// 31 elements fit in depth 5 of a balanced structure; pHeap's
	// left-first steering reaches the full depth 6 much earlier.
	if h.MaxDepthUsed() != 6 {
		t.Fatalf("depth used = %d, want full depth 6 (left-spine growth)", h.MaxDepthUsed())
	}
}

func TestRandomAgainstReference(t *testing.T) {
	h := New(7)
	ref := refpq.New()
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 20000; i++ {
		if ref.Len() == 0 || (rng.Intn(2) == 0 && h.Len() < h.Cap()) {
			e := core.Element{Value: uint64(rng.Intn(100)), Meta: uint64(i)}
			if err := h.Push(e); err != nil {
				t.Fatal(err)
			}
			ref.Push(refpq.Entry{Value: e.Value, Meta: e.Meta})
		} else {
			e, err := h.Pop()
			if err != nil {
				t.Fatal(err)
			}
			if e.Value != ref.MinValue() {
				t.Fatalf("pop %d, ref min %d", e.Value, ref.MinValue())
			}
			if !ref.RemoveExact(refpq.Entry{Value: e.Value, Meta: e.Meta}) {
				t.Fatal("popped element not in reference")
			}
		}
		if i%371 == 0 {
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("after op %d: %v", i, err)
			}
		}
	}
}

func TestQuickSortedDrain(t *testing.T) {
	prop := func(vals []uint16, dRaw uint8) bool {
		d := 2 + int(dRaw)%8
		h := New(d)
		if len(vals) > h.Cap() {
			vals = vals[:h.Cap()]
		}
		for _, v := range vals {
			if err := h.Push(core.Element{Value: uint64(v)}); err != nil {
				return false
			}
		}
		if err := h.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		var prev uint64
		for i := range vals {
			e, err := h.Pop()
			if err != nil {
				return false
			}
			if i > 0 && e.Value < prev {
				return false
			}
			prev = e.Value
		}
		return h.Len() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFillToCapacity(t *testing.T) {
	h := New(5)
	for i := 0; i < h.Cap(); i++ {
		if err := h.Push(core.Element{Value: uint64(i % 13)}); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.Len() != h.Cap() {
		t.Fatalf("Len = %d", h.Len())
	}
}
